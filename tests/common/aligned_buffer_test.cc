#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstring>

namespace sgxb {
namespace {

TEST(AlignedBufferTest, AllocatesAligned) {
  auto r = AlignedBuffer::Allocate(1000, MemoryRegion::kUntrusted);
  ASSERT_TRUE(r.ok());
  AlignedBuffer buf = std::move(r).value();
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kCacheLineSize, 0u);
  EXPECT_EQ(buf.region(), MemoryRegion::kUntrusted);
}

TEST(AlignedBufferTest, CustomAlignment) {
  auto r = AlignedBuffer::Allocate(64, MemoryRegion::kUntrusted, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(r.value().data()) % 4096, 0u);
}

TEST(AlignedBufferTest, RejectsBadAlignment) {
  EXPECT_FALSE(AlignedBuffer::Allocate(64, MemoryRegion::kUntrusted, 0,
                                       48).ok());
  EXPECT_FALSE(AlignedBuffer::Allocate(64, MemoryRegion::kUntrusted, 0,
                                       16).ok());
}

TEST(AlignedBufferTest, ZeroSizeIsEmpty) {
  auto r = AlignedBuffer::Allocate(0, MemoryRegion::kUntrusted);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  EXPECT_EQ(r.value().data(), nullptr);
}

TEST(AlignedBufferTest, AllocateZeroedIsZeroed) {
  auto r = AlignedBuffer::AllocateZeroed(512, MemoryRegion::kUntrusted);
  ASSERT_TRUE(r.ok());
  const auto* p = r.value().As<uint8_t>();
  for (int i = 0; i < 512; ++i) EXPECT_EQ(p[i], 0) << i;
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  auto r = AlignedBuffer::Allocate(128, MemoryRegion::kEnclave, 1);
  ASSERT_TRUE(r.ok());
  AlignedBuffer a = std::move(r).value();
  void* data = a.data();
  AlignedBuffer b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.numa_node(), 1);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBufferTest, RegionUsageTracksAllocations) {
  RegionUsage before = GetRegionUsage();
  {
    auto enclave =
        AlignedBuffer::Allocate(4096, MemoryRegion::kEnclave).value();
    auto untrusted =
        AlignedBuffer::Allocate(2048, MemoryRegion::kUntrusted).value();
    RegionUsage during = GetRegionUsage();
    EXPECT_EQ(during.enclave_bytes - before.enclave_bytes, 4096u);
    EXPECT_EQ(during.untrusted_bytes - before.untrusted_bytes, 2048u);
  }
  RegionUsage after = GetRegionUsage();
  EXPECT_EQ(after.enclave_bytes, before.enclave_bytes);
  EXPECT_EQ(after.untrusted_bytes, before.untrusted_bytes);
}

TEST(AlignedBufferTest, WritableThroughTypedAccessor) {
  auto buf = AlignedBuffer::Allocate(8 * sizeof(uint64_t),
                                     MemoryRegion::kUntrusted)
                 .value();
  uint64_t* words = buf.As<uint64_t>();
  for (int i = 0; i < 8; ++i) words[i] = i * 3;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf.As<uint64_t>()[i], i * 3ull);
}

}  // namespace
}  // namespace sgxb
