// Typed env-knob parsing: fallbacks, range validation, boolean token
// sets, and the once-per-variable warning contract.
//
// Each test uses its own variable names: WarnOnce deduplicates per name
// for the process lifetime, so reusing a name across tests would hide
// the second warning.

#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sgxb {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvTest, StringUnsetIsNullopt) {
  ::unsetenv("SGXB_TEST_STR_UNSET");
  EXPECT_FALSE(EnvString("SGXB_TEST_STR_UNSET").has_value());
}

TEST(EnvTest, StringSetRoundTrips) {
  EnvGuard g("SGXB_TEST_STR_SET", "hello world");
  auto v = EnvString("SGXB_TEST_STR_SET");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello world");
}

TEST(EnvTest, IntUnsetUsesFallbackSilently) {
  ::unsetenv("SGXB_TEST_INT_UNSET");
  const uint64_t warnings = internal::EnvWarningCount();
  EXPECT_EQ(EnvInt("SGXB_TEST_INT_UNSET", 42), 42);
  EXPECT_EQ(internal::EnvWarningCount(), warnings);
}

TEST(EnvTest, IntParsesInRange) {
  EnvGuard g("SGXB_TEST_INT_OK", "-17");
  EXPECT_EQ(EnvInt("SGXB_TEST_INT_OK", 0, -100, 100), -17);
}

TEST(EnvTest, IntOutOfRangeFallsBackWithOneWarning) {
  EnvGuard g("SGXB_TEST_INT_RANGE", "500");
  const uint64_t warnings = internal::EnvWarningCount();
  EXPECT_EQ(EnvInt("SGXB_TEST_INT_RANGE", 7, 0, 100), 7);
  EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
  // Second read of the same bad variable: fallback again, no new warning.
  EXPECT_EQ(EnvInt("SGXB_TEST_INT_RANGE", 7, 0, 100), 7);
  EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
}

TEST(EnvTest, IntMalformedFallsBackWithWarning) {
  EnvGuard g("SGXB_TEST_INT_BAD", "12monkeys");
  const uint64_t warnings = internal::EnvWarningCount();
  EXPECT_EQ(EnvInt("SGXB_TEST_INT_BAD", 3), 3);
  EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
}

TEST(EnvTest, UintParsesAndRejectsNegative) {
  EnvGuard g("SGXB_TEST_UINT_OK", "4096");
  EXPECT_EQ(EnvUint("SGXB_TEST_UINT_OK", 0), 4096u);
  EnvGuard bad("SGXB_TEST_UINT_NEG", "-5");
  const uint64_t warnings = internal::EnvWarningCount();
  EXPECT_EQ(EnvUint("SGXB_TEST_UINT_NEG", 9), 9u);
  EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
}

TEST(EnvTest, DoubleParsesAndValidatesRange) {
  EnvGuard g("SGXB_TEST_DBL_OK", "2.5");
  EXPECT_DOUBLE_EQ(EnvDouble("SGXB_TEST_DBL_OK", 1.0, 0.0, 10.0), 2.5);
  EnvGuard bad("SGXB_TEST_DBL_RANGE", "-2.5");
  const uint64_t warnings = internal::EnvWarningCount();
  EXPECT_DOUBLE_EQ(EnvDouble("SGXB_TEST_DBL_RANGE", 1.0, 0.0, 10.0), 1.0);
  EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
}

TEST(EnvTest, BoolAcceptsTheDocumentedTokens) {
  const char* kTrue[] = {"1", "true", "on", "yes", "TRUE", "On", "YES"};
  const char* kFalse[] = {"0", "false", "off", "no", "FALSE", "Off", "NO"};
  for (const char* v : kTrue) {
    EnvGuard g("SGXB_TEST_BOOL_T", v);
    EXPECT_TRUE(EnvBool("SGXB_TEST_BOOL_T", false)) << v;
  }
  for (const char* v : kFalse) {
    EnvGuard g("SGXB_TEST_BOOL_F", v);
    EXPECT_FALSE(EnvBool("SGXB_TEST_BOOL_F", true)) << v;
  }
}

TEST(EnvTest, BoolUnsetAndMalformed) {
  ::unsetenv("SGXB_TEST_BOOL_UNSET");
  EXPECT_TRUE(EnvBool("SGXB_TEST_BOOL_UNSET", true));
  EXPECT_FALSE(EnvBool("SGXB_TEST_BOOL_UNSET", false));
  EnvGuard g("SGXB_TEST_BOOL_BAD", "maybe");
  const uint64_t warnings = internal::EnvWarningCount();
  EXPECT_TRUE(EnvBool("SGXB_TEST_BOOL_BAD", true));
  EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
}

TEST(EnvTest, BoolOptDistinguishesUnsetSetAndMalformed) {
  ::unsetenv("SGXB_TEST_BOOLOPT_UNSET");
  EXPECT_FALSE(EnvBoolOpt("SGXB_TEST_BOOLOPT_UNSET").has_value());
  {
    EnvGuard g("SGXB_TEST_BOOLOPT_ON", "on");
    const std::optional<bool> v = EnvBoolOpt("SGXB_TEST_BOOLOPT_ON");
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(*v);
  }
  {
    EnvGuard g("SGXB_TEST_BOOLOPT_OFF", "0");
    const std::optional<bool> v = EnvBoolOpt("SGXB_TEST_BOOLOPT_OFF");
    ASSERT_TRUE(v.has_value());
    EXPECT_FALSE(*v);
  }
  {
    // A malformed value is *unset* (plus a warning), not a forced
    // fallback — so downstream ResolveKnob precedence falls through to
    // the next layer (e.g. the planner's cost model).
    EnvGuard g("SGXB_TEST_BOOLOPT_BAD", "sideways");
    const uint64_t warnings = internal::EnvWarningCount();
    EXPECT_FALSE(EnvBoolOpt("SGXB_TEST_BOOLOPT_BAD").has_value());
    EXPECT_EQ(internal::EnvWarningCount(), warnings + 1);
  }
}

TEST(EnvTest, ResolveKnobPrecedenceIsConfigEnvFallback) {
  // All three layers present: config wins.
  EXPECT_TRUE(ResolveKnob<bool>(true, false, false));
  EXPECT_EQ(ResolveKnob<int>(7, 5, 3), 7);
  // Config silent: env wins.
  EXPECT_FALSE(ResolveKnob<bool>(std::nullopt, false, true));
  EXPECT_EQ(ResolveKnob<int>(std::nullopt, 5, 3), 5);
  // Both silent: fallback.
  EXPECT_TRUE(ResolveKnob<bool>(std::nullopt, std::nullopt, true));
  EXPECT_EQ(ResolveKnob<int>(std::nullopt, std::nullopt, 3), 3);
  // A config value of false still beats env true (presence, not truth,
  // decides precedence).
  EXPECT_FALSE(ResolveKnob<bool>(false, true, true));
}

TEST(EnvTest, ResolveKnobDrivesEnvBoolOptEndToEnd) {
  // The shared-resolver contract used by tpch::PipelineEnabled and the
  // planner: ResolveKnob(config.pipeline, EnvBoolOpt(...), false).
  {
    EnvGuard g("SGXB_TEST_RESOLVE_PIPE", "1");
    EXPECT_TRUE(ResolveKnob<bool>(std::nullopt,
                                  EnvBoolOpt("SGXB_TEST_RESOLVE_PIPE"),
                                  false));
    EXPECT_FALSE(ResolveKnob<bool>(false,
                                   EnvBoolOpt("SGXB_TEST_RESOLVE_PIPE"),
                                   false));
  }
  ::unsetenv("SGXB_TEST_RESOLVE_PIPE");
  EXPECT_FALSE(ResolveKnob<bool>(std::nullopt,
                                 EnvBoolOpt("SGXB_TEST_RESOLVE_PIPE"),
                                 false));
}

}  // namespace
}  // namespace sgxb
