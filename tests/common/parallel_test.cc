#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/barrier.h"

namespace sgxb {
namespace {

TEST(SplitRangeTest, CoversWholeRangeWithoutOverlap) {
  for (size_t total : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
    for (int parts : {1, 2, 3, 7, 16}) {
      size_t covered = 0;
      size_t prev_end = 0;
      for (int i = 0; i < parts; ++i) {
        Range r = SplitRange(total, parts, i);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(SplitRangeTest, BalancedWithinOne) {
  for (int parts : {3, 7, 16}) {
    size_t min_size = SIZE_MAX, max_size = 0;
    for (int i = 0; i < parts; ++i) {
      Range r = SplitRange(1000, parts, i);
      min_size = std::min(min_size, r.size());
      max_size = std::max(max_size, r.size());
    }
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(ParallelRunTest, RunsEveryThreadExactlyOnce) {
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> hits(kThreads);
  for (auto& h : hits) h = 0;
  ASSERT_TRUE(
      ParallelRun(kThreads, [&](int tid) { hits[tid].fetch_add(1); }).ok());
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunTest, SingleThreadRunsInline) {
  int tid_seen = -1;
  ASSERT_TRUE(ParallelRun(1, [&](int tid) { tid_seen = tid; }).ok());
  EXPECT_EQ(tid_seen, 0);
}

TEST(ParallelRunTest, RejectsNonPositiveThreadCount) {
  EXPECT_FALSE(ParallelRun(0, [](int) {}).ok());
  EXPECT_FALSE(ParallelRun(-3, [](int) {}).ok());
}

TEST(BarrierTest, ExactlyOneSerialThreadPerGeneration) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 20;
  Barrier barrier(kThreads);
  std::atomic<int> serial_count{0};
  ParallelRun(kThreads, [&](int) {
    for (int r = 0; r < kRounds; ++r) {
      if (barrier.Wait()) serial_count.fetch_add(1);
    }
  });
  EXPECT_EQ(serial_count.load(), kRounds);
}

TEST(BarrierTest, WaitThenRunsEpilogueOncePerRound) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<int> observed_during{0};
  ParallelRun(kThreads, [&](int) {
    for (int r = 0; r < kRounds; ++r) {
      barrier.WaitThen([&] { counter.fetch_add(1); });
      // Every thread must observe the epilogue of its round completed.
      observed_during.fetch_add(counter.load() >= r + 1 ? 1 : 0);
    }
  });
  EXPECT_EQ(counter.load(), kRounds);
  EXPECT_EQ(observed_during.load(), kThreads * kRounds);
}

TEST(BarrierTest, PhasesAreOrdered) {
  // Classic phase test: all writes of phase 1 must be visible in phase 2.
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::vector<int> data(kThreads, 0);
  std::atomic<int> errors{0};
  ParallelRun(kThreads, [&](int tid) {
    data[tid] = tid + 1;
    barrier.Wait();
    int sum = std::accumulate(data.begin(), data.end(), 0);
    if (sum != kThreads * (kThreads + 1) / 2) errors.fetch_add(1);
  });
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace sgxb
