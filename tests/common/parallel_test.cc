#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/barrier.h"

namespace sgxb {
namespace {

TEST(SplitRangeTest, CoversWholeRangeWithoutOverlap) {
  for (size_t total : {0u, 1u, 7u, 64u, 1000u, 1001u}) {
    for (int parts : {1, 2, 3, 7, 16}) {
      size_t covered = 0;
      size_t prev_end = 0;
      for (int i = 0; i < parts; ++i) {
        Range r = SplitRange(total, parts, i);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(SplitRangeTest, BalancedWithinOne) {
  for (int parts : {3, 7, 16}) {
    size_t min_size = SIZE_MAX, max_size = 0;
    for (int i = 0; i < parts; ++i) {
      Range r = SplitRange(1000, parts, i);
      min_size = std::min(min_size, r.size());
      max_size = std::max(max_size, r.size());
    }
    EXPECT_LE(max_size - min_size, 1u);
  }
}

TEST(ParallelRunTest, RunsEveryThreadExactlyOnce) {
  constexpr int kThreads = 8;
  std::vector<std::atomic<int>> hits(kThreads);
  for (auto& h : hits) h = 0;
  ASSERT_TRUE(
      ParallelRun(kThreads, [&](int tid) { hits[tid].fetch_add(1); }).ok());
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunTest, SingleThreadRunsInline) {
  int tid_seen = -1;
  ASSERT_TRUE(ParallelRun(1, [&](int tid) { tid_seen = tid; }).ok());
  EXPECT_EQ(tid_seen, 0);
}

TEST(ParallelRunTest, RejectsNonPositiveThreadCount) {
  EXPECT_FALSE(ParallelRun(0, [](int) {}).ok());
  EXPECT_FALSE(ParallelRun(-3, [](int) {}).ok());
}

TEST(ParallelRunTest, ThrowingWorkerSurfacesAsStatus) {
  // Regression: a throwing worker used to escape the std::thread body and
  // call std::terminate, taking the whole benchmark process down.
  Status st = ParallelRun(4, [](int tid) {
    if (tid == 2) throw std::runtime_error("worker exploded");
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("worker exploded"), std::string::npos);
}

TEST(ParallelForTest, CoverageMatchesSerialSum) {
  constexpr size_t kTotal = 10000;
  std::atomic<uint64_t> sum{0};
  ParallelForOptions opts;
  opts.num_threads = 4;
  ASSERT_TRUE(ParallelFor(
                  kTotal, 64,
                  [&](Range r, int) {
                    uint64_t local = 0;
                    for (size_t i = r.begin; i < r.end; ++i) local += i;
                    sum.fetch_add(local);
                  },
                  opts)
                  .ok());
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

TEST(ParallelForTest, MorselCountIsExactAcrossLanes) {
  // With far more morsels than lanes, work may move between lanes via
  // stealing, but the total number of executed morsels must be exact.
  constexpr int kLanes = 4;
  std::vector<std::atomic<uint32_t>> per_lane(kLanes);
  for (auto& p : per_lane) p = 0;
  ParallelForOptions opts;
  opts.num_threads = kLanes;
  ASSERT_TRUE(ParallelFor(
                  1 << 14, 16,
                  [&](Range r, int lane) {
                    volatile uint64_t acc = 0;
                    for (size_t i = r.begin; i < r.end; ++i) acc = acc + i;
                    per_lane[lane].fetch_add(1);
                  },
                  opts)
                  .ok());
  uint64_t total = 0;
  for (auto& p : per_lane) total += p.load();
  EXPECT_EQ(total, (1u << 14) / 16);
}

TEST(BarrierTest, ExactlyOneSerialThreadPerGeneration) {
  constexpr int kThreads = 6;
  constexpr int kRounds = 20;
  Barrier barrier(kThreads);
  std::atomic<int> serial_count{0};
  ParallelRun(kThreads, [&](int) {
    for (int r = 0; r < kRounds; ++r) {
      if (barrier.Wait()) serial_count.fetch_add(1);
    }
  });
  EXPECT_EQ(serial_count.load(), kRounds);
}

TEST(BarrierTest, WaitThenRunsEpilogueOncePerRound) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 10;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<int> observed_during{0};
  ParallelRun(kThreads, [&](int) {
    for (int r = 0; r < kRounds; ++r) {
      barrier.WaitThen([&] { counter.fetch_add(1); });
      // Every thread must observe the epilogue of its round completed.
      observed_during.fetch_add(counter.load() >= r + 1 ? 1 : 0);
    }
  });
  EXPECT_EQ(counter.load(), kRounds);
  EXPECT_EQ(observed_during.load(), kThreads * kRounds);
}

TEST(BarrierTest, PhasesAreOrdered) {
  // Classic phase test: all writes of phase 1 must be visible in phase 2.
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::vector<int> data(kThreads, 0);
  std::atomic<int> errors{0};
  ParallelRun(kThreads, [&](int tid) {
    data[tid] = tid + 1;
    barrier.Wait();
    int sum = std::accumulate(data.begin(), data.end(), 0);
    if (sum != kThreads * (kThreads + 1) / 2) errors.fetch_add(1);
  });
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace sgxb
