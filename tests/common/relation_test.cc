#include "common/relation.h"

#include <gtest/gtest.h>

#include "common/cpu_info.h"
#include "common/types.h"

namespace sgxb {
namespace {

TEST(TypesTest, TupleIsEightBytes) {
  EXPECT_EQ(sizeof(Tuple), 8u);
  EXPECT_EQ(BytesToTuples(100_MiB), 100u * 1024 * 1024 / 8);
}

TEST(TypesTest, SizeLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(TypesTest, EnumNames) {
  EXPECT_STREQ(ExecutionSettingToString(ExecutionSetting::kPlainCpu),
               "Plain CPU");
  EXPECT_STREQ(
      ExecutionSettingToString(ExecutionSetting::kSgxDataInEnclave),
      "SGX Data in Enclave");
  EXPECT_STREQ(
      ExecutionSettingToString(ExecutionSetting::kSgxDataOutsideEnclave),
      "SGX Data outside Enclave");
  EXPECT_STREQ(KernelFlavorToString(KernelFlavor::kReference),
               "reference");
  EXPECT_STREQ(KernelFlavorToString(KernelFlavor::kUnrolledReordered),
               "unrolled+reordered");
  EXPECT_STREQ(MemoryRegionToString(MemoryRegion::kEnclave), "enclave");
}

TEST(RelationTest, AllocateAndAccess) {
  auto r = Relation::Allocate(100, MemoryRegion::kUntrusted);
  ASSERT_TRUE(r.ok());
  Relation rel = std::move(r).value();
  EXPECT_EQ(rel.num_tuples(), 100u);
  EXPECT_EQ(rel.size_bytes(), 800u);
  rel[5] = Tuple{42, 43};
  EXPECT_EQ(rel[5].key, 42u);
  EXPECT_EQ(rel[5].payload, 43u);
}

TEST(RelationTest, RegionTagPropagates) {
  auto rel = Relation::Allocate(10, MemoryRegion::kEnclave, 1).value();
  EXPECT_EQ(rel.region(), MemoryRegion::kEnclave);
  EXPECT_EQ(rel.numa_node(), 1);
}

TEST(ColumnTest, TypedColumns) {
  auto c8 = Column<uint8_t>::Allocate(1000, MemoryRegion::kUntrusted)
                .value();
  auto c32 = Column<uint32_t>::Allocate(1000, MemoryRegion::kUntrusted)
                 .value();
  EXPECT_EQ(c8.size_bytes(), 1000u);
  EXPECT_EQ(c32.size_bytes(), 4000u);
  c8[999] = 7;
  c32[999] = 70000;
  EXPECT_EQ(c8[999], 7);
  EXPECT_EQ(c32[999], 70000u);
}

TEST(CpuInfoTest, DetectsSomethingPlausible) {
  const CpuInfo& info = CpuInfo::Host();
  EXPECT_GE(info.logical_cores, 1);
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_GT(info.l3_bytes, info.l1d_bytes);
  EXPECT_STRNE(SimdLevelToString(info.max_simd), "unknown");
}

}  // namespace
}  // namespace sgxb
