#include "common/status.h"

#include <gtest/gtest.h>

namespace sgxb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad radix bits");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad radix bits");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad radix bits");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)),
                 "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status Fails() { return Status::Internal("inner"); }

Status UsesReturnNotOk() {
  SGXB_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kInternal);
}

Result<int> ProducesValue() { return 7; }

Status UsesAssignOrReturn(int* out) {
  SGXB_ASSIGN_OR_RETURN(*out, ProducesValue());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnAssigns) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace sgxb
