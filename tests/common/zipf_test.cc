#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace sgxb {
namespace {

std::vector<uint64_t> Frequencies(uint64_t n, double theta, int draws,
                                  uint64_t seed = 3) {
  ZipfGenerator zipf(n, theta, seed);
  std::vector<uint64_t> freq(n, 0);
  for (int i = 0; i < draws; ++i) ++freq[zipf.Next()];
  return freq;
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator zipf(100, 0.9, 1);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(), 100u);
  }
}

TEST(ZipfTest, Deterministic) {
  ZipfGenerator a(1000, 0.7, 5), b(1000, 0.7, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  const uint64_t n = 16;
  auto freq = Frequencies(n, 0.0, 160000);
  for (uint64_t f : freq) {
    EXPECT_NEAR(static_cast<double>(f), 10000.0, 1500.0);
  }
}

TEST(ZipfTest, HigherThetaConcentratesMass) {
  const uint64_t n = 10000;
  const int draws = 200000;
  double shares[3];
  const double thetas[3] = {0.0, 0.5, 0.95};
  for (int t = 0; t < 3; ++t) {
    auto freq = Frequencies(n, thetas[t], draws);
    std::sort(freq.begin(), freq.end(), std::greater<>());
    uint64_t top = 0;
    for (size_t i = 0; i < n / 100; ++i) top += freq[i];
    shares[t] = static_cast<double>(top) / draws;
  }
  EXPECT_LT(shares[0], shares[1]);
  EXPECT_LT(shares[1], shares[2]);
  EXPECT_GT(shares[2], 0.4);  // heavy skew -> top 1% dominates
}

TEST(ZipfTest, HottestKeyIsZero) {
  const uint64_t n = 1000;
  auto freq = Frequencies(n, 0.9, 100000);
  uint64_t hottest =
      std::max_element(freq.begin(), freq.end()) - freq.begin();
  EXPECT_EQ(hottest, 0u);
}

TEST(ZipfTest, DegenerateDomains) {
  ZipfGenerator one(1, 0.9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.Next(), 0u);
  ZipfGenerator two(2, 0.5);
  bool saw[2] = {false, false};
  for (int i = 0; i < 1000; ++i) saw[two.Next()] = true;
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(ZipfTest, ExtremeThetaIsClamped) {
  // theta >= 1 diverges; the generator clamps instead of misbehaving.
  ZipfGenerator zipf(100, 5.0, 2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 100u);
}

}  // namespace
}  // namespace sgxb
