#include "common/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sgxb {
namespace {

TEST(Lcg64Test, Deterministic) {
  Lcg64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Lcg64Test, BoundedStaysInBounds) {
  Lcg64 rng(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(37), 37u);
  }
}

TEST(Lcg64Test, BoundedCoversRange) {
  Lcg64 rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256Test, Deterministic) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256Test, DoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(321);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  // Expect each bucket within 10% of the mean — loose but catches gross
  // bias or a broken generator.
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 10);
  }
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t state = 0;
  uint64_t a = SplitMix64(state);
  uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace sgxb
