#include "common/bitvector.h"

#include <gtest/gtest.h>

namespace sgxb {
namespace {

TEST(BitVectorTest, StartsZeroed) {
  auto bv = BitVector::Allocate(200, MemoryRegion::kUntrusted).value();
  EXPECT_EQ(bv.num_bits(), 200u);
  EXPECT_EQ(bv.num_words(), 4u);
  EXPECT_EQ(bv.CountOnes(), 0u);
  for (size_t i = 0; i < 200; ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, SetAndClear) {
  auto bv = BitVector::Allocate(130, MemoryRegion::kUntrusted).value();
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.CountOnes(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.CountOnes(), 3u);
}

TEST(BitVectorTest, WordAccessMatchesBitAccess) {
  auto bv = BitVector::Allocate(128, MemoryRegion::kUntrusted).value();
  bv.words()[0] = 0xff00ff00ff00ff00ull;
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(bv.Get(i), ((i / 8) % 2) == 1) << i;
  }
  EXPECT_EQ(bv.CountOnes(), 32u);
}

TEST(BitVectorTest, SizeNotMultipleOf64) {
  auto bv = BitVector::Allocate(70, MemoryRegion::kUntrusted).value();
  EXPECT_EQ(bv.num_words(), 2u);
  bv.Set(69);
  EXPECT_EQ(bv.CountOnes(), 1u);
}

}  // namespace
}  // namespace sgxb
