#include "storage/buffer_manager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/column_view.h"

namespace sgxb::storage {
namespace {

// A column of `n` u32 values with a date-like narrow range so spill
// images compress, value[i] derived from i so any partition mix-up is
// caught by value checks.
std::vector<uint32_t> MakeValues(size_t n) {
  std::vector<uint32_t> vals(n);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = 8000000u + static_cast<uint32_t>(i % 1000);
  }
  return vals;
}

BufferManager::Config SmallPool(size_t buffer_bytes,
                                size_t partition_rows = 4096) {
  BufferManager::Config cfg;
  cfg.buffer_bytes = buffer_bytes;
  cfg.partition_rows = partition_rows;
  cfg.pin_wait_timeout_ms = 200;
  return cfg;
}

TEST(BufferManagerTest, PinReturnsRegisteredValues) {
  BufferManager bm(SmallPool(1 << 20));
  auto vals = MakeValues(10000);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();
  ASSERT_EQ(col->num_values(), vals.size());
  ASSERT_EQ(col->num_partitions(), 3u);  // 4096 + 4096 + 1808
  EXPECT_EQ(col->PartitionValues(2), 10000u - 2 * 4096u);

  for (size_t p = 0; p < col->num_partitions(); ++p) {
    const uint32_t* run = col->PinPartition(p).value();
    const size_t base = col->PartitionBegin(p);
    for (size_t i = 0; i < col->PartitionValues(p); ++i) {
      ASSERT_EQ(run[i], vals[base + i]) << "p=" << p << " i=" << i;
    }
    col->UnpinPartition(p);
  }
  EXPECT_EQ(bm.stats().partitions_registered, 3u);
  EXPECT_EQ(bm.stats().partitions_reloaded, 3u);  // all first-touch loads
}

TEST(BufferManagerTest, SmallPoolEvictsAndReloads) {
  // Pool holds ~2 decoded partitions (4096 * 4 = 16 KiB each); scanning
  // 8 partitions twice must evict and reload.
  BufferManager bm(SmallPool(36 << 10));
  auto vals = MakeValues(8 * 4096);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();

  for (int round = 0; round < 2; ++round) {
    for (size_t p = 0; p < col->num_partitions(); ++p) {
      const uint32_t* run = col->PinPartition(p).value();
      ASSERT_EQ(run[0], vals[col->PartitionBegin(p)]);
      col->UnpinPartition(p);
    }
  }
  BufferManagerStats s = bm.stats();
  EXPECT_GT(s.partitions_evicted, 0u);
  EXPECT_GT(s.partitions_reloaded, 8u);  // second round reloads
  EXPECT_GT(s.decrypt_bytes, 0u);
  EXPECT_LE(s.resident_bytes, 36u << 10);
}

TEST(BufferManagerTest, CompressionShrinksSpillImages) {
  auto vals = MakeValues(64 * 1024);

  BufferManager comp(SmallPool(1 << 20));
  comp.AddColumn("c", vals.data(), vals.size()).value();
  BufferManager::Config raw_cfg = SmallPool(1 << 20);
  raw_cfg.compress = false;
  BufferManager raw(raw_cfg);
  raw.AddColumn("c", vals.data(), vals.size()).value();

  EXPECT_EQ(raw.stats().spill_payload_bytes, vals.size() * sizeof(uint32_t));
  EXPECT_LT(comp.stats().spill_payload_bytes,
            raw.stats().spill_payload_bytes / 2);
  EXPECT_GT(comp.stats().CompressionRatio(), 2.0);
  EXPECT_EQ(comp.stats().logical_bytes, vals.size() * sizeof(uint32_t));
}

TEST(BufferManagerTest, PinnedPartitionIsNeverEvicted) {
  // Pool fits two partitions; hold a pin on partition 0 while sweeping
  // the rest — partition 0's data must stay valid throughout.
  BufferManager bm(SmallPool(36 << 10));
  auto vals = MakeValues(8 * 4096);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();

  const uint32_t* held = col->PinPartition(0).value();
  for (int round = 0; round < 3; ++round) {
    for (size_t p = 1; p < col->num_partitions(); ++p) {
      const uint32_t* run = col->PinPartition(p).value();
      ASSERT_EQ(run[0], vals[col->PartitionBegin(p)]);
      col->UnpinPartition(p);
    }
    // The held partition's memory is still the registered data.
    for (size_t i = 0; i < 4096; ++i) ASSERT_EQ(held[i], vals[i]);
  }
  EXPECT_GT(bm.stats().partitions_evicted, 0u);
  col->UnpinPartition(0);
}

TEST(BufferManagerTest, OverPinnedPoolFailsWithResourceExhausted) {
  // Pool fits one partition; pinning a second while the first is held
  // cannot succeed and must time out rather than hang.
  BufferManager bm(SmallPool(20 << 10));
  auto vals = MakeValues(4 * 4096);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();

  ASSERT_TRUE(col->PinPartition(0).ok());
  auto second = col->PinPartition(1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(bm.stats().pin_waits, 0u);
  col->UnpinPartition(0);

  // With the pin released the same partition loads fine.
  ASSERT_TRUE(col->PinPartition(1).ok());
  col->UnpinPartition(1);
}

TEST(BufferManagerTest, MultipleColumnsShareThePool) {
  BufferManager bm(SmallPool(64 << 10));
  auto a_vals = MakeValues(4 * 4096);
  std::vector<uint8_t> b_vals(4 * 4096);
  for (size_t i = 0; i < b_vals.size(); ++i) {
    b_vals[i] = static_cast<uint8_t>(i % 7);
  }
  PagedColumn<uint32_t>* a =
      bm.AddColumn("t.a", a_vals.data(), a_vals.size()).value();
  PagedColumn<uint8_t>* b =
      bm.AddColumn("t.b", b_vals.data(), b_vals.size()).value();

  for (size_t p = 0; p < a->num_partitions(); ++p) {
    const uint32_t* ra = a->PinPartition(p).value();
    const uint8_t* rb = b->PinPartition(p).value();
    const size_t base = a->PartitionBegin(p);
    for (size_t i = 0; i < a->PartitionValues(p); ++i) {
      ASSERT_EQ(ra[i], a_vals[base + i]);
      ASSERT_EQ(rb[i], b_vals[base + i]);
    }
    a->UnpinPartition(p);
    b->UnpinPartition(p);
  }
  EXPECT_EQ(bm.stats().partitions_registered, 8u);
}

TEST(BufferManagerTest, ForEachRunCoversArbitraryWindows) {
  BufferManager bm(SmallPool(1 << 20));
  auto vals = MakeValues(3 * 4096 + 17);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();
  ColumnView<uint32_t> view(col);

  Xoshiro256 rng(3);
  for (int round = 0; round < 20; ++round) {
    size_t b = rng.NextBounded(vals.size());
    size_t e = b + rng.NextBounded(vals.size() - b + 1);
    uint64_t sum = 0;
    ASSERT_TRUE(ForEachRun(view, b, e,
                           [&](const uint32_t* run, size_t base,
                               size_t n) {
                             for (size_t i = 0; i < n; ++i) {
                               ASSERT_EQ(run[i], vals[base + i]);
                               sum += run[i];
                             }
                           })
                    .ok());
    uint64_t expected = 0;
    for (size_t i = b; i < e; ++i) expected += vals[i];
    EXPECT_EQ(sum, expected) << "window [" << b << ", " << e << ")";
  }
}

TEST(BufferManagerTest, ColumnReaderRandomAccessMatchesSource) {
  BufferManager bm(SmallPool(36 << 10));
  auto vals = MakeValues(8 * 4096);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();
  ColumnReader<uint32_t> reader((ColumnView<uint32_t>(col)));

  Xoshiro256 rng(4);
  for (int i = 0; i < 20000; ++i) {
    const size_t idx = rng.NextBounded(vals.size());
    ASSERT_EQ(reader[idx], vals[idx]) << idx;
  }
  EXPECT_TRUE(reader.status().ok());
}

TEST(BufferManagerTest, PrefetchLoadsAheadOfThePin) {
  // Prefetch is an asynchronous hint, so wait for the worker to complete
  // the loads before pinning; the pins must then be hits (no further
  // demand reloads).
  BufferManager bm(SmallPool(256 << 10));
  auto vals = MakeValues(8 * 4096);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();

  for (size_t p = 0; p < 4; ++p) col->PrefetchPartition(p);
  for (int spin = 0; spin < 2000 && bm.stats().prefetch_loads < 4; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(bm.stats().prefetch_loads, 4u);

  for (size_t p = 0; p < 4; ++p) {
    const uint32_t* run = col->PinPartition(p).value();
    ASSERT_EQ(run[0], vals[col->PartitionBegin(p)]);
    col->UnpinPartition(p);
  }
  EXPECT_EQ(bm.stats().partitions_reloaded, 0u);

  // Prefetching an already-resident partition is a no-op.
  col->PrefetchPartition(0);
  EXPECT_EQ(bm.stats().prefetch_loads, 4u);
}

TEST(BufferManagerTest, ConfigFromEnvReadsKnobs) {
  setenv("SGXBENCH_BUFFER_BYTES", "1048576", 1);
  setenv("SGXBENCH_PARTITION_ROWS", "8192", 1);
  setenv("SGXBENCH_SPILL_COMPRESS", "0", 1);
  setenv("SGXBENCH_SPILL_PREFETCH", "0", 1);
  BufferManager::Config cfg = BufferManager::ConfigFromEnv();
  EXPECT_EQ(cfg.buffer_bytes, 1u << 20);
  EXPECT_EQ(cfg.partition_rows, 8192u);
  EXPECT_FALSE(cfg.compress);
  EXPECT_FALSE(cfg.prefetch);
  unsetenv("SGXBENCH_BUFFER_BYTES");
  unsetenv("SGXBENCH_PARTITION_ROWS");
  unsetenv("SGXBENCH_SPILL_COMPRESS");
  unsetenv("SGXBENCH_SPILL_PREFETCH");
  BufferManager::Config defaults = BufferManager::ConfigFromEnv();
  EXPECT_EQ(defaults.buffer_bytes, 256ull << 20);
  EXPECT_TRUE(defaults.compress);
}

TEST(BufferManagerTest, CapacityWaiterSurvivesPinChurn) {
  // Regression test for pin-wait fairness under HTAP-style churn: two
  // threads overlap pins on partition 0 so its pin count almost never
  // reaches zero, while a third thread needs capacity for partition 1.
  // The waiter's deadline must refresh on every unpin (the pool is
  // moving, even though no eviction opportunity arose yet), so it
  // outlives a churn phase much longer than pin_wait_timeout_ms and
  // succeeds as soon as the churn drains. Before the fix the deadline
  // was fixed at entry and the waiter woke only when a pin count hit
  // zero, so this pattern timed out with a spurious ResourceExhausted.
  BufferManager::Config cfg = SmallPool(20 << 10);  // fits one partition
  cfg.pin_wait_timeout_ms = 100;
  cfg.prefetch = false;
  BufferManager bm(cfg);
  auto vals = MakeValues(2 * 4096);
  PagedColumn<uint32_t>* col =
      bm.AddColumn("t.c", vals.data(), vals.size()).value();
  ASSERT_EQ(col->num_partitions(), 2u);

  std::atomic<bool> stop{false};
  auto churn = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // A failed pin is legitimate once the waiter wins the pool; keep
      // churning rather than asserting.
      if (!col->PinPartition(0).ok()) continue;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      col->UnpinPartition(0);
    }
  };
  std::thread c1(churn);
  std::thread c2(churn);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Churn runs ~5x longer than the pin-wait timeout.
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    stop = true;
  });
  auto pinned = col->PinPartition(1);
  stopper.join();
  c1.join();
  c2.join();
  ASSERT_TRUE(pinned.ok()) << pinned.status().message();
  EXPECT_EQ(pinned.value()[0], vals[col->PartitionBegin(1)]);
  col->UnpinPartition(1);
  EXPECT_GT(bm.stats().pin_waits, 0u);
}

TEST(BufferManagerTest, ResidentViewsBypassTheManager) {
  // A ColumnView over plain memory must not touch any manager machinery.
  std::vector<uint32_t> vals = MakeValues(1000);
  ColumnView<uint32_t> view(vals.data(), vals.size());
  EXPECT_FALSE(view.paged());
  uint64_t sum = 0;
  ASSERT_TRUE(ForEachRun(view, 10, 900,
                         [&](const uint32_t* run, size_t base, size_t n) {
                           EXPECT_EQ(base, 10u);
                           EXPECT_EQ(n, 890u);
                           for (size_t i = 0; i < n; ++i) sum += run[i];
                         })
                  .ok());
  ColumnReader<uint32_t> reader(view);
  EXPECT_EQ(reader[0], vals[0]);
  EXPECT_EQ(reader[999], vals[999]);
  // Out-of-range on a resident view latches an error instead of reading
  // past the end.
  EXPECT_EQ(reader[1000], 0u);
  EXPECT_FALSE(reader.status().ok());
}

}  // namespace
}  // namespace sgxb::storage
