#include "storage/partition_codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"

namespace sgxb::storage {
namespace {

std::vector<uint8_t> Decode8(const PartitionImage& image) {
  std::vector<uint8_t> out(image.num_values);
  EXPECT_TRUE(
      DecodePartition(image, image.payload.As<uint8_t>(), out.data()).ok());
  return out;
}

std::vector<uint32_t> Decode32(const PartitionImage& image) {
  std::vector<uint32_t> out(image.num_values);
  EXPECT_TRUE(
      DecodePartition(image, image.payload.As<uint8_t>(), out.data()).ok());
  return out;
}

TEST(PartitionCodecTest, RejectsBadShapes) {
  uint32_t v = 7;
  EXPECT_FALSE(EncodePartition(&v, 0, 4, true).ok());
  EXPECT_FALSE(EncodePartition(&v, 1, 2, true).ok());
  EXPECT_FALSE(EncodePartition(&v, 1, 8, true).ok());
}

TEST(PartitionCodecTest, CompressionOffAlwaysSpillsRaw) {
  // Trivially compressible data must still come out raw when compression
  // is disabled — the bench baseline depends on it.
  std::vector<uint32_t> vals(4096, 42);
  auto image =
      EncodePartition(vals.data(), vals.size(), 4, /*allow_compress=*/false)
          .value();
  EXPECT_EQ(image.encoding, Encoding::kRaw);
  EXPECT_EQ(image.payload_bytes(), vals.size() * sizeof(uint32_t));
  EXPECT_EQ(Decode32(image), vals);
}

TEST(PartitionCodecTest, DateLikeU32PicksFrameOfReference) {
  // High-magnitude, narrow-range values (dates as day numbers): FoR packs
  // the 11-bit range, dictionary would need ~2k distinct entries.
  Xoshiro256 rng(7);
  std::vector<uint32_t> vals(64 * 1024);
  for (auto& v : vals) {
    v = 8035200u + static_cast<uint32_t>(rng.NextBounded(2000));
  }
  auto image =
      EncodePartition(vals.data(), vals.size(), 4, /*allow_compress=*/true)
          .value();
  EXPECT_EQ(image.encoding, Encoding::kForPacked);
  EXPECT_LT(image.payload_bytes(), image.decoded_bytes() / 2);
  EXPECT_EQ(Decode32(image), vals);
}

TEST(PartitionCodecTest, LowCardinalityU32PicksDictionary) {
  // Few distinct values spread across the whole u32 domain: FoR cannot
  // narrow the range but a dictionary codes each value in 2 bits.
  const uint32_t domain[4] = {17u, 90000u, 3000000000u, 12u};
  Xoshiro256 rng(8);
  std::vector<uint32_t> vals(64 * 1024);
  for (auto& v : vals) v = domain[rng.NextBounded(4)];
  auto image =
      EncodePartition(vals.data(), vals.size(), 4, /*allow_compress=*/true)
          .value();
  EXPECT_EQ(image.encoding, Encoding::kDict);
  EXPECT_EQ(image.dict_size, 4u);
  EXPECT_LT(image.payload_bytes(), image.decoded_bytes() / 4);
  EXPECT_EQ(Decode32(image), vals);
}

TEST(PartitionCodecTest, FlagLikeU8CompressesAndRoundTrips) {
  // Categorical u8 (returnflag-style): 3 distinct values pack to 2-3 bits
  // either via dict codes or FoR over the narrow range.
  const uint8_t domain[3] = {0, 1, 2};
  Xoshiro256 rng(9);
  std::vector<uint8_t> vals(64 * 1024);
  for (auto& v : vals) v = domain[rng.NextBounded(3)];
  auto image =
      EncodePartition(vals.data(), vals.size(), 1, /*allow_compress=*/true)
          .value();
  EXPECT_NE(image.encoding, Encoding::kRaw);
  EXPECT_LT(image.payload_bytes(), image.decoded_bytes() / 2);
  EXPECT_EQ(Decode8(image), vals);
}

TEST(PartitionCodecTest, IncompressibleDataFallsBackToRaw) {
  // Full-width random u32: neither FoR (range ~2^32) nor dict (all
  // distinct) beats raw, so raw must win even with compression on.
  Xoshiro256 rng(10);
  std::vector<uint32_t> vals(16 * 1024);
  for (auto& v : vals) v = static_cast<uint32_t>(rng.Next());
  auto image =
      EncodePartition(vals.data(), vals.size(), 4, /*allow_compress=*/true)
          .value();
  EXPECT_EQ(image.encoding, Encoding::kRaw);
  EXPECT_EQ(Decode32(image), vals);
}

TEST(PartitionCodecTest, ConstantColumnShrinksToNearNothing) {
  std::vector<uint32_t> vals(64 * 1024, 123456789u);
  auto image =
      EncodePartition(vals.data(), vals.size(), 4, /*allow_compress=*/true)
          .value();
  EXPECT_NE(image.encoding, Encoding::kRaw);
  EXPECT_LT(image.payload_bytes(), vals.size() / 2);
  EXPECT_EQ(Decode32(image), vals);
}

TEST(PartitionCodecTest, OddPartitionSizesRoundTrip) {
  // Tail partitions are not multiples of the fields-per-word count;
  // decode must stop exactly at num_values.
  Xoshiro256 rng(11);
  for (size_t n : {1u, 2u, 5u, 63u, 64u, 65u, 1000u, 4097u}) {
    std::vector<uint32_t> vals(n);
    for (auto& v : vals) {
      v = 500u + static_cast<uint32_t>(rng.NextBounded(1000));
    }
    auto image =
        EncodePartition(vals.data(), n, 4, /*allow_compress=*/true).value();
    EXPECT_EQ(Decode32(image), vals) << "n=" << n;
  }
}

TEST(PartitionCodecTest, EncodingNamesAreStable) {
  // CSV columns in the bench artifacts use these names.
  EXPECT_STREQ(EncodingName(Encoding::kRaw), "raw");
  EXPECT_STREQ(EncodingName(Encoding::kForPacked), "for_packed");
  EXPECT_STREQ(EncodingName(Encoding::kDict), "dict");
}

}  // namespace
}  // namespace sgxb::storage
