// Concurrent pin/unpin/prefetch stress over a pool far smaller than the
// working set, so eviction, demand reload, and the prefetch worker all
// race. Run under TSan in CI (-L storage_stress_test); the invariants —
// pinned data never changes underfoot, per-thread sums match the source —
// catch use-after-evict as data corruption even without a sanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/buffer_manager.h"
#include "storage/column_view.h"

namespace sgxb::storage {
namespace {

constexpr size_t kPartRows = 2048;
constexpr size_t kParts = 24;
constexpr size_t kRows = kPartRows * kParts;

std::vector<uint32_t> MakeValues() {
  std::vector<uint32_t> vals(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    vals[i] = 1000000u + static_cast<uint32_t>(i * 2654435761u % 3000);
  }
  return vals;
}

TEST(BufferStressTest, ConcurrentPinEvictPrefetch) {
  BufferManager::Config cfg;
  cfg.partition_rows = kPartRows;
  // ~5 decoded u32 partitions (8 KiB each) for 24 partitions x 8 threads.
  cfg.buffer_bytes = 44 << 10;
  cfg.pin_wait_timeout_ms = 30000;
  BufferManager bm(cfg);

  const std::vector<uint32_t> vals = MakeValues();
  PagedColumn<uint32_t>* col =
      bm.AddColumn("stress.c", vals.data(), vals.size()).value();
  ASSERT_EQ(col->num_partitions(), kParts);

  constexpr int kThreads = 8;
  constexpr int kRounds = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      for (int round = 0; round < kRounds; ++round) {
        const size_t p = rng.NextBounded(kParts);
        switch (rng.NextBounded(4)) {
          case 0:
            // Pure prefetch hint; never blocks.
            col->PrefetchPartition(p);
            break;
          case 1: {
            // Random-access reader across partition boundaries.
            ColumnReader<uint32_t> reader((ColumnView<uint32_t>(col)));
            for (int i = 0; i < 200; ++i) {
              const size_t idx = rng.NextBounded(kRows);
              if (reader[idx] != vals[idx]) {
                failures.fetch_add(1);
                return;
              }
            }
            if (!reader.status().ok()) failures.fetch_add(1);
            break;
          }
          default: {
            // Pin one partition and verify every value while other
            // threads force evictions around it.
            auto pinned = col->PinPartition(p);
            if (!pinned.ok()) {
              failures.fetch_add(1);
              return;
            }
            const uint32_t* run = pinned.value();
            const size_t base = col->PartitionBegin(p);
            for (size_t i = 0; i < col->PartitionValues(p); ++i) {
              if (run[i] != vals[base + i]) {
                failures.fetch_add(1);
                break;
              }
            }
            col->UnpinPartition(p);
            break;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0);
  BufferManagerStats s = bm.stats();
  // The pool is ~5 partitions for a 24-partition working set: the clock
  // must have cycled.
  EXPECT_GT(s.partitions_evicted, kParts);
  EXPECT_GT(s.partitions_reloaded, kParts);
  EXPECT_EQ(s.partitions_registered, kParts);
}

TEST(BufferStressTest, ParallelSequentialScansAgree) {
  BufferManager::Config cfg;
  cfg.partition_rows = kPartRows;
  cfg.buffer_bytes = 60 << 10;
  cfg.pin_wait_timeout_ms = 30000;
  BufferManager bm(cfg);

  const std::vector<uint32_t> vals = MakeValues();
  PagedColumn<uint32_t>* col =
      bm.AddColumn("stress.scan", vals.data(), vals.size()).value();

  uint64_t expected = 0;
  for (uint32_t v : vals) expected += v;

  constexpr int kThreads = 6;
  std::vector<uint64_t> sums(kThreads, 0);
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t sum = 0;
      Status s = ForEachRun(ColumnView<uint32_t>(col), 0, kRows,
                            [&](const uint32_t* run, size_t, size_t n) {
                              for (size_t i = 0; i < n; ++i) sum += run[i];
                            });
      if (!s.ok()) errors.fetch_add(1);
      sums[t] = sum;
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(errors.load(), 0);
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(sums[t], expected) << t;
}

}  // namespace
}  // namespace sgxb::storage
