#include "tpch/tpch_gen.h"

#include <gtest/gtest.h>

#include "tpch/tpch_schema.h"

namespace sgxb::tpch {
namespace {

TEST(DateEncodingTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(1992, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1992, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(DaysFromCivil(1994, 1, 1), 731);
  EXPECT_EQ(kDate19940101, 731u);
  EXPECT_EQ(kDate19950101, 1096u);
  EXPECT_EQ(kDate19950315, 1096u + 31 + 28 + 14);
  // TPC-H's last order date.
  EXPECT_EQ(kDate19980802, static_cast<uint32_t>(
                               DaysFromCivil(1998, 8, 2)));
}

class TpchGenTest : public ::testing::Test {
 protected:
  static const TpchDb& Db() {
    static const TpchDb db = [] {
      GenConfig cfg;
      cfg.scale_factor = 0.01;
      return Generate(cfg).value();
    }();
    return db;
  }
};

TEST_F(TpchGenTest, Cardinalities) {
  EXPECT_EQ(Db().customer.num_rows, 1500u);
  EXPECT_EQ(Db().orders.num_rows, 15000u);
  EXPECT_EQ(Db().part.num_rows, 2000u);
  // lineitem: 1..7 lines per order, expectation 4x orders; allow slack.
  EXPECT_GT(Db().lineitem.num_rows, Db().orders.num_rows * 3);
  EXPECT_LT(Db().lineitem.num_rows, Db().orders.num_rows * 5);
}

TEST_F(TpchGenTest, KeysAreDense) {
  for (size_t i = 0; i < Db().customer.num_rows; i += 100) {
    EXPECT_EQ(Db().customer.c_custkey[i], i);
  }
  for (size_t i = 0; i < Db().orders.num_rows; i += 1000) {
    EXPECT_EQ(Db().orders.o_orderkey[i], i);
  }
}

TEST_F(TpchGenTest, ForeignKeysInRange) {
  for (size_t i = 0; i < Db().orders.num_rows; ++i) {
    ASSERT_LT(Db().orders.o_custkey[i], Db().customer.num_rows);
  }
  for (size_t i = 0; i < Db().lineitem.num_rows; ++i) {
    ASSERT_LT(Db().lineitem.l_orderkey[i], Db().orders.num_rows);
    ASSERT_LT(Db().lineitem.l_partkey[i], Db().part.num_rows);
  }
}

TEST_F(TpchGenTest, DbgenDateDerivations) {
  const LineitemTable& l = Db().lineitem;
  const OrdersTable& o = Db().orders;
  for (size_t i = 0; i < l.num_rows; ++i) {
    uint32_t odate = o.o_orderdate[l.l_orderkey[i]];
    ASSERT_GE(l.l_shipdate[i], odate + 1);
    ASSERT_LE(l.l_shipdate[i], odate + 121);
    ASSERT_GE(l.l_commitdate[i], odate + 30);
    ASSERT_LE(l.l_commitdate[i], odate + 90);
    ASSERT_GE(l.l_receiptdate[i], l.l_shipdate[i] + 1);
    ASSERT_LE(l.l_receiptdate[i], l.l_shipdate[i] + 30);
  }
}

TEST_F(TpchGenTest, CategoricalCodesInRange) {
  for (size_t i = 0; i < Db().customer.num_rows; ++i) {
    ASSERT_LT(Db().customer.c_mktsegment[i], kNumSegments);
  }
  const LineitemTable& l = Db().lineitem;
  for (size_t i = 0; i < l.num_rows; ++i) {
    ASSERT_LT(l.l_shipmode[i], kNumShipModes);
    ASSERT_LT(l.l_shipinstruct[i], kNumShipInstructs);
    ASSERT_LT(l.l_returnflag[i], kNumReturnFlags);
    ASSERT_GE(l.l_quantity[i], 1u);
    ASSERT_LE(l.l_quantity[i], 50u);
  }
  for (size_t i = 0; i < Db().part.num_rows; ++i) {
    ASSERT_LT(Db().part.p_brand[i], kNumBrands);
    ASSERT_LT(Db().part.p_container[i], kNumContainers);
    ASSERT_GE(Db().part.p_size[i], 1u);
    ASSERT_LE(Db().part.p_size[i], 50u);
  }
}

TEST_F(TpchGenTest, ReturnFlagFollowsDbgenRule) {
  const LineitemTable& l = Db().lineitem;
  for (size_t i = 0; i < l.num_rows; ++i) {
    if (l.l_receiptdate[i] <= kDate19950617) {
      ASSERT_NE(l.l_returnflag[i], kFlagN);
    } else {
      ASSERT_EQ(l.l_returnflag[i], kFlagN);
    }
  }
}

TEST_F(TpchGenTest, SelectivitiesRoughlyMatchTpch) {
  // BUILDING segment ~ 1/5 of customers.
  size_t building = 0;
  for (size_t i = 0; i < Db().customer.num_rows; ++i) {
    building += Db().customer.c_mktsegment[i] == kSegBuilding;
  }
  double frac =
      static_cast<double>(building) / Db().customer.num_rows;
  EXPECT_NEAR(frac, 0.2, 0.04);

  // Orders per quarter ~ 1/26 of the 6.6-year date range.
  size_t q = 0;
  for (size_t i = 0; i < Db().orders.num_rows; ++i) {
    q += Db().orders.o_orderdate[i] >= kDate19931001 &&
         Db().orders.o_orderdate[i] < kDate19940101;
  }
  EXPECT_NEAR(static_cast<double>(q) / Db().orders.num_rows, 92.0 / 2405,
              0.01);
}

TEST(TpchGenConfigTest, RejectsNonPositiveScale) {
  GenConfig cfg;
  cfg.scale_factor = 0;
  EXPECT_FALSE(Generate(cfg).ok());
}

TEST(TpchGenConfigTest, DeterministicForSeed) {
  GenConfig cfg;
  cfg.scale_factor = 0.001;
  TpchDb a = Generate(cfg).value();
  TpchDb b = Generate(cfg).value();
  ASSERT_EQ(a.lineitem.num_rows, b.lineitem.num_rows);
  for (size_t i = 0; i < a.lineitem.num_rows; i += 17) {
    EXPECT_EQ(a.lineitem.l_shipdate[i], b.lineitem.l_shipdate[i]);
  }
}

}  // namespace
}  // namespace sgxb::tpch
