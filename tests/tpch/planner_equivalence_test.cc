// Equivalence and decision tests for the plan compiler (plan/planner.h):
// every catalog query — including the plan-only ones that never had
// hand-written drivers — must produce byte-identical results through the
// materializing and fused lowerings, over resident and paged columns,
// across probe modes. On top of the matrix: scalar-loop oracles for the
// plan-only Q5-style queries, ad-hoc plans through RunPlan, and unit
// tests for the planner's decision logic (knob precedence, forced join
// flavours, explain output).
//
// Wired into the ASan/UBSan and TSan CI jobs (`ctest -L
// planner_equivalence_test`) alongside pipeline_test.

#include "plan/planner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "plan/catalog.h"
#include "storage/buffer_manager.h"
#include "tpch/paged_db.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace sgxb::tpch {
namespace {

// Same world as paged_queries_test: SF 0.01 resident, plus a paged copy
// through a pool small enough that scans continuously evict and reload.
struct PlannerWorld {
  TpchDb db;
  std::unique_ptr<storage::BufferManager> bm;
  PagedTpchDb paged;

  PlannerWorld() {
    GenConfig gen;
    gen.scale_factor = 0.01;
    db = Generate(gen).value();
    storage::BufferManager::Config cfg;
    cfg.buffer_bytes = 768 << 10;
    cfg.partition_rows = 4096;
    bm = std::make_unique<storage::BufferManager>(cfg);
    paged = PagedTpchDb::Build(db, bm.get()).value();
  }
};

PlannerWorld& World() {
  static PlannerWorld* world = new PlannerWorld();
  return *world;
}

// Restores an env var on scope exit so decision tests cannot leak knobs
// into the equivalence matrix.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// --- Scalar-loop oracles for the plan-only queries -------------------------
// Q5M/Q5G: customer (mktsegment = AUTOMOBILE) JOIN orders (orderdate in
// 1994) JOIN lineitem; count(*) flat / counted per order priority.

uint64_t ReferenceQ5M(const TpchDb& db) {
  std::unordered_set<uint32_t> custs;
  for (size_t i = 0; i < db.customer.num_rows; ++i) {
    if (db.customer.c_mktsegment[i] == kSegAutomobile) {
      custs.insert(db.customer.c_custkey[i]);
    }
  }
  std::unordered_set<uint32_t> orders;
  for (size_t i = 0; i < db.orders.num_rows; ++i) {
    if (db.orders.o_orderdate[i] >= kDate19940101 &&
        db.orders.o_orderdate[i] < kDate19950101 &&
        custs.count(db.orders.o_custkey[i]) != 0) {
      orders.insert(db.orders.o_orderkey[i]);
    }
  }
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (orders.count(db.lineitem.l_orderkey[i]) != 0) ++count;
  }
  return count;
}

std::vector<uint64_t> ReferenceQ5G(const TpchDb& db) {
  std::unordered_set<uint32_t> custs;
  for (size_t i = 0; i < db.customer.num_rows; ++i) {
    if (db.customer.c_mktsegment[i] == kSegAutomobile) {
      custs.insert(db.customer.c_custkey[i]);
    }
  }
  std::unordered_set<uint32_t> orders;
  for (size_t i = 0; i < db.orders.num_rows; ++i) {
    if (db.orders.o_orderdate[i] >= kDate19940101 &&
        db.orders.o_orderdate[i] < kDate19950101 &&
        custs.count(db.orders.o_custkey[i]) != 0) {
      orders.insert(db.orders.o_orderkey[i]);
    }
  }
  std::vector<uint64_t> counts(kNumOrderPriorities, 0);
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint32_t ok = db.lineitem.l_orderkey[i];
    if (orders.count(ok) != 0) ++counts[db.orders.o_orderpriority[ok]];
  }
  return counts;
}

// --- The equivalence matrix -------------------------------------------------

constexpr int kCatalogQueries[] = {1,   3,   6,   10,  12, 19,
                                   105, 106, 112};  // all catalog numbers

using MatrixParam = std::tuple<int, bool, exec::ProbeMode>;

class PlannerEquivalenceTest
    : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PlannerEquivalenceTest, LoweringsAgree) {
  auto [query, paged, probe_mode] = GetParam();
  PlannerWorld& w = World();
  const TpchDbView view = paged ? w.paged.View() : ViewOf(w.db);

  QueryConfig cfg;
  cfg.num_threads = 2;
  cfg.radix_bits = 8;
  cfg.probe_mode = probe_mode;

  cfg.pipeline = false;
  auto materializing = RunQuery(query, view, cfg);
  ASSERT_TRUE(materializing.ok()) << materializing.status().ToString();

  cfg.pipeline = true;
  auto fused = RunQuery(query, view, cfg);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  // And the planner's own choice (no pipeline knob): whichever mode the
  // cost model picks must agree with both forced modes.
  cfg.pipeline.reset();
  auto chosen = RunQuery(query, view, cfg);
  ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();

  EXPECT_EQ(fused.value().count, materializing.value().count);
  EXPECT_EQ(fused.value().group_counts, materializing.value().group_counts);
  EXPECT_EQ(chosen.value().count, materializing.value().count);
  EXPECT_EQ(chosen.value().group_counts,
            materializing.value().group_counts);
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogQueries, PlannerEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kCatalogQueries),
                       ::testing::Bool(),
                       ::testing::Values(exec::ProbeMode::kTupleAtATime,
                                         exec::ProbeMode::kGroupPrefetch,
                                         exec::ProbeMode::kAmac)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      const plan::CatalogEntry* e = plan::FindQuery(std::get<0>(info.param));
      std::string name = e != nullptr ? e->name : "unknown";
      name += std::get<1>(info.param) ? "_Paged" : "_Resident";
      switch (std::get<2>(info.param)) {
        case exec::ProbeMode::kTupleAtATime:
          name += "_Tuple";
          break;
        case exec::ProbeMode::kGroupPrefetch:
          name += "_Gp";
          break;
        case exec::ProbeMode::kAmac:
          name += "_Amac";
          break;
      }
      return name;
    });

// --- Plan-only queries against scalar oracles -------------------------------

TEST(PlanOnlyQueryTest, Q5MultiwayMatchesOracle) {
  PlannerWorld& w = World();
  const uint64_t expected = ReferenceQ5M(w.db);
  ASSERT_GT(expected, 0u) << "degenerate dataset";
  for (bool fused : {false, true}) {
    QueryConfig cfg;
    cfg.num_threads = 2;
    cfg.pipeline = fused;
    auto r = RunQuery(plan::kQueryQ5Multiway, w.db, cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().count, expected) << "fused=" << fused;
  }
}

TEST(PlanOnlyQueryTest, Q5GroupedMatchesOracle) {
  PlannerWorld& w = World();
  const std::vector<uint64_t> expected = ReferenceQ5G(w.db);
  uint64_t total = 0;
  for (uint64_t c : expected) total += c;
  ASSERT_GT(total, 0u) << "degenerate dataset";
  for (bool fused : {false, true}) {
    QueryConfig cfg;
    cfg.num_threads = 2;
    cfg.pipeline = fused;
    auto r = RunQuery(plan::kQueryQ5Grouped, w.db, cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().group_counts, expected) << "fused=" << fused;
    EXPECT_EQ(r.value().count, total) << "fused=" << fused;
  }
}

TEST(PlanOnlyQueryTest, GroupedVariantsAgreeWithLegacyOracle) {
  // Q12G through the planner must still match the hand-written oracle
  // that predates the plan layer.
  PlannerWorld& w = World();
  const auto [high, low] = ReferenceQ12Grouped(w.db);
  for (bool fused : {false, true}) {
    QueryConfig cfg;
    cfg.num_threads = 2;
    cfg.pipeline = fused;
    auto r = RunQuery(plan::kQueryQ12Grouped, w.db, cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.value().group_counts.size(), 2u);
    EXPECT_EQ(r.value().group_counts[0], high);
    EXPECT_EQ(r.value().group_counts[1], low);
  }
}

// --- Ad-hoc plans through RunPlan -------------------------------------------

TEST(RunPlanTest, AdHocPlanRunsInBothModes) {
  // A query that exists in no catalog: orders in 1995 joined to
  // lineitem, counted. Oracle inline.
  PlannerWorld& w = World();
  plan::PlanBuilder b;
  const int ord = b.Scan(
      plan::TableId::kOrders,
      {plan::Predicate::U32Range(plan::ColId::kOOrderdate, kDate19950101,
                                 0xffffffffu)});
  const int li = b.Scan(plan::TableId::kLineitem);
  const int j = b.Join(ord, li, plan::ColId::kOOrderkey,
                       plan::ColId::kLOrderkey);
  auto built = b.Build(b.Aggregate(j, plan::AggSpec::CountStar()), "adhoc");
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const plan::Plan plan = std::move(built).value();

  std::unordered_set<uint32_t> orders;
  for (size_t i = 0; i < w.db.orders.num_rows; ++i) {
    if (w.db.orders.o_orderdate[i] >= kDate19950101) {
      orders.insert(w.db.orders.o_orderkey[i]);
    }
  }
  uint64_t expected = 0;
  for (size_t i = 0; i < w.db.lineitem.num_rows; ++i) {
    if (orders.count(w.db.lineitem.l_orderkey[i]) != 0) ++expected;
  }

  for (bool fused : {false, true}) {
    QueryConfig cfg;
    cfg.num_threads = 2;
    cfg.pipeline = fused;
    auto r = RunPlan(plan, w.db, cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().count, expected) << "fused=" << fused;
    // RunPlan attributes a report window named after the plan.
    EXPECT_EQ(r.value().report.query, "adhoc");
  }
}

TEST(RunPlanTest, InvalidPlanIsRejected) {
  PlannerWorld& w = World();
  QueryConfig cfg;
  plan::Plan empty;
  EXPECT_FALSE(RunPlan(empty, w.db, cfg).ok());
}

TEST(RunQueryTest, UnknownNumbersListTheCatalog) {
  PlannerWorld& w = World();
  QueryConfig cfg;
  auto r = RunQuery(2, w.db, cfg);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown query 2"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("105"), std::string::npos)
      << "error should list the catalog numbers";
}

// --- Planner decision logic --------------------------------------------------

TEST(PlannerDecisionTest, EveryCatalogPlanIsFusedLowerable) {
  for (const plan::CatalogEntry& e : plan::Catalog()) {
    EXPECT_TRUE(plan::FusedLowerable(e.plan)) << e.name;
  }
}

TEST(PlannerDecisionTest, ExplicitPipelineKnobBeatsCostModel) {
  PlannerWorld& w = World();
  const plan::CatalogEntry* q3 = plan::FindQuery(3);
  ASSERT_NE(q3, nullptr);
  QueryConfig cfg;

  cfg.pipeline = false;
  plan::PlanDecisions d = plan::DecideFor(q3->plan, ViewOf(w.db), cfg);
  EXPECT_FALSE(d.fused);
  EXPECT_FALSE(d.mode_cost_based);

  cfg.pipeline = true;
  d = plan::DecideFor(q3->plan, ViewOf(w.db), cfg);
  EXPECT_TRUE(d.fused);
  EXPECT_FALSE(d.mode_cost_based);
}

TEST(PlannerDecisionTest, CostModelPicksModeWhenUnconstrained) {
  PlannerWorld& w = World();
  const plan::CatalogEntry* q3 = plan::FindQuery(3);
  QueryConfig cfg;  // no pipeline knob
  const plan::PlanDecisions d = plan::DecideFor(q3->plan, ViewOf(w.db), cfg);
  EXPECT_TRUE(d.mode_cost_based);
  EXPECT_GT(d.fused_cost_ns, 0.0);
  EXPECT_GT(d.materializing_cost_ns, 0.0);
  // The chosen mode is the cheaper modeled lowering.
  EXPECT_EQ(d.fused, d.fused_cost_ns < d.materializing_cost_ns);
  // Estimates exist for every node, and join nodes carry a choice.
  ASSERT_EQ(d.est_rows.size(), q3->plan.nodes().size());
  for (double est : d.est_rows) EXPECT_GE(est, 0.0);
}

TEST(PlannerDecisionTest, ForcedJoinAlgoOverridesCostModel) {
  PlannerWorld& w = World();
  const plan::CatalogEntry* q3 = plan::FindQuery(3);
  ScopedEnv force("SGXBENCH_JOIN_ALGO", "pht");
  QueryConfig cfg;
  const plan::PlanDecisions d = plan::DecideFor(q3->plan, ViewOf(w.db), cfg);
  for (size_t id = 0; id < q3->plan.nodes().size(); ++id) {
    if (q3->plan.nodes()[id].kind != plan::PlanNode::Kind::kJoin) continue;
    EXPECT_EQ(d.joins[id].algo, join::JoinAlgorithm::kPht);
    EXPECT_FALSE(d.joins[id].cost_based);
  }
  // Results must stay correct under the forced flavour, in both modes.
  for (bool fused : {false, true}) {
    QueryConfig run_cfg;
    run_cfg.num_threads = 2;
    run_cfg.pipeline = fused;
    auto r = RunQuery(3, w.db, run_cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().count, ReferenceQ3(w.db)) << "fused=" << fused;
  }
}

TEST(PlannerDecisionTest, PlannerOffRestoresLegacyBehaviour) {
  PlannerWorld& w = World();
  const plan::CatalogEntry* q3 = plan::FindQuery(3);
  ScopedEnv off("SGXBENCH_PLANNER", "0");
  QueryConfig cfg;
  const plan::PlanDecisions d = plan::DecideFor(q3->plan, ViewOf(w.db), cfg);
  // Legacy: materializing unless the pipeline knob says otherwise, every
  // join RHO, nothing cost-based.
  EXPECT_FALSE(d.fused);
  EXPECT_FALSE(d.mode_cost_based);
  for (size_t id = 0; id < q3->plan.nodes().size(); ++id) {
    if (q3->plan.nodes()[id].kind != plan::PlanNode::Kind::kJoin) continue;
    EXPECT_EQ(d.joins[id].algo, join::JoinAlgorithm::kRho);
    EXPECT_FALSE(d.joins[id].cost_based);
  }
}

// --- Explain ----------------------------------------------------------------

TEST(ExplainTest, DumpCarriesDecisionsForEveryNode) {
  PlannerWorld& w = World();
  const plan::CatalogEntry* q3 = plan::FindQuery(3);
  QueryConfig cfg;
  const plan::PlanDecisions d = plan::DecideFor(q3->plan, ViewOf(w.db), cfg);
  const std::string text = plan::Explain(q3->plan, d);
  EXPECT_NE(text.find("plan Q3"), std::string::npos) << text;
  EXPECT_NE(text.find("mode="), std::string::npos) << text;
  EXPECT_NE(text.find("probe="), std::string::npos) << text;
  EXPECT_NE(text.find("Scan(customer)"), std::string::npos) << text;
  EXPECT_NE(text.find("est_cost="), std::string::npos) << text;
  EXPECT_NE(text.find("rows"), std::string::npos) << text;
}

TEST(ExplainTest, EnvKnobAttachesExplainToResult) {
  PlannerWorld& w = World();
  QueryConfig cfg;
  cfg.num_threads = 1;
  {
    ScopedEnv on("SGXBENCH_EXPLAIN", "1");
    auto r = RunQuery(6, w.db, cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_NE(r.value().explain.find("plan Q6"), std::string::npos)
        << r.value().explain;
  }
  auto quiet = RunQuery(6, w.db, cfg);
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet.value().explain.empty())
      << "explain must be opt-in, not always-on";
}

// --- Adaptive execution (SGXBENCH_ADAPTIVE) ---------------------------------
// Repeated runs drive each workload key through the tuning cache's
// exploration pass (different arms: probe modes, batch widths, fusion
// toggled, morsel grains) into exploitation. Every picked setting must
// produce the same answer as the static baseline — resident and paged.

using AdaptiveParam = std::tuple<int, bool>;

class AdaptiveEquivalenceTest
    : public ::testing::TestWithParam<AdaptiveParam> {};

TEST_P(AdaptiveEquivalenceTest, RepeatedAdaptiveRunsMatchStatic) {
  auto [query, paged] = GetParam();
  PlannerWorld& w = World();
  const TpchDbView view = paged ? w.paged.View() : ViewOf(w.db);

  QueryConfig cfg;
  cfg.num_threads = 2;
  cfg.radix_bits = 8;

  auto baseline = RunQuery(query, view, cfg);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_FALSE(baseline.value().tuning.active)
      << "tuning must be inert with SGXBENCH_ADAPTIVE unset";

  ScopedEnv adaptive("SGXBENCH_ADAPTIVE", "1");
  for (int run = 0; run < 4; ++run) {
    auto r = RunQuery(query, view, cfg);
    ASSERT_TRUE(r.ok()) << "run " << run << ": " << r.status().ToString();
    EXPECT_EQ(r.value().count, baseline.value().count) << "run " << run;
    EXPECT_EQ(r.value().group_counts, baseline.value().group_counts)
        << "run " << run;
    EXPECT_TRUE(r.value().tuning.active) << "run " << run;
    EXPECT_GE(r.value().tuning.decisions, 1u) << "run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogQueries, AdaptiveEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(kCatalogQueries),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<AdaptiveParam>& info) {
      const plan::CatalogEntry* e = plan::FindQuery(std::get<0>(info.param));
      std::string name = e != nullptr ? e->name : "unknown";
      name += std::get<1>(info.param) ? "_Paged" : "_Resident";
      return name;
    });

// SGXBENCH_ADAPTIVE off (the default) must keep reports byte-identical
// to the pre-adaptive format: no tuning section in either rendering, no
// tune line in explain, and forced knobs still win when adaptive is on.
TEST(AdaptiveOffTest, ReportsCarryNoTuningSection) {
  PlannerWorld& w = World();
  QueryConfig cfg;
  cfg.num_threads = 1;
  auto r = RunQuery(6, w.db, cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().tuning.active);
  EXPECT_FALSE(r.value().report.tuning.active);
  EXPECT_EQ(r.value().report.ToJson().find("tuning"), std::string::npos);
  EXPECT_EQ(r.value().report.ToString().find("tuning"), std::string::npos);
}

TEST(AdaptiveOnTest, ExplainAndReportSurfaceTheDecision) {
  PlannerWorld& w = World();
  QueryConfig cfg;
  cfg.num_threads = 1;
  ScopedEnv adaptive("SGXBENCH_ADAPTIVE", "1");
  ScopedEnv explain("SGXBENCH_EXPLAIN", "1");
  auto r = RunQuery(6, w.db, cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().tuning.active);
  EXPECT_NE(r.value().explain.find("tune:"), std::string::npos)
      << r.value().explain;
  EXPECT_NE(r.value().report.ToJson().find("\"tuning\""),
            std::string::npos);
  EXPECT_NE(r.value().report.ToString().find("tuning:"),
            std::string::npos);
  // The decision's provenance is one of the three documented sources.
  const std::string& src = r.value().tuning.source;
  EXPECT_TRUE(src == "prior" || src == "explore" || src == "cache") << src;
}

TEST(AdaptiveOnTest, ForcedKnobsStillBeatTheTuner) {
  PlannerWorld& w = World();
  ScopedEnv adaptive("SGXBENCH_ADAPTIVE", "1");
  QueryConfig cfg;
  cfg.num_threads = 2;
  cfg.pipeline = false;  // explicit config: the tuner must not override
  cfg.probe_mode = exec::ProbeMode::kTupleAtATime;
  // Several runs so the tuner would explore fused arms if it could.
  for (int run = 0; run < 3; ++run) {
    auto r = RunQuery(3, w.db, cfg);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().count, ReferenceQ3(w.db)) << "run " << run;
    EXPECT_FALSE(r.value().tuning.fused)
        << "run " << run << ": explicit pipeline=false was overridden";
  }
}

}  // namespace
}  // namespace sgxb::tpch
