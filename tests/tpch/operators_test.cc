#include "tpch/operators.h"

#include <gtest/gtest.h>

#include "tpch/tpch_gen.h"

namespace sgxb::tpch {
namespace {

class OperatorsTest : public ::testing::Test {
 protected:
  static const TpchDb& Db() {
    static const TpchDb db = [] {
      GenConfig cfg;
      cfg.scale_factor = 0.005;
      return Generate(cfg).value();
    }();
    return db;
  }

  QueryConfig Config(int threads = 1) {
    QueryConfig cfg;
    cfg.num_threads = threads;
    return cfg;
  }
};

TEST_F(OperatorsTest, FilterU8RangeMatchesOracle) {
  QueryConfig cfg = Config(2);
  OpRecorder rec;
  auto rows = FilterU8Range(Db().customer.c_mktsegment, kSegBuilding,
                            kSegBuilding, cfg, &rec, "f");
  ASSERT_TRUE(rows.ok());
  uint64_t expected = 0;
  for (size_t i = 0; i < Db().customer.num_rows; ++i) {
    expected += Db().customer.c_mktsegment[i] == kSegBuilding;
  }
  EXPECT_EQ(rows.value().count(), expected);
  for (uint64_t k = 0; k < rows.value().count(); ++k) {
    uint64_t id = rows.value().ids()[k];
    EXPECT_EQ(Db().customer.c_mktsegment[id], kSegBuilding);
  }
  EXPECT_EQ(rec.Take().phases.size(), 1u);
}

TEST_F(OperatorsTest, FilterU32RangeMatchesOracle) {
  QueryConfig cfg = Config(3);
  auto rows = FilterU32Range(Db().orders.o_orderdate, kDate19931001,
                             kDate19940101 - 1, cfg, nullptr, "f");
  ASSERT_TRUE(rows.ok());
  uint64_t expected = 0;
  for (size_t i = 0; i < Db().orders.num_rows; ++i) {
    uint32_t d = Db().orders.o_orderdate[i];
    expected += d >= kDate19931001 && d < kDate19940101;
  }
  EXPECT_EQ(rows.value().count(), expected);
  // Row ids must come out sorted (order-preserving compaction).
  for (uint64_t k = 1; k < rows.value().count(); ++k) {
    EXPECT_LT(rows.value().ids()[k - 1], rows.value().ids()[k]);
  }
}

TEST_F(OperatorsTest, RefineU8InSetThins) {
  QueryConfig cfg = Config(2);
  auto all = FilterU32Range(Db().lineitem.l_quantity, 1, 50, cfg, nullptr,
                            "all");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().count(), Db().lineitem.num_rows);

  uint64_t mask = (uint64_t{1} << kModeMail) | (uint64_t{1} << kModeShip);
  auto refined = RefineU8InSet(all.value(), Db().lineitem.l_shipmode, mask,
                               cfg, nullptr, "r");
  ASSERT_TRUE(refined.ok());
  uint64_t expected = 0;
  for (size_t i = 0; i < Db().lineitem.num_rows; ++i) {
    uint8_t m = Db().lineitem.l_shipmode[i];
    expected += m == kModeMail || m == kModeShip;
  }
  EXPECT_EQ(refined.value().count(), expected);
}

TEST_F(OperatorsTest, RefineLessMatchesOracle) {
  QueryConfig cfg = Config(1);
  auto all = FilterU32Range(Db().lineitem.l_quantity, 1, 50, cfg, nullptr,
                            "all");
  auto refined =
      RefineLess(all.value(), Db().lineitem.l_shipdate,
                 Db().lineitem.l_commitdate, cfg, nullptr, "r");
  ASSERT_TRUE(refined.ok());
  uint64_t expected = 0;
  for (size_t i = 0; i < Db().lineitem.num_rows; ++i) {
    expected +=
        Db().lineitem.l_shipdate[i] < Db().lineitem.l_commitdate[i];
  }
  EXPECT_EQ(refined.value().count(), expected);
}

TEST_F(OperatorsTest, GatherKeysBuildsRelation) {
  QueryConfig cfg = Config(2);
  auto rows = FilterU8Range(Db().customer.c_mktsegment, kSegBuilding,
                            kSegBuilding, cfg, nullptr, "f");
  auto rel = GatherKeys(Db().customer.c_custkey, &rows.value(), cfg,
                        nullptr, "g");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().num_tuples(), rows.value().count());
  for (size_t i = 0; i < rel.value().num_tuples(); ++i) {
    const Tuple& t = rel.value()[i];
    EXPECT_EQ(t.key, Db().customer.c_custkey[t.payload]);
  }
}

TEST_F(OperatorsTest, GatherAllRows) {
  QueryConfig cfg = Config(1);
  auto rel =
      GatherKeys(Db().orders.o_orderkey, nullptr, cfg, nullptr, "g");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().num_tuples(), Db().orders.num_rows);
}

TEST_F(OperatorsTest, MaterializingJoinExtractsProbeRows) {
  QueryConfig cfg = Config(2);
  cfg.radix_bits = 6;
  OpRecorder rec;
  // customers (filtered) join orders: every surviving probe row's
  // custkey must belong to a BUILDING customer.
  auto cust = FilterU8Range(Db().customer.c_mktsegment, kSegBuilding,
                            kSegBuilding, cfg, nullptr, "f");
  auto build = GatherKeys(Db().customer.c_custkey, &cust.value(), cfg,
                          nullptr, "g1");
  auto probe =
      GatherKeys(Db().orders.o_custkey, nullptr, cfg, nullptr, "g2");
  auto step = MaterializingJoin(build.value(), probe.value(), cfg, &rec,
                                "join");
  ASSERT_TRUE(step.ok());

  uint64_t expected = 0;
  for (size_t i = 0; i < Db().orders.num_rows; ++i) {
    expected += Db().customer.c_mktsegment[Db().orders.o_custkey[i]] ==
                kSegBuilding;
  }
  EXPECT_EQ(step.value().matches, expected);
  EXPECT_EQ(step.value().probe_rows.count(), expected);
  for (uint64_t k = 0; k < step.value().probe_rows.count(); ++k) {
    uint64_t order_row = step.value().probe_rows.ids()[k];
    ASSERT_LT(order_row, Db().orders.num_rows);
    EXPECT_EQ(
        Db().customer.c_mktsegment[Db().orders.o_custkey[order_row]],
        kSegBuilding);
  }
  // The join's phases were absorbed with a prefix.
  auto phases = rec.Take();
  ASSERT_FALSE(phases.phases.empty());
  EXPECT_EQ(phases.phases[0].name.rfind("join.", 0), 0u);
}

TEST_F(OperatorsTest, CountingJoinMatchesMaterializingJoin) {
  QueryConfig cfg = Config(1);
  cfg.radix_bits = 6;
  auto build =
      GatherKeys(Db().orders.o_orderkey, nullptr, cfg, nullptr, "g1");
  auto probe =
      GatherKeys(Db().lineitem.l_orderkey, nullptr, cfg, nullptr, "g2");
  auto count =
      CountingJoin(build.value(), probe.value(), cfg, nullptr, "c");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), Db().lineitem.num_rows);  // FK join
}

TEST_F(OperatorsTest, GatherOfEmptySelectionIsEmpty) {
  // Regression: an empty selection must yield a 0-row relation, not a
  // padded one with uninitialized tuples (which could spuriously join).
  QueryConfig cfg = Config(2);
  auto none = FilterU32Range(Db().orders.o_orderdate, 0xfffffff0u,
                             0xffffffffu, cfg, nullptr, "none");
  ASSERT_TRUE(none.ok());
  ASSERT_EQ(none.value().count(), 0u);
  auto rel = GatherKeys(Db().orders.o_orderkey, &none.value(), cfg,
                        nullptr, "g");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel.value().num_tuples(), 0u);
  EXPECT_TRUE(rel.value().empty());

  // And through a join: zero matches, not garbage matches.
  auto probe =
      GatherKeys(Db().lineitem.l_orderkey, nullptr, cfg, nullptr, "p");
  auto count =
      CountingJoin(rel.value(), probe.value(), cfg, nullptr, "c");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 0u);
}

TEST_F(OperatorsTest, EmptyInputsShortCircuit) {
  QueryConfig cfg = Config(1);
  Relation empty;
  auto probe =
      GatherKeys(Db().orders.o_custkey, nullptr, cfg, nullptr, "g");
  auto step =
      MaterializingJoin(empty, probe.value(), cfg, nullptr, "join");
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step.value().matches, 0u);
  EXPECT_EQ(step.value().probe_rows.count(), 0u);
  auto count = CountingJoin(empty, probe.value(), cfg, nullptr, "c");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 0u);
}

}  // namespace
}  // namespace sgxb::tpch
