#include "tpch/queries.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/aligned_buffer.h"
#include "mem/arena_pool.h"
#include "mem/enclave_resource.h"
#include "sgx/enclave.h"
#include "tpch/tpch_gen.h"

namespace sgxb::tpch {
namespace {

const TpchDb& Db() {
  static const TpchDb db = [] {
    GenConfig cfg;
    cfg.scale_factor = 0.01;
    return Generate(cfg).value();
  }();
  return db;
}

uint64_t Reference(int query) {
  switch (query) {
    case 3:
      return ReferenceQ3(Db());
    case 10:
      return ReferenceQ10(Db());
    case 12:
      return ReferenceQ12(Db());
    case 19:
      return ReferenceQ19(Db());
  }
  return 0;
}

using QueryParam = std::tuple<int, ExecutionSetting, int>;

class QueryTest : public ::testing::TestWithParam<QueryParam> {};

TEST_P(QueryTest, MatchesReference) {
  auto [query, setting, threads] = GetParam();

  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 128_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

  QueryConfig cfg;
  cfg.num_threads = threads;
  cfg.setting = setting;
  cfg.enclave = enclave;
  cfg.radix_bits = 8;

  auto result = RunQuery(query, Db(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().count, Reference(query)) << "Q" << query;
  EXPECT_GT(result.value().host_ns, 0.0);
  EXPECT_FALSE(result.value().phases.phases.empty());
  sgx::DestroyEnclave(enclave);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, QueryTest,
    ::testing::Combine(::testing::Values(3, 10, 12, 19),
                       ::testing::Values(
                           ExecutionSetting::kPlainCpu,
                           ExecutionSetting::kSgxDataInEnclave),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<QueryParam>& info) {
      std::string name = "Q" + std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == ExecutionSetting::kPlainCpu
                  ? "_Plain"
                  : "_Sgx";
      name += "_T" + std::to_string(std::get<2>(info.param));
      return name;
    });

TEST(QueryTest, ReferenceCountsAreNonTrivial) {
  // Guards against degenerate selectivities (0 or everything): the
  // queries must select a real subset so the joins are exercised.
  EXPECT_GT(ReferenceQ3(Db()), 0u);
  EXPECT_LT(ReferenceQ3(Db()), Db().lineitem.num_rows);
  EXPECT_GT(ReferenceQ10(Db()), 0u);
  EXPECT_GT(ReferenceQ12(Db()), 0u);
  EXPECT_LT(ReferenceQ12(Db()), Db().lineitem.num_rows / 4);
  EXPECT_GT(ReferenceQ19(Db()), 0u);
  EXPECT_LT(ReferenceQ19(Db()), Db().lineitem.num_rows / 10);
}

TEST(QueryTest, EnclaveHeapReflectsEveryTrustedAllocation) {
  // End-to-end accounting: a full TPC-H query in-enclave must route every
  // trusted allocation through the mem/ resources (no bypasses), and at
  // the end the only live trusted bytes are the pool's warm chunks.
  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 128_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();
  mem::ArenaPool pool(mem::ForEnclave(enclave));

  QueryConfig cfg;
  cfg.num_threads = 2;
  cfg.setting = ExecutionSetting::kSgxDataInEnclave;
  cfg.enclave = enclave;
  cfg.radix_bits = 8;
  cfg.arena_pool = &pool;

  const bool prev = SetTrustedBypassStrict(true);
  const uint64_t bypass_before = TrustedBypassAllocCount();
  auto result = RunQuery(12, Db(), cfg);
  SetTrustedBypassStrict(prev);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().count, ReferenceQ12(Db()));
  EXPECT_EQ(TrustedBypassAllocCount(), bypass_before);
  EXPECT_GT(pool.stats().cached_bytes, 0u);
  EXPECT_EQ(enclave->memory_stats().heap_used_bytes,
            pool.stats().cached_bytes);
  pool.Trim();
  EXPECT_EQ(enclave->memory_stats().heap_used_bytes, 0u);
  sgx::DestroyEnclave(enclave);
}

TEST(QueryTest, UnknownQueryRejected) {
  QueryConfig cfg;
  EXPECT_FALSE(RunQuery(5, Db(), cfg).ok());
}

TEST(QueryTest, FlavorsAgree) {
  QueryConfig ref;
  ref.flavor = KernelFlavor::kReference;
  ref.radix_bits = 8;
  QueryConfig opt;
  opt.flavor = KernelFlavor::kUnrolledReordered;
  opt.radix_bits = 8;
  for (int q : {3, 10, 12, 19}) {
    auto a = RunQuery(q, Db(), ref);
    auto b = RunQuery(q, Db(), opt);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().count, b.value().count) << "Q" << q;
  }
}

}  // namespace
}  // namespace sgxb::tpch
