// Result-equivalence matrix for the fused morsel-driven pipelines
// (tpch/pipelines.cc): for every query, the fused plan must produce a
// QueryResult byte-identical (count + group_counts) to the materializing
// plan across thread counts, execution settings, and probe modes. Also
// hosts the unit tests for the allocation-overflow guards that the fused
// work leaned on (RowIdList::Allocate, ScatterBufferScratch::Reserve).
//
// This suite is wired into the ASan/UBSan and TSan CI jobs (`ctest -L
// pipeline_test`), so the fused driver's worker-local scratch and shared
// hash-table builds get raced under TSan on every change.

#include "tpch/pipelines.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <tuple>

#include "common/aligned_buffer.h"
#include "exec/probe_pipeline.h"
#include "join/radix_common.h"
#include "sgx/enclave.h"
#include "plan/catalog.h"
#include "tpch/tpch_gen.h"

namespace sgxb::tpch {
namespace {

// 112 = the Q12Grouped extension (not a RunQuery number).
constexpr int kQ12Grouped = 112;

const TpchDb& Db() {
  static const TpchDb db = [] {
    GenConfig cfg;
    cfg.scale_factor = 0.01;
    return Generate(cfg).value();
  }();
  return db;
}

Result<QueryResult> RunOne(int query, const QueryConfig& cfg) {
  switch (query) {
    case 1:
      return RunQ1(Db(), cfg);
    case 3:
      return RunQ3(Db(), cfg);
    case 6:
      return RunQ6(Db(), cfg);
    case 10:
      return RunQ10(Db(), cfg);
    case 12:
      return RunQ12(Db(), cfg);
    case 19:
      return RunQ19(Db(), cfg);
    case kQ12Grouped:
      return RunQ12Grouped(Db(), cfg);
  }
  return Status::InvalidArgument("unknown query");
}

using MatrixParam = std::tuple<int, ExecutionSetting, int, exec::ProbeMode>;

class PipelineEquivalenceTest : public ::testing::TestWithParam<MatrixParam> {
};

TEST_P(PipelineEquivalenceTest, FusedMatchesMaterializing) {
  auto [query, setting, threads, probe_mode] = GetParam();

  sgx::Enclave* enclave = nullptr;
  if (setting != ExecutionSetting::kPlainCpu) {
    sgx::EnclaveConfig ecfg;
    ecfg.initial_heap_bytes = 128_MiB;
    enclave = sgx::Enclave::Create(ecfg).value();
  }

  QueryConfig cfg;
  cfg.num_threads = threads;
  cfg.setting = setting;
  cfg.enclave = enclave;
  cfg.radix_bits = 8;
  cfg.probe_mode = probe_mode;

  cfg.pipeline = false;
  auto materializing = RunOne(query, cfg);
  ASSERT_TRUE(materializing.ok()) << materializing.status().ToString();

  cfg.pipeline = true;
  auto fused = RunOne(query, cfg);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();

  EXPECT_EQ(fused.value().count, materializing.value().count)
      << "Q" << query;
  EXPECT_EQ(fused.value().group_counts, materializing.value().group_counts)
      << "Q" << query;
  EXPECT_GT(fused.value().host_ns, 0.0);
  EXPECT_FALSE(fused.value().phases.phases.empty());
  if (enclave != nullptr) sgx::DestroyEnclave(enclave);
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, PipelineEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 3, 6, 10, 12, 19, kQ12Grouped),
                       ::testing::Values(
                           ExecutionSetting::kPlainCpu,
                           ExecutionSetting::kSgxDataInEnclave),
                       ::testing::Values(1, 4),
                       ::testing::Values(exec::ProbeMode::kTupleAtATime,
                                         exec::ProbeMode::kGroupPrefetch,
                                         exec::ProbeMode::kAmac)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      int q = std::get<0>(info.param);
      std::string name =
          q == kQ12Grouped ? "Q12G" : "Q" + std::to_string(q);
      name += std::get<1>(info.param) == ExecutionSetting::kPlainCpu
                  ? "_Plain"
                  : "_Sgx";
      name += "_T" + std::to_string(std::get<2>(info.param));
      switch (std::get<3>(info.param)) {
        case exec::ProbeMode::kTupleAtATime:
          name += "_Tuple";
          break;
        case exec::ProbeMode::kGroupPrefetch:
          name += "_Gp";
          break;
        case exec::ProbeMode::kAmac:
          name += "_Amac";
          break;
      }
      return name;
    });

TEST(PipelineConfigTest, ExplicitConfigOverridesEnv) {
  QueryConfig cfg;
  ASSERT_EQ(setenv("SGXBENCH_PIPELINE", "1", 1), 0);
  EXPECT_TRUE(PipelineEnabled(cfg));
  cfg.pipeline = false;
  EXPECT_FALSE(PipelineEnabled(cfg));
  ASSERT_EQ(setenv("SGXBENCH_PIPELINE", "0", 1), 0);
  cfg.pipeline.reset();
  EXPECT_FALSE(PipelineEnabled(cfg));
  cfg.pipeline = true;
  EXPECT_TRUE(PipelineEnabled(cfg));
  ASSERT_EQ(unsetenv("SGXBENCH_PIPELINE"), 0);
  cfg.pipeline.reset();
  EXPECT_FALSE(PipelineEnabled(cfg)) << "pipelines must default off";
}

TEST(PipelineReportTest, FusedPlansMaterializeFewerBytes) {
  // The point of fusion: the multi-join queries stop writing global
  // row-id lists, gathered relations, and join intermediates. The
  // per-query bytes_materialized counter delta must reflect that.
  for (int q : {3, 10, 12, 19}) {
    QueryConfig cfg;
    cfg.num_threads = 2;
    cfg.radix_bits = 8;

    cfg.pipeline = false;
    auto materializing = RunQuery(q, Db(), cfg);
    ASSERT_TRUE(materializing.ok()) << materializing.status().ToString();

    cfg.pipeline = true;
    auto fused = RunQuery(q, Db(), cfg);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();

    EXPECT_GT(materializing.value().report.bytes_materialized, 0u)
        << "Q" << q;
    EXPECT_LT(fused.value().report.bytes_materialized,
              materializing.value().report.bytes_materialized)
        << "Q" << q;
  }
}

// --- Allocation-guard unit tests (satellite: overflow hardening) -----------

TEST(RowIdListGuardTest, RejectsCapacityOverflow) {
  QueryConfig cfg;
  auto list = RowIdList::Allocate(
      std::numeric_limits<size_t>::max() / sizeof(uint64_t) + 1, cfg);
  EXPECT_FALSE(list.ok());
}

TEST(RowIdListGuardTest, ZeroCapacityStillUsable) {
  // Empty filters allocate "0" rows; the list must still hold the
  // canonical empty state, not a null buffer.
  QueryConfig cfg;
  auto list = RowIdList::Allocate(0, cfg);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_GE(list.value().capacity(), 1u);
  EXPECT_EQ(list.value().count(), 0u);
  EXPECT_NE(list.value().ids(), nullptr);
}

TEST(ScatterScratchGuardTest, RejectsNegativeAndOversizedBits) {
  join::ScatterBufferScratch scratch;
  EXPECT_FALSE(scratch.Reserve(-1).ok());
  EXPECT_FALSE(scratch.Reserve(63).ok());
  EXPECT_TRUE(scratch.Reserve(8).ok());
  EXPECT_NE(scratch.buffers(), nullptr);
  EXPECT_NE(scratch.fill(), nullptr);
}

}  // namespace
}  // namespace sgxb::tpch
