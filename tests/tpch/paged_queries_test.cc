// Equivalence matrix for the out-of-EPC buffer manager (docs/storage.md):
// every query must produce byte-identical results whether its columns are
// resident (TpchDb) or paged through a pool far smaller than the dataset
// (PagedTpchDb over a storage::BufferManager), in both the materializing
// and the fused-pipeline execution modes — while actually evicting and
// reloading (asserted via manager stats, so the matrix cannot silently
// degrade into an all-resident run).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "obs/query_report.h"
#include "storage/buffer_manager.h"
#include "tpch/paged_db.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace sgxb::tpch {
namespace {

// One shared paged database: SF 0.01 (~60k lineitem rows, ~2.4 MB of
// columns) through a 768 KiB pool with 4096-row partitions, so scans
// cross many partition boundaries and the clock evicts continuously.
struct PagedWorld {
  TpchDb db;
  std::unique_ptr<storage::BufferManager> bm;
  PagedTpchDb paged;

  PagedWorld() {
    GenConfig gen;
    gen.scale_factor = 0.01;
    db = Generate(gen).value();
    storage::BufferManager::Config cfg;
    cfg.buffer_bytes = 768 << 10;
    cfg.partition_rows = 4096;
    bm = std::make_unique<storage::BufferManager>(cfg);
    paged = PagedTpchDb::Build(db, bm.get()).value();
  }
};

PagedWorld& World() {
  static PagedWorld* world = new PagedWorld();
  return *world;
}

using PagedParam = std::tuple<int, bool>;  // query, fused pipeline

class PagedQueryTest : public ::testing::TestWithParam<PagedParam> {};

TEST_P(PagedQueryTest, PagedMatchesResident) {
  auto [query, fused] = GetParam();
  PagedWorld& w = World();

  QueryConfig cfg;
  cfg.num_threads = 4;
  cfg.pipeline = fused;

  auto resident = RunQuery(query, w.db, cfg);
  ASSERT_TRUE(resident.ok()) << resident.status().ToString();

  const storage::BufferManagerStats before = w.bm->stats();
  auto paged = RunQuery(query, w.paged.View(), cfg);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  const storage::BufferManagerStats after = w.bm->stats();

  EXPECT_EQ(paged.value().count, resident.value().count);
  EXPECT_EQ(paged.value().group_counts, resident.value().group_counts);
  // The paged run must have gone through the manager, not a cached
  // resident copy: the pool holds ~1/3 of the data, so every query
  // reloads at least some partitions.
  EXPECT_GT(after.partitions_reloaded, before.partitions_reloaded);
  EXPECT_GT(after.decrypt_bytes, before.decrypt_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PagedQueryTest,
    ::testing::Combine(::testing::Values(1, 3, 6, 10, 12, 19),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<PagedParam>& info) {
      return "Q" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_Fused" : "_Mat");
    });

TEST(PagedQueryTest, Q12GroupedPagedMatchesResident) {
  PagedWorld& w = World();
  for (bool fused : {false, true}) {
    QueryConfig cfg;
    cfg.num_threads = 4;
    cfg.pipeline = fused;
    auto resident = RunQ12Grouped(w.db, cfg);
    ASSERT_TRUE(resident.ok()) << resident.status().ToString();
    auto paged = RunQ12Grouped(w.paged.View(), cfg);
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();
    EXPECT_EQ(paged.value().count, resident.value().count) << fused;
    EXPECT_EQ(paged.value().group_counts, resident.value().group_counts)
        << fused;
  }
}

TEST(PagedQueryTest, ViewOfResidentDbMatchesToo) {
  // TpchDbView is also the adapter for resident columns; the view
  // overloads must agree with the Column-based ones bit for bit.
  PagedWorld& w = World();
  QueryConfig cfg;
  cfg.num_threads = 2;
  for (int q : {1, 3, 6, 10, 12, 19}) {
    auto a = RunQuery(q, w.db, cfg);
    auto b = RunQuery(q, ViewOf(w.db), cfg);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    EXPECT_EQ(a.value().count, b.value().count) << q;
    EXPECT_EQ(a.value().group_counts, b.value().group_counts) << q;
  }
}

TEST(PagedQueryTest, ReportStorageCountersMatchManagerDeltas) {
  // Satellite: the storage section of QueryReport is fed from the obs
  // registry mirror of the manager's counters. A paged query's report
  // must show the activity the manager actually performed in its window
  // (the manager may keep prefetching slightly past the report close, so
  // the manager delta bounds the report from above).
  PagedWorld& w = World();
  QueryConfig cfg;
  cfg.num_threads = 4;
  cfg.pipeline = false;

  const storage::BufferManagerStats before = w.bm->stats();
  auto r = RunQuery(3, w.paged.View(), cfg);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::QueryReport& report = r.value().report;
  const storage::BufferManagerStats after = w.bm->stats();

  EXPECT_GT(report.partitions_reloaded, 0u);
  EXPECT_GT(report.storage_decrypt_bytes, 0u);
  EXPECT_LE(report.partitions_reloaded,
            after.partitions_reloaded - before.partitions_reloaded +
                after.prefetch_loads - before.prefetch_loads);
  EXPECT_LE(report.partitions_evicted,
            after.partitions_evicted - before.partitions_evicted);
  EXPECT_LE(report.storage_decrypt_bytes,
            after.decrypt_bytes - before.decrypt_bytes);
  // The textual rendering carries the storage line for paged queries.
  EXPECT_NE(report.ToString().find("storage:"), std::string::npos);

  // A fully resident query reports zero storage activity.
  auto resident = RunQuery(3, w.db, cfg);
  ASSERT_TRUE(resident.ok());
  EXPECT_EQ(resident.value().report.partitions_reloaded, 0u);
  EXPECT_EQ(resident.value().report.storage_decrypt_bytes, 0u);
}

TEST(PagedQueryTest, SpillImagesAreCompressed) {
  PagedWorld& w = World();
  const storage::BufferManagerStats s = w.bm->stats();
  EXPECT_GT(s.logical_bytes, 0u);
  // TPC-H dates/keys/flags compress well; require a conservative 1.5x.
  EXPECT_GT(s.CompressionRatio(), 1.5);
}

}  // namespace
}  // namespace sgxb::tpch
