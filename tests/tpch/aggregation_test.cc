#include <gtest/gtest.h>

#include <numeric>

#include "tpch/operators.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace sgxb::tpch {
namespace {

const TpchDb& Db() {
  static const TpchDb db = [] {
    GenConfig cfg;
    cfg.scale_factor = 0.01;
    return Generate(cfg).value();
  }();
  return db;
}

TEST(GroupCountTest, AllRowsMatchManualCount) {
  QueryConfig cfg;
  cfg.num_threads = 3;
  auto counts = GroupCountU8(Db().customer.c_mktsegment, nullptr,
                             kNumSegments, cfg, nullptr, "g");
  ASSERT_TRUE(counts.ok());
  std::vector<uint64_t> expected(kNumSegments, 0);
  for (size_t i = 0; i < Db().customer.num_rows; ++i) {
    ++expected[Db().customer.c_mktsegment[i]];
  }
  EXPECT_EQ(counts.value(), expected);
  EXPECT_EQ(std::accumulate(counts.value().begin(), counts.value().end(),
                            uint64_t{0}),
            Db().customer.num_rows);
}

TEST(GroupCountTest, RestrictedToRowIds) {
  QueryConfig cfg;
  OpRecorder rec;
  auto rows = FilterU32Range(Db().orders.o_orderdate, 0,
                             kDate19940101 - 1, cfg, nullptr, "f");
  ASSERT_TRUE(rows.ok());
  auto counts =
      GroupCountU8(Db().orders.o_orderpriority, &rows.value(),
                   kNumOrderPriorities, cfg, &rec, "g");
  ASSERT_TRUE(counts.ok());
  std::vector<uint64_t> expected(kNumOrderPriorities, 0);
  for (size_t i = 0; i < Db().orders.num_rows; ++i) {
    if (Db().orders.o_orderdate[i] < kDate19940101) {
      ++expected[Db().orders.o_orderpriority[i]];
    }
  }
  EXPECT_EQ(counts.value(), expected);
  EXPECT_EQ(rec.Take().phases.size(), 1u);
}

TEST(GroupCountTest, RejectsBadGroupCounts) {
  QueryConfig cfg;
  EXPECT_FALSE(GroupCountU8(Db().customer.c_mktsegment, nullptr, 0, cfg,
                            nullptr, "g")
                   .ok());
  // num_groups smaller than actual code range -> kInternal.
  auto r = GroupCountU8(Db().customer.c_mktsegment, nullptr, 2, cfg,
                        nullptr, "g");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(GroupCountTest, ViaForeignKey) {
  QueryConfig cfg;
  cfg.num_threads = 2;
  auto all_lines = FilterU32Range(Db().lineitem.l_quantity, 1, 50, cfg,
                                  nullptr, "all");
  ASSERT_TRUE(all_lines.ok());
  auto counts = GroupCountU8ViaFk(
      Db().orders.o_orderpriority, Db().lineitem.l_orderkey,
      all_lines.value(), kNumOrderPriorities, cfg, nullptr, "g");
  ASSERT_TRUE(counts.ok());
  std::vector<uint64_t> expected(kNumOrderPriorities, 0);
  for (size_t i = 0; i < Db().lineitem.num_rows; ++i) {
    ++expected[Db().orders.o_orderpriority[Db().lineitem.l_orderkey[i]]];
  }
  EXPECT_EQ(counts.value(), expected);
}

TEST(Q12GroupedTest, MatchesReference) {
  for (int threads : {1, 4}) {
    QueryConfig cfg;
    cfg.num_threads = threads;
    auto result = RunQ12Grouped(Db(), cfg);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto [high, low] = ReferenceQ12Grouped(Db());
    ASSERT_EQ(result.value().group_counts.size(), 2u);
    EXPECT_EQ(result.value().group_counts[0], high);
    EXPECT_EQ(result.value().group_counts[1], low);
    EXPECT_EQ(result.value().count, high + low);
  }
}

TEST(Q12GroupedTest, GroupTotalEqualsPlainQ12) {
  QueryConfig cfg;
  auto grouped = RunQ12Grouped(Db(), cfg).value();
  EXPECT_EQ(grouped.count, ReferenceQ12(Db()));
}

TEST(Q1Test, MatchesReference) {
  for (int threads : {1, 3}) {
    QueryConfig cfg;
    cfg.num_threads = threads;
    auto result = RunQ1(Db(), cfg);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<uint64_t> expected = ReferenceQ1Counts(Db());
    EXPECT_EQ(result.value().group_counts, expected);
    uint64_t total = 0;
    for (uint64_t c : expected) total += c;
    EXPECT_EQ(result.value().count, total);
  }
}

TEST(Q1Test, GroupSumsMatchReference) {
  QueryConfig cfg;
  cfg.num_threads = 2;
  auto rows = FilterU32Range(
      Db().lineitem.l_shipdate, 0,
      static_cast<uint32_t>(DaysFromCivil(1998, 9, 2)), cfg, nullptr,
      "f");
  ASSERT_TRUE(rows.ok());
  auto aggs = GroupSumU32By2U8(
      Db().lineitem.l_quantity, Db().lineitem.l_returnflag,
      kNumReturnFlags, Db().lineitem.l_linestatus, kNumLineStatuses,
      &rows.value(), cfg, nullptr, "g");
  ASSERT_TRUE(aggs.ok());
  std::vector<uint64_t> expected = ReferenceQ1Sums(Db());
  for (size_t g = 0; g < expected.size(); ++g) {
    EXPECT_EQ(aggs.value()[g].sum, expected[g]) << "group " << g;
  }
}

TEST(Q1Test, OpenLinesNeverReturned) {
  // TPC-H invariant (from the dbgen rules): returnflag is N exactly for
  // receipts after CURRENTDATE; linestatus O means shipped after it.
  // Shipped-F lines can carry any flag, but O lines must be flag N.
  const auto counts = ReferenceQ1Counts(Db());
  EXPECT_EQ(counts[kFlagA * kNumLineStatuses + kStatusO], 0u);
  EXPECT_EQ(counts[kFlagR * kNumLineStatuses + kStatusO], 0u);
  EXPECT_GT(counts[kFlagN * kNumLineStatuses + kStatusO], 0u);
}

TEST(Q6Test, MatchesReference) {
  for (int threads : {1, 4}) {
    QueryConfig cfg;
    cfg.num_threads = threads;
    auto result = RunQ6(Db(), cfg);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().group_counts.size(), 1u);
    EXPECT_EQ(result.value().group_counts[0], ReferenceQ6(Db()));
    EXPECT_GT(result.value().count, 0u);
  }
}

TEST(Q6Test, RevenueIsNonTrivial) {
  uint64_t revenue = ReferenceQ6(Db());
  EXPECT_GT(revenue, 0u);
  // Sanity: revenue must be below sum of all prices x max discount.
  uint64_t upper = 0;
  for (size_t i = 0; i < Db().lineitem.num_rows; ++i) {
    upper += static_cast<uint64_t>(Db().lineitem.l_extendedprice[i]) * 10;
  }
  EXPECT_LT(revenue, upper);
}

TEST(RunQueryTest, DispatchesExtensionQueries) {
  QueryConfig cfg;
  auto q1 = RunQuery(1, Db(), cfg);
  ASSERT_TRUE(q1.ok());
  auto q6 = RunQuery(6, Db(), cfg);
  ASSERT_TRUE(q6.ok());
  EXPECT_EQ(q6.value().group_counts[0], ReferenceQ6(Db()));
}

TEST(OrderPriorityGenTest, CodesInRangeAndBalanced) {
  std::vector<uint64_t> counts(kNumOrderPriorities, 0);
  for (size_t i = 0; i < Db().orders.num_rows; ++i) {
    ASSERT_LT(Db().orders.o_orderpriority[i], kNumOrderPriorities);
    ++counts[Db().orders.o_orderpriority[i]];
  }
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c),
                Db().orders.num_rows / double{kNumOrderPriorities},
                Db().orders.num_rows * 0.05);
  }
}

}  // namespace
}  // namespace sgxb::tpch
