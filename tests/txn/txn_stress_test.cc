// Concurrency stress for the HTAP subsystem, meant to run under TSan
// (ci: the sanitizer matrix runs this target in the tsan job): snapshot
// scans racing commits and in-line epoch reclamation must produce no data
// races, no use-after-free of reclaimed version chunks, and no torn
// snapshots — and a full drain at the end must leave zero retired chunks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/random.h"
#include "storage/column_view.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "txn/update_feed.h"
#include "txn/versioned_db.h"

namespace sgxb::txn {
namespace {

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

// Readers pin snapshots and scan l_quantity while writers commit and the
// commit path reclaims in-line. Every observed value must be either the
// base value for that row or a committed write no newer than the pinned
// epoch — a version from the future, or a reclaimed (freed) chunk read,
// fails the check (and TSan flags the access).
TEST(TxnStressTest, ScansRaceCommitsAndReclamation) {
  VersionedTpchDb vdb(Db());
  const size_t rows = vdb.lineitem_rows();
  std::vector<uint32_t> base(rows);
  for (size_t i = 0; i < rows; ++i) {
    base[i] = Db().lineitem.l_quantity.data()[i];
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};
  std::atomic<uint64_t> commits{0};
  std::atomic<int> failures{0};

  auto reader = [&](uint64_t seed) {
    Xoshiro256 rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      auto snap = vdb.OpenSnapshot();
      if (!snap.ok()) continue;  // transient slot exhaustion is fine
      const uint64_t e = snap.value().epoch();
      // Scan a random window so readers cover different chunks.
      const size_t begin = rng.NextBounded(rows);
      const size_t end = std::min(rows, begin + 16 * 1024);
      const Status s = storage::ForEachRun(
          snap.value().view().lineitem.l_quantity, begin, end,
          [&](const uint32_t* run, size_t abs, size_t n) {
            for (size_t i = 0; i < n; ++i) {
              const uint32_t v = run[i];
              // Writers stamp values with an epoch lower bound read
              // before their commit, offset past every base value; see
              // the writer lambda.
              if (v != base[abs + i] && (v < 1000 || v - 1000 > e)) {
                failures.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
      if (!s.ok()) failures.fetch_add(1, std::memory_order_relaxed);
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  };

  auto writer = [&](uint64_t seed) {
    Xoshiro256 rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      UpdateOp op;
      op.column = UpdateColumn::kLQuantity;
      op.row = rng.NextBounded(rows);
      // 1000 + (a pre-commit lower bound of the commit epoch): the actual
      // commit epoch is >= current()+1, so any snapshot at epoch E that
      // sees this value has v - 1000 <= commit epoch <= E. The offset
      // keeps the stamp disjoint from base quantities (1..50).
      op.value = static_cast<uint32_t>(1000 + vdb.epochs().current() + 1);
      if (!vdb.Commit(op).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      commits.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(reader, 100 + i);
  for (int i = 0; i < 2; ++i) threads.emplace_back(writer, 200 + i);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop = true;
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(scans.load(), 0u);
  EXPECT_GT(commits.load(), 0u);

  ASSERT_TRUE(vdb.Drain().ok());
  const TxnStats s = vdb.stats();
  EXPECT_EQ(s.versions_retired, s.versions_reclaimed)
      << "retired chunks leaked past drain";
  EXPECT_EQ(s.retired_pending, 0u);
  EXPECT_EQ(s.live_version_bytes, s.cow_bytes - s.reclaimed_bytes);
}

// A pinned snapshot is a frozen cut: two full scans of the same snapshot
// must produce identical checksums no matter how many commits land in
// between.
TEST(TxnStressTest, PinnedSnapshotIsImmutableUnderWrites) {
  VersionedTpchDb vdb(Db());
  UpdateFeedOptions opts;
  opts.rows_per_sec = 50000;
  opts.zipf_theta = 0.9;  // hot chunks: maximal churn where the scan reads
  opts.threads = 2;
  UpdateFeed feed(&vdb, opts);
  feed.Start();

  auto checksum = [&](const tpch::TpchDbView& view) {
    uint64_t h = 0;
    EXPECT_TRUE(storage::ForEachRun(
                    view.lineitem.l_quantity, 0, vdb.lineitem_rows(),
                    [&](const uint32_t* run, size_t abs, size_t n) {
                      for (size_t i = 0; i < n; ++i) {
                        h = h * 1099511628211ull + run[i] + abs;
                      }
                    })
                    .ok());
    return h;
  };

  for (int round = 0; round < 5; ++round) {
    auto snap = vdb.OpenSnapshot().value();
    const uint64_t first = checksum(snap.view());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(checksum(snap.view()), first) << "snapshot moved, round "
                                            << round;
  }

  feed.Stop();
  EXPECT_EQ(feed.stats().failed, 0u);
  ASSERT_TRUE(vdb.Drain().ok());
  EXPECT_EQ(vdb.stats().retired_pending, 0u);
}

// Whole-stack smoke: catalog queries over snapshots racing a paced,
// skewed update feed. Everything must return OK and drain clean.
TEST(TxnStressTest, CatalogQueriesRaceUpdateFeed) {
  VersionedTpchDb vdb(Db());
  UpdateFeedOptions opts;
  opts.rows_per_sec = 20000;
  opts.zipf_theta = 0.5;
  opts.threads = 2;
  UpdateFeed feed(&vdb, opts);
  feed.Start();

  std::atomic<int> failures{0};
  auto querier = [&](int query_number) {
    tpch::QueryConfig config;
    config.num_threads = 1;
    for (int i = 0; i < 8; ++i) {
      auto snap = vdb.OpenSnapshot();
      if (!snap.ok()) {
        failures.fetch_add(1);
        continue;
      }
      auto r = tpch::RunQuery(query_number, snap.value().view(), config);
      if (!r.ok()) failures.fetch_add(1);
    }
  };
  std::thread q6(querier, 6);
  std::thread q1(querier, 1);
  std::thread q3(querier, 3);
  q6.join();
  q1.join();
  q3.join();
  feed.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(feed.stats().failed, 0u);
  EXPECT_GT(feed.stats().committed, 0u);
  ASSERT_TRUE(vdb.Drain().ok());
  const TxnStats s = vdb.stats();
  EXPECT_EQ(s.versions_retired, s.versions_reclaimed);
}

}  // namespace
}  // namespace sgxb::txn
