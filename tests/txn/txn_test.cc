// Unit + equivalence coverage for the live-update HTAP subsystem
// (src/txn/, docs/htap.md): epoch pin/publish/reclaim mechanics, version
// visibility across chunk boundaries, the update feed, and the
// snapshot-isolation equivalence matrix — every catalog query at a pinned
// epoch must match a frozen-copy oracle, over resident and paged bases.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/random.h"
#include "plan/catalog.h"
#include "storage/buffer_manager.h"
#include "tpch/paged_db.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "txn/epoch.h"
#include "txn/update_feed.h"
#include "txn/versioned_column.h"
#include "txn/versioned_db.h"

namespace sgxb::txn {
namespace {

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

// --- EpochRegistry -------------------------------------------------------

TEST(EpochRegistryTest, PinTracksCurrentEpoch) {
  EpochRegistry reg;
  EXPECT_EQ(reg.current(), 0u);
  EXPECT_EQ(reg.MinPinned(), EpochRegistry::kIdle);

  uint64_t e = ~0ull;
  const int slot = reg.Pin(&e);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(e, 0u);
  EXPECT_EQ(reg.MinPinned(), 0u);
  EXPECT_EQ(reg.active_snapshots(), 1);

  reg.Publish(1);
  EXPECT_EQ(reg.current(), 1u);
  EXPECT_EQ(reg.MinPinned(), 0u);  // old pin still gates reclamation

  uint64_t e2 = ~0ull;
  const int slot2 = reg.Pin(&e2);
  ASSERT_GE(slot2, 0);
  EXPECT_EQ(e2, 1u);

  reg.Unpin(slot);
  EXPECT_EQ(reg.MinPinned(), 1u);
  reg.Unpin(slot2);
  EXPECT_EQ(reg.MinPinned(), EpochRegistry::kIdle);
  EXPECT_EQ(reg.active_snapshots(), 0);
}

TEST(EpochRegistryTest, SlotsExhaustAndRecycle) {
  EpochRegistry reg;
  uint64_t e;
  std::vector<int> slots;
  for (int i = 0; i < EpochRegistry::kMaxSnapshots; ++i) {
    const int s = reg.Pin(&e);
    ASSERT_GE(s, 0);
    slots.push_back(s);
  }
  EXPECT_EQ(reg.Pin(&e), -1);  // full
  reg.Unpin(slots.back());
  EXPECT_GE(reg.Pin(&e), 0);  // freed slot is claimable again
}

TEST(EpochRegistryTest, SnapshotHandleReleasesOnDestruction) {
  EpochRegistry reg;
  reg.Publish(7);
  {
    SnapshotHandle h(&reg);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.epoch(), 7u);
    EXPECT_EQ(reg.MinPinned(), 7u);

    SnapshotHandle moved = std::move(h);
    EXPECT_TRUE(moved.ok());
    EXPECT_FALSE(h.ok());  // NOLINT(bugprone-use-after-move): tested
    EXPECT_EQ(reg.active_snapshots(), 1);
  }
  EXPECT_EQ(reg.MinPinned(), EpochRegistry::kIdle);
}

// --- VersionedColumn -----------------------------------------------------

// 20 rows, 8-row chunks (last chunk short): updates at chunk boundaries
// must resolve per chunk, with untouched chunks reading the base.
TEST(VersionedColumnTest, ChunkBoundaryVisibility) {
  std::vector<uint32_t> base(20);
  for (size_t i = 0; i < base.size(); ++i) base[i] = 1000 + i;
  VersionedColumn<uint32_t> col(
      storage::ColumnView<uint32_t>(base.data(), base.size()),
      /*chunk_rows=*/8, mem::SimulatedEnclave());

  RetiredVersion* retired = nullptr;
  RetiredVersion* retired2 = nullptr;
  ASSERT_TRUE(col.Apply(0, 11, /*epoch=*/1, &retired).ok());
  EXPECT_EQ(retired, nullptr);  // first version of chunk 0
  ASSERT_TRUE(col.Apply(7, 12, /*epoch=*/2, &retired).ok());
  ASSERT_NE(retired, nullptr);  // chunk 0 superseded
  EXPECT_EQ(retired->retire_epoch, 2u);
  ASSERT_TRUE(col.Apply(8, 13, /*epoch=*/3, &retired2).ok());
  EXPECT_EQ(retired2, nullptr);  // chunk 1's first version
  ASSERT_TRUE(col.Apply(19, 14, /*epoch=*/4, &retired2).ok());
  EXPECT_EQ(retired2, nullptr);  // short chunk 2's first version

  auto expect_at = [&](uint64_t epoch, std::vector<uint32_t> want) {
    // ForEachRun over the full range...
    std::vector<uint32_t> got(base.size(), 0);
    ASSERT_TRUE(storage::ForEachRun(
                    col.ViewAt(epoch), 0, base.size(),
                    [&](const uint32_t* run, size_t abs, size_t n) {
                      for (size_t i = 0; i < n; ++i) got[abs + i] = run[i];
                    })
                    .ok());
    EXPECT_EQ(got, want) << "ForEachRun at epoch " << epoch;
    // ...and ColumnReader random access, descending to stress re-caching.
    storage::ColumnReader<uint32_t> reader(col.ViewAt(epoch));
    for (size_t i = base.size(); i-- > 0;) {
      EXPECT_EQ(reader[i], want[i]) << "reader row " << i;
    }
    EXPECT_TRUE(reader.status().ok());
  };

  std::vector<uint32_t> at0 = base;  // epoch 0: nothing visible
  expect_at(0, at0);
  std::vector<uint32_t> at1 = base;
  at1[0] = 11;
  expect_at(1, at1);
  std::vector<uint32_t> at2 = at1;
  at2[7] = 12;
  expect_at(2, at2);
  std::vector<uint32_t> at4 = at2;
  at4[8] = 13;
  at4[19] = 14;
  expect_at(4, at4);

  // Reclaim the superseded epoch-1 version (no pinned readers remain at
  // epoch 1): epoch-2+ reads are unaffected, and the chain stays
  // consistent for the destructor.
  retired->Unlink();
  delete retired;
  expect_at(4, at4);
  expect_at(2, at2);
}

// --- VersionedTpchDb -----------------------------------------------------

TEST(VersionedDbTest, SnapshotsAreStableAndNewSnapshotsSeeCommits) {
  VersionedTpchDb vdb(Db());
  const uint32_t before = [&] {
    storage::ColumnReader<uint32_t> r(vdb.ViewAt(0).lineitem.l_quantity);
    return r[5];
  }();

  auto snap = vdb.OpenSnapshot().value();
  ASSERT_TRUE(vdb.Commit({UpdateColumn::kLQuantity, 5, before + 1}).ok());

  storage::ColumnReader<uint32_t> old_reader(snap.view().lineitem.l_quantity);
  EXPECT_EQ(old_reader[5], before) << "pinned snapshot must not move";

  auto snap2 = vdb.OpenSnapshot().value();
  EXPECT_GT(snap2.epoch(), snap.epoch());
  storage::ColumnReader<uint32_t> new_reader(
      snap2.view().lineitem.l_quantity);
  EXPECT_EQ(new_reader[5], before + 1);
}

TEST(VersionedDbTest, ReclamationGatedByPinnedSnapshot) {
  TxnOptions opts;
  opts.reclaim_on_commit = false;  // stage reclamation by hand
  VersionedTpchDb vdb(Db(), opts);

  ASSERT_TRUE(vdb.Commit({UpdateColumn::kLDiscount, 3, 1}).ok());
  {
    auto snap = vdb.OpenSnapshot().value();
    // Supersede the version the snapshot can still reach.
    ASSERT_TRUE(vdb.Commit({UpdateColumn::kLDiscount, 3, 2}).ok());
    EXPECT_EQ(vdb.stats().retired_pending, 1u);
    EXPECT_EQ(vdb.ReclaimQuiescent(), 0u) << "pinned snapshot gates reclaim";

    storage::ColumnReader<uint32_t> r(snap.view().lineitem.l_discount);
    EXPECT_EQ(r[3], 1u) << "snapshot reads the retired-but-live version";
  }
  EXPECT_EQ(vdb.ReclaimQuiescent(), 1u);
  const TxnStats s = vdb.stats();
  EXPECT_EQ(s.versions_retired, s.versions_reclaimed);
  EXPECT_EQ(s.retired_pending, 0u);
  EXPECT_GT(s.reclaimed_bytes, 0u);
  EXPECT_EQ(s.live_version_bytes, s.cow_bytes - s.reclaimed_bytes);
}

TEST(VersionedDbTest, CommitValidatesRowRange) {
  VersionedTpchDb vdb(Db());
  EXPECT_FALSE(
      vdb.Commit({UpdateColumn::kLQuantity, vdb.lineitem_rows(), 1}).ok());
  EXPECT_FALSE(
      vdb.Commit({UpdateColumn::kOOrderDate, vdb.orders_rows(), 1}).ok());
  EXPECT_TRUE(
      vdb.Commit({UpdateColumn::kOOrderDate, vdb.orders_rows() - 1, 1})
          .ok());
}

TEST(UpdateFeedTest, PacedFeedCommits) {
  VersionedTpchDb vdb(Db());
  UpdateFeedOptions opts;
  opts.rows_per_sec = 2000;
  opts.zipf_theta = 0.5;
  opts.threads = 2;
  UpdateFeed feed(&vdb, opts);
  feed.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  feed.Stop();

  const UpdateFeed::Stats s = feed.stats();
  EXPECT_GT(s.committed, 0u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GT(s.p99_ns, 0u);
  EXPECT_GE(s.max_ns, s.p50_ns);
  EXPECT_EQ(vdb.stats().commits, s.committed);
  EXPECT_TRUE(vdb.Drain().ok());
}

// --- Snapshot-isolation equivalence matrix -------------------------------
//
// The acceptance gate: apply a scripted update stream, pin a snapshot
// mid-stream, keep writing — then every catalog query over the pinned
// snapshot must equal the same query over a frozen database that has
// exactly the pre-pin prefix applied in place. Run over a resident base
// and over a paged base (columns behind the buffer manager).

std::vector<UpdateOp> ScriptedOps(const tpch::TpchDb& db, size_t n) {
  std::vector<UpdateOp> ops;
  ops.reserve(n);
  Xoshiro256 rng(0x48544150u);  // 'HTAP'
  for (size_t i = 0; i < n; ++i) {
    UpdateOp op;
    op.column = static_cast<UpdateColumn>(rng.NextBounded(4));
    const size_t rows = op.column == UpdateColumn::kOOrderDate
                            ? db.orders.num_rows
                            : db.lineitem.num_rows;
    op.row = rng.NextBounded(rows);
    switch (op.column) {
      case UpdateColumn::kLQuantity:
        op.value = 1 + static_cast<uint32_t>(rng.NextBounded(50));
        break;
      case UpdateColumn::kLExtendedPrice:
        op.value = 100 + static_cast<uint32_t>(rng.NextBounded(10000000));
        break;
      case UpdateColumn::kLDiscount:
        op.value = static_cast<uint32_t>(rng.NextBounded(11));
        break;
      case UpdateColumn::kOOrderDate:
        op.value = static_cast<uint32_t>(
            rng.NextBounded(tpch::kDate19980802 + 1));
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

void ApplyInPlace(tpch::TpchDb* db, const UpdateOp& op) {
  switch (op.column) {
    case UpdateColumn::kLQuantity:
      db->lineitem.l_quantity.data()[op.row] = op.value;
      break;
    case UpdateColumn::kLExtendedPrice:
      db->lineitem.l_extendedprice.data()[op.row] = op.value;
      break;
    case UpdateColumn::kLDiscount:
      db->lineitem.l_discount.data()[op.row] = op.value;
      break;
    case UpdateColumn::kOOrderDate:
      db->orders.o_orderdate.data()[op.row] = op.value;
      break;
  }
}

void RunEquivalenceMatrix(VersionedTpchDb* vdb) {
  tpch::GenConfig cfg;
  cfg.scale_factor = 0.01;
  tpch::TpchDb oracle = tpch::Generate(cfg).value();  // frozen copy

  const std::vector<UpdateOp> ops = ScriptedOps(oracle, 400);
  const size_t prefix = ops.size() / 2;
  for (size_t i = 0; i < prefix; ++i) {
    ASSERT_TRUE(vdb->Commit(ops[i]).ok()) << "op " << i;
    ApplyInPlace(&oracle, ops[i]);
  }
  auto snap = vdb->OpenSnapshot().value();
  for (size_t i = prefix; i < ops.size(); ++i) {
    ASSERT_TRUE(vdb->Commit(ops[i]).ok()) << "op " << i;
  }

  const tpch::TpchDbView oracle_view = tpch::ViewOf(oracle);
  tpch::QueryConfig config;
  config.num_threads = 2;
  for (const plan::CatalogEntry& entry : plan::Catalog()) {
    auto got = tpch::RunQuery(entry.query_number, snap.view(), config);
    ASSERT_TRUE(got.ok()) << "Q" << entry.query_number << ": "
                          << got.status().message();
    auto want = tpch::RunQuery(entry.query_number, oracle_view, config);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got.value().count, want.value().count)
        << "Q" << entry.query_number << " count diverged from the oracle";
    EXPECT_EQ(got.value().group_counts, want.value().group_counts)
        << "Q" << entry.query_number << " groups diverged from the oracle";
  }
}

TEST(SnapshotEquivalenceTest, AllCatalogQueriesResidentBase) {
  tpch::GenConfig cfg;
  cfg.scale_factor = 0.01;
  tpch::TpchDb db = tpch::Generate(cfg).value();
  VersionedTpchDb vdb(db);
  RunEquivalenceMatrix(&vdb);
}

TEST(SnapshotEquivalenceTest, AllCatalogQueriesPagedBase) {
  tpch::GenConfig cfg;
  cfg.scale_factor = 0.01;
  tpch::TpchDb db = tpch::Generate(cfg).value();
  storage::BufferManager::Config bm_cfg;
  bm_cfg.buffer_bytes = 8ull << 20;  // smaller than the working set
  bm_cfg.partition_rows = 8 * 1024;
  storage::BufferManager bm(bm_cfg);
  tpch::PagedTpchDb paged = tpch::PagedTpchDb::Build(db, &bm).value();
  VersionedTpchDb vdb(paged.View());
  RunEquivalenceMatrix(&vdb);
  EXPECT_GT(bm.stats().partitions_reloaded, 0u);
}

}  // namespace
}  // namespace sgxb::txn
