// MemoryResource behaviour: placement tags, enclave accounting, the
// failure-injection hook, and the trusted-allocation bypass counters.

#include "mem/memory_resource.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/aligned_buffer.h"
#include "common/types.h"
#include "mem/enclave_resource.h"
#include "sgx/enclave.h"

namespace sgxb::mem {
namespace {

TEST(MemoryResourceTest, UntrustedPlacement) {
  MemoryResource* r = Untrusted();
  EXPECT_EQ(r->placement().region, MemoryRegion::kUntrusted);
  auto buf = r->Allocate(4_KiB);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(buf.value().region(), MemoryRegion::kUntrusted);
  EXPECT_EQ(buf.value().size(), 4_KiB);
}

TEST(MemoryResourceTest, SimulatedEnclavePlacement) {
  MemoryResource* r = SimulatedEnclave();
  EXPECT_EQ(r->placement().region, MemoryRegion::kEnclave);
  auto buf = r->Allocate(4_KiB);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(buf.value().region(), MemoryRegion::kEnclave);
}

TEST(MemoryResourceTest, InternedPerNumaNode) {
  EXPECT_EQ(Untrusted(0), Untrusted(0));
  EXPECT_NE(Untrusted(0), Untrusted(1));
  EXPECT_EQ(Untrusted(1)->placement().numa_node, 1);
  EXPECT_NE(Untrusted(0), SimulatedEnclave(0));
}

TEST(MemoryResourceTest, AllocateZeroedZeroFills) {
  auto buf = Untrusted()->AllocateZeroed(64_KiB);
  ASSERT_TRUE(buf.ok());
  const auto* p = buf.value().As<uint8_t>();
  for (size_t i = 0; i < 64_KiB; ++i) ASSERT_EQ(p[i], 0) << "byte " << i;
}

TEST(MemoryResourceTest, RejectsBadAlignment) {
  EXPECT_FALSE(Untrusted()->Allocate(64, /*alignment=*/24).ok());
  EXPECT_FALSE(Untrusted()->Allocate(64, /*alignment=*/32).ok());
  EXPECT_TRUE(Untrusted()->Allocate(64, /*alignment=*/128).ok());
}

TEST(MemoryResourceTest, EnclaveResourceChargesAndCreditsHeap) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  MemoryResource* r = ForEnclave(e);
  EXPECT_EQ(r, ForEnclave(e));  // interned per enclave
  EXPECT_EQ(r->placement().region, MemoryRegion::kEnclave);
  {
    auto buf = r->Allocate(256_KiB);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(e->memory_stats().heap_used_bytes, 256_KiB);
  }
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  sgx::DestroyEnclave(e);
}

TEST(MemoryResourceTest, EnclaveResourceSurfacesExhaustionAsStatus) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.dynamic = false;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  auto buf = ForEnclave(e)->Allocate(1_MiB);
  ASSERT_FALSE(buf.ok());
  EXPECT_EQ(buf.status().code(), StatusCode::kOutOfMemory);
  sgx::DestroyEnclave(e);
}

TEST(MemoryResourceTest, ResourceForMapsSettings) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  EXPECT_EQ(ResourceFor(ExecutionSetting::kPlainCpu, e), Untrusted());
  EXPECT_EQ(ResourceFor(ExecutionSetting::kSgxDataOutsideEnclave, e),
            Untrusted());
  EXPECT_EQ(ResourceFor(ExecutionSetting::kSgxDataInEnclave, e),
            ForEnclave(e));
  EXPECT_EQ(ResourceFor(ExecutionSetting::kSgxDataInEnclave, nullptr),
            SimulatedEnclave());
  sgx::DestroyEnclave(e);
}

TEST(MemoryResourceTest, EnvForReadsPlacementTag) {
  // The env's data region comes from where the resource actually puts
  // bytes, not from the setting: data outside a live enclave stays
  // unencrypted even under kSgxDataInEnclave modelling, and vice versa.
  perf::ExecutionEnv env =
      EnvFor(*Untrusted(), ExecutionSetting::kSgxDataInEnclave, 4);
  ASSERT_TRUE(env.data_region.has_value());
  EXPECT_EQ(*env.data_region, MemoryRegion::kUntrusted);
  EXPECT_FALSE(env.DataEncrypted());
  EXPECT_EQ(env.threads, 4);

  env = EnvFor(*SimulatedEnclave(),
               ExecutionSetting::kSgxDataOutsideEnclave, 1);
  EXPECT_TRUE(env.DataEncrypted());
}

TEST(MemoryResourceTest, InjectedFailureAfterPrefix) {
  ScopedAllocFailure inject(/*fail_after=*/2, /*count=*/1);
  MemoryResource* r = Untrusted();
  EXPECT_TRUE(r->Allocate(64).ok());
  EXPECT_TRUE(r->Allocate(64).ok());
  auto failed = r->Allocate(64);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kOutOfMemory);
  EXPECT_TRUE(r->Allocate(64).ok());  // count exhausted
  EXPECT_EQ(inject.injected(), 1u);
}

TEST(MemoryResourceTest, InjectionScopeEndsWithScope) {
  {
    ScopedAllocFailure inject(/*fail_after=*/0);
    EXPECT_FALSE(Untrusted()->Allocate(64).ok());
    EXPECT_FALSE(SimulatedEnclave()->Allocate(64).ok());
  }
  EXPECT_TRUE(Untrusted()->Allocate(64).ok());
}

TEST(MemoryResourceTest, ResourceAllocationsAreSanctioned) {
  // Trusted allocations routed through mem/ resources must not count as
  // bypasses; a direct AlignedBuffer::Allocate(kEnclave) must.
  const uint64_t before = TrustedBypassAllocCount();
  auto a = SimulatedEnclave()->Allocate(4_KiB);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(TrustedBypassAllocCount(), before);
  auto direct = AlignedBuffer::Allocate(4_KiB, MemoryRegion::kEnclave);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(TrustedBypassAllocCount(), before + 1);
}

}  // namespace
}  // namespace sgxb::mem
