// Arena and ArenaPool behaviour: alignment, checkpoint/rollback, warm
// chunk reuse, EDMM page-charge accounting against a live enclave, and
// OOM injection driven through a full join build.

#include "mem/arena.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/types.h"
#include "join/data_gen.h"
#include "join/join_common.h"
#include "join/pht_join.h"
#include "mem/arena_pool.h"
#include "mem/enclave_resource.h"
#include "mem/memory_resource.h"
#include "sgx/enclave.h"

namespace sgxb::mem {
namespace {

constexpr size_t kChunk = 64_KiB;

TEST(ArenaTest, BumpsWithinOneChunk) {
  Arena arena(Untrusted(), kChunk);
  auto a = arena.Allocate(100);
  auto b = arena.Allocate(100);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_EQ(arena.reserved(), kChunk);
}

TEST(ArenaTest, CarveOutsAreCacheLineAligned) {
  Arena arena(Untrusted(), kChunk);
  for (int i = 0; i < 10; ++i) {
    auto p = arena.Allocate(i * 7 + 1);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p.value()) % kCacheLineSize, 0u);
  }
}

TEST(ArenaTest, HonorsLargerAlignment) {
  Arena arena(Untrusted(), kChunk);
  ASSERT_TRUE(arena.Allocate(1).ok());  // skew the bump offset
  auto p = arena.Allocate(64, /*alignment=*/4096);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p.value()) % 4096, 0u);
  EXPECT_FALSE(arena.Allocate(64, /*alignment=*/48).ok());
}

TEST(ArenaTest, GrowsAcrossChunks) {
  Arena arena(Untrusted(), kChunk);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(arena.Allocate(kChunk / 2).ok());
  EXPECT_GE(arena.num_chunks(), 2u);
  EXPECT_GE(arena.reserved(), arena.used());
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(Untrusted(), kChunk);
  auto p = arena.Allocate(5 * kChunk);
  ASSERT_TRUE(p.ok());
  // Rounded up to a chunk-size multiple, in one contiguous chunk.
  EXPECT_EQ(arena.num_chunks(), 1u);
  EXPECT_GE(arena.reserved(), 5 * kChunk);
}

TEST(ArenaTest, AllocateArrayIsTypedAndAligned) {
  Arena arena(Untrusted(), kChunk);
  auto arr = arena.AllocateArray<uint64_t>(100);
  ASSERT_TRUE(arr.ok());
  for (int i = 0; i < 100; ++i) arr.value()[i] = i;  // must not fault
  EXPECT_EQ(arr.value()[99], 99u);
}

TEST(ArenaTest, RollbackReturnsToCheckpoint) {
  Arena arena(Untrusted(), kChunk);
  ASSERT_TRUE(arena.Allocate(1_KiB).ok());
  const ArenaCheckpoint cp = arena.Save();
  const size_t used_at_cp = arena.used();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(arena.Allocate(kChunk / 2).ok());
  EXPECT_GT(arena.used(), used_at_cp);
  EXPECT_GT(arena.num_chunks(), 1u);
  arena.Rollback(cp);
  EXPECT_EQ(arena.used(), used_at_cp);
  // Whole chunks past the checkpoint were released immediately.
  EXPECT_EQ(arena.num_chunks(), 1u);
}

TEST(ArenaTest, RollbackToEmptyReleasesEverything) {
  Arena arena(Untrusted(), kChunk);
  const ArenaCheckpoint cp = arena.Save();
  ASSERT_TRUE(arena.Allocate(3 * kChunk).ok());
  arena.Rollback(cp);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.num_chunks(), 0u);
}

TEST(ArenaTest, ResetRetainsChunksForReuse) {
  Arena arena(Untrusted(), kChunk);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(arena.Allocate(kChunk / 2).ok());
  const size_t reserved = arena.reserved();
  ASSERT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.reserved(), reserved);  // chunks kept
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(arena.Allocate(kChunk / 2).ok());
  EXPECT_EQ(arena.reserved(), reserved);  // ...and actually reused
}

TEST(ArenaTest, ChargesEnclaveHeapAndCreditsOnDestruction) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 4_MiB;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  {
    Arena arena(ForEnclave(e), kChunk);
    ASSERT_TRUE(arena.Allocate(3 * kChunk).ok());
    EXPECT_EQ(e->memory_stats().heap_used_bytes, arena.reserved());
  }
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  sgx::DestroyEnclave(e);
}

TEST(ArenaTest, SurfacesEnclaveExhaustion) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 2 * kChunk;
  cfg.dynamic = false;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  {
    Arena arena(ForEnclave(e), kChunk);
    ASSERT_TRUE(arena.Allocate(kChunk).ok());
    auto p = arena.Allocate(4 * kChunk);
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kOutOfMemory);
    // The failed growth did not corrupt the arena: smaller asks still
    // fit.
    EXPECT_TRUE(arena.Allocate(64).ok());
  }
  sgx::DestroyEnclave(e);
}

TEST(ArenaPoolTest, ReleaseThenAcquireIsAReuseHit) {
  ArenaPool pool(Untrusted(), kChunk);
  {
    Arena arena(Untrusted(), kChunk, &pool);
    ASSERT_TRUE(arena.Allocate(100).ok());
  }
  ArenaPool::Stats s = pool.stats();
  EXPECT_EQ(s.fresh_allocs, 1u);
  EXPECT_EQ(s.released, 1u);
  EXPECT_EQ(s.cached_chunks, 1u);
  {
    Arena arena(Untrusted(), kChunk, &pool);
    ASSERT_TRUE(arena.Allocate(100).ok());
  }
  s = pool.stats();
  EXPECT_EQ(s.reuse_hits, 1u);
  EXPECT_EQ(s.fresh_allocs, 1u);
}

TEST(ArenaPoolTest, TrimDropsCachedChunks) {
  ArenaPool pool(Untrusted(), kChunk);
  {
    Arena arena(Untrusted(), kChunk, &pool);
    ASSERT_TRUE(arena.Allocate(100).ok());
  }
  ASSERT_EQ(pool.stats().cached_chunks, 1u);
  pool.Trim();
  EXPECT_EQ(pool.stats().cached_chunks, 0u);
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
}

TEST(ArenaPoolTest, PoolReuseAvoidsEdmmRepayment) {
  // The Fig 11 mechanism at allocator level: against a trimming dynamic
  // enclave, a fresh arena per query re-pays EDMM page commits every time,
  // while a pooled arena pays once and then reuses warm chunks.
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.max_heap_bytes = 64_MiB;
  cfg.dynamic = true;
  cfg.edmm_trim = true;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  MemoryResource* r = ForEnclave(e);

  auto pages_added = [&] { return e->memory_stats().edmm_pages_added; };

  // Two "queries" without a pool: both pay page growth.
  uint64_t fresh_first, fresh_second;
  {
    Arena arena(r, kChunk);
    ASSERT_TRUE(arena.Allocate(8 * kChunk).ok());
  }
  fresh_first = pages_added();
  EXPECT_GT(fresh_first, 0u);
  {
    Arena arena(r, kChunk);
    ASSERT_TRUE(arena.Allocate(8 * kChunk).ok());
  }
  fresh_second = pages_added() - fresh_first;
  EXPECT_GT(fresh_second, 0u);

  // Two "queries" sharing a pool: only the first allocates; the chunks
  // stay committed in the cache so the second adds zero pages.
  ArenaPool pool(r, kChunk);
  uint64_t pooled_base = pages_added();
  {
    Arena arena(r, kChunk, &pool);
    ASSERT_TRUE(arena.Allocate(8 * kChunk).ok());
  }
  const uint64_t pooled_first = pages_added() - pooled_base;
  EXPECT_GT(pooled_first, 0u);
  pooled_base = pages_added();
  {
    Arena arena(r, kChunk, &pool);
    ASSERT_TRUE(arena.Allocate(8 * kChunk).ok());
  }
  EXPECT_EQ(pages_added() - pooled_base, 0u);
  EXPECT_GE(pool.stats().reuse_hits, 1u);

  pool.Trim();
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  sgx::DestroyEnclave(e);
}

TEST(ArenaTest, InjectedOomPropagatesThroughJoinBuild) {
  // Satellite (b) end to end: a failure injected at the resource layer
  // must surface as a clean kOutOfMemory Status from a full join call —
  // no abort, no partial-result success.
  auto build = join::GenerateBuildRelation(10000, MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(40000, 10000,
                                           MemoryRegion::kUntrusted)
                   .value();
  join::JoinConfig config;
  config.num_threads = 1;
  config.radix_bits = 6;
  {
    ScopedAllocFailure inject(/*fail_after=*/0);
    auto result = join::PhtJoin(build, probe, config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfMemory);
    EXPECT_GE(inject.injected(), 1u);
  }
  // With injection gone the same inputs join fine.
  auto result = join::PhtJoin(build, probe, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().matches, 0u);
}

}  // namespace
}  // namespace sgxb::mem
