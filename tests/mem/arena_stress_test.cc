// Concurrency: many arenas hammering one shared ArenaPool (the
// per-worker-arena / shared-pool design docs/memory.md prescribes). Run
// under TSan in CI via the mem_test label.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>

#include "common/parallel.h"
#include "common/types.h"
#include "mem/arena.h"
#include "mem/arena_pool.h"
#include "mem/enclave_resource.h"
#include "mem/memory_resource.h"
#include "sgx/enclave.h"

namespace sgxb::mem {
namespace {

constexpr size_t kChunk = 64_KiB;
constexpr int kThreads = 8;
constexpr int kQueriesPerThread = 25;

TEST(ArenaStressTest, ConcurrentArenasShareOnePool) {
  ArenaPool pool(Untrusted(), kChunk);
  std::atomic<uint64_t> failures{0};
  ParallelRun(kThreads, [&](int tid) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      Arena arena(Untrusted(), kChunk, &pool);
      for (int i = 0; i < 6; ++i) {
        auto p = arena.AllocateArray<uint64_t>(1024);
        if (!p.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Touch the memory so races on recycled chunks are visible to
        // TSan and to the checksum below.
        for (int j = 0; j < 1024; ++j) p.value()[j] = tid * 1000 + j;
        uint64_t sum = 0;
        for (int j = 0; j < 1024; ++j) sum += p.value()[j];
        if (sum != 1024ull * (tid * 1000) + 1023ull * 1024 / 2) {
          failures.fetch_add(1);
        }
      }
      // Arena destruction releases its chunks back to the pool.
    }
  });
  EXPECT_EQ(failures.load(), 0u);
  ArenaPool::Stats s = pool.stats();
  // Every chunk ever handed out came back.
  EXPECT_EQ(s.released, s.fresh_allocs + s.reuse_hits);
  EXPECT_EQ(s.cached_chunks * pool.chunk_bytes(), s.cached_bytes);
  // Reuse must dominate: the pool never holds more chunks than the peak
  // concurrent demand (~kThreads), far below total acquires.
  EXPECT_GT(s.reuse_hits, s.fresh_allocs);
}

TEST(ArenaStressTest, ConcurrentEnclaveArenasKeepAccountingExact) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 256_MiB;
  sgx::Enclave* e = sgx::Enclave::Create(cfg).value();
  MemoryResource* r = ForEnclave(e);
  ArenaPool pool(r, kChunk);
  std::atomic<uint64_t> failures{0};
  ParallelRun(kThreads, [&](int) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      Arena arena(r, kChunk, &pool);
      for (int i = 0; i < 4; ++i) {
        if (!arena.Allocate(kChunk / 2).ok()) failures.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(failures.load(), 0u);
  // All live trusted bytes are exactly the pool's cache.
  EXPECT_EQ(e->memory_stats().heap_used_bytes, pool.stats().cached_bytes);
  pool.Trim();
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  sgx::DestroyEnclave(e);
}

TEST(ArenaStressTest, RollbackUnderConcurrentPoolTraffic) {
  // Checkpoints are arena-local; rolling back while sibling arenas churn
  // the shared pool must neither race nor leak.
  ArenaPool pool(Untrusted(), kChunk);
  std::atomic<uint64_t> failures{0};
  ParallelRun(kThreads, [&](int) {
    for (int q = 0; q < kQueriesPerThread; ++q) {
      Arena arena(Untrusted(), kChunk, &pool);
      if (!arena.Allocate(128).ok()) {
        failures.fetch_add(1);
        continue;
      }
      ArenaCheckpoint cp = arena.Save();
      const size_t used = arena.used();
      for (int i = 0; i < 4; ++i) {
        if (!arena.Allocate(kChunk / 2).ok()) failures.fetch_add(1);
      }
      arena.Rollback(cp);
      if (arena.used() != used) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0u);
  ArenaPool::Stats s = pool.stats();
  EXPECT_EQ(s.released, s.fresh_allocs + s.reuse_hits);
}

}  // namespace
}  // namespace sgxb::mem
