#include "join/materializer.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/types.h"
#include "mem/enclave_resource.h"
#include "sgx/enclave.h"

namespace sgxb::join {
namespace {

TEST(MaterializerTest, EmptyHasNoTuples) {
  Materializer m(2);
  EXPECT_EQ(m.TotalTuples(), 0u);
  EXPECT_TRUE(m.status().ok());
  int chunks = 0;
  m.ForEachChunk([&](const JoinOutputTuple*, size_t) { ++chunks; });
  EXPECT_EQ(chunks, 0);
}

TEST(MaterializerTest, AppendsAcrossChunkBoundaries) {
  constexpr size_t kChunk = 16;
  Materializer m(1, /*resource=*/nullptr, kChunk);
  for (uint32_t i = 0; i < 100; ++i) {
    m.Append(0, JoinOutputTuple{i, i * 2, i * 3});
  }
  EXPECT_EQ(m.TotalTuples(), 100u);

  uint32_t next = 0;
  m.ForEachChunk([&](const JoinOutputTuple* chunk, size_t n) {
    EXPECT_LE(n, kChunk);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(chunk[i].key, next);
      EXPECT_EQ(chunk[i].build_payload, next * 2);
      EXPECT_EQ(chunk[i].probe_payload, next * 3);
      ++next;
    }
  });
  EXPECT_EQ(next, 100u);
}

TEST(MaterializerTest, PerThreadSlotsAreIndependent) {
  constexpr int kThreads = 4;
  Materializer m(kThreads, /*resource=*/nullptr, 64);
  ParallelRun(kThreads, [&](int tid) {
    for (uint32_t i = 0; i < 1000; ++i) {
      m.Append(tid, JoinOutputTuple{static_cast<uint32_t>(tid), i, i});
    }
  });
  EXPECT_EQ(m.TotalTuples(), 4000u);
  EXPECT_TRUE(m.status().ok());
}

TEST(MaterializerTest, EnclaveAllocationsAccounted) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 4_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(cfg).value();
  {
    Materializer m(1, mem::ForEnclave(enclave), 1024);
    for (uint32_t i = 0; i < 5000; ++i) {
      m.Append(0, JoinOutputTuple{i, i, i});
    }
    EXPECT_EQ(m.TotalTuples(), 5000u);
    EXPECT_GT(enclave->memory_stats().heap_used_bytes, 0u);
  }
  sgx::DestroyEnclave(enclave);
}

TEST(MaterializerTest, EnclaveExhaustionSurfacesAsStatus) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.dynamic = false;
  sgx::Enclave* enclave = sgx::Enclave::Create(cfg).value();
  Materializer m(1, mem::ForEnclave(enclave), 1024);
  // 1024-tuple chunks are 12 KiB; a 64 KiB static heap fits only ~5.
  for (uint32_t i = 0; i < 100000; ++i) {
    m.Append(0, JoinOutputTuple{i, i, i});
  }
  EXPECT_FALSE(m.status().ok());
  EXPECT_EQ(m.status().code(), StatusCode::kOutOfMemory);
  sgx::DestroyEnclave(enclave);
}

TEST(MaterializerTest, DynamicEnclaveGrowsInstead) {
  sgx::EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.max_heap_bytes = 32_MiB;
  cfg.dynamic = true;
  sgx::Enclave* enclave = sgx::Enclave::Create(cfg).value();
  Materializer m(1, mem::ForEnclave(enclave), 1024);
  for (uint32_t i = 0; i < 100000; ++i) {
    m.Append(0, JoinOutputTuple{i, i, i});
  }
  EXPECT_TRUE(m.status().ok());
  EXPECT_EQ(m.TotalTuples(), 100000u);
  EXPECT_GT(enclave->memory_stats().edmm_pages_added, 0u);
  sgx::DestroyEnclave(enclave);
}

}  // namespace
}  // namespace sgxb::join
