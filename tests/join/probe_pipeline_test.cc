// Latency-hiding probe pipelines (exec/probe_pipeline.h):
//
//  1. Driver unit tests — group prefetching and AMAC must visit every
//     probe exactly once and run chains of differing depth to completion,
//     for widths around the group/ring boundaries.
//  2. Determinism — each join's results (match count + order-independent
//     checksum over the materialized output) must be identical across
//     executor dispatch modes (pool vs spawn), thread counts, probe modes
//     (tuple vs gp vs amac), and key distributions (uniform vs skewed).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "exec/executor.h"
#include "exec/probe_pipeline.h"
#include "join/cht_join.h"
#include "join/data_gen.h"
#include "join/inl_join.h"
#include "join/join_common.h"
#include "join/materializer.h"
#include "join/pht_join.h"
#include "join/radix_common.h"
#include "join/rho_join.h"

namespace sgxb::join {
namespace {

// --- Driver unit tests ----------------------------------------------------

// Synthetic cursor: probe i walks a chain of (key % 5) hops through a
// shared depth table, then records its visit. Exercises chains of depth
// 0 (complete during Reset) through 4.
struct SyntheticCursor {
  static constexpr int kPrefetchLines = 1;
  std::vector<uint32_t>* visits = nullptr;
  const uint32_t* depth_table = nullptr;

  uint32_t key_ = 0;
  uint32_t remaining_ = 0;

  void Reset(const Tuple& t) {
    key_ = t.key;
    remaining_ = t.key % 5;
    if (remaining_ == 0) {
      (*visits)[t.key] += 1;  // zero-hop probes complete in Reset
    }
  }
  const void* Target() const {
    return remaining_ == 0 ? nullptr : &depth_table[key_ % 7];
  }
  void Advance() {
    if (--remaining_ == 0) {
      (*visits)[key_] += 1;
    }
  }
};

class ProbeDriverTest
    : public ::testing::TestWithParam<std::tuple<exec::ProbeMode, int>> {};

TEST_P(ProbeDriverTest, EveryProbeVisitedExactlyOnce) {
  auto [mode, width] = GetParam();
  const size_t n = 1000;
  std::vector<Tuple> tuples(n);
  for (size_t i = 0; i < n; ++i) {
    tuples[i] = Tuple{static_cast<uint32_t>(i), 0};
  }
  std::vector<uint32_t> visits(n, 0);
  std::vector<uint32_t> depth_table(7, 0);

  std::vector<SyntheticCursor> cursors(exec::kMaxProbeWidth);
  for (auto& c : cursors) {
    c.visits = &visits;
    c.depth_table = depth_table.data();
  }
  exec::BatchedProbe(mode, tuples.data(), n, width, cursors.data());

  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i], 1u) << "probe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWidths, ProbeDriverTest,
    ::testing::Combine(::testing::Values(exec::ProbeMode::kGroupPrefetch,
                                         exec::ProbeMode::kAmac),
                       // 1 degenerates to tuple-at-a-time; 7 and 16 are
                       // not divisors of n and n is not a multiple of
                       // them, exercising the final partial group/ring
                       // drain; 64 is the clamp boundary.
                       ::testing::Values(1, 7, 16, 64)),
    [](const auto& info) {
      return std::string(exec::ProbeModeToString(std::get<0>(info.param))) +
             "_W" + std::to_string(std::get<1>(info.param));
    });

TEST(ProbeDriverTest, EmptyInputIsANoOp) {
  std::vector<uint32_t> visits;
  std::vector<uint32_t> depth_table(7, 0);
  std::vector<SyntheticCursor> cursors(4);
  for (auto& c : cursors) {
    c.visits = &visits;
    c.depth_table = depth_table.data();
  }
  exec::BatchedProbe(exec::ProbeMode::kGroupPrefetch, nullptr, 0, 4,
                     cursors.data());
  exec::BatchedProbe(exec::ProbeMode::kAmac, nullptr, 0, 4,
                     cursors.data());
}

TEST(ProbeModeTest, StringRoundTripAndFallback) {
  using exec::ProbeMode;
  EXPECT_EQ(exec::ProbeModeFromString("tuple", ProbeMode::kAmac),
            ProbeMode::kTupleAtATime);
  EXPECT_EQ(exec::ProbeModeFromString("gp", ProbeMode::kTupleAtATime),
            ProbeMode::kGroupPrefetch);
  EXPECT_EQ(exec::ProbeModeFromString("amac", ProbeMode::kTupleAtATime),
            ProbeMode::kAmac);
  EXPECT_EQ(exec::ProbeModeFromString(nullptr, ProbeMode::kGroupPrefetch),
            ProbeMode::kGroupPrefetch);
  EXPECT_EQ(exec::ProbeModeFromString("bogus", ProbeMode::kAmac),
            ProbeMode::kAmac);
  for (ProbeMode m : {ProbeMode::kTupleAtATime, ProbeMode::kGroupPrefetch,
                      ProbeMode::kAmac}) {
    EXPECT_EQ(exec::ProbeModeFromString(exec::ProbeModeToString(m),
                                        ProbeMode::kTupleAtATime),
              m);
  }
}

TEST(ProbeModeTest, WidthClampsToValidRange) {
  EXPECT_EQ(exec::ClampProbeWidth(-3), 1);
  EXPECT_EQ(exec::ClampProbeWidth(0), 1);
  EXPECT_EQ(exec::ClampProbeWidth(16), 16);
  EXPECT_EQ(exec::ClampProbeWidth(10000), exec::kMaxProbeWidth);
}

TEST(ProbeModeTest, ConfigOverridesFlavorDefault) {
  // Explicit config beats everything (the env knob is not set under
  // ctest; if it were, this test documents that config still wins).
  JoinConfig config;
  config.probe_mode = exec::ProbeMode::kAmac;
  config.flavor = KernelFlavor::kReference;
  EXPECT_EQ(EffectiveProbeMode(config), exec::ProbeMode::kAmac);
  config.probe_batch = 24;
  EXPECT_EQ(EffectiveProbeWidth(config, exec::ProbeMode::kAmac), 24);
  config.probe_batch = 100000;
  EXPECT_EQ(EffectiveProbeWidth(config, exec::ProbeMode::kAmac),
            exec::kMaxProbeWidth);
}

TEST(ProbeModeTest, FlavorDerivesDefaultWhenEnvUnset) {
  if (std::getenv("SGXBENCH_PROBE_MODE") != nullptr) {
    GTEST_SKIP() << "SGXBENCH_PROBE_MODE set; flavour default shadowed";
  }
  JoinConfig config;
  config.flavor = KernelFlavor::kReference;
  EXPECT_EQ(EffectiveProbeMode(config), exec::ProbeMode::kTupleAtATime);
  config.flavor = KernelFlavor::kUnrolledReordered;
  EXPECT_EQ(EffectiveProbeMode(config), exec::ProbeMode::kGroupPrefetch);
}

// --- Join determinism across executors / threads / modes ------------------

struct JoinOutput {
  uint64_t matches = 0;
  uint64_t count = 0;      // materialized tuples
  uint64_t checksum = 0;   // order-independent
};

// Order-independent checksum: sum of a per-tuple mix. Distinguishes
// multisets of output tuples without depending on chunk or thread order.
uint64_t MixTuple(const JoinOutputTuple& t) {
  uint64_t x = (static_cast<uint64_t>(t.key) << 32) ^
               (static_cast<uint64_t>(t.build_payload) << 16) ^
               t.probe_payload;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

using JoinFn = Result<JoinResult> (*)(const Relation&, const Relation&,
                                      const JoinConfig&);

JoinOutput RunMaterialized(JoinFn join, const Relation& build,
                           const Relation& probe, JoinConfig config) {
  Materializer sink(config.num_threads, EffectiveResource(config));
  config.materialize = true;
  config.output = &sink;
  auto result = join(build, probe, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  JoinOutput out;
  if (!result.ok()) return out;
  out.matches = result.value().matches;
  sink.ForEachChunk([&](const JoinOutputTuple* chunk, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      ++out.count;
      out.checksum += MixTuple(chunk[i]);
    }
  });
  return out;
}

struct DistInputs {
  Relation build;
  Relation probe;
};

const DistInputs& InputsFor(bool skewed) {
  static DistInputs* uniform = nullptr;
  static DistInputs* zipf = nullptr;
  DistInputs*& slot = skewed ? zipf : uniform;
  if (slot == nullptr) {
    slot = new DistInputs;
    slot->build =
        GenerateBuildRelation(8192, MemoryRegion::kUntrusted).value();
    slot->probe =
        skewed ? GenerateSkewedProbeRelation(40000, 8192, 0.99,
                                             MemoryRegion::kUntrusted)
                     .value()
               : GenerateProbeRelation(40000, 8192,
                                       MemoryRegion::kUntrusted)
                     .value();
  }
  return *slot;
}

struct NamedJoin {
  const char* name;
  JoinFn fn;
};

class ProbeDeterminismTest : public ::testing::TestWithParam<bool> {};

TEST_P(ProbeDeterminismTest, IdenticalAcrossExecutorsThreadsAndModes) {
  const bool skewed = GetParam();
  const DistInputs& in = InputsFor(skewed);
  const NamedJoin joins[] = {
      {"PHT", &PhtJoin}, {"CHT", &ChtJoin}, {"INL", &InlJoin},
      {"RHO", &RhoJoin},
  };
  const exec::ProbeMode modes[] = {exec::ProbeMode::kTupleAtATime,
                                   exec::ProbeMode::kGroupPrefetch,
                                   exec::ProbeMode::kAmac};

  const exec::DispatchMode saved = exec::dispatch_mode();
  for (const NamedJoin& join : joins) {
    // Reference: tuple-at-a-time, single thread, pool dispatch.
    exec::SetDispatchMode(exec::DispatchMode::kPool);
    JoinConfig base;
    base.num_threads = 1;
    base.radix_bits = 8;
    base.probe_mode = exec::ProbeMode::kTupleAtATime;
    JoinOutput expect =
        RunMaterialized(join.fn, in.build, in.probe, base);
    ASSERT_GT(expect.matches, 0u) << join.name;
    ASSERT_EQ(expect.matches, expect.count) << join.name;

    for (exec::DispatchMode dispatch :
         {exec::DispatchMode::kPool, exec::DispatchMode::kSpawn}) {
      exec::SetDispatchMode(dispatch);
      for (int threads : {1, 2, 4}) {
        for (exec::ProbeMode mode : modes) {
          JoinConfig config = base;
          config.num_threads = threads;
          config.probe_mode = mode;
          // Cover a non-default width too (8 ≠ either calibrated knob).
          config.probe_batch = threads == 2 ? 8 : 0;
          JoinOutput got =
              RunMaterialized(join.fn, in.build, in.probe, config);
          const std::string where =
              std::string(join.name) + " dispatch=" +
              (dispatch == exec::DispatchMode::kPool ? "pool" : "spawn") +
              " threads=" + std::to_string(threads) + " mode=" +
              exec::ProbeModeToString(mode);
          EXPECT_EQ(got.matches, expect.matches) << where;
          EXPECT_EQ(got.count, expect.count) << where;
          EXPECT_EQ(got.checksum, expect.checksum) << where;
        }
      }
    }
  }
  exec::SetDispatchMode(saved);
}

INSTANTIATE_TEST_SUITE_P(Distributions, ProbeDeterminismTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? std::string("Skewed")
                                             : std::string("Uniform");
                         });

// The in-cache partition join must agree across probe modes as well (it
// is reached through RHO above only with the config's mode; this pins the
// primitive directly, including emitter callbacks).
TEST(InCacheBatchedProbeTest, ModesAgreeWithScalarLoop) {
  const DistInputs& in = InputsFor(/*skewed=*/false);
  const Tuple* b = in.build.tuples();
  const Tuple* p = in.probe.tuples();
  const size_t bn = in.build.num_tuples();
  const size_t pn = in.probe.num_tuples();

  InCacheJoinScratch scratch;
  const uint64_t expect = InCachePartitionJoin(
      b, bn, p, pn, KernelFlavor::kReference, &scratch);

  struct EmitSum {
    uint64_t sum = 0;
    static void Emit(void* ctx, const Tuple& bt, const Tuple& pt) {
      static_cast<EmitSum*>(ctx)->sum +=
          MixTuple(JoinOutputTuple{bt.key, bt.payload, pt.payload});
    }
  };
  EmitSum ref_sum;
  InCachePartitionJoin(b, bn, p, pn, KernelFlavor::kReference, &scratch,
                       &EmitSum::Emit, &ref_sum);

  for (exec::ProbeMode mode : {exec::ProbeMode::kGroupPrefetch,
                               exec::ProbeMode::kAmac}) {
    for (int width : {1, 8, 64}) {
      EmitSum sum;
      const uint64_t got = InCachePartitionJoin(
          b, bn, p, pn, KernelFlavor::kUnrolledReordered, &scratch,
          &EmitSum::Emit, &sum, mode, width);
      EXPECT_EQ(got, expect)
          << exec::ProbeModeToString(mode) << " width " << width;
      EXPECT_EQ(sum.sum, ref_sum.sum)
          << exec::ProbeModeToString(mode) << " width " << width;
    }
  }
}

}  // namespace
}  // namespace sgxb::join
