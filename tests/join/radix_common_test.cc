#include "join/radix_common.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "join/join_common.h"

namespace sgxb::join {
namespace {

std::vector<Tuple> MakeTuples(size_t n, uint64_t seed = 1,
                              uint32_t key_domain = 0) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = key_domain == 0
                      ? static_cast<uint32_t>(rng.Next())
                      : static_cast<uint32_t>(rng.NextBounded(key_domain));
    data[i].payload = static_cast<uint32_t>(i);
  }
  return data;
}

// All histogram kernels must agree with a trivially correct count.
class HistogramKernelTest
    : public ::testing::TestWithParam<
          std::tuple<HistogramKernel, size_t, int>> {};

TEST_P(HistogramKernelTest, MatchesOracle) {
  auto [kernel, n, bits] = GetParam();
  const uint32_t fanout = 1u << bits;
  const uint32_t mask = fanout - 1;
  auto data = MakeTuples(n);

  std::vector<uint32_t> hist(fanout, 0);
  kernel(data.data(), n, mask, 0, hist.data());

  std::vector<uint32_t> expected(fanout, 0);
  for (const Tuple& t : data) ++expected[t.key & mask];
  EXPECT_EQ(hist, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, HistogramKernelTest,
    ::testing::Combine(
        ::testing::Values(&HistogramReference, &HistogramUnrolled,
                          &HistogramSimd),
        ::testing::Values<size_t>(0, 1, 7, 8, 15, 16, 1000, 65536),
        ::testing::Values(1, 7, 12)));

TEST(HistogramKernelTest, ShiftedRadixBits) {
  auto data = MakeTuples(10000, 2);
  const uint32_t bits = 6, shift = 7;
  const uint32_t mask = ((1u << bits) - 1) << shift;
  std::vector<uint32_t> ref(1u << bits, 0), unrolled(1u << bits, 0),
      simd(1u << bits, 0);
  HistogramReference(data.data(), data.size(), mask, shift, ref.data());
  HistogramUnrolled(data.data(), data.size(), mask, shift,
                    unrolled.data());
  HistogramSimd(data.data(), data.size(), mask, shift, simd.data());
  EXPECT_EQ(ref, unrolled);
  EXPECT_EQ(ref, simd);
}

class ScatterKernelTest
    : public ::testing::TestWithParam<ScatterKernel> {};

TEST_P(ScatterKernelTest, PartitionsCorrectly) {
  ScatterKernel scatter = GetParam();
  const int bits = 5;
  const uint32_t fanout = 1u << bits;
  const uint32_t mask = fanout - 1;
  auto data = MakeTuples(20000, 3);

  // Offsets from a histogram prefix sum.
  std::vector<uint32_t> hist(fanout, 0);
  HistogramReference(data.data(), data.size(), mask, 0, hist.data());
  std::vector<uint64_t> offsets(fanout);
  std::vector<uint64_t> bounds(fanout + 1);
  uint64_t sum = 0;
  for (uint32_t p = 0; p < fanout; ++p) {
    bounds[p] = sum;
    offsets[p] = sum;
    sum += hist[p];
  }
  bounds[fanout] = sum;

  std::vector<Tuple> out(data.size());
  scatter(data.data(), data.size(), mask, 0, offsets.data(), out.data());

  // Every tuple of partition p must have radix p; stability within a
  // partition preserves input order (payloads increase).
  for (uint32_t p = 0; p < fanout; ++p) {
    uint32_t prev_payload = 0;
    bool first = true;
    for (uint64_t i = bounds[p]; i < bounds[p + 1]; ++i) {
      EXPECT_EQ(out[i].key & mask, p);
      if (!first) EXPECT_GT(out[i].payload, prev_payload);
      prev_payload = out[i].payload;
      first = false;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, ScatterKernelTest,
                         ::testing::Values(&ScatterReference,
                                           &ScatterUnrolled));

TEST(SoftwareBufferedScatterTest, MatchesReferenceScatter) {
  for (int bits : {1, 4, 8}) {
    const uint32_t fanout = 1u << bits;
    const uint32_t mask = fanout - 1;
    auto data = MakeTuples(10000 + bits, 7);

    std::vector<uint32_t> hist(fanout, 0);
    HistogramReference(data.data(), data.size(), mask, 0, hist.data());
    std::vector<uint64_t> off_ref(fanout), off_buf(fanout);
    uint64_t sum = 0;
    for (uint32_t p = 0; p < fanout; ++p) {
      off_ref[p] = sum;
      off_buf[p] = sum;
      sum += hist[p];
    }

    std::vector<Tuple> out_ref(data.size()), out_buf(data.size());
    ScatterReference(data.data(), data.size(), mask, 0, off_ref.data(),
                     out_ref.data());
    ScatterBufferScratch scratch;
    ASSERT_TRUE(scratch.Reserve(bits).ok());
    ScatterSoftwareBuffered(data.data(), data.size(), mask, 0,
                            off_buf.data(), out_buf.data(), &scratch);

    for (size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(out_buf[i].key, out_ref[i].key) << "bits " << bits << " i "
                                                << i;
      ASSERT_EQ(out_buf[i].payload, out_ref[i].payload);
    }
    // Final offsets must agree too.
    EXPECT_EQ(off_ref, off_buf);
  }
}

TEST(SoftwareBufferedScatterTest, ScratchReusableAcrossFanouts) {
  ScatterBufferScratch scratch;
  for (int bits : {6, 3, 8}) {
    ASSERT_TRUE(scratch.Reserve(bits).ok());
    const uint32_t mask = (1u << bits) - 1;
    auto data = MakeTuples(777, bits);
    std::vector<uint32_t> hist(1u << bits, 0);
    HistogramReference(data.data(), data.size(), mask, 0, hist.data());
    std::vector<uint64_t> offsets(1u << bits);
    uint64_t sum = 0;
    for (uint32_t p = 0; p < (1u << bits); ++p) {
      offsets[p] = sum;
      sum += hist[p];
    }
    std::vector<Tuple> out(data.size());
    ScatterSoftwareBuffered(data.data(), data.size(), mask, 0,
                            offsets.data(), out.data(), &scratch);
    // Partition property: radix values are non-decreasing in output.
    for (size_t i = 1; i < out.size(); ++i) {
      ASSERT_LE(out[i - 1].key & mask, out[i].key & mask);
    }
  }
}

TEST(KernelPickerTest, FlavorsMapToKernels) {
  EXPECT_EQ(PickHistogramKernel(KernelFlavor::kReference),
            &HistogramReference);
  EXPECT_EQ(PickHistogramKernel(KernelFlavor::kUnrolledReordered),
            &HistogramUnrolled);
  EXPECT_EQ(PickScatterKernel(KernelFlavor::kReference),
            &ScatterReference);
  EXPECT_EQ(PickScatterKernel(KernelFlavor::kUnrolledReordered),
            &ScatterUnrolled);
}

class InCacheJoinTest : public ::testing::TestWithParam<KernelFlavor> {};

TEST_P(InCacheJoinTest, CountsMatchesLikeAnOracle) {
  auto build = MakeTuples(500, 5, /*key_domain=*/200);
  auto probe = MakeTuples(3000, 6, /*key_domain=*/300);

  uint64_t expected = 0;
  for (const Tuple& p : probe) {
    for (const Tuple& b : build) expected += b.key == p.key;
  }

  InCacheJoinScratch scratch;
  uint64_t matches =
      InCachePartitionJoin(build.data(), build.size(), probe.data(),
                           probe.size(), GetParam(), &scratch);
  EXPECT_EQ(matches, expected);
}

TEST_P(InCacheJoinTest, EmitsEveryMatch) {
  auto build = MakeTuples(100, 8, 50);
  auto probe = MakeTuples(400, 9, 60);
  InCacheJoinScratch scratch;

  struct Ctx {
    uint64_t emitted = 0;
    uint64_t key_mismatches = 0;
  } ctx;
  auto emit = +[](void* vctx, const Tuple& b, const Tuple& p) {
    auto* c = static_cast<Ctx*>(vctx);
    ++c->emitted;
    c->key_mismatches += b.key != p.key;
  };
  uint64_t matches =
      InCachePartitionJoin(build.data(), build.size(), probe.data(),
                           probe.size(), GetParam(), &scratch, emit, &ctx);
  EXPECT_EQ(ctx.emitted, matches);
  EXPECT_EQ(ctx.key_mismatches, 0u);
  EXPECT_GT(matches, 0u);
}

TEST_P(InCacheJoinTest, EmptySidesYieldZero) {
  auto data = MakeTuples(10);
  InCacheJoinScratch scratch;
  EXPECT_EQ(InCachePartitionJoin(nullptr, 0, data.data(), data.size(),
                                 GetParam(), &scratch),
            0u);
  EXPECT_EQ(InCachePartitionJoin(data.data(), data.size(), nullptr, 0,
                                 GetParam(), &scratch),
            0u);
}

TEST_P(InCacheJoinTest, ScratchIsReusableAcrossPartitions) {
  InCacheJoinScratch scratch;
  for (int round = 0; round < 5; ++round) {
    auto build = MakeTuples(50 + round * 100, 10 + round, 64);
    auto probe = MakeTuples(200, 20 + round, 64);
    uint64_t expected = 0;
    for (const Tuple& p : probe) {
      for (const Tuple& b : build) expected += b.key == p.key;
    }
    EXPECT_EQ(InCachePartitionJoin(build.data(), build.size(),
                                   probe.data(), probe.size(), GetParam(),
                                   &scratch),
              expected)
        << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Flavors, InCacheJoinTest,
                         ::testing::Values(
                             KernelFlavor::kReference,
                             KernelFlavor::kUnrolledReordered));

TEST(ProfileTest, HistogramProfileReflectsFlavor) {
  auto ref = HistogramProfile(1000, 7, KernelFlavor::kReference);
  auto opt = HistogramProfile(1000, 7, KernelFlavor::kUnrolledReordered);
  EXPECT_EQ(ref.ilp, perf::IlpClass::kReferenceLoop);
  EXPECT_EQ(opt.ilp, perf::IlpClass::kUnrolledReordered);
  EXPECT_EQ(ref.seq_read_bytes, 8000u);
  EXPECT_EQ(ref.rand_write_working_set, (1u << 7) * sizeof(uint32_t));
}

}  // namespace
}  // namespace sgxb::join
