#include "join/loser_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace sgxb::join {
namespace {

std::vector<Tuple> SortedRun(size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Tuple> run(n);
  for (size_t i = 0; i < n; ++i) {
    run[i] = Tuple{static_cast<uint32_t>(rng.NextBounded(100000)),
                   static_cast<uint32_t>(i)};
  }
  std::sort(run.begin(), run.end(),
            [](const Tuple& a, const Tuple& b) { return a.key < b.key; });
  return run;
}

std::vector<Tuple> MergeWithTree(
    const std::vector<std::vector<Tuple>>& runs) {
  std::vector<LoserTree::Cursor> cursors;
  size_t total = 0;
  for (const auto& run : runs) {
    cursors.push_back(
        LoserTree::Cursor{run.data(), run.data() + run.size()});
    total += run.size();
  }
  LoserTree tree(std::move(cursors));
  EXPECT_EQ(tree.remaining(), total);
  std::vector<Tuple> out;
  out.reserve(total);
  while (!tree.Empty()) out.push_back(tree.Pop());
  return out;
}

bool IsSortedByKey(const std::vector<Tuple>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].key > v[i].key) return false;
  }
  return true;
}

TEST(LoserTreeTest, SingleRun) {
  auto run = SortedRun(100, 1);
  auto out = MergeWithTree({run});
  ASSERT_EQ(out.size(), 100u);
  EXPECT_TRUE(IsSortedByKey(out));
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].key, run[i].key);
  }
}

TEST(LoserTreeTest, MergesArbitraryRunCounts) {
  // Includes non-power-of-two counts (internal padding) and empty runs.
  for (size_t k : {2u, 3u, 5u, 8u, 13u}) {
    std::vector<std::vector<Tuple>> runs;
    size_t total = 0;
    for (size_t i = 0; i < k; ++i) {
      size_t len = i % 3 == 2 ? 0 : 50 + i * 17;  // every third empty
      runs.push_back(SortedRun(len, 100 + i));
      total += len;
    }
    auto out = MergeWithTree(runs);
    ASSERT_EQ(out.size(), total) << "k=" << k;
    EXPECT_TRUE(IsSortedByKey(out)) << "k=" << k;

    // Multiset equality with the concatenated input.
    std::vector<uint32_t> expected, actual;
    for (const auto& run : runs) {
      for (const Tuple& t : run) expected.push_back(t.key);
    }
    for (const Tuple& t : out) actual.push_back(t.key);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "k=" << k;
  }
}

TEST(LoserTreeTest, AllRunsEmpty) {
  std::vector<std::vector<Tuple>> runs(4);
  auto out = MergeWithTree(runs);
  EXPECT_TRUE(out.empty());
}

TEST(LoserTreeTest, HeavyDuplicates) {
  std::vector<std::vector<Tuple>> runs;
  for (int i = 0; i < 6; ++i) {
    std::vector<Tuple> run(200);
    for (size_t j = 0; j < run.size(); ++j) {
      run[j] = Tuple{static_cast<uint32_t>(j / 50), 0};  // long key runs
    }
    runs.push_back(std::move(run));
  }
  auto out = MergeWithTree(runs);
  ASSERT_EQ(out.size(), 1200u);
  EXPECT_TRUE(IsSortedByKey(out));
  uint64_t zeros = 0;
  for (const Tuple& t : out) zeros += t.key == 0;
  EXPECT_EQ(zeros, 6u * 50);
}

TEST(LoserTreeTest, MinKeyTracksWinner) {
  auto a = SortedRun(50, 7);
  auto b = SortedRun(50, 8);
  std::vector<LoserTree::Cursor> cursors = {
      {a.data(), a.data() + a.size()},
      {b.data(), b.data() + b.size()}};
  LoserTree tree(std::move(cursors));
  uint32_t prev = 0;
  while (!tree.Empty()) {
    uint32_t min = tree.MinKey();
    EXPECT_GE(min, prev);
    Tuple t = tree.Pop();
    EXPECT_EQ(t.key, min);
    prev = min;
  }
}

}  // namespace
}  // namespace sgxb::join
