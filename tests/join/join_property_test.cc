// Property-style join tests beyond the fixed-size correctness suite:
// size sweeps (including degenerate shapes), skewed keys with heavy
// duplication, non-matching domains, and cross-algorithm agreement.

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "join/cht_join.h"
#include "join/crk_join.h"
#include "join/data_gen.h"
#include "join/inl_join.h"
#include "join/mway_join.h"
#include "join/pht_join.h"
#include "join/rho_join.h"

namespace sgxb::join {
namespace {

Result<JoinResult> RunAlgo(JoinAlgorithm algo, const Relation& build,
                           const Relation& probe,
                           const JoinConfig& config) {
  switch (algo) {
    case JoinAlgorithm::kPht:
      return PhtJoin(build, probe, config);
    case JoinAlgorithm::kRho:
      return RhoJoin(build, probe, config);
    case JoinAlgorithm::kMway:
      return MwayJoin(build, probe, config);
    case JoinAlgorithm::kInl:
      return InlJoin(build, probe, config);
    case JoinAlgorithm::kCrk:
      return CrkJoin(build, probe, config);
    case JoinAlgorithm::kCht:
      return ChtJoin(build, probe, config);
  }
  return Status::InvalidArgument("unknown");
}

constexpr JoinAlgorithm kAll[] = {JoinAlgorithm::kPht, JoinAlgorithm::kRho,
                                  JoinAlgorithm::kMway,
                                  JoinAlgorithm::kInl, JoinAlgorithm::kCrk,
                                  JoinAlgorithm::kCht};

// --- Size sweep: degenerate and awkward shapes. --------------------------

class JoinSizeSweepTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(JoinSizeSweepTest, AllAlgorithmsMatchOracle) {
  auto [build_n, probe_n] = GetParam();
  auto build =
      GenerateBuildRelation(build_n, MemoryRegion::kUntrusted, build_n)
          .value();
  auto probe = GenerateProbeRelation(probe_n, build_n,
                                     MemoryRegion::kUntrusted, probe_n)
                   .value();
  uint64_t expected = ReferenceMatchCount(build, probe);
  EXPECT_EQ(expected, probe_n);  // FK join property

  for (JoinAlgorithm algo : kAll) {
    JoinConfig cfg;
    cfg.num_threads = 3;
    cfg.radix_bits = 6;
    cfg.crack_bits = 5;
    auto r = RunAlgo(algo, build, probe, cfg);
    ASSERT_TRUE(r.ok()) << JoinAlgorithmToString(algo) << ": "
                        << r.status().ToString();
    EXPECT_EQ(r.value().matches, expected)
        << JoinAlgorithmToString(algo) << " at " << build_n << "x"
        << probe_n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JoinSizeSweepTest,
    ::testing::Values(std::make_pair<size_t, size_t>(1, 1),
                      std::make_pair<size_t, size_t>(1, 1000),
                      std::make_pair<size_t, size_t>(7, 13),
                      std::make_pair<size_t, size_t>(100, 10),
                      std::make_pair<size_t, size_t>(1000, 1),
                      std::make_pair<size_t, size_t>(4096, 4096),
                      std::make_pair<size_t, size_t>(10000, 50001)));

// --- Skewed (duplicate-heavy) probes. -------------------------------------

class JoinSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(JoinSkewTest, AllAlgorithmsAgreeUnderSkew) {
  const double theta = GetParam();
  auto build =
      GenerateBuildRelation(5000, MemoryRegion::kUntrusted).value();
  auto probe = GenerateSkewedProbeRelation(30000, 5000, theta,
                                           MemoryRegion::kUntrusted)
                   .value();
  uint64_t expected = ReferenceMatchCount(build, probe);
  EXPECT_EQ(expected, 30000u);  // still a FK join: one match per probe

  for (JoinAlgorithm algo : kAll) {
    JoinConfig cfg;
    cfg.num_threads = 2;
    cfg.radix_bits = 6;
    cfg.crack_bits = 5;
    auto r = RunAlgo(algo, build, probe, cfg);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().matches, expected)
        << JoinAlgorithmToString(algo) << " theta " << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, JoinSkewTest,
                         ::testing::Values(0.25, 0.75, 0.95));

// --- Many-to-many joins (duplicate build keys). ----------------------------

TEST(JoinDuplicateBuildTest, ManyToManyCountsAreCorrect) {
  // Build side with duplicated keys: each key 0..99 appears 5 times.
  auto build = Relation::Allocate(500, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < 500; ++i) {
    build[i] = Tuple{static_cast<uint32_t>(i % 100),
                     static_cast<uint32_t>(i)};
  }
  auto probe = GenerateProbeRelation(2000, 100, MemoryRegion::kUntrusted)
                   .value();
  uint64_t expected = ReferenceMatchCount(build, probe);
  EXPECT_EQ(expected, 2000u * 5);

  for (JoinAlgorithm algo : kAll) {
    JoinConfig cfg;
    cfg.radix_bits = 4;
    cfg.crack_bits = 4;
    auto r = RunAlgo(algo, build, probe, cfg);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().matches, expected)
        << JoinAlgorithmToString(algo);
  }
}

// --- Disjoint domains: zero matches. ----------------------------------------

TEST(JoinDisjointDomainsTest, ZeroMatches) {
  auto build = Relation::Allocate(1000, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < 1000; ++i) {
    build[i] = Tuple{static_cast<uint32_t>(i), 0};
  }
  auto probe = Relation::Allocate(4000, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < 4000; ++i) {
    probe[i] = Tuple{static_cast<uint32_t>(100000 + i), 0};
  }
  for (JoinAlgorithm algo : kAll) {
    JoinConfig cfg;
    cfg.radix_bits = 5;
    cfg.crack_bits = 4;
    auto r = RunAlgo(algo, build, probe, cfg);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().matches, 0u) << JoinAlgorithmToString(algo);
  }
}

// --- Keys spanning the full 32-bit range. ------------------------------------

TEST(JoinKeyRangeTest, HighBitKeysHandled) {
  Xoshiro256 rng(8);
  auto build = Relation::Allocate(2000, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < 2000; ++i) {
    // Spread keys across the whole uint32 range, including > 2^31.
    build[i] = Tuple{static_cast<uint32_t>(rng.Next()),
                     static_cast<uint32_t>(i)};
  }
  auto probe = Relation::Allocate(8000, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < 8000; ++i) {
    probe[i] = Tuple{build[rng.NextBounded(2000)].key,
                     static_cast<uint32_t>(i)};
  }
  uint64_t expected = ReferenceMatchCount(build, probe);
  EXPECT_GE(expected, 8000u);  // at least one match per probe

  for (JoinAlgorithm algo : kAll) {
    JoinConfig cfg;
    cfg.radix_bits = 8;
    cfg.crack_bits = 6;
    cfg.num_threads = 2;
    auto r = RunAlgo(algo, build, probe, cfg);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().matches, expected)
        << JoinAlgorithmToString(algo);
  }
}

// --- Phase accounting sanity across algorithms. ------------------------------

TEST(JoinPhaseAccountingTest, PhasesArePositiveAndNamed) {
  auto build =
      GenerateBuildRelation(20000, MemoryRegion::kUntrusted).value();
  auto probe = GenerateProbeRelation(80000, 20000,
                                     MemoryRegion::kUntrusted)
                   .value();
  for (JoinAlgorithm algo : kAll) {
    JoinConfig cfg;
    cfg.radix_bits = 8;
    auto r = RunAlgo(algo, build, probe, cfg).value();
    ASSERT_FALSE(r.phases.phases.empty())
        << JoinAlgorithmToString(algo);
    for (const auto& phase : r.phases.phases) {
      EXPECT_FALSE(phase.name.empty());
      EXPECT_GE(phase.host_ns, 0.0);
      EXPECT_GE(phase.threads, 1);
    }
    EXPECT_NEAR(r.host_ns, r.phases.TotalHostNs(), 1.0);
  }
}

}  // namespace
}  // namespace sgxb::join
