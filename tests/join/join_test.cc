// Cross-algorithm join correctness: every join algorithm, in every kernel
// flavour, execution setting, and thread count, must produce exactly the
// match count of the reference oracle, with and without materialization.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/random.h"
#include "join/cht_join.h"
#include "join/crk_join.h"
#include "join/data_gen.h"
#include "join/inl_join.h"
#include "join/join_common.h"
#include "join/materializer.h"
#include "join/mway_join.h"
#include "join/pht_join.h"
#include "join/rho_join.h"
#include "sgx/enclave.h"

namespace sgxb::join {
namespace {

Result<JoinResult> RunJoin(JoinAlgorithm algo, const Relation& build,
                           const Relation& probe,
                           const JoinConfig& config) {
  switch (algo) {
    case JoinAlgorithm::kPht:
      return PhtJoin(build, probe, config);
    case JoinAlgorithm::kRho:
      return RhoJoin(build, probe, config);
    case JoinAlgorithm::kMway:
      return MwayJoin(build, probe, config);
    case JoinAlgorithm::kInl:
      return InlJoin(build, probe, config);
    case JoinAlgorithm::kCrk:
      return CrkJoin(build, probe, config);
    case JoinAlgorithm::kCht:
      return ChtJoin(build, probe, config);
  }
  return Status::InvalidArgument("unknown algorithm");
}

constexpr size_t kBuildN = 20000;
constexpr size_t kProbeN = 80000;

struct Inputs {
  Relation build;
  Relation probe;
  uint64_t expected;
};

const Inputs& SharedInputs() {
  static Inputs* inputs = [] {
    auto* in = new Inputs;
    in->build = GenerateBuildRelation(kBuildN, MemoryRegion::kUntrusted)
                    .value();
    in->probe = GenerateProbeRelation(kProbeN, kBuildN,
                                      MemoryRegion::kUntrusted)
                    .value();
    in->expected = ReferenceMatchCount(in->build, in->probe);
    return in;
  }();
  return *inputs;
}

using JoinParam = std::tuple<JoinAlgorithm, KernelFlavor, int>;

class JoinCorrectnessTest : public ::testing::TestWithParam<JoinParam> {};

TEST_P(JoinCorrectnessTest, MatchesReferenceCount) {
  auto [algo, flavor, threads] = GetParam();
  const Inputs& in = SharedInputs();

  JoinConfig config;
  config.num_threads = threads;
  config.flavor = flavor;
  config.radix_bits = 8;
  config.crack_bits = 6;

  auto result = RunJoin(algo, in.build, in.probe, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().matches, in.expected);
  EXPECT_GT(result.value().host_ns, 0.0);
  EXPECT_FALSE(result.value().phases.phases.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllJoins, JoinCorrectnessTest,
    ::testing::Combine(
        ::testing::Values(JoinAlgorithm::kPht, JoinAlgorithm::kRho,
                          JoinAlgorithm::kMway, JoinAlgorithm::kInl,
                          JoinAlgorithm::kCrk, JoinAlgorithm::kCht),
        ::testing::Values(KernelFlavor::kReference,
                          KernelFlavor::kUnrolledReordered),
        ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<JoinParam>& info) {
      std::string name = JoinAlgorithmToString(std::get<0>(info.param));
      name += std::get<1>(info.param) == KernelFlavor::kReference
                  ? "_Ref"
                  : "_Opt";
      name += "_T" + std::to_string(std::get<2>(info.param));
      return name;
    });

class JoinSettingTest
    : public ::testing::TestWithParam<
          std::tuple<JoinAlgorithm, ExecutionSetting>> {};

TEST_P(JoinSettingTest, CorrectUnderAllExecutionSettings) {
  auto [algo, setting] = GetParam();
  const Inputs& in = SharedInputs();

  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 64_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

  JoinConfig config;
  config.num_threads = 2;
  config.setting = setting;
  config.enclave = enclave;
  config.radix_bits = 8;
  config.crack_bits = 6;

  auto result = RunJoin(algo, in.build, in.probe, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().matches, in.expected);
  sgx::DestroyEnclave(enclave);
}

INSTANTIATE_TEST_SUITE_P(
    Settings, JoinSettingTest,
    ::testing::Combine(
        ::testing::Values(JoinAlgorithm::kPht, JoinAlgorithm::kRho,
                          JoinAlgorithm::kMway, JoinAlgorithm::kInl,
                          JoinAlgorithm::kCrk, JoinAlgorithm::kCht),
        ::testing::Values(ExecutionSetting::kPlainCpu,
                          ExecutionSetting::kSgxDataInEnclave,
                          ExecutionSetting::kSgxDataOutsideEnclave)),
    [](const ::testing::TestParamInfo<
        std::tuple<JoinAlgorithm, ExecutionSetting>>& info) {
      JoinAlgorithm algo = std::get<0>(info.param);
      ExecutionSetting setting = std::get<1>(info.param);
      std::string name = JoinAlgorithmToString(algo);
      switch (setting) {
        case ExecutionSetting::kPlainCpu:
          name += "_Plain";
          break;
        case ExecutionSetting::kSgxDataInEnclave:
          name += "_SgxIn";
          break;
        case ExecutionSetting::kSgxDataOutsideEnclave:
          name += "_SgxOut";
          break;
      }
      return name;
    });

class JoinMaterializationTest
    : public ::testing::TestWithParam<JoinAlgorithm> {};

TEST_P(JoinMaterializationTest, MaterializesExactlyTheMatches) {
  const Inputs& in = SharedInputs();
  Materializer sink(/*num_threads=*/2);
  JoinConfig config;
  config.num_threads = 2;
  config.materialize = true;
  config.output = &sink;
  config.radix_bits = 8;
  config.crack_bits = 6;

  auto result = RunJoin(GetParam(), in.build, in.probe, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().matches, in.expected);
  EXPECT_EQ(sink.TotalTuples(), in.expected);

  // Every materialized tuple must be a genuine join result: payloads
  // recover the original rows and keys must agree.
  uint64_t bad = 0;
  sink.ForEachChunk([&](const JoinOutputTuple* chunk, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const JoinOutputTuple& t = chunk[i];
      // The build relation's payload is the original slot index before
      // shuffling; its key is recoverable through the probe relation.
      if (t.probe_payload >= in.probe.num_tuples() ||
          in.probe[t.probe_payload].key != t.key) {
        ++bad;
      }
    }
  });
  EXPECT_EQ(bad, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllJoins, JoinMaterializationTest,
    ::testing::Values(JoinAlgorithm::kPht, JoinAlgorithm::kRho,
                      JoinAlgorithm::kMway, JoinAlgorithm::kInl,
                      JoinAlgorithm::kCrk, JoinAlgorithm::kCht),
    [](const auto& info) {
      return std::string(JoinAlgorithmToString(info.param));
    });

TEST(JoinValidationTest, RejectsBadConfigs) {
  const Inputs& in = SharedInputs();
  JoinConfig config;
  config.num_threads = 0;
  EXPECT_FALSE(RhoJoin(in.build, in.probe, config).ok());
  config.num_threads = 1;
  config.radix_bits = 30;
  EXPECT_FALSE(RhoJoin(in.build, in.probe, config).ok());
  config.radix_bits = 8;
  config.radix_passes = 3;
  EXPECT_FALSE(RhoJoin(in.build, in.probe, config).ok());
  config.radix_passes = 1;
  EXPECT_TRUE(RhoJoin(in.build, in.probe, config).ok());
}

TEST(JoinValidationTest, RejectsEmptyInputs) {
  const Inputs& in = SharedInputs();
  Relation empty;
  JoinConfig config;
  EXPECT_FALSE(RhoJoin(empty, in.probe, config).ok());
  EXPECT_FALSE(PhtJoin(in.build, empty, config).ok());
}

TEST(RhoJoinTest, SinglePassMatchesTwoPass) {
  const Inputs& in = SharedInputs();
  JoinConfig one;
  one.radix_bits = 8;
  one.radix_passes = 1;
  JoinConfig two;
  two.radix_bits = 8;
  two.radix_passes = 2;
  EXPECT_EQ(RhoJoin(in.build, in.probe, one).value().matches,
            RhoJoin(in.build, in.probe, two).value().matches);
}

TEST(RhoJoinTest, QueueKindsAllCorrect) {
  const Inputs& in = SharedInputs();
  for (TaskQueueKind kind :
       {TaskQueueKind::kLockFree, TaskQueueKind::kMutex,
        TaskQueueKind::kSpinLock}) {
    JoinConfig config;
    config.num_threads = 4;
    config.queue = kind;
    config.radix_bits = 8;
    auto result = RhoJoin(in.build, in.probe, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().matches, in.expected)
        << TaskQueueKindToString(kind);
  }
}

TEST(RhoJoinTest, PhaseBreakdownCoversPipeline) {
  const Inputs& in = SharedInputs();
  JoinConfig config;
  config.radix_bits = 8;
  auto result = RhoJoin(in.build, in.probe, config).value();
  EXPECT_NE(result.phases.Find("hist1"), nullptr);
  EXPECT_NE(result.phases.Find("copy1"), nullptr);
  EXPECT_NE(result.phases.Find("hist2+copy2"), nullptr);
  EXPECT_NE(result.phases.Find("build"), nullptr);
  EXPECT_NE(result.phases.Find("probe"), nullptr);
}

TEST(CrkJoinTest, CrackPartitionStepSplitsByBit) {
  std::vector<Tuple> data(1000);
  Xoshiro256 rng(31);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = Tuple{static_cast<uint32_t>(rng.Next()),
                    static_cast<uint32_t>(i)};
  }
  size_t mid = CrackPartitionStep(data.data(), 0, data.size(), 3);
  for (size_t i = 0; i < mid; ++i) {
    EXPECT_EQ(data[i].key & 8u, 0u) << i;
  }
  for (size_t i = mid; i < data.size(); ++i) {
    EXPECT_NE(data[i].key & 8u, 0u) << i;
  }
}

TEST(CrkJoinTest, CrackStepHandlesUniformBit) {
  std::vector<Tuple> zeros(100, Tuple{0, 0});
  EXPECT_EQ(CrackPartitionStep(zeros.data(), 0, zeros.size(), 0),
            zeros.size());
  std::vector<Tuple> ones(100, Tuple{1, 0});
  EXPECT_EQ(CrackPartitionStep(ones.data(), 0, ones.size(), 0), 0u);
}

TEST(DataGenTest, BuildRelationIsAPermutation) {
  auto rel =
      GenerateBuildRelation(10000, MemoryRegion::kUntrusted).value();
  std::vector<bool> seen(10000, false);
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    ASSERT_LT(rel[i].key, 10000u);
    ASSERT_FALSE(seen[rel[i].key]);
    seen[rel[i].key] = true;
  }
}

TEST(DataGenTest, ProbeKeysInDomain) {
  auto rel = GenerateProbeRelation(5000, 1000, MemoryRegion::kUntrusted)
                 .value();
  for (size_t i = 0; i < rel.num_tuples(); ++i) {
    EXPECT_LT(rel[i].key, 1000u);
  }
}

TEST(DataGenTest, ForeignKeyJoinMatchesProbeCount) {
  // FK semantics: every probe tuple matches exactly one build tuple.
  auto build =
      GenerateBuildRelation(2000, MemoryRegion::kUntrusted).value();
  auto probe = GenerateProbeRelation(9000, 2000, MemoryRegion::kUntrusted)
                   .value();
  EXPECT_EQ(ReferenceMatchCount(build, probe), 9000u);
}

TEST(DataGenTest, Deterministic) {
  auto a = GenerateBuildRelation(100, MemoryRegion::kUntrusted, 7).value();
  auto b = GenerateBuildRelation(100, MemoryRegion::kUntrusted, 7).value();
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i].key, b[i].key);
}

}  // namespace
}  // namespace sgxb::join
