// Concurrent-serving suite: meant to run under TSan (see CI's tsan job).
// Overlapping RunQuery calls exercise every shared-state fix in this
// layer at once — executor gang leasing, per-domain report attribution,
// shared arena pools, and the admission path.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "exec/executor.h"
#include "mem/arena_pool.h"
#include "mem/memory_resource.h"
#include "obs/metrics.h"
#include "serve/serve.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace sgxb::serve {
namespace {

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

uint64_t Reference(int query) {
  switch (query) {
    case 3:
      return tpch::ReferenceQ3(Db());
    case 6:
      return tpch::ReferenceQ6(Db());
    case 10:
      return tpch::ReferenceQ10(Db());
    case 12:
      return tpch::ReferenceQ12(Db());
    case 19:
      return tpch::ReferenceQ19(Db());
  }
  return 0;
}

// Q6 reports its revenue aggregate in group_counts[0] (count is the
// number of qualifying rows); every other query is checked via count.
uint64_t Observed(const tpch::QueryResult& r, int query) {
  return query == 6 ? r.group_counts.at(0) : r.count;
}

// Runs one query through tpch::RunQuery with its own attribution domain,
// the way the server does, returning the domain-scoped report.
tpch::QueryResult RunAttributed(int query, int threads) {
  tpch::QueryConfig cfg;
  cfg.num_threads = threads;
  cfg.obs_domain = obs::Registry::Global().AcquireDomain();
  auto result = tpch::RunQuery(query, Db(), cfg);
  obs::Registry::Global().ReleaseDomain(cfg.obs_domain);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(ServeConcurrencyTest, MixedQueriesUnderLoadMatchSequential) {
  ServerOptions opts;
  opts.max_inflight = 8;
  QueryServer server(Db(), opts);
  const int kQueries[] = {3, 6, 10, 12, 19};
  constexpr int kClients = 8;
  constexpr int kPerClient = 5;

  std::vector<std::thread> clients;
  std::atomic<int> wrong{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int query = kQueries[(c + i) % 5];
        QueryRequest req;
        req.query_number = query;
        req.config.num_threads = 2;
        req.priority = c % 3;
        QueryResponse r = server.Submit(req).get();
        if (!r.status.ok() || Observed(r.result, query) != Reference(query)) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  ServerStats s = server.stats();
  EXPECT_EQ(s.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.failed, 0u);
}

// The regression this PR exists for: two queries running concurrently
// used to diff the same process-global registry, so each report absorbed
// the other query's counters. With per-query domains the deterministic
// fields of each report must match the query's isolated run exactly.
TEST(ServeConcurrencyTest, ConcurrentReportsDoNotCrossAttribute) {
  exec::Executor::Default().EnsurePoolSize(4);
  // Isolated baselines (domain-scoped, nothing else running).
  const tpch::QueryResult base_q6 = RunAttributed(6, /*threads=*/2);
  const tpch::QueryResult base_q3 = RunAttributed(3, /*threads=*/2);
  ASSERT_GT(base_q3.report.bytes_materialized, 0u);

  for (int round = 0; round < 3; ++round) {
    std::atomic<int> ready{0};
    tpch::QueryResult got_q6, got_q3;
    auto run = [&](int query, tpch::QueryResult* out) {
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }  // start together so the executions overlap
      *out = RunAttributed(query, /*threads=*/2);
    };
    std::thread t6(run, 6, &got_q6);
    std::thread t3(run, 3, &got_q3);
    t6.join();
    t3.join();

    EXPECT_EQ(Observed(got_q6, 6), Reference(6));
    EXPECT_EQ(Observed(got_q3, 3), Reference(3));
    // A cross-attributed Q6 report would absorb Q3's (much larger) join
    // materialization traffic and its gangs.
    EXPECT_EQ(got_q6.report.bytes_materialized,
              base_q6.report.bytes_materialized);
    EXPECT_EQ(got_q3.report.bytes_materialized,
              base_q3.report.bytes_materialized);
    EXPECT_EQ(got_q6.report.gangs, base_q6.report.gangs);
    EXPECT_EQ(got_q3.report.gangs, base_q3.report.gangs);
  }
}

// Two live domains never see each other's counter traffic, even from
// inside executor gangs dispatched concurrently.
TEST(ServeConcurrencyTest, DomainCountersAreDisjoint) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* ctr = reg.GetCounter("test.serve_domain_disjoint");
  const int da = reg.AcquireDomain();
  const int db = reg.AcquireDomain();
  ASSERT_GE(da, 0);
  ASSERT_GE(db, 0);

  auto bump = [&](int domain, uint64_t times) {
    obs::ScopedMetricDomain scope(domain);
    Status st = ParallelRun(2, [&](int tid) {
      for (uint64_t i = 0; i < times; ++i) ctr->Increment();
      (void)tid;
    });
    EXPECT_TRUE(st.ok());
  };
  std::thread ta(bump, da, 1000);
  std::thread tb(bump, db, 3000);
  ta.join();
  tb.join();

  EXPECT_EQ(ctr->DomainValue(da), 2000u);  // 2 gang tasks x 1000
  EXPECT_EQ(ctr->DomainValue(db), 6000u);
  reg.ReleaseDomain(da);
  reg.ReleaseDomain(db);
}

// A pool shared by overlapping queries (the pre-serving sharing model)
// must balance: every chunk acquired during the storm is released once
// the queries drain.
TEST(ServeConcurrencyTest, SharedArenaPoolBalancesToZero) {
  mem::ArenaPool pool(mem::Untrusted());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3; ++i) {
        tpch::QueryConfig cfg;
        cfg.num_threads = 2;
        cfg.arena_pool = &pool;
        const int query = (t + i) % 2 == 0 ? 3 : 12;
        auto result = tpch::RunQuery(query, Db(), cfg);
        if (!result.ok() || result.value().count != Reference(query)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  mem::ArenaPool::Stats s = pool.stats();
  EXPECT_EQ(s.outstanding_chunks, 0);
  EXPECT_EQ(s.released, s.reuse_hits + s.fresh_allocs);
  pool.Trim();
  EXPECT_EQ(pool.stats().cached_chunks, 0u);
}

// Per-query pools inside the server: after a drained burst the server's
// queries must have trimmed everything back (observable as zero enclave /
// host bytes still charged per query via each response's report).
TEST(ServeConcurrencyTest, ServerDrainLeavesNoOutstandingState) {
  ServerOptions opts;
  opts.max_inflight = 4;
  QueryServer server(Db(), opts);
  std::vector<std::future<QueryResponse>> pending;
  for (int i = 0; i < 16; ++i) {
    QueryRequest req;
    req.query_number = (i % 2 == 0) ? 3 : 6;
    req.config.num_threads = 2;
    pending.push_back(server.Submit(req));
  }
  for (auto& f : pending) {
    QueryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  server.Shutdown();
  ServerStats s = server.stats();
  EXPECT_EQ(s.inflight, 0);
  EXPECT_EQ(s.queued, 0);
  EXPECT_EQ(s.completed, 16u);
  // All metric domains must be free again: acquiring the full set
  // succeeds only if every query released its domain.
  obs::Registry& reg = obs::Registry::Global();
  std::vector<int> domains;
  for (int i = 0; i < obs::kMaxMetricDomains; ++i) {
    domains.push_back(reg.AcquireDomain());
  }
  for (int d : domains) {
    EXPECT_GE(d, 0);
    reg.ReleaseDomain(d);
  }
}

}  // namespace
}  // namespace sgxb::serve
