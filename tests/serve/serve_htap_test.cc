// HTAP serving mode (docs/htap.md): update batches admitted through the
// same queue as queries, queries pinned to epoch snapshots, per-request
// txn attribution in QueryReport, and read-only servers rejecting writes.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "serve/serve.h"
#include "storage/column_view.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "txn/versioned_db.h"

namespace sgxb::serve {
namespace {

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

ServerOptions SmallServer() {
  ServerOptions o;
  o.max_inflight = 4;
  return o;
}

TEST(ServeHtapTest, UpdateBatchCommitsAndIsAttributed) {
  txn::VersionedTpchDb vdb(Db());
  QueryServer server(vdb, SmallServer());

  QueryRequest req;
  for (uint64_t row = 0; row < 8; ++row) {
    req.updates.push_back({txn::UpdateColumn::kLQuantity, row, 42});
  }
  QueryResponse resp = server.Submit(std::move(req)).get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.message();
  EXPECT_EQ(resp.result.count, 8u);
  // The batch's commits are attributed to the request's own report.
  EXPECT_EQ(resp.result.report.txn_commits, 8u);
  EXPECT_GT(resp.result.report.txn_cow_bytes, 0u);
  EXPECT_EQ(vdb.stats().commits, 8u);

  auto snap = vdb.OpenSnapshot().value();
  storage::ColumnReader<uint32_t> reader(snap.view().lineitem.l_quantity);
  for (size_t row = 0; row < 8; ++row) {
    EXPECT_EQ(reader[row], 42u) << "row " << row;
  }
}

TEST(ServeHtapTest, ReadOnlyServerRejectsUpdateBatches) {
  QueryServer server(Db(), SmallServer());
  QueryRequest req;
  req.updates.push_back({txn::UpdateColumn::kLQuantity, 0, 1});
  QueryResponse resp = server.Submit(std::move(req)).get();
  EXPECT_FALSE(resp.status.ok());
}

TEST(ServeHtapTest, QueriesServeFromSnapshots) {
  txn::VersionedTpchDb vdb(Db());
  QueryServer server(vdb, SmallServer());

  QueryRequest req;
  req.query_number = 6;
  QueryResponse resp = server.Submit(std::move(req)).get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.message();
  // The server's snapshot was released at query completion: nothing pins
  // the epoch besides what this test opens below.
  EXPECT_EQ(vdb.stats().active_snapshots, 0);

  auto snap = vdb.OpenSnapshot().value();
  tpch::QueryConfig config;
  config.num_threads = 1;
  auto direct = tpch::RunQuery(6, snap.view(), config);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(resp.result.count, direct.value().count);
  EXPECT_EQ(resp.result.group_counts, direct.value().group_counts);
}

TEST(ServeHtapTest, MixedReadWriteLoadCompletesAndDrains) {
  txn::VersionedTpchDb vdb(Db());
  std::vector<std::future<QueryResponse>> futures;
  {
    QueryServer server(vdb, SmallServer());
    for (int i = 0; i < 24; ++i) {
      QueryRequest req;
      if (i % 3 == 2) {
        for (uint64_t k = 0; k < 16; ++k) {
          req.updates.push_back({txn::UpdateColumn::kLExtendedPrice,
                                 (static_cast<uint64_t>(i) * 131 + k) %
                                     vdb.lineitem_rows(),
                                 1000 + static_cast<uint32_t>(k)});
        }
      } else {
        req.query_number = (i % 3 == 0) ? 6 : 1;
      }
      futures.push_back(server.Submit(std::move(req)));
    }
    for (auto& f : futures) {
      QueryResponse resp = f.get();
      EXPECT_TRUE(resp.status.ok()) << resp.status.message();
    }
  }  // server drains + joins
  EXPECT_EQ(vdb.stats().commits, 8u * 16u);
  ASSERT_TRUE(vdb.Drain().ok());
  EXPECT_EQ(vdb.stats().retired_pending, 0u);
}

}  // namespace
}  // namespace sgxb::serve
