#include "serve/serve.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "plan/catalog.h"
#include "tpch/tpch_gen.h"

namespace sgxb::serve {
namespace {

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

uint64_t Reference(int query) {
  switch (query) {
    case 1: {
      // Q1's result.count is the total of the per-group counts.
      uint64_t total = 0;
      for (uint64_t c : tpch::ReferenceQ1Counts(Db())) total += c;
      return total;
    }
    case 3:
      return tpch::ReferenceQ3(Db());
    case 6:
      return tpch::ReferenceQ6(Db());
    case 10:
      return tpch::ReferenceQ10(Db());
    case 12:
      return tpch::ReferenceQ12(Db());
    case 19:
      return tpch::ReferenceQ19(Db());
  }
  return 0;
}

// Q6 reports its revenue aggregate in group_counts[0] (count is the
// number of qualifying rows); every other query is checked via count.
uint64_t Observed(const tpch::QueryResult& r, int query) {
  return query == 6 ? r.group_counts.at(0) : r.count;
}

AdmissionQueue::Ticket MakeTicket(int priority, int query = 6) {
  AdmissionQueue::Ticket t;
  t.request.query_number = query;
  t.request.priority = priority;
  return t;
}

TEST(AdmissionQueueTest, PopsHighestPriorityFirst) {
  AdmissionQueue q(/*max_queue=*/16);
  ASSERT_TRUE(q.Push(MakeTicket(0, 3)));
  ASSERT_TRUE(q.Push(MakeTicket(5, 6)));
  ASSERT_TRUE(q.Push(MakeTicket(1, 12)));

  AdmissionQueue::Ticket t;
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.request.priority, 5);
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.request.priority, 1);
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_EQ(t.request.priority, 0);
}

TEST(AdmissionQueueTest, FifoWithinOnePriority) {
  AdmissionQueue q(/*max_queue=*/16);
  for (int query : {3, 6, 10, 12}) {
    ASSERT_TRUE(q.Push(MakeTicket(/*priority=*/2, query)));
  }
  for (int expected : {3, 6, 10, 12}) {
    AdmissionQueue::Ticket t;
    ASSERT_TRUE(q.Pop(&t));
    EXPECT_EQ(t.request.query_number, expected);
  }
}

TEST(AdmissionQueueTest, RejectsWhenFull) {
  AdmissionQueue q(/*max_queue=*/2);
  EXPECT_TRUE(q.Push(MakeTicket(0)));
  EXPECT_TRUE(q.Push(MakeTicket(0)));
  EXPECT_FALSE(q.Push(MakeTicket(0)));
  EXPECT_EQ(q.size(), 2);
  AdmissionQueue::Ticket t;
  ASSERT_TRUE(q.Pop(&t));
  EXPECT_TRUE(q.Push(MakeTicket(0)));  // a slot freed up
}

TEST(AdmissionQueueTest, CloseDrainsThenFails) {
  AdmissionQueue q(/*max_queue=*/4);
  ASSERT_TRUE(q.Push(MakeTicket(0, 3)));
  q.Close();
  EXPECT_FALSE(q.Push(MakeTicket(0)));  // no admission after close
  AdmissionQueue::Ticket t;
  EXPECT_TRUE(q.Pop(&t));  // queued work still drains
  EXPECT_EQ(t.request.query_number, 3);
  EXPECT_FALSE(q.Pop(&t));  // then poppers are released
}

TEST(QueryServerTest, AnswersMatchReferences) {
  QueryServer server(Db(), ServerOptions{});
  std::vector<std::pair<int, std::future<QueryResponse>>> pending;
  for (int query : {1, 3, 6, 10, 12, 19}) {
    QueryRequest req;
    req.query_number = query;
    req.config.num_threads = 2;
    pending.emplace_back(query, server.Submit(req));
  }
  for (auto& [query, future] : pending) {
    QueryResponse r = future.get();
    ASSERT_TRUE(r.status.ok()) << "Q" << query << ": "
                               << r.status.ToString();
    EXPECT_EQ(Observed(r.result, query), Reference(query)) << "Q" << query;
    EXPECT_GE(r.granted_threads, 1);
    EXPECT_GT(r.exec_ns, 0.0);
    EXPECT_EQ(r.result.report.query, "Q" + std::to_string(query));
  }
  ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 6u);
  EXPECT_EQ(s.completed, 6u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.inflight, 0);
}

TEST(QueryServerTest, BadQueryNumberFailsThatQueryOnly) {
  QueryServer server(Db(), ServerOptions{});
  QueryRequest bad;
  bad.query_number = 42;
  QueryRequest good;
  good.query_number = 6;
  auto f_bad = server.Submit(bad);
  auto f_good = server.Submit(good);
  EXPECT_FALSE(f_bad.get().status.ok());
  EXPECT_TRUE(f_good.get().status.ok());
  ServerStats s = server.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(QueryServerTest, ExpiredDeadlineIsRejectedNotRun) {
  QueryServer server(Db(), ServerOptions{});
  QueryRequest req;
  req.query_number = 6;
  // Already expired by the time any runner can possibly pop it.
  req.deadline_ms = 1e-7;
  QueryResponse r = server.Submit(req).get();
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(server.stats().rejected_deadline, 1u);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST(QueryServerTest, SubmitAfterShutdownIsRejected) {
  QueryServer server(Db(), ServerOptions{});
  server.Shutdown();
  QueryRequest req;
  req.query_number = 6;
  QueryResponse r = server.Submit(req).get();
  EXPECT_FALSE(r.status.ok());
}

TEST(QueryServerTest, ShutdownDrainsQueuedWork) {
  ServerOptions opts;
  opts.max_inflight = 1;  // one runner: work queues behind it
  QueryServer server(Db(), opts);
  std::vector<std::future<QueryResponse>> pending;
  for (int i = 0; i < 8; ++i) {
    QueryRequest req;
    req.query_number = 6;
    pending.push_back(server.Submit(req));
  }
  server.Shutdown();  // must not abandon queued tickets
  for (auto& f : pending) {
    QueryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(Observed(r.result, 6), Reference(6));
  }
}

TEST(QueryServerTest, OptionsClampInflightToDomainCount) {
  ServerOptions opts;
  opts.max_inflight = 100000;
  QueryServer server(Db(), opts);
  EXPECT_LE(server.options().max_inflight, obs::kMaxMetricDomains);
  EXPECT_GE(server.options().max_inflight, 1);
}

TEST(QueryServerTest, AdHocPlanRequestsRunThroughThePlanner) {
  // A request can carry a plan instead of a catalog number; the server
  // routes it through tpch::RunPlan with the same per-query isolation.
  plan::PlanBuilder b;
  const int li = b.Scan(plan::TableId::kLineitem,
                        {plan::Predicate::U32Range(
                            plan::ColId::kLShipdate, 0, tpch::kQ1Cutoff)});
  const plan::Plan adhoc =
      b.Build(b.Aggregate(li, plan::AggSpec::CountStar()), "served_adhoc")
          .value();
  uint64_t expected = 0;
  for (uint64_t c : tpch::ReferenceQ1Counts(Db())) expected += c;

  QueryServer server(Db(), ServerOptions{});
  // One plan backing several concurrent requests (plans are immutable).
  std::vector<std::future<QueryResponse>> pending;
  for (int i = 0; i < 4; ++i) {
    QueryRequest req;
    req.plan = &adhoc;
    req.query_number = 3;  // must be ignored when a plan is set
    req.config.num_threads = 1;
    pending.push_back(server.Submit(req));
  }
  for (auto& f : pending) {
    QueryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.result.count, expected);
    EXPECT_EQ(r.result.report.query, "served_adhoc");
  }
}

TEST(QueryServerTest, QueueFullRejectsFast) {
  ServerOptions opts;
  opts.max_inflight = 1;
  opts.max_queue = 1;
  QueryServer server(Db(), opts);
  // Burst far past inflight + queue capacity: every request resolves
  // (served or rejected), nothing hangs, and the books balance.
  std::vector<std::future<QueryResponse>> pending;
  for (int i = 0; i < 32; ++i) {
    QueryRequest req;
    req.query_number = 6;
    req.config.num_threads = 1;
    pending.push_back(server.Submit(req));
  }
  uint64_t ok = 0;
  uint64_t rejected = 0;
  for (auto& f : pending) {
    QueryResponse r = f.get();
    if (r.status.ok()) {
      EXPECT_EQ(Observed(r.result, 6), Reference(6));
      ++ok;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 32u);
  ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 32u);
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.rejected_queue_full, rejected);
}

}  // namespace
}  // namespace sgxb::serve
