// Registry metrics: handle stability, sharded-counter merge under
// concurrency (the TSan target), histogram bucketing, and export formats.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace sgxb::obs {
namespace {

TEST(MetricsTest, RegistryHandlesAreStable) {
  Counter* a = Registry::Global().GetCounter("test.stable");
  Counter* b = Registry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = Registry::Global().GetGauge("test.stable_gauge");
  Gauge* g2 = Registry::Global().GetGauge("test.stable_gauge");
  EXPECT_EQ(g1, g2);
  Histogram* h1 = Registry::Global().GetHistogram("test.stable_hist");
  Histogram* h2 = Registry::Global().GetHistogram("test.stable_hist");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsTest, CounterAddAndReset) {
  Counter* c = Registry::Global().GetCounter("test.basic_counter");
  c->Reset();
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, CounterMergesAcrossThreads) {
  Counter* c = Registry::Global().GetCounter("test.mt_counter");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge* g = Registry::Global().GetGauge("test.gauge");
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-10);
  EXPECT_EQ(g->Value(), -3);
  g->Reset();
  EXPECT_EQ(g->Value(), 0);
}

TEST(MetricsTest, HistogramBucketsByLog2) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_buckets");
  h->Reset();
  h->Record(1);     // bucket 0: [1, 2)
  h->Record(2);     // bucket 1: [2, 4)
  h->Record(3);     // bucket 1
  h->Record(1024);  // bucket 10
  EXPECT_EQ(h->Count(), 4u);
  EXPECT_EQ(h->Sum(), 1030u);
  EXPECT_EQ(h->Max(), 1024u);
  EXPECT_EQ(h->BucketCount(0), 1u);
  EXPECT_EQ(h->BucketCount(1), 2u);
  EXPECT_EQ(h->BucketCount(10), 1u);
  // The median lands in bucket 1 ([2, 4)), whose upper bound is 3.
  EXPECT_EQ(h->QuantileUpperBound(0.5), 3u);
  // The top rank lands in the 1024 bucket ([1024, 2048)).
  EXPECT_EQ(h->QuantileUpperBound(1.0), 2047u);
}

TEST(MetricsTest, HistogramMergesAcrossThreads) {
  Histogram* h = Registry::Global().GetHistogram("test.hist_mt");
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h->Record(static_cast<uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(h->Max(), 7001u);
}

TEST(MetricsTest, SnapshotContainsRegisteredMetrics) {
  Counter* c = Registry::Global().GetCounter("test.snapshot_counter");
  c->Reset();
  c->Add(5);
  Registry::Global().GetHistogram("test.snapshot_hist")->Record(9);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  EXPECT_EQ(snap.CounterOr("test.snapshot_counter"), 5u);
  EXPECT_EQ(snap.CounterOr("test.never_registered", 123), 123u);
  ASSERT_TRUE(snap.histograms.count("test.snapshot_hist"));
  EXPECT_GE(snap.histograms["test.snapshot_hist"].count, 1u);
}

TEST(MetricsTest, SnapshotExportsJsonAndCsv) {
  Counter* c = Registry::Global().GetCounter("test.export_counter");
  c->Reset();
  c->Add(17);
  MetricsSnapshot snap = Registry::Global().Snapshot();
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.export_counter\""), std::string::npos);
  EXPECT_NE(json.find("17"), std::string::npos);
  std::string csv = snap.ToCsv();
  EXPECT_NE(csv.find("test.export_counter"), std::string::npos);
}

TEST(MetricsTest, DomainsAttributeOnlyTaggedActivity) {
  Registry& reg = Registry::Global();
  Counter* c = reg.GetCounter("test.domain_counter");
  c->Reset();
  const int d = reg.AcquireDomain();
  ASSERT_GE(d, 0);
  c->Add(7);  // no domain active: global only
  {
    ScopedMetricDomain scope(d);
    EXPECT_EQ(CurrentMetricDomain(), d);
    c->Add(5);
  }
  EXPECT_EQ(CurrentMetricDomain(), -1);
  c->Add(11);  // after the scope: global only again
  EXPECT_EQ(c->Value(), 23u);
  EXPECT_EQ(c->DomainValue(d), 5u);
  MetricsSnapshot snap = reg.DomainSnapshot(d);
  EXPECT_EQ(snap.CounterOr("test.domain_counter"), 5u);
  reg.ReleaseDomain(d);
}

TEST(MetricsTest, AcquireDomainZeroesStaleSlots) {
  Registry& reg = Registry::Global();
  Counter* c = reg.GetCounter("test.domain_stale");
  const int d1 = reg.AcquireDomain();
  ASSERT_GE(d1, 0);
  {
    ScopedMetricDomain scope(d1);
    c->Add(9);
  }
  reg.ReleaseDomain(d1);
  // The freed slot must come back clean for the next tenant.
  const int d2 = reg.AcquireDomain();
  ASSERT_GE(d2, 0);
  EXPECT_EQ(c->DomainValue(d2), 0u);
  reg.ReleaseDomain(d2);
}

TEST(MetricsTest, DomainPoolExhaustsGracefully) {
  Registry& reg = Registry::Global();
  std::vector<int> held;
  for (int i = 0; i < kMaxMetricDomains; ++i) {
    held.push_back(reg.AcquireDomain());
  }
  // Some tests / layers may hold domains; all *we* acquired are valid
  // until the pool runs dry, after which acquire fails soft with -1.
  EXPECT_EQ(reg.AcquireDomain(), -1);
  for (int d : held) reg.ReleaseDomain(d);
  const int again = reg.AcquireDomain();
  EXPECT_GE(again, 0);
  reg.ReleaseDomain(again);
}

TEST(MetricsTest, ScopedDomainRestoresOuterDomain) {
  Registry& reg = Registry::Global();
  const int outer = reg.AcquireDomain();
  const int inner = reg.AcquireDomain();
  ASSERT_GE(outer, 0);
  ASSERT_GE(inner, 0);
  {
    ScopedMetricDomain outer_scope(outer);
    {
      ScopedMetricDomain inner_scope(inner);
      EXPECT_EQ(CurrentMetricDomain(), inner);
    }
    EXPECT_EQ(CurrentMetricDomain(), outer);
  }
  EXPECT_EQ(CurrentMetricDomain(), -1);
  reg.ReleaseDomain(outer);
  reg.ReleaseDomain(inner);
}

TEST(MetricsTest, WriteStatsRoundTrips) {
  Registry::Global().GetCounter("test.write_stats")->Add(3);
  const std::string path = ::testing::TempDir() + "obs_stats_test.json";
  ASSERT_TRUE(WriteStats(path));
  std::ifstream in(path);
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("test.write_stats"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgxb::obs
