// Tracing: ring wraparound and drop accounting, span recording across
// threads, and the chrome trace-event JSON shape.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace sgxb::obs {
namespace {

// Tests share process-global rings, so every expectation works on deltas
// of GetTraceStats() and every test disables tracing before returning.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { DisableTracing(); }

  static uint64_t TotalEvents() {
    TraceStats s = GetTraceStats();
    return s.recorded + s.dropped;
  }
};

TEST_F(TraceTest, DisabledSpanRecordsNothing) {
  DisableTracing();
  const uint64_t before = TotalEvents();
  {
    ObsSpan span("disabled_span", "test");
  }
  TraceInstant("disabled_instant", "test");
  TraceComplete("disabled_complete", "test", 1, 2);
  EXPECT_EQ(TotalEvents(), before);
}

TEST_F(TraceTest, SpansRecordWhenEnabled) {
  EnableTracing();
  const uint64_t before = TotalEvents();
  {
    ObsSpan span("enabled_span", "test");
  }
  TraceInstant("enabled_instant", "test");
  EXPECT_EQ(TotalEvents(), before + 2);
}

TEST_F(TraceTest, RingWrapsAndCountsDrops) {
  // A fresh thread gets a fresh ring at the capacity set here; writing
  // past it must keep the newest `cap` events and count the overwritten
  // ones as dropped.
  constexpr size_t kCap = 16;
  constexpr int kEvents = 40;
  EnableTracing(kCap);
  TraceStats before = GetTraceStats();
  std::thread recorder([] {
    for (int i = 0; i < kEvents; ++i) TraceInstant("wrap", "test");
  });
  recorder.join();
  TraceStats after = GetTraceStats();
  EXPECT_EQ(after.threads, before.threads + 1);
  EXPECT_EQ(after.recorded - before.recorded, kCap);
  EXPECT_EQ(after.dropped - before.dropped, kEvents - kCap);
}

TEST_F(TraceTest, ResetTraceDropsHeldEvents) {
  EnableTracing();
  TraceInstant("to_be_reset", "test");
  ResetTrace();
  TraceStats s = GetTraceStats();
  EXPECT_EQ(s.recorded, 0u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST_F(TraceTest, InternNameIsStableAndDeduplicated) {
  const char* a = InternName("interned_name");
  const char* b = InternName("interned_name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "interned_name");
  EXPECT_NE(InternName("other_name"), a);
}

// Golden-shape test for the chrome trace-event JSON: one complete span,
// one instant event, and the envelope fields chrome://tracing requires.
TEST_F(TraceTest, JsonHasChromeTraceShape) {
  ResetTrace();
  EnableTracing();
  const uint64_t begin = ReadTsc();
  TraceComplete("golden_span", "golden_cat", begin, begin + 100000);
  TraceInstant("golden_marker", "golden_cat");
  DisableTracing();
  const std::string json = TraceToJson();

  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"golden_span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"golden_cat\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"golden_marker\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // Well-formed envelope: the array and object close.
  EXPECT_NE(json.find("\n]}\n"), std::string::npos);
  // Balanced braces -- cheap structural sanity without a JSON parser.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TraceTest, MultiThreadedSpansAllLand) {
  ResetTrace();
  EnableTracing();
  TraceStats before = GetTraceStats();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ObsSpan span("mt_span", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  DisableTracing();
  TraceStats after = GetTraceStats();
  EXPECT_EQ(
      (after.recorded + after.dropped) - (before.recorded + before.dropped),
      static_cast<uint64_t>(kThreads) * kSpansPerThread);
}

TEST_F(TraceTest, TraceCompleteEndingNowReconstructsDuration) {
  ResetTrace();
  EnableTracing();
  TraceCompleteEndingNow("backdated", "test", 1e6);  // 1 ms
  DisableTracing();
  const std::string json = TraceToJson();
  const size_t dur_at = json.find("\"dur\":");
  ASSERT_NE(dur_at, std::string::npos);
  const double dur_us = std::stod(json.substr(dur_at + 6));
  // 1 ms expressed in microseconds, give or take TSC calibration noise.
  EXPECT_GT(dur_us, 900.0);
  EXPECT_LT(dur_us, 1100.0);
}

TEST_F(TraceTest, WriteTraceCreatesLoadableFile) {
  ResetTrace();
  EnableTracing();
  TraceInstant("file_marker", "test");
  DisableTracing();
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(WriteTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[64] = {};
  ASSERT_GT(std::fread(head, 1, sizeof(head) - 1, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(head).rfind("{\"displayTimeUnit\"", 0), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgxb::obs
