// End-to-end QueryReport check: running TPC-H Q12 against a dynamic
// enclave must produce a report whose transition and EDMM deltas agree
// with the enclave's own accounting (Enclave::memory_stats,
// GetTransitionStats) over the same window.

#include <gtest/gtest.h>

#include "common/types.h"
#include "obs/query_report.h"
#include "sgx/enclave.h"
#include "sgx/transition.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

namespace sgxb::obs {
namespace {

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

TEST(QueryReportIntegrationTest, Q12ReportMatchesEnclaveAccounting) {
  // Small initial heap + dynamic growth: the query's enclave allocations
  // must go through EDMM page commits, so the report has churn to count.
  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 256_KiB;
  ecfg.max_heap_bytes = 1_GiB;
  ecfg.dynamic = true;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

  tpch::QueryConfig cfg;
  cfg.num_threads = 4;
  cfg.setting = ExecutionSetting::kSgxDataInEnclave;
  cfg.enclave = enclave;
  cfg.radix_bits = 8;

  const sgx::EnclaveMemoryStats mem_before = enclave->memory_stats();
  const sgx::TransitionStats trans_before = sgx::GetTransitionStats();

  auto result = tpch::RunQuery(12, Db(), cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const sgx::EnclaveMemoryStats mem_after = enclave->memory_stats();
  const sgx::TransitionStats trans_after = sgx::GetTransitionStats();
  const QueryReport& report = result.value().report;

  EXPECT_EQ(report.query, "Q12");
  EXPECT_GT(report.wall_ns, 0.0);
  EXPECT_FALSE(report.phases.empty());
  EXPECT_EQ(result.value().count, tpch::ReferenceQ12(Db()));

  // The report's window covers exactly the query, and this test is the
  // only transition/EDMM activity in the process, so the report deltas
  // must equal the subsystems' own before/after deltas.
  EXPECT_EQ(report.ecalls, trans_after.ecalls - trans_before.ecalls);
  EXPECT_EQ(report.ocalls, trans_after.ocalls - trans_before.ocalls);
  EXPECT_EQ(report.edmm_pages_added,
            mem_after.edmm_pages_added - mem_before.edmm_pages_added);
  EXPECT_EQ(report.edmm_pages_trimmed,
            mem_after.edmm_pages_trimmed - mem_before.edmm_pages_trimmed);

  // The configuration forces real activity: a 256 KiB dynamic enclave
  // must grow to hold Q12's intermediates, and four workers mean gang
  // dispatches.
  EXPECT_GT(report.edmm_pages_added, 0u);
  EXPECT_GT(report.ecalls, 0u);
  EXPECT_GT(report.gangs, 0u);
  EXPECT_GT(report.tasks, 0u);
  EXPECT_GT(report.arena_chunks, 0u);
  EXPECT_GT(report.arena_bytes, 0u);

  // Report serializations carry the query name and the headline counters.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"query\": \"Q12\""), std::string::npos);
  EXPECT_NE(json.find("edmm_pages_added"), std::string::npos);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("Q12"), std::string::npos);

  sgx::DestroyEnclave(enclave);
}

TEST(QueryReportIntegrationTest, ScopeDiffsAreWindowed) {
  // Activity before the scope opens must not leak into the report.
  Registry::Global().GetCounter(kCtrEcalls)->Add(100);
  QueryReportScope scope("window_test");
  Registry::Global().GetCounter(kCtrEcalls)->Add(7);
  QueryReport report = scope.Finish();
  EXPECT_EQ(report.ecalls, 7u);
  EXPECT_EQ(report.query, "window_test");
}

TEST(QueryReportIntegrationTest, PoolHitRate) {
  QueryReport r;
  EXPECT_EQ(r.PoolHitRate(), 0.0);
  r.pool_hits = 3;
  r.pool_misses = 1;
  EXPECT_DOUBLE_EQ(r.PoolHitRate(), 0.75);
}

}  // namespace
}  // namespace sgxb::obs
