#include "core/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sgxb::core {
namespace {

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(CsvWriterTest, WritesRows) {
  std::string path = TempPath("sgxb_csv_test1.csv");
  {
    CsvWriter w = CsvWriter::Open(path).value();
    ASSERT_TRUE(w.WriteRow({"a", "b", "c"}).ok());
    ASSERT_TRUE(w.WriteRow({"1", "2", "3"}).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_EQ(ReadFile(path), "a,b,c\n1,2,3\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  std::string path = TempPath("sgxb_csv_test2.csv");
  {
    CsvWriter w = CsvWriter::Open(path).value();
    ASSERT_TRUE(w.WriteRow({"plain", "with,comma", "with\"quote",
                            "with\nnewline"})
                    .ok());
    ASSERT_TRUE(w.Close().ok());
  }
  EXPECT_EQ(ReadFile(path),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsForBadPath) {
  EXPECT_FALSE(CsvWriter::Open("/nonexistent_dir_xyz/file.csv").ok());
}

TEST(MaybeCsvForTest, DisabledWithoutEnv) {
  unsetenv("SGXBENCH_CSV_DIR");
  EXPECT_FALSE(MaybeCsvFor("expX").has_value());
}

TEST(MaybeCsvForTest, WritesIntoConfiguredDir) {
  std::string dir = TempPath("sgxb_csv_dir");
  std::string cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  setenv("SGXBENCH_CSV_DIR", dir.c_str(), 1);
  {
    auto w = MaybeCsvFor("exp_test");
    ASSERT_TRUE(w.has_value());
    ASSERT_TRUE(w->WriteRow({"x"}).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  EXPECT_EQ(ReadFile(dir + "/exp_test.csv"), "x\n");
  unsetenv("SGXBENCH_CSV_DIR");
  std::remove((dir + "/exp_test.csv").c_str());
}

}  // namespace
}  // namespace sgxb::core
