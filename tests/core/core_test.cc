#include <gtest/gtest.h>

#include <cstdlib>

#include "common/types.h"
#include "core/experiment.h"
#include "core/modeling.h"
#include "core/report.h"

namespace sgxb::core {
namespace {

TEST(ExperimentTest, RepeatComputesMeanAndStddev) {
  int call = 0;
  double values[] = {100, 200, 300};
  Measurement m = Repeat(3, [&] { return values[call++]; });
  EXPECT_EQ(m.repetitions, 3);
  EXPECT_DOUBLE_EQ(m.mean_ns, 200.0);
  EXPECT_DOUBLE_EQ(m.stddev_ns, 100.0);
}

TEST(ExperimentTest, SingleRepHasZeroStddev) {
  Measurement m = Repeat(1, [] { return 50.0; });
  EXPECT_DOUBLE_EQ(m.mean_ns, 50.0);
  EXPECT_DOUBLE_EQ(m.stddev_ns, 0.0);
}

TEST(ExperimentTest, DefaultsAreSane) {
  EXPECT_GE(DefaultRepetitions(), 1);
  // Scaled sizes are 1/10 of paper scale unless SGXBENCH_FULL is set.
  if (!FullScale()) {
    EXPECT_EQ(ScaledBytes(1000), 100u);
  } else {
    EXPECT_EQ(ScaledBytes(1000), 1000u);
  }
}

TEST(ModelingTest, ModeledTimesOrderAsThePaperReports) {
  // A PHT-like probe phase: random reads over a 256 MiB hash table.
  perf::PhaseStats phase;
  phase.name = "probe";
  phase.host_ns = 1e9;
  phase.threads = 16;
  phase.profile.seq_read_bytes = 400_MiB;
  phase.profile.rand_reads = 50'000'000;
  phase.profile.rand_read_working_set = 256_MiB;
  phase.profile.loop_iterations = 50'000'000;
  phase.profile.ilp = perf::IlpClass::kReferenceLoop;

  perf::PhaseBreakdown bd;
  bd.Add(phase);

  double plain = ModeledReferenceNs(bd, ExecutionSetting::kPlainCpu);
  double sgx_in =
      ModeledReferenceNs(bd, ExecutionSetting::kSgxDataInEnclave);
  double sgx_out =
      ModeledReferenceNs(bd, ExecutionSetting::kSgxDataOutsideEnclave);
  EXPECT_LT(plain, sgx_out);
  EXPECT_LT(sgx_out, sgx_in);  // encryption costs extra on top of mode
}

TEST(ModelingTest, HostScaledUsesMeasuredTime) {
  perf::PhaseStats phase;
  phase.name = "scan";
  phase.host_ns = 1000.0;
  phase.threads = 1;
  phase.profile.seq_read_bytes = 1_GiB;
  phase.profile.ilp = perf::IlpClass::kStreaming;
  phase.profile.wide_vectors = true;
  perf::PhaseBreakdown bd;
  bd.Add(phase);

  double plain = HostScaledNs(bd, ExecutionSetting::kPlainCpu);
  double sgx = HostScaledNs(bd, ExecutionSetting::kSgxDataInEnclave);
  EXPECT_DOUBLE_EQ(plain, 1000.0);
  EXPECT_NEAR(sgx, 1030.0, 5.0);  // the 3% wide-vector read overhead
}

TEST(ModelingTest, RemoteCostsMore) {
  perf::PhaseStats phase;
  phase.host_ns = 1000.0;
  phase.threads = 8;
  phase.profile.seq_read_bytes = 1_GiB;
  phase.profile.ilp = perf::IlpClass::kStreaming;
  perf::PhaseBreakdown bd;
  bd.Add(phase);
  EXPECT_GT(ModeledReferenceNs(bd, ExecutionSetting::kPlainCpu, true),
            ModeledReferenceNs(bd, ExecutionSetting::kPlainCpu, false));
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(FormatNanos(500), "500 ns");
  EXPECT_EQ(FormatNanos(1500), "1.50 us");
  EXPECT_EQ(FormatNanos(2.5e6), "2.50 ms");
  EXPECT_EQ(FormatNanos(3.21e9), "3.210 s");
  EXPECT_EQ(FormatRel(0.834), "0.83x");
  EXPECT_EQ(FormatBytes(1024), "1.0 KiB");
  EXPECT_EQ(FormatBytes(100.0 * (1 << 20)), "100.0 MiB");
  EXPECT_NE(FormatRowsPerSec(1.23e8).find("M rows/s"), std::string::npos);
  EXPECT_NE(FormatBytesPerSec(5e9).find("GB/s"), std::string::npos);
}

TEST(ReportTest, TablePrinterRendersWithoutCrashing) {
  TablePrinter table({"setting", "throughput"});
  table.AddRow({"Plain CPU", "100 M rows/s"});
  table.AddRow({"SGX", "83 M rows/s"});
  table.Print();  // visual output; just must not crash
  PrintExperimentHeader("Figure 3", "join overview");
  PrintNote("sizes scaled down");
}

}  // namespace
}  // namespace sgxb::core
