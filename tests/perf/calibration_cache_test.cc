// Calibration cache file (perf/calibration.h): save/load round-trip,
// machine-hash staleness, and the Resolve() write-through path that
// SGXBENCH_CALIB_CACHE enables.

#include "perf/calibration.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace sgxb::perf {
namespace {

std::string TempPath(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  std::string path = dir != nullptr ? dir : "/tmp";
  path += "/sgxb_calib_";
  path += tag;
  path += "_";
  path += std::to_string(static_cast<long>(::getpid()));
  path += ".txt";
  return path;
}

class ScopedFile {
 public:
  explicit ScopedFile(std::string path) : path_(std::move(path)) {}
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CalibrationCacheTest, MachineHashIsStableAndHexShaped) {
  const std::string a = CalibrationMachineHash();
  const std::string b = CalibrationMachineHash();
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16u);
  for (char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
  }
}

TEST(CalibrationCacheTest, SaveLoadRoundTripsEveryField) {
  ScopedFile file(TempPath("roundtrip"));
  CalibrationParams p = CalibrationParams::FromEnv();
  // Perturb a few fields of each type so the round trip is observable.
  p.transition_cycles = 12345;
  p.probe_batch_size = 24;
  p.edmm_page_add_ns = 41000.5;
  p.l2_bytes = 2 * 1024 * 1024;
  ASSERT_TRUE(SaveCalibrationCache(file.path(), p));

  auto loaded = LoadCalibrationCache(file.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->transition_cycles, 12345u);
  EXPECT_EQ(loaded->probe_batch_size, 24);
  EXPECT_DOUBLE_EQ(loaded->edmm_page_add_ns, 41000.5);
  EXPECT_EQ(loaded->l2_bytes, 2u * 1024 * 1024);
  // And an untouched field survives too.
  EXPECT_DOUBLE_EQ(loaded->upi_bandwidth, p.upi_bandwidth);
}

TEST(CalibrationCacheTest, MissingFileIsNullopt) {
  EXPECT_FALSE(
      LoadCalibrationCache(TempPath("never_written")).has_value());
}

TEST(CalibrationCacheTest, StaleMachineHashIsRejected) {
  ScopedFile file(TempPath("stale"));
  ASSERT_TRUE(
      SaveCalibrationCache(file.path(), CalibrationParams::FromEnv()));
  // Corrupt the recorded hash in place: the loader must treat the file
  // as another machine's calibration.
  std::string contents;
  {
    std::ifstream in(file.path());
    ASSERT_TRUE(in.good());
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  const size_t pos = contents.find("machine_hash=");
  ASSERT_NE(pos, std::string::npos);
  contents[pos + 13] = contents[pos + 13] == '0' ? '1' : '0';
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents;
  }
  EXPECT_FALSE(LoadCalibrationCache(file.path()).has_value());
}

TEST(CalibrationCacheTest, TruncatedFileIsRejected) {
  ScopedFile file(TempPath("truncated"));
  ASSERT_TRUE(
      SaveCalibrationCache(file.path(), CalibrationParams::FromEnv()));
  std::string contents;
  {
    std::ifstream in(file.path());
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(file.path(), std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }
  EXPECT_FALSE(LoadCalibrationCache(file.path()).has_value());
}

TEST(CalibrationCacheTest, ResolveWritesThroughWhenCacheIsCold) {
  ScopedFile file(TempPath("resolve"));
  ::setenv("SGXBENCH_CALIB_CACHE", file.path().c_str(), 1);
  const CalibrationParams first = CalibrationParams::Resolve();
  ::unsetenv("SGXBENCH_CALIB_CACHE");
  // The cold resolve must have written a loadable, hash-matching cache
  // whose contents equal what it returned.
  auto cached = LoadCalibrationCache(file.path());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->transition_cycles, first.transition_cycles);
  EXPECT_DOUBLE_EQ(cached->node_read_bandwidth, first.node_read_bandwidth);
  EXPECT_EQ(cached->probe_batch_size, first.probe_batch_size);
}

TEST(CalibrationCacheTest, ResolveWithoutKnobMatchesFromEnv) {
  ::unsetenv("SGXBENCH_CALIB_CACHE");
  const CalibrationParams a = CalibrationParams::Resolve();
  const CalibrationParams b = CalibrationParams::FromEnv();
  EXPECT_EQ(a.transition_cycles, b.transition_cycles);
  EXPECT_DOUBLE_EQ(a.edmm_page_add_ns, b.edmm_page_add_ns);
  EXPECT_EQ(a.probe_batch_size, b.probe_batch_size);
}

}  // namespace
}  // namespace sgxb::perf
