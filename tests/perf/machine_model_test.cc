#include "perf/machine_model.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace sgxb::perf {
namespace {

const MachineModel& M() { return MachineModel::Reference(); }

TEST(Log2CurveTest, InterpolatesAndClamps) {
  Log2Curve curve({{1024, 1.0}, {4096, 3.0}});
  EXPECT_DOUBLE_EQ(curve.At(512), 1.0);    // clamp left
  EXPECT_DOUBLE_EQ(curve.At(1024), 1.0);
  EXPECT_DOUBLE_EQ(curve.At(2048), 2.0);   // log-midpoint
  EXPECT_DOUBLE_EQ(curve.At(4096), 3.0);
  EXPECT_DOUBLE_EQ(curve.At(1 << 20), 3.0);  // clamp right
}

TEST(MachineModelTest, ReferenceMatchesTable1) {
  const CalibrationParams& p = M().params();
  EXPECT_EQ(p.sockets, 2);
  EXPECT_EQ(p.cores_per_socket, 16);
  EXPECT_DOUBLE_EQ(p.base_frequency_hz, 2.9e9);
  EXPECT_EQ(p.l3_bytes, 24_MiB);
  EXPECT_EQ(p.epc_per_socket_bytes, 64_GiB);
  EXPECT_EQ(M().total_cores(), 32);
}

TEST(MachineModelTest, LatencyGrowsWithWorkingSet) {
  double l1 = M().DependentLoadLatencyNs(16_KiB, false);
  double l2 = M().DependentLoadLatencyNs(512_KiB, false);
  double l3 = M().DependentLoadLatencyNs(16_MiB, false);
  double dram = M().DependentLoadLatencyNs(1_GiB, false);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(l3, dram);
  EXPECT_GT(dram, 60.0);  // DRAM latency in the right ballpark
  EXPECT_LT(dram, 120.0);
}

TEST(MachineModelTest, RemoteLatencyOnlyBeyondCache) {
  EXPECT_DOUBLE_EQ(M().DependentLoadLatencyNs(1_MiB, true),
                   M().DependentLoadLatencyNs(1_MiB, false));
  EXPECT_GT(M().DependentLoadLatencyNs(1_GiB, true),
            M().DependentLoadLatencyNs(1_GiB, false));
}

// Paper Fig. 5: random reads have no SGX penalty in cache, and drop to
// 53% relative performance at 16 GB.
TEST(MachineModelTest, RandomReadRelPerfMatchesFig5) {
  EXPECT_DOUBLE_EQ(M().RandomReadRelPerfSgx(1_MiB), 1.0);
  EXPECT_DOUBLE_EQ(M().RandomReadRelPerfSgx(24_MiB), 1.0);
  EXPECT_NEAR(M().RandomReadRelPerfSgx(16_GiB), 0.53, 1e-9);
  // Monotonically non-increasing.
  double prev = 1.0;
  for (size_t ws = 1_MiB; ws <= 16_GiB; ws *= 2) {
    double rel = M().RandomReadRelPerfSgx(ws);
    EXPECT_LE(rel, prev + 1e-12) << ws;
    prev = rel;
  }
}

// Paper Fig. 5: random writes are ~2x slower at 256 MB and ~3x at 8 GB.
TEST(MachineModelTest, RandomWriteRelPerfMatchesFig5) {
  EXPECT_DOUBLE_EQ(M().RandomWriteRelPerfSgx(1_MiB), 1.0);
  EXPECT_NEAR(M().RandomWriteRelPerfSgx(256_MiB), 0.50, 1e-9);
  EXPECT_NEAR(M().RandomWriteRelPerfSgx(8_GiB), 0.33, 1e-9);
  // Writes are hit harder than reads beyond cache (paper's finding).
  for (size_t ws = 64_MiB; ws <= 8_GiB; ws *= 2) {
    EXPECT_LT(M().RandomWriteRelPerfSgx(ws), M().RandomReadRelPerfSgx(ws))
        << ws;
  }
}

// Paper Fig. 15: linear 64-bit reads lose 5.5%, 512-bit reads 3%,
// writes 2%.
TEST(MachineModelTest, LinearFactorsMatchFig15) {
  EXPECT_NEAR(M().LinearReadFactorSgx(false), 1.055, 1e-9);
  EXPECT_NEAR(M().LinearReadFactorSgx(true), 1.03, 1e-9);
  EXPECT_NEAR(M().LinearWriteFactorSgx(), 1.02, 1e-9);
}

// Paper Fig. 7: reference loop 225% slower (3.25x), unrolled 20%, SIMD ~5%.
TEST(MachineModelTest, IlpPenaltiesMatchFig7) {
  EXPECT_NEAR(M().IlpPenaltySgx(IlpClass::kReferenceLoop), 3.25, 1e-9);
  EXPECT_NEAR(M().IlpPenaltySgx(IlpClass::kUnrolledReordered), 1.20,
              1e-9);
  EXPECT_NEAR(M().IlpPenaltySgx(IlpClass::kSimdUnrolled), 1.05, 1e-9);
  EXPECT_DOUBLE_EQ(M().IlpPenaltySgx(IlpClass::kStreaming), 1.0);
}

TEST(MachineModelTest, BandwidthScalesThenSaturates) {
  double bw1 = M().SeqReadBandwidth(1, false);
  double bw8 = M().SeqReadBandwidth(8, false);
  double bw16 = M().SeqReadBandwidth(16, false);
  EXPECT_NEAR(bw8, 8 * bw1, 1e-6);
  EXPECT_LT(bw16, 16 * bw1);  // node limit reached
  EXPECT_LE(bw16, M().params().node_read_bandwidth);
}

// Paper Section 5.5: cross-socket traffic is capped by the 67.2 GB/s UPI.
TEST(MachineModelTest, RemoteBandwidthCappedByUpi) {
  EXPECT_LE(M().SeqReadBandwidth(16, true), M().params().upi_bandwidth);
  EXPECT_LT(M().SeqReadBandwidth(16, true),
            M().SeqReadBandwidth(16, false));
}

// Paper Fig. 16: UPI crypto costs 23% at one thread, ~4% at link
// saturation.
TEST(MachineModelTest, UpiCryptoRelPerfImprovesWithThreads) {
  EXPECT_NEAR(M().UpiCryptoRelPerf(1), 0.77, 0.05);
  EXPECT_GT(M().UpiCryptoRelPerf(8), M().UpiCryptoRelPerf(1));
  EXPECT_NEAR(M().UpiCryptoRelPerf(16), 0.96, 1e-9);
}

TEST(MachineModelTest, IlpClassNames) {
  EXPECT_STREQ(IlpClassToString(IlpClass::kStreaming), "streaming");
  EXPECT_STREQ(IlpClassToString(IlpClass::kReferenceLoop),
               "reference-loop");
  EXPECT_STREQ(IlpClassToString(IlpClass::kUnrolledReordered),
               "unrolled");
  EXPECT_STREQ(IlpClassToString(IlpClass::kSimdUnrolled),
               "simd-unrolled");
}

}  // namespace
}  // namespace sgxb::perf
