#include "perf/cost_model.h"

#include <gtest/gtest.h>

#include "common/types.h"
#include "perf/access_profile.h"

namespace sgxb::perf {
namespace {

const CostModel& CM() { return CostModel::Reference(); }

ExecutionEnv Env(ExecutionSetting setting, int threads = 1,
                 bool remote = false) {
  ExecutionEnv env;
  env.setting = setting;
  env.threads = threads;
  env.data_remote = remote;
  return env;
}

// A streaming SIMD scan profile over `bytes` of data.
AccessProfile ScanProfile(size_t bytes) {
  AccessProfile p;
  p.seq_read_bytes = bytes;
  p.seq_write_bytes = bytes / 8;
  p.loop_iterations = bytes / 64;
  p.ilp = IlpClass::kStreaming;
  p.wide_vectors = true;
  return p;
}

// The paper's histogram micro-benchmark profile (cache-resident bins).
AccessProfile HistProfile(size_t n, KernelFlavor flavor) {
  AccessProfile p;
  p.seq_read_bytes = n * 8;
  p.loop_iterations = n;
  p.rand_writes = n;
  p.rand_write_working_set = 4096;  // small histogram, cache resident
  p.ilp = flavor == KernelFlavor::kReference ? IlpClass::kReferenceLoop
                                             : IlpClass::kUnrolledReordered;
  return p;
}

TEST(CostModelTest, PlainCpuFactorIsOne) {
  AccessProfile p = ScanProfile(1_GiB);
  EXPECT_NEAR(CM().SlowdownFactor(p, Env(ExecutionSetting::kPlainCpu)),
              1.0, 1e-12);
}

// Paper Fig. 12: a streaming scan over EPC data loses only ~3%.
TEST(CostModelTest, StreamingScanBarelySlowsInSgx) {
  AccessProfile p = ScanProfile(1_GiB);
  double f = CM().SlowdownFactor(
      p, Env(ExecutionSetting::kSgxDataInEnclave, 1));
  EXPECT_GT(f, 1.0);
  EXPECT_LT(f, 1.06);
}

// Paper Fig. 12, in-cache points: data in caches is plaintext, so a
// cache-resident scan has NO SGX penalty and runs at cache bandwidth.
TEST(CostModelTest, CacheResidentScanIsFreeAndFast) {
  AccessProfile small = ScanProfile(1_GiB);  // 1 GiB of traffic...
  small.seq_data_bytes = 1_MiB;              // ...over a 1 MiB column
  double f = CM().SlowdownFactor(
      small, Env(ExecutionSetting::kSgxDataInEnclave, 1));
  EXPECT_DOUBLE_EQ(f, 1.0);

  AccessProfile large = ScanProfile(1_GiB);
  large.seq_data_bytes = 1_GiB;
  double t_small =
      CM().EstimateNanos(small, Env(ExecutionSetting::kPlainCpu, 1));
  double t_large =
      CM().EstimateNanos(large, Env(ExecutionSetting::kPlainCpu, 1));
  EXPECT_LT(t_small, t_large);  // cache streams beat DRAM streams
}

// Paper Fig. 7: the reference histogram loop is ~3.25x slower in enclave
// mode, independent of data location; unrolling recovers most of it.
TEST(CostModelTest, HistogramIlpPenaltyMatchesFig7) {
  AccessProfile ref = HistProfile(1 << 22, KernelFlavor::kReference);
  double f_in = CM().SlowdownFactor(
      ref, Env(ExecutionSetting::kSgxDataInEnclave));
  double f_out = CM().SlowdownFactor(
      ref, Env(ExecutionSetting::kSgxDataOutsideEnclave));
  // Dominated by the compute term => close to the 3.25 ILP penalty.
  EXPECT_GT(f_in, 2.0);
  EXPECT_GT(f_out, 2.0);
  // Figure 7's key observation: data location does not matter much.
  EXPECT_NEAR(f_in, f_out, 0.35);

  AccessProfile unrolled =
      HistProfile(1 << 22, KernelFlavor::kUnrolledReordered);
  double f_unrolled = CM().SlowdownFactor(
      unrolled, Env(ExecutionSetting::kSgxDataInEnclave));
  EXPECT_LT(f_unrolled, 1.5);
  EXPECT_GT(f_in / f_unrolled, 1.8);  // the optimization wins big
}

// Paper Fig. 5 / Section 4.1: random writes into a 256 MB structure are
// about 2x slower inside the enclave.
TEST(CostModelTest, RandomWritePenaltyBeyondCache) {
  AccessProfile p;
  p.rand_writes = 1 << 24;
  p.rand_write_working_set = 256_MiB;
  p.loop_iterations = 1 << 24;
  p.ilp = IlpClass::kStreaming;  // isolate the memory effect
  // The Fig. 5 write curve was measured with this very micro-benchmark,
  // so it already contains every enclave effect; exclude the additional
  // un-grouped-loop MLP loss to avoid double counting.
  p.software_mlp = true;
  double f = CM().SlowdownFactor(
      p, Env(ExecutionSetting::kSgxDataInEnclave));
  EXPECT_GT(f, 1.5);
  EXPECT_LT(f, 2.4);
}

TEST(CostModelTest, CacheResidentRandomAccessIsFree) {
  AccessProfile p;
  p.rand_reads = 1 << 20;
  p.rand_read_working_set = 1_MiB;
  p.rand_writes = 1 << 20;
  p.rand_write_working_set = 1_MiB;
  p.loop_iterations = 1 << 20;
  p.ilp = IlpClass::kStreaming;
  double f = CM().SlowdownFactor(
      p, Env(ExecutionSetting::kSgxDataInEnclave));
  EXPECT_NEAR(f, 1.0, 0.02);
}

TEST(CostModelTest, ThreadsReduceAbsoluteTime) {
  AccessProfile p = ScanProfile(1_GiB);
  double t1 = CM().EstimateNanos(p, Env(ExecutionSetting::kPlainCpu, 1));
  double t8 = CM().EstimateNanos(p, Env(ExecutionSetting::kPlainCpu, 8));
  EXPECT_LT(t8, t1 / 4);
}

TEST(CostModelTest, BandwidthSaturationLimitsScaling) {
  AccessProfile p = ScanProfile(4_GiB);
  double t8 = CM().EstimateNanos(p, Env(ExecutionSetting::kPlainCpu, 8));
  double t16 =
      CM().EstimateNanos(p, Env(ExecutionSetting::kPlainCpu, 16));
  // 16 threads saturate the memory controller: less than 2x over 8.
  EXPECT_LT(t8 / t16, 1.6);
}

// Paper Fig. 16: cross-NUMA SGX scan at 1 thread reaches ~77% of the
// plain cross-NUMA scan.
TEST(CostModelTest, UpiEncryptionPenaltyCrossNuma) {
  AccessProfile p = ScanProfile(1_GiB);
  double plain_remote = CM().EstimateNanos(
      p, Env(ExecutionSetting::kPlainCpu, 1, /*remote=*/true));
  double sgx_remote = CM().EstimateNanos(
      p, Env(ExecutionSetting::kSgxDataInEnclave, 1, /*remote=*/true));
  double rel = plain_remote / sgx_remote;
  EXPECT_GT(rel, 0.70);
  EXPECT_LT(rel, 0.85);
}

TEST(CostModelTest, RemoteSlowerThanLocal) {
  AccessProfile p = ScanProfile(1_GiB);
  double local = CM().EstimateNanos(
      p, Env(ExecutionSetting::kPlainCpu, 16, false));
  double remote = CM().EstimateNanos(
      p, Env(ExecutionSetting::kPlainCpu, 16, true));
  EXPECT_GT(remote, local);
}

TEST(CostModelTest, DependentReadsCostMoreThanIndependent) {
  AccessProfile dep;
  dep.rand_reads = 1 << 20;
  dep.rand_read_working_set = 1_GiB;
  dep.rand_reads_dependent = true;
  AccessProfile indep = dep;
  indep.rand_reads_dependent = false;
  double t_dep =
      CM().EstimateNanos(dep, Env(ExecutionSetting::kPlainCpu));
  double t_indep =
      CM().EstimateNanos(indep, Env(ExecutionSetting::kPlainCpu));
  EXPECT_GT(t_dep, 3 * t_indep);
}

TEST(AccessProfileTest, MergeAccumulatesAndKeepsWeakestIlp) {
  AccessProfile a;
  a.seq_read_bytes = 100;
  a.rand_reads = 5;
  a.rand_read_working_set = 1000;
  a.ilp = IlpClass::kUnrolledReordered;
  AccessProfile b;
  b.seq_read_bytes = 50;
  b.rand_reads = 7;
  b.rand_read_working_set = 500;
  b.ilp = IlpClass::kReferenceLoop;
  a.Merge(b);
  EXPECT_EQ(a.seq_read_bytes, 150u);
  EXPECT_EQ(a.rand_reads, 12u);
  EXPECT_EQ(a.rand_read_working_set, 1000u);
  EXPECT_EQ(a.ilp, IlpClass::kReferenceLoop);
}

TEST(PhaseBreakdownTest, TotalsAndFind) {
  PhaseBreakdown bd;
  PhaseStats s1;
  s1.name = "build";
  s1.host_ns = 100;
  PhaseStats s2;
  s2.name = "probe";
  s2.host_ns = 200;
  bd.Add(s1);
  bd.Add(s2);
  EXPECT_DOUBLE_EQ(bd.TotalHostNs(), 300);
  ASSERT_NE(bd.Find("probe"), nullptr);
  EXPECT_DOUBLE_EQ(bd.Find("probe")->host_ns, 200);
  EXPECT_EQ(bd.Find("missing"), nullptr);
}

}  // namespace
}  // namespace sgxb::perf
