#include <gtest/gtest.h>

#include "common/types.h"
#include "perf/machine_model.h"

namespace sgxb::perf {
namespace {

const MachineModel& M() { return MachineModel::Reference(); }

TEST(EpcPagingTest, NoPenaltyInsideEpc) {
  EXPECT_DOUBLE_EQ(M().EpcPagingFactor(64_MiB, 128_MiB, false), 1.0);
  EXPECT_DOUBLE_EQ(M().EpcPagingFactor(128_MiB, 128_MiB, true), 1.0);
  // The paper's workloads always fit SGXv2's EPC:
  EXPECT_DOUBLE_EQ(M().EpcPagingFactor(16_GiB, 64_GiB, false), 1.0);
}

TEST(EpcPagingTest, CliffBeyondEpc) {
  double f = M().EpcPagingFactor(256_MiB, 128_MiB, false);
  EXPECT_GT(f, 100.0);  // orders of magnitude, as the paper recalls
}

TEST(EpcPagingTest, MonotonicInWorkingSet) {
  double prev = 1.0;
  for (size_t ws = 128_MiB; ws <= 8_GiB; ws *= 2) {
    double f = M().EpcPagingFactor(ws, 128_MiB, false);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(EpcPagingTest, ZeroEpcMeansNoEnclaveMemory) {
  // Degenerate input: treat as "no paging model" rather than dividing
  // by zero.
  EXPECT_DOUBLE_EQ(M().EpcPagingFactor(1_GiB, 0, false), 1.0);
}

TEST(EpcPagingTest, StreamingAmortizesBetterPerByte) {
  // Per *byte*, streaming under paging beats random access under paging:
  // one fault serves 4 KiB sequentially but only 64 B randomly.
  const size_t ws = 1_GiB;
  const size_t epc = 128_MiB;
  double random_factor = M().EpcPagingFactor(ws, epc, false);
  double stream_factor = M().EpcPagingFactor(ws, epc, true);
  // Convert to per-byte costs using the native baselines the factors
  // are relative to.
  double random_ns_per_byte =
      random_factor * M().params().dram_latency_ns / 64.0;
  double stream_ns_per_byte =
      stream_factor * (4096.0 / M().params().node_read_bandwidth * 1e9) /
      4096.0;
  EXPECT_GT(random_ns_per_byte, 10 * stream_ns_per_byte);
}

}  // namespace
}  // namespace sgxb::perf
