#include "sgx/sgx_mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/parallel.h"
#include "sgx/transition.h"

namespace sgxb::sgx {
namespace {

TEST(SgxSdkMutexTest, BasicLockUnlock) {
  SgxSdkMutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SgxSdkMutexTest, MutualExclusionUnderContention) {
  SgxSdkMutex mu;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  ParallelRun(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      std::lock_guard<SgxSdkMutex> guard(mu);
      ++counter;
    }
  });
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(SgxSdkMutexTest, NoOcallsWithoutEnclaveMode) {
  ResetTransitionStats();
  SgxSdkMutex mu;
  int64_t counter = 0;
  ParallelRun(4, [&](int) {
    for (int i = 0; i < 500; ++i) {
      std::lock_guard<SgxSdkMutex> guard(mu);
      ++counter;
    }
  });
  // Outside the enclave, the SDK mutex behaves like a normal futex mutex:
  // no enclave transitions at all.
  EXPECT_EQ(GetTransitionStats().ocalls, 0u);
}

TEST(SgxSdkMutexTest, ContendedLockInEnclaveModeIssuesOcalls) {
  // Deterministic contention: thread 0 holds the lock while thread 1
  // (in enclave mode) attempts to take it, exhausts its spin budget, and
  // must park — which is the OCALL the paper's Section 4.4 describes.
  ResetTransitionStats();
  SgxSdkMutex mu;
  std::atomic<bool> holder_ready{false};
  std::atomic<bool> waiter_started{false};
  ParallelRun(2, [&](int tid) {
    if (tid == 0) {
      mu.lock();
      holder_ready.store(true);
      // Hold until the waiter has definitely started contending.
      while (!waiter_started.load()) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      mu.unlock();
    } else {
      ScopedEcall ecall;
      while (!holder_ready.load()) {
      }
      waiter_started.store(true);
      mu.lock();
      mu.unlock();
    }
  });
  EXPECT_GT(GetTransitionStats().ocalls, 0u);
}

}  // namespace
}  // namespace sgxb::sgx
