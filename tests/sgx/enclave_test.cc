#include "sgx/enclave.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/types.h"
#include "sgx/transition.h"

namespace sgxb::sgx {
namespace {

TEST(EnclaveTest, CreateAndDestroy) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  auto e = Enclave::Create(cfg);
  ASSERT_TRUE(e.ok());
  Enclave* enclave = e.value();
  EXPECT_EQ(enclave->config().initial_heap_bytes, 1_MiB);
  DestroyEnclave(enclave);
}

TEST(EnclaveTest, RejectsHeapBeyondEpc) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 65_GiB;  // > 64 GiB EPC per socket
  auto e = Enclave::Create(cfg);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kResourceExhausted);
}

TEST(EnclaveTest, RejectsInconsistentDynamicConfig) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 2_MiB;
  cfg.max_heap_bytes = 1_MiB;
  cfg.dynamic = true;
  EXPECT_FALSE(Enclave::Create(cfg).ok());
}

TEST(EnclaveTest, StaticEnclaveAllocatesWithinHeap) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* e = Enclave::Create(cfg).value();
  auto buf = e->Allocate(512_KiB);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(buf.value().region(), MemoryRegion::kEnclave);
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 512_KiB);
  EXPECT_EQ(e->memory_stats().edmm_pages_added, 0u);
  DestroyEnclave(e);
}

TEST(EnclaveTest, StaticEnclaveRefusesGrowth) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  cfg.dynamic = false;
  Enclave* e = Enclave::Create(cfg).value();
  auto a = e->Allocate(800_KiB);
  ASSERT_TRUE(a.ok());
  auto b = e->Allocate(800_KiB);  // would exceed the committed heap
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfMemory);
  // Failed allocation must not leak accounting.
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 800_KiB);
  DestroyEnclave(e);
}

TEST(EnclaveTest, DynamicEnclaveGrowsAndChargesPages) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.max_heap_bytes = 16_MiB;
  cfg.dynamic = true;
  Enclave* e = Enclave::Create(cfg).value();
  auto buf = e->Allocate(1_MiB);
  ASSERT_TRUE(buf.ok());
  EnclaveMemoryStats stats = e->memory_stats();
  EXPECT_GE(stats.heap_committed_bytes, 1_MiB);
  // Growth from 64 KiB to >= 1 MiB: at least 240 pages EAUG'd.
  EXPECT_GE(stats.edmm_pages_added, 240u);
  EXPECT_GT(stats.edmm_injected_ns, 0.0);
  DestroyEnclave(e);
}

TEST(EnclaveTest, DynamicEnclaveRespectsMaxHeap) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.max_heap_bytes = 1_MiB;
  cfg.dynamic = true;
  Enclave* e = Enclave::Create(cfg).value();
  EXPECT_FALSE(e->Allocate(2_MiB).ok());
  DestroyEnclave(e);
}

TEST(EnclaveTest, BufferDestructionReleasesAccounting) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* e = Enclave::Create(cfg).value();
  {
    auto buf = e->Allocate(256_KiB);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(e->memory_stats().heap_used_bytes, 256_KiB);
  }
  // The buffer credits the heap accounting when it is destroyed.
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  DestroyEnclave(e);
}

TEST(EnclaveTest, ChargeAllocBalancedByNotifyFree) {
  // The accounting-only path used by arenas: ChargeAlloc pays for pages
  // without handing out memory; the caller balances it with NotifyFree.
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* e = Enclave::Create(cfg).value();
  ASSERT_TRUE(e->ChargeAlloc(256_KiB).ok());
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 256_KiB);
  e->NotifyFree(256_KiB);
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  DestroyEnclave(e);
}

TEST(EnclaveTest, AllocationChargesWholePages) {
  // The EPC is page-granular: a 100-byte allocation occupies a full 4 KiB
  // page, and the accounting must say so (raw-byte charging used to let
  // sub-page allocations pack tighter than hardware allows).
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* e = Enclave::Create(cfg).value();
  {
    auto a = e->Allocate(100);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(e->memory_stats().heap_used_bytes, kEpcPageSize);
    auto b = e->Allocate(kEpcPageSize + 1);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(e->memory_stats().heap_used_bytes, 3 * kEpcPageSize);
  }
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  DestroyEnclave(e);
}

TEST(EnclaveTest, EdmmTrimReturnsPagesOnFree) {
  // With edmm_trim, freeing decommits pages back to the EPC, so the next
  // allocation re-pays EDMM growth (what makes pool reuse measurable).
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  cfg.max_heap_bytes = 16_MiB;
  cfg.dynamic = true;
  cfg.edmm_trim = true;
  Enclave* e = Enclave::Create(cfg).value();
  uint64_t added_first = 0;
  {
    auto buf = e->Allocate(1_MiB);
    ASSERT_TRUE(buf.ok());
    added_first = e->memory_stats().edmm_pages_added;
    EXPECT_GT(added_first, 0u);
  }
  EnclaveMemoryStats stats = e->memory_stats();
  EXPECT_GT(stats.edmm_pages_trimmed, 0u);
  EXPECT_EQ(stats.heap_committed_bytes, 64_KiB);  // back to the EADD floor
  {
    auto buf = e->Allocate(1_MiB);
    ASSERT_TRUE(buf.ok());
  }
  EXPECT_GT(e->memory_stats().edmm_pages_added, added_first);
  DestroyEnclave(e);
}

TEST(EnclaveTest, PageChargingCanExhaustHeapBeforeRawBytesWould) {
  // 16 one-byte allocations cost 16 pages; a 17th must fail on a 64 KiB
  // static heap even though raw bytes would say it is nearly empty.
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 16 * kEpcPageSize;
  Enclave* e = Enclave::Create(cfg).value();
  std::vector<AlignedBuffer> held;
  for (int i = 0; i < 16; ++i) {
    auto buf = e->Allocate(1);
    ASSERT_TRUE(buf.ok());
    held.push_back(std::move(buf).value());
  }
  EXPECT_FALSE(e->Allocate(1).ok());
  DestroyEnclave(e);
}

#ifdef NDEBUG
TEST(EnclaveTest, OverReleaseClampsToZero) {
  // Regression: NotifyFree beyond what was allocated used to wrap the
  // unsigned counter to ~SIZE_MAX, corrupting every later OOM check. In
  // release builds the counter now clamps at zero (debug builds assert).
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* e = Enclave::Create(cfg).value();
  ASSERT_TRUE(e->ChargeAlloc(16_KiB).ok());
  e->NotifyFree(16_KiB);
  e->NotifyFree(16_KiB);  // double release of the same charge
  EXPECT_EQ(e->memory_stats().heap_used_bytes, 0u);
  ASSERT_TRUE(e->Allocate(64_KiB).ok());  // accounting still sane
  DestroyEnclave(e);
}
#else
TEST(EnclaveDeathTest, OverReleaseAssertsInDebug) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* e = Enclave::Create(cfg).value();
  EXPECT_DEATH(e->NotifyFree(16_KiB), "NotifyFree without a matching");
  DestroyEnclave(e);
}
#endif

TEST(TransitionTest, EcallTogglesEnclaveMode) {
  EXPECT_FALSE(InEnclaveMode());
  {
    ScopedEcall ecall;
    EXPECT_TRUE(InEnclaveMode());
    {
      ScopedEcall nested;
      EXPECT_TRUE(InEnclaveMode());
    }
    EXPECT_TRUE(InEnclaveMode());
  }
  EXPECT_FALSE(InEnclaveMode());
}

TEST(TransitionTest, StatsCountEcallsAndOcalls) {
  ResetTransitionStats();
  {
    ScopedEcall ecall;
    OcallRoundTrip();
    OcallRoundTrip();
  }
  TransitionStats stats = GetTransitionStats();
  EXPECT_EQ(stats.ecalls, 1u);
  EXPECT_EQ(stats.ocalls, 2u);
  // Transitions are counted either way, but cycles are only charged when
  // injection is on (sanitizer CI runs with SGXBENCH_NO_INJECT=1).
  if (CostInjectionEnabled()) {
    EXPECT_GT(stats.injected_cycles, 0u);
  } else {
    EXPECT_EQ(stats.injected_cycles, 0u);
  }
}

TEST(TransitionTest, OcallOutsideEnclaveIsNoop) {
  ResetTransitionStats();
  OcallRoundTrip();
  EXPECT_EQ(GetTransitionStats().ocalls, 0u);
}

TEST(EnclaveTest, EcallRunsBodyInEnclaveMode) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_KiB;
  Enclave* e = Enclave::Create(cfg).value();
  bool was_in_enclave = false;
  int result = e->Ecall([&] {
    was_in_enclave = InEnclaveMode();
    return 41 + 1;
  });
  EXPECT_TRUE(was_in_enclave);
  EXPECT_EQ(result, 42);
  EXPECT_FALSE(InEnclaveMode());
  DestroyEnclave(e);
}

}  // namespace
}  // namespace sgxb::sgx
