// Concurrency behaviour of the enclave simulator: parallel allocations,
// parallel ECALLs, and EDMM growth races must keep the accounting exact.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/parallel.h"
#include "common/types.h"
#include "sgx/enclave.h"
#include "sgx/transition.h"

namespace sgxb::sgx {
namespace {

TEST(EnclaveConcurrencyTest, ParallelAllocationsAccountExactly) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 64_MiB;
  Enclave* enclave = Enclave::Create(cfg).value();
  constexpr int kThreads = 8;
  constexpr int kAllocsPerThread = 50;
  constexpr size_t kBytes = 64_KiB;

  std::atomic<int> failures{0};
  ParallelRun(kThreads, [&](int) {
    std::vector<AlignedBuffer> held;
    for (int i = 0; i < kAllocsPerThread; ++i) {
      auto buf = enclave->Allocate(kBytes);
      if (!buf.ok()) {
        failures.fetch_add(1);
        return;
      }
      held.push_back(std::move(buf).value());
    }
    // `held` goes out of scope here: every buffer credits the enclave's
    // accounting as it is destroyed.
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(enclave->memory_stats().heap_used_bytes, 0u);
  DestroyEnclave(enclave);
}

TEST(EnclaveConcurrencyTest, ParallelDynamicGrowthNeverOverCommits) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 256_KiB;
  cfg.max_heap_bytes = 8_MiB;
  cfg.dynamic = true;
  Enclave* enclave = Enclave::Create(cfg).value();

  std::atomic<size_t> successes{0};
  ParallelRun(6, [&](int) {
    std::vector<AlignedBuffer> held;
    for (int i = 0; i < 200; ++i) {
      auto buf = enclave->Allocate(16_KiB);
      if (buf.ok()) {
        successes.fetch_add(1);
        if (held.size() < 32) held.push_back(std::move(buf).value());
      }
      // OutOfMemory once the cap is hit is acceptable; over-commit is
      // not.
    }
    // Held buffers credit the accounting as `held` is destroyed.
  });
  EnclaveMemoryStats stats = enclave->memory_stats();
  EXPECT_GT(successes.load(), 0u);
  EXPECT_LE(stats.heap_used_bytes, cfg.max_heap_bytes);
  EXPECT_LE(stats.heap_committed_bytes,
            cfg.max_heap_bytes + kEpcPageSize);
  EXPECT_EQ(stats.heap_used_bytes, 0u);
  DestroyEnclave(enclave);
}

TEST(EnclaveConcurrencyTest, ParallelEcallsCountExactly) {
  ResetTransitionStats();
  constexpr int kThreads = 6;
  constexpr int kCallsPerThread = 100;
  ParallelRun(kThreads, [&](int) {
    for (int i = 0; i < kCallsPerThread; ++i) {
      ScopedEcall ecall;
      if (i % 10 == 0) OcallRoundTrip();
    }
  });
  TransitionStats stats = GetTransitionStats();
  EXPECT_EQ(stats.ecalls,
            static_cast<uint64_t>(kThreads) * kCallsPerThread);
  EXPECT_EQ(stats.ocalls,
            static_cast<uint64_t>(kThreads) * kCallsPerThread / 10);
}

TEST(EnclaveConcurrencyTest, EnclaveModeIsPerThread) {
  // One thread inside the enclave must not flip another thread's mode.
  std::atomic<bool> t0_inside{false};
  std::atomic<bool> t1_checked{false};
  std::atomic<bool> t1_saw_outside{false};
  ParallelRun(2, [&](int tid) {
    if (tid == 0) {
      ScopedEcall ecall;
      t0_inside.store(true);
      while (!t1_checked.load()) {
      }
    } else {
      while (!t0_inside.load()) {
      }
      t1_saw_outside.store(!InEnclaveMode());
      t1_checked.store(true);
    }
  });
  EXPECT_TRUE(t1_saw_outside.load());
}

// memory_stats() must never show a torn pair: heap_used <= heap_committed
// on every snapshot, even while other threads allocate, free, and (with
// edmm_trim) shrink the committed heap concurrently.
void StressMemoryStatsCoherence(bool edmm_trim) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 256_KiB;
  cfg.max_heap_bytes = 64_MiB;
  cfg.dynamic = true;
  cfg.edmm_trim = edmm_trim;
  Enclave* enclave = Enclave::Create(cfg).value();

  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  ParallelRun(kWriters + kReaders, [&](int tid) {
    if (tid < kWriters) {
      for (int i = 0; i < 300; ++i) {
        // Freed immediately (destroyed each iteration): with trim on,
        // this drives commit/trim churn against the readers.
        ASSERT_TRUE(enclave->Allocate(32_KiB).ok());
      }
      stop.store(true, std::memory_order_release);
    } else {
      while (!stop.load(std::memory_order_acquire)) {
        EnclaveMemoryStats s = enclave->memory_stats();
        if (s.heap_used_bytes > s.heap_committed_bytes) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  EXPECT_EQ(torn.load(), 0u) << "memory_stats returned used > committed";
  EXPECT_EQ(enclave->memory_stats().heap_used_bytes, 0u);
  DestroyEnclave(enclave);
}

TEST(EnclaveConcurrencyTest, MemoryStatsNeverTearsWithoutTrim) {
  StressMemoryStatsCoherence(/*edmm_trim=*/false);
}

TEST(EnclaveConcurrencyTest, MemoryStatsNeverTearsWithTrim) {
  StressMemoryStatsCoherence(/*edmm_trim=*/true);
}

TEST(EnclaveConcurrencyTest, MultipleEnclavesCoexist) {
  EnclaveConfig cfg;
  cfg.initial_heap_bytes = 1_MiB;
  Enclave* a = Enclave::Create(cfg).value();
  Enclave* b = Enclave::Create(cfg).value();
  auto ba = a->Allocate(256_KiB);
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(a->memory_stats().heap_used_bytes, 256_KiB);
  EXPECT_EQ(b->memory_stats().heap_used_bytes, 0u);
  DestroyEnclave(a);
  DestroyEnclave(b);
}

}  // namespace
}  // namespace sgxb::sgx
