#include "sgx/sealing.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"

namespace sgxb::sgx {
namespace {

constexpr uint64_t kKey = 0x1122334455667788ull;

std::vector<uint8_t> MakeData(size_t n, uint64_t seed = 9) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

TEST(SealingTest, RoundTrip) {
  auto data = MakeData(1000);
  SealedBlob blob = Seal(data.data(), data.size(), kKey).value();
  EXPECT_EQ(blob.payload_size(), 1000u);
  auto out = Unseal(blob, kKey);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value(), data);
}

TEST(SealingTest, CiphertextDiffersFromPlaintext) {
  auto data = MakeData(256);
  SealedBlob blob = Seal(data.data(), data.size(), kKey).value();
  // The payload section must not equal the plaintext.
  EXPECT_NE(std::memcmp(blob.bytes.data() + 32, data.data(), data.size()),
            0);
}

TEST(SealingTest, EmptyPayload) {
  SealedBlob blob = Seal(nullptr, 0, kKey).value();
  auto out = Unseal(blob, kKey);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(SealingTest, OddSizes) {
  for (size_t n : {1u, 7u, 63u, 65u, 4097u}) {
    auto data = MakeData(n, n);
    SealedBlob blob = Seal(data.data(), n, kKey).value();
    auto out = Unseal(blob, kKey);
    ASSERT_TRUE(out.ok()) << n;
    EXPECT_EQ(out.value(), data) << n;
  }
}

TEST(SealingTest, WrongKeyFailsAuthentication) {
  auto data = MakeData(128);
  SealedBlob blob = Seal(data.data(), data.size(), kKey).value();
  auto out = Unseal(blob, kKey + 1);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST(SealingTest, TamperedCiphertextDetected) {
  auto data = MakeData(128);
  SealedBlob blob = Seal(data.data(), data.size(), kKey).value();
  blob.bytes[32 + 5] ^= 0x01;  // flip one ciphertext bit
  EXPECT_FALSE(Unseal(blob, kKey).ok());
}

TEST(SealingTest, TamperedHeaderDetected) {
  auto data = MakeData(128);
  SealedBlob blob = Seal(data.data(), data.size(), kKey).value();
  blob.bytes[8] ^= 0x01;  // nonce byte
  EXPECT_FALSE(Unseal(blob, kKey).ok());
}

TEST(SealingTest, TruncatedBlobRejected) {
  auto data = MakeData(128);
  SealedBlob blob = Seal(data.data(), data.size(), kKey).value();
  blob.bytes.resize(blob.bytes.size() - 4);
  auto out = Unseal(blob, kKey);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(SealingTest, GarbageRejected) {
  SealedBlob blob;
  blob.bytes.assign(100, 0xab);
  EXPECT_FALSE(Unseal(blob, kKey).ok());
  SealedBlob tiny;
  tiny.bytes.assign(10, 0);
  EXPECT_FALSE(Unseal(tiny, kKey).ok());
}

TEST(SealingTest, AadIsAuthenticated) {
  auto data = MakeData(64);
  std::vector<uint8_t> aad = {'t', 'a', 'b', 'l', 'e', '1'};
  SealedBlob blob = Seal(data.data(), data.size(), kKey, aad).value();
  EXPECT_TRUE(Unseal(blob, kKey, aad).ok());
  std::vector<uint8_t> wrong_aad = {'t', 'a', 'b', 'l', 'e', '2'};
  EXPECT_FALSE(Unseal(blob, kKey, wrong_aad).ok());
  EXPECT_FALSE(Unseal(blob, kKey, {}).ok());
}

TEST(SealingTest, NoncesMakeSealingsUnique) {
  auto data = MakeData(64);
  SealedBlob a = Seal(data.data(), data.size(), kKey).value();
  SealedBlob b = Seal(data.data(), data.size(), kKey).value();
  EXPECT_NE(a.bytes, b.bytes);  // fresh nonce each time
  EXPECT_EQ(Unseal(a, kKey).value(), Unseal(b, kKey).value());
}

}  // namespace
}  // namespace sgxb::sgx
