#include "sgx/mee.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace sgxb::sgx {
namespace {

TEST(MeeTest, EncryptDecryptRoundTrips) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> original = data;

  mee.Encrypt(data.data(), data.size());
  EXPECT_NE(std::memcmp(data.data(), original.data(), data.size()), 0);
  mee.Decrypt(data.data(), data.size());
  EXPECT_EQ(std::memcmp(data.data(), original.data(), data.size()), 0);
}

TEST(MeeTest, NonWordSizes) {
  MemoryEncryptionEngine mee;
  for (size_t n : {1u, 3u, 7u, 9u, 63u, 65u}) {
    std::vector<uint8_t> data(n, 0xab);
    std::vector<uint8_t> original = data;
    mee.Encrypt(data.data(), n);
    mee.Decrypt(data.data(), n);
    EXPECT_EQ(data, original) << n;
  }
}

TEST(MeeTest, OffsetChangesKeystream) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> a(64, 0), b(64, 0);
  mee.Encrypt(a.data(), a.size(), /*base_offset=*/0);
  mee.Encrypt(b.data(), b.size(), /*base_offset=*/64);
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

TEST(MeeTest, KeyChangesKeystream) {
  MemoryEncryptionEngine mee1(1), mee2(2);
  std::vector<uint8_t> a(64, 0), b(64, 0);
  mee1.Encrypt(a.data(), a.size());
  mee2.Encrypt(b.data(), b.size());
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

TEST(MeeTest, DecryptRequiresMatchingOffset) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> data(64, 0x5a);
  std::vector<uint8_t> original = data;
  mee.Encrypt(data.data(), data.size(), 0);
  mee.Decrypt(data.data(), data.size(), 128);  // wrong offset
  EXPECT_NE(data, original);
}

}  // namespace
}  // namespace sgxb::sgx
