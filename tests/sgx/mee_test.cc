#include "sgx/mee.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace sgxb::sgx {
namespace {

TEST(MeeTest, EncryptDecryptRoundTrips) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  std::vector<uint8_t> original = data;

  mee.Encrypt(data.data(), data.size());
  EXPECT_NE(std::memcmp(data.data(), original.data(), data.size()), 0);
  mee.Decrypt(data.data(), data.size());
  EXPECT_EQ(std::memcmp(data.data(), original.data(), data.size()), 0);
}

TEST(MeeTest, NonWordSizes) {
  MemoryEncryptionEngine mee;
  for (size_t n : {1u, 3u, 7u, 9u, 63u, 65u}) {
    std::vector<uint8_t> data(n, 0xab);
    std::vector<uint8_t> original = data;
    mee.Encrypt(data.data(), n);
    mee.Decrypt(data.data(), n);
    EXPECT_EQ(data, original) << n;
  }
}

TEST(MeeTest, OffsetChangesKeystream) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> a(64, 0), b(64, 0);
  mee.Encrypt(a.data(), a.size(), /*base_offset=*/0);
  mee.Encrypt(b.data(), b.size(), /*base_offset=*/64);
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

TEST(MeeTest, KeyChangesKeystream) {
  MemoryEncryptionEngine mee1(1), mee2(2);
  std::vector<uint8_t> a(64, 0), b(64, 0);
  mee1.Encrypt(a.data(), a.size());
  mee2.Encrypt(b.data(), b.size());
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

// The spill path encrypts a partition image in one shot at registration
// but may decrypt it piecewise (and vice versa): chunked Apply with
// continued base_offsets must match one-shot Apply for *any* split point,
// not just 8-byte-aligned ones.
TEST(MeeTest, ChunkedEncryptionMatchesOneShot) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> whole(257);
  for (size_t i = 0; i < whole.size(); ++i) {
    whole[i] = static_cast<uint8_t>(i * 13 + 5);
  }
  for (uint64_t base : {0ull, 64ull, 1000ull}) {
    std::vector<uint8_t> one_shot = whole;
    mee.Encrypt(one_shot.data(), one_shot.size(), base);
    for (size_t split : {1u, 7u, 8u, 9u, 64u, 100u, 255u, 256u}) {
      std::vector<uint8_t> chunked = whole;
      mee.Encrypt(chunked.data(), split, base);
      mee.Encrypt(chunked.data() + split, chunked.size() - split,
                  base + split);
      EXPECT_EQ(chunked, one_shot) << "base=" << base << " split=" << split;
    }
  }
}

TEST(MeeTest, UnalignedBaseOffsetRoundTrips) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> data(130, 0xc3);
  std::vector<uint8_t> original = data;
  mee.Encrypt(data.data(), data.size(), /*base_offset=*/3);
  EXPECT_NE(data, original);
  mee.Decrypt(data.data(), data.size(), /*base_offset=*/3);
  EXPECT_EQ(data, original);
}

// Decrypting a sub-range of a larger encrypted image at its absolute
// offset recovers exactly that sub-range's plaintext.
TEST(MeeTest, SubRangeDecryptAtAbsoluteOffset) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> data(512);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i ^ 0x9e);
  }
  std::vector<uint8_t> original = data;
  mee.Encrypt(data.data(), data.size(), /*base_offset=*/0);
  mee.Decrypt(data.data() + 123, 77, /*base_offset=*/123);
  EXPECT_EQ(std::memcmp(data.data() + 123, original.data() + 123, 77), 0);
}

TEST(MeeTest, DecryptRequiresMatchingOffset) {
  MemoryEncryptionEngine mee;
  std::vector<uint8_t> data(64, 0x5a);
  std::vector<uint8_t> original = data;
  mee.Encrypt(data.data(), data.size(), 0);
  mee.Decrypt(data.data(), data.size(), 128);  // wrong offset
  EXPECT_NE(data, original);
}

}  // namespace
}  // namespace sgxb::sgx
