// Reproduction shape regression tests.
//
// These pin the paper's qualitative findings end-to-end: real (small)
// executions are profiled, scaled to paper workload size, and evaluated
// on the reference-machine model; the assertions encode who must win and
// by roughly what factor. If a refactor of an operator or of the cost
// model silently breaks a headline result of the reproduction, these
// tests catch it.

#include <gtest/gtest.h>

#include "core/modeling.h"
#include "join/crk_join.h"
#include "join/data_gen.h"
#include "join/inl_join.h"
#include "join/mway_join.h"
#include "join/pht_join.h"
#include "join/rho_join.h"
#include "scan/column_scan.h"
#include "sgx/enclave.h"

namespace sgxb {
namespace {

using core::ModeledReferenceNs;

perf::PhaseBreakdown PaperScale10(const perf::PhaseBreakdown& bd) {
  perf::PhaseBreakdown out;
  for (const auto& phase : bd.phases) {
    perf::PhaseStats s = phase;
    s.profile = phase.profile.ScaledBy(10.0);
    s.host_ns = phase.host_ns * 10.0;
    out.Add(std::move(s));
  }
  return out;
}

class ShapeTest : public ::testing::Test {
 protected:
  // 10 MB x 40 MB on the host = the paper's 100 MB x 400 MB when scaled.
  static constexpr size_t kBuildN = 10_MiB / sizeof(Tuple);
  static constexpr size_t kProbeN = 40_MiB / sizeof(Tuple);

  static const Relation& Build() {
    static const Relation r =
        join::GenerateBuildRelation(kBuildN, MemoryRegion::kUntrusted)
            .value();
    return r;
  }
  static const Relation& Probe() {
    static const Relation r =
        join::GenerateProbeRelation(kProbeN, kBuildN,
                                    MemoryRegion::kUntrusted)
            .value();
    return r;
  }

  static join::JoinConfig Config(KernelFlavor flavor) {
    join::JoinConfig cfg;
    cfg.num_threads = 1;
    cfg.flavor = flavor;
    return cfg;
  }

  // Modeled in-enclave time at 16 threads, paper scale.
  static double SgxNs(const join::JoinResult& r) {
    return ModeledReferenceNs(PaperScale10(r.phases),
                              ExecutionSetting::kSgxDataInEnclave, false,
                              16);
  }
  static double NativeNs(const join::JoinResult& r) {
    return ModeledReferenceNs(PaperScale10(r.phases),
                              ExecutionSetting::kPlainCpu, false, 16);
  }
};

// Paper Figure 1/3: CrkJoin is the slowest join inside SGXv2 enclaves,
// and RHO is at least ~8x faster (paper: 12x).
TEST_F(ShapeTest, CrkJoinIsObsoleteOnSgxV2) {
  auto crk = join::CrkJoin(Build(), Probe(),
                           Config(KernelFlavor::kReference))
                 .value();
  auto rho = join::RhoJoin(Build(), Probe(),
                           Config(KernelFlavor::kReference))
                 .value();
  auto pht = join::PhtJoin(Build(), Probe(),
                           Config(KernelFlavor::kReference))
                 .value();
  auto mway = join::MwayJoin(Build(), Probe(),
                             Config(KernelFlavor::kReference))
                  .value();
  auto inl = join::InlJoin(Build(), Probe(),
                           Config(KernelFlavor::kReference))
                 .value();

  double crk_ns = SgxNs(crk);
  EXPECT_GT(crk_ns, SgxNs(rho));
  EXPECT_GT(crk_ns, SgxNs(pht));
  EXPECT_GT(crk_ns, SgxNs(mway));
  EXPECT_GT(crk_ns, SgxNs(inl));
  // RHO's advantage is an order of magnitude (paper: 12x).
  EXPECT_GT(crk_ns / SgxNs(rho), 8.0);
  EXPECT_LT(crk_ns / SgxNs(rho), 30.0);
}

// Paper Figure 3: the hash joins suffer the largest relative in-enclave
// loss; MWAY and CrkJoin the smallest.
TEST_F(ShapeTest, HashJoinsLoseMostInEnclave) {
  auto rel = [&](auto&& fn) {
    auto r = fn(Build(), Probe(), Config(KernelFlavor::kReference)).value();
    return NativeNs(r) / SgxNs(r);
  };
  double pht = rel(join::PhtJoin);
  double rho = rel(join::RhoJoin);
  double mway = rel(join::MwayJoin);
  double crk = rel(join::CrkJoin);
  EXPECT_LT(pht, mway);
  EXPECT_LT(rho, mway);
  EXPECT_LT(pht, crk);
  EXPECT_GT(crk, 0.9);  // CrkJoin barely affected (already slow)
  EXPECT_LT(pht, 0.65);  // hash joins lose >35%
}

// Paper Figures 6-8: unroll-and-reorder recovers a large part of RHO's
// in-enclave loss (paper: 43% single-thread time cut; 0.54 -> 0.83 rel).
TEST_F(ShapeTest, UnrollOptimizationRecoversRhoPerformance) {
  auto ref = join::RhoJoin(Build(), Probe(),
                           Config(KernelFlavor::kReference))
                 .value();
  auto opt = join::RhoJoin(Build(), Probe(),
                           Config(KernelFlavor::kUnrolledReordered))
                 .value();
  double improvement = SgxNs(ref) / SgxNs(opt);
  EXPECT_GT(improvement, 1.25);
  EXPECT_LT(improvement, 3.0);
  // Optimized RHO reaches >80% of native (paper: 83%).
  EXPECT_GT(NativeNs(opt) / SgxNs(opt), 0.80);
}

// Paper Figure 4: PHT's relative performance decays as the hash table
// outgrows the cache.
TEST_F(ShapeTest, PhtPenaltyGrowsWithHashTable) {
  auto run = [&](size_t build_n) {
    auto build =
        join::GenerateBuildRelation(build_n, MemoryRegion::kUntrusted)
            .value();
    auto probe = join::GenerateProbeRelation(
                     4 * build_n, build_n, MemoryRegion::kUntrusted)
                     .value();
    auto r =
        join::PhtJoin(build, probe, Config(KernelFlavor::kReference))
            .value();
    auto scaled = PaperScale10(r.phases);
    return ModeledReferenceNs(scaled, ExecutionSetting::kPlainCpu) /
           ModeledReferenceNs(scaled,
                              ExecutionSetting::kSgxDataInEnclave);
  };
  double small = run(BytesToTuples(100_KiB));  // 1 MB at paper scale
  double large = run(BytesToTuples(10_MiB));   // 100 MB at paper scale
  EXPECT_GT(small, 0.90);  // paper: 95% when cache-resident
  EXPECT_LT(large, 0.60);  // paper: 51% at 100 MB
}

// Paper Figures 12-14: streaming scans lose only a few percent.
TEST_F(ShapeTest, ScansAreBarelyAffected) {
  const size_t n = 8_MiB;
  auto col =
      Column<uint8_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < n; ++i) col[i] = static_cast<uint8_t>(i);
  auto bv = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
  scan::ScanConfig cfg;
  cfg.lo = 10;
  cfg.hi = 200;
  auto result = scan::RunBitVectorScan(col, &bv, cfg).value();

  perf::PhaseStats phase;
  phase.host_ns = result.host_ns;
  phase.threads = 16;
  phase.profile = result.profile.ScaledBy(10.0);
  perf::PhaseBreakdown bd;
  bd.Add(phase);
  double rel =
      ModeledReferenceNs(bd, ExecutionSetting::kPlainCpu, false, 16) /
      ModeledReferenceNs(bd, ExecutionSetting::kSgxDataInEnclave, false,
                         16);
  EXPECT_GT(rel, 0.94);
  EXPECT_LE(rel, 1.0 + 1e-9);
}

// Paper Figure 11: a join forced to grow its enclave dynamically is far
// slower than in a pre-sized enclave — measured for real.
TEST_F(ShapeTest, DynamicEnclaveGrowthIsRuinous) {
  if (!sgx::CostInjectionEnabled()) {
    GTEST_SKIP() << "EDMM growth is only slow when its per-page delay is "
                    "injected (SGXBENCH_NO_INJECT=1 disables that)";
  }
  const size_t build_n = 100000;
  const size_t probe_n = 400000;
  auto build =
      join::GenerateBuildRelation(build_n, MemoryRegion::kUntrusted)
          .value();
  auto probe = join::GenerateProbeRelation(probe_n, build_n,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto run = [&](bool dynamic) {
    sgx::EnclaveConfig ecfg;
    ecfg.dynamic = dynamic;
    ecfg.initial_heap_bytes = dynamic ? 256_KiB : 256_MiB;
    ecfg.max_heap_bytes = 256_MiB;
    sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();
    join::JoinConfig cfg;
    cfg.num_threads = 1;
    cfg.setting = ExecutionSetting::kSgxDataInEnclave;
    cfg.enclave = enclave;
    cfg.materialize = true;
    WallTimer timer;
    auto r = join::RhoJoin(build, probe, cfg);
    double ns = static_cast<double>(timer.ElapsedNanos());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    sgx::DestroyEnclave(enclave);
    return ns;
  };
  double static_ns = run(false);
  double dynamic_ns = run(true);
  EXPECT_GT(dynamic_ns / static_ns, 3.0);
}

}  // namespace
}  // namespace sgxb
