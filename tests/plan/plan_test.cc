// Unit tests for the plan IR (plan/plan.h) and the query catalog
// (plan/catalog.h): builder construction, the validation errors the
// planner relies on never seeing (unbound columns, type mismatches,
// cyclic or DAG-shaped "trees"), and catalog integrity — every declared
// query must be a valid plan, and RunQuery-style lookup must fail
// cleanly for numbers outside the catalog.

#include "plan/plan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "plan/catalog.h"
#include "tpch/tpch_schema.h"

namespace sgxb::plan {
namespace {

// --- Builder construction --------------------------------------------------

TEST(PlanBuilderTest, BuildsSingleScanAggregate) {
  PlanBuilder b;
  const int li = b.Scan(
      TableId::kLineitem,
      {Predicate::U32Range(ColId::kLShipdate, 0, 1000)});
  const int agg = b.Aggregate(li, AggSpec::CountStar());
  Result<Plan> plan = b.Build(agg, "t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan.value().valid());
  EXPECT_EQ(plan.value().name(), "t");
  EXPECT_EQ(plan.value().root(), agg);
  EXPECT_EQ(plan.value().nodes().size(), 2u);
  EXPECT_EQ(plan.value().OutputTable(li), TableId::kLineitem);
  EXPECT_EQ(plan.value().OutputTable(agg), TableId::kLineitem);
}

TEST(PlanBuilderTest, BuildsJoinTreeWithOutputTables) {
  PlanBuilder b;
  const int cust = b.Scan(TableId::kCustomer);
  const int ord = b.Scan(TableId::kOrders);
  const int co = b.Join(cust, ord, ColId::kCCustkey, ColId::kOCustkey);
  const int agg = b.Aggregate(co, AggSpec::CountStar());
  Result<Plan> plan = b.Build(agg, "join");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // A join streams its probe side: the join's output table is the probe
  // child's table.
  EXPECT_EQ(plan.value().OutputTable(co), TableId::kOrders);
}

TEST(PlanBuilderTest, ToTextMentionsEveryNode) {
  const CatalogEntry* q3 = FindQuery(3);
  ASSERT_NE(q3, nullptr);
  const std::string text = q3->plan.ToText();
  EXPECT_NE(text.find("Scan(customer)"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan(orders)"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan(lineitem)"), std::string::npos) << text;
  EXPECT_NE(text.find("Join(c_custkey == o_custkey)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("Aggregate(count(*))"), std::string::npos) << text;
}

TEST(PredicateTest, ToStringRendersEveryKind) {
  EXPECT_EQ(Predicate::U32Range(ColId::kLShipdate, 3, 9).ToString(),
            "l_shipdate in [3, 9]");
  EXPECT_EQ(Predicate::U8Eq(ColId::kCMktsegment, 1).ToString(),
            "c_mktsegment == 1");
  EXPECT_EQ(Predicate::Less(ColId::kLShipdate, ColId::kLCommitdate)
                .ToString(),
            "l_shipdate < l_commitdate");
  EXPECT_NE(Predicate::U8InSet(ColId::kLShipmode, 0x18).ToString().find(
                "l_shipmode in mask 0x18"),
            std::string::npos);
}

// --- Validation errors -----------------------------------------------------

TEST(PlanValidationTest, RejectsEmptyPlanAndBadRoot) {
  EXPECT_FALSE(Plan::FromNodes({}, 0, "empty").ok());

  PlanBuilder b;
  const int li = b.Scan(TableId::kLineitem);
  EXPECT_FALSE(b.Build(li + 7, "oob").ok());
  // Root must be an aggregate, not a bare scan.
  Result<Plan> bare = b.Build(li, "bare");
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.status().message().find("root must be an aggregate"),
            std::string::npos);
}

TEST(PlanValidationTest, RejectsUnboundPredicateColumn) {
  PlanBuilder b;
  // c_custkey does not belong to lineitem.
  const int li = b.Scan(TableId::kLineitem,
                        {Predicate::U32Range(ColId::kCCustkey, 0, 1)});
  Result<Plan> plan = b.Build(b.Aggregate(li, AggSpec::CountStar()), "t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unbound column"),
            std::string::npos)
      << plan.status().ToString();
}

TEST(PlanValidationTest, RejectsPredicateTypeMismatch) {
  PlanBuilder b;
  // l_shipmode is a u8 code column; a u32 range over it is a type error.
  const int li = b.Scan(TableId::kLineitem,
                        {Predicate::U32Range(ColId::kLShipmode, 0, 1)});
  Result<Plan> plan = b.Build(b.Aggregate(li, AggSpec::CountStar()), "t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("type mismatch"),
            std::string::npos);
}

TEST(PlanValidationTest, RejectsUnboundJoinKey) {
  PlanBuilder b;
  const int cust = b.Scan(TableId::kCustomer);
  const int ord = b.Scan(TableId::kOrders);
  // Build key p_partkey belongs to neither child.
  const int j = b.Join(cust, ord, ColId::kPPartkey, ColId::kOCustkey);
  Result<Plan> plan = b.Build(b.Aggregate(j, AggSpec::CountStar()), "t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("build key"), std::string::npos);
}

TEST(PlanValidationTest, RejectsCyclicJoinTree) {
  // Hand-built node list: the aggregate's input is a join whose probe
  // child is the aggregate itself — a cycle no builder sequence can
  // produce, which is exactly why FromNodes must catch it.
  std::vector<PlanNode> nodes(3);
  nodes[0].kind = PlanNode::Kind::kScan;
  nodes[0].table = TableId::kCustomer;
  nodes[1].kind = PlanNode::Kind::kJoin;
  nodes[1].build = 0;
  nodes[1].probe = 2;  // points back up at the root
  nodes[1].build_key = ColId::kCCustkey;
  nodes[1].probe_key = ColId::kOCustkey;
  nodes[2].kind = PlanNode::Kind::kAggregate;
  nodes[2].input = 1;
  nodes[2].agg = AggSpec::CountStar();
  Result<Plan> plan = Plan::FromNodes(std::move(nodes), 2, "cycle");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("cyclic plan"), std::string::npos)
      << plan.status().ToString();
}

TEST(PlanValidationTest, RejectsSharedSubtree) {
  PlanBuilder b;
  const int li = b.Scan(TableId::kOrders);
  // Same node as both build and probe: plans are trees, not DAGs.
  const int j = b.Join(li, li, ColId::kOOrderkey, ColId::kOOrderkey);
  Result<Plan> plan = b.Build(b.Aggregate(j, AggSpec::CountStar()), "dag");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("multiple parents"),
            std::string::npos);
}

TEST(PlanValidationTest, RejectsUnionOverMixedTables) {
  PlanBuilder b;
  const int li = b.Scan(TableId::kLineitem);
  const int ord = b.Scan(TableId::kOrders);
  const int u = b.UnionAll({li, ord});
  Result<Plan> plan = b.Build(b.Aggregate(u, AggSpec::CountStar()), "t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("share one output table"),
            std::string::npos);
}

TEST(PlanValidationTest, RejectsOversizedGroupFanout) {
  PlanBuilder b;
  const int li = b.Scan(TableId::kLineitem);
  const int agg = b.Aggregate(
      li, AggSpec::GroupSum2(ColId::kLQuantity, ColId::kLReturnflag, 65,
                             ColId::kLLinestatus, 2));
  EXPECT_FALSE(b.Build(agg, "wide").ok());

  PlanBuilder b2;
  const int li2 = b2.Scan(TableId::kLineitem);
  // 9 x 8 = 72 > 64 combined groups.
  const int agg2 = b2.Aggregate(
      li2, AggSpec::GroupSum2(ColId::kLQuantity, ColId::kLReturnflag, 9,
                              ColId::kLLinestatus, 8));
  Result<Plan> plan = b2.Build(agg2, "wide2");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("exceeds 64 groups"),
            std::string::npos);
}

TEST(PlanValidationTest, RejectsBadOutputMap) {
  PlanBuilder b;
  const int li = b.Scan(TableId::kLineitem);
  // output_map has 2 slots but num_groups is 5.
  const int agg = b.Aggregate(
      li, AggSpec::GroupCountViaFk(ColId::kOOrderpriority, ColId::kLOrderkey,
                                   tpch::kNumOrderPriorities, {0, 1}));
  Result<Plan> plan = b.Build(agg, "map");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("output_map"), std::string::npos);
}

TEST(PlanValidationTest, RejectsAggregateOverWrongTable) {
  PlanBuilder b;
  const int ord = b.Scan(TableId::kOrders);
  // Summing a lineitem column over an orders scan is unbound.
  const int agg = b.Aggregate(
      ord, AggSpec::SumProduct(ColId::kLExtendedprice, ColId::kLDiscount));
  Result<Plan> plan = b.Build(agg, "t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unbound column"),
            std::string::npos);
}

// --- Catalog integrity -----------------------------------------------------

TEST(CatalogTest, EveryEntryIsValidAndOrdered) {
  const std::vector<CatalogEntry>& entries = Catalog();
  ASSERT_EQ(entries.size(), 9u);
  int last = 0;
  for (const CatalogEntry& e : entries) {
    EXPECT_TRUE(e.plan.valid()) << e.name;
    EXPECT_GT(e.query_number, last) << "catalog must be number-ordered";
    last = e.query_number;
    EXPECT_FALSE(std::string(e.name).empty());
    EXPECT_FALSE(std::string(e.description).empty());
    EXPECT_FALSE(e.plan.ToText().empty());
  }
}

TEST(CatalogTest, FindQueryCoversExactlyTheCatalog) {
  for (int q : {1, 3, 6, 10, 12, 19, kQueryQ5Multiway, kQueryQ5Grouped,
                kQueryQ12Grouped}) {
    EXPECT_NE(FindQuery(q), nullptr) << q;
  }
  // Q5's real TPC-H number is deliberately absent: the plan-only variant
  // lives at kQueryQ5Multiway.
  EXPECT_EQ(FindQuery(5), nullptr);
  EXPECT_EQ(FindQuery(0), nullptr);
  EXPECT_EQ(FindQuery(-3), nullptr);
  EXPECT_EQ(FindQuery(1000), nullptr);
  EXPECT_STREQ(FindQuery(kQueryQ12Grouped)->name, "Q12G");
  EXPECT_STREQ(FindQuery(kQueryQ5Multiway)->name, "Q5M");
  EXPECT_STREQ(FindQuery(kQueryQ5Grouped)->name, "Q5G");
}

TEST(CatalogTest, SharedConstantsStayInSync) {
  // The predicate constants the oracles in tpch/queries.cc use must be
  // the ones the catalog plans embed (single source of truth).
  const CatalogEntry* q1 = FindQuery(1);
  ASSERT_NE(q1, nullptr);
  const PlanNode& scan = q1->plan.node(0);
  ASSERT_EQ(scan.kind, PlanNode::Kind::kScan);
  ASSERT_EQ(scan.predicates.size(), 1u);
  EXPECT_EQ(scan.predicates[0].hi, tpch::kQ1Cutoff);
}

}  // namespace
}  // namespace sgxb::plan
