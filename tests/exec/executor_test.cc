#include "exec/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "exec/ws_deque.h"

namespace sgxb {
namespace {

using exec::Executor;
using exec::WsDeque;

// --- WsDeque ------------------------------------------------------------

TEST(WsDequeTest, OwnerPopsLifo) {
  WsDeque d(8);
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(d.Push(i));
  EXPECT_EQ(d.ApproxSize(), 5u);
  uint64_t v;
  for (uint64_t i = 5; i-- > 0;) {
    ASSERT_TRUE(d.PopBottom(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(d.PopBottom(&v));
}

TEST(WsDequeTest, ThievesStealFifo) {
  WsDeque d(8);
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(d.Push(i));
  uint64_t v;
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(d.TrySteal(&v), WsDeque::Steal::kGot);
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(d.TrySteal(&v), WsDeque::Steal::kEmpty);
}

TEST(WsDequeTest, FullRingRejectsPush) {
  WsDeque d(8);
  size_t pushed = 0;
  while (d.Push(pushed)) ++pushed;
  EXPECT_EQ(pushed, 8u);
  uint64_t v;
  ASSERT_TRUE(d.PopBottom(&v));
  EXPECT_TRUE(d.Push(99));
}

TEST(WsDequeTest, OwnerVersusThievesEveryItemExactlyOnce) {
  // The executor's actual usage pattern: the ring is seeded once, then the
  // owner pops the bottom while several thieves raid the top.
  constexpr uint64_t kItems = 20000;
  constexpr int kThieves = 3;
  WsDeque d(kItems);
  for (uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(d.Push(i));

  std::vector<std::atomic<uint32_t>> taken(kItems);
  for (auto& t : taken) t = 0;

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // owner
    uint64_t v;
    while (d.PopBottom(&v)) taken[v].fetch_add(1);
  });
  for (int i = 0; i < kThieves; ++i) {
    threads.emplace_back([&] {
      uint64_t v;
      for (;;) {
        WsDeque::Steal s = d.TrySteal(&v);
        if (s == WsDeque::Steal::kGot) {
          taken[v].fetch_add(1);
        } else if (s == WsDeque::Steal::kEmpty) {
          // The owner may still repopulate nothing (seed-once usage), so
          // empty means done for this test.
          break;
        }
        // kLost: retry.
      }
    });
  }
  for (auto& t : threads) t.join();

  for (uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[i].load(), 1u) << "item " << i;
  }
}

// --- Executor gangs -----------------------------------------------------

TEST(ExecutorTest, PoolIsReusedAcrossGangs) {
  Executor& ex = Executor::Default();
  constexpr int kThreads = 4;
  // Warm the pool, then check that repeated gangs create no new threads.
  ASSERT_TRUE(ex.RunGang(kThreads, [](int) { return Status::OK(); }).ok());
  const uint64_t spawned = ex.stats().pool_threads_spawned;
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> hits{0};
    ASSERT_TRUE(ex.RunGang(kThreads, [&](int) {
                    hits.fetch_add(1);
                    return Status::OK();
                  }).ok());
    ASSERT_EQ(hits.load(), kThreads);
  }
  EXPECT_EQ(ex.stats().pool_threads_spawned, spawned);
  EXPECT_GE(ex.stats().workers, kThreads);
}

TEST(ExecutorTest, FirstErrorByTidWins) {
  Executor& ex = Executor::Default();
  Status st = ex.RunGang(8, [](int tid) {
    if (tid == 2) return Status::InvalidArgument("tid 2 failed");
    if (tid == 5) return Status::Internal("tid 5 failed");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("tid 2"), std::string::npos);
}

TEST(ExecutorTest, ThrowingWorkerBecomesStatusNotTerminate) {
  Status st = ParallelRun(4, [](int tid) {
    if (tid == 1) throw std::runtime_error("boom in worker");
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom in worker"), std::string::npos);
}

TEST(ExecutorTest, PlacementPublishesNumaNode) {
  ThreadPlacement placement;
  placement.node_of_thread = [](int tid) { return tid % 2; };
  std::vector<int> seen(6, -1);
  ASSERT_TRUE(ParallelRun(6, [&](int tid) {
                seen[tid] = CurrentNumaNode();
              }, placement).ok());
  for (int tid = 0; tid < 6; ++tid) EXPECT_EQ(seen[tid], tid % 2);
}

TEST(ExecutorTest, NestedGangFallsBackAndStillWorks) {
  std::atomic<int> inner_hits{0};
  std::atomic<int> saw_worker_flag{0};
  Status st = ParallelRun(2, [&](int) {
    saw_worker_flag.fetch_add(Executor::OnWorkerThread() ? 1 : 0);
    Status inner = ParallelRun(3, [&](int) { inner_hits.fetch_add(1); });
    ASSERT_TRUE(inner.ok());
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner_hits.load(), 2 * 3);
  // The outer gang ran on pool workers (unless another test left spawn
  // mode on, which none does).
  EXPECT_EQ(saw_worker_flag.load(), 2);
}

TEST(ExecutorTest, SpawnModeStillCapturesFailures) {
  exec::SetDispatchMode(exec::DispatchMode::kSpawn);
  std::atomic<int> hits{0};
  EXPECT_TRUE(ParallelRun(4, [&](int) { hits.fetch_add(1); }).ok());
  EXPECT_EQ(hits.load(), 4);
  Status st = ParallelRun(4, [](int tid) {
    if (tid == 3) throw std::runtime_error("spawn boom");
  });
  exec::SetDispatchMode(exec::DispatchMode::kPool);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("spawn boom"), std::string::npos);
}

TEST(ExecutorTest, RejectsNonPositiveGangSize) {
  Executor& ex = Executor::Default();
  EXPECT_FALSE(ex.RunGang(0, [](int) { return Status::OK(); }).ok());
  EXPECT_FALSE(ex.RunGang(-2, [](int) { return Status::OK(); }).ok());
}

// --- Gang leasing -------------------------------------------------------

TEST(ExecutorTest, OverlappingGangsWithBarriersDoNotDeadlock) {
  Executor& ex = Executor::Default();
  ex.EnsurePoolSize(4);
  // Each gang's members rendezvous at an intra-gang barrier. With the old
  // anchored dispatch (every gang queued at workers 0..n-1) overlapping
  // gangs could interleave members and deadlock at the barrier; leasing
  // gives each gang 2 exclusive workers.
  auto gang_with_barrier = [&ex] {
    for (int round = 0; round < 25; ++round) {
      std::atomic<int> arrived{0};
      Status st = ex.RunGang(2, [&](int) {
        arrived.fetch_add(1);
        while (arrived.load() < 2) {
          std::this_thread::yield();
        }
        return Status::OK();
      });
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  };
  std::thread a(gang_with_barrier);
  std::thread b(gang_with_barrier);
  a.join();
  b.join();
}

TEST(ExecutorTest, ContendedGangsRecordWaits) {
  Executor& ex = Executor::Default();
  ex.EnsurePoolSize(2);
  const int workers = ex.stats().workers;
  // Enough wide overlapping gangs that some must queue for leases.
  const uint64_t waits_before = ex.stats().gang_waits;
  std::vector<std::thread> submitters;
  for (int i = 0; i < 4; ++i) {
    submitters.emplace_back([&ex, workers] {
      for (int round = 0; round < 10; ++round) {
        ASSERT_TRUE(ex.RunGang(workers, [](int) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                        return Status::OK();
                      }).ok());
      }
    });
  }
  for (auto& t : submitters) t.join();
  // 40 full-pool gangs from 4 threads: all but the very first dispatch of
  // each burst had to wait for the previous lease to release.
  EXPECT_GT(ex.stats().gang_waits, waits_before);
}

TEST(ExecutorTest, GrantedGangSizeHonorsWorkerShareCap) {
  Executor& ex = Executor::Default();
  ASSERT_EQ(ex.max_workers_per_gang(), 0);
  ex.SetMaxWorkersPerGang(2);
  EXPECT_LE(ex.GrantedGangSize(16), 2);
  EXPECT_EQ(ex.GrantedGangSize(1), 1);
  ex.SetMaxWorkersPerGang(0);
  EXPECT_GE(ex.GrantedGangSize(4), 1);
}

TEST(ExecutorTest, GrantedGangSizeShrinksUnderContention) {
  Executor& ex = Executor::Default();
  const int dp = Executor::DefaultParallelism();
  if (dp < 2) GTEST_SKIP() << "needs >= 2 logical cores";
  ex.EnsurePoolSize(4);
  const int uncontended = ex.GrantedGangSize(4);
  EXPECT_EQ(uncontended, 4);
  // Hold a gang on the pool, then ask for a full-parallelism grant: the
  // fair share with one active gang is at most half the capacity.
  std::atomic<bool> release{false};
  std::atomic<int> running{0};
  std::thread holder([&] {
    ASSERT_TRUE(ex.RunGang(2, [&](int) {
                    running.fetch_add(1);
                    while (!release.load()) std::this_thread::yield();
                    return Status::OK();
                  }).ok());
  });
  while (running.load() < 2) std::this_thread::yield();
  const int capacity = std::max(ex.stats().workers, dp);
  const int contended = ex.GrantedGangSize(capacity);
  release.store(true);
  holder.join();
  EXPECT_LE(contended, std::max(1, capacity / 2));
  EXPECT_GE(contended, 1);
}

TEST(ExecutorTest, StatsExposeLeaseState) {
  Executor& ex = Executor::Default();
  ex.EnsurePoolSize(2);
  std::atomic<bool> release{false};
  std::atomic<int> running{0};
  std::thread holder([&] {
    ASSERT_TRUE(ex.RunGang(2, [&](int) {
                    running.fetch_add(1);
                    while (!release.load()) std::this_thread::yield();
                    return Status::OK();
                  }).ok());
  });
  while (running.load() < 2) std::this_thread::yield();
  exec::ExecutorStats mid = ex.stats();
  EXPECT_GE(mid.active_gangs, 1);
  EXPECT_GE(mid.busy_workers, 2);
  release.store(true);
  holder.join();
  exec::ExecutorStats after = ex.stats();
  EXPECT_EQ(after.active_gangs, 0);
  EXPECT_EQ(after.busy_workers, 0);
}

// --- ParallelFor --------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t total : {0u, 1u, 63u, 64u, 1000u, 4097u}) {
    for (size_t grain : {1u, 7u, 64u, 5000u}) {
      std::vector<std::atomic<uint32_t>> hits(total);
      for (auto& h : hits) h = 0;
      ParallelForOptions opts;
      opts.num_threads = 4;
      ASSERT_TRUE(ParallelFor(
                      total, grain,
                      [&](Range r, int) {
                        for (size_t i = r.begin; i < r.end; ++i) {
                          hits[i].fetch_add(1);
                        }
                      },
                      opts)
                      .ok());
      for (size_t i = 0; i < total; ++i) {
        ASSERT_EQ(hits[i].load(), 1u)
            << "index " << i << " total " << total << " grain " << grain;
      }
    }
  }
}

TEST(ParallelForTest, LaneIdsAreWithinBounds) {
  ParallelForOptions opts;
  opts.num_threads = 3;
  std::atomic<int> bad{0};
  ASSERT_TRUE(ParallelFor(
                  1000, 10,
                  [&](Range, int lane) {
                    if (lane < 0 || lane >= 3) bad.fetch_add(1);
                  },
                  opts)
                  .ok());
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelForTest, WorkerScopeWrapsEachLaneOnce) {
  ParallelForOptions opts;
  opts.num_threads = 4;
  std::atomic<int> scopes{0};
  std::atomic<int> morsels{0};
  ASSERT_TRUE(ParallelFor(
                  256, 4,
                  [&](Range, int) { morsels.fetch_add(1); },
                  [&] {
                    ParallelForOptions o = opts;
                    o.worker_scope = [&](int, const std::function<void()>& run) {
                      scopes.fetch_add(1);
                      run();
                    };
                    return o;
                  }())
                  .ok());
  EXPECT_EQ(morsels.load(), 256 / 4);
  EXPECT_LE(scopes.load(), 4);
  EXPECT_GE(scopes.load(), 1);
}

TEST(ParallelForTest, ThrowingMorselSurfacesAsStatus) {
  ParallelForOptions opts;
  opts.num_threads = 2;
  Status st = ParallelFor(
      100, 10,
      [&](Range r, int) {
        if (r.begin == 50) throw std::runtime_error("morsel boom");
      },
      opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("morsel boom"), std::string::npos);
}

TEST(ParallelForTest, ZeroGrainIsClampedToOne) {
  std::atomic<int> hits{0};
  ASSERT_TRUE(ParallelFor(10, 0, [&](Range r, int) {
                hits.fetch_add(static_cast<int>(r.size()));
              }).ok());
  EXPECT_EQ(hits.load(), 10);
}

TEST(ParallelForTest, CountsMorselsInStats) {
  Executor& ex = Executor::Default();
  const uint64_t before = ex.stats().morsels;
  ParallelForOptions opts;
  opts.num_threads = 2;
  ASSERT_TRUE(ParallelFor(64, 8, [](Range, int) {}, opts).ok());
  EXPECT_EQ(ex.stats().morsels, before + 64 / 8);
}

}  // namespace
}  // namespace sgxb
