#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "common/parallel.h"
#include "sgx/queue_factory.h"
#include "sync/lockfree_queue.h"
#include "sync/locked_queue.h"
#include "sync/task_queue.h"

namespace sgxb {
namespace {

// Parameterized over all queue kinds: the TaskQueue contract must hold
// for the lock-free, mutex, and spin-lock implementations alike.
class TaskQueueTest
    : public ::testing::TestWithParam<TaskQueueKind> {
 protected:
  std::unique_ptr<TaskQueue> Make(size_t capacity = 1024) {
    return sgx::MakeTaskQueue(GetParam(), capacity,
                              ExecutionSetting::kPlainCpu);
  }
};

TEST_P(TaskQueueTest, FifoSingleThread) {
  auto q = Make();
  for (uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(q->Push(i));
  EXPECT_EQ(q->ApproxSize(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(q->TryPop(&v));
    EXPECT_EQ(v, i);
  }
  uint64_t v;
  EXPECT_FALSE(q->TryPop(&v));
}

TEST_P(TaskQueueTest, EmptyPopsFalse) {
  auto q = Make();
  uint64_t v;
  EXPECT_FALSE(q->TryPop(&v));
  q->Push(9);
  ASSERT_TRUE(q->TryPop(&v));
  EXPECT_EQ(v, 9u);
  EXPECT_FALSE(q->TryPop(&v));
}

TEST_P(TaskQueueTest, MpmcDeliversEveryTaskExactlyOnce) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr uint64_t kPerProducer = 5000;
  auto q = Make(kProducers * kPerProducer + 16);

  std::vector<std::atomic<uint32_t>> delivered(kProducers * kPerProducer);
  for (auto& d : delivered) d = 0;
  std::atomic<uint64_t> consumed{0};

  ParallelRun(kProducers + kConsumers, [&](int tid) {
    if (tid < kProducers) {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q->Push(tid * kPerProducer + i));
      }
    } else {
      uint64_t v;
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (q->TryPop(&v)) {
          delivered[v].fetch_add(1);
          consumed.fetch_add(1);
        }
      }
    }
  });

  for (size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i].load(), 1u) << "task " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TaskQueueTest,
    ::testing::Values(TaskQueueKind::kLockFree, TaskQueueKind::kMutex,
                      TaskQueueKind::kSpinLock),
    [](const ::testing::TestParamInfo<TaskQueueKind>& info) {
      switch (info.param) {
        case TaskQueueKind::kLockFree:
          return "LockFree";
        case TaskQueueKind::kMutex:
          return "Mutex";
        case TaskQueueKind::kSpinLock:
          return "SpinLock";
      }
      return "Unknown";
    });

TEST(LockFreeTaskQueueTest, FullQueueRejectsPush) {
  LockFreeTaskQueue q(16);  // rounded to 16
  size_t pushed = 0;
  while (q.Push(pushed)) ++pushed;
  EXPECT_EQ(pushed, 16u);
  uint64_t v;
  ASSERT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(q.Push(99));  // slot freed
}

TEST(LockFreeTaskQueueTest, CapacityRoundsUpToPowerOfTwo) {
  LockFreeTaskQueue q(17);
  size_t pushed = 0;
  while (q.Push(pushed) && pushed < 1000) ++pushed;
  EXPECT_EQ(pushed, 32u);
}

TEST(QueueFactoryTest, MutexKindUsesSgxMutexInsideEnclave) {
  // Both must satisfy the queue contract; the enclave variant charges
  // transitions under contention, which queue_test does not assert here
  // (covered by sgx_mutex_test).
  auto native = sgx::MakeTaskQueue(TaskQueueKind::kMutex, 16,
                                   ExecutionSetting::kPlainCpu);
  auto enclave = sgx::MakeTaskQueue(TaskQueueKind::kMutex, 16,
                                    ExecutionSetting::kSgxDataInEnclave);
  native->Push(1);
  enclave->Push(2);
  uint64_t v;
  ASSERT_TRUE(native->TryPop(&v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(enclave->TryPop(&v));
  EXPECT_EQ(v, 2u);
}

TEST(TaskQueueKindTest, Names) {
  EXPECT_STREQ(TaskQueueKindToString(TaskQueueKind::kLockFree),
               "lock-free");
  EXPECT_STREQ(TaskQueueKindToString(TaskQueueKind::kMutex), "mutex");
  EXPECT_STREQ(TaskQueueKindToString(TaskQueueKind::kSpinLock),
               "spinlock");
}

}  // namespace
}  // namespace sgxb
