// MPMC stress tests for the synchronization primitives the executor and
// the RHO task queue depend on. These are correctness tests under real
// contention (many producers/consumers, ring wrap-around, short critical
// sections), kept at sizes that stay fast even with SGX cost injection on.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "sgx/sgx_mutex.h"
#include "sync/lockfree_queue.h"

namespace sgxb {
namespace {

TEST(LockFreeQueueStressTest, WrapAroundDeliversEveryItemExactlyOnce) {
  // Capacity far below the item count forces the ring to wrap many times
  // and producers to retry on full — the regime where a broken sequence
  // number check would double-deliver or drop.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 2000;
  constexpr uint64_t kTotal = kProducers * kPerProducer;
  LockFreeTaskQueue q(64);

  std::vector<std::atomic<uint32_t>> delivered(kTotal);
  for (auto& d : delivered) d = 0;
  std::atomic<uint64_t> consumed{0};

  Status st = ParallelRun(kProducers + kConsumers, [&](int tid) {
    if (tid < kProducers) {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t item = tid * kPerProducer + i;
        while (!q.Push(item)) {
          // Full: consumers are draining; yield so this works even on a
          // single-core (or sanitizer-slowed) host.
          std::this_thread::yield();
        }
      }
    } else {
      uint64_t v;
      while (consumed.load(std::memory_order_relaxed) < kTotal) {
        if (q.TryPop(&v)) {
          delivered[v].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  ASSERT_TRUE(st.ok()) << st.message();

  for (uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(delivered[i].load(), 1u) << "item " << i;
  }
  uint64_t leftover;
  EXPECT_FALSE(q.TryPop(&leftover));
}

TEST(LockFreeQueueStressTest, AlternatingFillDrainKeepsFifoPerProducer) {
  // Single producer, single consumer, tiny ring: order must be preserved
  // across every wrap.
  LockFreeTaskQueue q(16);
  constexpr uint64_t kItems = 8000;
  std::atomic<uint64_t> out_of_order{0};

  Status st = ParallelRun(2, [&](int tid) {
    if (tid == 0) {
      for (uint64_t i = 0; i < kItems; ++i) {
        while (!q.Push(i)) std::this_thread::yield();
      }
    } else {
      uint64_t expect = 0, v;
      while (expect < kItems) {
        if (q.TryPop(&v)) {
          if (v != expect) out_of_order.fetch_add(1);
          ++expect;
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(out_of_order.load(), 0u);
}

TEST(SgxMutexStressTest, NoLostIncrementsUnderContention) {
  // Short critical sections from many threads: the park/wake path (with
  // its injected transition costs) must still be a correct mutex. Counts
  // are modest because contended locks pay real injected delays here.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  sgx::SgxSdkMutex mu;
  int64_t counter = 0;  // protected by mu

  Status st = ParallelRun(kThreads, [&](int) {
    for (int i = 0; i < kPerThread; ++i) {
      std::lock_guard<sgx::SgxSdkMutex> lock(mu);
      ++counter;
    }
  });
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(SgxMutexStressTest, TryLockNeverDoubleAcquires) {
  constexpr int kThreads = 6;
  sgx::SgxSdkMutex mu;
  std::atomic<int> holders{0};
  std::atomic<int> violations{0};
  std::atomic<int> acquisitions{0};

  Status st = ParallelRun(kThreads, [&](int) {
    for (int i = 0; i < 500; ++i) {
      if (mu.try_lock()) {
        if (holders.fetch_add(1) != 0) violations.fetch_add(1);
        acquisitions.fetch_add(1);
        holders.fetch_sub(1);
        mu.unlock();
      }
    }
  });
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(acquisitions.load(), 0);
}

}  // namespace
}  // namespace sgxb
