#include "sync/spinlock.h"

#include <gtest/gtest.h>

#include <mutex>

#include "common/parallel.h"

namespace sgxb {
namespace {

template <typename Lock>
void CounterStressTest() {
  Lock lock;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  ParallelRun(kThreads, [&](int) {
    for (int i = 0; i < kIters; ++i) {
      std::lock_guard<Lock> guard(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  CounterStressTest<SpinLock>();
}

TEST(TicketLockTest, MutualExclusionUnderContention) {
  CounterStressTest<TicketLock>();
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace sgxb
