#include "scan/column_scan.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sgx/transition.h"

namespace sgxb::scan {
namespace {

Column<uint8_t> MakeColumn(size_t n, uint64_t seed = 5) {
  auto col = Column<uint8_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  return col;
}

uint64_t Oracle(const Column<uint8_t>& col, uint8_t lo, uint8_t hi) {
  uint64_t count = 0;
  for (size_t i = 0; i < col.num_values(); ++i) {
    count += col[i] >= lo && col[i] <= hi;
  }
  return count;
}

class ColumnScanThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(ColumnScanThreadsTest, BitVectorScanCorrectAcrossThreadCounts) {
  const size_t n = 100001;  // deliberately not a multiple of 64
  Column<uint8_t> col = MakeColumn(n);
  auto bv = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();

  ScanConfig cfg;
  cfg.lo = 32;
  cfg.hi = 200;
  cfg.num_threads = GetParam();
  auto result = RunBitVectorScan(col, &bv, cfg);
  ASSERT_TRUE(result.ok());
  uint64_t expected = Oracle(col, 32, 200);
  EXPECT_EQ(result.value().matches, expected);
  EXPECT_EQ(bv.CountOnes(), expected);
  // Spot-check bit positions.
  for (size_t i = 0; i < n; i += 997) {
    EXPECT_EQ(bv.Get(i), col[i] >= 32 && col[i] <= 200) << i;
  }
}

TEST_P(ColumnScanThreadsTest, RowIdScanCorrectAcrossThreadCounts) {
  const size_t n = 64000;
  Column<uint8_t> col = MakeColumn(n, 11);
  std::vector<uint64_t> ids(n);
  uint64_t count = 0;

  ScanConfig cfg;
  cfg.lo = 100;
  cfg.hi = 150;
  cfg.num_threads = GetParam();
  auto result = RunRowIdScan(col, ids.data(), &count, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(count, Oracle(col, 100, 150));
  EXPECT_EQ(result.value().matches, count);
  // Ids must be valid, in-range, strictly increasing within the result.
  for (uint64_t k = 0; k < count; ++k) {
    ASSERT_LT(ids[k], n);
    EXPECT_TRUE(col[ids[k]] >= 100 && col[ids[k]] <= 150);
    if (k > 0) EXPECT_LT(ids[k - 1], ids[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ColumnScanThreadsTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(ColumnScanTest, RepetitionsProduceSameResult) {
  Column<uint8_t> col = MakeColumn(5000);
  auto bv = BitVector::Allocate(5000, MemoryRegion::kUntrusted).value();
  ScanConfig cfg;
  cfg.lo = 0;
  cfg.hi = 127;
  cfg.repetitions = 5;
  auto result = RunBitVectorScan(col, &bv, cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches, Oracle(col, 0, 127));
  EXPECT_EQ(result.value().profile.seq_read_bytes, 5000u * 5);
}

TEST(ColumnScanTest, EnclaveSettingEntersEnclave) {
  // The scan is morsel-driven (~256 KiB morsels): a tiny column is a
  // single morsel, so only one lane runs and only one thread pays an
  // enclave transition — extra requested threads no longer enter just to
  // find no work.
  sgx::ResetTransitionStats();
  Column<uint8_t> col = MakeColumn(1000);
  auto bv = BitVector::Allocate(1000, MemoryRegion::kUntrusted).value();
  ScanConfig cfg;
  cfg.setting = ExecutionSetting::kSgxDataInEnclave;
  cfg.num_threads = 2;
  ASSERT_TRUE(RunBitVectorScan(col, &bv, cfg).ok());
  EXPECT_EQ(sgx::GetTransitionStats().ecalls, 1u);  // one morsel, one lane

  // With at least one morsel per lane, every lane enters exactly once (not
  // once per morsel): one ECall per thread, as on hardware.
  constexpr size_t kBig = 600 * 1024;  // > 2 morsels
  sgx::ResetTransitionStats();
  Column<uint8_t> big = MakeColumn(kBig);
  auto big_bv = BitVector::Allocate(kBig, MemoryRegion::kUntrusted).value();
  ASSERT_TRUE(RunBitVectorScan(big, &big_bv, cfg).ok());
  EXPECT_EQ(sgx::GetTransitionStats().ecalls, 2u);  // one per lane
}

TEST(ColumnScanTest, RejectsInvalidConfig) {
  Column<uint8_t> col = MakeColumn(100);
  auto bv = BitVector::Allocate(100, MemoryRegion::kUntrusted).value();
  ScanConfig cfg;
  cfg.num_threads = 0;
  EXPECT_FALSE(RunBitVectorScan(col, &bv, cfg).ok());
  cfg.num_threads = 1;
  cfg.repetitions = 0;
  EXPECT_FALSE(RunBitVectorScan(col, &bv, cfg).ok());
  auto small = BitVector::Allocate(10, MemoryRegion::kUntrusted).value();
  ScanConfig ok_cfg;
  EXPECT_FALSE(RunBitVectorScan(col, &small, ok_cfg).ok());
}

TEST(ColumnScanTest, SelectivityControlsWriteVolume) {
  // The Fig. 14 mechanism: row-id output writes 8 bytes per match, so the
  // profile's write volume must track selectivity.
  Column<uint8_t> col = MakeColumn(10000);
  std::vector<uint64_t> ids(10000);
  uint64_t count = 0;
  ScanConfig narrow;
  narrow.lo = 0;
  narrow.hi = 25;  // ~10%
  auto r1 = RunRowIdScan(col, ids.data(), &count, narrow).value();
  ScanConfig wide;
  wide.lo = 0;
  wide.hi = 255;  // 100%
  auto r2 = RunRowIdScan(col, ids.data(), &count, wide).value();
  EXPECT_GT(r2.profile.seq_write_bytes, 7 * r1.profile.seq_write_bytes);
  EXPECT_EQ(r2.profile.seq_write_bytes, 10000u * 8);
}

}  // namespace
}  // namespace sgxb::scan
