#include "scan/scan_kernels.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"

namespace sgxb::scan {
namespace {

std::vector<uint8_t> MakeData(size_t n, uint64_t seed = 3) {
  Xoshiro256 rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& v : data) v = static_cast<uint8_t>(rng.Next());
  return data;
}

// Oracle: straightforward per-element evaluation.
uint64_t OracleCount(const std::vector<uint8_t>& data, uint8_t lo,
                     uint8_t hi) {
  uint64_t count = 0;
  for (uint8_t v : data) count += (v >= lo && v <= hi);
  return count;
}

// Parameterized over (kernel level, size, lo, hi) — every kernel must
// agree with the scalar oracle on counts, bit positions, and row ids.
using ScanParam = std::tuple<SimdLevel, size_t, int, int>;

class ScanKernelTest : public ::testing::TestWithParam<ScanParam> {};

TEST_P(ScanKernelTest, BitVectorMatchesOracle) {
  auto [level, n, lo_i, hi_i] = GetParam();
  uint8_t lo = static_cast<uint8_t>(lo_i);
  uint8_t hi = static_cast<uint8_t>(hi_i);
  auto data = MakeData(n);
  std::vector<uint64_t> words((n + 63) / 64 + 1, 0xdeadbeefdeadbeefull);

  BitVectorKernel kernel = PickBitVectorKernel(level);
  uint64_t count = kernel(data.data(), n, lo, hi, words.data());
  EXPECT_EQ(count, OracleCount(data, lo, hi));
  for (size_t i = 0; i < n; ++i) {
    bool expected = data[i] >= lo && data[i] <= hi;
    bool actual = (words[i / 64] >> (i % 64)) & 1;
    ASSERT_EQ(actual, expected) << "bit " << i;
  }
}

TEST_P(ScanKernelTest, RowIdsMatchOracle) {
  auto [level, n, lo_i, hi_i] = GetParam();
  uint8_t lo = static_cast<uint8_t>(lo_i);
  uint8_t hi = static_cast<uint8_t>(hi_i);
  auto data = MakeData(n, /*seed=*/7);
  std::vector<uint64_t> ids(n + 1, 0);

  RowIdKernel kernel = PickRowIdKernel(level);
  uint64_t count = kernel(data.data(), n, lo, hi, /*base=*/1000,
                          ids.data());
  EXPECT_EQ(count, OracleCount(data, lo, hi));
  uint64_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (data[i] >= lo && data[i] <= hi) {
      ASSERT_EQ(ids[k], 1000 + i) << "match " << k;
      ++k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ScanKernelTest,
    ::testing::Combine(
        ::testing::Values(SimdLevel::kScalar, SimdLevel::kAvx2,
                          SimdLevel::kAvx512),
        ::testing::Values<size_t>(0, 1, 63, 64, 65, 127, 1000, 4096,
                                  100000),
        ::testing::Values(0, 50),
        ::testing::Values(50, 127, 255)),
    [](const ::testing::TestParamInfo<ScanParam>& info) {
      SimdLevel level = std::get<0>(info.param);
      const char* name = level == SimdLevel::kAvx512 ? "Avx512"
                         : level == SimdLevel::kAvx2 ? "Avx2"
                                                     : "Scalar";
      return std::string(name) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_lo" +
             std::to_string(std::get<2>(info.param)) + "_hi" +
             std::to_string(std::get<3>(info.param));
    });

TEST(ScanKernelCompressTest, CompressStoreMatchesOracle) {
  // The VPCOMPRESSQ materialization must agree with the scalar kernel on
  // counts, values, and order, for sizes exercising blocks and tails.
  for (size_t n : {0u, 63u, 64u, 65u, 129u, 10000u}) {
    auto data = MakeData(n, n + 1);
    std::vector<uint64_t> ids_ref(n + 1, 0), ids_cmp(n + 1, 0);
    uint64_t c_ref =
        ScanRowIdsScalar(data.data(), n, 40, 180, 77, ids_ref.data());
    uint64_t c_cmp = ScanRowIdsAvx512Compress(data.data(), n, 40, 180,
                                              77, ids_cmp.data());
    ASSERT_EQ(c_cmp, c_ref) << n;
    for (uint64_t k = 0; k < c_ref; ++k) {
      ASSERT_EQ(ids_cmp[k], ids_ref[k]) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ScanKernelDispatchTest, BestLevelIsRunnable) {
  SimdLevel best = BestSupportedSimdLevel();
  auto data = MakeData(1024);
  std::vector<uint64_t> words(17, 0);
  BitVectorKernel kernel = PickBitVectorKernel(best);
  uint64_t count = kernel(data.data(), 1024, 10, 200, words.data());
  EXPECT_EQ(count, OracleCount(data, 10, 200));
}

TEST(ScanKernelDispatchTest, RequestAboveHostFallsBack) {
  // Requesting AVX-512 must return a callable kernel even on hosts
  // without it (it silently falls back).
  BitVectorKernel kernel = PickBitVectorKernel(SimdLevel::kAvx512);
  ASSERT_NE(kernel, nullptr);
}

TEST(ScanKernelEdgeTest, EmptyRangeSelectsNothing) {
  auto data = MakeData(1000);
  std::vector<uint64_t> words(17, 0);
  // lo > hi: empty predicate range.
  uint64_t count =
      ScanBitVectorScalar(data.data(), 1000, 200, 100, words.data());
  EXPECT_EQ(count, 0u);
}

TEST(ScanKernelEdgeTest, FullRangeSelectsEverything) {
  auto data = MakeData(1000);
  std::vector<uint64_t> ids(1000);
  uint64_t count = PickRowIdKernel(BestSupportedSimdLevel())(
      data.data(), 1000, 0, 255, 0, ids.data());
  EXPECT_EQ(count, 1000u);
  EXPECT_EQ(ids[999], 999u);
}

}  // namespace
}  // namespace sgxb::scan
