#include "scan/packed_column.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace sgxb::scan {
namespace {

Column<uint32_t> MakeColumn(size_t n, uint32_t limit, uint64_t seed = 5) {
  auto col =
      Column<uint32_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(seed);
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint32_t>(rng.NextBounded(limit + 1));
  }
  return col;
}

TEST(PackedColumnTest, RejectsBadWidths) {
  auto col = MakeColumn(10, 100);
  EXPECT_FALSE(PackedColumn::Pack(col, 0).ok());
  EXPECT_FALSE(PackedColumn::Pack(col, 32).ok());
}

TEST(PackedColumnTest, RejectsOverflowingValues) {
  auto col = MakeColumn(10, 100);
  col[5] = 1u << 10;
  auto r = PackedColumn::Pack(col, 10);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("row 5"), std::string::npos);
}

class PackedWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedWidthTest, PackRoundTripsEveryValue) {
  const int w = GetParam();
  const uint32_t limit =
      w == 31 ? 0x7fffffffu : (1u << w) - 1;
  auto col = MakeColumn(4999, limit, w);
  PackedColumn packed = PackedColumn::Pack(col, w).value();
  EXPECT_EQ(packed.num_values(), col.num_values());
  EXPECT_EQ(packed.bit_width(), w);
  for (size_t i = 0; i < col.num_values(); ++i) {
    ASSERT_EQ(packed.Get(i), col[i]) << "w=" << w << " i=" << i;
  }
  // Compression: w+1 bits per value vs 32.
  if (w <= 14) EXPECT_GT(packed.CompressionRatio(), 1.9);
}

TEST_P(PackedWidthTest, ParallelScanMatchesScalarOracle) {
  const int w = GetParam();
  const uint32_t limit = w == 31 ? 0x7fffffffu : (1u << w) - 1;
  auto col = MakeColumn(10007, limit, 100 + w);
  PackedColumn packed = PackedColumn::Pack(col, w).value();

  Xoshiro256 rng(w);
  for (int round = 0; round < 5; ++round) {
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(limit + 1));
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(limit + 1));
    uint32_t lo = std::min(a, b), hi = std::max(a, b);

    auto bv_fast =
        BitVector::Allocate(col.num_values(), MemoryRegion::kUntrusted)
            .value();
    auto bv_ref =
        BitVector::Allocate(col.num_values(), MemoryRegion::kUntrusted)
            .value();
    uint64_t fast = PackedScan(packed, lo, hi, &bv_fast);
    uint64_t ref = PackedScanScalar(packed, lo, hi, &bv_ref);
    ASSERT_EQ(fast, ref) << "w=" << w << " [" << lo << "," << hi << "]";
    for (size_t word = 0; word < bv_ref.num_words(); ++word) {
      ASSERT_EQ(bv_fast.words()[word], bv_ref.words()[word])
          << "w=" << w << " word " << word;
    }
    // And against the unpacked truth.
    uint64_t expected = 0;
    for (size_t i = 0; i < col.num_values(); ++i) {
      expected += col[i] >= lo && col[i] <= hi;
    }
    ASSERT_EQ(fast, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedWidthTest,
                         ::testing::Values(1, 2, 3, 7, 8, 13, 15, 21, 31));

TEST(PackedScanTest, EmptyAndFullPredicates) {
  auto col = MakeColumn(1000, 255);
  PackedColumn packed = PackedColumn::Pack(col, 8).value();
  auto bv =
      BitVector::Allocate(1000, MemoryRegion::kUntrusted).value();
  EXPECT_EQ(PackedScan(packed, 0, 255, &bv), 1000u);
  EXPECT_EQ(bv.CountOnes(), 1000u);
  EXPECT_EQ(PackedScan(packed, 200, 100, &bv), 0u);  // lo > hi
}

TEST(PackedScanTest, SingleValueColumn) {
  auto col = Column<uint32_t>::Allocate(1, MemoryRegion::kUntrusted)
                 .value();
  col[0] = 42;
  PackedColumn packed = PackedColumn::Pack(col, 7).value();
  auto bv = BitVector::Allocate(1, MemoryRegion::kUntrusted).value();
  EXPECT_EQ(PackedScan(packed, 42, 42, &bv), 1u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_EQ(PackedScan(packed, 43, 50, &bv), 0u);
}

TEST(FrameOfReferenceTest, PicksWidthFromRangeNotMagnitude) {
  // Date-like values: absolute magnitude needs 23 bits, range needs 12.
  auto col = Column<uint32_t>::Allocate(5000, MemoryRegion::kUntrusted)
                 .value();
  Xoshiro256 rng(17);
  for (size_t i = 0; i < col.num_values(); ++i) {
    col[i] = 8035200u + static_cast<uint32_t>(rng.NextBounded(2557));
  }
  col[0] = 8035200u;     // pin the frame to a known minimum
  col[1] = 8035200u + 2556u;  // ...and the range to a known maximum
  PackedColumn packed = PackedColumn::PackFrameOfReference(col).value();
  EXPECT_EQ(packed.bit_width(), 12);
  EXPECT_EQ(packed.frame_min(), 8035200u);
  for (size_t i = 0; i < col.num_values(); ++i) {
    ASSERT_EQ(packed.Get(i), col[i]) << i;
  }
  // 13-bit fields, 4 per word: 16 effective bits per value vs 32 raw.
  EXPECT_GT(packed.CompressionRatio(), 1.9);
}

TEST(FrameOfReferenceTest, ConstantColumnPacksToOneBit) {
  auto col = Column<uint32_t>::Allocate(100, MemoryRegion::kUntrusted)
                 .value();
  for (size_t i = 0; i < col.num_values(); ++i) col[i] = 123456789u;
  PackedColumn packed = PackedColumn::PackFrameOfReference(col).value();
  EXPECT_EQ(packed.bit_width(), 1);
  for (size_t i = 0; i < col.num_values(); ++i) {
    ASSERT_EQ(packed.Get(i), 123456789u);
  }
}

TEST(FrameOfReferenceTest, ScanMatchesScalarOracleInAbsoluteDomain) {
  const uint32_t base = 19980101u;
  auto col = Column<uint32_t>::Allocate(10007, MemoryRegion::kUntrusted)
                 .value();
  Xoshiro256 rng(23);
  for (size_t i = 0; i < col.num_values(); ++i) {
    col[i] = base + static_cast<uint32_t>(rng.NextBounded(5000));
  }
  PackedColumn packed = PackedColumn::PackFrameOfReference(col).value();

  struct Case {
    uint32_t lo, hi;
  };
  const Case cases[] = {
      {base + 100, base + 2000},  // interior range
      {0, base - 1},              // entirely below the frame
      {base + 5000, 0xffffffffu},  // hi above the frame, clamped
      {0, 0xffffffffu},            // everything
      {base + 777, base + 777},    // point query
  };
  for (const Case& c : cases) {
    auto bv_fast =
        BitVector::Allocate(col.num_values(), MemoryRegion::kUntrusted)
            .value();
    auto bv_ref =
        BitVector::Allocate(col.num_values(), MemoryRegion::kUntrusted)
            .value();
    uint64_t fast = PackedScan(packed, c.lo, c.hi, &bv_fast);
    uint64_t ref = PackedScanScalar(packed, c.lo, c.hi, &bv_ref);
    ASSERT_EQ(fast, ref) << "[" << c.lo << "," << c.hi << "]";
    for (size_t word = 0; word < bv_ref.num_words(); ++word) {
      ASSERT_EQ(bv_fast.words()[word], bv_ref.words()[word]);
    }
    uint64_t expected = 0;
    for (size_t i = 0; i < col.num_values(); ++i) {
      expected += col[i] >= c.lo && col[i] <= c.hi;
    }
    ASSERT_EQ(fast, expected);
  }
}

TEST(FrameOfReferenceTest, RawPointerOverloadMatchesColumnOverload) {
  auto col = MakeColumn(997, (1u << 16) - 1, 31);
  PackedColumn a = PackedColumn::PackFrameOfReference(col).value();
  PackedColumn b =
      PackedColumn::PackFrameOfReference(col.data(), col.num_values())
          .value();
  ASSERT_EQ(a.num_values(), b.num_values());
  ASSERT_EQ(a.bit_width(), b.bit_width());
  ASSERT_EQ(a.frame_min(), b.frame_min());
  for (size_t i = 0; i < a.num_values(); ++i) {
    ASSERT_EQ(a.Get(i), b.Get(i));
  }
}

TEST(PackedScanTest, TailWordHandled) {
  // 13-bit fields: 4 per word; 10 values = 2 full words + tail of 2.
  auto col = MakeColumn(10, (1u << 13) - 1, 3);
  PackedColumn packed = PackedColumn::Pack(col, 13).value();
  auto bv = BitVector::Allocate(10, MemoryRegion::kUntrusted).value();
  uint64_t count = PackedScan(packed, 0, (1u << 13) - 1, &bv);
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(bv.CountOnes(), 10u);
}

}  // namespace
}  // namespace sgxb::scan
