#include "scan/pmbw.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace sgxb::scan {
namespace {

TEST(PointerChainTest, FormsSingleCycle) {
  for (size_t n : {2u, 3u, 16u, 1000u}) {
    std::vector<uint64_t> arr(n);
    MakePointerChain(arr.data(), n, /*seed=*/9);
    // Following the chain from 0 must visit every element exactly once
    // before returning to 0 (single cycle).
    std::vector<bool> visited(n, false);
    uint64_t idx = 0;
    for (size_t step = 0; step < n; ++step) {
      ASSERT_LT(idx, n);
      ASSERT_FALSE(visited[idx]) << "cycle shorter than n at " << n;
      visited[idx] = true;
      idx = arr[idx];
    }
    EXPECT_EQ(idx, 0u) << "not a cycle for n=" << n;
  }
}

TEST(PointerChaseTest, LandsWhereTheChainSays) {
  std::vector<uint64_t> arr(128);
  MakePointerChain(arr.data(), arr.size(), 4);
  uint64_t manual = 0;
  for (int s = 0; s < 57; ++s) manual = arr[manual];
  EXPECT_EQ(RunPointerChase(arr.data(), 57), manual);
}

TEST(PointerChaseTest, FullCycleReturnsToStart) {
  std::vector<uint64_t> arr(64);
  MakePointerChain(arr.data(), arr.size(), 12);
  EXPECT_EQ(RunPointerChase(arr.data(), 64), 0u);
}

TEST(RandomWritesTest, WritesLandInsideArray) {
  std::vector<uint64_t> arr(1024, 0xffffffffffffffffull);
  RandomWrites(arr.data(), arr.size(), 4096, /*seed=*/3);
  // The LCG writes the loop counter; every touched slot must now hold a
  // value < 4096 and at least one slot must have been touched.
  size_t touched = 0;
  for (uint64_t v : arr) {
    if (v != 0xffffffffffffffffull) {
      EXPECT_LT(v, 4096u);
      ++touched;
    }
  }
  EXPECT_GT(touched, 512u);
}

TEST(LinearKernelsTest, Read64ComputesSum) {
  std::vector<uint64_t> arr(1000);
  std::iota(arr.begin(), arr.end(), 0);
  uint64_t expected = 999 * 1000 / 2;
  EXPECT_EQ(LinearRead64(arr.data(), arr.size()), expected);
}

TEST(LinearKernelsTest, Read512MatchesRead64) {
  std::vector<uint64_t> arr(1003);  // tail not multiple of 8
  std::iota(arr.begin(), arr.end(), 17);
  EXPECT_EQ(LinearRead512(arr.data(), arr.size()),
            LinearRead64(arr.data(), arr.size()));
}

TEST(LinearKernelsTest, Write64FillsArray) {
  std::vector<uint64_t> arr(100, 0);
  LinearWrite64(arr.data(), arr.size(), 0xabcdefull);
  for (uint64_t v : arr) EXPECT_EQ(v, 0xabcdefull);
}

TEST(LinearKernelsTest, Write512FillsArrayIncludingTail) {
  std::vector<uint64_t> arr(107, 0);
  LinearWrite512(arr.data(), arr.size(), 42);
  for (uint64_t v : arr) EXPECT_EQ(v, 42u);
}

}  // namespace
}  // namespace sgxb::scan
