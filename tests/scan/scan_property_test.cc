// Randomized property tests for the scan stack: all kernels must agree
// with each other and with a scalar oracle for arbitrary sizes and
// bounds, and the two output formats (bit vector, row ids) must encode
// the same result set.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "scan/column_scan.h"
#include "scan/scan_kernels.h"

namespace sgxb::scan {
namespace {

class ScanFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScanFuzzTest, KernelsAgreeOnRandomInputs) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 30; ++round) {
    const size_t n = 1 + rng.NextBounded(20000);
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    uint8_t lo = std::min(a, b);
    uint8_t hi = std::max(a, b);
    if (round % 5 == 0) std::swap(lo, hi);  // sometimes empty predicate

    std::vector<uint8_t> data(n);
    for (auto& v : data) v = static_cast<uint8_t>(rng.Next());

    std::vector<uint64_t> words_scalar(n / 64 + 1, 0);
    std::vector<uint64_t> words_simd(n / 64 + 1, 0);
    uint64_t c_scalar = ScanBitVectorScalar(data.data(), n, lo, hi,
                                            words_scalar.data());
    uint64_t c_simd = PickBitVectorKernel(BestSupportedSimdLevel())(
        data.data(), n, lo, hi, words_simd.data());
    ASSERT_EQ(c_scalar, c_simd) << "round " << round;
    ASSERT_EQ(words_scalar, words_simd) << "round " << round;

    std::vector<uint64_t> ids(n);
    uint64_t c_ids = PickRowIdKernel(BestSupportedSimdLevel())(
        data.data(), n, lo, hi, 0, ids.data());
    ASSERT_EQ(c_ids, c_scalar);
    // Row ids must be exactly the set bits of the bit vector, in order.
    uint64_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((words_scalar[i / 64] >> (i % 64)) & 1) {
        ASSERT_EQ(ids[k], i);
        ++k;
      }
    }
    ASSERT_EQ(k, c_ids);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanFuzzTest,
                         ::testing::Values(11, 22, 33));

// Tail handling: every SIMD level must agree with the scalar kernels for
// every partial tail length (n % 64 in {1..63}), a nonzero row-id base,
// and the degenerate single-value predicate lo == hi. These are exactly
// the cases a masked-epilogue bug would corrupt while the bulk path stays
// correct.
TEST(ScanTailPropertyTest, AllLevelsAgreeOnPartialTailWords) {
  Xoshiro256 rng(4242);
  constexpr uint8_t kLo = 100;
  constexpr uint8_t kHi = 100;  // lo == hi: single-value predicate
  constexpr uint64_t kBase = 1ull << 33;  // nonzero, past 32-bit ids
  const std::vector<SimdLevel> levels = {SimdLevel::kScalar,
                                         SimdLevel::kAvx2,
                                         SimdLevel::kAvx512};
  for (size_t tail = 1; tail < 64; ++tail) {
    const size_t n = 3 * 64 + tail;  // three full words + partial tail
    std::vector<uint8_t> data(n);
    for (auto& v : data) {
      // Dense hits around the predicate value so the tail word is
      // non-trivial with high probability.
      v = static_cast<uint8_t>(98 + rng.NextBounded(5));
    }

    std::vector<uint64_t> ref_words(n / 64 + 1, 0);
    const uint64_t ref_count =
        ScanBitVectorScalar(data.data(), n, kLo, kHi, ref_words.data());
    std::vector<uint64_t> ref_ids(n);
    const uint64_t ref_id_count = ScanRowIdsScalar(
        data.data(), n, kLo, kHi, kBase, ref_ids.data());
    ASSERT_EQ(ref_count, ref_id_count) << "tail " << tail;

    for (SimdLevel level : levels) {
      // PickXxxKernel falls back to the widest level the host supports,
      // so requesting kAvx512 is safe everywhere.
      std::vector<uint64_t> words(n / 64 + 1, 0);
      const uint64_t count = PickBitVectorKernel(level)(
          data.data(), n, kLo, kHi, words.data());
      EXPECT_EQ(count, ref_count)
          << SimdLevelToString(level) << " tail " << tail;
      EXPECT_EQ(words, ref_words)
          << SimdLevelToString(level) << " tail " << tail;

      std::vector<uint64_t> ids(n);
      const uint64_t id_count = PickRowIdKernel(level)(
          data.data(), n, kLo, kHi, kBase, ids.data());
      ASSERT_EQ(id_count, ref_id_count)
          << SimdLevelToString(level) << " tail " << tail;
      for (uint64_t k = 0; k < id_count; ++k) {
        ASSERT_EQ(ids[k], ref_ids[k])
            << SimdLevelToString(level) << " tail " << tail << " id " << k;
      }
    }
  }
}

TEST(ScanDriverPropertyTest, BitVectorAndRowIdsEncodeSameResult) {
  Xoshiro256 rng(99);
  const size_t n = 123457;
  auto col =
      Column<uint8_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  for (int threads : {1, 4}) {
    auto bv = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
    ScanConfig cfg;
    cfg.lo = 77;
    cfg.hi = 179;
    cfg.num_threads = threads;
    auto bv_result = RunBitVectorScan(col, &bv, cfg).value();

    std::vector<uint64_t> ids(n);
    uint64_t count = 0;
    auto id_result = RunRowIdScan(col, ids.data(), &count, cfg).value();

    ASSERT_EQ(bv_result.matches, id_result.matches);
    ASSERT_EQ(bv.CountOnes(), count);
    for (uint64_t k = 0; k < count; ++k) {
      ASSERT_TRUE(bv.Get(ids[k])) << k;
    }
  }
}

TEST(ScanDriverPropertyTest, ThreadCountsProduceIdenticalOutput) {
  Xoshiro256 rng(123);
  const size_t n = 99991;
  auto col =
      Column<uint8_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  auto bv1 = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
  auto bv8 = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
  ScanConfig cfg1;
  cfg1.lo = 10;
  cfg1.hi = 240;
  ScanConfig cfg8 = cfg1;
  cfg8.num_threads = 8;
  RunBitVectorScan(col, &bv1, cfg1).value();
  RunBitVectorScan(col, &bv8, cfg8).value();
  for (size_t w = 0; w < bv1.num_words(); ++w) {
    ASSERT_EQ(bv1.words()[w], bv8.words()[w]) << w;
  }
}

}  // namespace
}  // namespace sgxb::scan
