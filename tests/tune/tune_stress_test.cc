// Adaptive-controller concurrency suite: meant to run under TSan (see
// CI's tsan job). Overlapping served queries all read and write the
// process-global tuning cache and the in-flight counter; these tests
// hammer those paths directly and through the serving layer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tune/tune.h"

namespace sgxb::tune {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

const tpch::TpchDb& Db() {
  static const tpch::TpchDb db = [] {
    tpch::GenConfig cfg;
    cfg.scale_factor = 0.01;
    return tpch::Generate(cfg).value();
  }();
  return db;
}

uint64_t Reference(int query) {
  switch (query) {
    case 3:
      return tpch::ReferenceQ3(Db());
    case 6:
      return tpch::ReferenceQ6(Db());
    case 10:
      return tpch::ReferenceQ10(Db());
    case 12:
      return tpch::ReferenceQ12(Db());
    case 19:
      return tpch::ReferenceQ19(Db());
  }
  return 0;
}

uint64_t Observed(const tpch::QueryResult& r, int query) {
  return query == 6 ? r.group_counts.at(0) : r.count;
}

KnobSetting Prior() {
  KnobSetting p;
  p.fused = true;
  p.probe_mode = exec::ProbeMode::kGroupPrefetch;
  p.probe_batch = 16;
  p.morsel_grain = 32 * 1024;
  return p;
}

// Many threads, few keys: every Decide/Observe interleaving lands on
// shared Entry state. The invariant after the storm: total recorded runs
// equals total observations, and every arm is a valid candidate.
TEST(TuneStressTest, ConcurrentDecideObserveKeepsArmsConsistent) {
  TuningCache cache;
  const KnobSetting prior = Prior();
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  constexpr int kKeys = 3;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        WorkloadKey key;
        key.query = "Qstress" + std::to_string((t + i) % kKeys);
        key.sf_bucket = 16;
        key.concurrency_band = 1;
        TuningCache::Source source;
        const KnobSetting pick = cache.Decide(key, prior, &source);
        cache.Observe(key, pick, 1000.0 + 10.0 * ((t * 31 + i) % 7));
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::vector<KnobSetting> candidates = CandidateArms(prior);
  int total_runs = 0;
  for (int k = 0; k < kKeys; ++k) {
    WorkloadKey key;
    key.query = "Qstress" + std::to_string(k);
    key.sf_bucket = 16;
    key.concurrency_band = 1;
    const auto arms = cache.Arms(key);
    ASSERT_EQ(arms.size(), candidates.size()) << k;
    for (const auto& arm : arms) {
      bool known = false;
      for (const auto& c : candidates) known = known || c == arm.setting;
      EXPECT_TRUE(known) << arm.setting.Key();
      EXPECT_GE(arm.ewma_ns, 0.0);
      total_runs += arm.runs;
    }
  }
  EXPECT_EQ(total_runs, kThreads * kItersPerThread);
}

// The process-global cache with concurrent per-query tuners: each
// QueryTuner Decide()s at construction and Observe()s at Finish(), the
// exact shape the planner drives under serving.
TEST(TuneStressTest, ConcurrentQueryTunersOnGlobalCache) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        AddInflight(1);
        WorkloadKey key;
        key.query = "Qglobal" + std::to_string(i % 2);
        key.sf_bucket = 40;  // keys no other suite touches
        key.concurrency_band = ConcurrencyBand(InflightQueries());
        QueryTuner tuner(key, Prior(), /*obs_domain=*/-1);
        tuner.Finish(500.0 + t + i);
        AddInflight(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Balanced in-flight accounting after the storm.
  EXPECT_GE(InflightQueries(), 0);
}

TEST(TuneStressTest, InflightCounterBalancesUnderContention) {
  const int before = InflightQueries();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        AddInflight(1);
        AddInflight(-1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(InflightQueries(), before);
}

// End-to-end: an adaptive serving mix. Repeated rounds drive each
// workload key through exploration into exploitation while queries
// overlap; every result must still match the sequential reference.
TEST(TuneStressTest, AdaptiveServingMixMatchesReference) {
  ScopedEnv adaptive("SGXBENCH_ADAPTIVE", "1");
  serve::ServerOptions opts;
  opts.max_inflight = 4;
  serve::QueryServer server(Db(), opts);
  const int kQueries[] = {3, 6, 10, 12, 19};
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;

  std::vector<std::thread> clients;
  std::atomic<int> wrong{0};
  std::atomic<uint64_t> decisions{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int query = kQueries[(c + i) % 5];
        serve::QueryRequest req;
        req.query_number = query;
        req.config.num_threads = 2;
        serve::QueryResponse r = server.Submit(req).get();
        if (!r.status.ok() ||
            Observed(r.result, query) != Reference(query)) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
        if (r.status.ok() && r.result.tuning.active) {
          decisions.fetch_add(r.result.tuning.decisions,
                              std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();
  EXPECT_EQ(wrong.load(), 0);
  // The controller actually ran: every successful query decided once.
  EXPECT_GE(decisions.load(),
            static_cast<uint64_t>(kClients * kPerClient));
}

}  // namespace
}  // namespace sgxb::tune
