// Adaptive controller unit tests (src/tune/, docs/adaptive.md): knob
// serialization, workload keying, deterministic golden-trace decisions,
// two-arm convergence, cache persistence, feedback-frame deltas, and the
// wave-controller guardrails driving a real morsel pipeline.

#include "tune/tune.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "mem/enclave_resource.h"
#include "obs/feedback.h"
#include "obs/metrics.h"

namespace sgxb::tune {
namespace {

KnobSetting DefaultPrior() {
  KnobSetting p;
  p.fused = true;
  p.probe_mode = exec::ProbeMode::kGroupPrefetch;
  p.probe_batch = 16;
  p.morsel_grain = 32 * 1024;
  return p;
}

WorkloadKey KeyFor(const std::string& query) {
  WorkloadKey k;
  k.query = query;
  k.sf_bucket = 16;
  k.concurrency_band = 0;
  return k;
}

TEST(KnobSettingTest, KeyRoundTripsThroughParse) {
  KnobSetting s;
  s.fused = true;
  s.probe_mode = exec::ProbeMode::kAmac;
  s.probe_batch = 12;
  s.morsel_grain = 16 * 1024;
  auto parsed = KnobSetting::Parse(s.Key());
  ASSERT_TRUE(parsed.has_value()) << s.Key();
  EXPECT_TRUE(*parsed == s);

  KnobSetting t = DefaultPrior();
  t.probe_mode = exec::ProbeMode::kTupleAtATime;
  parsed = KnobSetting::Parse(t.Key());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == t);
}

TEST(KnobSettingTest, ParseRejectsGarbage) {
  EXPECT_FALSE(KnobSetting::Parse("").has_value());
  EXPECT_FALSE(KnobSetting::Parse("fused=1 probe=warp batch=8 grain=1024")
                   .has_value());
  EXPECT_FALSE(KnobSetting::Parse("fused=1 probe=gp batch=0 grain=1024")
                   .has_value());
  EXPECT_FALSE(KnobSetting::Parse("fused=1 probe=gp batch=8 grain=0")
                   .has_value());
  EXPECT_FALSE(KnobSetting::Parse("fused=1 probe=gp batch=9999 grain=64")
                   .has_value());
}

TEST(WorkloadKeyTest, KeySeparatesQuerySfAndBand) {
  WorkloadKey a = KeyFor("Q3");
  WorkloadKey b = KeyFor("Q3");
  EXPECT_EQ(a.Key(), b.Key());
  b.sf_bucket = 20;
  EXPECT_NE(a.Key(), b.Key());
  b = KeyFor("Q3");
  b.concurrency_band = 2;
  EXPECT_NE(a.Key(), b.Key());
  b = KeyFor("Q6");
  EXPECT_NE(a.Key(), b.Key());
}

TEST(WorkloadKeyTest, SfBucketIsLog2) {
  EXPECT_EQ(SfBucket(0), 0);
  EXPECT_EQ(SfBucket(1), 0);
  EXPECT_EQ(SfBucket(2), 1);
  EXPECT_EQ(SfBucket(60000), 15);
  EXPECT_EQ(SfBucket(uint64_t{1} << 22), 22);
}

TEST(ConcurrencyBandTest, BandsAreCoarseAndMonotonic) {
  EXPECT_EQ(ConcurrencyBand(0), 0);
  EXPECT_EQ(ConcurrencyBand(1), 0);
  EXPECT_EQ(ConcurrencyBand(2), 1);
  EXPECT_EQ(ConcurrencyBand(4), 1);
  EXPECT_EQ(ConcurrencyBand(5), 2);
  EXPECT_EQ(ConcurrencyBand(16), 2);
  EXPECT_EQ(ConcurrencyBand(17), 3);
  EXPECT_EQ(ConcurrencyBand(1000), 3);
}

TEST(CandidateArmsTest, PriorIsFirstAndArmsAreDistinct) {
  const KnobSetting prior = DefaultPrior();
  const std::vector<KnobSetting> arms = CandidateArms(prior);
  ASSERT_GE(arms.size(), 4u);
  EXPECT_TRUE(arms[0] == prior);
  for (size_t i = 0; i < arms.size(); ++i) {
    for (size_t j = i + 1; j < arms.size(); ++j) {
      EXPECT_FALSE(arms[i] == arms[j]) << i << " vs " << j;
    }
    EXPECT_GE(arms[i].probe_batch, 1);
    EXPECT_LE(arms[i].probe_batch, exec::kMaxProbeWidth);
    EXPECT_GE(arms[i].morsel_grain, kMinMorselGrain);
    EXPECT_LE(arms[i].morsel_grain, kMaxMorselGrain);
  }
}

// Golden trace: decisions from a fresh cache are a pure function of
// (key, prior, observation sequence) — two caches fed identically must
// pick identical settings in identical order.
TEST(TuningCacheTest, DecisionTraceIsDeterministic) {
  const KnobSetting prior = DefaultPrior();
  const WorkloadKey key = KeyFor("Qdet");
  std::vector<std::string> traces[2];
  for (auto& trace : traces) {
    TuningCache cache;
    for (int run = 0; run < 12; ++run) {
      TuningCache::Source source;
      const KnobSetting pick = cache.Decide(key, prior, &source);
      trace.push_back(pick.Key());
      // Deterministic synthetic wall time: arm quality is a fixed
      // function of the setting.
      const double wall =
          1000.0 + (pick.fused ? 0 : 500) + 10.0 * pick.probe_batch;
      cache.Observe(key, pick, wall);
    }
  }
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(TuningCacheTest, FirstDecisionIsThePrior) {
  TuningCache cache;
  const KnobSetting prior = DefaultPrior();
  TuningCache::Source source;
  const KnobSetting pick = cache.Decide(KeyFor("Qprior"), prior, &source);
  EXPECT_TRUE(pick == prior);
  EXPECT_EQ(source, TuningCache::Source::kPrior);
}

// Two-arm convergence: when one arm is consistently faster, the cache
// settles on it after the exploration pass and stays there.
TEST(TuningCacheTest, ConvergesToTheFasterArm) {
  TuningCache cache;
  const KnobSetting prior = DefaultPrior();
  const WorkloadKey key = KeyFor("Qconv");
  const size_t num_arms = CandidateArms(prior).size();

  // AMAC runs 4x faster than everything else in this synthetic world.
  auto wall_of = [](const KnobSetting& s) {
    return s.probe_mode == exec::ProbeMode::kAmac ? 250.0 : 1000.0;
  };
  // Exploration: each arm tried exactly once.
  for (size_t i = 0; i < num_arms; ++i) {
    TuningCache::Source source;
    const KnobSetting pick = cache.Decide(key, prior, &source);
    EXPECT_NE(source, TuningCache::Source::kCache) << i;
    cache.Observe(key, pick, wall_of(pick));
  }
  // Exploitation: every subsequent decision is the fast arm.
  for (int run = 0; run < 5; ++run) {
    TuningCache::Source source;
    const KnobSetting pick = cache.Decide(key, prior, &source);
    EXPECT_EQ(source, TuningCache::Source::kCache) << run;
    EXPECT_EQ(pick.probe_mode, exec::ProbeMode::kAmac) << run;
    cache.Observe(key, pick, wall_of(pick));
  }
}

// ...and converges within a few executions even counting exploration:
// the arm count bounds time-to-converge.
TEST(TuningCacheTest, ExplorationPassIsShort) {
  EXPECT_LE(CandidateArms(DefaultPrior()).size(), 8u);
}

TEST(TuningCacheTest, ObserveUpdatesEwmaAndTracksDrift) {
  TuningCache cache;
  const KnobSetting prior = DefaultPrior();
  const WorkloadKey key = KeyFor("Qewma");
  cache.Decide(key, prior, nullptr);
  cache.Observe(key, prior, 1000.0);
  auto arms = cache.Arms(key);
  ASSERT_FALSE(arms.empty());
  EXPECT_DOUBLE_EQ(arms[0].ewma_ns, 1000.0);
  EXPECT_EQ(arms[0].runs, 1);
  // Drift: the workload got slower; the EWMA moves half-way per run.
  cache.Observe(key, prior, 2000.0);
  arms = cache.Arms(key);
  EXPECT_DOUBLE_EQ(arms[0].ewma_ns, 1500.0);
  EXPECT_EQ(arms[0].runs, 2);
}

TEST(TuningCacheTest, SaveLoadRoundTripsLearnedState) {
  std::string path = "/tmp/sgxb_tune_cache_";
  path += std::to_string(static_cast<long>(::getpid()));
  path += ".txt";

  const KnobSetting prior = DefaultPrior();
  const WorkloadKey key = KeyFor("Qpersist");
  TuningCache first;
  const size_t num_arms = CandidateArms(prior).size();
  for (size_t i = 0; i < num_arms; ++i) {
    const KnobSetting pick = first.Decide(key, prior, nullptr);
    first.Observe(key, pick,
                  pick.probe_mode == exec::ProbeMode::kAmac ? 100.0 : 900.0);
  }
  ASSERT_TRUE(first.Save(path));

  TuningCache second;
  ASSERT_TRUE(second.Load(path));
  std::remove(path.c_str());

  // The reloaded cache skips straight to exploitation with the same
  // winner — learned settings survive the process boundary.
  TuningCache::Source source;
  const KnobSetting pick = second.Decide(key, prior, &source);
  EXPECT_EQ(source, TuningCache::Source::kCache);
  EXPECT_EQ(pick.probe_mode, exec::ProbeMode::kAmac);

  const auto a = first.Arms(key);
  const auto b = second.Arms(key);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].setting == b[i].setting) << i;
    EXPECT_DOUBLE_EQ(a[i].ewma_ns, b[i].ewma_ns) << i;
    EXPECT_EQ(a[i].runs, b[i].runs) << i;
  }
}

TEST(TuningCacheTest, LoadOfMissingFileFailsCleanly) {
  TuningCache cache;
  EXPECT_FALSE(cache.Load("/tmp/sgxb_tune_cache_never_written.txt"));
  const KnobSetting prior = DefaultPrior();
  TuningCache::Source source;
  cache.Decide(KeyFor("Qcold"), prior, &source);
  EXPECT_EQ(source, TuningCache::Source::kPrior);
}

TEST(FeedbackFrameTest, SamplerReturnsDeltasNotTotals) {
  obs::Registry& reg = obs::Registry::Global();
  obs::Counter* tuples = reg.GetCounter(obs::kCtrProbeTuples);
  obs::Counter* matches = reg.GetCounter(obs::kCtrProbeMatches);

  obs::FrameSampler sampler(-1);
  tuples->Add(100);
  matches->Add(25);
  obs::FeedbackFrame f1 = sampler.Sample();
  EXPECT_GE(f1.probe_tuples, 100u);
  EXPECT_GE(f1.probe_matches, 25u);
  EXPECT_GT(f1.ProbeHitRate(), 0.0);

  // A second window sees only what happened after the first Sample().
  obs::FeedbackFrame f2 = sampler.Sample();
  EXPECT_EQ(f2.probe_tuples, 0u);
  EXPECT_EQ(f2.probe_matches, 0u);

  tuples->Add(10);
  obs::FeedbackFrame f3 = sampler.Sample();
  EXPECT_EQ(f3.probe_tuples, 10u);
}

TEST(FeedbackFrameTest, DerivedRatesHandleZeroDenominators) {
  obs::FeedbackFrame f;
  EXPECT_DOUBLE_EQ(f.ProbeHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(f.StealRatio(), 0.0);
  EXPECT_EQ(f.PagingPressure(), 0u);
  f.partitions_evicted = 2;
  f.storage_pin_waits = 3;
  EXPECT_EQ(f.PagingPressure(), 5u);
}

// The wave controller against a real RunMorselPipeline: with storage
// pressure counters firing between waves, the grain must shrink (and
// the live probe batch narrow); results stay exact.
TEST(QueryTunerTest, WaveControllerShrinksGrainUnderPressure) {
  const WorkloadKey key = KeyFor("Qwave");
  KnobSetting prior = DefaultPrior();
  prior.morsel_grain = 16 * 1024;
  QueryTuner tuner(key, prior, /*obs_domain=*/-1);
  const int start_batch = tuner.live().Batch();

  obs::Counter* pin_waits =
      obs::Registry::Global().GetCounter(obs::kCtrStoragePinWaits);

  exec::PipelineConfig pc;
  pc.name = "tune_test.pressure";
  pc.num_threads = 2;
  pc.grain = tuner.chosen().morsel_grain;
  pc.resource = mem::ResourceFor(ExecutionSetting::kPlainCpu, nullptr);
  pc.wave_controller = tuner.MakeWaveController();
  pc.wave_morsels = 1;

  const size_t total = 512 * 1024;
  std::atomic<uint64_t> rows_seen{0};
  Status s = exec::RunMorselPipeline(
      total, pc, [&](Range r, exec::PipelineLane&) -> Status {
        rows_seen.fetch_add(r.end - r.begin, std::memory_order_relaxed);
        // Every morsel stalls on the (simulated) buffer manager: the
        // controller must read this as paging pressure.
        pin_waits->Add(1);
        return Status::OK();
      });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(rows_seen.load(), total) << "re-graining must not drop rows";
  EXPECT_GT(tuner.switches(), 0u);
  EXPECT_LT(tuner.live().Batch(), start_batch);
}

TEST(QueryTunerTest, WaveControllerGrowsGrainWhenStealFree) {
  const WorkloadKey key = KeyFor("Qgrow");
  KnobSetting prior = DefaultPrior();
  prior.morsel_grain = kMinMorselGrain;
  QueryTuner tuner(key, prior, /*obs_domain=*/-1);

  // Steal-free, pressure-free frames: grain should ratchet up (morsels
  // counter moves, steal counter does not).
  obs::Counter* morsels =
      obs::Registry::Global().GetCounter(obs::kCtrExecMorsels);
  exec::WaveController controller = tuner.MakeWaveController();
  size_t grain = prior.morsel_grain;
  morsels->Add(64);
  const size_t next = controller(1, grain);
  ASSERT_NE(next, 0u);
  EXPECT_GT(next, grain);
  EXPECT_LE(next, kMaxMorselGrain);
}

TEST(QueryTunerTest, FinishFeedsTheGlobalCache) {
  WorkloadKey key = KeyFor("Qfinish");
  // Use a key no other test touches: the global cache is process-wide.
  key.sf_bucket = 33;
  const KnobSetting prior = DefaultPrior();
  QueryTuner tuner(key, prior, /*obs_domain=*/-1);
  tuner.Finish(1234.0);
  const auto arms = TuningCache::Global().Arms(key);
  ASSERT_FALSE(arms.empty());
  EXPECT_EQ(arms[0].runs, 1);
  EXPECT_DOUBLE_EQ(arms[0].ewma_ns, 1234.0);
}

TEST(InflightTest, AddAndReadBackIsBalanced) {
  const int before = InflightQueries();
  AddInflight(1);
  AddInflight(1);
  EXPECT_EQ(InflightQueries(), before + 2);
  AddInflight(-2);
  EXPECT_EQ(InflightQueries(), before);
}

TEST(AdaptiveEnabledTest, DefaultsOffAndFollowsTheKnob) {
  ::unsetenv("SGXBENCH_ADAPTIVE");
  EXPECT_FALSE(AdaptiveEnabled());
  ::setenv("SGXBENCH_ADAPTIVE", "1", 1);
  EXPECT_TRUE(AdaptiveEnabled());
  ::setenv("SGXBENCH_ADAPTIVE", "0", 1);
  EXPECT_FALSE(AdaptiveEnabled());
  ::unsetenv("SGXBENCH_ADAPTIVE");
}

}  // namespace
}  // namespace sgxb::tune
