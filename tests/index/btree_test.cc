#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"

namespace sgxb::index {
namespace {

using Entry = std::pair<uint32_t, uint32_t>;

std::vector<Entry> MakeSortedEntries(size_t n, int dup_every = 0,
                                     uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  std::vector<Entry> entries;
  entries.reserve(n);
  uint32_t key = 0;
  for (size_t i = 0; i < n; ++i) {
    key += 1 + static_cast<uint32_t>(rng.NextBounded(3));
    entries.emplace_back(key, static_cast<uint32_t>(i));
    if (dup_every > 0 && i % dup_every == 0) {
      // Insert a run of duplicates.
      for (int d = 0; d < 3 && entries.size() < n; ++d) {
        entries.emplace_back(key, static_cast<uint32_t>(++i));
      }
    }
  }
  entries.resize(std::min(entries.size(), n));
  return entries;
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Lookup(5).ok());
  EXPECT_EQ(tree.ForEachMatch(5, [](uint32_t) {}), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, BulkLoadRejectsUnsorted) {
  std::vector<Entry> entries = {{5, 0}, {3, 1}};
  EXPECT_FALSE(BTree::BulkLoad(entries).ok());
}

TEST(BTreeTest, BulkLoadSmall) {
  auto entries = MakeSortedEntries(10);
  BTree tree = BTree::BulkLoad(entries).value();
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (const auto& [k, v] : entries) {
    auto r = tree.Lookup(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(r.value(), v);
  }
}

class BTreeBulkLoadTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeBulkLoadTest, LookupEveryKeyAndInvariantsHold) {
  auto entries = MakeSortedEntries(GetParam());
  BTree tree = BTree::BulkLoad(entries).value();
  EXPECT_EQ(tree.size(), entries.size());
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants().ToString();
  for (size_t i = 0; i < entries.size(); i += 7) {
    auto r = tree.Lookup(entries[i].first);
    ASSERT_TRUE(r.ok()) << entries[i].first;
  }
  // Keys not present must miss.
  EXPECT_FALSE(tree.Lookup(0).ok());
  EXPECT_FALSE(tree.Lookup(0xffffffffu).ok());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeBulkLoadTest,
                         ::testing::Values(1, 2, 119, 120, 121, 1000,
                                           10000, 250000));

TEST(BTreeTest, BulkLoadWithDuplicates) {
  auto entries = MakeSortedEntries(5000, /*dup_every=*/10);
  BTree tree = BTree::BulkLoad(entries).value();
  ASSERT_TRUE(tree.CheckInvariants().ok());

  std::map<uint32_t, size_t> expected;
  for (const auto& [k, v] : entries) ++expected[k];
  for (const auto& [k, count] : expected) {
    size_t seen = tree.ForEachMatch(k, [](uint32_t) {});
    EXPECT_EQ(seen, count) << "key " << k;
  }
}

TEST(BTreeTest, InsertIntoEmpty) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(10, 100).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Lookup(10).value(), 100u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, ManyRandomInserts) {
  BTree tree;
  Xoshiro256 rng(77);
  std::map<uint32_t, size_t> expected;
  for (int i = 0; i < 50000; ++i) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(20000));
    ASSERT_TRUE(tree.Insert(key, i).ok());
    ++expected[key];
  }
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), 50000u);
  EXPECT_GT(tree.height(), 1);
  for (uint32_t key = 0; key < 20000; key += 97) {
    size_t count = tree.ForEachMatch(key, [](uint32_t) {});
    auto it = expected.find(key);
    EXPECT_EQ(count, it == expected.end() ? 0 : it->second) << key;
  }
}

TEST(BTreeTest, InsertsIntoBulkLoadedTree) {
  auto entries = MakeSortedEntries(10000);
  BTree tree = BTree::BulkLoad(entries).value();
  // Insert duplicates of existing keys and brand-new keys.
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(entries[i * 2].first, 999999).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.size(), entries.size() + 5000);
  size_t matches = tree.ForEachMatch(entries[0].first, [](uint32_t) {});
  EXPECT_EQ(matches, 2u);  // original + inserted duplicate
}

TEST(BTreeTest, ScanRange) {
  std::vector<Entry> entries;
  for (uint32_t k = 0; k < 1000; ++k) entries.emplace_back(k * 2, k);
  BTree tree = BTree::BulkLoad(entries).value();
  std::vector<uint32_t> keys;
  size_t n = tree.ScanRange(100, 200, [&](uint32_t k, uint32_t) {
    keys.push_back(k);
  });
  EXPECT_EQ(n, 50u);  // even keys in [100, 200)
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 198u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(tree.ScanRange(200, 100, [](uint32_t, uint32_t) {}), 0u);
}

TEST(BTreeTest, MemoryFootprintGrows) {
  auto small = BTree::BulkLoad(MakeSortedEntries(100)).value();
  auto large = BTree::BulkLoad(MakeSortedEntries(100000)).value();
  EXPECT_GT(large.MemoryFootprint(), small.MemoryFootprint() * 100);
}

TEST(BTreeTest, MoveSemantics) {
  auto entries = MakeSortedEntries(1000);
  BTree a = BTree::BulkLoad(entries).value();
  BTree b = std::move(a);
  EXPECT_EQ(b.size(), 1000u);
  ASSERT_TRUE(b.CheckInvariants().ok());
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  a = std::move(b);
  EXPECT_EQ(a.size(), 1000u);
}

}  // namespace
}  // namespace sgxb::index
