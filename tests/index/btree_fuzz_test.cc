// Randomized differential test: the B+-tree against std::multimap over
// long random operation sequences, checking every query primitive and
// the structural invariants along the way.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "index/btree.h"

namespace sgxb::index {
namespace {

class BTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzzTest, AgreesWithMultimap) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  BTree tree;
  std::multimap<uint32_t, uint32_t> oracle;

  // Optionally start from a bulk-loaded base.
  if (seed % 2 == 0) {
    std::vector<std::pair<uint32_t, uint32_t>> base;
    uint32_t key = 0;
    for (int i = 0; i < 3000; ++i) {
      key += 1 + static_cast<uint32_t>(rng.NextBounded(5));
      base.emplace_back(key, static_cast<uint32_t>(i));
    }
    tree = BTree::BulkLoad(base).value();
    for (const auto& [k, v] : base) oracle.emplace(k, v);
  }

  const uint32_t key_space = 5000;
  for (int op = 0; op < 20000; ++op) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(key_space));
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {  // insert
        uint32_t value = static_cast<uint32_t>(op);
        ASSERT_TRUE(tree.Insert(key, value).ok());
        oracle.emplace(key, value);
        break;
      }
      case 2: {  // point count
        size_t expected = oracle.count(key);
        size_t actual = tree.ForEachMatch(key, [](uint32_t) {});
        ASSERT_EQ(actual, expected) << "key " << key << " op " << op;
        break;
      }
      case 3: {  // range scan
        uint32_t lo = key;
        uint32_t hi =
            key + 1 + static_cast<uint32_t>(rng.NextBounded(200));
        size_t expected = std::distance(oracle.lower_bound(lo),
                                        oracle.lower_bound(hi));
        std::vector<uint32_t> seen;
        size_t actual = tree.ScanRange(lo, hi, [&](uint32_t k, uint32_t) {
          seen.push_back(k);
        });
        ASSERT_EQ(actual, expected)
            << "range [" << lo << "," << hi << ") op " << op;
        ASSERT_TRUE(std::is_sorted(seen.begin(), seen.end()));
        break;
      }
    }
  }

  EXPECT_EQ(tree.size(), oracle.size());
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();

  // Full sweep: every key's multiplicity must agree.
  uint32_t prev_key = 0;
  bool first = true;
  for (auto it = oracle.begin(); it != oracle.end();
       it = oracle.upper_bound(it->first)) {
    if (!first) ASSERT_GT(it->first, prev_key);
    prev_key = it->first;
    first = false;
    ASSERT_EQ(tree.ForEachMatch(it->first, [](uint32_t) {}),
              oracle.count(it->first));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace sgxb::index
