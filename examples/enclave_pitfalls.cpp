// Scenario: the three performance pitfalls a DBMS engineer hits when
// porting query operators into an SGXv2 enclave — demonstrated live.
//
//   1. SDK mutexes under contention (paper Section 4.4, Figure 10):
//      a contended sgx_thread_mutex parks threads *outside* the enclave.
//   2. Dynamic enclave growth (Section 4.4, Figure 11): letting the
//      enclave grow page-by-page during a query is ruinous.
//   3. Tight read-modify-write loops (Section 4.2, Figure 7): enclave
//      mode restricts the CPU's dynamic instruction reordering; unroll
//      and reorder by hand.
//
//   $ ./build/examples/enclave_pitfalls

#include <cstdio>
#include <vector>

#include "core/sgxbench.h"

using namespace sgxb;

namespace {

void Pitfall1_Mutex() {
  std::printf("\n--- Pitfall 1: the SDK mutex sleeps via OCALL ---\n");
  const size_t n = 2'000'000;
  auto build = join::GenerateBuildRelation(n / 4,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(n, n / 4,
                                           MemoryRegion::kUntrusted)
                   .value();
  for (TaskQueueKind kind :
       {TaskQueueKind::kMutex, TaskQueueKind::kLockFree}) {
    join::JoinConfig cfg;
    cfg.num_threads = std::max(4, CpuInfo::Host().logical_cores);
    cfg.queue = kind;
    cfg.setting = ExecutionSetting::kSgxDataInEnclave;
    cfg.radix_bits = 14;  // tiny partitions -> queue contention
    sgx::ResetTransitionStats();
    auto r = join::RhoJoin(build, probe, cfg).value();
    std::printf("  %-10s queue: %-10s  (%llu OCALLs injected)\n",
                TaskQueueKindToString(kind),
                core::FormatNanos(r.host_ns).c_str(),
                static_cast<unsigned long long>(
                    sgx::GetTransitionStats().ocalls));
  }
  std::printf("  => replace SDK mutexes with spin locks or lock-free "
              "structures.\n");
}

void Pitfall2_DynamicMemory() {
  std::printf("\n--- Pitfall 2: dynamic enclave growth (EDMM) ---\n");
  const size_t n = 1'000'000;
  auto build =
      join::GenerateBuildRelation(n, MemoryRegion::kUntrusted).value();
  auto probe = join::GenerateProbeRelation(4 * n, n,
                                           MemoryRegion::kUntrusted)
                   .value();
  for (bool dynamic : {false, true}) {
    sgx::EnclaveConfig ecfg;
    ecfg.dynamic = dynamic;
    ecfg.initial_heap_bytes = dynamic ? 1_MiB : 512_MiB;
    ecfg.max_heap_bytes = 512_MiB;
    sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();
    join::JoinConfig cfg;
    cfg.num_threads = std::min(4, CpuInfo::Host().logical_cores);
    cfg.setting = ExecutionSetting::kSgxDataInEnclave;
    cfg.enclave = enclave;
    cfg.materialize = true;
    auto r = join::RhoJoin(build, probe, cfg).value();
    std::printf("  %-22s %-10s  (%llu pages EAUG'd at runtime)\n",
                dynamic ? "minimal heap + EDMM:" : "pre-sized heap:",
                core::FormatNanos(r.host_ns).c_str(),
                static_cast<unsigned long long>(
                    enclave->memory_stats().edmm_pages_added));
    sgx::DestroyEnclave(enclave);
  }
  std::printf("  => size the enclave heap for the worst case up front.\n");
}

void Pitfall3_Unrolling() {
  std::printf("\n--- Pitfall 3: enclave mode restricts reordering ---\n");
  const size_t n = 16'000'000;
  std::vector<Tuple> data(n);
  Xoshiro256 rng(1);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = static_cast<uint32_t>(rng.Next());
  }
  std::vector<uint32_t> hist(1024);
  struct {
    const char* name;
    join::HistogramKernel kernel;
    KernelFlavor flavor;
  } variants[] = {
      {"Listing 1 (plain loop)", &join::HistogramReference,
       KernelFlavor::kReference},
      {"Listing 2 (8x grouped)", &join::HistogramUnrolled,
       KernelFlavor::kUnrolledReordered},
  };
  for (const auto& v : variants) {
    std::fill(hist.begin(), hist.end(), 0);
    WallTimer t;
    v.kernel(data.data(), n, 1023, 0, hist.data());
    double host_ns = static_cast<double>(t.ElapsedNanos());
    perf::PhaseStats phase;
    phase.host_ns = host_ns;
    phase.threads = 1;
    phase.profile = join::HistogramProfile(n, 10, v.flavor);
    std::printf("  %-24s native %-9s -> modeled in-enclave %s\n", v.name,
                core::FormatNanos(host_ns).c_str(),
                core::FormatNanos(
                    host_ns * core::PhaseSlowdown(
                                  phase,
                                  ExecutionSetting::kSgxDataInEnclave))
                    .c_str());
  }
  std::printf("  => natively both run alike; in-enclave the plain loop "
              "pays ~3.25x.\n");
}

}  // namespace

int main() {
  std::printf("enclave_pitfalls: what NOT to do inside SGXv2\n");
  std::printf("=============================================\n");
  Pitfall1_Mutex();
  Pitfall2_DynamicMemory();
  Pitfall3_Unrolling();
  std::printf("\nAll three fixes together are what turns the orange bar "
              "of Figure 1 into the green one.\n");
  return 0;
}
