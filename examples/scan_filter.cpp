// Scenario: a columnar engine evaluating a range predicate with the
// SIMD scan, inside and outside the enclave.
//
// Demonstrates the scan API: bit-vector output for selection vectors,
// row-id materialization for gather-based plans, SIMD level dispatch, and
// the (small) SGX overhead the paper measures for streaming scans.
//
//   $ ./build/examples/scan_filter [column_mib]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/sgxbench.h"

using namespace sgxb;

int main(int argc, char** argv) {
  size_t mib = 64;
  if (argc > 1) {
    long parsed = std::atol(argv[1]);
    if (parsed <= 0 || parsed > 4096) {
      std::fprintf(stderr, "usage: %s [column_mib in 1..4096]\n", argv[0]);
      return 1;
    }
    mib = static_cast<size_t>(parsed);
  }
  const size_t n = mib * 1_MiB;

  std::printf("scan_filter: SELECT count(*) WHERE 32 <= v <= 196\n");
  std::printf("=================================================\n");
  std::printf("column: %zu MiB of uint8 values | host SIMD: %s\n\n", mib,
              SimdLevelToString(scan::BestSupportedSimdLevel()));

  auto col = Column<uint8_t>::Allocate(n, MemoryRegion::kEnclave).value();
  Xoshiro256 rng(2026);
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }

  // --- Bit-vector output at every SIMD level. ---------------------------
  auto bv = BitVector::Allocate(n, MemoryRegion::kEnclave).value();
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    scan::ScanConfig cfg;
    cfg.lo = 32;
    cfg.hi = 196;
    cfg.simd = level;
    cfg.num_threads = std::min(4, CpuInfo::Host().logical_cores);
    auto result = scan::RunBitVectorScan(col, &bv, cfg).value();
    std::printf("  %-8s %8.2f GB/s  -> %llu matches (%.1f%%)\n",
                SimdLevelToString(level),
                n / (result.host_ns * 1e-9) / 1e9,
                static_cast<unsigned long long>(result.matches),
                100.0 * result.matches / n);
  }

  // --- Row-id output + the modeled SGX cost. ----------------------------
  std::vector<uint64_t> ids(n);
  uint64_t count = 0;
  scan::ScanConfig cfg;
  cfg.lo = 32;
  cfg.hi = 196;
  cfg.num_threads = std::min(4, CpuInfo::Host().logical_cores);
  auto result = scan::RunRowIdScan(col, ids.data(), &count, cfg).value();

  perf::PhaseStats phase;
  phase.host_ns = result.host_ns;
  phase.threads = result.threads;
  phase.profile = result.profile;
  std::printf(
      "\n  row-id materialization: %llu ids, first=%llu last=%llu\n",
      static_cast<unsigned long long>(count),
      static_cast<unsigned long long>(ids[0]),
      static_cast<unsigned long long>(ids[count - 1]));
  std::printf(
      "  modeled SGX cost for this scan: x%.3f in-enclave "
      "(paper: ~1.03 beyond cache)\n",
      core::PhaseSlowdown(phase, ExecutionSetting::kSgxDataInEnclave));
  return 0;
}
