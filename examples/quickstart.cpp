// Quickstart: run an SGXv2-optimized radix join inside a simulated
// enclave.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API: create an enclave, generate foreign-key
// join inputs, run the RHO join with the paper's unroll-and-reorder
// optimization under the three execution settings, and print the phase
// breakdown with modeled SGX costs.

#include <cstdio>

#include "core/sgxbench.h"

using namespace sgxb;

int main() {
  std::printf("sgxv2-olap-bench quickstart\n");
  std::printf("===========================\n\n");

  // 1. A simulated SGXv2 enclave with a statically sized 256 MiB heap.
  sgx::EnclaveConfig enclave_cfg;
  enclave_cfg.initial_heap_bytes = 256_MiB;
  enclave_cfg.name = "quickstart";
  auto enclave_result = sgx::Enclave::Create(enclave_cfg);
  if (!enclave_result.ok()) {
    std::fprintf(stderr, "enclave creation failed: %s\n",
                 enclave_result.status().ToString().c_str());
    return 1;
  }
  sgx::Enclave* enclave = enclave_result.value();

  // 2. Foreign-key join inputs: 1 M build rows, 4 M probe rows.
  auto build =
      join::GenerateBuildRelation(1'000'000, MemoryRegion::kEnclave)
          .value();
  auto probe = join::GenerateProbeRelation(4'000'000, 1'000'000,
                                           MemoryRegion::kEnclave)
                   .value();
  std::printf("inputs: %zu build rows (%s), %zu probe rows (%s)\n",
              build.num_tuples(),
              core::FormatBytes(build.size_bytes()).c_str(),
              probe.num_tuples(),
              core::FormatBytes(probe.size_bytes()).c_str());

  // 3. Run the RHO join under each execution setting.
  for (ExecutionSetting setting :
       {ExecutionSetting::kPlainCpu, ExecutionSetting::kSgxDataInEnclave,
        ExecutionSetting::kSgxDataOutsideEnclave}) {
    join::JoinConfig cfg;
    cfg.num_threads = std::min(4, CpuInfo::Host().logical_cores);
    cfg.flavor = KernelFlavor::kUnrolledReordered;  // the paper's fix
    cfg.setting = setting;
    cfg.enclave = enclave;

    auto result = join::RhoJoin(build, probe, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const join::JoinResult& r = result.value();
    double modeled_ns = core::ModeledReferenceNs(r.phases, setting);
    std::printf(
        "\n%-26s matches=%llu  host=%s  modeled(ref machine)=%s\n",
        ExecutionSettingToString(setting),
        static_cast<unsigned long long>(r.matches),
        core::FormatNanos(r.host_ns).c_str(),
        core::FormatNanos(modeled_ns).c_str());
    for (const auto& phase : r.phases.phases) {
      std::printf("    %-12s %10s  (x%.2f in this setting)\n",
                  phase.name.c_str(),
                  core::FormatNanos(phase.host_ns).c_str(),
                  core::PhaseSlowdown(phase, setting));
    }
  }

  // 4. Enclave transition accounting from the simulator.
  sgx::TransitionStats stats = sgx::GetTransitionStats();
  std::printf("\nenclave activity: %llu ecalls, %llu ocalls\n",
              static_cast<unsigned long long>(stats.ecalls),
              static_cast<unsigned long long>(stats.ocalls));

  sgx::DestroyEnclave(enclave);
  std::printf("\ndone. Next: examples/secure_analytics, "
              "examples/scan_filter, examples/enclave_pitfalls\n");
  return 0;
}
