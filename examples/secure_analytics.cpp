// Scenario: an analytical DBMS operator deciding whether to move a
// reporting workload into SGXv2 enclaves.
//
// Runs the paper's four TPC-H queries at a small scale factor, natively
// and inside a simulated enclave (with and without the SGXv2
// optimizations), and prints the overhead a production deployment should
// expect. This is the paper's Section 6 experiment dressed as an
// application.
//
//   $ ./build/examples/secure_analytics [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "core/sgxbench.h"

using namespace sgxb;

int main(int argc, char** argv) {
  double sf = 0.05;
  if (argc > 1) {
    sf = std::atof(argv[1]);
    if (sf <= 0) {
      std::fprintf(stderr, "usage: %s [scale_factor > 0]\n", argv[0]);
      return 1;
    }
  }

  std::printf("secure_analytics: should we move reporting into SGXv2?\n");
  std::printf("======================================================\n");
  std::printf("generating TPC-H data at SF %.2f ...\n", sf);

  tpch::GenConfig gen;
  gen.scale_factor = sf;
  auto db_result = tpch::Generate(gen);
  if (!db_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  tpch::TpchDb db = std::move(db_result).value();
  std::printf("  customer %zu | orders %zu | lineitem %zu | part %zu\n\n",
              db.customer.num_rows, db.orders.num_rows,
              db.lineitem.num_rows, db.part.num_rows);

  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 512_MiB;  // pre-sized: the paper's advice
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

  core::TablePrinter table({"query", "rows", "native",
                            "enclave (naive port)",
                            "enclave (SGXv2-optimized)", "overhead"});

  double total_native = 0, total_opt = 0;
  for (int query : {3, 10, 12, 19}) {
    tpch::QueryConfig cfg;
    cfg.num_threads = std::min(4, CpuInfo::Host().logical_cores);
    cfg.enclave = enclave;
    cfg.radix_bits = 10;

    cfg.flavor = KernelFlavor::kUnrolledReordered;
    auto opt = tpch::RunQuery(query, db, cfg);
    cfg.flavor = KernelFlavor::kReference;
    auto naive = tpch::RunQuery(query, db, cfg);
    if (!opt.ok() || !naive.ok()) {
      std::fprintf(stderr, "query %d failed\n", query);
      return 1;
    }

    double native = core::HostScaledNs(opt.value().phases,
                                       ExecutionSetting::kPlainCpu);
    double enclave_naive = core::HostScaledNs(
        naive.value().phases, ExecutionSetting::kSgxDataInEnclave);
    double enclave_opt = core::HostScaledNs(
        opt.value().phases, ExecutionSetting::kSgxDataInEnclave);
    total_native += native;
    total_opt += enclave_opt;

    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "+%.0f%%",
                  (enclave_opt / native - 1.0) * 100.0);
    table.AddRow({"Q" + std::to_string(query),
                  std::to_string(opt.value().count),
                  core::FormatNanos(native),
                  core::FormatNanos(enclave_naive),
                  core::FormatNanos(enclave_opt), overhead});
  }
  table.Print();

  std::printf(
      "\nverdict: with cache-conscious operators, lock-free task queues "
      "and\npre-sized enclaves, the reporting suite costs +%.0f%% inside "
      "SGXv2 —\nthe paper's finding that near-native secure analytics is "
      "feasible.\n",
      (total_opt / total_native - 1.0) * 100.0);

  sgx::DestroyEnclave(enclave);
  return 0;
}
