// sgxbench_cli: run individual experiments from the command line.
//
//   sgxbench_cli info
//   sgxbench_cli join  <pht|rho|mway|inl|crk> [--threads N] [--mb B P]
//                      [--setting plain|sgx-in|sgx-out] [--reference]
//                      [--materialize] [--skew THETA]
//   sgxbench_cli scan  [--mb N] [--threads N] [--sel PCT] [--rowids]
//   sgxbench_cli query <3|10|12|19|12g> [--sf F] [--threads N]
//                      [--setting plain|sgx-in]
//
// A thin driver over the public API — handy for exploring parameter
// spaces that the fixed bench binaries do not sweep.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/sgxbench.h"

using namespace sgxb;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  sgxbench_cli info\n"
      "  sgxbench_cli join <pht|rho|mway|inl|crk> [--threads N]\n"
      "               [--mb BUILD PROBE] [--setting plain|sgx-in|sgx-out]\n"
      "               [--reference] [--materialize] [--skew THETA]\n"
      "  sgxbench_cli scan [--mb N] [--threads N] [--sel PCT] [--rowids]\n"
      "  sgxbench_cli query <3|10|12|19|12g> [--sf F] [--threads N]\n"
      "               [--setting plain|sgx-in]\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  int threads = 1;
  double build_mb = 10, probe_mb = 40;
  double scan_mb = 64;
  double sf = 0.05;
  int selectivity_pct = 50;
  bool rowids = false;
  bool reference = false;
  bool materialize = false;
  double skew = 0;
  ExecutionSetting setting = ExecutionSetting::kPlainCpu;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_num = [&](double* target) {
      if (i + 1 >= argc) return false;
      *target = std::atof(argv[++i]);
      return true;
    };
    if (arg == "--threads") {
      double v;
      if (!next_num(&v) || v < 1) return false;
      out->threads = static_cast<int>(v);
    } else if (arg == "--mb") {
      if (out->positional.size() > 0 && out->positional[0] == "scan") {
        if (!next_num(&out->scan_mb)) return false;
      } else {
        if (!next_num(&out->build_mb)) return false;
        if (!next_num(&out->probe_mb)) return false;
      }
    } else if (arg == "--sf") {
      if (!next_num(&out->sf) || out->sf <= 0) return false;
    } else if (arg == "--sel") {
      double v;
      if (!next_num(&v) || v < 0 || v > 100) return false;
      out->selectivity_pct = static_cast<int>(v);
    } else if (arg == "--skew") {
      if (!next_num(&out->skew)) return false;
    } else if (arg == "--rowids") {
      out->rowids = true;
    } else if (arg == "--reference") {
      out->reference = true;
    } else if (arg == "--materialize") {
      out->materialize = true;
    } else if (arg == "--setting") {
      if (i + 1 >= argc) return false;
      std::string v = argv[++i];
      if (v == "plain") {
        out->setting = ExecutionSetting::kPlainCpu;
      } else if (v == "sgx-in") {
        out->setting = ExecutionSetting::kSgxDataInEnclave;
      } else if (v == "sgx-out") {
        out->setting = ExecutionSetting::kSgxDataOutsideEnclave;
      } else {
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      out->positional.push_back(arg);
    }
  }
  return !out->positional.empty();
}

int RunInfo() {
  const CpuInfo& cpu = CpuInfo::Host();
  const auto& cal = perf::CalibrationParams::Default();
  std::printf("host:      %s\n", cpu.model_name.c_str());
  std::printf("cores:     %d | SIMD: %s\n", cpu.logical_cores,
              SimdLevelToString(cpu.max_simd));
  std::printf("caches:    L1d %s | L2 %s | L3 %s\n",
              core::FormatBytes(cpu.l1d_bytes).c_str(),
              core::FormatBytes(cpu.l2_bytes).c_str(),
              core::FormatBytes(cpu.l3_bytes).c_str());
  std::printf("reference: %d x %d cores @ %.1f GHz, EPC %s/socket\n",
              cal.sockets, cal.cores_per_socket,
              cal.base_frequency_hz / 1e9,
              core::FormatBytes(cal.epc_per_socket_bytes).c_str());
  std::printf("model:     transition %lu cyc | EDMM %.0f us/page | "
              "ILP penalty %.2fx\n",
              static_cast<unsigned long>(cal.transition_cycles),
              cal.edmm_page_add_ns / 1000.0, cal.ilp_penalty_reference);
  return 0;
}

int RunJoin(const Args& args) {
  const size_t build_n =
      BytesToTuples(static_cast<size_t>(args.build_mb * 1_MiB));
  const size_t probe_n =
      BytesToTuples(static_cast<size_t>(args.probe_mb * 1_MiB));
  auto build =
      join::GenerateBuildRelation(build_n, MemoryRegion::kUntrusted)
          .value();
  auto probe =
      args.skew > 0
          ? join::GenerateSkewedProbeRelation(probe_n, build_n, args.skew,
                                              MemoryRegion::kUntrusted)
                .value()
          : join::GenerateProbeRelation(probe_n, build_n,
                                        MemoryRegion::kUntrusted)
                .value();

  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes =
      static_cast<size_t>(8 * (args.build_mb + args.probe_mb)) * 1_MiB +
      64_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

  join::JoinConfig cfg;
  cfg.num_threads = args.threads;
  cfg.flavor = args.reference ? KernelFlavor::kReference
                              : KernelFlavor::kUnrolledReordered;
  cfg.setting = args.setting;
  cfg.enclave = enclave;
  cfg.materialize = args.materialize;

  const std::string& name = args.positional[1];
  Result<join::JoinResult> r = Status::InvalidArgument("unknown join");
  if (name == "pht") r = join::PhtJoin(build, probe, cfg);
  if (name == "rho") r = join::RhoJoin(build, probe, cfg);
  if (name == "mway") r = join::MwayJoin(build, probe, cfg);
  if (name == "inl") r = join::InlJoin(build, probe, cfg);
  if (name == "crk") r = join::CrkJoin(build, probe, cfg);
  if (!r.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 r.status().ToString().c_str());
    sgx::DestroyEnclave(enclave);
    return 1;
  }
  const join::JoinResult& res = r.value();
  double rows = static_cast<double>(build_n) + probe_n;
  std::printf("%s: %llu matches in %s (%s)\n", name.c_str(),
              static_cast<unsigned long long>(res.matches),
              core::FormatNanos(res.host_ns).c_str(),
              core::FormatRowsPerSec(rows / (res.host_ns * 1e-9)).c_str());
  for (const auto& phase : res.phases.phases) {
    std::printf("  %-14s %12s  x%.2f under %s\n", phase.name.c_str(),
                core::FormatNanos(phase.host_ns).c_str(),
                core::PhaseSlowdown(phase, args.setting),
                ExecutionSettingToString(args.setting));
  }
  sgx::DestroyEnclave(enclave);
  return 0;
}

int RunScan(const Args& args) {
  const size_t n = static_cast<size_t>(args.scan_mb * 1_MiB);
  auto col = Column<uint8_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(1);
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  scan::ScanConfig cfg;
  cfg.lo = 0;
  cfg.hi = static_cast<uint8_t>(
      args.selectivity_pct == 0
          ? 0
          : args.selectivity_pct * 256 / 100 - 1);
  cfg.num_threads = args.threads;
  cfg.setting = args.setting;

  if (args.rowids) {
    std::vector<uint64_t> ids(n);
    uint64_t count = 0;
    auto r = scan::RunRowIdScan(col, ids.data(), &count, cfg).value();
    std::printf("rowid scan: %llu matches, %.2f GB/s\n",
                static_cast<unsigned long long>(count),
                n / (r.host_ns * 1e-9) / 1e9);
  } else {
    auto bv = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
    auto r = scan::RunBitVectorScan(col, &bv, cfg).value();
    std::printf("bitvector scan: %llu matches, %.2f GB/s\n",
                static_cast<unsigned long long>(r.matches),
                n / (r.host_ns * 1e-9) / 1e9);
  }
  return 0;
}

int RunQueryCmd(const Args& args) {
  tpch::GenConfig gen;
  gen.scale_factor = args.sf;
  tpch::TpchDb db = tpch::Generate(gen).value();

  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 512_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();
  tpch::QueryConfig cfg;
  cfg.num_threads = args.threads;
  cfg.setting = args.setting;
  cfg.enclave = enclave;

  const std::string& q = args.positional[1];
  Result<tpch::QueryResult> r = Status::InvalidArgument("unknown query");
  if (q == "12g") {
    r = tpch::RunQ12Grouped(db, cfg);
  } else {
    r = tpch::RunQuery(std::atoi(q.c_str()), db, cfg);
  }
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 r.status().ToString().c_str());
    sgx::DestroyEnclave(enclave);
    return 1;
  }
  std::printf("Q%s at SF %.2f: count=%llu in %s\n", q.c_str(), args.sf,
              static_cast<unsigned long long>(r.value().count),
              core::FormatNanos(r.value().host_ns).c_str());
  if (!r.value().group_counts.empty()) {
    std::printf("  groups: high=%llu low=%llu\n",
                static_cast<unsigned long long>(r.value().group_counts[0]),
                static_cast<unsigned long long>(
                    r.value().group_counts[1]));
  }
  sgx::DestroyEnclave(enclave);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  const std::string& cmd = args.positional[0];
  if (cmd == "info") return RunInfo();
  if (cmd == "join" && args.positional.size() == 2) return RunJoin(args);
  if (cmd == "scan") return RunScan(args);
  if (cmd == "query" && args.positional.size() == 2) {
    return RunQueryCmd(args);
  }
  return Usage();
}
