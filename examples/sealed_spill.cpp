// Scenario: an enclave DBMS spills a materialized join result to
// untrusted storage and reloads it later.
//
// Enclave memory is precious (and pre-sized, per the paper's Figure 11
// lesson), so intermediate results that are not immediately needed get
// sealed — encrypted and authenticated under an enclave-bound key — and
// handed to untrusted storage. This example joins, seals the output,
// "stores" it outside, tamper-checks, unseals, and verifies the tuples.
//
//   $ ./build/examples/sealed_spill

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/sgxbench.h"

using namespace sgxb;

int main() {
  std::printf("sealed_spill: spilling enclave results to untrusted "
              "storage\n");
  std::printf("========================================================\n");

  // 1. Run a materializing join inside the enclave.
  sgx::EnclaveConfig ecfg;
  ecfg.initial_heap_bytes = 128_MiB;
  sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();
  const uint64_t enclave_key = 0xdeadbeefcafef00dull;  // from MRENCLAVE

  auto build = join::GenerateBuildRelation(200'000, MemoryRegion::kEnclave)
                   .value();
  auto probe = join::GenerateProbeRelation(800'000, 200'000,
                                           MemoryRegion::kEnclave)
                   .value();
  join::Materializer output(1, mem::ForEnclave(enclave));
  join::JoinConfig cfg;
  cfg.setting = ExecutionSetting::kSgxDataInEnclave;
  cfg.enclave = enclave;
  cfg.materialize = true;
  cfg.output = &output;
  auto result = join::RhoJoin(build, probe, cfg).value();
  std::printf("joined: %llu output tuples materialized in-enclave\n",
              static_cast<unsigned long long>(result.matches));

  // 2. Flatten and seal the result (inside the enclave).
  std::vector<JoinOutputTuple> tuples;
  tuples.reserve(result.matches);
  output.ForEachChunk([&](const JoinOutputTuple* chunk, size_t n) {
    tuples.insert(tuples.end(), chunk, chunk + n);
  });
  std::vector<uint8_t> aad = {'j', 'o', 'i', 'n', '_', 'r', '1'};
  WallTimer seal_timer;
  sgx::SealedBlob blob =
      sgx::Seal(tuples.data(), tuples.size() * sizeof(JoinOutputTuple),
                enclave_key, aad)
          .value();
  std::printf("sealed:  %s -> %s blob in %s (payload + header + tag)\n",
              core::FormatBytes(tuples.size() * sizeof(JoinOutputTuple))
                  .c_str(),
              core::FormatBytes(blob.bytes.size()).c_str(),
              core::FormatNanos(seal_timer.ElapsedNanos()).c_str());

  // 3. The blob now lives in untrusted storage. Demonstrate that
  // tampering there is detected.
  sgx::SealedBlob tampered = blob;
  tampered.bytes[64] ^= 0x80;
  auto tamper_check = sgx::Unseal(tampered, enclave_key, aad);
  std::printf("tamper:  flipped one bit outside -> unseal says \"%s\"\n",
              tamper_check.status().ToString().c_str());

  // 4. Reload the genuine blob and verify every tuple.
  WallTimer unseal_timer;
  auto restored = sgx::Unseal(blob, enclave_key, aad);
  if (!restored.ok()) {
    std::fprintf(stderr, "unseal failed: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  std::printf("unsealed %s in %s\n",
              core::FormatBytes(restored.value().size()).c_str(),
              core::FormatNanos(unseal_timer.ElapsedNanos()).c_str());

  const auto* reloaded = reinterpret_cast<const JoinOutputTuple*>(
      restored.value().data());
  size_t n = restored.value().size() / sizeof(JoinOutputTuple);
  uint64_t mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::memcmp(&reloaded[i], &tuples[i], sizeof(JoinOutputTuple)) !=
        0) {
      ++mismatches;
    }
  }
  std::printf("verify:  %zu tuples reloaded, %llu mismatches\n", n,
              static_cast<unsigned long long>(mismatches));

  sgx::DestroyEnclave(enclave);
  return mismatches == 0 && n == result.matches ? 0 : 1;
}
