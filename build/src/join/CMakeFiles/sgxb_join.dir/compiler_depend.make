# Empty compiler generated dependencies file for sgxb_join.
# This may be replaced when dependencies are built.
