file(REMOVE_RECURSE
  "libsgxb_join.a"
)
