file(REMOVE_RECURSE
  "CMakeFiles/sgxb_join.dir/cht_join.cc.o"
  "CMakeFiles/sgxb_join.dir/cht_join.cc.o.d"
  "CMakeFiles/sgxb_join.dir/crk_join.cc.o"
  "CMakeFiles/sgxb_join.dir/crk_join.cc.o.d"
  "CMakeFiles/sgxb_join.dir/data_gen.cc.o"
  "CMakeFiles/sgxb_join.dir/data_gen.cc.o.d"
  "CMakeFiles/sgxb_join.dir/inl_join.cc.o"
  "CMakeFiles/sgxb_join.dir/inl_join.cc.o.d"
  "CMakeFiles/sgxb_join.dir/join_common.cc.o"
  "CMakeFiles/sgxb_join.dir/join_common.cc.o.d"
  "CMakeFiles/sgxb_join.dir/materializer.cc.o"
  "CMakeFiles/sgxb_join.dir/materializer.cc.o.d"
  "CMakeFiles/sgxb_join.dir/mway_join.cc.o"
  "CMakeFiles/sgxb_join.dir/mway_join.cc.o.d"
  "CMakeFiles/sgxb_join.dir/pht_join.cc.o"
  "CMakeFiles/sgxb_join.dir/pht_join.cc.o.d"
  "CMakeFiles/sgxb_join.dir/radix_common.cc.o"
  "CMakeFiles/sgxb_join.dir/radix_common.cc.o.d"
  "CMakeFiles/sgxb_join.dir/rho_join.cc.o"
  "CMakeFiles/sgxb_join.dir/rho_join.cc.o.d"
  "libsgxb_join.a"
  "libsgxb_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
