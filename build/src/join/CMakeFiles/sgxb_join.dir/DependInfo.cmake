
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/join/cht_join.cc" "src/join/CMakeFiles/sgxb_join.dir/cht_join.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/cht_join.cc.o.d"
  "/root/repo/src/join/crk_join.cc" "src/join/CMakeFiles/sgxb_join.dir/crk_join.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/crk_join.cc.o.d"
  "/root/repo/src/join/data_gen.cc" "src/join/CMakeFiles/sgxb_join.dir/data_gen.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/data_gen.cc.o.d"
  "/root/repo/src/join/inl_join.cc" "src/join/CMakeFiles/sgxb_join.dir/inl_join.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/inl_join.cc.o.d"
  "/root/repo/src/join/join_common.cc" "src/join/CMakeFiles/sgxb_join.dir/join_common.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/join_common.cc.o.d"
  "/root/repo/src/join/materializer.cc" "src/join/CMakeFiles/sgxb_join.dir/materializer.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/materializer.cc.o.d"
  "/root/repo/src/join/mway_join.cc" "src/join/CMakeFiles/sgxb_join.dir/mway_join.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/mway_join.cc.o.d"
  "/root/repo/src/join/pht_join.cc" "src/join/CMakeFiles/sgxb_join.dir/pht_join.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/pht_join.cc.o.d"
  "/root/repo/src/join/radix_common.cc" "src/join/CMakeFiles/sgxb_join.dir/radix_common.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/radix_common.cc.o.d"
  "/root/repo/src/join/rho_join.cc" "src/join/CMakeFiles/sgxb_join.dir/rho_join.cc.o" "gcc" "src/join/CMakeFiles/sgxb_join.dir/rho_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sgxb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/sgxb_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sgxb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sgxb_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
