# Empty compiler generated dependencies file for sgxb_sync.
# This may be replaced when dependencies are built.
