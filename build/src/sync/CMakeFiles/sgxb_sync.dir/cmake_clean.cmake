file(REMOVE_RECURSE
  "CMakeFiles/sgxb_sync.dir/task_queue.cc.o"
  "CMakeFiles/sgxb_sync.dir/task_queue.cc.o.d"
  "libsgxb_sync.a"
  "libsgxb_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
