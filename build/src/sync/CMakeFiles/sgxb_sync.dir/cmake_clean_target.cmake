file(REMOVE_RECURSE
  "libsgxb_sync.a"
)
