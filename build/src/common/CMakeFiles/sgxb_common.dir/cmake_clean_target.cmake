file(REMOVE_RECURSE
  "libsgxb_common.a"
)
