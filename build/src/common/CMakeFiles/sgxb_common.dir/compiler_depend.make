# Empty compiler generated dependencies file for sgxb_common.
# This may be replaced when dependencies are built.
