file(REMOVE_RECURSE
  "CMakeFiles/sgxb_common.dir/aligned_buffer.cc.o"
  "CMakeFiles/sgxb_common.dir/aligned_buffer.cc.o.d"
  "CMakeFiles/sgxb_common.dir/cpu_info.cc.o"
  "CMakeFiles/sgxb_common.dir/cpu_info.cc.o.d"
  "CMakeFiles/sgxb_common.dir/logging.cc.o"
  "CMakeFiles/sgxb_common.dir/logging.cc.o.d"
  "CMakeFiles/sgxb_common.dir/parallel.cc.o"
  "CMakeFiles/sgxb_common.dir/parallel.cc.o.d"
  "CMakeFiles/sgxb_common.dir/random.cc.o"
  "CMakeFiles/sgxb_common.dir/random.cc.o.d"
  "CMakeFiles/sgxb_common.dir/relation.cc.o"
  "CMakeFiles/sgxb_common.dir/relation.cc.o.d"
  "CMakeFiles/sgxb_common.dir/status.cc.o"
  "CMakeFiles/sgxb_common.dir/status.cc.o.d"
  "CMakeFiles/sgxb_common.dir/timer.cc.o"
  "CMakeFiles/sgxb_common.dir/timer.cc.o.d"
  "CMakeFiles/sgxb_common.dir/types.cc.o"
  "CMakeFiles/sgxb_common.dir/types.cc.o.d"
  "libsgxb_common.a"
  "libsgxb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
