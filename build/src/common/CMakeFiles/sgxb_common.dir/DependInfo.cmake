
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/aligned_buffer.cc" "src/common/CMakeFiles/sgxb_common.dir/aligned_buffer.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/aligned_buffer.cc.o.d"
  "/root/repo/src/common/cpu_info.cc" "src/common/CMakeFiles/sgxb_common.dir/cpu_info.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/cpu_info.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/sgxb_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/logging.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/common/CMakeFiles/sgxb_common.dir/parallel.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/parallel.cc.o.d"
  "/root/repo/src/common/random.cc" "src/common/CMakeFiles/sgxb_common.dir/random.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/random.cc.o.d"
  "/root/repo/src/common/relation.cc" "src/common/CMakeFiles/sgxb_common.dir/relation.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/relation.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/sgxb_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/status.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/common/CMakeFiles/sgxb_common.dir/timer.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/timer.cc.o.d"
  "/root/repo/src/common/types.cc" "src/common/CMakeFiles/sgxb_common.dir/types.cc.o" "gcc" "src/common/CMakeFiles/sgxb_common.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
