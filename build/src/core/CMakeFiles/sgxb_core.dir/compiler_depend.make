# Empty compiler generated dependencies file for sgxb_core.
# This may be replaced when dependencies are built.
