file(REMOVE_RECURSE
  "CMakeFiles/sgxb_core.dir/csv.cc.o"
  "CMakeFiles/sgxb_core.dir/csv.cc.o.d"
  "CMakeFiles/sgxb_core.dir/experiment.cc.o"
  "CMakeFiles/sgxb_core.dir/experiment.cc.o.d"
  "CMakeFiles/sgxb_core.dir/modeling.cc.o"
  "CMakeFiles/sgxb_core.dir/modeling.cc.o.d"
  "CMakeFiles/sgxb_core.dir/report.cc.o"
  "CMakeFiles/sgxb_core.dir/report.cc.o.d"
  "libsgxb_core.a"
  "libsgxb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
