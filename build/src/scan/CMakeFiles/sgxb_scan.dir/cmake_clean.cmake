file(REMOVE_RECURSE
  "CMakeFiles/sgxb_scan.dir/column_scan.cc.o"
  "CMakeFiles/sgxb_scan.dir/column_scan.cc.o.d"
  "CMakeFiles/sgxb_scan.dir/packed_column.cc.o"
  "CMakeFiles/sgxb_scan.dir/packed_column.cc.o.d"
  "CMakeFiles/sgxb_scan.dir/pmbw.cc.o"
  "CMakeFiles/sgxb_scan.dir/pmbw.cc.o.d"
  "CMakeFiles/sgxb_scan.dir/scan_kernels.cc.o"
  "CMakeFiles/sgxb_scan.dir/scan_kernels.cc.o.d"
  "libsgxb_scan.a"
  "libsgxb_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
