
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/column_scan.cc" "src/scan/CMakeFiles/sgxb_scan.dir/column_scan.cc.o" "gcc" "src/scan/CMakeFiles/sgxb_scan.dir/column_scan.cc.o.d"
  "/root/repo/src/scan/packed_column.cc" "src/scan/CMakeFiles/sgxb_scan.dir/packed_column.cc.o" "gcc" "src/scan/CMakeFiles/sgxb_scan.dir/packed_column.cc.o.d"
  "/root/repo/src/scan/pmbw.cc" "src/scan/CMakeFiles/sgxb_scan.dir/pmbw.cc.o" "gcc" "src/scan/CMakeFiles/sgxb_scan.dir/pmbw.cc.o.d"
  "/root/repo/src/scan/scan_kernels.cc" "src/scan/CMakeFiles/sgxb_scan.dir/scan_kernels.cc.o" "gcc" "src/scan/CMakeFiles/sgxb_scan.dir/scan_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sgxb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/sgxb_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sgxb_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
