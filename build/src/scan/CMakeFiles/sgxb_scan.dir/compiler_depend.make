# Empty compiler generated dependencies file for sgxb_scan.
# This may be replaced when dependencies are built.
