file(REMOVE_RECURSE
  "libsgxb_scan.a"
)
