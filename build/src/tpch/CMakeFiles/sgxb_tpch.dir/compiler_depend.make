# Empty compiler generated dependencies file for sgxb_tpch.
# This may be replaced when dependencies are built.
