file(REMOVE_RECURSE
  "libsgxb_tpch.a"
)
