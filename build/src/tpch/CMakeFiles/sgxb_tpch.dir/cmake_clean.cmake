file(REMOVE_RECURSE
  "CMakeFiles/sgxb_tpch.dir/operators.cc.o"
  "CMakeFiles/sgxb_tpch.dir/operators.cc.o.d"
  "CMakeFiles/sgxb_tpch.dir/queries.cc.o"
  "CMakeFiles/sgxb_tpch.dir/queries.cc.o.d"
  "CMakeFiles/sgxb_tpch.dir/tpch_gen.cc.o"
  "CMakeFiles/sgxb_tpch.dir/tpch_gen.cc.o.d"
  "libsgxb_tpch.a"
  "libsgxb_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
