file(REMOVE_RECURSE
  "libsgxb_perf.a"
)
