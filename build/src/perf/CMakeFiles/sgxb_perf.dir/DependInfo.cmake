
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/access_profile.cc" "src/perf/CMakeFiles/sgxb_perf.dir/access_profile.cc.o" "gcc" "src/perf/CMakeFiles/sgxb_perf.dir/access_profile.cc.o.d"
  "/root/repo/src/perf/calibration.cc" "src/perf/CMakeFiles/sgxb_perf.dir/calibration.cc.o" "gcc" "src/perf/CMakeFiles/sgxb_perf.dir/calibration.cc.o.d"
  "/root/repo/src/perf/cost_model.cc" "src/perf/CMakeFiles/sgxb_perf.dir/cost_model.cc.o" "gcc" "src/perf/CMakeFiles/sgxb_perf.dir/cost_model.cc.o.d"
  "/root/repo/src/perf/machine_model.cc" "src/perf/CMakeFiles/sgxb_perf.dir/machine_model.cc.o" "gcc" "src/perf/CMakeFiles/sgxb_perf.dir/machine_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
