file(REMOVE_RECURSE
  "CMakeFiles/sgxb_perf.dir/access_profile.cc.o"
  "CMakeFiles/sgxb_perf.dir/access_profile.cc.o.d"
  "CMakeFiles/sgxb_perf.dir/calibration.cc.o"
  "CMakeFiles/sgxb_perf.dir/calibration.cc.o.d"
  "CMakeFiles/sgxb_perf.dir/cost_model.cc.o"
  "CMakeFiles/sgxb_perf.dir/cost_model.cc.o.d"
  "CMakeFiles/sgxb_perf.dir/machine_model.cc.o"
  "CMakeFiles/sgxb_perf.dir/machine_model.cc.o.d"
  "libsgxb_perf.a"
  "libsgxb_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
