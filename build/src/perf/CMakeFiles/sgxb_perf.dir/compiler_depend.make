# Empty compiler generated dependencies file for sgxb_perf.
# This may be replaced when dependencies are built.
