
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/enclave.cc" "src/sgx/CMakeFiles/sgxb_sgx.dir/enclave.cc.o" "gcc" "src/sgx/CMakeFiles/sgxb_sgx.dir/enclave.cc.o.d"
  "/root/repo/src/sgx/mee.cc" "src/sgx/CMakeFiles/sgxb_sgx.dir/mee.cc.o" "gcc" "src/sgx/CMakeFiles/sgxb_sgx.dir/mee.cc.o.d"
  "/root/repo/src/sgx/queue_factory.cc" "src/sgx/CMakeFiles/sgxb_sgx.dir/queue_factory.cc.o" "gcc" "src/sgx/CMakeFiles/sgxb_sgx.dir/queue_factory.cc.o.d"
  "/root/repo/src/sgx/sealing.cc" "src/sgx/CMakeFiles/sgxb_sgx.dir/sealing.cc.o" "gcc" "src/sgx/CMakeFiles/sgxb_sgx.dir/sealing.cc.o.d"
  "/root/repo/src/sgx/sgx_mutex.cc" "src/sgx/CMakeFiles/sgxb_sgx.dir/sgx_mutex.cc.o" "gcc" "src/sgx/CMakeFiles/sgxb_sgx.dir/sgx_mutex.cc.o.d"
  "/root/repo/src/sgx/transition.cc" "src/sgx/CMakeFiles/sgxb_sgx.dir/transition.cc.o" "gcc" "src/sgx/CMakeFiles/sgxb_sgx.dir/transition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sgxb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sgxb_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
