file(REMOVE_RECURSE
  "libsgxb_sgx.a"
)
