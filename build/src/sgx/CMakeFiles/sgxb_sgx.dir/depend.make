# Empty dependencies file for sgxb_sgx.
# This may be replaced when dependencies are built.
