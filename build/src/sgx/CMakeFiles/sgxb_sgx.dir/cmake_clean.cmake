file(REMOVE_RECURSE
  "CMakeFiles/sgxb_sgx.dir/enclave.cc.o"
  "CMakeFiles/sgxb_sgx.dir/enclave.cc.o.d"
  "CMakeFiles/sgxb_sgx.dir/mee.cc.o"
  "CMakeFiles/sgxb_sgx.dir/mee.cc.o.d"
  "CMakeFiles/sgxb_sgx.dir/queue_factory.cc.o"
  "CMakeFiles/sgxb_sgx.dir/queue_factory.cc.o.d"
  "CMakeFiles/sgxb_sgx.dir/sealing.cc.o"
  "CMakeFiles/sgxb_sgx.dir/sealing.cc.o.d"
  "CMakeFiles/sgxb_sgx.dir/sgx_mutex.cc.o"
  "CMakeFiles/sgxb_sgx.dir/sgx_mutex.cc.o.d"
  "CMakeFiles/sgxb_sgx.dir/transition.cc.o"
  "CMakeFiles/sgxb_sgx.dir/transition.cc.o.d"
  "libsgxb_sgx.a"
  "libsgxb_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
