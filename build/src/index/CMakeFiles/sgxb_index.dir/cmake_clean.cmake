file(REMOVE_RECURSE
  "CMakeFiles/sgxb_index.dir/btree.cc.o"
  "CMakeFiles/sgxb_index.dir/btree.cc.o.d"
  "libsgxb_index.a"
  "libsgxb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
