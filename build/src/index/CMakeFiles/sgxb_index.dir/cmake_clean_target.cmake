file(REMOVE_RECURSE
  "libsgxb_index.a"
)
