# Empty dependencies file for sgxb_index.
# This may be replaced when dependencies are built.
