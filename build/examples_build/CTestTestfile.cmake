# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples_build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_analytics "/root/repo/build/examples/secure_analytics" "0.01")
set_tests_properties(example_secure_analytics PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scan_filter "/root/repo/build/examples/scan_filter" "8")
set_tests_properties(example_scan_filter PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_enclave_pitfalls "/root/repo/build/examples/enclave_pitfalls")
set_tests_properties(example_enclave_pitfalls PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sealed_spill "/root/repo/build/examples/sealed_spill")
set_tests_properties(example_sealed_spill PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_info "/root/repo/build/examples/sgxbench_cli" "info")
set_tests_properties(example_cli_info PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_join "/root/repo/build/examples/sgxbench_cli" "join" "rho" "--threads" "2" "--mb" "2" "8" "--setting" "sgx-in")
set_tests_properties(example_cli_join PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_scan "/root/repo/build/examples/sgxbench_cli" "scan" "--mb" "8" "--sel" "30")
set_tests_properties(example_cli_scan PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_query "/root/repo/build/examples/sgxbench_cli" "query" "6" "--sf" "0.01")
set_tests_properties(example_cli_query PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
