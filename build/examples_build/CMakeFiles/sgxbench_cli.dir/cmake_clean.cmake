file(REMOVE_RECURSE
  "../examples/sgxbench_cli"
  "../examples/sgxbench_cli.pdb"
  "CMakeFiles/sgxbench_cli.dir/sgxbench_cli.cpp.o"
  "CMakeFiles/sgxbench_cli.dir/sgxbench_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgxbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
