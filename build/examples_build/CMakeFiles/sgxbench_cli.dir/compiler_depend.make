# Empty compiler generated dependencies file for sgxbench_cli.
# This may be replaced when dependencies are built.
