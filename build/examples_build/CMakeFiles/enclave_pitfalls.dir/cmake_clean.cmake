file(REMOVE_RECURSE
  "../examples/enclave_pitfalls"
  "../examples/enclave_pitfalls.pdb"
  "CMakeFiles/enclave_pitfalls.dir/enclave_pitfalls.cpp.o"
  "CMakeFiles/enclave_pitfalls.dir/enclave_pitfalls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
