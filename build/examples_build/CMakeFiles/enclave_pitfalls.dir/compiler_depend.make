# Empty compiler generated dependencies file for enclave_pitfalls.
# This may be replaced when dependencies are built.
