file(REMOVE_RECURSE
  "../examples/secure_analytics"
  "../examples/secure_analytics.pdb"
  "CMakeFiles/secure_analytics.dir/secure_analytics.cpp.o"
  "CMakeFiles/secure_analytics.dir/secure_analytics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
