# Empty compiler generated dependencies file for secure_analytics.
# This may be replaced when dependencies are built.
