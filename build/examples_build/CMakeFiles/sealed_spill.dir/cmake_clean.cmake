file(REMOVE_RECURSE
  "../examples/sealed_spill"
  "../examples/sealed_spill.pdb"
  "CMakeFiles/sealed_spill.dir/sealed_spill.cpp.o"
  "CMakeFiles/sealed_spill.dir/sealed_spill.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sealed_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
