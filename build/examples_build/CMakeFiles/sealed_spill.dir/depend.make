# Empty dependencies file for sealed_spill.
# This may be replaced when dependencies are built.
