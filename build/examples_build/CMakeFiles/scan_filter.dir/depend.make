# Empty dependencies file for scan_filter.
# This may be replaced when dependencies are built.
