file(REMOVE_RECURSE
  "../examples/scan_filter"
  "../examples/scan_filter.pdb"
  "CMakeFiles/scan_filter.dir/scan_filter.cpp.o"
  "CMakeFiles/scan_filter.dir/scan_filter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
