file(REMOVE_RECURSE
  "CMakeFiles/sgx_test.dir/sgx/enclave_concurrency_test.cc.o"
  "CMakeFiles/sgx_test.dir/sgx/enclave_concurrency_test.cc.o.d"
  "CMakeFiles/sgx_test.dir/sgx/enclave_test.cc.o"
  "CMakeFiles/sgx_test.dir/sgx/enclave_test.cc.o.d"
  "CMakeFiles/sgx_test.dir/sgx/mee_test.cc.o"
  "CMakeFiles/sgx_test.dir/sgx/mee_test.cc.o.d"
  "CMakeFiles/sgx_test.dir/sgx/sealing_test.cc.o"
  "CMakeFiles/sgx_test.dir/sgx/sealing_test.cc.o.d"
  "CMakeFiles/sgx_test.dir/sgx/sgx_mutex_test.cc.o"
  "CMakeFiles/sgx_test.dir/sgx/sgx_mutex_test.cc.o.d"
  "sgx_test"
  "sgx_test.pdb"
  "sgx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
