
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perf/cost_model_test.cc" "tests/CMakeFiles/perf_test.dir/perf/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/perf_test.dir/perf/cost_model_test.cc.o.d"
  "/root/repo/tests/perf/machine_model_test.cc" "tests/CMakeFiles/perf_test.dir/perf/machine_model_test.cc.o" "gcc" "tests/CMakeFiles/perf_test.dir/perf/machine_model_test.cc.o.d"
  "/root/repo/tests/perf/paging_test.cc" "tests/CMakeFiles/perf_test.dir/perf/paging_test.cc.o" "gcc" "tests/CMakeFiles/perf_test.dir/perf/paging_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgxb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/sgxb_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/sgxb_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/join/CMakeFiles/sgxb_join.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/sgxb_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/sgxb_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sgxb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sgxb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgxb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
