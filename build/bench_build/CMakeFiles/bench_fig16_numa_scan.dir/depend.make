# Empty dependencies file for bench_fig16_numa_scan.
# This may be replaced when dependencies are built.
