file(REMOVE_RECURSE
  "../bench/bench_ablation_scatter"
  "../bench/bench_ablation_scatter.pdb"
  "CMakeFiles/bench_ablation_scatter.dir/bench_ablation_scatter.cc.o"
  "CMakeFiles/bench_ablation_scatter.dir/bench_ablation_scatter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
