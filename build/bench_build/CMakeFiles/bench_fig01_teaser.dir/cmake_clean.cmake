file(REMOVE_RECURSE
  "../bench/bench_fig01_teaser"
  "../bench/bench_fig01_teaser.pdb"
  "CMakeFiles/bench_fig01_teaser.dir/bench_fig01_teaser.cc.o"
  "CMakeFiles/bench_fig01_teaser.dir/bench_fig01_teaser.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_teaser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
