# Empty dependencies file for bench_fig04_pht_random_access.
# This may be replaced when dependencies are built.
