file(REMOVE_RECURSE
  "../bench/bench_fig03_join_overview"
  "../bench/bench_fig03_join_overview.pdb"
  "CMakeFiles/bench_fig03_join_overview.dir/bench_fig03_join_overview.cc.o"
  "CMakeFiles/bench_fig03_join_overview.dir/bench_fig03_join_overview.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_join_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
