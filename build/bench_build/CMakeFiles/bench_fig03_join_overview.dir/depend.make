# Empty dependencies file for bench_fig03_join_overview.
# This may be replaced when dependencies are built.
