file(REMOVE_RECURSE
  "../bench/bench_ablation_skew"
  "../bench/bench_ablation_skew.pdb"
  "CMakeFiles/bench_ablation_skew.dir/bench_ablation_skew.cc.o"
  "CMakeFiles/bench_ablation_skew.dir/bench_ablation_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
