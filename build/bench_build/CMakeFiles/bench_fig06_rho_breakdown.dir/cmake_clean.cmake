file(REMOVE_RECURSE
  "../bench/bench_fig06_rho_breakdown"
  "../bench/bench_fig06_rho_breakdown.pdb"
  "CMakeFiles/bench_fig06_rho_breakdown.dir/bench_fig06_rho_breakdown.cc.o"
  "CMakeFiles/bench_fig06_rho_breakdown.dir/bench_fig06_rho_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_rho_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
