# Empty dependencies file for bench_ext_cht.
# This may be replaced when dependencies are built.
