file(REMOVE_RECURSE
  "../bench/bench_ext_cht"
  "../bench/bench_ext_cht.pdb"
  "CMakeFiles/bench_ext_cht.dir/bench_ext_cht.cc.o"
  "CMakeFiles/bench_ext_cht.dir/bench_ext_cht.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
