# Empty dependencies file for bench_fig12_scan_single.
# This may be replaced when dependencies are built.
