# Empty dependencies file for bench_ablation_queues.
# This may be replaced when dependencies are built.
