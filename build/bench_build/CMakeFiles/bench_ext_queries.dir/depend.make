# Empty dependencies file for bench_ext_queries.
# This may be replaced when dependencies are built.
