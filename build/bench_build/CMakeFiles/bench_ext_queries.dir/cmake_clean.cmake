file(REMOVE_RECURSE
  "../bench/bench_ext_queries"
  "../bench/bench_ext_queries.pdb"
  "CMakeFiles/bench_ext_queries.dir/bench_ext_queries.cc.o"
  "CMakeFiles/bench_ext_queries.dir/bench_ext_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
