# Empty dependencies file for bench_ext_epc_paging.
# This may be replaced when dependencies are built.
