file(REMOVE_RECURSE
  "../bench/bench_ext_epc_paging"
  "../bench/bench_ext_epc_paging.pdb"
  "CMakeFiles/bench_ext_epc_paging.dir/bench_ext_epc_paging.cc.o"
  "CMakeFiles/bench_ext_epc_paging.dir/bench_ext_epc_paging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_epc_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
