# Empty dependencies file for bench_fig15_linear_rw.
# This may be replaced when dependencies are built.
