file(REMOVE_RECURSE
  "../bench/bench_fig15_linear_rw"
  "../bench/bench_fig15_linear_rw.pdb"
  "CMakeFiles/bench_fig15_linear_rw.dir/bench_fig15_linear_rw.cc.o"
  "CMakeFiles/bench_fig15_linear_rw.dir/bench_fig15_linear_rw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_linear_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
