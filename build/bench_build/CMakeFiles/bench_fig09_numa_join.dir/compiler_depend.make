# Empty compiler generated dependencies file for bench_fig09_numa_join.
# This may be replaced when dependencies are built.
