file(REMOVE_RECURSE
  "../bench/bench_ext_packed_scan"
  "../bench/bench_ext_packed_scan.pdb"
  "CMakeFiles/bench_ext_packed_scan.dir/bench_ext_packed_scan.cc.o"
  "CMakeFiles/bench_ext_packed_scan.dir/bench_ext_packed_scan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_packed_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
