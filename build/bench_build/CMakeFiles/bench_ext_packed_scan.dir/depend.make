# Empty dependencies file for bench_ext_packed_scan.
# This may be replaced when dependencies are built.
