file(REMOVE_RECURSE
  "../bench/bench_ablation_radix_bits"
  "../bench/bench_ablation_radix_bits.pdb"
  "CMakeFiles/bench_ablation_radix_bits.dir/bench_ablation_radix_bits.cc.o"
  "CMakeFiles/bench_ablation_radix_bits.dir/bench_ablation_radix_bits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_radix_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
