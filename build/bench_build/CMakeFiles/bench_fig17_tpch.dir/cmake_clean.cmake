file(REMOVE_RECURSE
  "../bench/bench_fig17_tpch"
  "../bench/bench_fig17_tpch.pdb"
  "CMakeFiles/bench_fig17_tpch.dir/bench_fig17_tpch.cc.o"
  "CMakeFiles/bench_fig17_tpch.dir/bench_fig17_tpch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
