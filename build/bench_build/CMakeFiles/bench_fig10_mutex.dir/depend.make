# Empty dependencies file for bench_fig10_mutex.
# This may be replaced when dependencies are built.
