file(REMOVE_RECURSE
  "../bench/bench_fig10_mutex"
  "../bench/bench_fig10_mutex.pdb"
  "CMakeFiles/bench_fig10_mutex.dir/bench_fig10_mutex.cc.o"
  "CMakeFiles/bench_fig10_mutex.dir/bench_fig10_mutex.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
