# Empty compiler generated dependencies file for bench_fig05_random_access.
# This may be replaced when dependencies are built.
