file(REMOVE_RECURSE
  "../bench/bench_fig05_random_access"
  "../bench/bench_fig05_random_access.pdb"
  "CMakeFiles/bench_fig05_random_access.dir/bench_fig05_random_access.cc.o"
  "CMakeFiles/bench_fig05_random_access.dir/bench_fig05_random_access.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_random_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
