# Empty dependencies file for bench_fig14_scan_selectivity.
# This may be replaced when dependencies are built.
