file(REMOVE_RECURSE
  "../bench/bench_fig14_scan_selectivity"
  "../bench/bench_fig14_scan_selectivity.pdb"
  "CMakeFiles/bench_fig14_scan_selectivity.dir/bench_fig14_scan_selectivity.cc.o"
  "CMakeFiles/bench_fig14_scan_selectivity.dir/bench_fig14_scan_selectivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_scan_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
