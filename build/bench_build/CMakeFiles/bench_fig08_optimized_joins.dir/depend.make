# Empty dependencies file for bench_fig08_optimized_joins.
# This may be replaced when dependencies are built.
