// Figure 15: linear reads and writes (pmbw-style), 64-bit and 512-bit,
// enclave relative to Plain CPU.
//
// Paper shape: in-cache equal; beyond cache the enclave loses up to 5.5%
// (64-bit reads), 3% (512-bit reads), and ~2% (writes).

#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 15", "linear 64/512-bit reads & writes, SGX vs native");
  bench::PrintEnvironment();

  // --- Real host kernels (native bandwidth + validation). --------------
  std::printf("\n  Host-measured native bandwidth (real):\n");
  core::TablePrinter host_table({"array", "read64 GB/s", "read512 GB/s",
                                 "write64 GB/s", "write512 GB/s"});
  for (size_t bytes : {1_MiB, 16_MiB, core::ScaledBytes(1_GiB)}) {
    const size_t n = bytes / sizeof(uint64_t);
    std::vector<uint64_t> arr(n, 1);
    auto bw = [&](auto&& fn) {
      WallTimer t;
      fn();
      return bytes / (static_cast<double>(t.ElapsedNanos()) * 1e-9) / 1e9;
    };
    uint64_t sink = 0;
    double r64 = bw([&] { sink += scan::LinearRead64(arr.data(), n); });
    double r512 = bw([&] { sink += scan::LinearRead512(arr.data(), n); });
    double w64 = bw([&] { scan::LinearWrite64(arr.data(), n, 3); });
    double w512 = bw([&] { scan::LinearWrite512(arr.data(), n, 4); });
    asm volatile("" : "+r"(sink));
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return std::string(buf);
    };
    host_table.AddRow({core::FormatBytes(static_cast<double>(bytes)),
                       fmt(r64), fmt(r512), fmt(w64), fmt(w512)});
  }
  host_table.Print();

  // --- Modeled SGX relative performance (the figure itself). -----------
  std::printf("\n  Modeled SGX relative performance (paper Fig. 15):\n");
  const auto& m = perf::MachineModel::Reference();
  core::TablePrinter table({"region", "read64", "read512", "write64",
                            "write512", "paper"});
  table.AddRow({"in cache", "1.00x", "1.00x", "1.00x", "1.00x",
                "equal"});
  table.AddRow(
      {"beyond cache",
       core::FormatRel(1.0 / m.LinearReadFactorSgx(false)),
       core::FormatRel(1.0 / m.LinearReadFactorSgx(true)),
       core::FormatRel(1.0 / m.LinearWriteFactorSgx()),
       core::FormatRel(1.0 / m.LinearWriteFactorSgx()),
       "0.945 / 0.97 / 0.98"});
  table.Print();

  core::PrintNote(
      "paper: highest reduction 5.5% for 64-bit reads; linear writes "
      "lose only ~2%; the 3% column-scan slowdown of Fig. 12 is the "
      "average of these.");
  return 0;
}
