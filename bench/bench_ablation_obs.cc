// Ablation: cost of the observability layer (docs/observability.md).
//
// The obs contract is "always on": trace/metric probes stay compiled into
// production builds, and a disabled probe must cost one relaxed atomic
// load plus a predictable branch. This bench prices that contract on the
// workload where per-tuple overhead would show first — an out-of-cache
// PHT-style probe loop, the paper's Figure 4 access pattern — and gates
// the disabled-probe overhead at <= 2%.
//
// The loop is a dependent chase through a shuffled cycle — each probe
// waits on the previous one's cache miss, exactly like walking a PHT
// bucket chain that missed in cache. Three variants:
//  * bare          — no probes at all (the pre-obs code).
//  * obs-disabled  — a disabled trace probe per tuple plus a sharded
//                    counter flush per 64-tuple batch. This is far denser
//                    than production instrumentation (real probes sit at
//                    task/phase granularity), so the gate is conservative.
//  * tracing-on    — tracing enabled, one instant event per 64-tuple
//                    batch (realistic enabled density); context row, not
//                    gated.
//
// Exit status: 0 iff obs-disabled / bare <= 1.02 (the CI gate).
//
// CI runs this with SGXBENCH_SMOKE=1 (smaller table, fewer probes); the
// gate applies in both modes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

// 64-bit mix (splitmix64 finalizer): turns the loop counter into an
// out-of-cache index stream without a dependent pointer chase.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

obs::Counter& ProbeCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("bench.obs_probe_tuples");
  return *c;
}

enum class Variant { kBare, kDisabled, kTracingOn };

double RunVariant(Variant v, const std::vector<uint32_t>& table,
                  size_t probes, uint64_t* sink) {
  uint32_t idx = 0;
  WallTimer timer;
  switch (v) {
    case Variant::kBare:
      for (size_t i = 0; i < probes; ++i) {
        idx = table[idx];
      }
      break;
    case Variant::kDisabled:
      for (size_t i = 0; i < probes; ++i) {
        idx = table[idx];
        // The per-tuple probe: with tracing disabled this is one relaxed
        // load and a not-taken branch inside TraceInstant's guard.
        obs::TraceInstant("pht_probe", "bench");
        if ((i & 63u) == 63u) ProbeCounter().Add(64);
      }
      break;
    case Variant::kTracingOn:
      for (size_t i = 0; i < probes; ++i) {
        idx = table[idx];
        if ((i & 63u) == 63u) {
          obs::TraceInstant("pht_probe_batch", "bench");
          ProbeCounter().Add(64);
        }
      }
      break;
  }
  const double ns = static_cast<double>(timer.ElapsedNanos());
  *sink += idx;
  return ns;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation: observability probe overhead",
      "out-of-cache PHT probe loop, bare vs disabled obs probes vs "
      "tracing on; CI gates disabled overhead at <= 2%");
  bench::PrintEnvironment();

  // Table comfortably past LLC so every probe is a memory access; the
  // chase is latency-bound, so far fewer probes suffice than a streaming
  // loop would need.
  const size_t table_bytes = SmokeMode() ? size_t{64_MiB} : size_t{256_MiB};
  const size_t probes = SmokeMode() ? (size_t{1} << 21) : (size_t{1} << 23);
  const int reps = SmokeMode() ? 3 : 5;

  // One full cycle through the table in shuffled order (Sattolo), so the
  // chase visits every slot with no short loops.
  std::vector<uint32_t> table(table_bytes / sizeof(uint32_t));
  for (size_t i = 0; i < table.size(); ++i) {
    table[i] = static_cast<uint32_t>(i);
  }
  uint64_t rng = 0x5eed;
  for (size_t i = table.size() - 1; i > 0; --i) {
    rng = Mix(rng);
    const size_t j = rng % i;  // j < i: Sattolo keeps a single cycle
    std::swap(table[i], table[j]);
  }

  // Tracing must start disabled regardless of the environment: the gated
  // comparison prices the *disabled* probe. (SGXBENCH_TRACE re-enables
  // nothing here — the atexit exporter still runs if set.)
  obs::DisableTracing();

  uint64_t sink = 0;
  double best[3] = {0, 0, 0};
  // Interleave variants across repetitions so frequency drift and page
  // cache warmth hit all three equally; keep the best (min) time each.
  for (int r = 0; r < reps; ++r) {
    for (int v = 0; v < 3; ++v) {
      const Variant variant = static_cast<Variant>(v);
      if (variant == Variant::kTracingOn) {
        obs::EnableTracing();
      } else {
        obs::DisableTracing();
      }
      const double ns = RunVariant(variant, table, probes, &sink);
      if (best[v] == 0 || ns < best[v]) best[v] = ns;
    }
  }
  obs::DisableTracing();
  if (sink == 42) std::printf(" \n");  // defeat dead-code elimination

  const double per_probe_bare = best[0] / static_cast<double>(probes);
  const double ratio_disabled = best[1] / best[0];
  const double ratio_traced = best[2] / best[0];

  core::TablePrinter table_out(
      {"variant", "total", "ns/probe", "vs bare"});
  table_out.AddRow({"bare", core::FormatNanos(best[0]),
                    core::FormatNanos(per_probe_bare), "1.00x"});
  table_out.AddRow({"obs-disabled", core::FormatNanos(best[1]),
                    core::FormatNanos(best[1] / probes),
                    core::FormatRel(1.0 / ratio_disabled)});
  table_out.AddRow({"tracing-on", core::FormatNanos(best[2]),
                    core::FormatNanos(best[2] / probes),
                    core::FormatRel(1.0 / ratio_traced)});
  table_out.Print();
  table_out.ExportCsv("ablation_obs");

  char note[200];
  std::snprintf(note, sizeof(note),
                "disabled probes cost %+.2f%% on an out-of-cache probe "
                "loop at per-tuple density (gate: <= +2%%); tracing on "
                "costs %+.1f%% at one event per 64 tuples.",
                (ratio_disabled - 1.0) * 100.0,
                (ratio_traced - 1.0) * 100.0);
  core::PrintNote(note);

  obs::TraceStats ts = obs::GetTraceStats();
  std::printf("  trace rings: %llu recorded, %llu dropped across %d "
              "threads; counter bench.obs_probe_tuples=%llu\n",
              static_cast<unsigned long long>(ts.recorded),
              static_cast<unsigned long long>(ts.dropped), ts.threads,
              static_cast<unsigned long long>(ProbeCounter().Value()));

  return ratio_disabled <= 1.02 ? 0 : 1;
}
