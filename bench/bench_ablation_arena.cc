// Ablation: the arena memory subsystem under repeated queries against one
// long-lived enclave (docs/memory.md).
//
// Sweeps {fresh-alloc, arena, arena+pool} x {static, dynamic-EDMM}. Every
// configuration runs the same RHO join (materialized output) several times
// in a row inside a single enclave, the way a resident secure DBMS serves
// a query stream. "fresh-alloc" makes one resource allocation per
// structure (AllocPolicy::kDirect); "arena" bump-allocates per query but
// frees the chunks at query end; "arena+pool" keeps the chunks committed
// in a shared ArenaPool across queries.
//
// Under static sizing the three are near-identical: pages are committed
// at enclave build, so the allocator path only moves cheap host mallocs.
// Under dynamic sizing with EDMM trim-on-free (a minimal-footprint
// enclave), every query of the fresh and per-query-arena configurations
// re-pays the page-commit cost that the pool pays once — the Figure 11
// static-vs-dynamic gap reproduced, and closed, at the allocator level.
//
// CI runs this with SGXBENCH_SMOKE=1 (tiny inputs) for the code path and
// the CSV artifact; headline numbers need a normal run.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

struct AllocMode {
  const char* label;
  join::AllocPolicy policy;
  bool pooled;
};

struct Sizing {
  const char* label;
  bool dynamic;
};

struct SteadyState {
  double first_ns = 0;       // query 1: cold allocations / EDMM growth
  double steady_ns = 0;      // mean of queries 2..N
  double steady_pages = 0;   // EDMM pages added per steady query
  uint64_t reuse_hits = 0;
};

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation: arena memory subsystem",
      "repeated RHO joins in one long-lived enclave: fresh-alloc vs "
      "arena vs arena+pool, static vs dynamic-EDMM sizing");
  bench::PrintEnvironment();

  const size_t build_tuples = BytesToTuples(
      SmokeMode() ? size_t{1_MiB} : core::ScaledBytes(25_MiB));
  const size_t probe_tuples = BytesToTuples(
      SmokeMode() ? size_t{4_MiB} : core::ScaledBytes(100_MiB));
  const int queries = SmokeMode() ? 3 : 6;
  const int threads = SmokeMode() ? 2 : bench::HostThreads(8);

  // Inputs stay untrusted (the paper's data-outside storage); everything
  // the join allocates — partitions, hash tables, materialized output —
  // goes to the enclave heap through the mem/ resources.
  auto build = join::GenerateBuildRelation(build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(probe_tuples, build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  const double total_rows =
      static_cast<double>(build_tuples) + probe_tuples;

  const size_t worst_case_bytes =
      4 * (build.size_bytes() + probe.size_bytes()) +
      probe_tuples * sizeof(JoinOutputTuple) + 32_MiB;

  const AllocMode kModes[] = {
      {"fresh-alloc", join::AllocPolicy::kDirect, false},
      {"arena", join::AllocPolicy::kArena, false},
      {"arena+pool", join::AllocPolicy::kArena, true},
  };
  const Sizing kSizings[] = {
      {"static", false},
      {"dynamic-EDMM", true},
  };

  core::TablePrinter table({"sizing", "alloc", "first query",
                            "steady query", "EDMM pages/query",
                            "pool hits", "vs fresh"});

  // steady_pages of the fresh-alloc run, per sizing, for the reduction %.
  double fresh_pages[2] = {0, 0};
  double fresh_steady_ns[2] = {0, 0};
  double dyn_pool_reduction = 0;

  int sizing_idx = 0;
  for (const Sizing& sizing : kSizings) {
    for (const AllocMode& mode : kModes) {
      sgx::EnclaveConfig ecfg;
      ecfg.dynamic = sizing.dynamic;
      ecfg.initial_heap_bytes =
          sizing.dynamic ? size_t{1_MiB} : worst_case_bytes;
      ecfg.max_heap_bytes = worst_case_bytes;
      // Trim-on-free models a minimal-footprint dynamic enclave: freed
      // pages go back to the EPC, so without reuse each query re-grows.
      ecfg.edmm_trim = sizing.dynamic;
      sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

      mem::ArenaPool pool(mem::ForEnclave(enclave));

      join::JoinConfig cfg;
      cfg.num_threads = threads;
      cfg.flavor = KernelFlavor::kUnrolledReordered;
      cfg.setting = ExecutionSetting::kSgxDataInEnclave;
      cfg.enclave = enclave;
      cfg.materialize = true;
      cfg.alloc_policy = mode.policy;
      cfg.arena_pool = mode.pooled ? &pool : nullptr;

      SteadyState s;
      uint64_t pages_before = 0;
      for (int q = 0; q < queries; ++q) {
        pages_before = enclave->memory_stats().edmm_pages_added;
        WallTimer timer;
        join::JoinResult r = join::RhoJoin(build, probe, cfg).value();
        const double wall_ns =
            static_cast<double>(timer.ElapsedNanos());
        (void)r;
        const uint64_t pages_this_query =
            enclave->memory_stats().edmm_pages_added - pages_before;
        if (q == 0) {
          s.first_ns = wall_ns;
        } else {
          s.steady_ns += wall_ns / (queries - 1);
          s.steady_pages +=
              static_cast<double>(pages_this_query) / (queries - 1);
        }
      }
      s.reuse_hits = pool.stats().reuse_hits;
      if (mode.policy == join::AllocPolicy::kDirect) {
        fresh_pages[sizing_idx] = s.steady_pages;
        fresh_steady_ns[sizing_idx] = s.steady_ns;
      }

      const double vs_fresh =
          fresh_steady_ns[sizing_idx] > 0
              ? fresh_steady_ns[sizing_idx] / s.steady_ns
              : 1.0;
      table.AddRow({sizing.label, mode.label,
                    core::FormatNanos(s.first_ns),
                    core::FormatNanos(s.steady_ns),
                    std::to_string(static_cast<uint64_t>(s.steady_pages)),
                    std::to_string(s.reuse_hits),
                    core::FormatRel(vs_fresh)});

      if (sizing.dynamic && mode.pooled && fresh_pages[sizing_idx] > 0) {
        dyn_pool_reduction =
            100.0 * (1.0 - s.steady_pages / fresh_pages[sizing_idx]);
      }
      // The pool outlives this iteration's enclave; drop its cached
      // chunks while the enclave can still be credited.
      pool.Trim();
      sgx::DestroyEnclave(enclave);
    }
    ++sizing_idx;
  }

  table.Print();
  table.ExportCsv("ablation_arena");

  char note[160];
  std::snprintf(note, sizeof(note),
                "pool reuse under dynamic-EDMM eliminates %.1f%% of the "
                "per-query EDMM page commits a fresh-allocating query "
                "stream pays (target: >= 90%%).",
                dyn_pool_reduction);
  core::PrintNote(note);
  core::PrintNote(
      "throughput baseline for context: " +
      core::FormatRowsPerSec(total_rows /
                             (fresh_steady_ns[1] * 1e-9)) +
      " at fresh-alloc steady state under dynamic sizing.");
  return dyn_pool_reduction >= 90.0 ? 0 : 1;
}
