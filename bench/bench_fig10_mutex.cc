// Figure 10: task-queue implementation under contention — REAL execution.
//
// The RHO join is forced into many tiny partition/join tasks (high radix
// fan-out on a small input) so threads hammer the task queue. We compare
// the lock-free queue with the TEEBench-style mutex queue, natively and
// inside the simulated enclave. The enclave's SDK mutex really parks via
// an OCALL round-trip whose transition cost is injected as a real delay,
// so the collapse is measured, not modeled.
//
// Paper shape: outside the enclave, the queue choice hardly matters;
// inside, the mutex queue loses ~75% of the lock-free throughput.

#include "bench_util.h"
#include "obs/metrics.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 10",
      "mutex vs lock-free task queue under contention (real delays)");
  bench::PrintEnvironment();

  // Small input + high fan-out = tiny partitions = queue contention.
  const size_t build_tuples = BytesToTuples(core::ScaledBytes(20_MiB));
  const size_t probe_tuples = BytesToTuples(core::ScaledBytes(80_MiB));
  const double total_rows =
      static_cast<double>(build_tuples) + probe_tuples;

  auto build = join::GenerateBuildRelation(build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(probe_tuples, build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();

  // More threads than cores still contends; the paper uses 16.
  const int threads = std::max(4, bench::HostThreads(16));

  core::TablePrinter table({"setting", "queue", "measured time",
                            "measured throughput", "vs lock-free"});

  perf::PhaseBreakdown sgx_lockfree_phases;
  for (ExecutionSetting setting :
       {ExecutionSetting::kPlainCpu,
        ExecutionSetting::kSgxDataInEnclave}) {
    double lockfree_tput = 0;
    for (TaskQueueKind kind :
         {TaskQueueKind::kLockFree, TaskQueueKind::kMutex}) {
      join::JoinConfig cfg;
      cfg.num_threads = threads;
      cfg.flavor = KernelFlavor::kUnrolledReordered;
      cfg.queue = kind;
      cfg.setting = setting;
      cfg.radix_bits = 16;  // 65536 tasks: heavy queue traffic
      cfg.radix_passes = 2;

      core::Measurement m = core::Repeat([&] {
        join::JoinResult r = join::RhoJoin(build, probe, cfg).value();
        if (setting == ExecutionSetting::kSgxDataInEnclave &&
            kind == TaskQueueKind::kLockFree) {
          sgx_lockfree_phases = r.phases;
        }
        return r.host_ns;
      });
      double tput = total_rows / (m.mean_ns * 1e-9);
      if (kind == TaskQueueKind::kLockFree) lockfree_tput = tput;
      table.AddRow({ExecutionSettingToString(setting),
                    TaskQueueKindToString(kind),
                    core::FormatNanos(m.mean_ns),
                    core::FormatRowsPerSec(tput),
                    core::FormatRel(tput / lockfree_tput)});
    }
  }
  table.Print();
  table.ExportCsv("fig10");

  // --- Modeled at the paper's 16 threads -------------------------------
  // With one core, threads rarely collide on the lock, so the measured
  // contrast above is muted. On a 16-core machine nearly every pop of a
  // tiny task contends: a parked waiter pays an OCALL round-trip plus the
  // futex syscall, and the owner pays another OCALL to wake it — all
  // serialized through the lock (the paper's avalanche effect).
  {
    const auto& cal = perf::CalibrationParams::Default();
    const double tasks =
        static_cast<double>(1u << 16) * 2;  // partition + join tasks
    const double park_wake_ns =
        (4.0 * cal.transition_cycles + cal.futex_syscall_cycles) /
        cal.base_frequency_hz * 1e9;
    double base_ns = core::ModeledReferenceNs(
        bench::PaperScale(sgx_lockfree_phases),
        ExecutionSetting::kSgxDataInEnclave, false, 16);
    // The paper's 75% loss corresponds to the mutex join taking 4x the
    // lock-free time; each park/wake costs four transitions + a futex.
    double parks_for_paper_loss = 3.0 * base_ns / park_wake_ns;
    std::printf(
        "\n  at 16 threads (ref machine), the lock-free join models to "
        "%s;\n  one mutex park/wake costs %s (4 transitions + futex), so "
        "the paper's\n  75%% loss corresponds to only %.1f%% of the "
        "%.0fk task pops parking —\n  the avalanche makes that fraction "
        "self-amplifying under contention.\n",
        core::FormatNanos(base_ns).c_str(),
        core::FormatNanos(park_wake_ns).c_str(),
        100.0 * parks_for_paper_loss / tasks, tasks / 1000.0);
  }

  sgx::TransitionStats stats = sgx::GetTransitionStats();
  std::printf(
      "  transitions injected during this bench: %llu ecalls, %llu "
      "ocalls\n",
      static_cast<unsigned long long>(stats.ecalls),
      static_cast<unsigned long long>(stats.ocalls));
  // The park/wake mechanism counts come straight from the obs registry —
  // the same counters a QueryReport cites (docs/observability.md).
  obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  std::printf(
      "  registry: sgx.mutex_parks=%llu sgx.mutex_wake_ocalls=%llu\n",
      static_cast<unsigned long long>(snap.CounterOr(obs::kCtrMutexParks)),
      static_cast<unsigned long long>(
          snap.CounterOr(obs::kCtrMutexWakeOcalls)));
  core::PrintNote(
      "paper: inside the enclave the mutex-guarded queue loses 75% "
      "throughput; the SDK mutex sleeps via OCALL and waking the next "
      "owner stretches the critical section (avalanche effect).");
  return 0;
}
