// Figure 1: the paper's headline result.
//
// Joining a 100 MB (hash) and a 400 MB (probe) table inside an SGXv2
// enclave: the SGXv1-optimized CrkJoin is far slower than a state-of-the-
// art radix join, and the unroll-and-reorder optimization brings the
// radix join close to its native (non-enclave) performance.
//
// Paper shape: CrkJoin ~60 M rows/s; RHO in enclave ~12x CrkJoin; the
// SGXv2-optimized RHO ~20x CrkJoin and ~83% of native RHO.

#include "bench_util.h"

using namespace sgxb;

namespace {

struct Bar {
  std::string label;
  ExecutionSetting setting;
  double modeled_ns;
};

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Figure 1",
      "100 MB x 400 MB join: SGXv1-optimized vs SGXv2-optimized");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  const double total_rows = bench::PaperRows(
      static_cast<double>(sizes.build_tuples) + sizes.probe_tuples);
  const int paper_threads = 16;
  const int host_threads = bench::HostThreads(paper_threads);

  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();

  auto run = [&](join::JoinAlgorithm algo, KernelFlavor flavor) {
    join::JoinConfig cfg;
    cfg.num_threads = host_threads;
    cfg.flavor = flavor;
    if (algo == join::JoinAlgorithm::kCrk) {
      return join::CrkJoin(build, probe, cfg).value();
    }
    return join::RhoJoin(build, probe, cfg).value();
  };

  join::JoinResult crk = run(join::JoinAlgorithm::kCrk,
                             KernelFlavor::kReference);
  join::JoinResult rho_ref = run(join::JoinAlgorithm::kRho,
                                 KernelFlavor::kReference);
  join::JoinResult rho_opt = run(join::JoinAlgorithm::kRho,
                                 KernelFlavor::kUnrolledReordered);

  std::vector<Bar> bars = {
      {"CrkJoin (SGXv1-optimized), in enclave",
       ExecutionSetting::kSgxDataInEnclave,
       core::ModeledReferenceNs(bench::PaperScale(crk.phases),
                                ExecutionSetting::kSgxDataInEnclave,
                                false, paper_threads)},
      {"RHO (state of the art), in enclave",
       ExecutionSetting::kSgxDataInEnclave,
       core::ModeledReferenceNs(bench::PaperScale(rho_ref.phases),
                                ExecutionSetting::kSgxDataInEnclave,
                                false, paper_threads)},
      {"RHO + unroll/reorder (SGXv2-optimized), in enclave",
       ExecutionSetting::kSgxDataInEnclave,
       core::ModeledReferenceNs(bench::PaperScale(rho_opt.phases),
                                ExecutionSetting::kSgxDataInEnclave,
                                false, paper_threads)},
      {"RHO, native (no enclave)", ExecutionSetting::kPlainCpu,
       core::ModeledReferenceNs(bench::PaperScale(rho_opt.phases),
                                ExecutionSetting::kPlainCpu, false,
                                paper_threads)},
  };

  const double crk_tput = total_rows / (bars[0].modeled_ns * 1e-9);
  core::TablePrinter table({"configuration", "modeled throughput",
                            "vs CrkJoin", "paper factor"});
  const char* paper_factors[] = {"1x", "~12x", "~20x", "~24x"};
  int i = 0;
  for (const Bar& bar : bars) {
    double tput = total_rows / (bar.modeled_ns * 1e-9);
    table.AddRow({bar.label, core::FormatRowsPerSec(tput),
                  core::FormatRel(tput / crk_tput), paper_factors[i++]});
  }
  table.Print();
  table.ExportCsv("fig01");

  core::PrintNote(
      "paper: CrkJoin reaches only ~60 M rows/s in SGXv2; RHO is ~12x "
      "faster in-enclave, and the unroll/reorder optimization brings RHO "
      "to ~83% of native.");
  std::printf("  verification: all joins matched %llu rows (expected %zu)\n",
              static_cast<unsigned long long>(rho_opt.matches),
              sizes.probe_tuples);
  return 0;
}
