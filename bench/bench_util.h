// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one table or figure of the paper. The
// protocol, common to all of them:
//
//  * Workloads are the paper's, scaled to 1/10 by default so the suite
//    finishes on a small CI machine; SGXBENCH_FULL=1 restores paper scale.
//  * Algorithms really run on the host (validating code paths and giving
//    real native numbers); the three execution settings are then derived
//    per recorded phase: "host-scaled" = measured native time x model
//    slowdown, and "modeled" = absolute analytic estimate on the paper's
//    Table 1 reference machine.
//  * Each bench prints the paper's reported numbers or factors alongside,
//    so shape agreement (who wins, by what factor) is visible at a glance.

#ifndef SGXB_BENCH_BENCH_UTIL_H_
#define SGXB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <string>

#include "core/sgxbench.h"

namespace sgxb::bench {

/// \brief The paper's canonical join input: 100 MB build, 400 MB probe
/// (Figure 1/3/6/8), scaled for the host.
struct JoinSizes {
  size_t build_tuples;
  size_t probe_tuples;
};

inline JoinSizes PaperJoinSizes() {
  return JoinSizes{
      BytesToTuples(core::ScaledBytes(100_MiB)),
      BytesToTuples(core::ScaledBytes(400_MiB)),
  };
}

/// \brief Threads used for the *real* host execution: the paper's count,
/// capped at the host's logical cores (the modeled numbers always use the
/// paper's 16/32 threads on the reference machine).
inline int HostThreads(int paper_threads) {
  return std::max(1,
                  std::min(paper_threads, CpuInfo::Host().logical_cores));
}

/// \brief Scales a recorded breakdown back to the paper's workload size
/// for modeling: at CI scale (1/10), volumes AND working sets are 10x
/// smaller than the paper's, which would hide cache-overflow effects on
/// the reference machine. No-op under SGXBENCH_FULL=1.
inline perf::PhaseBreakdown PaperScale(
    const perf::PhaseBreakdown& breakdown) {
  if (core::FullScale()) return breakdown;
  perf::PhaseBreakdown out;
  for (const auto& phase : breakdown.phases) {
    perf::PhaseStats scaled = phase;
    scaled.profile = phase.profile.ScaledBy(10.0);
    scaled.host_ns = phase.host_ns * 10.0;
    out.Add(std::move(scaled));
  }
  return out;
}

/// \brief Total input rows at paper scale (matching PaperScale above).
inline double PaperRows(double host_rows) {
  return core::FullScale() ? host_rows : host_rows * 10.0;
}

/// \brief Prints the standard three-setting table for one recorded
/// operator run: native host time, host-scaled and modeled times for the
/// SGX settings, plus throughput columns in rows/s.
inline void PrintSettingsTable(const perf::PhaseBreakdown& phases,
                               double total_rows, int paper_threads) {
  core::TablePrinter table(
      {"setting", "host-scaled time", "modeled (ref machine)",
       "modeled throughput", "rel. to native"});
  const double modeled_native = core::ModeledReferenceNs(
      phases, ExecutionSetting::kPlainCpu, false, paper_threads);
  for (ExecutionSetting setting :
       {ExecutionSetting::kPlainCpu, ExecutionSetting::kSgxDataInEnclave,
        ExecutionSetting::kSgxDataOutsideEnclave}) {
    double host_scaled = core::HostScaledNs(phases, setting);
    double modeled = core::ModeledReferenceNs(phases, setting, false,
                                              paper_threads);
    table.AddRow({ExecutionSettingToString(setting),
                  core::FormatNanos(host_scaled),
                  core::FormatNanos(modeled),
                  core::FormatRowsPerSec(total_rows / (modeled * 1e-9)),
                  core::FormatRel(modeled_native / modeled)});
  }
  table.Print();
}

/// \brief One-line experiment environment banner.
inline void PrintEnvironment() {
  const CpuInfo& cpu = CpuInfo::Host();
  std::printf(
      "  host: %s (%d cores, %s) | reps=%d | %s scale\n",
      cpu.model_name.c_str(), cpu.logical_cores,
      SimdLevelToString(cpu.max_simd), core::DefaultRepetitions(),
      core::FullScale() ? "paper (SGXBENCH_FULL=1)" : "1/10 (CI)");
}

}  // namespace sgxb::bench

#endif  // SGXB_BENCH_BENCH_UTIL_H_
