// Serving throughput and tail-latency fairness (docs/serving.md).
//
// Drives the multi-tenant QueryServer with a mixed workload from 1 to
// 1000 concurrent clients: cheap pure-scan queries (Q6, Q1), medium
// selection+join queries (Q12, Q19), and heavy multi-join queries
// (Q3, Q10). Reports queries/sec and exact per-class p50/p99 latency at
// each client count, split into end-to-end (submit -> response, queueing
// included) and execution-only time.
//
// The fairness gate: a cheap query's p99 *execution* time under full
// load must stay within 3x its isolated p99. Execution time is what the
// scheduler controls — share-aware gang sizing and worker leasing keep a
// heavy Q3 from monopolizing the pool — while end-to-end time at 1000
// clients is dominated by the admission queue, whose depth is the
// client's choice of offered load, not a scheduling property. The gate
// is enforced in smoke mode too (exit 1 on violation).
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_serve_throughput
// CI runs SGXBENCH_SMOKE=1 (SF 0.01, up to 8 clients) and keeps the CSV
// as an artifact.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/executor.h"
#include "serve/serve.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

struct QueryClass {
  const char* name;
  std::vector<int> queries;
  int priority;  // cheap interactive traffic outranks heavy analytics
};

const std::vector<QueryClass>& Classes() {
  static const std::vector<QueryClass> classes = {
      {"cheap", {6, 1}, 2},
      {"medium", {12, 19}, 1},
      {"heavy", {3, 10}, 0},
  };
  return classes;
}

struct Sample {
  double total_ns = 0;
  double exec_ns = 0;
};

struct ClassSeries {
  std::vector<double> total_ns;
  std::vector<double> exec_ns;
};

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t rank = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[rank];
}

// One client's deterministic walk through the mix: 4 cheap : 2 medium :
// 1 heavy, offset by the client id so concurrent clients interleave
// classes instead of phase-locking.
int ClassOfStep(int step) {
  const int m = step % 7;
  if (m < 4) return 0;
  if (m < 6) return 1;
  return 2;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Serving", "multi-tenant throughput and tail-latency fairness");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor = SmokeMode() ? 0.01 : (core::FullScale() ? 1.0 : 0.1);
  std::printf("  generating TPC-H data at SF %.2f ...\n", gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();

  serve::ServerOptions opts = serve::ServerOptions::FromEnv();
  if (opts.worker_share == 0) {
    // Default worker share for the bench: a quarter of the host, so even
    // a heavy query leaves three quarters of the pool to others.
    opts.worker_share =
        std::max(1, exec::Executor::DefaultParallelism() / 4);
  }
  opts.max_queue = 1 << 20;  // measure scheduling, not admission drops
  std::printf("  max_inflight=%d worker_share=%d\n", opts.max_inflight,
              opts.worker_share);

  const std::vector<int> client_counts =
      SmokeMode() ? std::vector<int>{1, 8}
                  : std::vector<int>{1, 8, 64, 256, 1000};

  // Phase A: isolated per-class baselines (one query at a time through
  // the same server configuration).
  std::vector<double> isolated_exec_p99(Classes().size(), 0);
  {
    serve::QueryServer server(db, opts);
    for (size_t c = 0; c < Classes().size(); ++c) {
      std::vector<double> exec_ns;
      const int reps = SmokeMode() ? 3 : 9;
      for (int rep = 0; rep < reps; ++rep) {
        for (int query : Classes()[c].queries) {
          serve::QueryRequest req;
          req.query_number = query;
          req.priority = Classes()[c].priority;
          serve::QueryResponse r = server.Submit(req).get();
          if (!r.status.ok()) {
            std::fprintf(stderr, "isolated Q%d failed: %s\n", query,
                         r.status.ToString().c_str());
            return 1;
          }
          exec_ns.push_back(r.exec_ns);
        }
      }
      isolated_exec_p99[c] = Percentile(exec_ns, 0.99);
    }
  }

  core::TablePrinter table({"clients", "class", "queries", "q/s",
                            "p50 total", "p99 total", "p50 exec",
                            "p99 exec", "vs isolated p99"});

  bool fairness_violated = false;
  double worst_cheap_ratio = 0.0;

  for (int clients : client_counts) {
    serve::QueryServer server(db, opts);
    // Keep total work bounded as the client count grows: the point of
    // the high-client runs is queueing behaviour, not more samples.
    const int per_client =
        SmokeMode() ? 4 : std::max(2, 512 / std::max(1, clients));

    std::vector<ClassSeries> series(Classes().size());
    std::mutex series_mu;
    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    std::atomic<uint64_t> failures{0};
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::pair<int, Sample>> local;
        for (int step = 0; step < per_client; ++step) {
          const int cls = ClassOfStep(c + step);
          const QueryClass& qc = Classes()[cls];
          serve::QueryRequest req;
          req.query_number = qc.queries[(c + step) % qc.queries.size()];
          req.priority = qc.priority;
          WallTimer t;
          serve::QueryResponse r = server.Submit(req).get();
          if (!r.status.ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          Sample s;
          s.total_ns = static_cast<double>(t.ElapsedNanos());
          s.exec_ns = r.exec_ns;
          local.emplace_back(cls, s);
        }
        std::lock_guard<std::mutex> lock(series_mu);
        for (const auto& [cls, s] : local) {
          series[cls].total_ns.push_back(s.total_ns);
          series[cls].exec_ns.push_back(s.exec_ns);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s = static_cast<double>(wall.ElapsedNanos()) * 1e-9;
    if (failures.load() != 0) {
      std::fprintf(stderr, "%llu queries failed at %d clients\n",
                   static_cast<unsigned long long>(failures.load()),
                   clients);
      return 1;
    }

    const bool full_load = clients == client_counts.back();
    for (size_t cls = 0; cls < Classes().size(); ++cls) {
      const ClassSeries& s = series[cls];
      if (s.total_ns.empty()) continue;
      const double p99_exec = Percentile(s.exec_ns, 0.99);
      const double ratio = isolated_exec_p99[cls] > 0
                               ? p99_exec / isolated_exec_p99[cls]
                               : 0;
      if (full_load && cls == 0) {
        worst_cheap_ratio = ratio;
        if (ratio > 3.0) fairness_violated = true;
      }
      table.AddRow({std::to_string(clients), Classes()[cls].name,
                    std::to_string(s.total_ns.size()),
                    core::FormatRel(static_cast<double>(s.total_ns.size()) /
                                    wall_s),
                    core::FormatNanos(Percentile(s.total_ns, 0.5)),
                    core::FormatNanos(Percentile(s.total_ns, 0.99)),
                    core::FormatNanos(Percentile(s.exec_ns, 0.5)),
                    core::FormatNanos(p99_exec), core::FormatRel(ratio)});
    }
  }

  table.Print();
  table.ExportCsv("serve_throughput");

  std::printf(
      "  fairness: cheap-class p99 exec at full load = %.2fx isolated "
      "(gate: <= 3x)\n",
      worst_cheap_ratio);
  core::PrintNote(
      "end-to-end p99 at high client counts is queueing delay by "
      "construction (offered load exceeds the admission bound); the "
      "execution-time ratio shows what the worker-share cap and fair "
      "gang sizing buy: cheap queries keep near-isolated execution "
      "times while heavy joins run beside them.");

  if (fairness_violated) {
    std::fprintf(stderr,
                 "FAIL: cheap-class p99 exec exceeded 3x isolated under "
                 "full load\n");
    return 1;
  }
  return 0;
}
