// Figure 6: runtime breakdown of a single-threaded RHO join (100 MB x
// 400 MB), without and with the unroll-and-reorder optimization.
//
// Paper shape: without the optimization, the histogram and partition-copy
// phases are the dominant in-enclave overheads (histograms up to 4x
// slower); with it, those phases improve dramatically and the remaining
// gap is the random-write penalty.

#include "bench_util.h"

using namespace sgxb;

namespace {

void PrintBreakdown(const char* title, const join::JoinResult& result) {
  perf::PhaseBreakdown scaled = bench::PaperScale(result.phases);
  std::printf("\n  %s:\n", title);
  core::TablePrinter table({"phase", "host native", "modeled native",
                            "modeled SGX-in", "slowdown"});
  double total_native = 0, total_sgx = 0;
  for (const auto& phase : scaled.phases) {
    double native =
        core::ModeledPhaseNs(phase, ExecutionSetting::kPlainCpu);
    double sgx = core::ModeledPhaseNs(
        phase, ExecutionSetting::kSgxDataInEnclave);
    total_native += native;
    total_sgx += sgx;
    table.AddRow({phase.name, core::FormatNanos(phase.host_ns),
                  core::FormatNanos(native), core::FormatNanos(sgx),
                  core::FormatRel(sgx / native)});
  }
  table.AddRow({"TOTAL", core::FormatNanos(scaled.TotalHostNs()),
                core::FormatNanos(total_native),
                core::FormatNanos(total_sgx),
                core::FormatRel(total_sgx / total_native)});
  table.Print();
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Figure 6",
      "single-threaded RHO phase breakdown, reference vs unrolled");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();

  join::JoinConfig cfg;
  cfg.num_threads = 1;

  cfg.flavor = KernelFlavor::kReference;
  join::JoinResult ref = join::RhoJoin(build, probe, cfg).value();
  PrintBreakdown("Without optimization (Listing 1 kernels)", ref);

  cfg.flavor = KernelFlavor::kUnrolledReordered;
  join::JoinResult opt = join::RhoJoin(build, probe, cfg).value();
  PrintBreakdown("With unroll + reorder (Listing 2 kernels)", opt);

  double ref_sgx = core::ModeledReferenceNs(
      bench::PaperScale(ref.phases), ExecutionSetting::kSgxDataInEnclave);
  double opt_sgx = core::ModeledReferenceNs(
      bench::PaperScale(opt.phases), ExecutionSetting::kSgxDataInEnclave);
  std::printf(
      "\n  optimization reduces the single-threaded in-enclave join time "
      "by %.0f%% (paper: 43%%)\n",
      (1.0 - opt_sgx / ref_sgx) * 100.0);
  core::PrintNote(
      "paper: histogram phases are up to 4x slower in the enclave "
      "without the optimization; with it, the remaining difference is "
      "random-write cost.");
  return 0;
}
