// Figure 4: random access in the PHT join.
//
// Left: relative throughput (SGX / Plain CPU) of a single-threaded PHT
// join as the build table grows from cache-resident (1 MB) to 4x larger
// than L3 (100 MB); probe fixed at 400 MB. Paper: 95% at 1 MB, 62% at
// 50 MB, 51% at 100 MB.
//
// Right: phase breakdown at 100 MB — the build phase (random writes)
// loses far more than the probe phase (random reads); the paper reports
// the build phase up to 9x slower.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 4", "PHT join: random-access penalty by hash table size");
  bench::PrintEnvironment();

  const size_t probe_tuples = BytesToTuples(core::ScaledBytes(400_MiB));
  const size_t build_sizes_mb[] = {1, 10, 25, 50, 100};

  core::TablePrinter table({"build size (paper)", "hash table",
                            "modeled SGX/native", "paper"});
  const char* paper_rel[] = {"95%", "-", "-", "62%", "51%"};

  join::JoinResult at_100mb;
  int row = 0;
  for (size_t mb : build_sizes_mb) {
    const size_t build_tuples = BytesToTuples(core::ScaledBytes(
        mb * 1_MiB));
    auto build = join::GenerateBuildRelation(build_tuples,
                                             MemoryRegion::kUntrusted)
                     .value();
    // Probe keys must hit the build domain: regenerate with the domain.
    auto probe_rel = join::GenerateProbeRelation(
                         probe_tuples, build_tuples,
                         MemoryRegion::kUntrusted)
                         .value();

    join::JoinConfig cfg;
    cfg.num_threads = 1;  // single-threaded, as in the paper
    cfg.flavor = KernelFlavor::kReference;
    join::JoinResult result = join::PhtJoin(build, probe_rel, cfg).value();
    if (mb == 100) at_100mb = std::move(result);
    const join::JoinResult& r = mb == 100 ? at_100mb : result;

    perf::PhaseBreakdown paper_phases = bench::PaperScale(r.phases);
    double native = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kPlainCpu);
    double sgx = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kSgxDataInEnclave);
    table.AddRow({std::to_string(mb) + " MB",
                  core::FormatBytes(static_cast<double>(
                      join::PhtHashTableBytes(build_tuples) *
                      (core::FullScale() ? 1 : 10))),
                  core::FormatRel(native / sgx), paper_rel[row++]});
  }
  table.Print();
  table.ExportCsv("fig04");

  core::PrintNote(
      "relative performance degrades once the shared hash table outgrows "
      "the L3 cache — the paper's core random-access finding.");

  // --- Right side: phase breakdown at 100 MB. ---
  std::printf("\n  Phase breakdown at 100 MB build size:\n");
  core::TablePrinter phases({"phase", "modeled native", "modeled SGX",
                             "slowdown"});
  perf::PhaseBreakdown scaled_100mb = bench::PaperScale(at_100mb.phases);
  for (const auto& phase : scaled_100mb.phases) {
    double native = core::ModeledPhaseNs(phase,
                                         ExecutionSetting::kPlainCpu);
    double sgx = core::ModeledPhaseNs(
        phase, ExecutionSetting::kSgxDataInEnclave);
    phases.AddRow({phase.name, core::FormatNanos(native),
                   core::FormatNanos(sgx),
                   core::FormatRel(sgx / native)});
  }
  phases.Print();
  core::PrintNote(
      "paper: the build phase (random writes into the table) suffers a "
      "considerably higher penalty than the probe phase (random reads).");
  return 0;
}
