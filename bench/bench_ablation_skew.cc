// Ablation A4: key skew and the SGX random-access penalty.
//
// The paper evaluates uniform foreign keys only. This ablation joins a
// uniform build table against Zipf-skewed probe tables: with rising skew,
// probes concentrate on a few hot keys that stay cache-resident, so the
// SGXv2 random-access penalty on the PHT join *shrinks* — corroborating
// the paper's cache-residency lesson from a different angle. RHO is
// insensitive (it partitions to cache anyway).

#include <algorithm>
#include <functional>
#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Ablation A4", "Zipf-skewed probes: skew shrinks the SGX penalty");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();

  core::TablePrinter table({"zipf theta", "matches", "PHT probe SGX/native",
                            "RHO probe SGX/native", "hot-key share"});
  for (double theta : {0.0, 0.5, 0.75, 0.95}) {
    auto probe =
        theta == 0.0
            ? join::GenerateProbeRelation(sizes.probe_tuples,
                                          sizes.build_tuples,
                                          MemoryRegion::kUntrusted)
                  .value()
            : join::GenerateSkewedProbeRelation(
                  sizes.probe_tuples, sizes.build_tuples, theta,
                  MemoryRegion::kUntrusted)
                  .value();

    join::JoinConfig cfg;
    cfg.num_threads = bench::HostThreads(16);
    cfg.flavor = KernelFlavor::kReference;
    auto pht = join::PhtJoin(build, probe, cfg).value();
    auto rho = join::RhoJoin(build, probe, cfg).value();

    // With skew, the *effective* random working set of the probe is the
    // hot subset; approximate it from the key frequency concentration:
    // the share of probes landing on the top 1% of keys.
    std::vector<uint32_t> counts(sizes.build_tuples, 0);
    for (size_t i = 0; i < probe.num_tuples(); ++i) {
      ++counts[probe[i].key];
    }
    std::sort(counts.begin(), counts.end(), std::greater<>());
    uint64_t top = 0;
    size_t top_n = std::max<size_t>(1, counts.size() / 100);
    for (size_t i = 0; i < top_n; ++i) top += counts[i];
    double hot_share =
        static_cast<double>(top) / static_cast<double>(probe.num_tuples());

    // Scale the probe-phase working set by the cold share before
    // modeling: hot keys live in cache.
    auto adjust = [&](const join::JoinResult& r) {
      perf::PhaseBreakdown scaled = bench::PaperScale(r.phases);
      for (auto& phase : scaled.phases) {
        if (phase.name == "probe") {
          // Hot-key probes hit cache in both settings and drop out of
          // the random-access term; the cold remainder also touches a
          // smaller slice of the table.
          phase.profile.rand_reads = static_cast<uint64_t>(
              phase.profile.rand_reads * (1.0 - hot_share));
          phase.profile.rand_read_working_set = static_cast<uint64_t>(
              phase.profile.rand_read_working_set * (1.0 - hot_share));
        }
      }
      // The probe phase is where skew acts (the build side stays
      // uniform), so compare that phase across settings.
      const perf::PhaseStats* probe_phase = scaled.Find("probe");
      double native = core::ModeledPhaseNs(
          *probe_phase, ExecutionSetting::kPlainCpu, false, 16);
      double sgx = core::ModeledPhaseNs(
          *probe_phase, ExecutionSetting::kSgxDataInEnclave, false, 16);
      return native / sgx;
    };

    char theta_buf[16], hot_buf[16];
    std::snprintf(theta_buf, sizeof(theta_buf), "%.2f", theta);
    std::snprintf(hot_buf, sizeof(hot_buf), "%.0f%%", hot_share * 100);
    table.AddRow({theta_buf, std::to_string(pht.matches),
                  core::FormatRel(adjust(pht)),
                  core::FormatRel(adjust(rho)), hot_buf});
  }
  table.Print();
  table.ExportCsv("ablation_skew");
  core::PrintNote(
      "skewed probes hit hot, cache-resident keys: PHT's in-enclave "
      "penalty shrinks with skew while RHO stays flat — partitioning "
      "already gave RHO cache residency.");
  return 0;
}
