// Figure 5: random memory reads and writes in an SGX enclave, relative to
// Plain CPU, by array size.
//
// Reads: pmbw-style pointer chasing (dependent loads — the worst case).
// Writes: 8-byte stores to LCG-chosen positions.
//
// Paper shape: no penalty while cache-resident; reads fall to 53% at
// 16 GB; writes fall below 40% (≈2x latency already at 256 MB, ≈3x at
// 8 GB).
//
// The host runs the real kernels (validating them and giving native
// numbers for sizes that fit this machine); the SGX relative-performance
// series comes from the calibrated model curves, printed over the paper's
// full size range.

#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 5", "random reads (pointer chase) & writes, SGX vs native");
  bench::PrintEnvironment();

  // --- Real host kernels over sizes that fit comfortably. -------------
  std::printf("\n  Host-measured native kernels (validation):\n");
  core::TablePrinter host_table({"array", "chase ns/load",
                                 "rand-write ns/store"});
  for (size_t bytes : {256_KiB, 4_MiB, 64_MiB}) {
    const size_t n = bytes / sizeof(uint64_t);
    std::vector<uint64_t> arr(n);
    scan::MakePointerChain(arr.data(), n, 42);
    const uint64_t steps = std::min<uint64_t>(n * 4, 8'000'000);
    WallTimer t1;
    uint64_t sink = scan::RunPointerChase(arr.data(), steps);
    double chase_ns = static_cast<double>(t1.ElapsedNanos()) / steps;
    asm volatile("" : "+r"(sink));

    const uint64_t writes = 8'000'000;
    WallTimer t2;
    scan::RandomWrites(arr.data(), n, writes, 7);
    double write_ns = static_cast<double>(t2.ElapsedNanos()) / writes;

    char chase[32], wr[32];
    std::snprintf(chase, sizeof(chase), "%.2f", chase_ns);
    std::snprintf(wr, sizeof(wr), "%.2f", write_ns);
    host_table.AddRow({core::FormatBytes(static_cast<double>(bytes)),
                       chase, wr});
  }
  host_table.Print();

  // --- Modeled SGX relative performance over the paper's range. --------
  std::printf("\n  Modeled SGX relative performance (paper Fig. 5):\n");
  const auto& m = perf::MachineModel::Reference();
  core::TablePrinter table({"array size", "read relperf",
                            "write relperf", "paper read", "paper write"});
  struct PaperPoint {
    size_t size;
    const char* read;
    const char* write;
  };
  const PaperPoint points[] = {
      {1_MiB, "1.00", "1.00"},   {16_MiB, "1.00", "1.00"},
      {64_MiB, "-", "-"},        {256_MiB, "-", "~0.50"},
      {1_GiB, "-", "-"},         {4_GiB, "-", "-"},
      {8_GiB, "-", "~0.33"},     {16_GiB, "0.53", "~0.33"},
  };
  for (const PaperPoint& pt : points) {
    table.AddRow({core::FormatBytes(static_cast<double>(pt.size)),
                  core::FormatRel(m.RandomReadRelPerfSgx(pt.size)),
                  core::FormatRel(m.RandomWriteRelPerfSgx(pt.size)),
                  pt.read, pt.write});
  }
  table.Print();
  table.ExportCsv("fig05");
  core::PrintNote(
      "in-cache random access is free inside SGXv2; beyond cache, writes "
      "are penalized harder than reads — the paper's incentive for "
      "aggressive cache-resident partitioning.");
  return 0;
}
