// Ablation: adaptive self-tuning execution vs forced static settings
// (docs/adaptive.md).
//
// A mixed Q1/Q3/Q6/Q10/Q12/Q19 serving run over the out-of-EPC paged
// database at two buffer budgets — comfortable (working set mostly
// resident) and tight (scans continuously evict and reload, the regime
// where one-shot knob choices go stale). Concurrent clients drive the
// mix through each knob policy:
//
//   static-planner   cost-model decisions, adaptive off (the baseline)
//   static-mat       forced materializing lowering
//   static-fused-gp  forced fused pipelines, group-prefetch probes
//   static-tuple     forced fused pipelines, tuple-at-a-time probes
//   adaptive         SGXBENCH_ADAPTIVE=1: tuning cache + mid-query
//                    guardrails; repeated waves let it converge
//
// Counts must agree across every policy at every budget. Outside smoke
// mode the gate is that adaptive reaches at least 0.8x the throughput of
// the best forced setting at each budget — i.e. the controller's
// exploration and sampling overhead must not eat what the tuned knobs
// win. The CSV records per-policy throughput plus the controller's own
// telemetry (decisions, mid-query switches, cache hits) so a
// non-converging cache is diagnosable from the artifact alone.
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_ablation_adaptive
// CI runs the same binary with SGXBENCH_SMOKE=1 (tiny SF, few clients)
// purely as a code-path and artifact check.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "storage/buffer_manager.h"
#include "tpch/paged_db.h"
#include "tpch/queries.h"
#include "tune/tune.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

constexpr int kMixQueries[] = {1, 3, 6, 10, 12, 19};
constexpr size_t kNumMixQueries = 6;

struct Policy {
  const char* name;
  bool adaptive = false;
  std::optional<bool> pipeline;
  std::optional<exec::ProbeMode> probe_mode;
};

const std::vector<Policy>& Policies() {
  static const std::vector<Policy> policies = {
      {"static-planner", false, std::nullopt, std::nullopt},
      {"static-mat", false, false, std::nullopt},
      {"static-fused-gp", false, true, exec::ProbeMode::kGroupPrefetch},
      {"static-tuple", false, true, exec::ProbeMode::kTupleAtATime},
      {"adaptive", true, std::nullopt, std::nullopt},
  };
  return policies;
}

struct MixResult {
  double wall_ns = 0;
  uint64_t queries = 0;
  uint64_t failures = 0;
  // Controller telemetry summed over the run (zero for static policies).
  uint64_t decisions = 0;
  uint64_t switches = 0;
  uint64_t cache_hits = 0;
  std::vector<uint64_t> counts;  // per mix slot, for cross-policy checks
};

// One serving wave: `clients` threads each walk `per_client` steps of the
// query mix concurrently. In-flight counts are published the way the
// serving layer does, so the adaptive controller sees the real
// concurrency band.
MixResult RunMix(const tpch::TpchDbView& view, const Policy& policy,
                 int clients, int per_client, int threads_per_query) {
  MixResult out;
  out.counts.assign(kNumMixQueries, 0);
  std::vector<std::vector<uint64_t>> per_client_counts(
      clients, std::vector<uint64_t>(kNumMixQueries, 0));
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> decisions{0}, switches{0}, cache_hits{0};

  WallTimer wall;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int step = 0; step < per_client; ++step) {
        const size_t slot = (c + step) % kNumMixQueries;
        tpch::QueryConfig cfg;
        cfg.num_threads = threads_per_query;
        cfg.pipeline = policy.pipeline;
        cfg.probe_mode = policy.probe_mode;
        tune::AddInflight(1);
        auto r = tpch::RunQuery(kMixQueries[slot], view, cfg);
        tune::AddInflight(-1);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        per_client_counts[c][slot] = r.value().count;
        if (r.value().tuning.active) {
          decisions.fetch_add(r.value().tuning.decisions,
                              std::memory_order_relaxed);
          switches.fetch_add(r.value().tuning.switches,
                             std::memory_order_relaxed);
          cache_hits.fetch_add(r.value().tuning.cache_hits,
                               std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : workers) t.join();

  out.wall_ns = static_cast<double>(wall.ElapsedNanos());
  out.queries = static_cast<uint64_t>(clients) * per_client;
  out.failures = failures.load();
  out.decisions = decisions.load();
  out.switches = switches.load();
  out.cache_hits = cache_hits.load();
  for (size_t slot = 0; slot < kNumMixQueries; ++slot) {
    for (int c = 0; c < clients; ++c) {
      if (per_client_counts[c][slot] != 0) {
        out.counts[slot] = per_client_counts[c][slot];
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation A8",
      "adaptive self-tuning vs forced static knob settings");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor = SmokeMode() ? 0.01 : (core::FullScale() ? 1.0 : 0.1);
  std::printf("  generating TPC-H data at SF %.2f ...\n", gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();
  std::printf("  lineitem: %zu rows\n", db.lineitem.num_rows);

  // Two buffer budgets over the same base: "ample" holds most of the
  // working set; "tight" forces continuous evict/reload — the paging
  // regime the mid-query guardrails exist for.
  const size_t column_bytes = db.lineitem.num_rows * 4;
  struct Budget {
    const char* name;
    size_t bytes;
  };
  const Budget budgets[] = {
      {"ample", std::max<size_t>(column_bytes * 16, 8u << 20)},
      {"tight", std::max<size_t>(column_bytes / 2, 512u << 10)},
  };

  const int clients = SmokeMode() ? 4 : 8;
  const int per_client = SmokeMode() ? 6 : 24;
  const int threads_per_query = 2;
  const int waves = SmokeMode() ? 2 : 3;  // lets the tuning cache converge

  core::TablePrinter table({"budget", "policy", "queries", "q/s",
                            "wall", "decisions", "switches",
                            "cache hits"});

  bool counts_agree = true;
  bool any_failures = false;
  double worst_adaptive_ratio = 1e9;
  const char* worst_budget = "-";

  for (const Budget& budget : budgets) {
    storage::BufferManager::Config bm_cfg;
    bm_cfg.buffer_bytes = budget.bytes;
    bm_cfg.partition_rows = 4096;
    auto bm = std::make_unique<storage::BufferManager>(bm_cfg);
    tpch::PagedTpchDb paged = tpch::PagedTpchDb::Build(db, bm.get()).value();
    const tpch::TpchDbView view = paged.View();
    std::printf("  budget %s: %.1f MiB pool\n", budget.name,
                static_cast<double>(budget.bytes) / (1 << 20));

    std::vector<uint64_t> reference;
    double best_static_qps = 0;
    double adaptive_qps = 0;

    for (const Policy& policy : Policies()) {
      if (policy.adaptive) {
        ::setenv("SGXBENCH_ADAPTIVE", "1", 1);
      } else {
        ::unsetenv("SGXBENCH_ADAPTIVE");
      }

      MixResult merged;
      for (int wave = 0; wave < waves; ++wave) {
        MixResult r =
            RunMix(view, policy, clients, per_client, threads_per_query);
        merged.wall_ns += r.wall_ns;
        merged.queries += r.queries;
        merged.failures += r.failures;
        merged.decisions += r.decisions;
        merged.switches += r.switches;
        merged.cache_hits += r.cache_hits;
        merged.counts = r.counts;
      }
      ::unsetenv("SGXBENCH_ADAPTIVE");

      if (merged.failures != 0) {
        std::fprintf(stderr, "%s/%s: %llu queries failed\n", budget.name,
                     policy.name,
                     static_cast<unsigned long long>(merged.failures));
        any_failures = true;
      }
      if (reference.empty()) {
        reference = merged.counts;
      } else if (merged.counts != reference) {
        std::fprintf(stderr, "%s/%s: counts diverged from baseline\n",
                     budget.name, policy.name);
        counts_agree = false;
      }

      const double qps = static_cast<double>(merged.queries) /
                         (merged.wall_ns * 1e-9);
      if (policy.adaptive) {
        adaptive_qps = qps;
      } else {
        best_static_qps = std::max(best_static_qps, qps);
      }

      table.AddRow({budget.name, policy.name,
                    std::to_string(merged.queries),
                    core::FormatRel(qps),
                    core::FormatNanos(merged.wall_ns),
                    std::to_string(merged.decisions),
                    std::to_string(merged.switches),
                    std::to_string(merged.cache_hits)});
    }

    const double ratio =
        best_static_qps > 0 ? adaptive_qps / best_static_qps : 0;
    std::printf("  %s: adaptive at %.2fx the best forced setting\n",
                budget.name, ratio);
    if (ratio < worst_adaptive_ratio) {
      worst_adaptive_ratio = ratio;
      worst_budget = budget.name;
    }
  }

  table.Print();
  table.ExportCsv("ablation_adaptive");

  core::PrintNote(
      "the adaptive controller pays for itself twice over: the tuning "
      "cache re-derives the per-workload knob choice a static ablation "
      "sweep would hand-pick, and the wave-boundary guardrails shrink "
      "morsel grain and probe width when the tight budget starts "
      "thrashing — a regime no single static setting covers at both "
      "budgets.");

  if (any_failures || !counts_agree) {
    std::fprintf(stderr, "FAIL: query failures or count divergence\n");
    return 1;
  }
  if (!SmokeMode() && worst_adaptive_ratio < 0.8) {
    std::fprintf(stderr,
                 "FAIL: adaptive fell below 0.8x the best forced setting "
                 "(%s budget: %.2fx)\n",
                 worst_budget, worst_adaptive_ratio);
    return 1;
  }
  return 0;
}
