// Figure 11: static vs dynamic enclave sizing with result
// materialization — REAL execution.
//
// The RHO join materializes its output inside the enclave. In the static
// configuration the enclave is pre-sized to fit everything; in the
// dynamic configuration it starts minimal and every added 4 KiB page pays
// the EAUG/EACCEPT cost, injected as a real delay by the simulator.
//
// Paper shape: the dynamically-growing enclave reaches only ~4.5% of the
// statically-sized enclave's throughput.

#include <cstdio>

#include "bench_util.h"
#include "obs/metrics.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 11",
      "static vs dynamic enclave sizing with materialization (real "
      "EDMM delays)");
  bench::PrintEnvironment();

  const size_t build_tuples = BytesToTuples(core::ScaledBytes(50_MiB));
  const size_t probe_tuples = BytesToTuples(core::ScaledBytes(200_MiB));
  const double total_rows =
      static_cast<double>(build_tuples) + probe_tuples;

  auto build = join::GenerateBuildRelation(build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(probe_tuples, build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();

  // Intermediates (4x input) + output (12 B/match) + headroom.
  const size_t worst_case_bytes =
      4 * (build.size_bytes() + probe.size_bytes()) +
      probe_tuples * sizeof(JoinOutputTuple) + 64_MiB;

  core::TablePrinter table({"enclave sizing", "measured time",
                            "throughput", "EDMM pages", "vs static"});
  double static_tput = 0;

  for (bool dynamic : {false, true}) {
    // A fresh enclave per repetition: on hardware, every run of the
    // experiment starts from a newly built enclave, so dynamic growth is
    // paid every time.
    uint64_t edmm_pages = 0;
    core::Measurement m = core::Repeat([&] {
      sgx::EnclaveConfig ecfg;
      ecfg.dynamic = dynamic;
      ecfg.initial_heap_bytes = dynamic ? 1_MiB : worst_case_bytes;
      ecfg.max_heap_bytes = worst_case_bytes;
      sgx::Enclave* enclave = sgx::Enclave::Create(ecfg).value();

      join::JoinConfig cfg;
      cfg.num_threads = bench::HostThreads(16);
      cfg.flavor = KernelFlavor::kUnrolledReordered;
      cfg.setting = ExecutionSetting::kSgxDataInEnclave;
      cfg.enclave = enclave;
      cfg.materialize = true;

      // Wall time around the whole join call: dynamic growth also hits
      // the intermediate-buffer allocations, which on hardware happen
      // inside the measured query execution.
      WallTimer timer;
      join::JoinResult r = join::RhoJoin(build, probe, cfg).value();
      double wall_ns = static_cast<double>(timer.ElapsedNanos());
      (void)r;
      edmm_pages = enclave->memory_stats().edmm_pages_added;
      sgx::DestroyEnclave(enclave);
      return wall_ns;
    });
    double tput = total_rows / (m.mean_ns * 1e-9);
    if (!dynamic) static_tput = tput;

    table.AddRow(
        {dynamic ? "dynamic (EDMM growth)" : "static (pre-allocated)",
         core::FormatNanos(m.mean_ns), core::FormatRowsPerSec(tput),
         std::to_string(edmm_pages), core::FormatRel(tput / static_tput)});
  }
  table.Print();
  table.ExportCsv("fig11");

  // The page counts in the table come from Enclave::memory_stats(); the
  // obs registry carries the same churn plus the injected commit time,
  // and is what a QueryReport would cite (docs/observability.md).
  obs::MetricsSnapshot snap = obs::Registry::Global().Snapshot();
  std::printf(
      "  registry: sgx.edmm_pages_added=%llu sgx.edmm_pages_trimmed=%llu "
      "sgx.edmm_injected_ns=%llu\n",
      static_cast<unsigned long long>(
          snap.CounterOr(obs::kCtrEdmmPagesAdded)),
      static_cast<unsigned long long>(
          snap.CounterOr(obs::kCtrEdmmPagesTrimmed)),
      static_cast<unsigned long long>(
          snap.CounterOr(obs::kCtrEdmmInjectedNs)));

  core::PrintNote(
      "paper: the join in a dynamically-growing enclave achieves only "
      "4.5% of the statically-sized enclave's throughput — secure DBMSs "
      "should pre-allocate enclave memory.");
  return 0;
}
