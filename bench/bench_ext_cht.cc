// Extension E2: a Concise Hash Table join as an SGXv2-native design.
//
// The paper's lesson is that the SGXv2 random-access penalty grows with
// the randomly-hit working set (Fig. 4/5) and recommends aggressive
// partitioning. This extension explores the complementary design axis:
// shrinking the hash table itself. CHT (Barber et al., VLDB 2015) stores
// a bitmap + rank-indexed dense array (~8.5 B/tuple) instead of PHT's
// latched chained buckets (~32 B/tuple), so more of the table stays
// cache-resident and the in-enclave penalty drops — without giving up
// the no-partitioning design.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Extension E2", "Concise Hash Table: shrink the table, shrink the "
                      "SGX penalty");
  bench::PrintEnvironment();

  core::TablePrinter table({"build size (paper)", "join", "table bytes",
                            "modeled native", "modeled SGX-in",
                            "SGX/native"});

  for (size_t mb : {25, 100}) {
    const size_t build_tuples =
        BytesToTuples(core::ScaledBytes(mb * 1_MiB));
    const size_t probe_tuples = 4 * build_tuples;
    const double total_rows =
        bench::PaperRows(static_cast<double>(build_tuples) + probe_tuples);
    auto build = join::GenerateBuildRelation(build_tuples,
                                             MemoryRegion::kUntrusted)
                     .value();
    auto probe = join::GenerateProbeRelation(probe_tuples, build_tuples,
                                             MemoryRegion::kUntrusted)
                     .value();

    for (bool cht : {false, true}) {
      join::JoinConfig cfg;
      cfg.num_threads = bench::HostThreads(16);
      cfg.flavor = KernelFlavor::kReference;
      join::JoinResult result =
          cht ? join::ChtJoin(build, probe, cfg).value()
              : join::PhtJoin(build, probe, cfg).value();
      if (result.matches != probe_tuples) {
        std::fprintf(stderr, "match mismatch!\n");
        return 1;
      }
      perf::PhaseBreakdown scaled = bench::PaperScale(result.phases);
      double native = core::ModeledReferenceNs(
          scaled, ExecutionSetting::kPlainCpu, false, 16);
      double sgx = core::ModeledReferenceNs(
          scaled, ExecutionSetting::kSgxDataInEnclave, false, 16);
      size_t table_bytes =
          (cht ? join::ChtTableBytes(build_tuples)
               : join::PhtHashTableBytes(build_tuples)) *
          (core::FullScale() ? 1 : 10);
      table.AddRow(
          {std::to_string(mb) + " MB", cht ? "CHT" : "PHT",
           core::FormatBytes(static_cast<double>(table_bytes)),
           core::FormatRowsPerSec(total_rows / (native * 1e-9)),
           core::FormatRowsPerSec(total_rows / (sgx * 1e-9)),
           core::FormatRel(native / sgx)});
    }
  }
  table.Print();
  table.ExportCsv("ext_cht");

  core::PrintNote(
      "the concise table is ~4x smaller than the chained table, so a "
      "larger share of probes stays cache-resident inside the enclave; "
      "its serial rank-building is the price (visible in the native "
      "column).");
  return 0;
}
