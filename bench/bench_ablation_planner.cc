// Ablation: the cost-based planner's mode choice vs both forced
// lowerings (docs/planner.md).
//
// For every catalog query — the paper's six plus the plan-only Q5-style
// extensions — runs the plan three ways: forced materializing
// (QueryConfig::pipeline = false), forced fused (pipeline = true), and
// planner-chosen (no knob; the cost model picks). Counts must agree
// across all three. The gate: outside smoke mode, the planner-chosen
// lowering must reach at least 0.95x the throughput of the better forced
// mode on every query — i.e. a wrong mode pick that costs more than 5%
// fails the run. The per-query CSV also records which mode the planner
// picked and both modeled costs, so regressions are diagnosable from the
// artifact alone.
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_ablation_planner
// CI runs the same binary with SGXBENCH_SMOKE=1 (tiny SF) purely as a
// code-path and artifact check.

#include <algorithm>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "plan/catalog.h"
#include "plan/planner.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

struct ModeRun {
  uint64_t count = 0;
  double native_ns = 0;
};

// mode: 0 = forced materializing, 1 = forced fused, 2 = planner choice.
ModeRun Measure(int query, const tpch::TpchDb& db, int mode, int threads) {
  tpch::QueryConfig cfg;
  cfg.num_threads = threads;
  cfg.radix_bits = core::FullScale() ? 14 : 10;
  if (mode == 0) cfg.pipeline = false;
  if (mode == 1) cfg.pipeline = true;

  ModeRun best;
  for (int rep = 0; rep < core::DefaultRepetitions(); ++rep) {
    auto result = tpch::RunQuery(query, db, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "query %d (mode %d) failed: %s\n", query, mode,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    const double native = core::HostScaledNs(result.value().phases,
                                             ExecutionSetting::kPlainCpu);
    if (rep == 0 || native < best.native_ns) {
      best.count = result.value().count;
      best.native_ns = native;
    }
  }
  return best;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation A7",
      "cost-based planner mode choice vs forced lowerings");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor = SmokeMode() ? 0.01 : (core::FullScale() ? 10.0 : 0.1);
  std::printf("  generating TPC-H data at SF %.2f ...\n", gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();
  std::printf("  lineitem: %zu rows\n", db.lineitem.num_rows);

  const int threads = bench::HostThreads(16);
  const tpch::TpchDbView view = tpch::ViewOf(db);

  core::TablePrinter table({"query", "planner picked", "materializing",
                            "fused", "planner-chosen", "vs best forced",
                            "modeled fused", "modeled materializing"});

  bool counts_agree = true;
  double worst_ratio = 1e9;
  std::string worst_query = "-";
  for (const plan::CatalogEntry& entry : plan::Catalog()) {
    tpch::QueryConfig decide_cfg;
    decide_cfg.num_threads = threads;
    const plan::PlanDecisions decisions =
        plan::DecideFor(entry.plan, view, decide_cfg);

    const ModeRun mat = Measure(entry.query_number, db, 0, threads);
    const ModeRun fused = Measure(entry.query_number, db, 1, threads);
    const ModeRun chosen = Measure(entry.query_number, db, 2, threads);
    if (chosen.count != mat.count || fused.count != mat.count) {
      std::fprintf(stderr, "%s count mismatch across modes\n", entry.name);
      counts_agree = false;
    }

    const double best_forced = std::min(mat.native_ns, fused.native_ns);
    // Throughput ratio of the planner's pick against the better forced
    // mode (1.0 = matched it; < 1 = the pick left time on the table).
    const double ratio = best_forced / chosen.native_ns;
    if (ratio < worst_ratio) {
      worst_ratio = ratio;
      worst_query = entry.name;
    }

    table.AddRow({entry.name,
                  decisions.fused ? "fused" : "materializing",
                  core::FormatNanos(mat.native_ns),
                  core::FormatNanos(fused.native_ns),
                  core::FormatNanos(chosen.native_ns),
                  core::FormatRel(ratio),
                  core::FormatNanos(decisions.fused_cost_ns),
                  core::FormatNanos(decisions.materializing_cost_ns)});
  }
  table.Print();
  table.ExportCsv("ablation_planner");

  std::printf("  worst planner pick: %s at %.2fx the best forced mode\n",
              worst_query.c_str(), worst_ratio);
  core::PrintNote(
      "the planner only has to not lose: both lowerings produce identical "
      "results, so its job is picking the cheaper one from the calibrated "
      "cost model's estimates. A pick within noise of the best forced "
      "mode means plan-driven execution costs nothing over the "
      "hand-tuned drivers it replaced.");

  if (!counts_agree) {
    std::fprintf(stderr, "FAIL: query results differ across modes\n");
    return 1;
  }
  if (!SmokeMode() && worst_ratio < 0.95) {
    std::fprintf(stderr,
                 "FAIL: planner-chosen mode fell below 0.95x the best "
                 "forced lowering (%s: %.2fx)\n",
                 worst_query.c_str(), worst_ratio);
    return 1;
  }
  return 0;
}
