// Figure 13: multi-threaded column scan scale-up.
//
// Scan throughput with 1..16 threads, SGX vs Plain CPU. Paper shape:
// identical scaling in both settings; 16 cores reach the memory bandwidth
// limit; the memory encryption engine is NOT a bottleneck.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 13", "scan thread scaling, SGX vs native");
  bench::PrintEnvironment();

  const size_t bytes = core::ScaledBytes(4_GiB);
  auto col =
      Column<uint8_t>::Allocate(bytes, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(5);
  for (size_t i = 0; i < bytes; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  auto bv = BitVector::Allocate(bytes, MemoryRegion::kUntrusted).value();

  core::TablePrinter table(
      {"threads", "host GB/s (real)", "modeled Plain GB/s",
       "modeled SGX-in GB/s", "SGX/native"});

  for (int threads : {1, 2, 4, 8, 16}) {
    scan::ScanConfig cfg;
    cfg.lo = 64;
    cfg.hi = 192;
    cfg.num_threads = bench::HostThreads(threads);
    auto result = scan::RunBitVectorScan(col, &bv, cfg).value();
    double host_gbps =
        bytes / (result.host_ns * 1e-9) / 1e9;

    perf::PhaseStats phase;
    phase.host_ns = result.host_ns;
    phase.threads = threads;  // model at the paper's thread count
    phase.profile = result.profile;
    perf::PhaseBreakdown bd;
    bd.Add(phase);

    double plain = core::ModeledReferenceNs(
        bd, ExecutionSetting::kPlainCpu, false, threads);
    double sgx = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataInEnclave, false, threads);
    char host[32];
    std::snprintf(host, sizeof(host), "%.2f", host_gbps);
    auto gbps = [&](double ns) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", bytes / (ns * 1e-9) / 1e9);
      return std::string(buf);
    };
    table.AddRow({std::to_string(threads), host, gbps(plain), gbps(sgx),
                  core::FormatRel(plain / sgx)});
  }
  table.Print();
  table.ExportCsv("fig13");

  core::PrintNote(
      "paper: scaling is equal inside and outside the enclave; with 16 "
      "threads the scan hits the DRAM bandwidth limit in both settings — "
      "no bottleneck in the memory encryption engine.");
  core::PrintNote(
      "host column shows real execution on this machine (thread counts "
      "capped by available cores); modeled columns are the Table 1 "
      "reference machine.");
  return 0;
}
