// HTAP mixed read/write workload (docs/htap.md).
//
// Runs the analytical query classes (Q6 pure scan, Q1 scan+group, Q3
// multi-join) over pinned snapshots of a VersionedTpchDb while a paced,
// skewed update feed commits single-row writes at 0 / 10k / 100k rows/s
// against the same tables. Per (rate, class) the table reports scan
// latency and its slowdown versus the read-only baseline, plus the
// per-query sgx_mutex park counts and parked time — the Figure 10
// avalanche surfacing inside analytical queries purely through the
// commit latch — and per rate the feed's achieved rate, commit p50/p99
// (latch wait included: that IS the avalanche exhibit), and the COW /
// reclaim byte churn the EDMM accounting sees.
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_htap_mixed
// CI runs SGXBENCH_SMOKE=1 (SF 0.01, scaled-down rates) and keeps the
// CSV as an artifact. Smoke gates: the rate-0 counts of every class
// must match the same query run directly over the base tables, the feed
// must commit without failures, and the retire list must drain empty.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/executor.h"
#include "obs/query_report.h"
#include "tpch/queries.h"
#include "txn/update_feed.h"
#include "txn/versioned_db.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

struct QueryClass {
  const char* name;
  int query;
};

const std::vector<QueryClass>& Classes() {
  static const std::vector<QueryClass> classes = {
      {"scan (Q6)", 6},
      {"group (Q1)", 1},
      {"join (Q3)", 3},
  };
  return classes;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[rank];
}

std::string FormatCount(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "HTAP mixed",
      "snapshot scans vs a live update feed on versioned columns");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor = SmokeMode() ? 0.01 : (core::FullScale() ? 1.0 : 0.1);
  std::printf("  generating TPC-H data at SF %.2f ...\n", gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();

  // Three update rates per the experiment design; smoke keeps the shape
  // (read-only baseline, moderate, heavy) at CI-friendly magnitudes.
  const std::vector<double> rates =
      SmokeMode() ? std::vector<double>{0, 2000, 10000}
                  : std::vector<double>{0, 10000, 100000};
  const int reps = SmokeMode() ? 3 : 9;

  txn::UpdateFeedOptions feed_opts = txn::UpdateFeedOptions::FromEnv();
  // Bench defaults where the env knobs are silent: enough writers to
  // contend the latch, moderate skew so hot chunks exist.
  if (std::getenv("SGXBENCH_TXN_FEED_THREADS") == nullptr) {
    feed_opts.threads = SmokeMode() ? 2 : 4;
  }
  if (feed_opts.zipf_theta == 0) feed_opts.zipf_theta = 0.5;

  tpch::QueryConfig base_config;
  base_config.num_threads =
      std::min(4, exec::Executor::DefaultParallelism());

  std::printf("  feed: threads=%d theta=%.2f chunk_rows=%zu\n",
              feed_opts.threads, feed_opts.zipf_theta,
              txn::TxnOptions::FromEnv().chunk_rows);

  core::TablePrinter table(
      {"rate/s", "class", "runs", "p50", "p99", "slowdown", "parks/q",
       "park ms/q", "wakes/q", "cow", "reclaimed"});

  // Rate-0 oracle counts: every class over the untouched base tables.
  std::vector<uint64_t> base_counts;
  for (const QueryClass& qc : Classes()) {
    auto r = tpch::RunQuery(qc.query, db, base_config);
    if (!r.ok()) {
      std::fprintf(stderr, "baseline Q%d failed: %s\n", qc.query,
                   r.status().ToString().c_str());
      return 1;
    }
    base_counts.push_back(r.value().count);
  }

  std::vector<double> baseline_p50(Classes().size(), 0);
  bool gate_failed = false;

  for (const double rate : rates) {
    txn::VersionedTpchDb vdb(db, txn::TxnOptions::FromEnv());
    obs::Registry& registry = obs::Registry::Global();

    // The feed gets its own attribution domain so its share of the latch
    // avalanche and COW churn is separable from the query-side numbers.
    const int feed_domain = rate > 0 ? registry.AcquireDomain() : -1;
    txn::UpdateFeedOptions opts = feed_opts;
    opts.rows_per_sec = rate;
    opts.obs_domain = feed_domain;
    txn::UpdateFeed feed(&vdb, opts);
    obs::QueryReportScope feed_scope("update_feed", feed_domain);
    if (rate > 0) {
      feed.Start();
      // Let the feed reach its paced steady state (and build up version
      // chains for the scans to walk) before measuring queries; the
      // smoke queries alone finish in milliseconds, far too short a
      // window to judge the achieved rate.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(SmokeMode() ? 300 : 2000));
    }

    for (size_t c = 0; c < Classes().size(); ++c) {
      const QueryClass& qc = Classes()[c];
      const int domain = registry.AcquireDomain();
      tpch::QueryConfig config = base_config;
      config.obs_domain = domain;

      std::vector<double> wall_ns;
      uint64_t parks = 0, park_ns = 0, wakes = 0;
      for (int rep = 0; rep < reps; ++rep) {
        auto snap = vdb.OpenSnapshot();
        if (!snap.ok()) {
          std::fprintf(stderr, "snapshot failed: %s\n",
                       snap.status().ToString().c_str());
          return 1;
        }
        auto r = tpch::RunQuery(qc.query, snap.value().view(), config);
        if (!r.ok()) {
          std::fprintf(stderr, "Q%d at %.0f rows/s failed: %s\n", qc.query,
                       rate, r.status().ToString().c_str());
          return 1;
        }
        wall_ns.push_back(r.value().report.wall_ns);
        parks += r.value().report.mutex_parks;
        park_ns += r.value().report.mutex_park_ns;
        wakes += r.value().report.mutex_wake_ocalls;
        if (rate == 0 && rep == 0 && r.value().count != base_counts[c]) {
          std::fprintf(stderr,
                       "GATE: Q%d rate-0 count %llu != base count %llu\n",
                       qc.query,
                       static_cast<unsigned long long>(r.value().count),
                       static_cast<unsigned long long>(base_counts[c]));
          gate_failed = true;
        }
      }
      if (domain >= 0) registry.ReleaseDomain(domain);

      const double p50 = Percentile(wall_ns, 0.5);
      if (rate == 0) baseline_p50[c] = p50;
      const double slowdown =
          baseline_p50[c] > 0 ? p50 / baseline_p50[c] : 0;
      const double n = static_cast<double>(reps);
      table.AddRow({std::to_string(static_cast<long long>(rate)), qc.name,
                    std::to_string(reps), core::FormatNanos(p50),
                    core::FormatNanos(Percentile(wall_ns, 0.99)),
                    core::FormatRel(slowdown),
                    FormatCount(static_cast<double>(parks) / n),
                    FormatCount(static_cast<double>(park_ns) / n / 1e6),
                    FormatCount(static_cast<double>(wakes) / n), "-", "-"});
    }

    if (rate > 0) {
      feed.Stop();
      const txn::UpdateFeed::Stats fs = feed.stats();
      const obs::QueryReport fr = feed_scope.Finish();
      if (fs.failed != 0) {
        std::fprintf(stderr, "GATE: %llu feed commits failed\n",
                     static_cast<unsigned long long>(fs.failed));
        gate_failed = true;
      }
      const double n = std::max<uint64_t>(1, fs.committed);
      table.AddRow(
          {std::to_string(static_cast<long long>(rate)), "feed (writes)",
           std::to_string(fs.committed),
           core::FormatNanos(static_cast<double>(fs.p50_ns)),
           core::FormatNanos(static_cast<double>(fs.p99_ns)),
           core::FormatRel(rate > 0 ? fs.achieved_rps / rate : 0),
           FormatCount(static_cast<double>(fr.mutex_parks) / n * 1000),
           FormatCount(static_cast<double>(fr.mutex_park_ns) / 1e6),
           FormatCount(static_cast<double>(fr.mutex_wake_ocalls) / n *
                       1000),
           core::FormatBytes(static_cast<double>(vdb.stats().cow_bytes)),
           core::FormatBytes(
               static_cast<double>(vdb.stats().reclaimed_bytes))});
    }
    if (feed_domain >= 0) registry.ReleaseDomain(feed_domain);

    if (!vdb.Drain().ok()) {
      std::fprintf(stderr, "GATE: retire list failed to drain at %.0f\n",
                   rate);
      gate_failed = true;
    } else if (vdb.stats().retired_pending != 0) {
      std::fprintf(stderr, "GATE: retired chunks leaked at %.0f\n", rate);
      gate_failed = true;
    }
  }

  table.Print();
  table.ExportCsv("htap_mixed");

  core::PrintNote(
      "scan slowdown under the feed combines snapshot chain walks "
      "(version chunks break scan runs) with commit-latch park/wake "
      "OCALL pressure; the feed row's slowdown column is achieved/target "
      "rate, its parks and wakes are per 1000 commits, and its p50/p99 "
      "include latch wait — the paper's Figure 10 avalanche driven by "
      "writes instead of a mutex microbenchmark.");

  if (gate_failed) {
    std::fprintf(stderr, "FAIL: htap mixed smoke gate violated\n");
    return 1;
  }
  return 0;
}
