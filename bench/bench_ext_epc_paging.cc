// Extension E1: the EPC paging cliff — why SGXv1 needed CrkJoin and
// SGXv2 does not.
//
// The paper's introduction recalls that SGXv1's ~128 MB usable EPC caused
// orders-of-magnitude slowdowns for data-intensive workloads, which is
// what CrkJoin was designed around; SGXv2's 64 GB EPC removes the cliff
// for every workload the paper runs. This extension models both
// generations over the paper's join workload, reproducing that motivating
// backdrop (the paper itself keeps all working sets inside the EPC).

#include "bench_util.h"

using namespace sgxb;

namespace {

// An EPC page fault round-trip (EWB: evict + encrypt + MAC, then ELDU:
// reload + decrypt + verify) for a 4 KiB page, via the kernel.
constexpr double kFaultNs = 40000.0;
constexpr double kPageBytes = 4096.0;

// Extra paging time of one recorded phase on an SGXv1-sized EPC:
// each random access faults with the miss probability of its working
// set; streaming sweeps fault once per non-resident page.
double PagedExtraNs(const perf::PhaseStats& phase, size_t epc_bytes,
                    size_t input_bytes, int threads) {
  const auto& p = phase.profile;
  auto miss = [&](size_t ws) {
    if (ws <= epc_bytes) return 0.0;
    return 1.0 - static_cast<double>(epc_bytes) / ws;
  };
  double faults = 0;
  faults += static_cast<double>(p.rand_reads) *
            miss(p.rand_read_working_set);
  faults += static_cast<double>(p.rand_writes) *
            miss(p.rand_write_working_set);
  const double seq_bytes =
      static_cast<double>(p.seq_read_bytes) + p.seq_write_bytes;
  faults += seq_bytes / kPageBytes * miss(input_bytes);
  // Faults from different threads overlap only partially in the kernel;
  // assume 4-way effective concurrency.
  const double concurrency = std::min(4.0, static_cast<double>(threads));
  return faults * kFaultNs / concurrency;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Extension E1", "EPC paging: SGXv1's cliff vs SGXv2's headroom");
  bench::PrintEnvironment();

  const size_t sgxv1_epc = 128_MiB;  // usable EPC of SGXv1
  const size_t sgxv2_epc =
      perf::MachineModel::Reference().params().epc_per_socket_bytes;

  // Effective throughput of basic access patterns under paging.
  const auto& m = perf::MachineModel::Reference();
  core::TablePrinter patterns(
      {"working set", "SGXv1 random 64B access", "SGXv1 streaming",
       "SGXv2 (any pattern)"});
  for (size_t ws : {64_MiB, 256_MiB, 1_GiB, 8_GiB}) {
    double miss = ws <= sgxv1_epc
                      ? 0.0
                      : 1.0 - static_cast<double>(sgxv1_epc) / ws;
    double random_ns = m.params().dram_latency_ns + miss * kFaultNs;
    double stream_per_page_ns =
        kPageBytes / m.params().node_read_bandwidth * 1e9 +
        miss * kFaultNs;
    patterns.AddRow(
        {core::FormatBytes(static_cast<double>(ws)),
         core::FormatBytesPerSec(64.0 / (random_ns * 1e-9)),
         core::FormatBytesPerSec(kPageBytes /
                                 (stream_per_page_ns * 1e-9)),
         ws <= sgxv2_epc ? "native-like (fits EPC)" : "paged"});
  }
  patterns.Print();
  patterns.ExportCsv("ext_epc_patterns");
  core::PrintNote(
      "once the working set exceeds SGXv1's EPC, every miss is a ~40 us "
      "EWB/ELDU page round-trip: random access collapses to KB/s-scale, "
      "streaming survives at ~100 MB/s because a fault amortizes over "
      "4 KiB of useful data.");

  // The paper's join workload on both generations.
  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  const double total_rows = bench::PaperRows(
      static_cast<double>(sizes.build_tuples) + sizes.probe_tuples);
  const size_t input_bytes =
      (sizes.build_tuples + sizes.probe_tuples) * sizeof(Tuple) *
      (core::FullScale() ? 1 : 10);
  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();
  join::JoinConfig cfg;
  cfg.num_threads = bench::HostThreads(16);
  auto pht = join::PhtJoin(build, probe, cfg).value();
  auto rho = join::RhoJoin(build, probe, cfg).value();
  auto crk = join::CrkJoin(build, probe, cfg).value();

  std::printf("\n  100 MB x 400 MB join, modeled in-enclave:\n");
  core::TablePrinter joins({"join", "SGXv2", "SGXv1 (paged)", "loss"});
  struct Row {
    const char* name;
    const join::JoinResult* result;
  };
  for (const Row& row : {Row{"PHT", &pht}, Row{"RHO", &rho},
                         Row{"CrkJoin", &crk}}) {
    perf::PhaseBreakdown scaled = bench::PaperScale(row.result->phases);
    double v2 = core::ModeledReferenceNs(
        scaled, ExecutionSetting::kSgxDataInEnclave, false, 16);
    double extra = 0;
    for (const auto& phase : scaled.phases) {
      extra += PagedExtraNs(phase, sgxv1_epc, input_bytes, 16);
    }
    double v1 = v2 + extra;
    joins.AddRow({row.name,
                  core::FormatRowsPerSec(total_rows / (v2 * 1e-9)),
                  core::FormatRowsPerSec(total_rows / (v1 * 1e-9)),
                  core::FormatRel(v1 / v2)});
  }
  joins.Print();
  joins.ExportCsv("ext_epc_joins");
  core::PrintNote(
      "the no-partitioning PHT join collapses hardest (its 455 MB hash "
      "table is hit randomly); sequential-pass designs lose far less — "
      "the landscape in which CrkJoin's in-place, partition-at-a-time "
      "design made sense, and which SGXv2 has eliminated.");
  return 0;
}
