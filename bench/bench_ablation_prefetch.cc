// Ablation: latency-hiding probe pipelines (docs/prefetching.md).
//
// Sweeps probe scheduling (tuple-at-a-time vs group prefetching vs AMAC)
// x batch size / prefetch distance x build-side size over the four probe
// paths that dispatch through exec/probe_pipeline.h: the PHT bucket-chain
// probe, the CHT bitmap+dense probe, the B-tree INL descent, and the
// radix join's in-cache chain probe. Single-threaded on purpose: with one
// thread the probe loop's exposed miss latency dominates, so the table
// isolates what software prefetching recovers (the multi-threaded effect
// is bounded by the same bandwidth floor for every mode).
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_ablation_prefetch
// CI runs the same binary with SGXBENCH_SMOKE=1 (tiny inputs, two
// widths) purely as a code-path and artifact check.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "join/cht_join.h"
#include "join/data_gen.h"
#include "join/inl_join.h"
#include "join/materializer.h"
#include "join/pht_join.h"
#include "join/radix_common.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

struct Workload {
  const char* label;  // "in-cache" / "out-of-cache"
  Relation build;
  Relation probe;
};

using JoinFn = Result<join::JoinResult> (*)(const Relation&,
                                            const Relation&,
                                            const join::JoinConfig&);

// Probe-phase nanoseconds of one run (mean over DefaultRepetitions).
double ProbeNs(JoinFn fn, const Workload& w, exec::ProbeMode mode,
               int width) {
  join::JoinConfig config;
  config.num_threads = 1;
  config.flavor = KernelFlavor::kUnrolledReordered;
  config.probe_mode = mode;
  config.probe_batch = width;
  return core::Repeat([&] {
           auto result = fn(w.build, w.probe, config).value();
           const perf::PhaseStats* probe =
               result.phases.Find("probe");
           return probe != nullptr ? probe->host_ns : result.host_ns;
         })
      .mean_ns;
}

// The radix in-cache primitive has no phase recorder: time the whole
// build+probe call (build is 1/4 of the tuples and identical across
// modes, so it dilutes but cannot fake a probe speedup).
double InCacheJoinNs(const Workload& w, exec::ProbeMode mode, int width) {
  join::InCacheJoinScratch scratch;
  return core::Repeat([&] {
           WallTimer timer;
           uint64_t m = join::InCachePartitionJoin(
               w.build.tuples(), w.build.num_tuples(), w.probe.tuples(),
               w.probe.num_tuples(), KernelFlavor::kUnrolledReordered,
               &scratch, nullptr, nullptr, mode, width);
           double ns = static_cast<double>(timer.ElapsedNanos());
           if (m == 0) std::abort();  // keep the join un-elided
           return ns;
         })
      .mean_ns;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation A5",
      "latency-hiding probe pipelines: mode x width x build size");
  bench::PrintEnvironment();

  // Build sides: one hash-table-in-cache size and one that overflows L3
  // on any recent host (at CI scale the PHT table is ~50 MB). Probe is
  // 4x the build side, like the paper's 100/400 MB join inputs.
  const size_t in_cache_build =
      SmokeMode() ? 4096 : BytesToTuples(256_KiB);
  const size_t out_of_cache_build =
      SmokeMode() ? 16384 : BytesToTuples(core::ScaledBytes(100_MiB));

  std::vector<Workload> workloads;
  for (auto [label, build_n] :
       {std::pair{"in-cache", in_cache_build},
        std::pair{"out-of-cache", out_of_cache_build}}) {
    Workload w;
    w.label = label;
    w.build = join::GenerateBuildRelation(build_n,
                                          MemoryRegion::kUntrusted)
                  .value();
    w.probe = join::GenerateProbeRelation(build_n * 4, build_n,
                                          MemoryRegion::kUntrusted)
                  .value();
    workloads.push_back(std::move(w));
  }

  struct Path {
    const char* name;
    JoinFn fn;  // null = in-cache primitive
  };
  const Path paths[] = {
      {"PHT", &join::PhtJoin},
      {"CHT", &join::ChtJoin},
      {"INL", &join::InlJoin},
      {"RHO-incache", nullptr},
  };
  const std::vector<int> widths =
      SmokeMode() ? std::vector<int>{8, 16}
                  : std::vector<int>{4, 8, 16, 32, 64};

  core::TablePrinter table({"path", "build side", "mode", "width",
                            "probe time", "throughput",
                            "speedup vs tuple"});
  double pht_out_of_cache_best = 0.0;
  for (const Path& path : paths) {
    for (const Workload& w : workloads) {
      auto measure = [&](exec::ProbeMode mode, int width) {
        return path.fn != nullptr ? ProbeNs(path.fn, w, mode, width)
                                  : InCacheJoinNs(w, mode, width);
      };
      const double rows = static_cast<double>(w.probe.num_tuples());
      const double tuple_ns =
          measure(exec::ProbeMode::kTupleAtATime, 0);
      table.AddRow({path.name, w.label, "tuple", "-",
                    core::FormatNanos(tuple_ns),
                    core::FormatRowsPerSec(rows / (tuple_ns * 1e-9)),
                    core::FormatRel(1.0)});
      for (exec::ProbeMode mode :
           {exec::ProbeMode::kGroupPrefetch, exec::ProbeMode::kAmac}) {
        for (int width : widths) {
          const double ns = measure(mode, width);
          const double speedup = tuple_ns / ns;
          table.AddRow({path.name, w.label,
                        exec::ProbeModeToString(mode),
                        std::to_string(width), core::FormatNanos(ns),
                        core::FormatRowsPerSec(rows / (ns * 1e-9)),
                        core::FormatRel(speedup)});
          if (path.fn == &join::PhtJoin &&
              std::string(w.label) == "out-of-cache") {
            pht_out_of_cache_best =
                std::max(pht_out_of_cache_best, speedup);
          }
        }
      }
    }
  }
  table.Print();
  table.ExportCsv("ablation_prefetch");

  std::printf("  best batched speedup on out-of-cache PHT probe: %.2fx\n",
              pht_out_of_cache_best);
  core::PrintNote(
      "batching pays where misses are exposed: the out-of-cache probes "
      "gain the most, the in-cache rows bound the bookkeeping overhead. "
      "AMAC's ring tolerates mixed chain depths (INL descents, overflow "
      "chains); group prefetching is simpler and wins on uniform depth.");
  return 0;
}
