// Figure 9: RHO join on a NUMA system, extreme placements.
//
// Four configurations of the paper:
//  * SGX Join Single Node   — 16 threads, data local (baseline)
//  * SGX Join Fully Remote  — 16 threads on the other socket, data remote
//  * SGX Join Half Local    — 32 threads, enclave memory on one node
//  * Native Join NUMA local — 32 threads, inputs pre-partitioned per node
//
// Paper shape: fully remote loses 25% vs single node; half local gains
// nothing over single node (16 extra cores wasted); native NUMA-local
// doubles single-node throughput, so both SGX multi-socket setups land
// below 50% of the optimum.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 9", "RHO join across NUMA placements (modeled)");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  const double total_rows = bench::PaperRows(
      static_cast<double>(sizes.build_tuples) + sizes.probe_tuples);

  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();

  // One real host execution provides the phase profiles.
  join::JoinConfig cfg;
  cfg.num_threads = bench::HostThreads(16);
  cfg.flavor = KernelFlavor::kUnrolledReordered;
  join::JoinResult result = join::RhoJoin(build, probe, cfg).value();
  perf::PhaseBreakdown paper_phases = bench::PaperScale(result.phases);

  // Single node: 16 threads, local EPC data.
  double single_node = core::ModeledReferenceNs(
      paper_phases, ExecutionSetting::kSgxDataInEnclave, false, 16);
  // Fully remote: 16 threads, all traffic over the encrypted UPI.
  double fully_remote = core::ModeledReferenceNs(
      paper_phases, ExecutionSetting::kSgxDataInEnclave, true, 16);
  // Half local: 32 threads, but all memory on one node. The data node's
  // memory bandwidth is shared by local and remote consumers (the model's
  // node cap keeps bandwidth-bound phases at single-node speed, so the 16
  // extra cores add almost nothing), and the remote half of the traffic
  // additionally pays UPI encryption.
  double half_local_base = core::ModeledReferenceNs(
      paper_phases, ExecutionSetting::kSgxDataInEnclave, false, 32);
  double upi_penalty =
      1.0 / perf::MachineModel::Reference().UpiCryptoRelPerf(16);
  double half_local = half_local_base * (0.5 + 0.5 * upi_penalty);
  // Native NUMA-local: both sockets work on pre-partitioned local data —
  // twice the single-socket native throughput.
  double native_one_socket = core::ModeledReferenceNs(
      paper_phases, ExecutionSetting::kPlainCpu, false, 16);
  double native_numa_local = native_one_socket / 2.0;

  auto tput = [&](double ns) { return total_rows / (ns * 1e-9); };
  double base = tput(single_node);

  core::TablePrinter table({"configuration", "modeled throughput",
                            "vs single node", "paper"});
  table.AddRow({"SGX Join Single Node", core::FormatRowsPerSec(base),
                "1.00x", "1.00x"});
  table.AddRow({"SGX Join Fully Remote",
                core::FormatRowsPerSec(tput(fully_remote)),
                core::FormatRel(tput(fully_remote) / base), "0.75x"});
  table.AddRow({"SGX Join Half Local",
                core::FormatRowsPerSec(tput(half_local)),
                core::FormatRel(tput(half_local) / base), "~1.0x"});
  table.AddRow({"Native Join NUMA local",
                core::FormatRowsPerSec(tput(native_numa_local)),
                core::FormatRel(tput(native_numa_local) / base),
                ">2x"});
  table.Print();
  table.ExportCsv("fig09");

  core::PrintNote(
      "paper: NUMA-aware allocation/pinning is not available under the "
      "SGX security model, so these placements can occur at random; both "
      "SGX multi-socket cases stay below 50% of the NUMA-local optimum.");
  return 0;
}
