// Ablation: persistent work-stealing executor vs per-call thread spawn.
//
// Two claims are measured. First, a persistent pool amortizes thread
// creation: operators such as the radix joins dispatch many short gangs
// (one per pass per partition group), and paying pthread_create for each
// dispatch dwarfs the work itself. Second, morsel-driven scheduling with
// work stealing absorbs skew that a static SplitRange split cannot: a
// lane that finishes its share early steals morsels from the loaded lane
// instead of idling at the barrier.

#include "bench_util.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "exec/executor.h"

using namespace sgxb;

namespace {

// Spin for a deterministic, compiler-opaque amount of work.
uint64_t Burn(uint64_t iters) {
  volatile uint64_t acc = 0;
  for (uint64_t i = 0; i < iters; ++i) acc = acc + i;
  return acc;
}

double TimeDispatches(int threads, int dispatches) {
  WallTimer timer;
  for (int i = 0; i < dispatches; ++i) {
    ParallelRun(threads, [](int) { Burn(200); });
  }
  return static_cast<double>(timer.ElapsedNanos());
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation A4", "persistent executor vs per-dispatch thread spawn");
  bench::PrintEnvironment();

  // Not capped at the host's cores: the point is dispatch overhead (thread
  // creation vs enqueue-to-warm-worker), and the pool intentionally keeps
  // more workers than cores so gang operators run at paper thread counts
  // on small CI hosts. ParallelRun(1, ...) would run inline and measure
  // nothing.
  const int threads = std::max(4, bench::HostThreads(8));
  const int dispatches = core::FullScale() ? 5000 : 1000;

  // --- Part 1: repeated small gang dispatch ------------------------------
  core::TablePrinter gang_table(
      {"dispatch mode", "total time", "per dispatch", "vs spawn"});
  double spawn_ns = 0;
  for (exec::DispatchMode mode :
       {exec::DispatchMode::kSpawn, exec::DispatchMode::kPool}) {
    exec::SetDispatchMode(mode);
    TimeDispatches(threads, 32);  // warm up (grows the pool once)
    core::Measurement m = core::Repeat(
        [&] { return TimeDispatches(threads, dispatches); });
    const double per_dispatch = m.mean_ns / dispatches;
    if (mode == exec::DispatchMode::kSpawn) spawn_ns = per_dispatch;
    gang_table.AddRow(
        {mode == exec::DispatchMode::kSpawn ? "spawn per call"
                                            : "persistent pool",
         core::FormatNanos(m.mean_ns), core::FormatNanos(per_dispatch),
         core::FormatRel(spawn_ns / per_dispatch)});
  }
  exec::SetDispatchMode(exec::DispatchMode::kPool);
  gang_table.Print();
  gang_table.ExportCsv("ablation_executor_dispatch");

  // --- Part 2: morsel stealing under skew --------------------------------
  // Task i costs ~i units, so a blocked split gives the last lane ~2x the
  // average work. Small morsels let idle lanes steal from it.
  const size_t tasks = 4096;
  const uint64_t unit = core::FullScale() ? 2000 : 400;

  core::TablePrinter skew_table(
      {"schedule", "time", "morsels stolen", "vs static"});
  core::Measurement stat = core::Repeat([&] {
    WallTimer timer;
    ParallelRun(threads, [&](int tid) {
      Range r = SplitRange(tasks, threads, tid);
      for (size_t i = r.begin; i < r.end; ++i) Burn(i * unit / tasks);
    });
    return static_cast<double>(timer.ElapsedNanos());
  });
  skew_table.AddRow({"static split (gang)", core::FormatNanos(stat.mean_ns),
                     "-", core::FormatRel(1.0)});

  const uint64_t steals_before = exec::Executor::Default().stats().morsel_steals;
  ParallelForOptions opts;
  opts.num_threads = threads;
  core::Measurement morsel = core::Repeat([&] {
    WallTimer timer;
    ParallelFor(
        tasks, 16,
        [&](Range r, int) {
          for (size_t i = r.begin; i < r.end; ++i) Burn(i * unit / tasks);
        },
        opts);
    return static_cast<double>(timer.ElapsedNanos());
  });
  const uint64_t stolen =
      exec::Executor::Default().stats().morsel_steals - steals_before;
  skew_table.AddRow({"morsels + stealing", core::FormatNanos(morsel.mean_ns),
                     std::to_string(stolen),
                     core::FormatRel(stat.mean_ns / morsel.mean_ns)});
  skew_table.Print();
  skew_table.ExportCsv("ablation_executor_skew");
  if (CpuInfo::Host().logical_cores < threads) {
    core::PrintNote(
        "host has fewer cores than lanes, so the OS timeshares them and "
        "wall-clock parity between the schedules is expected here; the "
        "steal count still shows the balancing mechanism working.");
  }

  const exec::ExecutorStats stats = exec::Executor::Default().stats();
  core::PrintNote(
      "executor totals: " + std::to_string(stats.pool_threads_spawned) +
      " pool threads served " + std::to_string(stats.gangs) + " gangs / " +
      std::to_string(stats.tasks) + " tasks; " +
      std::to_string(stats.morsels) + " morsels executed, " +
      std::to_string(stats.morsel_steals) + " stolen.");
  core::PrintNote(
      "per-call spawn pays pthread_create + teardown on every dispatch; "
      "the pool pays it once, so short gangs (radix-join passes, TPC-H "
      "operator fragments) are dominated by work, not thread churn.");
  return 0;
}
