// Ablation: fused morsel-driven pipelines vs the paper's
// operator-at-a-time materialization (docs/pipelines.md).
//
// Runs every TPC-H query twice — materializing (the paper's Section 6
// setup, QueryConfig::pipeline = false) and fused (pipeline = true) —
// and reports the measured per-query `tpch.bytes_materialized` counter
// next to native and host-scaled in-enclave times. The modeled column is
// perf::MaterializationTrafficNs of the avoided bytes: one write plus
// one re-read under enclave memory encryption, the traffic class fusion
// eliminates. The multi-join queries must always show a byte reduction;
// outside smoke mode at least one of them must also show an end-to-end
// in-enclave speedup.
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_ablation_pipeline
// CI runs the same binary with SGXBENCH_SMOKE=1 (tiny SF) purely as a
// code-path and artifact check.

#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "perf/cost_model.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

struct ModeRun {
  uint64_t count = 0;
  uint64_t bytes = 0;   // tpch.bytes_materialized delta
  double native_ns = 0;
  double sgx_ns = 0;    // host-scaled kSgxDataInEnclave
};

ModeRun Measure(int query, const tpch::TpchDb& db, bool fused,
                int threads) {
  tpch::QueryConfig cfg;
  cfg.num_threads = threads;
  cfg.radix_bits = core::FullScale() ? 14 : 10;
  cfg.pipeline = fused;

  ModeRun best;
  for (int rep = 0; rep < core::DefaultRepetitions(); ++rep) {
    auto result = tpch::RunQuery(query, db, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "Q%d (%s) failed: %s\n", query,
                   fused ? "fused" : "materializing",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    const tpch::QueryResult& r = result.value();
    double native =
        core::HostScaledNs(r.phases, ExecutionSetting::kPlainCpu);
    if (rep == 0 || native < best.native_ns) {
      best.count = r.count;
      best.bytes = r.report.bytes_materialized;
      best.native_ns = native;
      best.sgx_ns = core::HostScaledNs(
          r.phases, ExecutionSetting::kSgxDataInEnclave);
    }
  }
  return best;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation A6",
      "fused morsel pipelines vs operator-at-a-time materialization");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor =
      SmokeMode() ? 0.01 : (core::FullScale() ? 10.0 : 0.1);
  std::printf("  generating TPC-H data at SF %.2f ...\n",
              gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();
  std::printf("  lineitem: %zu rows\n", db.lineitem.num_rows);

  const int threads = bench::HostThreads(16);
  perf::ExecutionEnv sgx_env;
  sgx_env.setting = ExecutionSetting::kSgxDataInEnclave;
  sgx_env.threads = threads;

  core::TablePrinter table({"query", "mode", "count(*)",
                            "bytes materialized", "native (host)",
                            "SGX-in (host-scaled)", "SGX speedup",
                            "modeled traffic saved"});

  bool bytes_reduced_everywhere = true;
  double best_join_speedup = 0.0;
  for (int query : {1, 6, 3, 10, 12, 19}) {
    const bool multi_join = query == 3 || query == 10 || query == 12 ||
                            query == 19;
    ModeRun mat = Measure(query, db, /*fused=*/false, threads);
    ModeRun fused = Measure(query, db, /*fused=*/true, threads);
    if (fused.count != mat.count) {
      std::fprintf(stderr, "Q%d count mismatch: fused %llu vs %llu\n",
                   query, (unsigned long long)fused.count,
                   (unsigned long long)mat.count);
      return 1;
    }
    if (fused.bytes >= mat.bytes) bytes_reduced_everywhere = false;

    const uint64_t avoided =
        mat.bytes > fused.bytes ? mat.bytes - fused.bytes : 0;
    const double saved_ns = perf::MaterializationTrafficNs(
        perf::CostModel::Reference(), avoided, sgx_env);
    const double speedup = mat.sgx_ns / fused.sgx_ns;
    if (multi_join) {
      best_join_speedup = std::max(best_join_speedup, speedup);
    }

    const std::string qname = "Q" + std::to_string(query);
    table.AddRow({qname, "materializing", std::to_string(mat.count),
                  core::FormatBytes(mat.bytes),
                  core::FormatNanos(mat.native_ns),
                  core::FormatNanos(mat.sgx_ns), core::FormatRel(1.0),
                  "-"});
    table.AddRow({qname, "fused", std::to_string(fused.count),
                  core::FormatBytes(fused.bytes),
                  core::FormatNanos(fused.native_ns),
                  core::FormatNanos(fused.sgx_ns),
                  core::FormatRel(speedup),
                  core::FormatNanos(saved_ns)});
  }
  table.Print();
  table.ExportCsv("ablation_pipeline");

  std::printf("  best in-enclave speedup on a multi-join query: %.2fx\n",
              best_join_speedup);
  core::PrintNote(
      "fusion's win is the avoided round trip: every intermediate a "
      "materializing operator writes is re-read by the next one, and "
      "in-enclave that traffic pays memory encryption both ways. The "
      "per-morsel selection vectors stay in worker-local arena scratch "
      "(cache-resident), so only pipeline breakers — hash-table builds "
      "and the final aggregates — still touch shared memory.");

  if (!bytes_reduced_everywhere) {
    std::fprintf(stderr,
                 "FAIL: a fused plan materialized at least as many bytes "
                 "as its materializing counterpart\n");
    return 1;
  }
  if (!SmokeMode() && best_join_speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: no multi-join query sped up in-enclave under "
                 "fusion\n");
    return 1;
  }
  return 0;
}
