// Ablation A5: scatter kernel designs for radix partitioning.
//
// Three ways to write tuples to their partitions: the reference loop
// (Listing 1 style), the unroll-and-reorder loop (the paper's fix), and
// software write-combining buffers (Balkesen et al.) which stage a cache
// line per partition and flush it whole. Buffered scatter both groups
// stores in software (immune to the enclave reordering restriction) and
// cuts write-allocate traffic — a candidate "SGXv2-native" partitioner.

#include <cstdlib>
#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Ablation A5", "radix scatter: reference vs unrolled vs buffered");
  bench::PrintEnvironment();

  const size_t n = BytesToTuples(core::ScaledBytes(400_MiB));
  std::vector<Tuple> data(n);
  Xoshiro256 rng(31);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = static_cast<uint32_t>(rng.Next());
    data[i].payload = static_cast<uint32_t>(i);
  }
  std::vector<Tuple> out(n);

  core::TablePrinter table({"fan-out", "kernel", "native (host, real)",
                            "modeled enclave class"});
  for (int bits : {7, 10, 13}) {
    const uint32_t fanout = 1u << bits;
    const uint32_t mask = fanout - 1;
    std::vector<uint32_t> hist(fanout, 0);
    join::HistogramUnrolled(data.data(), n, mask, 0, hist.data());
    std::vector<uint64_t> base_offsets(fanout);
    uint64_t sum = 0;
    for (uint32_t p = 0; p < fanout; ++p) {
      base_offsets[p] = sum;
      sum += hist[p];
    }

    struct Variant {
      const char* name;
      const char* enclave_class;
    };
    const Variant variants[] = {
        {"reference", "reference loop (x3.25 compute)"},
        {"unrolled+reordered", "unrolled (x1.20)"},
        {"software-buffered", "grouped stores (x~1.1, fewer RFOs)"},
    };
    join::ScatterBufferScratch scratch;
    for (int v = 0; v < 3; ++v) {
      std::vector<uint64_t> offsets = base_offsets;
      double t = core::Repeat([&] {
                   offsets = base_offsets;
                   WallTimer timer;
                   switch (v) {
                     case 0:
                       join::ScatterReference(data.data(), n, mask, 0,
                                              offsets.data(), out.data());
                       break;
                     case 1:
                       join::ScatterUnrolled(data.data(), n, mask, 0,
                                             offsets.data(), out.data());
                       break;
                     default:
                       if (!scratch.Reserve(bits).ok()) std::abort();
                       join::ScatterSoftwareBuffered(
                           data.data(), n, mask, 0, offsets.data(),
                           out.data(), &scratch);
                   }
                   return static_cast<double>(timer.ElapsedNanos());
                 })
                     .mean_ns;
      table.AddRow({std::to_string(fanout), variants[v].name,
                    core::FormatNanos(t), variants[v].enclave_class});
    }
  }
  table.Print();
  table.ExportCsv("ablation_scatter");

  core::PrintNote(
      "at high fan-out the per-partition write streams exceed the TLB/"
      "cache capacity and the buffered variant pulls ahead natively; "
      "inside an enclave it additionally avoids the reordering "
      "restriction because the flush loop has no cross-iteration "
      "dependency.");
  return 0;
}
