// Ablation: radix fan-out vs cache residency for the RHO join.
//
// Sweeps total radix bits: too few bits leave partitions larger than
// cache (random access in the in-cache join resurfaces, and the SGX
// random-access penalty with it); too many bits waste partitioning work.
// The sweet spot keeps each partition's hash table cache-resident —
// DESIGN.md design-choice #3.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Ablation A3", "RHO radix bits: partition size vs cache residency");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  const double total_rows = bench::PaperRows(
      static_cast<double>(sizes.build_tuples) + sizes.probe_tuples);

  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();

  core::TablePrinter table({"radix bits", "partition size",
                            "host native (real)", "modeled native",
                            "modeled SGX-in", "SGX/native"});
  for (int bits : {4, 6, 8, 10, 12, 14, 16}) {
    join::JoinConfig cfg;
    cfg.num_threads = bench::HostThreads(16);
    cfg.flavor = KernelFlavor::kUnrolledReordered;
    cfg.radix_bits = bits;
    cfg.radix_passes = bits >= 8 ? 2 : 1;

    join::JoinResult result = join::RhoJoin(build, probe, cfg).value();
    perf::PhaseBreakdown paper_phases = bench::PaperScale(result.phases);
    double native = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kPlainCpu, false, 16);
    double sgx = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kSgxDataInEnclave, false, 16);
    size_t part_bytes =
        sizes.build_tuples / (size_t{1} << bits) * sizeof(Tuple);
    table.AddRow(
        {std::to_string(bits),
         core::FormatBytes(static_cast<double>(part_bytes)),
         core::FormatRowsPerSec(total_rows / (result.host_ns * 1e-9)),
         core::FormatRowsPerSec(total_rows / (native * 1e-9)),
         core::FormatRowsPerSec(total_rows / (sgx * 1e-9)),
         core::FormatRel(native / sgx)});
  }
  table.Print();
  table.ExportCsv("ablation_radix_bits");

  core::PrintNote(
      "with few radix bits the per-partition hash tables exceed cache "
      "and the SGX random-access penalty reappears; the paper's lesson — "
      "partition aggressively until data is cache-resident — shows as "
      "the SGX/native ratio approaching 1 with more bits.");
  return 0;
}
