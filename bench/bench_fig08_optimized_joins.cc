// Figure 8: RHO and PHT with 16 threads, before and after the unroll-and-
// reorder optimization, in-enclave relative to native.
//
// Paper shape: the optimization improves in-enclave RHO by 53% (to 83% of
// native) and in-enclave PHT by 94% (to 68% of native — still limited by
// random access, at 46% of RHO's in-enclave throughput).

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 8", "RHO & PHT, 16 threads, before/after optimization");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  const double total_rows = bench::PaperRows(
      static_cast<double>(sizes.build_tuples) + sizes.probe_tuples);
  const int paper_threads = 16;
  const int host_threads = bench::HostThreads(paper_threads);

  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();

  core::TablePrinter table({"join", "flavor", "modeled native",
                            "modeled SGX-in", "SGX/native", "paper"});

  struct Row {
    join::JoinAlgorithm algo;
    KernelFlavor flavor;
    const char* paper;
  };
  const Row rows[] = {
      {join::JoinAlgorithm::kRho, KernelFlavor::kReference, "~0.54x"},
      {join::JoinAlgorithm::kRho, KernelFlavor::kUnrolledReordered,
       "0.83x"},
      {join::JoinAlgorithm::kPht, KernelFlavor::kReference, "~0.35x"},
      {join::JoinAlgorithm::kPht, KernelFlavor::kUnrolledReordered,
       "0.68x"},
  };

  double rho_opt_sgx_tput = 0, pht_opt_sgx_tput = 0;
  for (const Row& row : rows) {
    join::JoinConfig cfg;
    cfg.num_threads = host_threads;
    cfg.flavor = row.flavor;
    join::JoinResult result =
        row.algo == join::JoinAlgorithm::kRho
            ? join::RhoJoin(build, probe, cfg).value()
            : join::PhtJoin(build, probe, cfg).value();

    perf::PhaseBreakdown paper_phases = bench::PaperScale(result.phases);
    double native = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kPlainCpu, false, paper_threads);
    double sgx = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kSgxDataInEnclave, false,
        paper_threads);
    double sgx_tput = total_rows / (sgx * 1e-9);
    if (row.flavor == KernelFlavor::kUnrolledReordered) {
      if (row.algo == join::JoinAlgorithm::kRho) {
        rho_opt_sgx_tput = sgx_tput;
      } else {
        pht_opt_sgx_tput = sgx_tput;
      }
    }
    table.AddRow({join::JoinAlgorithmToString(row.algo),
                  KernelFlavorToString(row.flavor),
                  core::FormatRowsPerSec(total_rows / (native * 1e-9)),
                  core::FormatRowsPerSec(sgx_tput),
                  core::FormatRel(native / sgx), row.paper});
  }
  table.Print();
  table.ExportCsv("fig08");

  if (rho_opt_sgx_tput > 0) {
    std::printf(
        "  optimized PHT reaches %.0f%% of optimized RHO in-enclave "
        "(paper: 46%%)\n",
        pht_opt_sgx_tput / rho_opt_sgx_tput * 100.0);
  }
  core::PrintNote(
      "paper: the remaining gap after optimization originates from "
      "random main-memory access (PHT's shared hash table).");
  return 0;
}
