// Figure 7: histogram micro-benchmark.
//
// Creating a radix histogram over a fixed array of random tuples, for
// typical bin counts, comparing the Listing-1 reference loop with the
// Listing-2 manual unroll (and the deeper SIMD index-buffering variant).
//
// Paper shape: inside an enclave the reference loop is 225% slower than
// native regardless of data location; manual unrolling cuts the penalty
// to ~20%; the SIMD variant narrows it further. Natively, the variants
// perform about the same (the CPU unrolls dynamically) — which this bench
// verifies with real measurements.

#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 7", "radix histogram: reference vs unrolled vs SIMD");
  bench::PrintEnvironment();

  const size_t n = BytesToTuples(core::ScaledBytes(400_MiB));
  std::vector<Tuple> data(n);
  Xoshiro256 rng(13);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = static_cast<uint32_t>(rng.Next());
    data[i].payload = static_cast<uint32_t>(i);
  }

  const int bin_bits[] = {4, 6, 8, 10, 12, 14};
  core::TablePrinter table(
      {"bins", "native ref (host)", "native unrolled (host)",
       "native SIMD (host)", "modeled SGX ref", "modeled SGX unrolled"});

  for (int bits : bin_bits) {
    const uint32_t fanout = 1u << bits;
    const uint32_t mask = fanout - 1;
    std::vector<uint32_t> hist(fanout);

    auto time_kernel = [&](join::HistogramKernel kernel) {
      return core::Repeat([&] {
               std::fill(hist.begin(), hist.end(), 0);
               WallTimer t;
               kernel(data.data(), n, mask, 0, hist.data());
               return static_cast<double>(t.ElapsedNanos());
             })
          .mean_ns;
    };

    double t_ref = time_kernel(&join::HistogramReference);
    double t_unrolled = time_kernel(&join::HistogramUnrolled);
    double t_simd = time_kernel(&join::HistogramSimd);

    // Modeled in-enclave times: host native time x model slowdown.
    perf::PhaseStats ref_phase;
    ref_phase.host_ns = t_ref;
    ref_phase.threads = 1;
    ref_phase.profile =
        join::HistogramProfile(n, bits, KernelFlavor::kReference);
    perf::PhaseStats unr_phase;
    unr_phase.host_ns = t_unrolled;
    unr_phase.threads = 1;
    unr_phase.profile =
        join::HistogramProfile(n, bits, KernelFlavor::kUnrolledReordered);

    double sgx_ref =
        t_ref * core::PhaseSlowdown(ref_phase,
                                    ExecutionSetting::kSgxDataInEnclave);
    double sgx_unr = t_unrolled *
                     core::PhaseSlowdown(
                         unr_phase, ExecutionSetting::kSgxDataInEnclave);

    table.AddRow({std::to_string(fanout), core::FormatNanos(t_ref),
                  core::FormatNanos(t_unrolled),
                  core::FormatNanos(t_simd), core::FormatNanos(sgx_ref),
                  core::FormatNanos(sgx_unr)});
  }
  table.Print();
  table.ExportCsv("fig07");

  core::PrintNote(
      "native check (real): reference vs unrolled should be roughly equal "
      "outside the enclave — the CPU's dynamic unrolling does the same "
      "job, which is exactly why the enclave-mode restriction hurts.");
  core::PrintNote(
      "paper: in-enclave reference loop +225%; unrolled +20%; "
      "independent of whether the data is inside or outside the enclave "
      "(so not a memory-encryption effect).");
  return 0;
}
