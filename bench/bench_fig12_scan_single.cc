// Figure 12: single-threaded AVX-512 column scan by data size.
//
// Scanning the same uint8 column 1000 times (after warm-up), comparing
// enclave code on enclave data, enclave code on plain data, and plain
// CPU. Paper shape: identical while cache-resident; ~3% slowdown for
// encrypted data beyond L3 (vs up to 75% on SGXv1).

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 12", "single-threaded SIMD scan, 3 settings, by size");
  bench::PrintEnvironment();

  core::TablePrinter table(
      {"column size", "host GB/s (native, real)", "modeled Plain",
       "modeled SGX-in", "modeled SGX-out", "SGX-in/native"});

  for (size_t bytes : {64_KiB, 1_MiB, 8_MiB, 64_MiB,
                       core::ScaledBytes(1_GiB)}) {
    auto col = Column<uint8_t>::Allocate(bytes, MemoryRegion::kUntrusted)
                   .value();
    Xoshiro256 rng(3);
    for (size_t i = 0; i < bytes; ++i) {
      col[i] = static_cast<uint8_t>(rng.Next());
    }
    auto bv = BitVector::Allocate(bytes, MemoryRegion::kUntrusted).value();

    // Work-normalized repetitions: ~1000 for cache-resident sizes as in
    // the paper, fewer for large columns so the bench stays fast.
    int reps = static_cast<int>(
        std::max<size_t>(3, std::min<size_t>(1000, 256_MiB / bytes)));

    scan::ScanConfig cfg;
    cfg.lo = 32;
    cfg.hi = 196;
    cfg.num_threads = 1;
    cfg.repetitions = reps;
    // Warm-up (the paper does 10 warm-up scans).
    scan::ScanConfig warm = cfg;
    warm.repetitions = 3;
    (void)scan::RunBitVectorScan(col, &bv, warm);

    auto result = scan::RunBitVectorScan(col, &bv, cfg).value();
    double host_gbps = result.profile.seq_read_bytes /
                       (result.host_ns * 1e-9) / 1e9;

    perf::PhaseStats phase;
    phase.host_ns = result.host_ns;
    phase.threads = 1;
    phase.profile = result.profile;
    perf::PhaseBreakdown bd;
    bd.Add(phase);

    double plain =
        core::ModeledReferenceNs(bd, ExecutionSetting::kPlainCpu);
    double sgx_in = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataInEnclave);
    double sgx_out = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataOutsideEnclave);
    auto gbps = [&](double ns) {
      return core::FormatBytesPerSec(result.profile.seq_read_bytes /
                                     (ns * 1e-9));
    };
    char host[32];
    std::snprintf(host, sizeof(host), "%.2f", host_gbps);
    table.AddRow({core::FormatBytes(static_cast<double>(bytes)), host,
                  gbps(plain), gbps(sgx_in), gbps(sgx_out),
                  core::FormatRel(plain / sgx_in)});
  }
  table.Print();
  table.ExportCsv("fig12");

  core::PrintNote(
      "paper: no SGX-inherent overhead while cache-resident; ~3% for EPC "
      "data beyond L3 (prefetching hides most of the decryption).");
  return 0;
}
