// Ablation: task-queue implementations across contention levels.
//
// Extends Figure 10 with the spin-lock queue (an intermediate design
// point) and sweeps the contention level via the radix fan-out: more
// radix bits = smaller partitions = more, shorter tasks.

#include "bench_util.h"
#include "exec/executor.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Ablation A2", "task-queue designs across contention levels");
  bench::PrintEnvironment();

  const size_t build_tuples = BytesToTuples(core::ScaledBytes(20_MiB));
  const size_t probe_tuples = BytesToTuples(core::ScaledBytes(80_MiB));
  const double total_rows =
      static_cast<double>(build_tuples) + probe_tuples;

  auto build = join::GenerateBuildRelation(build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(probe_tuples, build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  const int threads = std::max(4, bench::HostThreads(16));

  core::TablePrinter table({"radix bits (tasks)", "queue",
                            "SGX measured time", "SGX throughput",
                            "vs lock-free"});
  for (int bits : {8, 12, 16}) {
    double lockfree_tput = 0;
    for (TaskQueueKind kind :
         {TaskQueueKind::kLockFree, TaskQueueKind::kSpinLock,
          TaskQueueKind::kMutex}) {
      join::JoinConfig cfg;
      cfg.num_threads = threads;
      cfg.flavor = KernelFlavor::kUnrolledReordered;
      cfg.queue = kind;
      cfg.setting = ExecutionSetting::kSgxDataInEnclave;
      cfg.radix_bits = bits;

      core::Measurement m = core::Repeat([&] {
        return join::RhoJoin(build, probe, cfg).value().host_ns;
      });
      double tput = total_rows / (m.mean_ns * 1e-9);
      if (kind == TaskQueueKind::kLockFree) lockfree_tput = tput;
      table.AddRow({std::to_string(bits) + " (" +
                        std::to_string(1 << bits) + ")",
                    TaskQueueKindToString(kind),
                    core::FormatNanos(m.mean_ns),
                    core::FormatRowsPerSec(tput),
                    core::FormatRel(tput / lockfree_tput)});
    }
  }
  table.Print();
  table.ExportCsv("ablation_queues");

  core::PrintNote(
      "the mutex queue degrades with contention because each park/wake "
      "pays enclave transitions; spin locks avoid the OS but still "
      "serialize; the lock-free queue does neither.");
  const exec::ExecutorStats stats = exec::Executor::Default().stats();
  core::PrintNote(
      "all join gangs above ran on the persistent executor: " +
      std::to_string(stats.pool_threads_spawned) +
      " pool threads served " + std::to_string(stats.gangs) +
      " gangs (no per-dispatch thread spawn; see bench_ablation_executor "
      "for the pool-vs-spawn ablation).");
  return 0;
}
