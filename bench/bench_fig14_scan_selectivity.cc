// Figure 14: scan with varying write rate (selectivity).
//
// The row-id-materializing scan writes an 8-byte index per match, so the
// write rate is 8x the selectivity (up to 800% at selectivity 1.0).
// Paper shape: the read throughput decreases with selectivity, but to the
// same degree inside and outside the enclave — writes do not stress the
// memory encryption engine disproportionately.

#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 14", "row-id scan: throughput vs selectivity (write rate)");
  bench::PrintEnvironment();

  const size_t bytes = core::ScaledBytes(4_GiB);
  auto col =
      Column<uint8_t>::Allocate(bytes, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(17);
  for (size_t i = 0; i < bytes; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  std::vector<uint64_t> ids(bytes);

  const int threads = bench::HostThreads(16);
  core::TablePrinter table({"selectivity", "write rate",
                            "host read GB/s (real)",
                            "modeled Plain GB/s", "modeled SGX-in GB/s",
                            "SGX/native"});

  for (int sel_pct : {0, 10, 25, 50, 75, 100}) {
    scan::ScanConfig cfg;
    cfg.lo = 0;
    cfg.hi = static_cast<uint8_t>(
        sel_pct == 0 ? 0 : sel_pct * 256 / 100 - 1);
    if (sel_pct == 0) {
      cfg.lo = 255;  // ~0 selectivity (only value 255 with hi=0 matches
      cfg.hi = 254;  // nothing: lo > hi)
    }
    cfg.num_threads = threads;
    uint64_t count = 0;
    auto result = scan::RunRowIdScan(col, ids.data(), &count, cfg).value();
    double host_gbps = bytes / (result.host_ns * 1e-9) / 1e9;
    double actual_sel = static_cast<double>(count) / bytes;

    perf::PhaseStats phase;
    phase.host_ns = result.host_ns;
    phase.threads = 16;
    phase.profile = result.profile;
    perf::PhaseBreakdown bd;
    bd.Add(phase);
    double plain = core::ModeledReferenceNs(
        bd, ExecutionSetting::kPlainCpu, false, 16);
    double sgx = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataInEnclave, false, 16);

    char selbuf[32], wrbuf[32], host[32];
    std::snprintf(selbuf, sizeof(selbuf), "%.0f%%", actual_sel * 100);
    std::snprintf(wrbuf, sizeof(wrbuf), "%.0f%%", actual_sel * 800);
    std::snprintf(host, sizeof(host), "%.2f", host_gbps);
    auto gbps = [&](double ns) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", bytes / (ns * 1e-9) / 1e9);
      return std::string(buf);
    };
    table.AddRow({selbuf, wrbuf, host, gbps(plain), gbps(sgx),
                  core::FormatRel(plain / sgx)});
  }
  table.Print();
  table.ExportCsv("fig14");

  core::PrintNote(
      "paper: increasing the write rate lowers read throughput equally "
      "inside and outside the enclave — no write-induced SGX penalty for "
      "sequential output.");
  return 0;
}
