// Figure 17: TPC-H queries 3, 10, 12, 19 using the RHO join.
//
// Three configurations per query: native (Plain CPU), inside the enclave
// without the optimization, and inside the enclave with the unroll-and-
// reorder optimization. Paper shape: the optimization cuts query runtime
// by 7% (Q19) to 30% (Q12); the average in-enclave overhead drops from
// 42% to 15% over native.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 17", "TPC-H Q3/Q10/Q12/Q19, native vs SGX (un)optimized");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  // Paper: SF 10. CI default: SF 0.1 for a fast, representative run.
  gen.scale_factor = core::FullScale() ? 10.0 : 0.1;
  std::printf("  generating TPC-H data at SF %.2f ...\n",
              gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();
  std::printf("  lineitem: %zu rows\n", db.lineitem.num_rows);

  const int threads = bench::HostThreads(16);
  core::TablePrinter table({"query", "count(*)", "native (host)",
                            "SGX unoptimized", "SGX optimized",
                            "opt. saves", "paper saves"});
  const char* paper_saves[] = {"~20%", "~25%", "30%", "7%"};

  double sum_native = 0, sum_opt = 0, sum_unopt = 0;
  int qi = 0;
  for (int query : {3, 10, 12, 19}) {
    tpch::QueryConfig cfg;
    cfg.num_threads = threads;
    cfg.radix_bits = core::FullScale() ? 14 : 10;
    // The paper's exhibit is the fully materializing Section 6 setup;
    // pin the mode so the cost-based planner cannot pick fusion here.
    cfg.pipeline = false;

    // Native, optimized kernels.
    cfg.flavor = KernelFlavor::kUnrolledReordered;
    auto opt = tpch::RunQuery(query, db, cfg).value();
    // Reference kernels (to derive the unoptimized enclave time).
    cfg.flavor = KernelFlavor::kReference;
    auto ref = tpch::RunQuery(query, db, cfg).value();
    if (opt.count != ref.count) {
      std::fprintf(stderr, "Q%d count mismatch!\n", query);
      return 1;
    }

    double native = core::HostScaledNs(opt.phases,
                                       ExecutionSetting::kPlainCpu);
    double sgx_unopt = core::HostScaledNs(
        ref.phases, ExecutionSetting::kSgxDataInEnclave);
    double sgx_opt = core::HostScaledNs(
        opt.phases, ExecutionSetting::kSgxDataInEnclave);
    sum_native += native;
    sum_unopt += sgx_unopt;
    sum_opt += sgx_opt;

    char saves[32];
    std::snprintf(saves, sizeof(saves), "%.0f%%",
                  (1.0 - sgx_opt / sgx_unopt) * 100.0);
    table.AddRow({"Q" + std::to_string(query),
                  std::to_string(opt.count), core::FormatNanos(native),
                  core::FormatNanos(sgx_unopt),
                  core::FormatNanos(sgx_opt), saves, paper_saves[qi++]});
  }
  table.Print();
  table.ExportCsv("fig17");

  std::printf(
      "  average in-enclave overhead vs native: unoptimized %.0f%%, "
      "optimized %.0f%% (paper: 42%% -> 15%%)\n",
      (sum_unopt / sum_native - 1.0) * 100.0,
      (sum_opt / sum_native - 1.0) * 100.0);
  core::PrintNote(
      "queries are scan+join only, integer-encoded, count(*) finals, "
      "fully materializing — the paper's Section 6 setup.");
  return 0;
}
