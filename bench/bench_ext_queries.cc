// Extension E4: the scan-dominated TPC-H queries (Q1, Q6) and the
// grouped Q12 under the three execution settings.
//
// The paper's query section (Fig. 17) uses join-dominated queries. The
// scan-dominated classics complete the picture: per the paper's scan
// results (Fig. 12-15), Q1/Q6 should run inside the enclave at within a
// few percent of native even WITHOUT the unroll optimization — secure
// scanning is nearly free, it is the joins that need care.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Extension E4", "scan-dominated queries: Q1, Q6, Q12-grouped");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor = core::FullScale() ? 10.0 : 0.1;
  std::printf("  generating TPC-H data at SF %.2f ...\n",
              gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();

  const int threads = bench::HostThreads(16);
  core::TablePrinter table({"query", "result", "native (host)",
                            "SGX-in (host-scaled)", "overhead"});

  struct Q {
    const char* name;
    int number;  // 0 = Q12 grouped
  };
  for (const Q& q : {Q{"Q1 (scan+group)", 1}, Q{"Q6 (pure scan)", 6},
                     Q{"Q12 grouped (join+group)", 0}}) {
    tpch::QueryConfig cfg;
    cfg.num_threads = threads;
    cfg.radix_bits = 10;
    // Paper-faithful setup: materializing, regardless of the planner's
    // cost-based mode pick.
    cfg.pipeline = false;
    auto result = q.number == 0 ? tpch::RunQ12Grouped(db, cfg)
                                : tpch::RunQuery(q.number, db, cfg);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name,
                   result.status().ToString().c_str());
      return 1;
    }
    double native = core::HostScaledNs(result.value().phases,
                                       ExecutionSetting::kPlainCpu);
    double sgx = core::HostScaledNs(
        result.value().phases, ExecutionSetting::kSgxDataInEnclave);
    char overhead[32];
    std::snprintf(overhead, sizeof(overhead), "+%.0f%%",
                  (sgx / native - 1.0) * 100.0);
    std::string res = std::to_string(result.value().count);
    if (!result.value().group_counts.empty()) {
      res += " (" +
             std::to_string(result.value().group_counts.size()) +
             " groups)";
    }
    table.AddRow({q.name, res, core::FormatNanos(native),
                  core::FormatNanos(sgx), overhead});
  }
  table.Print();
  table.ExportCsv("ext_queries");

  core::PrintNote(
      "pure scans (Q6) carry only the streaming MEE overhead of a few "
      "percent. Q1's GROUP BY is a histogram-style read-modify-write "
      "loop, so it inherits the Fig. 7 enclave reordering penalty — the "
      "paper's unroll-and-reorder advice applies to aggregation finals "
      "too, not just to radix partitioning.");
  return 0;
}
