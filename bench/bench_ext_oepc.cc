// Extension E5: the out-of-EPC columnar buffer manager (docs/storage.md).
//
// TPC-H through an enclave-sized pool that is a fraction of the dataset:
// hot column partitions stay decoded in the trusted pool, cold ones live
// in untrusted memory as compressed, MEE-encrypted spill images and are
// decrypted + decoded back on demand. This sweeps the pool budget from
// "everything resident" to 1/16 of the dataset and charts the pressure
// cliff for a TPC-H query mix (Q1, Q3, Q6, Q12), comparing:
//
//   resident    — plain in-enclave columns (no manager), the baseline
//   spill raw   — paged, compression off: spill images are raw + MEE
//   spill comp  — paged, FoR/dict compression before encryption
//
// Gates (checked at the smallest budget, where the working set clearly
// exceeds the pool): compressed spill must move >= 2x fewer untrusted-
// tier bytes through the MEE than uncompressed, and must be faster end
// to end. Every paged run is also checked for result equality against
// the resident baseline.
//
// Satellite reconciliation with bench_ext_epc_paging: that extension
// models SGXv1 hardware paging at 40 us per 4 KiB EWB/ELDU round-trip.
// Here the same fault-count estimate (moved bytes / 4 KiB, 4-way fault
// concurrency) is priced at the hardware cost and printed next to the
// measured software-spill overhead (paged wall minus resident wall), so
// both curves land in one CSV and EXPERIMENTS.md records the delta.
//
// Reproduce the CSV with:
//   SGXBENCH_CSV_DIR=results ./build/bench/bench_ext_oepc
// CI runs the same binary with SGXBENCH_SMOKE=1 as a code-path and
// artifact check.

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "storage/buffer_manager.h"
#include "tpch/paged_db.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

using namespace sgxb;

namespace {

bool SmokeMode() { return std::getenv("SGXBENCH_SMOKE") != nullptr; }

// Same fault pricing as bench_ext_epc_paging's SGXv1 model.
constexpr double kFaultNs = 40000.0;
constexpr double kPageBytes = 4096.0;

const int kMixQueries[] = {1, 3, 6, 12};

struct MixRun {
  double wall_ns = 0;        // best-of-reps wall clock for the whole mix
  uint64_t moved_bytes = 0;  // untrusted-tier bytes through the MEE
  uint64_t reloads = 0;
  bool ok = true;
};

struct Expected {
  uint64_t count = 0;
  std::vector<uint64_t> group_counts;
};

// Runs the query mix `reps` times and keeps the fastest repetition's wall
// clock together with that repetition's manager activity. The first pass
// is untimed warm-up so one-time demand loads (a pool larger than the
// dataset never reloads afterwards) do not blur the steady state.
template <typename Db>
MixRun MeasureMix(const Db& db, const tpch::QueryConfig& cfg,
                  storage::BufferManager* bm,
                  std::vector<Expected>* expected) {
  MixRun best;
  const int reps = core::DefaultRepetitions();
  for (int rep = -1; rep < reps; ++rep) {
    const storage::BufferManagerStats before =
        bm ? bm->stats() : storage::BufferManagerStats{};
    WallTimer timer;
    size_t qi = 0;
    for (int q : kMixQueries) {
      auto result = tpch::RunQuery(q, db, cfg);
      if (!result.ok()) {
        std::fprintf(stderr, "Q%d failed: %s\n", q,
                     result.status().ToString().c_str());
        best.ok = false;
        return best;
      }
      if (expected) {
        if (qi == expected->size()) {
          expected->push_back(
              {result.value().count, result.value().group_counts});
        } else if (result.value().count != (*expected)[qi].count ||
                   result.value().group_counts !=
                       (*expected)[qi].group_counts) {
          std::fprintf(stderr,
                       "Q%d result mismatch vs resident baseline\n", q);
          best.ok = false;
          return best;
        }
      }
      ++qi;
    }
    const double wall = static_cast<double>(timer.ElapsedNanos());
    if (rep < 0) continue;  // warm-up
    const storage::BufferManagerStats after =
        bm ? bm->stats() : storage::BufferManagerStats{};
    if (rep == 0 || wall < best.wall_ns) {
      best.wall_ns = wall;
      best.moved_bytes = after.decrypt_bytes - before.decrypt_bytes;
      best.reloads = after.partitions_reloaded - before.partitions_reloaded;
    }
  }
  return best;
}

struct PagedSetup {
  std::unique_ptr<storage::BufferManager> bm;
  tpch::PagedTpchDb paged;
};

PagedSetup MakePaged(const tpch::TpchDb& db, size_t pool_bytes,
                     size_t partition_rows, bool compress) {
  PagedSetup s;
  storage::BufferManager::Config cfg;
  cfg.buffer_bytes = pool_bytes;
  cfg.partition_rows = partition_rows;
  cfg.compress = compress;
  // The async prefetch worker loads opportunistically (and sometimes
  // wastefully, when its target is evicted before use), which makes the
  // moved-bytes counts timing-dependent. The sweep measures the
  // deterministic demand-paging path; prefetch has its own unit tests.
  cfg.prefetch = false;
  s.bm = std::make_unique<storage::BufferManager>(cfg);
  auto paged = tpch::PagedTpchDb::Build(db, s.bm.get());
  if (!paged.ok()) {
    std::fprintf(stderr, "PagedTpchDb::Build failed: %s\n",
                 paged.status().ToString().c_str());
    std::exit(1);
  }
  s.paged = std::move(paged).value();
  return s;
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Extension E5",
      "out-of-EPC columns: compressed, encrypted, pageable spill");
  bench::PrintEnvironment();

  tpch::GenConfig gen;
  gen.scale_factor =
      SmokeMode() ? 0.01 : (core::FullScale() ? 10.0 : 0.05);
  std::printf("  generating TPC-H data at SF %.2f ...\n",
              gen.scale_factor);
  tpch::TpchDb db = tpch::Generate(gen).value();

  // Small partitions keep the worst-case concurrent-pin demand of the
  // fused Q12 chain far below even the tightest pool at CI scale; full
  // scale uses the production default.
  const size_t partition_rows = core::FullScale() ? 65536 : 2048;
  const int threads = bench::HostThreads(8);
  const double fault_concurrency = std::min(4.0, double(threads));

  tpch::QueryConfig cfg;
  cfg.num_threads = threads;
  cfg.radix_bits = core::FullScale() ? 14 : 10;

  // Dataset size = decoded bytes of every registered column; probe it
  // from a throwaway registration so the sweep fractions are exact.
  size_t dataset_bytes = 0;
  {
    PagedSetup probe = MakePaged(db, size_t(1) << 34, partition_rows,
                                 /*compress=*/true);
    dataset_bytes = probe.bm->stats().logical_bytes;
    std::printf("  dataset: %s decoded, %s spilled (%.2fx compression)\n",
                core::FormatBytes(double(dataset_bytes)).c_str(),
                core::FormatBytes(
                    double(probe.bm->stats().spill_payload_bytes))
                    .c_str(),
                probe.bm->stats().CompressionRatio());
  }

  // Resident baseline: the same mix on plain in-enclave columns.
  std::vector<Expected> expected;
  MixRun resident = MeasureMix(db, cfg, nullptr, &expected);
  if (!resident.ok) return 1;

  const double fracs[] = {4.0, 1.0, 0.5, 0.25, 0.125, 0.0625};
  // Pin headroom: never shrink the pool below what the widest fused
  // chain can pin at once across all worker threads.
  const size_t pool_floor =
      48 * partition_rows * sizeof(uint32_t);

  core::TablePrinter table(
      {"pool", "of data", "resident", "spill raw", "spill comp",
       "raw moved", "comp moved", "bytes ratio", "comp speedup",
       "hw-model extra", "measured extra"});

  // Gate accumulators over every budget that actually spilled: per-row
  // ratios wobble with prefetch/eviction order, the aggregate does not.
  uint64_t raw_bytes_sum = 0, comp_bytes_sum = 0, spilled_rows = 0;
  double raw_wall_sum = 0, comp_wall_sum = 0;
  for (double frac : fracs) {
    const size_t pool = std::max(
        pool_floor, static_cast<size_t>(frac * double(dataset_bytes)));

    PagedSetup raw = MakePaged(db, pool, partition_rows,
                               /*compress=*/false);
    MixRun raw_run = MeasureMix(raw.paged.View(), cfg, raw.bm.get(),
                                &expected);
    PagedSetup comp = MakePaged(db, pool, partition_rows,
                                /*compress=*/true);
    MixRun comp_run = MeasureMix(comp.paged.View(), cfg, comp.bm.get(),
                                 &expected);
    if (!raw_run.ok || !comp_run.ok) return 1;

    // Satellite reconciliation: price the raw run's moved pages at the
    // SGXv1 EWB/ELDU fault cost from bench_ext_epc_paging.
    const double model_extra_ns = double(raw_run.moved_bytes) /
                                  kPageBytes * kFaultNs /
                                  fault_concurrency;
    const double measured_extra_ns =
        raw_run.wall_ns - resident.wall_ns;

    table.AddRow(
        {core::FormatBytes(double(pool)),
         core::FormatRel(double(pool) / double(dataset_bytes)),
         core::FormatNanos(resident.wall_ns),
         core::FormatNanos(raw_run.wall_ns),
         core::FormatNanos(comp_run.wall_ns),
         core::FormatBytes(double(raw_run.moved_bytes)),
         core::FormatBytes(double(comp_run.moved_bytes)),
         comp_run.moved_bytes == 0
             ? "-"
             : core::FormatRel(double(raw_run.moved_bytes) /
                               double(comp_run.moved_bytes)),
         core::FormatRel(raw_run.wall_ns / comp_run.wall_ns),
         core::FormatNanos(model_extra_ns),
         core::FormatNanos(measured_extra_ns)});

    if (raw_run.reloads > 0) {
      ++spilled_rows;
      raw_bytes_sum += raw_run.moved_bytes;
      comp_bytes_sum += comp_run.moved_bytes;
      raw_wall_sum += raw_run.wall_ns;
      comp_wall_sum += comp_run.wall_ns;
    }
  }
  table.Print();
  table.ExportCsv("ext_oepc_cliff");

  core::PrintNote(
      "above the pool budget the working set pages through the software "
      "MEE; compression shrinks every spill image before encryption, so "
      "the compressed tier moves fewer untrusted bytes AND decrypts "
      "less. The hw-model column prices the same page traffic at "
      "bench_ext_epc_paging's 40 us/4 KiB SGXv1 fault cost — the "
      "measured software path reloads in user space (no kernel "
      "round-trip, decode amortized over whole partitions), which is "
      "why the measured extra runs well below the hardware model.");

  // Gates over the budgets where the working set exceeded the pool.
  bool pass = true;
  if (spilled_rows == 0) {
    std::printf("  GATE FAIL: no budget ever reloaded — pool floor "
                "swallowed the sweep\n");
    return 1;
  }
  const double bytes_ratio =
      comp_bytes_sum == 0
          ? 0.0
          : double(raw_bytes_sum) / double(comp_bytes_sum);
  if (bytes_ratio < 2.0) {
    std::printf("  GATE FAIL: compressed spill moved only %.2fx fewer "
                "bytes (need >= 2x)\n", bytes_ratio);
    pass = false;
  } else {
    std::printf("  GATE PASS: compressed spill moves %.2fx fewer "
                "untrusted-tier bytes\n", bytes_ratio);
  }
  if (comp_wall_sum >= raw_wall_sum) {
    std::printf("  GATE %s: compressed spill not faster end-to-end "
                "(%.2fx)\n", SmokeMode() ? "WARN" : "FAIL",
                raw_wall_sum / comp_wall_sum);
    if (!SmokeMode()) pass = false;
  } else {
    std::printf("  GATE PASS: compressed spill %.2fx faster end-to-end "
                "under EPC pressure\n", raw_wall_sum / comp_wall_sum);
  }
  return pass ? 0 : 1;
}
