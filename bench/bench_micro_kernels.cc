// Google-benchmark micro-benchmarks of the performance-critical kernels:
// histogram flavours, scan kernels, task queues, B+-tree probes, and the
// simulated enclave transition itself. These complement the figure
// benches with statistically robust per-kernel numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/sgxbench.h"
#include "sync/lockfree_queue.h"
#include "sync/locked_queue.h"

namespace sgxb {
namespace {

std::vector<Tuple> MakeTuples(size_t n) {
  Xoshiro256 rng(1);
  std::vector<Tuple> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = static_cast<uint32_t>(rng.Next());
    data[i].payload = static_cast<uint32_t>(i);
  }
  return data;
}

void BM_HistogramReference(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto data = MakeTuples(n);
  const uint32_t mask = (1u << state.range(0)) - 1;
  std::vector<uint32_t> hist(1u << state.range(0));
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), 0);
    join::HistogramReference(data.data(), n, mask, 0, hist.data());
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HistogramReference)->Arg(6)->Arg(10)->Arg(14);

void BM_HistogramUnrolled(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto data = MakeTuples(n);
  const uint32_t mask = (1u << state.range(0)) - 1;
  std::vector<uint32_t> hist(1u << state.range(0));
  for (auto _ : state) {
    std::fill(hist.begin(), hist.end(), 0);
    join::HistogramUnrolled(data.data(), n, mask, 0, hist.data());
    benchmark::DoNotOptimize(hist.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HistogramUnrolled)->Arg(6)->Arg(10)->Arg(14);

void BM_ScanBitVector(benchmark::State& state) {
  const size_t n = 1 << 22;
  std::vector<uint8_t> data(n);
  Xoshiro256 rng(2);
  for (auto& v : data) v = static_cast<uint8_t>(rng.Next());
  std::vector<uint64_t> words(n / 64 + 1);
  auto kernel = scan::PickBitVectorKernel(
      static_cast<SimdLevel>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel(data.data(), n, 32, 200, words.data()));
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanBitVector)
    ->Arg(static_cast<int>(SimdLevel::kScalar))
    ->Arg(static_cast<int>(SimdLevel::kAvx2))
    ->Arg(static_cast<int>(SimdLevel::kAvx512));

void BM_ScanRowIds(benchmark::State& state) {
  const size_t n = 1 << 22;
  std::vector<uint8_t> data(n);
  Xoshiro256 rng(3);
  for (auto& v : data) v = static_cast<uint8_t>(rng.Next());
  std::vector<uint64_t> ids(n);
  auto kernel =
      scan::PickRowIdKernel(static_cast<SimdLevel>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel(data.data(), n, 100, 150, 0, ids.data()));
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanRowIds)
    ->Arg(static_cast<int>(SimdLevel::kScalar))
    ->Arg(static_cast<int>(SimdLevel::kAvx512));

void BM_ScanRowIdsCompress(benchmark::State& state) {
  const size_t n = 1 << 22;
  std::vector<uint8_t> data(n);
  Xoshiro256 rng(3);
  for (auto& v : data) v = static_cast<uint8_t>(rng.Next());
  std::vector<uint64_t> ids(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan::ScanRowIdsAvx512Compress(
        data.data(), n, 100, 150, 0, ids.data()));
  }
  state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanRowIdsCompress);

void BM_PackedScan(benchmark::State& state) {
  const size_t n = 1 << 22;
  auto col =
      Column<uint32_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(9);
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint32_t>(rng.NextBounded(128));
  }
  auto packed =
      scan::PackedColumn::Pack(col, static_cast<int>(state.range(0)))
          .value();
  auto bv = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan::PackedScan(packed, 10, 60, &bv));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PackedScan)->Arg(7)->Arg(15);

void BM_SealUnseal(benchmark::State& state) {
  std::vector<uint8_t> data(1 << 20);
  Xoshiro256 rng(4);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    auto blob = sgx::Seal(data.data(), data.size(), 42).value();
    auto out = sgx::Unseal(blob, 42);
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(state.iterations() * data.size() * 2);
}
BENCHMARK(BM_SealUnseal);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(1 << 20, 0.9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfNext);

void BM_LockFreeQueue(benchmark::State& state) {
  LockFreeTaskQueue queue(1024);
  uint64_t v;
  for (auto _ : state) {
    queue.Push(7);
    queue.TryPop(&v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_LockFreeQueue);

void BM_MutexQueue(benchmark::State& state) {
  MutexTaskQueue queue;
  uint64_t v;
  for (auto _ : state) {
    queue.Push(7);
    queue.TryPop(&v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_MutexQueue);

void BM_BTreeProbe(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<uint32_t>(i * 2),
                         static_cast<uint32_t>(i));
  }
  auto tree = index::BTree::BulkLoad(entries).value();
  Xoshiro256 rng(4);
  for (auto _ : state) {
    uint32_t key = static_cast<uint32_t>(rng.NextBounded(n * 2));
    benchmark::DoNotOptimize(tree.ForEachMatch(key, [](uint32_t) {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeProbe)->Arg(1 << 14)->Arg(1 << 20);

void BM_EnclaveTransition(benchmark::State& state) {
  for (auto _ : state) {
    sgx::ScopedEcall ecall;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnclaveTransition);

void BM_InCacheJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto build = MakeTuples(n);
  auto probe = MakeTuples(4 * n);
  join::InCacheJoinScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(join::InCachePartitionJoin(
        build.data(), n, probe.data(), 4 * n,
        KernelFlavor::kUnrolledReordered, &scratch));
  }
  state.SetItemsProcessed(state.iterations() * 5 * n);
}
BENCHMARK(BM_InCacheJoin)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace
}  // namespace sgxb

BENCHMARK_MAIN();
