// Figure 16: cross-NUMA column scan throughput.
//
// Three settings over 1..16 threads: NUMA-local plain CPU scan,
// cross-NUMA plain CPU scan, and a cross-NUMA scan over encrypted data in
// an SGXv2 enclave (UPI traffic is additionally encrypted).
//
// Paper shape: cross-NUMA throughput saturates at the 67.2 GB/s UPI
// limit with 8-16 threads; the SGX cross-NUMA scan reaches 77% of plain
// cross-NUMA at 1 thread, improving to 96% at 16 threads where the link
// itself is the bottleneck.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 16", "cross-NUMA scan: local vs remote vs remote+SGX");
  bench::PrintEnvironment();

  // Validate the scan code path once on the host, then evaluate the NUMA
  // machine model (this VM has a single socket, see DESIGN.md).
  const size_t bytes = core::ScaledBytes(2_GiB);
  auto col =
      Column<uint8_t>::Allocate(bytes, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(29);
  for (size_t i = 0; i < bytes; ++i) {
    col[i] = static_cast<uint8_t>(rng.Next());
  }
  auto bv = BitVector::Allocate(bytes, MemoryRegion::kUntrusted).value();
  scan::ScanConfig cfg;
  cfg.lo = 16;
  cfg.hi = 240;
  cfg.num_threads = bench::HostThreads(16);
  auto result = scan::RunBitVectorScan(col, &bv, cfg).value();

  perf::PhaseStats phase;
  phase.host_ns = result.host_ns;
  phase.profile = result.profile;
  perf::PhaseBreakdown bd;
  bd.Add(phase);

  core::TablePrinter table({"threads", "local plain GB/s",
                            "cross-NUMA plain GB/s",
                            "cross-NUMA SGX GB/s", "SGX/plain remote"});
  for (int threads : {1, 2, 4, 8, 16}) {
    double local = core::ModeledReferenceNs(
        bd, ExecutionSetting::kPlainCpu, false, threads);
    double remote = core::ModeledReferenceNs(
        bd, ExecutionSetting::kPlainCpu, true, threads);
    double remote_sgx = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataInEnclave, true, threads);
    auto gbps = [&](double ns) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", bytes / (ns * 1e-9) / 1e9);
      return std::string(buf);
    };
    table.AddRow({std::to_string(threads), gbps(local), gbps(remote),
                  gbps(remote_sgx), core::FormatRel(remote / remote_sgx)});
  }
  table.Print();
  table.ExportCsv("fig16");

  std::printf(
      "  host validation: real 16-way scan delivered %.2f GB/s and "
      "counted %llu matches\n",
      bytes / (result.host_ns * 1e-9) / 1e9,
      static_cast<unsigned long long>(result.matches));
  core::PrintNote(
      "paper: UPI encryption costs 23% at 1 thread, shrinking to 4% once "
      "the 67.2 GB/s UPI link saturates (8-16 threads).");
  return 0;
}
