// Figure 3: join algorithm overview.
//
// Throughput of five joins (CrkJoin, PHT, RHO, MWAY, INL) joining 100 MB
// x 400 MB with 16 threads, Plain CPU vs SGX (data in enclave).
//
// Paper shape: CrkJoin slowest (~60 M rows/s in enclave); hash joins
// (PHT, RHO) fastest natively but with the largest in-enclave reduction;
// MWAY and INL lose little; RHO in-enclave ~12x CrkJoin, INL ~3x.

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Figure 3", "join overview: 5 algorithms, Plain CPU vs SGX");
  bench::PrintEnvironment();

  const bench::JoinSizes sizes = bench::PaperJoinSizes();
  const double total_rows = bench::PaperRows(
      static_cast<double>(sizes.build_tuples) + sizes.probe_tuples);
  const int paper_threads = 16;
  const int host_threads = bench::HostThreads(paper_threads);

  auto build = join::GenerateBuildRelation(sizes.build_tuples,
                                           MemoryRegion::kUntrusted)
                   .value();
  auto probe = join::GenerateProbeRelation(
                   sizes.probe_tuples, sizes.build_tuples,
                   MemoryRegion::kUntrusted)
                   .value();

  core::TablePrinter table({"join", "host native", "modeled Plain CPU",
                            "modeled SGX-in", "SGX/native"});

  const join::JoinAlgorithm algos[] = {
      join::JoinAlgorithm::kCrk, join::JoinAlgorithm::kPht,
      join::JoinAlgorithm::kRho, join::JoinAlgorithm::kMway,
      join::JoinAlgorithm::kInl};

  uint64_t expected = sizes.probe_tuples;
  for (join::JoinAlgorithm algo : algos) {
    join::JoinConfig cfg;
    cfg.num_threads = host_threads;
    // Figure 3 benchmarks the *unoptimized* state-of-the-art joins.
    cfg.flavor = KernelFlavor::kReference;

    join::JoinResult result;
    switch (algo) {
      case join::JoinAlgorithm::kCrk:
        result = join::CrkJoin(build, probe, cfg).value();
        break;
      case join::JoinAlgorithm::kPht:
        result = join::PhtJoin(build, probe, cfg).value();
        break;
      case join::JoinAlgorithm::kRho:
        result = join::RhoJoin(build, probe, cfg).value();
        break;
      case join::JoinAlgorithm::kMway:
        result = join::MwayJoin(build, probe, cfg).value();
        break;
      case join::JoinAlgorithm::kInl:
        result = join::InlJoin(build, probe, cfg).value();
        break;
    }
    if (result.matches != expected) {
      std::fprintf(stderr, "MATCH MISMATCH for %s: %llu != %llu\n",
                   join::JoinAlgorithmToString(algo),
                   static_cast<unsigned long long>(result.matches),
                   static_cast<unsigned long long>(expected));
      return 1;
    }

    perf::PhaseBreakdown paper_phases = bench::PaperScale(result.phases);
    double native_ns = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kPlainCpu, false, paper_threads);
    double sgx_ns = core::ModeledReferenceNs(
        paper_phases, ExecutionSetting::kSgxDataInEnclave, false,
        paper_threads);
    table.AddRow(
        {join::JoinAlgorithmToString(algo),
         core::FormatRowsPerSec(total_rows / (result.host_ns * 1e-9)),
         core::FormatRowsPerSec(total_rows / (native_ns * 1e-9)),
         core::FormatRowsPerSec(total_rows / (sgx_ns * 1e-9)),
         core::FormatRel(native_ns / sgx_ns)});
  }
  table.Print();
  table.ExportCsv("fig03");

  core::PrintNote(
      "paper: CrkJoin ~60 M rows/s in-enclave; RHO in-enclave ~12x "
      "CrkJoin and ~30%+ below its native throughput; PHT suffers the "
      "largest relative loss; MWAY and INL lose the least.");
  return 0;
}
