// Ablation: unroll depth and instruction ordering for the histogram loop.
//
// The paper settles on 8x unrolling with all index computations grouped
// before all increments (Listing 2), and notes that GCC's unroll pragma —
// which interleaves the two — does not help. This ablation sweeps the
// unroll depth (2/4/8/16) and contrasts grouped vs interleaved ordering,
// measuring real native times and reporting the modeled enclave penalty
// class each variant falls into.

#include <vector>

#include "bench_util.h"

using namespace sgxb;

namespace {

// Grouped ordering: D index computations, then D increments.
template <int D>
void HistogramGrouped(const Tuple* data, size_t n, uint32_t mask,
                      uint32_t shift, uint32_t* hist) {
  size_t i = 0;
  size_t idx[D];
  for (; i + D <= n; i += D) {
    for (int k = 0; k < D; ++k) {
      idx[k] = join::RadixOf(data[i + k].key, mask, shift);
    }
    asm volatile("" ::: "memory");
    for (int k = 0; k < D; ++k) ++hist[idx[k]];
  }
  for (; i < n; ++i) ++hist[join::RadixOf(data[i].key, mask, shift)];
}

// Interleaved ordering: compute-increment pairs, like the compiler pragma
// produces.
template <int D>
void HistogramInterleaved(const Tuple* data, size_t n, uint32_t mask,
                          uint32_t shift, uint32_t* hist) {
  size_t i = 0;
  for (; i + D <= n; i += D) {
    for (int k = 0; k < D; ++k) {
      size_t idx = join::RadixOf(data[i + k].key, mask, shift);
      ++hist[idx];
      asm volatile("" ::: "memory");
    }
  }
  for (; i < n; ++i) ++hist[join::RadixOf(data[i].key, mask, shift)];
}

}  // namespace

int main() {
  core::PrintExperimentHeader(
      "Ablation A1", "histogram unroll depth & instruction ordering");
  bench::PrintEnvironment();

  const size_t n = BytesToTuples(core::ScaledBytes(400_MiB));
  std::vector<Tuple> data(n);
  Xoshiro256 rng(23);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = static_cast<uint32_t>(rng.Next());
    data[i].payload = static_cast<uint32_t>(i);
  }
  const uint32_t bits = 10;
  const uint32_t mask = (1u << bits) - 1;
  std::vector<uint32_t> hist(1u << bits);

  using Kernel = void (*)(const Tuple*, size_t, uint32_t, uint32_t,
                          uint32_t*);
  struct Variant {
    const char* name;
    Kernel kernel;
    perf::IlpClass enclave_class;
  };
  const Variant variants[] = {
      {"reference (no unroll)", &join::HistogramReference,
       perf::IlpClass::kReferenceLoop},
      {"grouped x2", &HistogramGrouped<2>,
       perf::IlpClass::kUnrolledReordered},
      {"grouped x4", &HistogramGrouped<4>,
       perf::IlpClass::kUnrolledReordered},
      {"grouped x8 (paper's Listing 2)", &HistogramGrouped<8>,
       perf::IlpClass::kUnrolledReordered},
      {"grouped x16", &HistogramGrouped<16>,
       perf::IlpClass::kUnrolledReordered},
      {"interleaved x8 (pragma-like)", &HistogramInterleaved<8>,
       perf::IlpClass::kReferenceLoop},
      {"SIMD index buffering x16", &join::HistogramSimd,
       perf::IlpClass::kSimdUnrolled},
  };

  core::TablePrinter table({"variant", "native (host, real)",
                            "modeled enclave multiplier",
                            "modeled enclave time"});
  const auto& m = perf::MachineModel::Reference();
  for (const Variant& v : variants) {
    double t = core::Repeat([&] {
                 std::fill(hist.begin(), hist.end(), 0);
                 WallTimer timer;
                 v.kernel(data.data(), n, mask, 0, hist.data());
                 return static_cast<double>(timer.ElapsedNanos());
               })
                   .mean_ns;
    double mult = m.IlpPenaltySgx(v.enclave_class);
    table.AddRow({v.name, core::FormatNanos(t), core::FormatRel(mult),
                  core::FormatNanos(t * mult)});
  }
  table.Print();
  table.ExportCsv("ablation_unroll");

  core::PrintNote(
      "grouping matters, not just unrolling: the interleaved variant "
      "keeps the load-increment dependency chain and stays in the "
      "reference penalty class — the paper's pragma observation.");
  return 0;
}
