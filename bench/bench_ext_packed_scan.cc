// Extension E3: bit-packed scans multiply effective enclave bandwidth.
//
// The SIMD-scan work the paper builds on (Willhalm et al.) scans
// bit-packed columns. Packing a w-bit column reads (w+1)/32 of the bytes
// a plain uint32 scan reads — and since the paper shows streaming reads
// through the memory encryption engine cost a flat few percent (Fig. 12/
// 15), compression multiplies the *effective* scan bandwidth inside the
// enclave by the compression ratio. This bench measures the real packed
// scan against the plain scan and models both settings.

#include <vector>

#include "bench_util.h"

using namespace sgxb;

int main() {
  core::PrintExperimentHeader(
      "Extension E3", "bit-packed scans: compression as an SGX lever");
  bench::PrintEnvironment();

  const size_t n = core::ScaledBytes(2_GiB) / sizeof(uint32_t);
  core::TablePrinter table(
      {"encoding", "bytes scanned", "host time (real)",
       "values/s (host)", "modeled SGX values/s @16T",
       "SGX-in factor"});

  // Plain uint32 baseline: scan via the u32 path (scalar loop).
  auto col =
      Column<uint32_t>::Allocate(n, MemoryRegion::kUntrusted).value();
  Xoshiro256 rng(7);
  for (size_t i = 0; i < n; ++i) {
    col[i] = static_cast<uint32_t>(rng.NextBounded(128));
  }
  const uint32_t lo = 10, hi = 60;

  uint64_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    expected += col[i] >= lo && col[i] <= hi;
  }

  {
    double t = core::Repeat([&] {
                 WallTimer timer;
                 uint64_t count = 0;
                 const uint32_t* d = col.data();
                 for (size_t i = 0; i < n; ++i) {
                   count += d[i] >= lo && d[i] <= hi;
                 }
                 asm volatile("" : "+r"(count));
                 if (count != expected) std::abort();
                 return static_cast<double>(timer.ElapsedNanos());
               })
                   .mean_ns;
    perf::AccessProfile p;
    p.seq_read_bytes = n * sizeof(uint32_t);
    p.seq_data_bytes = n * sizeof(uint32_t);
    p.loop_iterations = n / 8;
    p.ilp = perf::IlpClass::kStreaming;
    perf::PhaseStats phase;
    phase.host_ns = t;
    phase.profile = p;
    phase.threads = 16;
    perf::PhaseBreakdown bd;
    bd.Add(phase);
    double sgx16 = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataInEnclave, false, 16);
    table.AddRow(
        {"uint32 (plain)",
         core::FormatBytes(static_cast<double>(n * sizeof(uint32_t))),
         core::FormatNanos(t),
         core::FormatRowsPerSec(n / (t * 1e-9)),
         core::FormatRowsPerSec(n / (sgx16 * 1e-9)),
         core::FormatRel(core::PhaseSlowdown(
             phase, ExecutionSetting::kSgxDataInEnclave))});
  }

  for (int w : {7, 15}) {
    auto packed = scan::PackedColumn::Pack(col, w).value();
    auto bv = BitVector::Allocate(n, MemoryRegion::kUntrusted).value();
    double t = core::Repeat([&] {
                 WallTimer timer;
                 uint64_t count = scan::PackedScan(packed, lo, hi, &bv);
                 if (count != expected) std::abort();
                 return static_cast<double>(timer.ElapsedNanos());
               })
                   .mean_ns;
    perf::AccessProfile p;
    p.seq_read_bytes = packed.size_bytes();
    p.seq_data_bytes = packed.size_bytes();
    p.seq_write_bytes = n / 8;
    p.loop_iterations = packed.num_words();
    p.ilp = perf::IlpClass::kStreaming;
    perf::PhaseStats phase;
    phase.host_ns = t;
    phase.profile = p;
    phase.threads = 16;
    perf::PhaseBreakdown bd;
    bd.Add(phase);
    double sgx16 = core::ModeledReferenceNs(
        bd, ExecutionSetting::kSgxDataInEnclave, false, 16);
    char label[32];
    std::snprintf(label, sizeof(label), "%d-bit packed (%.1fx)", w,
                  packed.CompressionRatio());
    table.AddRow(
        {label, core::FormatBytes(static_cast<double>(packed.size_bytes())),
         core::FormatNanos(t), core::FormatRowsPerSec(n / (t * 1e-9)),
         core::FormatRowsPerSec(n / (sgx16 * 1e-9)),
         core::FormatRel(core::PhaseSlowdown(
             phase, ExecutionSetting::kSgxDataInEnclave))});
  }
  table.Print();
  table.ExportCsv("ext_packed_scan");

  core::PrintNote(
      "once the scan is bandwidth-bound (16 threads on the reference "
      "machine), values/s scale with the compression ratio — packing is "
      "a direct multiplier on secure-scan throughput (single-core host "
      "times are compute-bound and favour the vectorized plain loop).");
  return 0;
}
