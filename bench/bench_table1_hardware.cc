// Table 1: the benchmark hardware.
//
// Prints the paper's reference machine (which the cost model simulates)
// next to the actual host, making every substitution explicit.

#include "bench_util.h"

int main() {
  using namespace sgxb;
  core::PrintExperimentHeader(
      "Table 1", "benchmark hardware (reference machine vs this host)");

  const perf::CalibrationParams& p =
      perf::MachineModel::Reference().params();
  const CpuInfo& host = CpuInfo::Host();

  core::TablePrinter table({"property", "paper (modeled)", "this host"});
  table.AddRow({"Processor", "Intel Xeon Gold 6326",
                host.model_name});
  table.AddRow({"Sockets", std::to_string(p.sockets), "1 (assumed)"});
  table.AddRow({"Cores per socket", std::to_string(p.cores_per_socket),
                std::to_string(host.logical_cores)});
  table.AddRow({"Base frequency",
                std::to_string(p.base_frequency_hz / 1e9) + " GHz",
                "(see /proc/cpuinfo)"});
  table.AddRow({"L1d per core", core::FormatBytes(p.l1d_bytes),
                core::FormatBytes(host.l1d_bytes)});
  table.AddRow({"L2 per core", core::FormatBytes(p.l2_bytes),
                core::FormatBytes(host.l2_bytes)});
  table.AddRow({"L3 per socket", core::FormatBytes(p.l3_bytes),
                core::FormatBytes(host.l3_bytes)});
  table.AddRow({"Memory per socket",
                core::FormatBytes(p.dram_per_socket_bytes), "-"});
  table.AddRow({"EPC per socket",
                core::FormatBytes(p.epc_per_socket_bytes),
                "simulated"});
  table.AddRow({"Node read bandwidth",
                core::FormatBytesPerSec(p.node_read_bandwidth),
                "modeled"});
  table.AddRow({"UPI bandwidth",
                core::FormatBytesPerSec(p.upi_bandwidth), "modeled"});
  table.AddRow({"SIMD", "AVX-512", SimdLevelToString(host.max_simd)});
  table.Print();

  core::PrintNote(
      "the paper's machine is a dual-socket SGXv2 Ice Lake server; this "
      "reproduction has no SGX hardware, so SGX effects are modeled "
      "(see DESIGN.md) and enclave transitions/EDMM are injected.");
  sgxb::bench::PrintEnvironment();
  return 0;
}
