#include "obs/metrics.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/env.h"

namespace sgxb::obs {

namespace internal {

namespace {
std::atomic<int> g_next_shard{0};
thread_local int t_domain = -1;
}  // namespace

int ThisThreadShard() {
  thread_local const int shard =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

int CurrentDomainIndex() { return t_domain; }

void SetCurrentDomainIndex(int domain) {
  t_domain = (domain >= 0 && domain < kMaxMetricDomains) ? domain : -1;
}

}  // namespace internal

int CurrentMetricDomain() { return internal::CurrentDomainIndex(); }

namespace {

// Bucket of a value: floor(log2(v)), with 0 mapping to bucket 0. The
// bucket's value range is [2^b, 2^(b+1)).
int BucketOf(uint64_t v) {
  if (v < 2) return 0;
  return 63 - __builtin_clzll(v);
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.Increment();
  sum_.Add(value);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::QuantileUpperBound(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) {
      return b >= 63 ? UINT64_MAX : (uint64_t{1} << (b + 1)) - 1;
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.Reset();
  sum_.Reset();
  max_.store(0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterOr(const std::string& name,
                                    uint64_t fallback) const {
  auto it = counters.find(name);
  return it != counters.end() ? it->second : fallback;
}

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"max\": " + std::to_string(h.max) +
           ", \"p50\": " + std::to_string(h.p50) +
           ", \"p99\": " + std::to_string(h.p99) + ", \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::ToCsv() const {
  std::string out = "kind,name,value,count,sum,max,p50,p99\n";
  for (const auto& [name, value] : counters) {
    out += "counter," + name + "," + std::to_string(value) + ",,,,,\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "gauge," + name + "," + std::to_string(value) + ",,,,,\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "histogram," + name + ",," + std::to_string(h.count) + "," +
           std::to_string(h.sum) + "," + std::to_string(h.max) + "," +
           std::to_string(h.p50) + "," + std::to_string(h.p99) + "\n";
  }
  return out;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // node-stable containers: handles returned by Get* must survive rehash.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  // Bitmap of attribution domains in flight (bit set = acquired).
  uint64_t domains_used = 0;
};
static_assert(kMaxMetricDomains <= 64,
              "domain free-set is a single uint64_t bitmap");

Registry::Impl& Registry::impl() const {
  // Leaked intentionally: worker threads and atexit exporters may touch
  // metrics after static destructors start.
  static auto* impl = new Impl();
  return *impl;
}

Registry& Registry::Global() {
  static auto* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  auto& slot = i.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(i.mu);
  for (const auto& [name, c] : i.counters) {
    snap.counters[name] = c->Value();
  }
  for (const auto& [name, g] : i.gauges) {
    snap.gauges[name] = g->Value();
  }
  for (const auto& [name, h] : i.histograms) {
    HistogramData d;
    d.count = h->Count();
    d.sum = h->Sum();
    d.max = h->Max();
    d.p50 = h->QuantileUpperBound(0.5);
    d.p99 = h->QuantileUpperBound(0.99);
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h->BucketCount(b) != 0) last = b;
    }
    for (int b = 0; b <= last; ++b) d.buckets.push_back(h->BucketCount(b));
    snap.histograms[name] = std::move(d);
  }
  return snap;
}

int Registry::AcquireDomain() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (int d = 0; d < kMaxMetricDomains; ++d) {
    if ((i.domains_used >> d) & 1u) continue;
    i.domains_used |= uint64_t{1} << d;
    // Zero the slot in every counter registered so far. Counters
    // registered *after* this point start at zero anyway, so a
    // DomainSnapshot always reads totals-since-acquire.
    for (auto& [name, c] : i.counters) c->ResetDomain(d);
    return d;
  }
  return -1;
}

void Registry::ReleaseDomain(int domain) {
  if (domain < 0 || domain >= kMaxMetricDomains) return;
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.domains_used &= ~(uint64_t{1} << domain);
}

MetricsSnapshot Registry::DomainSnapshot(int domain) const {
  Impl& i = impl();
  MetricsSnapshot snap;
  if (domain < 0 || domain >= kMaxMetricDomains) return snap;
  std::lock_guard<std::mutex> lock(i.mu);
  for (const auto& [name, c] : i.counters) {
    snap.counters[name] = c->DomainValue(domain);
  }
  return snap;
}

void Registry::ResetAll() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (auto& [name, c] : i.counters) c->Reset();
  for (auto& [name, g] : i.gauges) g->Reset();
  for (auto& [name, h] : i.histograms) h->Reset();
}

bool WriteStats(const std::string& path) {
  MetricsSnapshot snap = Registry::Global().Snapshot();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body = csv ? snap.ToCsv() : snap.ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

// SGXBENCH_STATS=<path>: dump the registry when the process exits. The
// hook self-registers from a static initializer in this TU, which every
// binary linking sgxb_obs pulls in via the instrumented layers.
struct StatsAtExit {
  StatsAtExit() {
    if (EnvString("SGXBENCH_STATS").has_value()) {
      std::atexit([] {
        auto path = EnvString("SGXBENCH_STATS");
        if (path.has_value() && !WriteStats(*path)) {
          std::fprintf(stderr,
                       "[sgxbench] warning: failed to write stats to %s\n",
                       path->c_str());
        }
      });
    }
  }
};
StatsAtExit g_stats_at_exit;

}  // namespace

}  // namespace sgxb::obs
