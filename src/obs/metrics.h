// Always-on metrics: named counters, gauges, and log-bucketed histograms.
//
// The paper's whole argument is built from counted SGX effects (ecall /
// ocall transitions, EDMM page commits, mutex parkings) — yet until this
// subsystem each bench counted its own effect with an ad-hoc atomic. The
// registry gives every layer one place to publish counters and every bench
// / query report one place to read them.
//
// Design constraints, in order:
//  * probes sit on operator hot paths (executor tasks, arena chunk churn,
//    enclave transitions), so a Counter::Add must be one relaxed atomic
//    add to a cache line the calling thread effectively owns. Counters are
//    sharded: each thread picks a home shard (round-robin at first use,
//    cache-line padded) and snapshot-time merges the shards;
//  * handles are stable for the process lifetime: call-sites cache the
//    `Counter*` in a function-local static and never touch the registry
//    lock again;
//  * snapshots are wait-free for writers: readers sum relaxed loads, so a
//    snapshot taken concurrently with updates sees each shard at some
//    recent value (monotonic counters make this a consistent lower bound).
//
// Set SGXBENCH_STATS=<path> to dump the registry at process exit —
// JSON by default, CSV if the path ends in ".csv".

#ifndef SGXB_OBS_METRICS_H_
#define SGXB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgxb::obs {

inline constexpr int kCounterShards = 16;

/// \brief Concurrent attribution domains (in-flight queries) the registry
/// can track at once. The serving layer's admission bound must stay at or
/// below this for every admitted query to get its own report window.
inline constexpr int kMaxMetricDomains = 64;

namespace internal {
struct alignas(64) PaddedAtomic {
  std::atomic<uint64_t> v{0};
};
/// \brief The calling thread's home shard index (assigned round-robin on
/// first use, constant for the thread's lifetime).
int ThisThreadShard();
/// \brief The calling thread's current attribution domain (-1 = none).
int CurrentDomainIndex();
void SetCurrentDomainIndex(int domain);
}  // namespace internal

/// \brief Monotonic event counter, sharded to keep concurrent Add()s off
/// each other's cache lines. Value() is the merged sum.
///
/// Besides the process-global shards, every Add() is mirrored into the
/// calling thread's current *attribution domain* (if any): a per-query
/// slot set up by the serving layer so concurrent queries see only their
/// own activity in QueryReport diffs. The domain branch costs one
/// thread-local load when no domain is active.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[internal::ThisThreadShard()].v.fetch_add(
        delta, std::memory_order_relaxed);
    const int d = internal::CurrentDomainIndex();
    if (d >= 0) {
      domains_[d].v.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// \brief This counter's total within one attribution domain since the
  /// domain was acquired (domain slots are zeroed by AcquireDomain).
  uint64_t DomainValue(int domain) const {
    return domains_[domain].v.load(std::memory_order_relaxed);
  }

  void ResetDomain(int domain) {
    domains_[domain].v.store(0, std::memory_order_relaxed);
  }

  /// \brief Zeroes all shards. Not atomic with concurrent Add()s — meant
  /// for benchmark setup between measurement windows, not hot paths.
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedAtomic shards_[kCounterShards];
  // One slot per domain, not per (domain, shard): within one query the
  // threads bumping the same counter share a line, but counters are
  // charged at coarse grain (per lane, per chunk, per operator), and
  // across queries — the contention that matters for serving — domains
  // are distinct lines.
  internal::PaddedAtomic domains_[kMaxMetricDomains];
};

/// \brief Last-writer-wins instantaneous value (pool cache size, worker
/// count). Not sharded: gauges are set from cold paths.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log2-bucketed latency histogram: bucket b counts samples in
/// [2^b, 2^(b+1)). 64 buckets cover the full uint64 range (nanoseconds,
/// cycles, bytes — caller's choice of unit). Buckets are plain relaxed
/// atomics: a histogram record is already rarer than a counter bump
/// (per-phase / per-wait, not per-tuple), so per-bucket sharding would
/// buy little for 64x the footprint.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value);

  uint64_t Count() const { return count_.Value(); }
  uint64_t Sum() const { return sum_.Value(); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  /// \brief Upper-bound estimate of the q-quantile (q in [0,1]): the
  /// exclusive upper edge of the bucket containing it.
  uint64_t QuantileUpperBound(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  Counter count_;
  Counter sum_;
  std::atomic<uint64_t> max_{0};
};

/// \brief Merged histogram contents at snapshot time.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;  ///< upper bound of the median bucket
  uint64_t p99 = 0;
  std::vector<uint64_t> buckets;  ///< trailing zero buckets trimmed
};

/// \brief Point-in-time merged view of the whole registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// \brief counters[name] or 0 — snapshot diffs shouldn't care whether a
  /// subsystem was exercised at all.
  uint64_t CounterOr(const std::string& name, uint64_t fallback = 0) const;

  std::string ToJson() const;
  std::string ToCsv() const;
};

/// \brief Process-wide name -> metric registry. Get* registers on first
/// use and returns the same stable pointer forever after; the intended
/// call-site pattern caches it in a function-local static:
///
///   static obs::Counter* c = obs::Registry::Global().GetCounter("x.y");
///   c->Increment();
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// \brief Claims a free attribution domain and zeroes its slot in every
  /// registered counter, so DomainSnapshot() reads are totals since the
  /// acquire. Returns -1 when all kMaxMetricDomains are in flight (the
  /// caller runs unattributed and its report falls back to global diffs).
  int AcquireDomain();

  /// \brief Returns a domain to the free set. No-op for -1.
  void ReleaseDomain(int domain);

  /// \brief Counters-only view of one domain: every registered counter's
  /// activity attributed to `domain` since AcquireDomain. Gauges and
  /// histograms are process-global and not included.
  MetricsSnapshot DomainSnapshot(int domain) const;

  /// \brief Resets every registered metric to zero (benchmark measurement
  /// windows; see Counter::Reset for the concurrency caveat).
  void ResetAll();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// \brief The calling thread's current attribution domain (-1 = none).
int CurrentMetricDomain();

/// \brief RAII: attributes this thread's counter activity to `domain` for
/// the scope's lifetime (-1 = unattributed), restoring the previous
/// domain on destruction. The executor re-publishes the dispatching
/// thread's domain inside gang task bodies, so a query's parallel work is
/// attributed no matter which worker runs it.
class ScopedMetricDomain {
 public:
  explicit ScopedMetricDomain(int domain)
      : prev_(internal::CurrentDomainIndex()) {
    internal::SetCurrentDomainIndex(domain);
  }
  ~ScopedMetricDomain() { internal::SetCurrentDomainIndex(prev_); }
  ScopedMetricDomain(const ScopedMetricDomain&) = delete;
  ScopedMetricDomain& operator=(const ScopedMetricDomain&) = delete;

 private:
  int prev_;
};

/// \brief Writes Registry::Global().Snapshot() to `path` (CSV if the path
/// ends in ".csv", JSON otherwise). Returns false on I/O failure.
bool WriteStats(const std::string& path);

// Canonical counter names published by the instrumented layers. Kept here
// so QueryReport, tests, and benches never re-spell them.
inline constexpr char kCtrEcalls[] = "sgx.ecalls";
inline constexpr char kCtrOcalls[] = "sgx.ocalls";
inline constexpr char kCtrTransitionCycles[] = "sgx.transition_cycles";
inline constexpr char kCtrMutexParks[] = "sgx.mutex_parks";
inline constexpr char kCtrMutexWakeOcalls[] = "sgx.mutex_wake_ocalls";
inline constexpr char kCtrEdmmPagesAdded[] = "sgx.edmm_pages_added";
inline constexpr char kCtrEdmmPagesTrimmed[] = "sgx.edmm_pages_trimmed";
inline constexpr char kCtrEdmmInjectedNs[] = "sgx.edmm_injected_ns";
inline constexpr char kCtrExecGangs[] = "exec.gangs";
inline constexpr char kCtrExecTasks[] = "exec.tasks";
inline constexpr char kCtrExecMorsels[] = "exec.morsels";
inline constexpr char kCtrExecMorselSteals[] = "exec.morsel_steals";
inline constexpr char kCtrArenaBytes[] = "mem.arena_bytes";
inline constexpr char kCtrArenaChunks[] = "mem.arena_chunks";
inline constexpr char kCtrPoolHits[] = "mem.pool_hits";
inline constexpr char kCtrPoolMisses[] = "mem.pool_misses";
/// Bytes written to operator output structures (row-id lists, gathered
/// relations, join intermediates; breaker sinks in fused mode) — the
/// intermediate-materialization traffic the pipelined execution mode
/// exists to avoid (docs/pipelines.md).
inline constexpr char kCtrBytesMaterialized[] = "tpch.bytes_materialized";
// Out-of-EPC buffer manager (src/storage/): partition residency churn and
// the untrusted-tier byte traffic the spill codec exists to shrink.
inline constexpr char kCtrStoragePartitionsEvicted[] =
    "storage.partitions_evicted";
inline constexpr char kCtrStoragePartitionsReloaded[] =
    "storage.partitions_reloaded";
inline constexpr char kCtrStoragePrefetchLoads[] = "storage.prefetch_loads";
inline constexpr char kCtrStorageDecryptBytes[] = "storage.decrypt_bytes";
inline constexpr char kCtrStoragePinWaits[] = "storage.pin_waits";
/// Total nanoseconds threads spent parked on contended SDK mutexes. The
/// park-latency *distribution* lives in the kHistMutexParkNs histogram,
/// but histograms are process-global; this counter is domain-mirrored so
/// QueryReport can attribute park time per query class (the HTAP bench's
/// avalanche exhibit).
inline constexpr char kCtrMutexParkNsTotal[] = "sgx.mutex_park_ns_total";
// Live-update write path (src/txn/, docs/htap.md): commit volume, COW
// version-chunk churn, and epoch-based reclamation progress.
inline constexpr char kCtrTxnCommits[] = "txn.commits";
inline constexpr char kCtrTxnVersionsCreated[] = "txn.versions_created";
inline constexpr char kCtrTxnVersionsRetired[] = "txn.versions_retired";
inline constexpr char kCtrTxnVersionsReclaimed[] = "txn.versions_reclaimed";
inline constexpr char kCtrTxnCowBytes[] = "txn.cow_bytes";
inline constexpr char kCtrTxnReclaimedBytes[] = "txn.reclaimed_bytes";
// Hash-probe traffic of the fused pipelines (plan/fused.cc): staged
// probe tuples vs matches produced. Their ratio is the probe hit rate
// the adaptive controller (src/tune/) reads per feedback frame.
inline constexpr char kCtrProbeTuples[] = "tpch.probe_tuples";
inline constexpr char kCtrProbeMatches[] = "tpch.probe_matches";
// Adaptive self-tuning controller (src/tune/, docs/adaptive.md):
// per-query knob decisions, mid-query guardrail switches, and tuning-
// cache exploitation hits.
inline constexpr char kCtrTuneDecisions[] = "tune.decisions";
inline constexpr char kCtrTuneSwitches[] = "tune.switches";
inline constexpr char kCtrTuneCacheHits[] = "tune.cache_hits";
inline constexpr char kHistMutexParkNs[] = "sgx.mutex_park_ns";
inline constexpr char kHistTxnCommitNs[] = "txn.commit_ns";
inline constexpr char kHistEdmmCommitNs[] = "sgx.edmm_commit_ns";

}  // namespace sgxb::obs

#endif  // SGXB_OBS_METRICS_H_
