// Per-query execution reports assembled from the metrics registry.
//
// A QueryReportScope snapshots the registry when a query starts and diffs
// it when the query finishes, so the report attributes exactly the SGX
// activity that happened during the query: transitions, mutex parkings,
// EDMM page churn, arena/pool traffic, and executor work. This replaces
// the EXPERIMENTS.md habit of *deriving* those numbers (e.g. estimating
// parked pops from a throughput gap) — the serving-scale north star needs
// them countable per query, continuously, in production builds.
//
// By default counter diffs are process-global: a scope opened around
// query Q sees activity from anything else running concurrently, which is
// fine for the benchmark harness (one query stream at a time). The
// serving layer instead passes an *attribution domain* (see
// Registry::AcquireDomain and ScopedMetricDomain in obs/metrics.h): the
// scope then diffs only activity tagged with that domain — the executor
// re-publishes the dispatching thread's domain inside every gang task, so
// a query's parallel work is attributed to its own report no matter which
// worker ran it, and concurrent queries cannot see each other's ecalls,
// parks, EDMM churn, or steals.

#ifndef SGXB_OBS_QUERY_REPORT_H_
#define SGXB_OBS_QUERY_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"
#include "obs/metrics.h"

namespace sgxb::obs {

/// \brief One named phase of the query (join build/partition/probe, an
/// operator of the TPC-H pipeline, ...).
struct PhaseTiming {
  std::string name;
  double host_ns = 0;
};

/// \brief What the adaptive controller (src/tune/, docs/adaptive.md)
/// picked for one query: the final knob values, where they came from,
/// and how much the controller intervened. Only meaningful (and only
/// rendered by ToJson/ToString) when `active` — with SGXBENCH_ADAPTIVE
/// off the report output is byte-identical to the pre-tuning layout.
struct TuningReport {
  bool active = false;
  bool fused = false;
  std::string probe_mode;     ///< exec::ProbeModeToString form
  int probe_batch = 0;
  uint64_t morsel_grain = 0;
  /// Where the chosen setting came from: "prior" (cost model, first
  /// sighting), "explore" (trying a candidate arm), or "cache"
  /// (converged learned setting).
  std::string source;
  uint64_t decisions = 0;   ///< knob decisions made for this query
  uint64_t switches = 0;    ///< mid-query guardrail switches taken
  uint64_t cache_hits = 0;  ///< decisions served from the tuning cache
};

/// \brief Everything the observability layer knows about one query
/// execution. All counts are deltas over the query's window.
struct QueryReport {
  std::string query;
  double wall_ns = 0;
  std::vector<PhaseTiming> phases;

  // Enclave transitions (sgx/transition.cc).
  uint64_t ecalls = 0;
  uint64_t ocalls = 0;
  uint64_t transition_cycles = 0;

  // SDK mutex behaviour (sgx/sgx_mutex.cc) — the Figure 10 mechanism.
  // mutex_park_ns is the total time this query's threads spent parked
  // outside the enclave (per-domain, unlike the global park histogram).
  uint64_t mutex_parks = 0;
  uint64_t mutex_wake_ocalls = 0;
  uint64_t mutex_park_ns = 0;

  // EDMM page churn (sgx/enclave.cc) — the Figure 11 mechanism.
  uint64_t edmm_pages_added = 0;
  uint64_t edmm_pages_trimmed = 0;
  uint64_t edmm_injected_ns = 0;

  // Arena / pool traffic (src/mem/).
  uint64_t arena_bytes = 0;
  uint64_t arena_chunks = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  // Executor activity (src/exec/).
  uint64_t gangs = 0;
  uint64_t tasks = 0;
  uint64_t morsels = 0;
  uint64_t morsel_steals = 0;

  // Intermediate bytes written to operator outputs (tpch/operators.cc) or
  // pipeline-breaker sinks (tpch/pipelines.cc) — the traffic the fused
  // execution mode avoids (docs/pipelines.md).
  uint64_t bytes_materialized = 0;

  // Out-of-EPC buffer manager activity (src/storage/): partition
  // residency churn and the untrusted-tier bytes decrypted back into the
  // pool during this query's window.
  uint64_t partitions_evicted = 0;
  uint64_t partitions_reloaded = 0;
  uint64_t storage_prefetch_loads = 0;
  uint64_t storage_decrypt_bytes = 0;
  uint64_t storage_pin_waits = 0;

  // Live-update write path (src/txn/): commits this window plus the COW /
  // reclamation churn they caused (docs/htap.md). Zero for read-only
  // queries unless an update feed shares the report's domain.
  uint64_t txn_commits = 0;
  uint64_t txn_versions_created = 0;
  uint64_t txn_versions_retired = 0;
  uint64_t txn_versions_reclaimed = 0;
  uint64_t txn_cow_bytes = 0;
  uint64_t txn_reclaimed_bytes = 0;

  /// \brief Adaptive-controller picks for this query (tuning.active is
  /// false — and the section is omitted from both renderings — unless
  /// SGXBENCH_ADAPTIVE drove the execution).
  TuningReport tuning;

  /// \brief pool_hits / (pool_hits + pool_misses), or 0 with no traffic.
  double PoolHitRate() const;

  std::string ToJson() const;
  /// \brief Multi-line human-readable rendering for bench output.
  std::string ToString() const;
};

/// \brief Brackets one query execution: construct before running, call
/// Finish() after. Also opens a trace span named after the query so the
/// chrome trace shows the query window at the top of the span tree.
class QueryReportScope {
 public:
  /// \brief `domain` >= 0 restricts the report to activity attributed to
  /// that metric domain (multi-tenant serving); -1 keeps the historical
  /// process-global diff. The scope reads the domain but does not set it —
  /// callers wrap execution in a ScopedMetricDomain (tpch::RunQuery does
  /// this when QueryConfig::obs_domain is set).
  explicit QueryReportScope(const std::string& query_name, int domain = -1);

  /// \brief Closes the window and builds the report. Call exactly once;
  /// `phases` (optional) is attached verbatim.
  QueryReport Finish(std::vector<PhaseTiming> phases = {});

 private:
  std::string query_;
  int domain_ = -1;
  MetricsSnapshot before_;
  WallTimer timer_;
  uint64_t span_begin_tsc_ = 0;
  bool finished_ = false;
};

}  // namespace sgxb::obs

#endif  // SGXB_OBS_QUERY_REPORT_H_
