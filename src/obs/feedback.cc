#include "obs/feedback.h"

#include <cstdio>

namespace sgxb::obs {

double FeedbackFrame::ProbeHitRate() const {
  return probe_tuples == 0 ? 0.0
                           : static_cast<double>(probe_matches) /
                                 static_cast<double>(probe_tuples);
}

double FeedbackFrame::StealRatio() const {
  return morsels == 0 ? 0.0
                      : static_cast<double>(morsel_steals) /
                            static_cast<double>(morsels);
}

std::string FeedbackFrame::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "frame(probe %llu/%llu, park %.3fms, steals %llu/%llu, "
      "edmm +%llu/-%llu, paging %llu, mat %llu B)",
      static_cast<unsigned long long>(probe_matches),
      static_cast<unsigned long long>(probe_tuples),
      static_cast<double>(mutex_park_ns) * 1e-6,
      static_cast<unsigned long long>(morsel_steals),
      static_cast<unsigned long long>(morsels),
      static_cast<unsigned long long>(edmm_pages_added),
      static_cast<unsigned long long>(edmm_pages_trimmed),
      static_cast<unsigned long long>(PagingPressure()),
      static_cast<unsigned long long>(bytes_materialized));
  return buf;
}

FrameSampler::FrameSampler(int domain)
    : domain_(domain),
      last_(domain >= 0 ? Registry::Global().DomainSnapshot(domain)
                        : Registry::Global().Snapshot()) {}

FeedbackFrame FrameSampler::Sample() {
  MetricsSnapshot now = domain_ >= 0
                            ? Registry::Global().DomainSnapshot(domain_)
                            : Registry::Global().Snapshot();
  auto delta = [&](const char* name) {
    // Counters are monotonic, but a domain slot may be re-zeroed by a
    // concurrent AcquireDomain if the sampler outlives its query; clamp
    // instead of wrapping.
    const uint64_t after = now.CounterOr(name);
    const uint64_t before = last_.CounterOr(name);
    return after >= before ? after - before : 0;
  };
  FeedbackFrame f;
  f.probe_tuples = delta(kCtrProbeTuples);
  f.probe_matches = delta(kCtrProbeMatches);
  f.mutex_park_ns = delta(kCtrMutexParkNsTotal);
  f.morsels = delta(kCtrExecMorsels);
  f.morsel_steals = delta(kCtrExecMorselSteals);
  f.edmm_pages_added = delta(kCtrEdmmPagesAdded);
  f.edmm_pages_trimmed = delta(kCtrEdmmPagesTrimmed);
  f.partitions_evicted = delta(kCtrStoragePartitionsEvicted);
  f.partitions_reloaded = delta(kCtrStoragePartitionsReloaded);
  f.storage_pin_waits = delta(kCtrStoragePinWaits);
  f.bytes_materialized = delta(kCtrBytesMaterialized);
  f.pool_hits = delta(kCtrPoolHits);
  f.pool_misses = delta(kCtrPoolMisses);
  last_ = std::move(now);
  return f;
}

}  // namespace sgxb::obs
