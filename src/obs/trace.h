// Always-on tracing: per-thread ring buffers of span events exported as
// chrome://tracing JSON.
//
// Inside an enclave you cannot attach perf, VTune, or eBPF — the paper's
// measurements all come from the system timing itself with RDTSCP
// (Section 3). This layer makes that self-observation structural: every
// executor task, join phase, enclave transition, and EDMM commit records a
// span, and SGXBENCH_TRACE=<path> turns the rings into a trace viewable in
// chrome://tracing or Perfetto (docs/observability.md).
//
// Cost model:
//  * disabled (default): an ObsSpan constructor is one relaxed atomic load
//    and a predictable branch — nothing else. The bench_ablation_obs gate
//    holds this under 2% on the out-of-cache PHT probe;
//  * enabled: two RDTSCP reads plus one store into a thread-local ring
//    buffer slot. No locks, no allocation after the buffer exists.
//
// Ring semantics: each thread owns a fixed-capacity ring
// (SGXBENCH_TRACE_BUF events, default 65536). When full, the oldest event
// is overwritten and a dropped-events counter advances — tracing a long
// run degrades to "most recent window" instead of unbounded memory.
//
// Event names must be pointers with static storage duration (string
// literals, or strings interned via InternName) — the ring stores the
// pointer, not a copy.

#ifndef SGXB_OBS_TRACE_H_
#define SGXB_OBS_TRACE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/timer.h"

namespace sgxb::obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;

struct TraceEvent {
  const char* name;
  const char* category;
  uint64_t begin_tsc;
  uint64_t end_tsc;  ///< == begin_tsc for instant events
};

/// \brief Appends one event to the calling thread's ring (creating it on
/// first use). Only called with tracing enabled.
void RecordEvent(const char* name, const char* category, uint64_t begin_tsc,
                 uint64_t end_tsc);
}  // namespace internal

/// \brief True while span recording is active. This is the one relaxed
/// load every disabled probe pays.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// \brief Starts recording. `events_per_thread` 0 = SGXBENCH_TRACE_BUF or
/// the 65536 default. Capacity applies to rings created after the call.
void EnableTracing(size_t events_per_thread = 0);

/// \brief Stops recording; buffers keep their contents for WriteTrace.
void DisableTracing();

/// \brief Drops all recorded events and zeroes the drop counters. Rings
/// stay allocated for their owning threads.
void ResetTrace();

/// \brief Recording totals across all thread rings.
struct TraceStats {
  uint64_t recorded = 0;  ///< events currently held in rings
  uint64_t dropped = 0;   ///< events overwritten after a ring filled
  int threads = 0;        ///< rings ever created
};
TraceStats GetTraceStats();

/// \brief Merges every thread's ring into a chrome://tracing JSON file
/// (trace-event format, "X" complete events, microsecond timestamps).
/// Recording should be quiescent — call from a join point, not while
/// worker threads are mid-span.
Status WriteTrace(const std::string& path);

/// \brief Serializes the merged rings to the JSON string WriteTrace
/// writes (tests, in-memory consumers).
std::string TraceToJson();

/// \brief Copies `name` into process-lifetime storage and returns a
/// stable pointer, deduplicating repeats. For dynamically built span
/// names (per-operator names in the TPC-H drivers); literals don't need
/// it. Takes a lock — intern once per distinct name, not per event.
const char* InternName(const std::string& name);

/// \brief Records a complete span from explicit RDTSCP stamps. For
/// retrofit sites (PhaseRecorder) that already know their boundaries.
inline void TraceComplete(const char* name, const char* category,
                          uint64_t begin_tsc, uint64_t end_tsc) {
  if (!TracingEnabled()) return;
  internal::RecordEvent(name, category, begin_tsc, end_tsc);
}

/// \brief Records a span of known duration that ends now. For retrofit
/// sites that time phases with a wall-clock timer instead of raw TSC
/// stamps (PhaseRecorder, OpRecorder): the begin stamp is reconstructed
/// as `now - duration`, so the span lands where the phase actually ran.
inline void TraceCompleteEndingNow(const char* name, const char* category,
                                   double duration_ns) {
  if (!TracingEnabled()) return;
  const uint64_t end = ReadTsc();
  const uint64_t cycles = static_cast<uint64_t>(
      duration_ns * 1e-9 * static_cast<double>(TscFrequencyHz()));
  internal::RecordEvent(name, category, end - std::min(cycles, end), end);
}

/// \brief Records a zero-duration marker (EDMM trim, morsel steal).
inline void TraceInstant(const char* name, const char* category) {
  if (!TracingEnabled()) return;
  const uint64_t now = ReadTsc();
  internal::RecordEvent(name, category, now, now);
}

/// \brief RAII span: stamps begin at construction, records at
/// destruction. When tracing is disabled the constructor is a relaxed
/// load + branch and the destructor a compare against zero.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, const char* category = "app")
      : name_(name), category_(category) {
    if (TracingEnabled()) begin_tsc_ = ReadTsc();
  }
  ~ObsSpan() {
    if (begin_tsc_ != 0) {
      internal::RecordEvent(name_, category_, begin_tsc_, ReadTsc());
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  uint64_t begin_tsc_ = 0;  ///< 0 = tracing was off at construction
};

}  // namespace sgxb::obs

#endif  // SGXB_OBS_TRACE_H_
