#include "obs/query_report.h"

#include <cstdio>

#include "obs/trace.h"

namespace sgxb::obs {

double QueryReport::PoolHitRate() const {
  const uint64_t total = pool_hits + pool_misses;
  return total == 0 ? 0.0
                    : static_cast<double>(pool_hits) /
                          static_cast<double>(total);
}

std::string QueryReport::ToJson() const {
  std::string out = "{\"query\": \"" + query + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), ", \"wall_ns\": %.0f", wall_ns);
  out += buf;
  auto add = [&out](const char* key, uint64_t v) {
    out += ", \"";
    out += key;
    out += "\": " + std::to_string(v);
  };
  add("ecalls", ecalls);
  add("ocalls", ocalls);
  add("transition_cycles", transition_cycles);
  add("mutex_parks", mutex_parks);
  add("mutex_wake_ocalls", mutex_wake_ocalls);
  add("mutex_park_ns", mutex_park_ns);
  add("edmm_pages_added", edmm_pages_added);
  add("edmm_pages_trimmed", edmm_pages_trimmed);
  add("edmm_injected_ns", edmm_injected_ns);
  add("arena_bytes", arena_bytes);
  add("arena_chunks", arena_chunks);
  add("pool_hits", pool_hits);
  add("pool_misses", pool_misses);
  add("gangs", gangs);
  add("tasks", tasks);
  add("morsels", morsels);
  add("morsel_steals", morsel_steals);
  add("bytes_materialized", bytes_materialized);
  add("partitions_evicted", partitions_evicted);
  add("partitions_reloaded", partitions_reloaded);
  add("storage_prefetch_loads", storage_prefetch_loads);
  add("storage_decrypt_bytes", storage_decrypt_bytes);
  add("storage_pin_waits", storage_pin_waits);
  add("txn_commits", txn_commits);
  add("txn_versions_created", txn_versions_created);
  add("txn_versions_retired", txn_versions_retired);
  add("txn_versions_reclaimed", txn_versions_reclaimed);
  add("txn_cow_bytes", txn_cow_bytes);
  add("txn_reclaimed_bytes", txn_reclaimed_bytes);
  std::snprintf(buf, sizeof(buf), ", \"pool_hit_rate\": %.4f",
                PoolHitRate());
  out += buf;
  if (tuning.active) {
    out += ", \"tuning\": {\"fused\": ";
    out += tuning.fused ? "true" : "false";
    out += ", \"probe_mode\": \"" + tuning.probe_mode + "\"";
    out += ", \"probe_batch\": " + std::to_string(tuning.probe_batch);
    out += ", \"morsel_grain\": " + std::to_string(tuning.morsel_grain);
    out += ", \"source\": \"" + tuning.source + "\"";
    out += ", \"decisions\": " + std::to_string(tuning.decisions);
    out += ", \"switches\": " + std::to_string(tuning.switches);
    out += ", \"cache_hits\": " + std::to_string(tuning.cache_hits);
    out += "}";
  }
  out += ", \"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "\": %.0f}", phases[i].host_ns);
    out += "{\"" + phases[i].name + buf;
  }
  out += "]}";
  return out;
}

std::string QueryReport::ToString() const {
  char buf[256];
  std::string out = "QueryReport(" + query + ")\n";
  std::snprintf(buf, sizeof(buf), "  wall: %.3f ms over %zu phases\n",
                wall_ns * 1e-6, phases.size());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  transitions: %llu ecalls, %llu ocalls, %llu injected "
                "cycles\n",
                static_cast<unsigned long long>(ecalls),
                static_cast<unsigned long long>(ocalls),
                static_cast<unsigned long long>(transition_cycles));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  mutex: %llu parks (%.3f ms parked), %llu wake ocalls\n",
                static_cast<unsigned long long>(mutex_parks),
                static_cast<double>(mutex_park_ns) * 1e-6,
                static_cast<unsigned long long>(mutex_wake_ocalls));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  edmm: +%llu/-%llu pages, %.3f ms injected\n",
                static_cast<unsigned long long>(edmm_pages_added),
                static_cast<unsigned long long>(edmm_pages_trimmed),
                static_cast<double>(edmm_injected_ns) * 1e-6);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  memory: %llu arena bytes in %llu chunks, pool hit rate "
                "%.1f%%\n",
                static_cast<unsigned long long>(arena_bytes),
                static_cast<unsigned long long>(arena_chunks),
                100.0 * PoolHitRate());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  executor: %llu gangs, %llu tasks, %llu morsels "
                "(%llu stolen)\n",
                static_cast<unsigned long long>(gangs),
                static_cast<unsigned long long>(tasks),
                static_cast<unsigned long long>(morsels),
                static_cast<unsigned long long>(morsel_steals));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  materialized: %llu bytes\n",
                static_cast<unsigned long long>(bytes_materialized));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  storage: %llu reloads (+%llu prefetch), %llu evictions, "
                "%llu decrypt bytes, %llu pin waits\n",
                static_cast<unsigned long long>(partitions_reloaded),
                static_cast<unsigned long long>(storage_prefetch_loads),
                static_cast<unsigned long long>(partitions_evicted),
                static_cast<unsigned long long>(storage_decrypt_bytes),
                static_cast<unsigned long long>(storage_pin_waits));
  out += buf;
  if (txn_commits > 0 || txn_versions_reclaimed > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  txn: %llu commits, versions +%llu/-%llu (%llu retired), "
                  "%llu cow bytes, %llu reclaimed bytes\n",
                  static_cast<unsigned long long>(txn_commits),
                  static_cast<unsigned long long>(txn_versions_created),
                  static_cast<unsigned long long>(txn_versions_reclaimed),
                  static_cast<unsigned long long>(txn_versions_retired),
                  static_cast<unsigned long long>(txn_cow_bytes),
                  static_cast<unsigned long long>(txn_reclaimed_bytes));
    out += buf;
  }
  if (tuning.active) {
    std::snprintf(buf, sizeof(buf),
                  "  tuning: %s probe=%s x%d grain=%llu (%s), "
                  "%llu decisions, %llu switches, %llu cache hits\n",
                  tuning.fused ? "fused" : "materializing",
                  tuning.probe_mode.c_str(), tuning.probe_batch,
                  static_cast<unsigned long long>(tuning.morsel_grain),
                  tuning.source.c_str(),
                  static_cast<unsigned long long>(tuning.decisions),
                  static_cast<unsigned long long>(tuning.switches),
                  static_cast<unsigned long long>(tuning.cache_hits));
    out += buf;
  }
  return out;
}

QueryReportScope::QueryReportScope(const std::string& query_name, int domain)
    : query_(query_name),
      domain_(domain),
      before_(domain >= 0 ? Registry::Global().DomainSnapshot(domain)
                          : Registry::Global().Snapshot()) {
  if (TracingEnabled()) span_begin_tsc_ = ReadTsc();
}

QueryReport QueryReportScope::Finish(std::vector<PhaseTiming> phases) {
  QueryReport report;
  report.query = query_;
  report.wall_ns = static_cast<double>(timer_.ElapsedNanos());
  report.phases = std::move(phases);
  if (span_begin_tsc_ != 0 && !finished_) {
    TraceComplete(InternName(query_), "query", span_begin_tsc_, ReadTsc());
  }
  finished_ = true;

  const MetricsSnapshot after =
      domain_ >= 0 ? Registry::Global().DomainSnapshot(domain_)
                   : Registry::Global().Snapshot();
  auto delta = [&](const char* name) {
    return after.CounterOr(name) - before_.CounterOr(name);
  };
  report.ecalls = delta(kCtrEcalls);
  report.ocalls = delta(kCtrOcalls);
  report.transition_cycles = delta(kCtrTransitionCycles);
  report.mutex_parks = delta(kCtrMutexParks);
  report.mutex_wake_ocalls = delta(kCtrMutexWakeOcalls);
  report.mutex_park_ns = delta(kCtrMutexParkNsTotal);
  report.edmm_pages_added = delta(kCtrEdmmPagesAdded);
  report.edmm_pages_trimmed = delta(kCtrEdmmPagesTrimmed);
  report.edmm_injected_ns = delta(kCtrEdmmInjectedNs);
  report.arena_bytes = delta(kCtrArenaBytes);
  report.arena_chunks = delta(kCtrArenaChunks);
  report.pool_hits = delta(kCtrPoolHits);
  report.pool_misses = delta(kCtrPoolMisses);
  report.gangs = delta(kCtrExecGangs);
  report.tasks = delta(kCtrExecTasks);
  report.morsels = delta(kCtrExecMorsels);
  report.morsel_steals = delta(kCtrExecMorselSteals);
  report.bytes_materialized = delta(kCtrBytesMaterialized);
  report.partitions_evicted = delta(kCtrStoragePartitionsEvicted);
  report.partitions_reloaded = delta(kCtrStoragePartitionsReloaded);
  report.storage_prefetch_loads = delta(kCtrStoragePrefetchLoads);
  report.storage_decrypt_bytes = delta(kCtrStorageDecryptBytes);
  report.storage_pin_waits = delta(kCtrStoragePinWaits);
  report.txn_commits = delta(kCtrTxnCommits);
  report.txn_versions_created = delta(kCtrTxnVersionsCreated);
  report.txn_versions_retired = delta(kCtrTxnVersionsRetired);
  report.txn_versions_reclaimed = delta(kCtrTxnVersionsReclaimed);
  report.txn_cow_bytes = delta(kCtrTxnCowBytes);
  report.txn_reclaimed_bytes = delta(kCtrTxnReclaimedBytes);
  return report;
}

}  // namespace sgxb::obs
