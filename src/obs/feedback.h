// Feedback frames: incremental counter-delta snapshots for the adaptive
// controller (src/tune/, docs/adaptive.md).
//
// A QueryReportScope diffs the registry once, at query end — too late for
// anything that wants to react *during* execution. A FrameSampler keeps a
// rolling snapshot instead: every Sample() returns the counter deltas
// since the previous Sample() (or construction), so pipeline-stage and
// morsel-wave boundaries can read "what just happened" — probe hit rate,
// park time, steal ratio, EDMM churn, buffer-manager eviction pressure —
// at the cost of one registry snapshot per frame. Like QueryReport, a
// sampler bound to an attribution domain sees only its own query's
// activity under concurrent serving.

#ifndef SGXB_OBS_FEEDBACK_H_
#define SGXB_OBS_FEEDBACK_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace sgxb::obs {

/// \brief Counter deltas over one sampling window. Every field is a
/// delta, not a running total.
struct FeedbackFrame {
  // Fused-probe traffic (plan/fused.cc): staged tuples vs matches.
  uint64_t probe_tuples = 0;
  uint64_t probe_matches = 0;

  // Contention: time parked on SDK mutexes, executor morsel flow.
  uint64_t mutex_park_ns = 0;
  uint64_t morsels = 0;
  uint64_t morsel_steals = 0;

  // EDMM page churn — the enclave is growing/shrinking under this work.
  uint64_t edmm_pages_added = 0;
  uint64_t edmm_pages_trimmed = 0;

  // Out-of-EPC buffer manager pressure: residency churn and pin stalls
  // are the leading edge of the paging cliff.
  uint64_t partitions_evicted = 0;
  uint64_t partitions_reloaded = 0;
  uint64_t storage_pin_waits = 0;

  // Intermediate materialization traffic and arena/pool behaviour.
  uint64_t bytes_materialized = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  /// \brief probe_matches / probe_tuples, or 0 with no probes.
  double ProbeHitRate() const;
  /// \brief morsel_steals / morsels, or 0 with no morsels.
  double StealRatio() const;
  /// \brief Evictions + reloads + pin waits: the paging-pressure events
  /// the mid-query guardrails key off.
  uint64_t PagingPressure() const {
    return partitions_evicted + partitions_reloaded + storage_pin_waits;
  }

  std::string ToString() const;
};

/// \brief Rolling registry sampler: each Sample() returns the deltas
/// since the previous call. Bind to an attribution domain (>= 0) for
/// per-query frames under concurrent serving; -1 diffs the global
/// registry. Not thread-safe — one sampler per sampling thread.
class FrameSampler {
 public:
  explicit FrameSampler(int domain = -1);

  /// \brief Closes the current window and opens the next.
  FeedbackFrame Sample();

 private:
  int domain_;
  MetricsSnapshot last_;
};

}  // namespace sgxb::obs

#endif  // SGXB_OBS_FEEDBACK_H_
