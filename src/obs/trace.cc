#include "obs/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/env.h"

namespace sgxb::obs {

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

namespace {

// One ring per thread that ever recorded an event. Rings are owned by the
// global list (not the thread) so a worker that exits before export keeps
// its events; the thread_local below is only a cache of the pointer.
struct Ring {
  explicit Ring(size_t cap) : capacity(cap), events(cap) {}
  const size_t capacity;
  std::vector<TraceEvent> events;
  // Total events ever written; the ring holds the last min(total,
  // capacity) of them. Written by the owner thread with release so an
  // exporter that reads it with acquire (after quiescence) sees the event
  // payloads the count covers.
  std::atomic<uint64_t> total{0};
  int tid = 0;  ///< stable export id, assigned at registration
};

std::mutex g_rings_mu;
std::vector<std::unique_ptr<Ring>>& Rings() {
  static auto* rings = new std::vector<std::unique_ptr<Ring>>();
  return *rings;
}

std::atomic<size_t> g_ring_capacity{0};  // 0 = not yet resolved

size_t RingCapacity() {
  size_t cap = g_ring_capacity.load(std::memory_order_acquire);
  if (cap == 0) {
    cap = static_cast<size_t>(
        EnvUint("SGXBENCH_TRACE_BUF", 65536, 16, uint64_t{1} << 24));
    g_ring_capacity.store(cap, std::memory_order_release);
  }
  return cap;
}

Ring* ThisThreadRing() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>(RingCapacity());
    ring = owned.get();
    std::lock_guard<std::mutex> lock(g_rings_mu);
    ring->tid = static_cast<int>(Rings().size());
    Rings().push_back(std::move(owned));
  }
  return ring;
}

}  // namespace

void RecordEvent(const char* name, const char* category, uint64_t begin_tsc,
                 uint64_t end_tsc) {
  Ring* ring = ThisThreadRing();
  const uint64_t n = ring->total.load(std::memory_order_relaxed);
  TraceEvent& slot = ring->events[n % ring->capacity];
  slot.name = name;
  slot.category = category;
  slot.begin_tsc = begin_tsc;
  slot.end_tsc = end_tsc;
  ring->total.store(n + 1, std::memory_order_release);
}

}  // namespace internal

using internal::Ring;

void EnableTracing(size_t events_per_thread) {
  if (events_per_thread != 0) {
    internal::g_ring_capacity.store(events_per_thread,
                                    std::memory_order_release);
  }
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
}

void ResetTrace() {
  std::lock_guard<std::mutex> lock(internal::g_rings_mu);
  for (auto& ring : internal::Rings()) {
    ring->total.store(0, std::memory_order_relaxed);
  }
}

TraceStats GetTraceStats() {
  TraceStats stats;
  std::lock_guard<std::mutex> lock(internal::g_rings_mu);
  for (const auto& ring : internal::Rings()) {
    const uint64_t total = ring->total.load(std::memory_order_acquire);
    stats.recorded += std::min<uint64_t>(total, ring->capacity);
    stats.dropped += total > ring->capacity ? total - ring->capacity : 0;
    ++stats.threads;
  }
  return stats;
}

const char* InternName(const std::string& name) {
  static std::mutex mu;
  static auto* interned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return interned->insert(name).first->c_str();
}

namespace {

void AppendEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    out += *s;
  }
}

// One trace event in chrome trace-event format. Durations below one
// microsecond are emitted with fractional-us precision so short spans
// (transitions) stay visible.
void AppendEvent(std::string& out, const internal::TraceEvent& e, int tid,
                 double ns_per_cycle) {
  const double ts_us = static_cast<double>(e.begin_tsc) * ns_per_cycle / 1e3;
  char buf[96];
  out += "{\"name\":\"";
  AppendEscaped(out, e.name);
  out += "\",\"cat\":\"";
  AppendEscaped(out, e.category);
  if (e.end_tsc == e.begin_tsc) {
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f", ts_us);
    out += buf;
  } else {
    const double dur_us =
        static_cast<double>(e.end_tsc - e.begin_tsc) * ns_per_cycle / 1e3;
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f", ts_us, dur_us);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%d}", tid);
  out += buf;
}

}  // namespace

std::string TraceToJson() {
  const double ns_per_cycle = 1e9 / TscFrequencyHz();
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(internal::g_rings_mu);
  for (const auto& ring : internal::Rings()) {
    const uint64_t total = ring->total.load(std::memory_order_acquire);
    const uint64_t held = std::min<uint64_t>(total, ring->capacity);
    // Oldest surviving event first. When the ring wrapped, that is the
    // slot the next write would overwrite.
    const uint64_t start = total - held;
    for (uint64_t i = 0; i < held; ++i) {
      const internal::TraceEvent& e =
          ring->events[(start + i) % ring->capacity];
      if (!first) out += ",";
      first = false;
      out += "\n";
      AppendEvent(out, e, ring->tid, ns_per_cycle);
    }
  }
  out += "\n]}\n";
  return out;
}

Status WriteTrace(const std::string& path) {
  const std::string body = TraceToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  const bool wrote =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  if (std::fclose(f) != 0 || !wrote) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::OK();
}

namespace {

// SGXBENCH_TRACE=<path>: tracing starts enabled and the merged rings are
// written when the process exits.
struct TraceAtExit {
  TraceAtExit() {
    if (EnvString("SGXBENCH_TRACE").has_value()) {
      EnableTracing();
      std::atexit([] {
        auto path = EnvString("SGXBENCH_TRACE");
        if (!path.has_value()) return;
        DisableTracing();
        Status st = WriteTrace(*path);
        if (!st.ok()) {
          std::fprintf(stderr, "[sgxbench] warning: %s\n",
                       st.ToString().c_str());
        }
      });
    }
  }
};
TraceAtExit g_trace_at_exit;

}  // namespace

}  // namespace sgxb::obs
