#include "core/report.h"

#include <cstdio>

#include "common/logging.h"
#include "core/csv.h"

namespace sgxb::core {

void PrintExperimentHeader(const std::string& id,
                           const std::string& description) {
  std::printf("\n");
  std::printf(
      "===========================================================\n");
  std::printf("%s — %s\n", id.c_str(), description.c_str());
  std::printf(
      "===========================================================\n");
}

void PrintNote(const std::string& note) {
  std::printf("  note: %s\n", note.c_str());
}

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SGXB_CHECK(cells.size() == columns_.size())
      << "row has " << cells.size() << " cells, expected "
      << columns_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  std::vector<std::string> rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule.push_back(std::string(widths[c], '-'));
  }
  print_row(rule);
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::ExportCsv(const std::string& experiment_id) const {
  std::optional<CsvWriter> csv = MaybeCsvFor(experiment_id);
  if (!csv.has_value()) return;
  csv->WriteRow(columns_);
  for (const auto& row : rows_) csv->WriteRow(row);
  Status st = csv->Close();
  if (!st.ok()) {
    SGXB_LOG(kWarning) << "CSV export failed: " << st.ToString();
  }
}

namespace {
std::string Format(double value, const char* unit, double k1, double k2,
                   double k3, const char* n1, const char* n2,
                   const char* n3) {
  char buf[64];
  if (value >= k3) {
    std::snprintf(buf, sizeof(buf), "%.2f %s%s", value / k3, n3, unit);
  } else if (value >= k2) {
    std::snprintf(buf, sizeof(buf), "%.2f %s%s", value / k2, n2, unit);
  } else if (value >= k1) {
    std::snprintf(buf, sizeof(buf), "%.2f %s%s", value / k1, n1, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  }
  return buf;
}
}  // namespace

std::string FormatRowsPerSec(double rows_per_sec) {
  return Format(rows_per_sec, "rows/s", 1e3, 1e6, 1e9, "K ", "M ", "G ");
}

std::string FormatBytesPerSec(double bytes_per_sec) {
  return Format(bytes_per_sec, "B/s", 1e3, 1e6, 1e9, "K", "M", "G");
}

std::string FormatNanos(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= double{1ull << 30}) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", bytes / (1ull << 30));
  } else if (bytes >= double{1ull << 20}) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1ull << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string FormatRel(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

}  // namespace sgxb::core
