// Bridges real executions and the SGXv2 cost model.
//
// Every operator returns a PhaseBreakdown: real host times plus access
// profiles. These helpers turn a breakdown into (a) modeled absolute times
// on the paper's reference machine for any execution setting, and (b)
// host-anchored estimates, where the real measured native time of each
// phase is scaled by the model's per-phase slowdown factor. Benchmarks
// print both: (a) gives paper-comparable absolute numbers, (b) ties the
// shapes to code that actually ran.

#ifndef SGXB_CORE_MODELING_H_
#define SGXB_CORE_MODELING_H_

#include "perf/access_profile.h"
#include "perf/cost_model.h"

namespace sgxb::core {

/// \brief Modeled absolute runtime of the breakdown on the reference
/// machine under `setting`, using each phase's recorded thread count
/// (overridden by `threads_override` if > 0).
double ModeledReferenceNs(const perf::PhaseBreakdown& breakdown,
                          ExecutionSetting setting,
                          bool data_remote = false,
                          int threads_override = 0);

/// \brief Host-anchored estimate: each phase's real native host time
/// multiplied by the model's slowdown factor for `setting`.
double HostScaledNs(const perf::PhaseBreakdown& breakdown,
                    ExecutionSetting setting, bool data_remote = false);

/// \brief Per-phase modeled time (reference machine) for breakdowns.
double ModeledPhaseNs(const perf::PhaseStats& phase,
                      ExecutionSetting setting, bool data_remote = false,
                      int threads_override = 0);

/// \brief Slowdown factor (>= ~1) of one phase under `setting` relative
/// to Plain CPU.
double PhaseSlowdown(const perf::PhaseStats& phase,
                     ExecutionSetting setting, bool data_remote = false);

}  // namespace sgxb::core

#endif  // SGXB_CORE_MODELING_H_
