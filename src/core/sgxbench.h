// Umbrella header: the public API of the sgxv2-olap-bench library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   #include "core/sgxbench.h"
//   using namespace sgxb;
//
//   auto build = join::GenerateBuildRelation(n, MemoryRegion::kEnclave);
//   auto probe = join::GenerateProbeRelation(4 * n, n,
//                                            MemoryRegion::kEnclave);
//   join::JoinConfig cfg;
//   cfg.num_threads = 4;
//   cfg.flavor = KernelFlavor::kUnrolledReordered;
//   cfg.setting = ExecutionSetting::kSgxDataInEnclave;
//   auto result = join::RhoJoin(build.value(), probe.value(), cfg);

#ifndef SGXB_CORE_SGXBENCH_H_
#define SGXB_CORE_SGXBENCH_H_

#include "common/aligned_buffer.h"
#include "common/bitvector.h"
#include "common/cpu_info.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/relation.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/csv.h"
#include "core/experiment.h"
#include "core/modeling.h"
#include "core/report.h"
#include "index/btree.h"
#include "join/cht_join.h"
#include "join/crk_join.h"
#include "join/data_gen.h"
#include "join/inl_join.h"
#include "join/join_common.h"
#include "join/materializer.h"
#include "join/mway_join.h"
#include "join/pht_join.h"
#include "join/radix_common.h"
#include "join/rho_join.h"
#include "mem/arena.h"
#include "mem/arena_pool.h"
#include "mem/enclave_resource.h"
#include "mem/memory_resource.h"
#include "perf/access_profile.h"
#include "perf/calibration.h"
#include "perf/cost_model.h"
#include "perf/machine_model.h"
#include "scan/column_scan.h"
#include "scan/packed_column.h"
#include "scan/pmbw.h"
#include "scan/scan_kernels.h"
#include "sgx/enclave.h"
#include "sgx/mee.h"
#include "sgx/queue_factory.h"
#include "sgx/sealing.h"
#include "sgx/sgx_mutex.h"
#include "sgx/transition.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"

#endif  // SGXB_CORE_SGXBENCH_H_
