#include "core/modeling.h"

namespace sgxb::core {

namespace {

perf::ExecutionEnv EnvFor(const perf::PhaseStats& phase,
                          ExecutionSetting setting, bool data_remote,
                          int threads_override) {
  perf::ExecutionEnv env;
  env.setting = setting;
  env.threads = phase.inherently_serial
                    ? 1
                    : (threads_override > 0 ? threads_override
                                            : phase.threads);
  env.data_remote = data_remote;
  return env;
}

}  // namespace

double ModeledPhaseNs(const perf::PhaseStats& phase,
                      ExecutionSetting setting, bool data_remote,
                      int threads_override) {
  return perf::CostModel::Reference().EstimateNanos(
      phase.profile,
      EnvFor(phase, setting, data_remote, threads_override));
}

double PhaseSlowdown(const perf::PhaseStats& phase,
                     ExecutionSetting setting, bool data_remote) {
  return perf::CostModel::Reference().SlowdownFactor(
      phase.profile, EnvFor(phase, setting, data_remote, 0));
}

double ModeledReferenceNs(const perf::PhaseBreakdown& breakdown,
                          ExecutionSetting setting, bool data_remote,
                          int threads_override) {
  double total = 0;
  for (const auto& phase : breakdown.phases) {
    total += ModeledPhaseNs(phase, setting, data_remote, threads_override);
  }
  return total;
}

double HostScaledNs(const perf::PhaseBreakdown& breakdown,
                    ExecutionSetting setting, bool data_remote) {
  double total = 0;
  for (const auto& phase : breakdown.phases) {
    total += phase.host_ns * PhaseSlowdown(phase, setting, data_remote);
  }
  return total;
}

}  // namespace sgxb::core
