// CSV export for benchmark results.
//
// Every bench binary can mirror its tables into CSV files for plotting:
// set SGXBENCH_CSV_DIR to a writable directory and each experiment writes
// <dir>/<experiment_id>.csv. Without the variable, export is disabled and
// costs nothing.

#ifndef SGXB_CORE_CSV_H_
#define SGXB_CORE_CSV_H_

#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgxb::core {

class CsvWriter {
 public:
  /// \brief Opens (truncates) `path` for writing.
  static Result<CsvWriter> Open(const std::string& path);

  /// \brief Writes one row; cells are quoted/escaped as needed.
  Status WriteRow(const std::vector<std::string>& cells);

  /// \brief Flushes and reports any stream error.
  Status Close();

 private:
  explicit CsvWriter(std::ofstream stream) : stream_(std::move(stream)) {}

  static std::string EscapeCell(const std::string& cell);

  std::ofstream stream_;
};

/// \brief Returns a writer for `<SGXBENCH_CSV_DIR>/<experiment_id>.csv`,
/// or nullopt when export is disabled (variable unset) or the file cannot
/// be created (a warning is logged).
std::optional<CsvWriter> MaybeCsvFor(const std::string& experiment_id);

}  // namespace sgxb::core

#endif  // SGXB_CORE_CSV_H_
