// Experiment execution helpers shared by all benchmark binaries.
//
// The paper executes every experiment ten times and reports mean and
// standard deviation (Section 3). ExperimentRunner reproduces that
// protocol; the repetition count defaults to 3 for CI-sized runs and can
// be raised with SGXBENCH_REPS (the paper's value is 10). SGXBENCH_FULL=1
// switches workload sizes from the scaled-down defaults to paper scale.

#ifndef SGXB_CORE_EXPERIMENT_H_
#define SGXB_CORE_EXPERIMENT_H_

#include <cmath>
#include <functional>
#include <vector>

namespace sgxb::core {

/// \brief Mean and standard deviation over repetitions, nanoseconds.
struct Measurement {
  double mean_ns = 0;
  double stddev_ns = 0;
  int repetitions = 0;
};

/// \brief Repetitions to run: SGXBENCH_REPS or 3.
int DefaultRepetitions();

/// \brief True when SGXBENCH_FULL=1: use the paper's workload sizes.
bool FullScale();

/// \brief Scales a paper-sized byte count down for CI unless FullScale().
size_t ScaledBytes(size_t paper_bytes);

/// \brief Runs `body` `reps` times; `body` returns the measured duration
/// of one repetition in nanoseconds (so setup can be excluded).
Measurement Repeat(int reps, const std::function<double()>& body);

/// \brief Convenience: Repeat with DefaultRepetitions().
inline Measurement Repeat(const std::function<double()>& body) {
  return Repeat(DefaultRepetitions(), body);
}

}  // namespace sgxb::core

#endif  // SGXB_CORE_EXPERIMENT_H_
