#include "core/csv.h"

#include "common/env.h"
#include "common/logging.h"

namespace sgxb::core {

Result<CsvWriter> CsvWriter::Open(const std::string& path) {
  std::ofstream stream(path, std::ios::trunc);
  if (!stream.is_open()) {
    return Status::InvalidArgument("cannot open CSV file: " + path);
  }
  return CsvWriter(std::move(stream));
}

std::string CsvWriter::EscapeCell(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) stream_ << ',';
    stream_ << EscapeCell(cells[i]);
  }
  stream_ << '\n';
  if (!stream_.good()) return Status::Internal("CSV write failed");
  return Status::OK();
}

Status CsvWriter::Close() {
  stream_.flush();
  if (!stream_.good()) return Status::Internal("CSV flush failed");
  stream_.close();
  return Status::OK();
}

std::optional<CsvWriter> MaybeCsvFor(const std::string& experiment_id) {
  const auto dir = EnvString("SGXBENCH_CSV_DIR");
  if (!dir.has_value() || dir->empty()) return std::nullopt;
  std::string path = *dir + "/" + experiment_id + ".csv";
  auto writer = CsvWriter::Open(path);
  if (!writer.ok()) {
    SGXB_LOG(kWarning) << "CSV export disabled: "
                       << writer.status().ToString();
    return std::nullopt;
  }
  return std::move(writer).value();
}

}  // namespace sgxb::core
