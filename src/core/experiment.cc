#include "core/experiment.h"

#include "common/env.h"

namespace sgxb::core {

int DefaultRepetitions() {
  static const int kReps = static_cast<int>(
      EnvInt("SGXBENCH_REPS", 3, /*lo=*/1, /*hi=*/1000));
  return kReps;
}

bool FullScale() {
  static const bool kFull = EnvBool("SGXBENCH_FULL", false);
  return kFull;
}

size_t ScaledBytes(size_t paper_bytes) {
  return FullScale() ? paper_bytes : paper_bytes / 10;
}

Measurement Repeat(int reps, const std::function<double()>& body) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) samples.push_back(body());

  Measurement m;
  m.repetitions = reps;
  double sum = 0;
  for (double s : samples) sum += s;
  m.mean_ns = sum / reps;
  if (reps > 1) {
    double var = 0;
    for (double s : samples) var += (s - m.mean_ns) * (s - m.mean_ns);
    m.stddev_ns = std::sqrt(var / (reps - 1));
  }
  return m;
}

}  // namespace sgxb::core
