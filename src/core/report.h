// Benchmark output formatting.
//
// Every bench binary regenerates one table or figure of the paper and
// prints it in the same rows/series the paper reports, plus the paper's
// own value where one is quoted, so the shape comparison is immediate.

#ifndef SGXB_CORE_REPORT_H_
#define SGXB_CORE_REPORT_H_

#include <string>
#include <vector>

namespace sgxb::core {

/// \brief Prints the standard header for a reproduced experiment.
void PrintExperimentHeader(const std::string& id,
                           const std::string& description);

/// \brief Prints a footnote (substitutions, paper-reported values, ...).
void PrintNote(const std::string& note);

/// \brief Column-aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// \brief Adds one row; cells must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// \brief Renders the table to stdout.
  void Print() const;

  /// \brief Mirrors the table to <SGXBENCH_CSV_DIR>/<experiment_id>.csv
  /// if CSV export is enabled (no-op otherwise).
  void ExportCsv(const std::string& experiment_id) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief "123.4 M rows/s", "1.23 GB/s", "12.3 ms" style formatting.
std::string FormatRowsPerSec(double rows_per_sec);
std::string FormatBytesPerSec(double bytes_per_sec);
std::string FormatNanos(double ns);
std::string FormatBytes(double bytes);
/// \brief "0.83x" relative-performance formatting.
std::string FormatRel(double ratio);

}  // namespace sgxb::core

#endif  // SGXB_CORE_REPORT_H_
