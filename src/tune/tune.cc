#include "tune/tune.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/env.h"
#include "obs/metrics.h"

namespace sgxb::tune {

namespace {

obs::Counter* CtrDecisions() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTuneDecisions);
  return c;
}
obs::Counter* CtrSwitches() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTuneSwitches);
  return c;
}
obs::Counter* CtrCacheHits() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTuneCacheHits);
  return c;
}

std::atomic<int> g_inflight{0};

size_t ClampGrain(size_t grain) {
  return std::min(std::max(grain, kMinMorselGrain), kMaxMorselGrain);
}

}  // namespace

bool AdaptiveEnabled() { return EnvBool("SGXBENCH_ADAPTIVE", false); }

void AddInflight(int delta) {
  g_inflight.fetch_add(delta, std::memory_order_relaxed);
}

int InflightQueries() {
  return std::max(0, g_inflight.load(std::memory_order_relaxed));
}

int ConcurrencyBand(int inflight) {
  if (inflight <= 1) return 0;
  if (inflight <= 4) return 1;
  if (inflight <= 16) return 2;
  return 3;
}

int SfBucket(uint64_t rows) {
  int b = 0;
  while (rows > 1) {
    rows >>= 1;
    ++b;
  }
  return b;
}

std::string KnobSetting::Key() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "fused=%d probe=%s batch=%d grain=%zu",
                fused ? 1 : 0, exec::ProbeModeToString(probe_mode),
                probe_batch, morsel_grain);
  return buf;
}

std::optional<KnobSetting> KnobSetting::Parse(const std::string& key) {
  int fused = 0;
  char mode[16] = {0};
  int batch = 0;
  unsigned long long grain = 0;
  if (std::sscanf(key.c_str(), "fused=%d probe=%15s batch=%d grain=%llu",
                  &fused, mode, &batch, &grain) != 4) {
    return std::nullopt;
  }
  if (std::strcmp(mode, "tuple") != 0 && std::strcmp(mode, "gp") != 0 &&
      std::strcmp(mode, "amac") != 0) {
    return std::nullopt;
  }
  if (batch < 1 || batch > exec::kMaxProbeWidth || grain == 0) {
    return std::nullopt;
  }
  KnobSetting s;
  s.fused = fused != 0;
  s.probe_mode =
      exec::ProbeModeFromString(mode, exec::ProbeMode::kGroupPrefetch);
  s.probe_batch = batch;
  s.morsel_grain = static_cast<size_t>(grain);
  return s;
}

std::string WorkloadKey::Key() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "|sf%d|c%d", sf_bucket, concurrency_band);
  return query + buf;
}

std::vector<KnobSetting> CandidateArms(const KnobSetting& prior) {
  std::vector<KnobSetting> arms;
  arms.push_back(prior);  // arm 0: the cost model's pick
  auto add = [&arms](KnobSetting s) {
    s.probe_batch = exec::ClampProbeWidth(s.probe_batch);
    s.morsel_grain = ClampGrain(s.morsel_grain);
    for (const KnobSetting& have : arms) {
      if (have == s) return;
    }
    arms.push_back(s);
  };
  // The alternative batched probe schedule: group prefetching and AMAC
  // trade stage barriers for refill bookkeeping; which wins is data- and
  // pressure-dependent (paper Section 5.2), so always try the other one.
  {
    KnobSetting s = prior;
    s.probe_mode = prior.probe_mode == exec::ProbeMode::kAmac
                       ? exec::ProbeMode::kGroupPrefetch
                       : exec::ProbeMode::kAmac;
    add(s);
  }
  // Probe width around the calibrated point.
  {
    KnobSetting s = prior;
    s.probe_batch = std::max(kMinProbeBatch, prior.probe_batch / 2);
    add(s);
  }
  {
    KnobSetting s = prior;
    s.probe_batch = prior.probe_batch * 2;
    add(s);
  }
  // Execution mode: the fused/materializing crossover is exactly where
  // the cost model is least certain (docs/planner.md).
  {
    KnobSetting s = prior;
    s.fused = !prior.fused;
    add(s);
  }
  // Morsel grain: smaller rides out EPC pressure, larger amortizes
  // dispatch when resident.
  {
    KnobSetting s = prior;
    s.morsel_grain = prior.morsel_grain / 2;
    add(s);
  }
  {
    KnobSetting s = prior;
    s.morsel_grain = prior.morsel_grain * 2;
    add(s);
  }
  return arms;
}

TuningCache::Entry& TuningCache::EntryFor(const WorkloadKey& key,
                                          const KnobSetting& prior) {
  Entry& e = entries_[key.Key()];
  if (e.arms.empty()) {
    for (const KnobSetting& s : CandidateArms(prior)) {
      Arm arm;
      arm.setting = s;
      e.arms.push_back(arm);
    }
  }
  return e;
}

KnobSetting TuningCache::Decide(const WorkloadKey& key,
                                const KnobSetting& prior, Source* source) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = EntryFor(key, prior);
  CtrDecisions()->Increment();
  for (size_t i = 0; i < e.arms.size(); ++i) {
    if (e.arms[i].runs == 0) {
      if (source != nullptr) {
        *source = i == 0 ? Source::kPrior : Source::kExplore;
      }
      return e.arms[i].setting;
    }
  }
  const Arm* best = &e.arms[0];
  for (const Arm& a : e.arms) {
    if (a.ewma_ns < best->ewma_ns) best = &a;
  }
  CtrCacheHits()->Increment();
  if (source != nullptr) *source = Source::kCache;
  return best->setting;
}

void TuningCache::Observe(const WorkloadKey& key, const KnobSetting& started,
                          double wall_ns) {
  if (wall_ns <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key.Key());
  if (it == entries_.end()) return;
  for (Arm& a : it->second.arms) {
    if (a.setting == started) {
      // EWMA with alpha 0.5: converges in a few runs, still tracks
      // drift (a phase change in the concurrent mix) quickly.
      a.ewma_ns = a.runs == 0 ? wall_ns : 0.5 * a.ewma_ns + 0.5 * wall_ns;
      ++a.runs;
      return;
    }
  }
}

std::vector<TuningCache::Arm> TuningCache::Arms(const WorkloadKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key.Key());
  if (it == entries_.end()) return {};
  return it->second.arms;
}

void TuningCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

bool TuningCache::Save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& [workload, entry] : entries_) {
    for (const Arm& a : entry.arms) {
      // Tab-separated: workload keys and setting keys both contain
      // spaces but never tabs.
      std::fprintf(f, "%s\t%s\t%.17g\t%d\n", workload.c_str(),
                   a.setting.Key().c_str(), a.ewma_ns, a.runs);
    }
  }
  return std::fclose(f) == 0;
}

bool TuningCache::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    const size_t t1 = s.find('\t');
    if (t1 == std::string::npos) continue;
    const size_t t2 = s.find('\t', t1 + 1);
    if (t2 == std::string::npos) continue;
    const size_t t3 = s.find('\t', t2 + 1);
    if (t3 == std::string::npos) continue;
    std::optional<KnobSetting> setting =
        KnobSetting::Parse(s.substr(t1 + 1, t2 - t1 - 1));
    if (!setting.has_value()) continue;
    char* end = nullptr;
    const std::string ewma_str = s.substr(t2 + 1, t3 - t2 - 1);
    const double ewma = std::strtod(ewma_str.c_str(), &end);
    if (end == ewma_str.c_str()) continue;
    const int runs = std::atoi(s.c_str() + t3 + 1);
    if (runs < 0 || ewma < 0) continue;
    Arm arm;
    arm.setting = *setting;
    arm.ewma_ns = ewma;
    arm.runs = runs;
    entries_[s.substr(0, t1)].arms.push_back(arm);
  }
  std::fclose(f);
  return true;
}

TuningCache& TuningCache::Global() {
  static TuningCache* cache = [] {
    auto* c = new TuningCache();
    if (std::optional<std::string> path = EnvString("SGXBENCH_TUNE_CACHE")) {
      c->Load(*path);  // cold cache (no file yet) is fine
      std::atexit([] {
        if (std::optional<std::string> p = EnvString("SGXBENCH_TUNE_CACHE")) {
          if (!Global().Save(*p)) {
            internal::WarnOnce("SGXBENCH_TUNE_CACHE",
                               "cannot write tuning cache at " + *p);
          }
        }
      });
    }
    return c;
  }();
  return *cache;
}

QueryTuner::QueryTuner(const WorkloadKey& key, const KnobSetting& prior,
                       int obs_domain)
    : key_(key), sampler_(obs_domain) {
  chosen_ = TuningCache::Global().Decide(key_, prior, &source_);
  decisions_ = 1;
  cache_hits_ = source_ == TuningCache::Source::kCache ? 1 : 0;
  live_.probe_mode.store(static_cast<int>(chosen_.probe_mode),
                         std::memory_order_relaxed);
  live_.probe_batch.store(chosen_.probe_batch, std::memory_order_relaxed);
}

const char* QueryTuner::source() const {
  switch (source_) {
    case TuningCache::Source::kPrior:
      return "prior";
    case TuningCache::Source::kExplore:
      return "explore";
    case TuningCache::Source::kCache:
      return "cache";
  }
  return "unknown";
}

size_t QueryTuner::OnWave(size_t grain) {
  const obs::FeedbackFrame frame = sampler_.Sample();
  if (frame.PagingPressure() > 0) {
    // The wave touched more than the buffer budget holds: shrink the
    // working set per morsel and narrow the probe window so fewer
    // partitions are hot at once. Applies at the next batch boundary;
    // results are unaffected (the knobs only change scheduling).
    const size_t next = std::max(kMinMorselGrain, grain / 2);
    const int batch = std::max(
        kMinProbeBatch, live_.probe_batch.load(std::memory_order_relaxed) / 2);
    if (next != grain ||
        batch != live_.probe_batch.load(std::memory_order_relaxed)) {
      live_.probe_batch.store(batch, std::memory_order_relaxed);
      switches_.fetch_add(1, std::memory_order_relaxed);
      CtrSwitches()->Increment();
    }
    return next;
  }
  if (frame.morsels > 0 && frame.StealRatio() < 0.05) {
    // Pressure-free and steal-free: morsels are finishing where they
    // were dispatched, so larger morsels just amortize dispatch.
    const size_t next = std::min(kMaxMorselGrain, grain * 2);
    if (next != grain) {
      switches_.fetch_add(1, std::memory_order_relaxed);
      CtrSwitches()->Increment();
    }
    return next;
  }
  return 0;  // keep
}

exec::WaveController QueryTuner::MakeWaveController() {
  return [this](int /*wave*/, size_t grain) { return OnWave(grain); };
}

void QueryTuner::Finish(double wall_ns) {
  TuningCache::Global().Observe(key_, chosen_, wall_ns);
}

}  // namespace sgxb::tune
