// Adaptive self-tuning execution (docs/adaptive.md).
//
// Every knob the paper shows mattering — probe scheduling, pipeline
// fusion, morsel grain — used to be resolved once from SGXBENCH_* env
// vars, so a serving mix was tuned for exactly one operating point. This
// layer closes the loop the ROADMAP asks for: per query (and, for long
// scans, per morsel wave) it decides knob values from the calibrated cost
// model's prior plus live obs feedback, learns from measured wall times
// in a tuning cache keyed by (query, SF bucket, concurrency band), and
// installs guardrails that react to EPC-pressure signals mid-query.
//
// Layering: tune sits above common/obs/perf/exec only. The planner
// (compiled into sgxb_tpch) and the serving layer call in; nothing here
// knows about plans or TPC-H.
//
// SGXBENCH_ADAPTIVE=0 (the default) disables everything: no decisions,
// no counters, no report section — static behaviour is preserved
// bit-for-bit.

#ifndef SGXB_TUNE_TUNE_H_
#define SGXB_TUNE_TUNE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "exec/probe_pipeline.h"
#include "obs/feedback.h"

namespace sgxb::tune {

/// \brief SGXBENCH_ADAPTIVE, default off. Read per call (no caching) so
/// tests and serving mixes can toggle it between queries.
bool AdaptiveEnabled();

// --- Concurrency-band signal (fed by src/serve/) -------------------------

/// \brief Adjusts the process-wide in-flight query count the serving
/// layer publishes (+1 at dispatch, -1 at completion).
void AddInflight(int delta);
int InflightQueries();

/// \brief Buckets an in-flight count into the coarse bands the tuning
/// cache keys on: 0 -> solo, 1 -> light (2-4), 2 -> medium (5-16),
/// 3 -> heavy (17+). Coarse on purpose — per-count keys would never
/// re-converge under a fluctuating mix.
int ConcurrencyBand(int inflight);

// --- Knob settings --------------------------------------------------------

/// \brief One point in the knob space the controller searches.
struct KnobSetting {
  bool fused = false;
  exec::ProbeMode probe_mode = exec::ProbeMode::kGroupPrefetch;
  int probe_batch = 16;
  size_t morsel_grain = 32 * 1024;

  /// Canonical serialized form ("fused=1 probe=amac batch=12
  /// grain=16384") — the arm identity in the cache file.
  std::string Key() const;
  static std::optional<KnobSetting> Parse(const std::string& key);

  bool operator==(const KnobSetting& o) const {
    return fused == o.fused && probe_mode == o.probe_mode &&
           probe_batch == o.probe_batch && morsel_grain == o.morsel_grain;
  }
};

/// \brief The workload identity a learned setting generalizes over.
struct WorkloadKey {
  std::string query;     ///< plan name ("Q3", ...)
  int sf_bucket = 0;     ///< log2 of the plan's largest scanned table
  int concurrency_band = 0;

  std::string Key() const;
};

/// \brief log2 bucket of a row count (0 for 0/1 rows).
int SfBucket(uint64_t rows);

// --- Tuning cache ---------------------------------------------------------

/// \brief Per-workload arm statistics: settings tried and their learned
/// wall times. Decide() explores each candidate arm once (deterministic
/// order, prior first), then exploits the best measured arm; Observe()
/// feeds measured wall times back as an EWMA so the cache tracks drift.
/// Thread-safe: overlapping served queries share the global instance.
class TuningCache {
 public:
  struct Arm {
    KnobSetting setting;
    double ewma_ns = 0;
    int runs = 0;
  };

  /// \brief What Decide chose and why (for QueryReport::tuning).
  enum class Source { kPrior, kExplore, kCache };

  TuningCache() = default;

  /// \brief Process-wide cache. On first use, loads SGXBENCH_TUNE_CACHE
  /// (if set and readable) and registers an exit-time save back to it.
  static TuningCache& Global();

  /// \brief Picks the setting to run `key` with: the unexplored arm
  /// with the lowest index if any (exploration; the first ever pick is
  /// the cost-model prior itself), else the arm with the best learned
  /// wall time (exploitation — a cache hit).
  KnobSetting Decide(const WorkloadKey& key, const KnobSetting& prior,
                     Source* source = nullptr);

  /// \brief Records one measured execution of `setting` for `key`.
  /// Settings that match no candidate arm (e.g. after a mid-query
  /// guardrail switch) update the arm they started from: `started`.
  void Observe(const WorkloadKey& key, const KnobSetting& started,
               double wall_ns);

  /// \brief Learned state for tests / introspection.
  std::vector<Arm> Arms(const WorkloadKey& key) const;

  bool Save(const std::string& path) const;
  bool Load(const std::string& path);
  void Clear();

 private:
  struct Entry {
    std::vector<Arm> arms;
  };
  Entry& EntryFor(const WorkloadKey& key, const KnobSetting& prior);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// \brief The candidate arms Decide searches for one workload, derived
/// deterministically from the cost-model prior: the prior itself, the
/// alternative probe modes, halved/doubled batch width, toggled fusion,
/// and halved/doubled morsel grain.
std::vector<KnobSetting> CandidateArms(const KnobSetting& prior);

// --- Per-query tuner ------------------------------------------------------

/// \brief Shared live knobs an in-flight query's workers re-read at
/// every morsel, so a guardrail switch takes effect at the next batch
/// boundary without a barrier.
struct LiveKnobs {
  std::atomic<int> probe_mode{
      static_cast<int>(exec::ProbeMode::kGroupPrefetch)};
  std::atomic<int> probe_batch{16};

  exec::ProbeMode Mode() const {
    return static_cast<exec::ProbeMode>(
        probe_mode.load(std::memory_order_relaxed));
  }
  int Batch() const { return probe_batch.load(std::memory_order_relaxed); }
};

/// \brief Drives one query's adaptive execution: asks the cache for a
/// setting at construction, exposes it (plus live knobs and a wave
/// controller) to the lowering, and feeds the measured wall time back
/// on Finish(). Single query, single owner; the wave controller runs on
/// the dispatching thread between waves.
class QueryTuner {
 public:
  QueryTuner(const WorkloadKey& key, const KnobSetting& prior,
             int obs_domain);

  const KnobSetting& chosen() const { return chosen_; }
  const char* source() const;
  LiveKnobs& live() { return live_; }
  uint64_t switches() const {
    return switches_.load(std::memory_order_relaxed);
  }
  uint64_t decisions() const { return decisions_; }
  uint64_t cache_hits() const { return cache_hits_; }

  /// \brief Wave controller for RunMorselPipeline: samples a feedback
  /// frame per wave and applies the guardrails (shrink grain + narrow
  /// probes under paging pressure, grow grain when steal-free and
  /// pressure-free). Valid while the tuner is alive.
  exec::WaveController MakeWaveController();

  /// \brief Feeds the measured wall time back into the tuning cache.
  void Finish(double wall_ns);

 private:
  size_t OnWave(size_t grain);

  WorkloadKey key_;
  KnobSetting chosen_;
  TuningCache::Source source_ = TuningCache::Source::kPrior;
  LiveKnobs live_;
  obs::FrameSampler sampler_;
  std::atomic<uint64_t> switches_{0};
  uint64_t decisions_ = 0;
  uint64_t cache_hits_ = 0;
};

// Mid-query guardrail floors/ceilings (also used by tests).
inline constexpr size_t kMinMorselGrain = 4 * 1024;
inline constexpr size_t kMaxMorselGrain = 128 * 1024;
inline constexpr int kMinProbeBatch = 4;

}  // namespace sgxb::tune

#endif  // SGXB_TUNE_TUNE_H_
