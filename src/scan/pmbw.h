// pmbw-style memory micro-benchmark kernels (Bingmann's pmbw, extended).
//
// The paper uses pmbw's pointer-chasing loop for random-read latency
// (Section 4.1), a linear-congruential random-write loop of its own design,
// and pmbw's linear read/write loops — extended with 512-bit AVX variants —
// for the streaming measurements of Section 5.4 (Figure 15). These kernels
// are the exact counterparts. Inline assembly barriers keep the compiler
// from vectorizing the scalar loops or deleting result-less read loops,
// mirroring pmbw's decision to write its loops in assembly.

#ifndef SGXB_SCAN_PMBW_H_
#define SGXB_SCAN_PMBW_H_

#include <cstddef>
#include <cstdint>

namespace sgxb::scan {

/// \brief Fills `arr` with a random single-cycle permutation (Sattolo's
/// algorithm): arr[i] is the index of the next element, and following the
/// chain visits every element exactly once before returning to 0. This is
/// pmbw's pointer-chasing setup.
void MakePointerChain(uint64_t* arr, size_t n, uint64_t seed);

/// \brief Follows the pointer chain for `steps` hops starting at index 0.
/// Each load depends on the previous one, defeating out-of-order overlap —
/// the worst case for random-read latency. Returns the final index (so the
/// loop cannot be optimized away).
uint64_t RunPointerChase(const uint64_t* arr, uint64_t steps);

/// \brief Writes `count` 8-byte integers to LCG-chosen positions of
/// `arr[0..n)`, the paper's random-write micro-benchmark (Section 4.1).
void RandomWrites(uint64_t* arr, size_t n, uint64_t count, uint64_t seed);

/// \brief Streams over `arr` with 64-bit scalar loads; returns a checksum.
uint64_t LinearRead64(const uint64_t* arr, size_t n);

/// \brief Streams over `arr` with 512-bit vector loads (AVX-512 when
/// available, otherwise the widest available); returns a checksum.
uint64_t LinearRead512(const uint64_t* arr, size_t n);

/// \brief Streams 64-bit scalar stores of `value` over `arr`.
void LinearWrite64(uint64_t* arr, size_t n, uint64_t value);

/// \brief Streams 512-bit vector stores over `arr`.
void LinearWrite512(uint64_t* arr, size_t n, uint64_t value);

}  // namespace sgxb::scan

#endif  // SGXB_SCAN_PMBW_H_
