#include "scan/pmbw.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/random.h"

namespace sgxb::scan {

void MakePointerChain(uint64_t* arr, size_t n, uint64_t seed) {
  // Sattolo's algorithm produces a uniformly random cyclic permutation.
  for (size_t i = 0; i < n; ++i) arr[i] = i;
  Xoshiro256 rng(seed);
  for (size_t i = n - 1; i > 0; --i) {
    size_t j = rng.NextBounded(i);  // j in [0, i)
    uint64_t tmp = arr[i];
    arr[i] = arr[j];
    arr[j] = tmp;
  }
}

uint64_t RunPointerChase(const uint64_t* arr, uint64_t steps) {
  uint64_t idx = 0;
  for (uint64_t s = 0; s < steps; ++s) {
    idx = arr[idx];
    // Barrier: the next load must consume this result from a register.
    asm volatile("" : "+r"(idx));
  }
  return idx;
}

void RandomWrites(uint64_t* arr, size_t n, uint64_t count, uint64_t seed) {
  Lcg64 lcg(seed);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t pos = lcg.NextBounded(n);
    arr[pos] = i;
    asm volatile("" ::: "memory");
  }
}

uint64_t LinearRead64(const uint64_t* arr, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = arr[i];
    // Keep the loads scalar: forbid the compiler from vectorizing by
    // threading the accumulator through a register barrier.
    asm volatile("" : "+r"(v));
    sum += v;
  }
  asm volatile("" : "+r"(sum));
  return sum;
}

void LinearWrite64(uint64_t* arr, size_t n, uint64_t value) {
  for (size_t i = 0; i < n; ++i) {
    asm volatile("" : "+r"(value));
    arr[i] = value;
  }
  asm volatile("" ::: "memory");
}

#if defined(__AVX512F__)

uint64_t LinearRead512(const uint64_t* arr, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_loadu_si512(arr + i));
  }
  uint64_t sum = _mm512_reduce_add_epi64(acc);
  for (; i < n; ++i) sum += arr[i];
  asm volatile("" : "+r"(sum));
  return sum;
}

void LinearWrite512(uint64_t* arr, size_t n, uint64_t value) {
  __m512i v = _mm512_set1_epi64(static_cast<long long>(value));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(arr + i, v);
  }
  for (; i < n; ++i) arr[i] = value;
  asm volatile("" ::: "memory");
}

#elif defined(__AVX2__)

uint64_t LinearRead512(const uint64_t* arr, size_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i)));
    acc1 = _mm256_add_epi64(
        acc1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i + 4)));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc0, acc1));
  uint64_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) sum += arr[i];
  asm volatile("" : "+r"(sum));
  return sum;
}

void LinearWrite512(uint64_t* arr, size_t n, uint64_t value) {
  __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(arr + i), v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(arr + i + 4), v);
  }
  for (; i < n; ++i) arr[i] = value;
  asm volatile("" ::: "memory");
}

#else

uint64_t LinearRead512(const uint64_t* arr, size_t n) {
  return LinearRead64(arr, n);
}
void LinearWrite512(uint64_t* arr, size_t n, uint64_t value) {
  LinearWrite64(arr, n, value);
}

#endif

}  // namespace sgxb::scan
