#include "scan/scan_kernels.h"

#include <algorithm>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace sgxb::scan {

namespace {

inline bool Matches(uint8_t v, uint8_t lo, uint8_t hi) {
  return v >= lo && v <= hi;
}

}  // namespace

// --- Scalar ----------------------------------------------------------------

uint64_t ScanBitVectorScalar(const uint8_t* data, size_t n, uint8_t lo,
                             uint8_t hi, uint64_t* out_words) {
  uint64_t count = 0;
  size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word = 0;
    const uint8_t* block = data + w * 64;
    for (int i = 0; i < 64; ++i) {
      word |= static_cast<uint64_t>(Matches(block[i], lo, hi)) << i;
    }
    out_words[w] = word;
    count += __builtin_popcountll(word);
  }
  if (n % 64 != 0) {
    uint64_t word = 0;
    const uint8_t* block = data + full_words * 64;
    for (size_t i = 0; i < n % 64; ++i) {
      word |= static_cast<uint64_t>(Matches(block[i], lo, hi)) << i;
    }
    out_words[full_words] = word;
    count += __builtin_popcountll(word);
  }
  return count;
}

uint64_t ScanRowIdsScalar(const uint8_t* data, size_t n, uint8_t lo,
                          uint8_t hi, uint64_t base, uint64_t* out_ids) {
  uint64_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (Matches(data[i], lo, hi)) out_ids[k++] = base + i;
  }
  return k;
}

// --- AVX2 --------------------------------------------------------------------

#if defined(__AVX2__)

namespace {

// Unsigned byte range check with AVX2: shift into signed space, then
// (v >= lo) & (v <= hi) via signed compares.
inline uint32_t RangeMask32(__m256i v, __m256i lo_s, __m256i hi_s,
                            __m256i bias) {
  __m256i vs = _mm256_xor_si256(v, bias);
  __m256i ge_lo = _mm256_cmpgt_epi8(lo_s, vs);  // lo > v  -> fail
  __m256i gt_hi = _mm256_cmpgt_epi8(vs, hi_s);  // v > hi  -> fail
  __m256i fail = _mm256_or_si256(ge_lo, gt_hi);
  return ~static_cast<uint32_t>(_mm256_movemask_epi8(fail));
}

}  // namespace

uint64_t ScanBitVectorAvx2(const uint8_t* data, size_t n, uint8_t lo,
                           uint8_t hi, uint64_t* out_words) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i lo_s =
      _mm256_set1_epi8(static_cast<char>(lo ^ 0x80));
  const __m256i hi_s =
      _mm256_set1_epi8(static_cast<char>(hi ^ 0x80));

  uint64_t count = 0;
  size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    __m256i v0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + w * 64));
    __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + w * 64 + 32));
    uint64_t word = static_cast<uint64_t>(RangeMask32(v0, lo_s, hi_s, bias));
    word |= static_cast<uint64_t>(RangeMask32(v1, lo_s, hi_s, bias)) << 32;
    out_words[w] = word;
    count += __builtin_popcountll(word);
  }
  if (n % 64 != 0) {
    count += ScanBitVectorScalar(data + full * 64, n % 64, lo, hi,
                                 out_words + full);
  }
  return count;
}

uint64_t ScanRowIdsAvx2(const uint8_t* data, size_t n, uint8_t lo,
                        uint8_t hi, uint64_t base, uint64_t* out_ids) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i lo_s = _mm256_set1_epi8(static_cast<char>(lo ^ 0x80));
  const __m256i hi_s = _mm256_set1_epi8(static_cast<char>(hi ^ 0x80));

  uint64_t k = 0;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i));
    uint32_t mask = RangeMask32(v, lo_s, hi_s, bias);
    while (mask != 0) {
      int bit = __builtin_ctz(mask);
      out_ids[k++] = base + i + bit;
      mask &= mask - 1;
    }
  }
  k += ScanRowIdsScalar(data + i, n - i, lo, hi, base + i, out_ids + k);
  return k;
}

#else  // !__AVX2__

uint64_t ScanBitVectorAvx2(const uint8_t* data, size_t n, uint8_t lo,
                           uint8_t hi, uint64_t* out_words) {
  return ScanBitVectorScalar(data, n, lo, hi, out_words);
}
uint64_t ScanRowIdsAvx2(const uint8_t* data, size_t n, uint8_t lo,
                        uint8_t hi, uint64_t base, uint64_t* out_ids) {
  return ScanRowIdsScalar(data, n, lo, hi, base, out_ids);
}

#endif  // __AVX2__

// --- AVX-512 ------------------------------------------------------------------

#if defined(__AVX512F__) && defined(__AVX512BW__)

uint64_t ScanBitVectorAvx512(const uint8_t* data, size_t n, uint8_t lo,
                             uint8_t hi, uint64_t* out_words) {
  const __m512i vlo = _mm512_set1_epi8(static_cast<char>(lo));
  const __m512i vhi = _mm512_set1_epi8(static_cast<char>(hi));

  uint64_t count = 0;
  size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    __m512i v = _mm512_loadu_si512(data + w * 64);
    __mmask64 ge = _mm512_cmp_epu8_mask(v, vlo, _MM_CMPINT_NLT);
    __mmask64 le = _mm512_cmp_epu8_mask(v, vhi, _MM_CMPINT_LE);
    uint64_t word = static_cast<uint64_t>(ge & le);
    out_words[w] = word;
    count += __builtin_popcountll(word);
  }
  if (n % 64 != 0) {
    count += ScanBitVectorScalar(data + full * 64, n % 64, lo, hi,
                                 out_words + full);
  }
  return count;
}

uint64_t ScanRowIdsAvx512(const uint8_t* data, size_t n, uint8_t lo,
                          uint8_t hi, uint64_t base, uint64_t* out_ids) {
  const __m512i vlo = _mm512_set1_epi8(static_cast<char>(lo));
  const __m512i vhi = _mm512_set1_epi8(static_cast<char>(hi));

  uint64_t k = 0;
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m512i v = _mm512_loadu_si512(data + i);
    __mmask64 ge = _mm512_cmp_epu8_mask(v, vlo, _MM_CMPINT_NLT);
    __mmask64 le = _mm512_cmp_epu8_mask(v, vhi, _MM_CMPINT_LE);
    uint64_t mask = static_cast<uint64_t>(ge & le);
    while (mask != 0) {
      int bit = __builtin_ctzll(mask);
      out_ids[k++] = base + i + bit;
      mask &= mask - 1;
    }
  }
  k += ScanRowIdsScalar(data + i, n - i, lo, hi, base + i, out_ids + k);
  return k;
}

uint64_t ScanRowIdsAvx512Compress(const uint8_t* data, size_t n,
                                  uint8_t lo, uint8_t hi, uint64_t base,
                                  uint64_t* out_ids) {
  const __m512i vlo = _mm512_set1_epi8(static_cast<char>(lo));
  const __m512i vhi = _mm512_set1_epi8(static_cast<char>(hi));
  // Rolling vector of eight candidate row ids.
  __m512i ids = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
  ids = _mm512_add_epi64(ids, _mm512_set1_epi64(
                                  static_cast<long long>(base)));
  const __m512i step = _mm512_set1_epi64(8);

  uint64_t k = 0;
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m512i v = _mm512_loadu_si512(data + i);
    __mmask64 ge = _mm512_cmp_epu8_mask(v, vlo, _MM_CMPINT_NLT);
    __mmask64 le = _mm512_cmp_epu8_mask(v, vhi, _MM_CMPINT_LE);
    uint64_t mask = static_cast<uint64_t>(ge & le);
    // Eight compress-stores of eight candidate ids each: no
    // data-dependent branches in the materialization.
    for (int b = 0; b < 8; ++b) {
      __mmask8 m = static_cast<__mmask8>(mask >> (8 * b));
      _mm512_mask_compressstoreu_epi64(out_ids + k, m, ids);
      k += __builtin_popcount(m);
      ids = _mm512_add_epi64(ids, step);
    }
  }
  k += ScanRowIdsScalar(data + i, n - i, lo, hi, base + i, out_ids + k);
  return k;
}

#else  // !AVX512

uint64_t ScanBitVectorAvx512(const uint8_t* data, size_t n, uint8_t lo,
                             uint8_t hi, uint64_t* out_words) {
  return ScanBitVectorAvx2(data, n, lo, hi, out_words);
}
uint64_t ScanRowIdsAvx512(const uint8_t* data, size_t n, uint8_t lo,
                          uint8_t hi, uint64_t base, uint64_t* out_ids) {
  return ScanRowIdsAvx2(data, n, lo, hi, base, out_ids);
}
uint64_t ScanRowIdsAvx512Compress(const uint8_t* data, size_t n,
                                  uint8_t lo, uint8_t hi, uint64_t base,
                                  uint64_t* out_ids) {
  return ScanRowIdsAvx2(data, n, lo, hi, base, out_ids);
}

#endif  // AVX512

// --- Dispatch -----------------------------------------------------------------

SimdLevel BestSupportedSimdLevel() {
  SimdLevel host = CpuInfo::Host().max_simd;
#if defined(__AVX512F__) && defined(__AVX512BW__)
  SimdLevel build = SimdLevel::kAvx512;
#elif defined(__AVX2__)
  SimdLevel build = SimdLevel::kAvx2;
#else
  SimdLevel build = SimdLevel::kScalar;
#endif
  return std::min(host, build);
}

BitVectorKernel PickBitVectorKernel(SimdLevel level) {
  level = std::min(level, BestSupportedSimdLevel());
  switch (level) {
    case SimdLevel::kAvx512:
      return &ScanBitVectorAvx512;
    case SimdLevel::kAvx2:
      return &ScanBitVectorAvx2;
    case SimdLevel::kScalar:
      return &ScanBitVectorScalar;
  }
  return &ScanBitVectorScalar;
}

RowIdKernel PickRowIdKernel(SimdLevel level) {
  level = std::min(level, BestSupportedSimdLevel());
  switch (level) {
    case SimdLevel::kAvx512:
      return &ScanRowIdsAvx512;
    case SimdLevel::kAvx2:
      return &ScanRowIdsAvx2;
    case SimdLevel::kScalar:
      return &ScanRowIdsScalar;
  }
  return &ScanRowIdsScalar;
}

uint64_t ScanRowIdRange(const uint8_t* data, size_t base, size_t len,
                        uint8_t lo, uint8_t hi, uint64_t* out_ids,
                        SimdLevel level) {
  // The kernels add `base` to every produced index, so scanning from
  // data + base yields absolute row ids directly.
  return PickRowIdKernel(level)(data + base, len, lo, hi, base, out_ids);
}

}  // namespace sgxb::scan
