// Multi-threaded column scan driver (paper Section 5).
//
// Runs the SIMD range-scan kernels over a uint8 column with 1..N threads,
// producing either a bit vector (one result bit per value, Sections
// 5.1-5.2) or materialized 64-bit row indexes (the variable write-rate
// variant of Section 5.3). Emits the AccessProfile consumed by the cost
// model and injects enclave transitions when executed under an SGX
// setting.

#ifndef SGXB_SCAN_COLUMN_SCAN_H_
#define SGXB_SCAN_COLUMN_SCAN_H_

#include <cstdint>

#include "common/bitvector.h"
#include "common/relation.h"
#include "common/status.h"
#include "perf/access_profile.h"
#include "scan/scan_kernels.h"

namespace sgxb::scan {

struct ScanConfig {
  /// Inclusive predicate bounds: lo <= v <= hi.
  uint8_t lo = 0;
  uint8_t hi = 127;
  int num_threads = 1;
  /// Requested SIMD level; silently lowered to what the host supports.
  SimdLevel simd = SimdLevel::kAvx512;
  ExecutionSetting setting = ExecutionSetting::kPlainCpu;
  /// Scan the same data `repetitions` times (the paper uses 1000 scans
  /// after 10 warm-ups for cache-resident sizes).
  int repetitions = 1;
};

struct ScanResult {
  /// Matches found by the *last* repetition.
  uint64_t matches = 0;
  /// Wall time of the measured repetitions on the host (all threads).
  double host_ns = 0;
  /// Aggregate profile over all repetitions and threads.
  perf::AccessProfile profile;
  int threads = 1;
};

/// \brief Range scan producing a bit vector. `out` must hold
/// column.num_values() bits.
Result<ScanResult> RunBitVectorScan(const Column<uint8_t>& column,
                                    BitVector* out,
                                    const ScanConfig& config);

/// \brief Range scan materializing matching row indexes. `out_ids` must
/// have room for column.num_values() entries; *out_count receives the
/// number written.
Result<ScanResult> RunRowIdScan(const Column<uint8_t>& column,
                                uint64_t* out_ids, uint64_t* out_count,
                                const ScanConfig& config);

/// \brief Raw-pointer variant for callers whose column is not a
/// Column<uint8_t> (e.g. a resident storage::ColumnView).
Result<ScanResult> RunRowIdScan(const uint8_t* data, size_t num_values,
                                uint64_t* out_ids, uint64_t* out_count,
                                const ScanConfig& config);

}  // namespace sgxb::scan

#endif  // SGXB_SCAN_COLUMN_SCAN_H_
