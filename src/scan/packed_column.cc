#include "scan/packed_column.h"

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include <string>

namespace sgxb::scan {

namespace {

// Guard-bit mask: bit (f * fw + w) set for every field f.
uint64_t GuardMask(int w, int fw, int k) {
  uint64_t g = 0;
  for (int f = 0; f < k; ++f) {
    g |= uint64_t{1} << (f * fw + w);
  }
  return g;
}

// Broadcast `v` into the data bits of every field.
uint64_t Broadcast(uint32_t v, int fw, int k) {
  uint64_t b = 0;
  for (int f = 0; f < k; ++f) {
    b |= static_cast<uint64_t>(v) << (f * fw);
  }
  return b;
}

// Compact the guard bits of `mask` (positions given by `guard`) into the
// low bits of the result, one bit per field.
inline uint64_t ExtractGuards(uint64_t mask, uint64_t guard, int fw,
                              int w, int k) {
#if defined(__BMI2__)
  (void)fw;
  (void)w;
  (void)k;
  return _pext_u64(mask, guard);
#else
  uint64_t out = 0;
  for (int f = 0; f < k; ++f) {
    out |= ((mask >> (f * fw + w)) & 1u) << f;
  }
  (void)guard;
  return out;
#endif
}

// Appends bit-groups of variable width into a bit vector.
class BitWriter {
 public:
  explicit BitWriter(BitVector* out) : out_(out) {}

  void Append(uint64_t bits, int count) {
    acc_ |= bits << filled_;
    int space = 64 - filled_;
    if (count >= space) {
      out_->words()[word_++] = acc_;
      acc_ = space < 64 ? bits >> space : 0;
      filled_ = count - space;
    } else {
      filled_ += count;
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->words()[word_++] = acc_;
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  BitVector* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
  size_t word_ = 0;
};

}  // namespace

size_t PackedColumn::num_words() const {
  const int k = fields_per_word();
  return (num_values_ + k - 1) / k;
}

Result<PackedColumn> PackedColumn::Pack(const Column<uint32_t>& values,
                                        int bit_width,
                                        MemoryRegion region) {
  return Pack(values, bit_width,
              region == MemoryRegion::kEnclave ? mem::SimulatedEnclave()
                                               : mem::Untrusted());
}

Result<PackedColumn> PackedColumn::Pack(const Column<uint32_t>& values,
                                        int bit_width,
                                        mem::MemoryResource* resource) {
  return PackImpl(values.data(), values.num_values(), bit_width,
                  /*frame_min=*/0, resource);
}

Result<PackedColumn> PackedColumn::Pack(const uint32_t* values,
                                        size_t num_values, int bit_width,
                                        mem::MemoryResource* resource) {
  return PackImpl(values, num_values, bit_width, /*frame_min=*/0, resource);
}

Result<PackedColumn> PackedColumn::PackFrameOfReference(
    const Column<uint32_t>& values, mem::MemoryResource* resource) {
  return PackFrameOfReference(values.data(), values.num_values(), resource);
}

Result<PackedColumn> PackedColumn::PackFrameOfReference(
    const uint32_t* values, size_t num_values,
    mem::MemoryResource* resource) {
  uint32_t min = 0xffffffffu;
  uint32_t max = 0;
  for (size_t i = 0; i < num_values; ++i) {
    min = values[i] < min ? values[i] : min;
    max = values[i] > max ? values[i] : max;
  }
  if (num_values == 0) min = 0;
  const uint32_t range = max - min;
  if (range > 0x7fffffffu) {
    return Status::InvalidArgument(
        "value range exceeds 31 bits; frame-of-reference cannot pack");
  }
  // Smallest width holding the relative domain [0, range].
  int bit_width = 1;
  while (bit_width < 31 && (range >> bit_width) != 0) ++bit_width;
  return PackImpl(values, num_values, bit_width, min, resource);
}

Result<PackedColumn> PackedColumn::PackImpl(const uint32_t* values,
                                            size_t num_values, int bit_width,
                                            uint32_t frame_min,
                                            mem::MemoryResource* resource) {
  if (bit_width < 1 || bit_width > 31) {
    return Status::InvalidArgument("bit_width must be in [1, 31]");
  }
  const uint32_t limit =
      bit_width == 31 ? 0x7fffffffu : (1u << bit_width) - 1;
  for (size_t i = 0; i < num_values; ++i) {
    if (values[i] < frame_min || values[i] - frame_min > limit) {
      return Status::InvalidArgument(
          "value at row " + std::to_string(i) + " exceeds " +
          std::to_string(bit_width) + " bits");
    }
  }

  PackedColumn col;
  col.bit_width_ = bit_width;
  col.num_values_ = num_values;
  col.frame_min_ = frame_min;
  const int fw = bit_width + 1;
  const int k = 64 / fw;
  const size_t words = (num_values + k - 1) / k;
  if (resource == nullptr) resource = mem::Untrusted();
  auto buf = resource->AllocateZeroed(words * sizeof(uint64_t));
  if (!buf.ok()) return buf.status();
  col.buffer_ = std::move(buf).value();

  uint64_t* data = col.buffer_.As<uint64_t>();
  for (size_t i = 0; i < num_values; ++i) {
    data[i / k] |= static_cast<uint64_t>(values[i] - frame_min)
                   << ((i % k) * fw);
  }
  return col;
}

uint32_t PackedColumn::Get(size_t i) const {
  const int fw = field_width();
  const int k = fields_per_word();
  const uint64_t word = words()[i / k];
  const uint32_t mask =
      bit_width_ == 31 ? 0x7fffffffu : (1u << bit_width_) - 1;
  return frame_min_ +
         (static_cast<uint32_t>(word >> ((i % k) * fw)) & mask);
}

bool PackedColumn::TranslateRange(uint32_t lo, uint32_t hi,
                                  uint32_t* lo_out, uint32_t* hi_out) const {
  if (hi < lo || hi < frame_min_) return false;
  const uint32_t limit =
      bit_width_ == 31 ? 0x7fffffffu : (1u << bit_width_) - 1;
  const uint32_t lo_rel = lo <= frame_min_ ? 0 : lo - frame_min_;
  if (lo_rel > limit) return false;
  const uint64_t hi_rel = static_cast<uint64_t>(hi) - frame_min_;
  *lo_out = lo_rel;
  *hi_out = hi_rel > limit ? limit : static_cast<uint32_t>(hi_rel);
  return true;
}

uint64_t PackedScanScalar(const PackedColumn& column, uint32_t lo,
                          uint32_t hi, BitVector* out) {
  uint64_t count = 0;
  for (size_t i = 0; i < column.num_values(); ++i) {
    uint32_t v = column.Get(i);
    if (v >= lo && v <= hi) {
      out->Set(i);
      ++count;
    } else {
      out->Clear(i);
    }
  }
  return count;
}

uint64_t PackedScan(const PackedColumn& column, uint32_t lo, uint32_t hi,
                    BitVector* out) {
  const int w = column.bit_width();
  const int fw = column.field_width();
  const int k = column.fields_per_word();
  const size_t n = column.num_values();
  // Translate the predicate into the stored (frame-relative) domain; a
  // range that misses the frame entirely matches nothing.
  uint32_t lo_t = 0;
  uint32_t hi_t = 0;
  if (!column.TranslateRange(lo, hi, &lo_t, &hi_t)) {
    for (size_t i = 0; i < (n + 63) / 64; ++i) out->words()[i] = 0;
    return 0;
  }
  const size_t full_words = n / k;
  const uint64_t guard = GuardMask(w, fw, k);
  const uint64_t lo_b = Broadcast(lo_t, fw, k);
  const uint64_t hi_b = Broadcast(hi_t, fw, k) | guard;
  const uint64_t* words = column.words();

  BitWriter writer(out);
  uint64_t count = 0;
  for (size_t i = 0; i < full_words; ++i) {
    const uint64_t x = words[i];
    // Parallel comparison (Willhalm et al. / Lamport): the guard bit of
    // field f survives iff x_f >= lo (no borrow) and hi >= x_f.
    const uint64_t ge = ((x | guard) - lo_b) & guard;
    const uint64_t le = (hi_b - x) & guard;
    const uint64_t hits = ge & le;
    count += __builtin_popcountll(hits);
    writer.Append(ExtractGuards(hits, guard, fw, w, k), k);
  }
  // Tail word with fewer than k valid fields.
  const int tail = static_cast<int>(n - full_words * k);
  if (tail > 0) {
    const uint64_t x = words[full_words];
    const uint64_t ge = ((x | guard) - lo_b) & guard;
    const uint64_t le = (hi_b - x) & guard;
    uint64_t hits = ge & le;
    // Keep only the valid fields.
    uint64_t valid = 0;
    for (int f = 0; f < tail; ++f) {
      valid |= uint64_t{1} << (f * fw + w);
    }
    hits &= valid;
    count += __builtin_popcountll(hits);
    writer.Append(ExtractGuards(hits, guard, fw, w, k), tail);
  }
  writer.Flush();
  return count;
}

}  // namespace sgxb::scan
