#include "scan/column_scan.h"

#include <atomic>
#include <optional>
#include <vector>

#include "common/parallel.h"
#include "common/timer.h"
#include "sgx/transition.h"

namespace sgxb::scan {

namespace {

// Chunks handed to threads are multiples of 64 values so each thread owns
// whole bit-vector words.
Range ChunkFor(size_t n, int threads, int tid) {
  size_t blocks = (n + 63) / 64;
  Range br = SplitRange(blocks, threads, tid);
  return Range{br.begin * 64, std::min(n, br.end * 64)};
}

perf::AccessProfile MakeScanProfile(size_t bytes_read, size_t bytes_written,
                                    int reps, SimdLevel simd) {
  perf::AccessProfile p;
  p.seq_read_bytes = bytes_read * reps;
  p.seq_write_bytes = bytes_written * reps;
  p.seq_data_bytes = bytes_read;  // one pass streams the whole column
  p.loop_iterations = bytes_read / 64 * reps;  // one iteration per vector
  p.ilp = perf::IlpClass::kStreaming;
  p.wide_vectors = (simd == SimdLevel::kAvx512);
  return p;
}

}  // namespace

Result<ScanResult> RunBitVectorScan(const Column<uint8_t>& column,
                                    BitVector* out,
                                    const ScanConfig& config) {
  if (out->num_bits() < column.num_values()) {
    return Status::InvalidArgument("bit vector too small for column");
  }
  if (config.num_threads <= 0 || config.repetitions <= 0) {
    return Status::InvalidArgument("threads and repetitions must be >= 1");
  }
  BitVectorKernel kernel = PickBitVectorKernel(config.simd);
  const uint8_t* data = column.data();
  const size_t n = column.num_values();
  std::atomic<uint64_t> matches{0};
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;

  // Morsel-driven (Fig 13/16 scaling path): the scan is scheduled as
  // 64-value blocks — so every morsel owns whole bit-vector words — in
  // ~256 KiB morsels over the executor's work-stealing lanes. The ECall
  // scope wraps each lane's whole morsel loop: threads enter the enclave
  // once and stream, as the paper's benchmarks do, not once per morsel.
  constexpr size_t kMorselBlocks = (256u << 10) / 64;
  const size_t total_blocks = (n + 63) / 64;
  ParallelForOptions opts;
  opts.num_threads = config.num_threads;
  opts.worker_scope = [&](int, const std::function<void()>& run) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();
    run();
  };

  WallTimer timer;
  Status run_status = ParallelFor(
      total_blocks, kMorselBlocks,
      [&](Range blocks, int) {
        const size_t begin = blocks.begin * 64;
        const size_t end = std::min(n, blocks.end * 64);
        uint64_t local = 0;
        for (int rep = 0; rep < config.repetitions; ++rep) {
          local = kernel(data + begin, end - begin, config.lo, config.hi,
                         out->words() + begin / 64);
        }
        matches.fetch_add(local, std::memory_order_relaxed);
      },
      opts);
  double ns = static_cast<double>(timer.ElapsedNanos());
  SGXB_RETURN_NOT_OK(run_status);

  ScanResult result;
  result.matches = matches.load(std::memory_order_relaxed);
  result.host_ns = ns;
  result.threads = config.num_threads;
  result.profile = MakeScanProfile(n, n / 8, config.repetitions,
                                   config.simd);
  return result;
}

Result<ScanResult> RunRowIdScan(const Column<uint8_t>& column,
                                uint64_t* out_ids, uint64_t* out_count,
                                const ScanConfig& config) {
  return RunRowIdScan(column.data(), column.num_values(), out_ids,
                      out_count, config);
}

Result<ScanResult> RunRowIdScan(const uint8_t* data, size_t num_values,
                                uint64_t* out_ids, uint64_t* out_count,
                                const ScanConfig& config) {
  if (config.num_threads <= 0 || config.repetitions <= 0) {
    return Status::InvalidArgument("threads and repetitions must be >= 1");
  }
  RowIdKernel kernel = PickRowIdKernel(config.simd);
  const size_t n = num_values;
  const int threads = config.num_threads;
  const bool in_enclave = config.setting != ExecutionSetting::kPlainCpu;

  // Each thread writes into its own slice of the output, sized for the
  // worst case; slices are compacted afterwards (outside the timing).
  std::vector<uint64_t> counts(threads, 0);

  // Stays a fixed gang (not morsels): the compaction below depends on each
  // thread writing one contiguous slice at its ChunkFor offset.
  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    std::optional<sgx::ScopedEcall> ecall;
    if (in_enclave) ecall.emplace();

    Range r = ChunkFor(n, threads, tid);
    if (r.begin >= r.end) return;
    uint64_t local = 0;
    for (int rep = 0; rep < config.repetitions; ++rep) {
      local = kernel(data + r.begin, r.end - r.begin, config.lo, config.hi,
                     r.begin, out_ids + r.begin);
    }
    counts[tid] = local;
  });
  double ns = static_cast<double>(timer.ElapsedNanos());
  SGXB_RETURN_NOT_OK(run_status);

  // Compact the per-thread slices into a dense prefix.
  uint64_t total = counts[0];
  for (int tid = 1; tid < threads; ++tid) {
    Range r = ChunkFor(n, threads, tid);
    if (r.begin >= r.end) continue;
    if (r.begin != total) {
      std::move(out_ids + r.begin, out_ids + r.begin + counts[tid],
                out_ids + total);
    }
    total += counts[tid];
  }
  *out_count = total;

  ScanResult result;
  result.matches = total;
  result.host_ns = ns;
  result.threads = threads;
  result.profile =
      MakeScanProfile(n, static_cast<size_t>(total) * sizeof(uint64_t),
                      config.repetitions, config.simd);
  return result;
}

}  // namespace sgxb::scan
