// Column-scan kernels: scalar, AVX2, and AVX-512 variants.
//
// The paper's scan (Section 5) implements the SIMD-scan designs of
// Willhalm et al. and Polychroniou et al.: load 64 byte-sized values at a
// time, compare against a lower and an upper bound, and either store the
// 64-bit comparison mask into a bit vector or materialize the row indexes
// of matching values. The predicate is inclusive: lo <= v <= hi.
//
// AVX-512 kernels compile only when the build targets AVX-512 (the paper
// uses -march=native on an Ice Lake Xeon); ScanDispatch picks the widest
// kernel the *host* supports at runtime.

#ifndef SGXB_SCAN_SCAN_KERNELS_H_
#define SGXB_SCAN_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_info.h"

namespace sgxb::scan {

// --- Bit-vector output ---------------------------------------------------
// `out_words` must hold (n + 63) / 64 words; n need not be a multiple of
// 64 (the tail word is partially filled). Returns the number of matches.

uint64_t ScanBitVectorScalar(const uint8_t* data, size_t n, uint8_t lo,
                             uint8_t hi, uint64_t* out_words);
uint64_t ScanBitVectorAvx2(const uint8_t* data, size_t n, uint8_t lo,
                           uint8_t hi, uint64_t* out_words);
uint64_t ScanBitVectorAvx512(const uint8_t* data, size_t n, uint8_t lo,
                             uint8_t hi, uint64_t* out_words);

// --- Row-id materialization ------------------------------------------------
// `out_ids` must have room for n entries (worst case). `base` is added to
// every produced index (for partitioned multi-threaded scans). Returns the
// number of ids written.

uint64_t ScanRowIdsScalar(const uint8_t* data, size_t n, uint8_t lo,
                          uint8_t hi, uint64_t base, uint64_t* out_ids);
uint64_t ScanRowIdsAvx2(const uint8_t* data, size_t n, uint8_t lo,
                        uint8_t hi, uint64_t base, uint64_t* out_ids);
uint64_t ScanRowIdsAvx512(const uint8_t* data, size_t n, uint8_t lo,
                          uint8_t hi, uint64_t base, uint64_t* out_ids);

/// \brief AVX-512 row-id kernel using VPCOMPRESSQ (compress-store), the
/// branch-free materialization of Polychroniou et al.: eight candidate
/// indexes are compressed by the comparison mask per step, so the write
/// pattern has no data-dependent branches. Falls back to
/// ScanRowIdsAvx512 without AVX-512.
uint64_t ScanRowIdsAvx512Compress(const uint8_t* data, size_t n,
                                  uint8_t lo, uint8_t hi, uint64_t base,
                                  uint64_t* out_ids);

// --- Dispatch ---------------------------------------------------------------

using BitVectorKernel = uint64_t (*)(const uint8_t*, size_t, uint8_t,
                                     uint8_t, uint64_t*);
using RowIdKernel = uint64_t (*)(const uint8_t*, size_t, uint8_t, uint8_t,
                                 uint64_t, uint64_t*);

/// \brief Returns the widest bit-vector kernel available on this host, or
/// the kernel for an explicitly requested level (falling back if the host
/// cannot run it).
BitVectorKernel PickBitVectorKernel(SimdLevel level);
RowIdKernel PickRowIdKernel(SimdLevel level);

/// \brief Widest level that both the build and the host support.
SimdLevel BestSupportedSimdLevel();

// --- Morsel-range entry point ------------------------------------------------

/// \brief Selection over one morsel: scans `col[base, base + len)` of a
/// column starting at `data` and writes the ABSOLUTE row ids of matching
/// values (lo <= v <= hi) to `out_ids`, which must have room for `len`
/// entries. Returns the number of ids written. This is the fused
/// pipelines' scan entry point (exec/pipeline.h): the same SIMD kernels
/// as the global row-id scan, applied to an arbitrary worker morsel —
/// `len` need not be a multiple of the SIMD width and `base` need not be
/// aligned (the kernels handle unaligned heads and partial tails).
uint64_t ScanRowIdRange(const uint8_t* data, size_t base, size_t len,
                        uint8_t lo, uint8_t hi, uint64_t* out_ids,
                        SimdLevel level);

}  // namespace sgxb::scan

#endif  // SGXB_SCAN_SCAN_KERNELS_H_
