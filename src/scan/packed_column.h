// Bit-packed columns with parallel-comparison range scans.
//
// The SIMD-scan line of work the paper builds on (Willhalm et al. [38])
// scans *bit-packed* columns: values of w bits are packed densely and
// compared against range predicates many-at-a-time inside wide registers
// using the guard-bit parallel-comparison technique. This module
// implements that design with a word-aligned layout: each value occupies
// w data bits plus 1 guard bit, and fields never cross 64-bit word
// boundaries, so a single subtraction evaluates 64/(w+1) comparisons at
// once and BMI2 PEXT compacts the per-field results into the output bit
// vector.
//
// Packing shrinks the bytes a scan must pull through the (encrypted)
// memory subsystem — for enclave scans this multiplies the effective
// bandwidth, which bench_ext_packed_scan quantifies.

#ifndef SGXB_SCAN_PACKED_COLUMN_H_
#define SGXB_SCAN_PACKED_COLUMN_H_

#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/bitvector.h"
#include "common/relation.h"
#include "common/status.h"
#include "mem/memory_resource.h"

namespace sgxb::scan {

class PackedColumn {
 public:
  PackedColumn() = default;

  /// \brief Packs `values` at `bit_width` data bits per value (1..31)
  /// into memory from `resource` (null = untrusted host memory). Values
  /// must fit the width; the first offending value is reported.
  static Result<PackedColumn> Pack(const Column<uint32_t>& values,
                                   int bit_width,
                                   mem::MemoryResource* resource = nullptr);

  /// \brief Region-flavoured convenience overload: packs into the
  /// process-wide resource simulating `region`.
  static Result<PackedColumn> Pack(const Column<uint32_t>& values,
                                   int bit_width, MemoryRegion region);

  /// \brief Raw-pointer overload for callers that hold partition runs
  /// rather than whole columns (the spill codec).
  static Result<PackedColumn> Pack(const uint32_t* values, size_t num_values,
                                   int bit_width,
                                   mem::MemoryResource* resource = nullptr);

  /// \brief Frame-of-reference packing: stores values relative to their
  /// minimum and picks the smallest width that holds (max - min). Date and
  /// key columns whose absolute values need 22+ bits typically span a much
  /// narrower range, so this packs them to far fewer bits. Fails only when
  /// the value *range* exceeds 31 bits.
  static Result<PackedColumn> PackFrameOfReference(
      const Column<uint32_t>& values, mem::MemoryResource* resource = nullptr);
  static Result<PackedColumn> PackFrameOfReference(
      const uint32_t* values, size_t num_values,
      mem::MemoryResource* resource = nullptr);

  /// \brief Value at index i (test/debug accessor; scans use the word
  /// kernels). Frame-of-reference columns add the frame minimum back, so
  /// Get always returns the original value.
  uint32_t Get(size_t i) const;

  size_t num_values() const { return num_values_; }
  int bit_width() const { return bit_width_; }
  /// Frame-of-reference bias: stored field f holds value[f] - frame_min().
  uint32_t frame_min() const { return frame_min_; }

  /// \brief Translates an absolute-domain range predicate [lo, hi] into
  /// the stored (frame-relative) domain, clamped to the field limit.
  /// Returns false when no stored value can match.
  bool TranslateRange(uint32_t lo, uint32_t hi, uint32_t* lo_out,
                      uint32_t* hi_out) const;
  /// Data + guard bits per field.
  int field_width() const { return bit_width_ + 1; }
  int fields_per_word() const { return 64 / field_width(); }
  size_t size_bytes() const { return buffer_.size(); }

  const uint64_t* words() const { return buffer_.As<uint64_t>(); }
  size_t num_words() const;

  /// \brief Compression ratio versus a plain uint32 column.
  double CompressionRatio() const {
    return size_bytes() == 0
               ? 0
               : static_cast<double>(num_values_ * sizeof(uint32_t)) /
                     size_bytes();
  }

 private:
  static Result<PackedColumn> PackImpl(const uint32_t* values,
                                       size_t num_values, int bit_width,
                                       uint32_t frame_min,
                                       mem::MemoryResource* resource);

  AlignedBuffer buffer_;
  size_t num_values_ = 0;
  int bit_width_ = 0;
  uint32_t frame_min_ = 0;
};

/// \brief Range scan lo <= v <= hi over a packed column; sets one bit per
/// matching value in `out` (which must hold num_values() bits). Returns
/// the match count. Uses the guard-bit parallel comparison (one 64-bit
/// subtraction tests fields_per_word values). `lo`/`hi` are in the
/// original value domain; frame-of-reference columns translate them to
/// the stored domain internally.
uint64_t PackedScan(const PackedColumn& column, uint32_t lo, uint32_t hi,
                    BitVector* out);

/// \brief Scalar reference implementation (one value at a time); oracle
/// for tests and the baseline for the packed-scan bench.
uint64_t PackedScanScalar(const PackedColumn& column, uint32_t lo,
                          uint32_t hi, BitVector* out);

}  // namespace sgxb::scan

#endif  // SGXB_SCAN_PACKED_COLUMN_H_
