#include "tpch/queries.h"

#include <vector>

#include "common/timer.h"
#include "tpch/pipelines.h"
#include "tpch/query_constants.h"

namespace sgxb::tpch {

// The materializing bodies are templated over the database type: TpchDb
// (resident Columns) and TpchDbView (storage::ColumnViews, possibly paged
// through the out-of-EPC buffer manager) have identical field names, and
// the operators take ColumnView parameters both convert to. The public
// entry points dispatch to the fused pipelines first, exactly as before.

namespace {

template <typename Db>
Result<QueryResult> Q3Body(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  // sigma(c_mktsegment = BUILDING)(customer)
  auto cust = FilterU8Range(db.customer.c_mktsegment, kSegBuilding,
                            kSegBuilding, config, &rec, "filter_customer");
  if (!cust.ok()) return cust.status();
  auto build1 = GatherKeys(db.customer.c_custkey, &cust.value(), config,
                           &rec, "gather_customer");
  if (!build1.ok()) return build1.status();

  // sigma(o_orderdate < 1995-03-15)(orders)
  auto ord = FilterU32Range(db.orders.o_orderdate, 0, kDate19950315 - 1,
                            config, &rec, "filter_orders");
  if (!ord.ok()) return ord.status();
  auto probe1 = GatherKeys(db.orders.o_custkey, &ord.value(), config, &rec,
                           "gather_orders");
  if (!probe1.ok()) return probe1.status();

  auto join1 = MaterializingJoin(build1.value(), probe1.value(), config,
                                 &rec, "join_cust_orders");
  if (!join1.ok()) return join1.status();

  auto build2 = GatherKeys(db.orders.o_orderkey, &join1.value().probe_rows,
                           config, &rec, "gather_orderkeys");
  if (!build2.ok()) return build2.status();

  // sigma(l_shipdate > 1995-03-15)(lineitem)
  auto line = FilterU32Range(db.lineitem.l_shipdate, kDate19950315 + 1,
                             0xffffffffu, config, &rec, "filter_lineitem");
  if (!line.ok()) return line.status();
  auto probe2 = GatherKeys(db.lineitem.l_orderkey, &line.value(), config,
                           &rec, "gather_lineitem");
  if (!probe2.ok()) return probe2.status();

  auto count = CountingJoin(build2.value(), probe2.value(), config, &rec,
                            "join_orders_lineitem");
  if (!count.ok()) return count.status();

  QueryResult result;
  result.count = count.value();
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> Q10Body(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  // sigma(o_orderdate in [1993-10-01, 1994-01-01))(orders)
  auto ord = FilterU32Range(db.orders.o_orderdate, kDate19931001,
                            kDate19940101 - 1, config, &rec,
                            "filter_orders");
  if (!ord.ok()) return ord.status();
  auto probe1 = GatherKeys(db.orders.o_custkey, &ord.value(), config, &rec,
                           "gather_orders");
  if (!probe1.ok()) return probe1.status();
  auto build1 = GatherKeys(db.customer.c_custkey, nullptr, config, &rec,
                           "gather_customer");
  if (!build1.ok()) return build1.status();

  auto join1 = MaterializingJoin(build1.value(), probe1.value(), config,
                                 &rec, "join_cust_orders");
  if (!join1.ok()) return join1.status();

  auto build2 = GatherKeys(db.orders.o_orderkey, &join1.value().probe_rows,
                           config, &rec, "gather_orderkeys");
  if (!build2.ok()) return build2.status();

  // sigma(l_returnflag = 'R')(lineitem)
  auto line = FilterU8Range(db.lineitem.l_returnflag, kFlagR, kFlagR,
                            config, &rec, "filter_lineitem");
  if (!line.ok()) return line.status();
  auto probe2 = GatherKeys(db.lineitem.l_orderkey, &line.value(), config,
                           &rec, "gather_lineitem");
  if (!probe2.ok()) return probe2.status();

  auto count = CountingJoin(build2.value(), probe2.value(), config, &rec,
                            "join_orders_lineitem");
  if (!count.ok()) return count.status();

  QueryResult result;
  result.count = count.value();
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

// Q12's selection chain, shared with Q12Grouped.
template <typename Db>
Result<RowIdList> Q12Selection(const Db& db, const QueryConfig& config,
                               OpRecorder* rec) {
  auto rows = FilterU32Range(db.lineitem.l_receiptdate, kDate19940101,
                             kDate19950101 - 1, config, rec,
                             "filter_receiptdate");
  if (!rows.ok()) return rows.status();
  auto rows2 = RefineU8InSet(rows.value(), db.lineitem.l_shipmode,
                             kQ12ModeMask, config, rec, "refine_shipmode");
  if (!rows2.ok()) return rows2.status();
  auto rows3 =
      RefineLess(rows2.value(), db.lineitem.l_commitdate,
                 db.lineitem.l_receiptdate, config, rec,
                 "refine_commit_lt_receipt");
  if (!rows3.ok()) return rows3.status();
  return RefineLess(rows3.value(), db.lineitem.l_shipdate,
                    db.lineitem.l_commitdate, config, rec,
                    "refine_ship_lt_commit");
}

template <typename Db>
Result<QueryResult> Q12Body(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  auto rows4 = Q12Selection(db, config, &rec);
  if (!rows4.ok()) return rows4.status();

  auto probe = GatherKeys(db.lineitem.l_orderkey, &rows4.value(), config,
                          &rec, "gather_lineitem");
  if (!probe.ok()) return probe.status();
  auto build = GatherKeys(db.orders.o_orderkey, nullptr, config, &rec,
                          "gather_orders");
  if (!build.ok()) return build.status();

  auto count = CountingJoin(build.value(), probe.value(), config, &rec,
                            "join_orders_lineitem");
  if (!count.ok()) return count.status();

  QueryResult result;
  result.count = count.value();
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> Q19Body(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  QueryResult result;
  int branch_no = 0;
  for (const Q19Branch& br : kQ19Branches) {
    const std::string suffix = "_b" + std::to_string(++branch_no);

    auto parts = FilterU8Range(db.part.p_brand, br.brand, br.brand, config,
                               &rec, "filter_brand" + suffix);
    if (!parts.ok()) return parts.status();
    auto parts2 = RefineU8InSet(parts.value(), db.part.p_container,
                                br.container_mask, config, &rec,
                                "refine_container" + suffix);
    if (!parts2.ok()) return parts2.status();
    auto parts3 = RefineU32Range(parts2.value(), db.part.p_size, 1,
                                 br.size_hi, config, &rec,
                                 "refine_size" + suffix);
    if (!parts3.ok()) return parts3.status();
    auto build = GatherKeys(db.part.p_partkey, &parts3.value(), config,
                            &rec, "gather_part" + suffix);
    if (!build.ok()) return build.status();

    auto lines = FilterU32Range(db.lineitem.l_quantity, br.qty_lo,
                                br.qty_hi, config, &rec,
                                "filter_quantity" + suffix);
    if (!lines.ok()) return lines.status();
    auto lines2 = RefineU8InSet(lines.value(), db.lineitem.l_shipmode,
                                kQ19ModeMask, config, &rec,
                                "refine_shipmode" + suffix);
    if (!lines2.ok()) return lines2.status();
    auto lines3 = RefineU8InSet(lines2.value(), db.lineitem.l_shipinstruct,
                                Bit(kInstrDeliverInPerson), config, &rec,
                                "refine_shipinstruct" + suffix);
    if (!lines3.ok()) return lines3.status();
    auto probe = GatherKeys(db.lineitem.l_partkey, &lines3.value(), config,
                            &rec, "gather_lineitem" + suffix);
    if (!probe.ok()) return probe.status();

    auto count = CountingJoin(build.value(), probe.value(), config, &rec,
                              "join_part_lineitem" + suffix);
    if (!count.ok()) return count.status();
    result.count += count.value();
  }

  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> Q12GroupedBody(const Db& db,
                                   const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  // Same selection chain as Q12...
  auto rows4 = Q12Selection(db, config, &rec);
  if (!rows4.ok()) return rows4.status();

  // ... but with the query's real final: count lines per order-priority
  // class of the owning order.
  auto by_prio = GroupCountU8ViaFk(
      db.orders.o_orderpriority, db.lineitem.l_orderkey, rows4.value(),
      kNumOrderPriorities, config, &rec, "group_by_priority");
  if (!by_prio.ok()) return by_prio.status();

  QueryResult result;
  const std::vector<uint64_t>& prio = by_prio.value();
  uint64_t high = prio[kPrioUrgent] + prio[kPrioHigh];
  uint64_t low = 0;
  for (int g = kPrioMedium; g < kNumOrderPriorities; ++g) low += prio[g];
  result.group_counts = {high, low};
  result.count = high + low;
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> Q1Body(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  auto rows = FilterU32Range(db.lineitem.l_shipdate, 0, kQ1Cutoff, config,
                             &rec, "filter_shipdate");
  if (!rows.ok()) return rows.status();

  auto aggs = GroupSumU32By2U8(
      db.lineitem.l_quantity, db.lineitem.l_returnflag, kNumReturnFlags,
      db.lineitem.l_linestatus, kNumLineStatuses, &rows.value(), config,
      &rec, "group_flag_status");
  if (!aggs.ok()) return aggs.status();

  QueryResult result;
  for (const GroupAgg& g : aggs.value()) {
    result.group_counts.push_back(g.count);
    result.count += g.count;
  }
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> Q6Body(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;

  auto rows = FilterU32Range(db.lineitem.l_shipdate, kDate19940101,
                             kDate19950101 - 1, config, &rec,
                             "filter_shipdate");
  if (!rows.ok()) return rows.status();
  auto rows2 = RefineU32Range(rows.value(), db.lineitem.l_discount, 5, 7,
                              config, &rec, "refine_discount");
  if (!rows2.ok()) return rows2.status();
  auto rows3 = RefineU32Range(rows2.value(), db.lineitem.l_quantity, 1,
                              23, config, &rec, "refine_quantity");
  if (!rows3.ok()) return rows3.status();

  auto revenue =
      SumProductU32(db.lineitem.l_extendedprice, db.lineitem.l_discount,
                    rows3.value(), config, &rec, "sum_revenue");
  if (!revenue.ok()) return revenue.status();

  QueryResult result;
  result.count = rows3.value().count();
  result.group_counts = {revenue.value()};
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> DispatchQuery(int query_number, const Db& db,
                                  const QueryConfig& config) {
  switch (query_number) {
    case 1:
      return RunQ1(db, config);
    case 6:
      return RunQ6(db, config);
    case 3:
      return RunQ3(db, config);
    case 10:
      return RunQ10(db, config);
    case 12:
      return RunQ12(db, config);
    case 19:
      return RunQ19(db, config);
    default:
      return Status::InvalidArgument(
          "queries 1, 3, 6, 10, 12, 19 are implemented");
  }
}

template <typename Db>
Result<QueryResult> RunQueryImpl(int query_number, const Db& db,
                                 const QueryConfig& config) {
  obs::QueryReportScope scope("Q" + std::to_string(query_number),
                              config.obs_domain);
  // Attribute this thread's work (and, via the executor, every gang task
  // it dispatches) to the query's domain so concurrent RunQuery calls
  // produce disjoint reports. obs_domain = -1 keeps the historical
  // process-global behaviour.
  obs::ScopedMetricDomain domain_scope(config.obs_domain);
  Result<QueryResult> result = DispatchQuery(query_number, db, config);
  if (!result.ok()) return result;
  std::vector<obs::PhaseTiming> phases;
  phases.reserve(result.value().phases.phases.size());
  for (const perf::PhaseStats& s : result.value().phases.phases) {
    phases.push_back(obs::PhaseTiming{s.name, s.host_ns});
  }
  result.value().report = scope.Finish(std::move(phases));
  return result;
}

}  // namespace

Result<QueryResult> RunQ3(const TpchDb& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ3Fused(db, config);
  return Q3Body(db, config);
}
Result<QueryResult> RunQ3(const TpchDbView& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ3Fused(db, config);
  return Q3Body(db, config);
}

Result<QueryResult> RunQ10(const TpchDb& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ10Fused(db, config);
  return Q10Body(db, config);
}
Result<QueryResult> RunQ10(const TpchDbView& db,
                           const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ10Fused(db, config);
  return Q10Body(db, config);
}

Result<QueryResult> RunQ12(const TpchDb& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ12Fused(db, config);
  return Q12Body(db, config);
}
Result<QueryResult> RunQ12(const TpchDbView& db,
                           const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ12Fused(db, config);
  return Q12Body(db, config);
}

Result<QueryResult> RunQ19(const TpchDb& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ19Fused(db, config);
  return Q19Body(db, config);
}
Result<QueryResult> RunQ19(const TpchDbView& db,
                           const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ19Fused(db, config);
  return Q19Body(db, config);
}

Result<QueryResult> RunQuery(int query_number, const TpchDb& db,
                             const QueryConfig& config) {
  return RunQueryImpl(query_number, db, config);
}
Result<QueryResult> RunQuery(int query_number, const TpchDbView& db,
                             const QueryConfig& config) {
  return RunQueryImpl(query_number, db, config);
}

Result<QueryResult> RunQ12Grouped(const TpchDb& db,
                                  const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ12GroupedFused(db, config);
  return Q12GroupedBody(db, config);
}
Result<QueryResult> RunQ12Grouped(const TpchDbView& db,
                                  const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ12GroupedFused(db, config);
  return Q12GroupedBody(db, config);
}

Result<QueryResult> RunQ1(const TpchDb& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ1Fused(db, config);
  return Q1Body(db, config);
}
Result<QueryResult> RunQ1(const TpchDbView& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ1Fused(db, config);
  return Q1Body(db, config);
}

Result<QueryResult> RunQ6(const TpchDb& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ6Fused(db, config);
  return Q6Body(db, config);
}
Result<QueryResult> RunQ6(const TpchDbView& db, const QueryConfig& config) {
  if (PipelineEnabled(config)) return RunQ6Fused(db, config);
  return Q6Body(db, config);
}

std::pair<uint64_t, uint64_t> ReferenceQ12Grouped(const TpchDb& db) {
  uint64_t high = 0, low = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint8_t mode = db.lineitem.l_shipmode[i];
    bool qualifies =
        (mode == kModeMail || mode == kModeShip) &&
        db.lineitem.l_commitdate[i] < db.lineitem.l_receiptdate[i] &&
        db.lineitem.l_shipdate[i] < db.lineitem.l_commitdate[i] &&
        db.lineitem.l_receiptdate[i] >= kDate19940101 &&
        db.lineitem.l_receiptdate[i] < kDate19950101;
    if (!qualifies) continue;
    uint8_t prio =
        db.orders.o_orderpriority[db.lineitem.l_orderkey[i]];
    if (prio == kPrioUrgent || prio == kPrioHigh) {
      ++high;
    } else {
      ++low;
    }
  }
  return {high, low};
}

std::vector<uint64_t> ReferenceQ1Counts(const TpchDb& db) {
  std::vector<uint64_t> counts(kNumReturnFlags * kNumLineStatuses, 0);
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (db.lineitem.l_shipdate[i] <= kQ1Cutoff) {
      ++counts[db.lineitem.l_returnflag[i] * kNumLineStatuses +
               db.lineitem.l_linestatus[i]];
    }
  }
  return counts;
}

std::vector<uint64_t> ReferenceQ1Sums(const TpchDb& db) {
  std::vector<uint64_t> sums(kNumReturnFlags * kNumLineStatuses, 0);
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (db.lineitem.l_shipdate[i] <= kQ1Cutoff) {
      sums[db.lineitem.l_returnflag[i] * kNumLineStatuses +
           db.lineitem.l_linestatus[i]] += db.lineitem.l_quantity[i];
    }
  }
  return sums;
}

uint64_t ReferenceQ6(const TpchDb& db) {
  uint64_t revenue = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (db.lineitem.l_shipdate[i] >= kDate19940101 &&
        db.lineitem.l_shipdate[i] < kDate19950101 &&
        db.lineitem.l_discount[i] >= 5 && db.lineitem.l_discount[i] <= 7 &&
        db.lineitem.l_quantity[i] < 24) {
      revenue += static_cast<uint64_t>(db.lineitem.l_extendedprice[i]) *
                 db.lineitem.l_discount[i];
    }
  }
  return revenue;
}

// --- Reference implementations (test oracles) ------------------------------

uint64_t ReferenceQ3(const TpchDb& db) {
  std::vector<uint8_t> cust_ok(db.customer.num_rows, 0);
  for (size_t i = 0; i < db.customer.num_rows; ++i) {
    cust_ok[i] = db.customer.c_mktsegment[i] == kSegBuilding;
  }
  std::vector<uint8_t> order_ok(db.orders.num_rows, 0);
  for (size_t i = 0; i < db.orders.num_rows; ++i) {
    order_ok[i] = db.orders.o_orderdate[i] < kDate19950315 &&
                  cust_ok[db.orders.o_custkey[i]];
  }
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    count += db.lineitem.l_shipdate[i] > kDate19950315 &&
             order_ok[db.lineitem.l_orderkey[i]];
  }
  return count;
}

uint64_t ReferenceQ10(const TpchDb& db) {
  std::vector<uint8_t> order_ok(db.orders.num_rows, 0);
  for (size_t i = 0; i < db.orders.num_rows; ++i) {
    order_ok[i] = db.orders.o_orderdate[i] >= kDate19931001 &&
                  db.orders.o_orderdate[i] < kDate19940101;
  }
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    count += db.lineitem.l_returnflag[i] == kFlagR &&
             order_ok[db.lineitem.l_orderkey[i]];
  }
  return count;
}

uint64_t ReferenceQ12(const TpchDb& db) {
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint8_t mode = db.lineitem.l_shipmode[i];
    count += (mode == kModeMail || mode == kModeShip) &&
             db.lineitem.l_commitdate[i] < db.lineitem.l_receiptdate[i] &&
             db.lineitem.l_shipdate[i] < db.lineitem.l_commitdate[i] &&
             db.lineitem.l_receiptdate[i] >= kDate19940101 &&
             db.lineitem.l_receiptdate[i] < kDate19950101;
  }
  return count;
}

uint64_t ReferenceQ19(const TpchDb& db) {
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint8_t mode = db.lineitem.l_shipmode[i];
    if ((mode != kModeAir && mode != kModeRegAir) ||
        db.lineitem.l_shipinstruct[i] != kInstrDeliverInPerson) {
      continue;
    }
    const uint32_t part = db.lineitem.l_partkey[i];
    const uint32_t qty = db.lineitem.l_quantity[i];
    for (const Q19Branch& br : kQ19Branches) {
      if (db.part.p_brand[part] == br.brand &&
          ((br.container_mask >> db.part.p_container[part]) & 1u) != 0 &&
          qty >= br.qty_lo && qty <= br.qty_hi &&
          db.part.p_size[part] >= 1 && db.part.p_size[part] <= br.size_hi) {
        ++count;
        break;  // branches are brand-disjoint; at most one can match
      }
    }
  }
  return count;
}

}  // namespace sgxb::tpch
