#include "tpch/queries.h"

#include <string>
#include <vector>

#include "plan/catalog.h"
#include "plan/planner.h"

namespace sgxb::tpch {

// Every query runs through the planner now: the catalog
// (plan/catalog.h) declares each query as a logical plan, and
// plan::ExecutePlan picks the lowering (materializing operators vs
// fused pipelines) plus the per-join flavour. The hand-written
// per-query drivers this file used to hold are gone; only the
// single-threaded reference oracles remain, deliberately naive and
// independent of the plan layer.

namespace {

Status UnknownQueryError(int query_number) {
  std::string known;
  for (const plan::CatalogEntry& e : plan::Catalog()) {
    if (!known.empty()) known += ", ";
    known += std::to_string(e.query_number);
  }
  return Status::InvalidArgument("unknown query " +
                                 std::to_string(query_number) +
                                 "; catalog has " + known);
}

Result<QueryResult> CatalogQuery(int query_number, const TpchDbView& db,
                                 const QueryConfig& config) {
  const plan::CatalogEntry* entry = plan::FindQuery(query_number);
  if (entry == nullptr) return UnknownQueryError(query_number);
  return plan::ExecutePlan(entry->plan, db, config);
}

Result<QueryResult> ReportedPlan(const plan::Plan& plan,
                                 const std::string& report_name,
                                 const TpchDbView& db,
                                 const QueryConfig& config) {
  obs::QueryReportScope scope(report_name, config.obs_domain);
  // Attribute this thread's work (and, via the executor, every gang task
  // it dispatches) to the query's domain so concurrent RunQuery calls
  // produce disjoint reports. obs_domain = -1 keeps the historical
  // process-global behaviour.
  obs::ScopedMetricDomain domain_scope(config.obs_domain);
  Result<QueryResult> result = plan::ExecutePlan(plan, db, config);
  if (!result.ok()) return result;
  std::vector<obs::PhaseTiming> phases;
  phases.reserve(result.value().phases.phases.size());
  for (const perf::PhaseStats& s : result.value().phases.phases) {
    phases.push_back(obs::PhaseTiming{s.name, s.host_ns});
  }
  result.value().report = scope.Finish(std::move(phases));
  result.value().report.tuning = result.value().tuning;
  return result;
}

}  // namespace

Result<QueryResult> RunQ3(const TpchDb& db, const QueryConfig& config) {
  return CatalogQuery(3, ViewOf(db), config);
}
Result<QueryResult> RunQ3(const TpchDbView& db, const QueryConfig& config) {
  return CatalogQuery(3, db, config);
}

Result<QueryResult> RunQ10(const TpchDb& db, const QueryConfig& config) {
  return CatalogQuery(10, ViewOf(db), config);
}
Result<QueryResult> RunQ10(const TpchDbView& db,
                           const QueryConfig& config) {
  return CatalogQuery(10, db, config);
}

Result<QueryResult> RunQ12(const TpchDb& db, const QueryConfig& config) {
  return CatalogQuery(12, ViewOf(db), config);
}
Result<QueryResult> RunQ12(const TpchDbView& db,
                           const QueryConfig& config) {
  return CatalogQuery(12, db, config);
}

Result<QueryResult> RunQ19(const TpchDb& db, const QueryConfig& config) {
  return CatalogQuery(19, ViewOf(db), config);
}
Result<QueryResult> RunQ19(const TpchDbView& db,
                           const QueryConfig& config) {
  return CatalogQuery(19, db, config);
}

Result<QueryResult> RunQuery(int query_number, const TpchDb& db,
                             const QueryConfig& config) {
  return RunQuery(query_number, ViewOf(db), config);
}
Result<QueryResult> RunQuery(int query_number, const TpchDbView& db,
                             const QueryConfig& config) {
  const plan::CatalogEntry* entry = plan::FindQuery(query_number);
  if (entry == nullptr) return UnknownQueryError(query_number);
  return ReportedPlan(entry->plan, "Q" + std::to_string(query_number), db,
                      config);
}

Result<QueryResult> RunPlan(const plan::Plan& plan, const TpchDb& db,
                            const QueryConfig& config) {
  return RunPlan(plan, ViewOf(db), config);
}
Result<QueryResult> RunPlan(const plan::Plan& plan, const TpchDbView& db,
                            const QueryConfig& config) {
  return ReportedPlan(plan, plan.name(), db, config);
}

Result<QueryResult> RunQ12Grouped(const TpchDb& db,
                                  const QueryConfig& config) {
  return CatalogQuery(plan::kQueryQ12Grouped, ViewOf(db), config);
}
Result<QueryResult> RunQ12Grouped(const TpchDbView& db,
                                  const QueryConfig& config) {
  return CatalogQuery(plan::kQueryQ12Grouped, db, config);
}

Result<QueryResult> RunQ1(const TpchDb& db, const QueryConfig& config) {
  return CatalogQuery(1, ViewOf(db), config);
}
Result<QueryResult> RunQ1(const TpchDbView& db, const QueryConfig& config) {
  return CatalogQuery(1, db, config);
}

Result<QueryResult> RunQ6(const TpchDb& db, const QueryConfig& config) {
  return CatalogQuery(6, ViewOf(db), config);
}
Result<QueryResult> RunQ6(const TpchDbView& db, const QueryConfig& config) {
  return CatalogQuery(6, db, config);
}

std::pair<uint64_t, uint64_t> ReferenceQ12Grouped(const TpchDb& db) {
  uint64_t high = 0, low = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint8_t mode = db.lineitem.l_shipmode[i];
    bool qualifies =
        (mode == kModeMail || mode == kModeShip) &&
        db.lineitem.l_commitdate[i] < db.lineitem.l_receiptdate[i] &&
        db.lineitem.l_shipdate[i] < db.lineitem.l_commitdate[i] &&
        db.lineitem.l_receiptdate[i] >= kDate19940101 &&
        db.lineitem.l_receiptdate[i] < kDate19950101;
    if (!qualifies) continue;
    uint8_t prio =
        db.orders.o_orderpriority[db.lineitem.l_orderkey[i]];
    if (prio == kPrioUrgent || prio == kPrioHigh) {
      ++high;
    } else {
      ++low;
    }
  }
  return {high, low};
}

std::vector<uint64_t> ReferenceQ1Counts(const TpchDb& db) {
  std::vector<uint64_t> counts(kNumReturnFlags * kNumLineStatuses, 0);
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (db.lineitem.l_shipdate[i] <= kQ1Cutoff) {
      ++counts[db.lineitem.l_returnflag[i] * kNumLineStatuses +
               db.lineitem.l_linestatus[i]];
    }
  }
  return counts;
}

std::vector<uint64_t> ReferenceQ1Sums(const TpchDb& db) {
  std::vector<uint64_t> sums(kNumReturnFlags * kNumLineStatuses, 0);
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (db.lineitem.l_shipdate[i] <= kQ1Cutoff) {
      sums[db.lineitem.l_returnflag[i] * kNumLineStatuses +
           db.lineitem.l_linestatus[i]] += db.lineitem.l_quantity[i];
    }
  }
  return sums;
}

uint64_t ReferenceQ6(const TpchDb& db) {
  uint64_t revenue = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    if (db.lineitem.l_shipdate[i] >= kDate19940101 &&
        db.lineitem.l_shipdate[i] < kDate19950101 &&
        db.lineitem.l_discount[i] >= 5 && db.lineitem.l_discount[i] <= 7 &&
        db.lineitem.l_quantity[i] < 24) {
      revenue += static_cast<uint64_t>(db.lineitem.l_extendedprice[i]) *
                 db.lineitem.l_discount[i];
    }
  }
  return revenue;
}

// --- Reference implementations (test oracles) ------------------------------

uint64_t ReferenceQ3(const TpchDb& db) {
  std::vector<uint8_t> cust_ok(db.customer.num_rows, 0);
  for (size_t i = 0; i < db.customer.num_rows; ++i) {
    cust_ok[i] = db.customer.c_mktsegment[i] == kSegBuilding;
  }
  std::vector<uint8_t> order_ok(db.orders.num_rows, 0);
  for (size_t i = 0; i < db.orders.num_rows; ++i) {
    order_ok[i] = db.orders.o_orderdate[i] < kDate19950315 &&
                  cust_ok[db.orders.o_custkey[i]];
  }
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    count += db.lineitem.l_shipdate[i] > kDate19950315 &&
             order_ok[db.lineitem.l_orderkey[i]];
  }
  return count;
}

uint64_t ReferenceQ10(const TpchDb& db) {
  std::vector<uint8_t> order_ok(db.orders.num_rows, 0);
  for (size_t i = 0; i < db.orders.num_rows; ++i) {
    order_ok[i] = db.orders.o_orderdate[i] >= kDate19931001 &&
                  db.orders.o_orderdate[i] < kDate19940101;
  }
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    count += db.lineitem.l_returnflag[i] == kFlagR &&
             order_ok[db.lineitem.l_orderkey[i]];
  }
  return count;
}

uint64_t ReferenceQ12(const TpchDb& db) {
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint8_t mode = db.lineitem.l_shipmode[i];
    count += (mode == kModeMail || mode == kModeShip) &&
             db.lineitem.l_commitdate[i] < db.lineitem.l_receiptdate[i] &&
             db.lineitem.l_shipdate[i] < db.lineitem.l_commitdate[i] &&
             db.lineitem.l_receiptdate[i] >= kDate19940101 &&
             db.lineitem.l_receiptdate[i] < kDate19950101;
  }
  return count;
}

uint64_t ReferenceQ19(const TpchDb& db) {
  uint64_t count = 0;
  for (size_t i = 0; i < db.lineitem.num_rows; ++i) {
    const uint8_t mode = db.lineitem.l_shipmode[i];
    if ((mode != kModeAir && mode != kModeRegAir) ||
        db.lineitem.l_shipinstruct[i] != kInstrDeliverInPerson) {
      continue;
    }
    const uint32_t part = db.lineitem.l_partkey[i];
    const uint32_t qty = db.lineitem.l_quantity[i];
    for (const Q19Branch& br : kQ19Branches) {
      if (db.part.p_brand[part] == br.brand &&
          ((br.container_mask >> db.part.p_container[part]) & 1u) != 0 &&
          qty >= br.qty_lo && qty <= br.qty_hi &&
          db.part.p_size[part] >= 1 && db.part.p_size[part] <= br.size_hi) {
        ++count;
        break;  // branches are brand-disjoint; at most one can match
      }
    }
  }
  return count;
}

}  // namespace sgxb::tpch
