#include "tpch/paged_db.h"

namespace sgxb::tpch {

namespace {

template <typename T>
Status Register(storage::BufferManager* bm, const char* name,
                const Column<T>& column, storage::PagedColumn<T>** out) {
  auto r = bm->AddColumn(std::string(name), column);
  if (!r.ok()) return r.status();
  *out = r.value();
  return Status::OK();
}

}  // namespace

Result<PagedTpchDb> PagedTpchDb::Build(const TpchDb& db,
                                       storage::BufferManager* bm) {
  PagedTpchDb p;
  p.scale_factor_ = db.scale_factor;
  p.customer_rows_ = db.customer.num_rows;
  p.orders_rows_ = db.orders.num_rows;
  p.lineitem_rows_ = db.lineitem.num_rows;
  p.part_rows_ = db.part.num_rows;

  SGXB_RETURN_NOT_OK(Register(bm, "customer.c_custkey",
                              db.customer.c_custkey, &p.c_custkey_));
  SGXB_RETURN_NOT_OK(Register(bm, "customer.c_mktsegment",
                              db.customer.c_mktsegment, &p.c_mktsegment_));
  SGXB_RETURN_NOT_OK(Register(bm, "orders.o_orderkey", db.orders.o_orderkey,
                              &p.o_orderkey_));
  SGXB_RETURN_NOT_OK(Register(bm, "orders.o_custkey", db.orders.o_custkey,
                              &p.o_custkey_));
  SGXB_RETURN_NOT_OK(Register(bm, "orders.o_orderdate",
                              db.orders.o_orderdate, &p.o_orderdate_));
  SGXB_RETURN_NOT_OK(Register(bm, "orders.o_orderpriority",
                              db.orders.o_orderpriority,
                              &p.o_orderpriority_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_orderkey",
                              db.lineitem.l_orderkey, &p.l_orderkey_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_partkey",
                              db.lineitem.l_partkey, &p.l_partkey_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_quantity",
                              db.lineitem.l_quantity, &p.l_quantity_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_extendedprice",
                              db.lineitem.l_extendedprice,
                              &p.l_extendedprice_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_discount",
                              db.lineitem.l_discount, &p.l_discount_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_shipdate",
                              db.lineitem.l_shipdate, &p.l_shipdate_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_commitdate",
                              db.lineitem.l_commitdate, &p.l_commitdate_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_receiptdate",
                              db.lineitem.l_receiptdate,
                              &p.l_receiptdate_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_shipmode",
                              db.lineitem.l_shipmode, &p.l_shipmode_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_shipinstruct",
                              db.lineitem.l_shipinstruct,
                              &p.l_shipinstruct_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_returnflag",
                              db.lineitem.l_returnflag, &p.l_returnflag_));
  SGXB_RETURN_NOT_OK(Register(bm, "lineitem.l_linestatus",
                              db.lineitem.l_linestatus, &p.l_linestatus_));
  SGXB_RETURN_NOT_OK(
      Register(bm, "part.p_partkey", db.part.p_partkey, &p.p_partkey_));
  SGXB_RETURN_NOT_OK(
      Register(bm, "part.p_size", db.part.p_size, &p.p_size_));
  SGXB_RETURN_NOT_OK(
      Register(bm, "part.p_brand", db.part.p_brand, &p.p_brand_));
  SGXB_RETURN_NOT_OK(Register(bm, "part.p_container", db.part.p_container,
                              &p.p_container_));
  return p;
}

TpchDbView PagedTpchDb::View() const {
  TpchDbView v;
  v.scale_factor = scale_factor_;
  v.customer.num_rows = customer_rows_;
  v.customer.c_custkey = c_custkey_;
  v.customer.c_mktsegment = c_mktsegment_;
  v.orders.num_rows = orders_rows_;
  v.orders.o_orderkey = o_orderkey_;
  v.orders.o_custkey = o_custkey_;
  v.orders.o_orderdate = o_orderdate_;
  v.orders.o_orderpriority = o_orderpriority_;
  v.lineitem.num_rows = lineitem_rows_;
  v.lineitem.l_orderkey = l_orderkey_;
  v.lineitem.l_partkey = l_partkey_;
  v.lineitem.l_quantity = l_quantity_;
  v.lineitem.l_extendedprice = l_extendedprice_;
  v.lineitem.l_discount = l_discount_;
  v.lineitem.l_shipdate = l_shipdate_;
  v.lineitem.l_commitdate = l_commitdate_;
  v.lineitem.l_receiptdate = l_receiptdate_;
  v.lineitem.l_shipmode = l_shipmode_;
  v.lineitem.l_shipinstruct = l_shipinstruct_;
  v.lineitem.l_returnflag = l_returnflag_;
  v.lineitem.l_linestatus = l_linestatus_;
  v.part.num_rows = part_rows_;
  v.part.p_partkey = p_partkey_;
  v.part.p_size = p_size_;
  v.part.p_brand = p_brand_;
  v.part.p_container = p_container_;
  return v;
}

}  // namespace sgxb::tpch
