// View of a TPC-H database whose columns may be resident or paged.
//
// TpchDbView mirrors TpchDb field-for-field but holds
// storage::ColumnView instead of Column, so the same query bodies
// (queries.cc, pipelines.cc — templated over the db type) run over an
// all-resident TpchDb or over a PagedTpchDb whose columns live in the
// out-of-EPC buffer manager (docs/storage.md). ViewOf(db) adapts a
// resident database; PagedTpchDb::View() adapts a paged one.

#ifndef SGXB_TPCH_DB_VIEW_H_
#define SGXB_TPCH_DB_VIEW_H_

#include "storage/column_view.h"
#include "tpch/tpch_schema.h"

namespace sgxb::tpch {

struct CustomerTableView {
  size_t num_rows = 0;
  storage::ColumnView<uint32_t> c_custkey;
  storage::ColumnView<uint8_t> c_mktsegment;
};

struct OrdersTableView {
  size_t num_rows = 0;
  storage::ColumnView<uint32_t> o_orderkey;
  storage::ColumnView<uint32_t> o_custkey;
  storage::ColumnView<uint32_t> o_orderdate;
  storage::ColumnView<uint8_t> o_orderpriority;
};

struct LineitemTableView {
  size_t num_rows = 0;
  storage::ColumnView<uint32_t> l_orderkey;
  storage::ColumnView<uint32_t> l_partkey;
  storage::ColumnView<uint32_t> l_quantity;
  storage::ColumnView<uint32_t> l_extendedprice;
  storage::ColumnView<uint32_t> l_discount;
  storage::ColumnView<uint32_t> l_shipdate;
  storage::ColumnView<uint32_t> l_commitdate;
  storage::ColumnView<uint32_t> l_receiptdate;
  storage::ColumnView<uint8_t> l_shipmode;
  storage::ColumnView<uint8_t> l_shipinstruct;
  storage::ColumnView<uint8_t> l_returnflag;
  storage::ColumnView<uint8_t> l_linestatus;
};

struct PartTableView {
  size_t num_rows = 0;
  storage::ColumnView<uint32_t> p_partkey;
  storage::ColumnView<uint32_t> p_size;
  storage::ColumnView<uint8_t> p_brand;
  storage::ColumnView<uint8_t> p_container;
};

struct TpchDbView {
  double scale_factor = 0;
  CustomerTableView customer;
  OrdersTableView orders;
  LineitemTableView lineitem;
  PartTableView part;
};

/// \brief All-resident view of `db` (columns stay owned by `db`).
inline TpchDbView ViewOf(const TpchDb& db) {
  TpchDbView v;
  v.scale_factor = db.scale_factor;
  v.customer.num_rows = db.customer.num_rows;
  v.customer.c_custkey = db.customer.c_custkey;
  v.customer.c_mktsegment = db.customer.c_mktsegment;
  v.orders.num_rows = db.orders.num_rows;
  v.orders.o_orderkey = db.orders.o_orderkey;
  v.orders.o_custkey = db.orders.o_custkey;
  v.orders.o_orderdate = db.orders.o_orderdate;
  v.orders.o_orderpriority = db.orders.o_orderpriority;
  v.lineitem.num_rows = db.lineitem.num_rows;
  v.lineitem.l_orderkey = db.lineitem.l_orderkey;
  v.lineitem.l_partkey = db.lineitem.l_partkey;
  v.lineitem.l_quantity = db.lineitem.l_quantity;
  v.lineitem.l_extendedprice = db.lineitem.l_extendedprice;
  v.lineitem.l_discount = db.lineitem.l_discount;
  v.lineitem.l_shipdate = db.lineitem.l_shipdate;
  v.lineitem.l_commitdate = db.lineitem.l_commitdate;
  v.lineitem.l_receiptdate = db.lineitem.l_receiptdate;
  v.lineitem.l_shipmode = db.lineitem.l_shipmode;
  v.lineitem.l_shipinstruct = db.lineitem.l_shipinstruct;
  v.lineitem.l_returnflag = db.lineitem.l_returnflag;
  v.lineitem.l_linestatus = db.lineitem.l_linestatus;
  v.part.num_rows = db.part.num_rows;
  v.part.p_partkey = db.part.p_partkey;
  v.part.p_size = db.part.p_size;
  v.part.p_brand = db.part.p_brand;
  v.part.p_container = db.part.p_container;
  return v;
}

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_DB_VIEW_H_
