// Integer-encoded TPC-H schema (paper Section 6).
//
// The paper's query evaluation "represent[s] dates and categorical strings
// as integers, mimicking the evaluation setup for CrkJoin", removes all
// operators other than scans and joins, and replaces the final aggregation
// with count(*). This schema matches that setup: only the columns touched
// by Q3, Q10, Q12, and Q19 exist; dates are days since 1992-01-01; all
// categorical columns are small integer codes.

#ifndef SGXB_TPCH_TPCH_SCHEMA_H_
#define SGXB_TPCH_TPCH_SCHEMA_H_

#include <cstdint>

#include "common/relation.h"

namespace sgxb::tpch {

/// \brief Days since 1992-01-01 for a civil date (proleptic Gregorian).
constexpr int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  // Howard Hinnant's days_from_civil, rebased to 1992-01-01.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const int64_t civil = era * 146097LL + static_cast<int64_t>(doe) - 719468;
  constexpr int64_t kEpoch1992 = 8035;  // days_from_civil(1992,1,1)
  return civil - kEpoch1992;
}

/// \brief Encoded date constants used by the queries.
inline constexpr uint32_t kDate19930701 =
    static_cast<uint32_t>(DaysFromCivil(1993, 7, 1));
inline constexpr uint32_t kDate19931001 =
    static_cast<uint32_t>(DaysFromCivil(1993, 10, 1));
inline constexpr uint32_t kDate19940101 =
    static_cast<uint32_t>(DaysFromCivil(1994, 1, 1));
inline constexpr uint32_t kDate19950101 =
    static_cast<uint32_t>(DaysFromCivil(1995, 1, 1));
inline constexpr uint32_t kDate19950315 =
    static_cast<uint32_t>(DaysFromCivil(1995, 3, 15));
inline constexpr uint32_t kDate19950617 =
    static_cast<uint32_t>(DaysFromCivil(1995, 6, 17));
inline constexpr uint32_t kDate19980802 =
    static_cast<uint32_t>(DaysFromCivil(1998, 8, 2));

// --- Categorical encodings ---------------------------------------------

enum MktSegment : uint8_t {
  kSegAutomobile = 0,
  kSegBuilding = 1,
  kSegFurniture = 2,
  kSegMachinery = 3,
  kSegHousehold = 4,
  kNumSegments = 5,
};

enum ShipMode : uint8_t {
  kModeAir = 0,
  kModeRail = 1,
  kModeMail = 2,
  kModeTruck = 3,
  kModeFob = 4,
  kModeShip = 5,
  kModeRegAir = 6,
  kNumShipModes = 7,
};

enum ShipInstruct : uint8_t {
  kInstrDeliverInPerson = 0,
  kInstrCollectCod = 1,
  kInstrNone = 2,
  kInstrTakeBackReturn = 3,
  kNumShipInstructs = 4,
};

enum ReturnFlag : uint8_t {
  kFlagA = 0,
  kFlagN = 1,
  kFlagR = 2,
  kNumReturnFlags = 3,
};

enum LineStatus : uint8_t {
  kStatusF = 0,  // shipped on or before CURRENTDATE
  kStatusO = 1,  // open (shipped after CURRENTDATE)
  kNumLineStatuses = 2,
};

inline constexpr int kNumBrands = 25;      // 'Brand#11' .. 'Brand#55'
inline constexpr int kNumContainers = 40;  // 5 sizes x 8 kinds

// --- Tables -----------------------------------------------------------------

struct CustomerTable {
  size_t num_rows = 0;
  Column<uint32_t> c_custkey;
  Column<uint8_t> c_mktsegment;
};

enum OrderPriority : uint8_t {
  kPrioUrgent = 0,  // '1-URGENT'
  kPrioHigh = 1,    // '2-HIGH'
  kPrioMedium = 2,
  kPrioNotSpecified = 3,
  kPrioLow = 4,
  kNumOrderPriorities = 5,
};

struct OrdersTable {
  size_t num_rows = 0;
  Column<uint32_t> o_orderkey;
  Column<uint32_t> o_custkey;
  Column<uint32_t> o_orderdate;
  Column<uint8_t> o_orderpriority;
};

struct LineitemTable {
  size_t num_rows = 0;
  Column<uint32_t> l_orderkey;
  Column<uint32_t> l_partkey;
  Column<uint32_t> l_quantity;   // 1..50
  Column<uint32_t> l_extendedprice;  // cents
  Column<uint32_t> l_discount;       // percent, 0..10
  Column<uint32_t> l_shipdate;
  Column<uint32_t> l_commitdate;
  Column<uint32_t> l_receiptdate;
  Column<uint8_t> l_shipmode;
  Column<uint8_t> l_shipinstruct;
  Column<uint8_t> l_returnflag;
  Column<uint8_t> l_linestatus;
};

struct PartTable {
  size_t num_rows = 0;
  Column<uint32_t> p_partkey;
  Column<uint32_t> p_size;  // 1..50
  Column<uint8_t> p_brand;
  Column<uint8_t> p_container;
};

/// \brief The database: the four tables the evaluated queries touch.
struct TpchDb {
  double scale_factor = 0;
  CustomerTable customer;
  OrdersTable orders;
  LineitemTable lineitem;
  PartTable part;
};

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_TPCH_SCHEMA_H_
