// Fused, morsel-driven TPC-H entry points (docs/pipelines.md).
//
// One entry point per query, mirroring the RunQ* signatures in
// queries.h, each forcing the fused lowering of the query's catalog
// plan (plan/catalog.h): selections and refinements carry per-morsel
// selection vectors in worker-local arena scratch instead of global
// row-id lists, probes run against shared bucket-chained hash tables
// (join::BucketChainTable) with the configured batched driver, and only
// pipeline breakers — hash-table builds and final aggregates — write
// global state. Results are byte-identical to the materializing plans
// (tests/tpch/pipeline_test.cc proves it across the full config matrix).
//
// The per-query fused drivers that used to live behind these functions
// were replaced by the generic plan compiler (plan/fused.cc); these
// wrappers remain as the stable "force the fused mode" API. Callers
// normally go through RunQ*/RunQuery, where the planner picks the mode
// (QueryConfig::pipeline / SGXBENCH_PIPELINE / cost model).

#ifndef SGXB_TPCH_PIPELINES_H_
#define SGXB_TPCH_PIPELINES_H_

#include "tpch/queries.h"

namespace sgxb::tpch {

// Each entry point also has a TpchDbView overload (tpch/db_view.h): the
// fused plans run unchanged over paged columns — morsel stages pin one
// partition run at a time via storage::ForEachRun / ColumnReader.

Result<QueryResult> RunQ1Fused(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ3Fused(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ6Fused(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ10Fused(const TpchDb& db,
                                const QueryConfig& config);
Result<QueryResult> RunQ12Fused(const TpchDb& db,
                                const QueryConfig& config);
Result<QueryResult> RunQ19Fused(const TpchDb& db,
                                const QueryConfig& config);
Result<QueryResult> RunQ12GroupedFused(const TpchDb& db,
                                       const QueryConfig& config);

Result<QueryResult> RunQ1Fused(const TpchDbView& db,
                               const QueryConfig& config);
Result<QueryResult> RunQ3Fused(const TpchDbView& db,
                               const QueryConfig& config);
Result<QueryResult> RunQ6Fused(const TpchDbView& db,
                               const QueryConfig& config);
Result<QueryResult> RunQ10Fused(const TpchDbView& db,
                                const QueryConfig& config);
Result<QueryResult> RunQ12Fused(const TpchDbView& db,
                                const QueryConfig& config);
Result<QueryResult> RunQ19Fused(const TpchDbView& db,
                                const QueryConfig& config);
Result<QueryResult> RunQ12GroupedFused(const TpchDbView& db,
                                       const QueryConfig& config);

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_PIPELINES_H_
