// Predicate constants shared by the two execution modes of the simplified
// TPC-H queries: the materializing plans and reference oracles
// (queries.cc) and the fused morsel-driven plans (pipelines.cc) must
// evaluate exactly the same predicates, so the constants live once here.

#ifndef SGXB_TPCH_QUERY_CONSTANTS_H_
#define SGXB_TPCH_QUERY_CONSTANTS_H_

#include <cstdint>

#include "tpch/tpch_schema.h"

namespace sgxb::tpch {

constexpr uint64_t Bit(uint8_t code) { return uint64_t{1} << code; }

// Q12 ship modes: MAIL and SHIP.
inline constexpr uint64_t kQ12ModeMask = Bit(kModeMail) | Bit(kModeShip);
// Q19 ship modes: AIR and AIR REG.
inline constexpr uint64_t kQ19ModeMask = Bit(kModeAir) | Bit(kModeRegAir);

// Q19 branch parameters (brand codes are arbitrary but fixed; containers
// encode size*8+kind, see tpch_schema.h).
struct Q19Branch {
  uint8_t brand;
  uint64_t container_mask;
  uint32_t qty_lo;
  uint32_t qty_hi;
  uint32_t size_hi;
};

inline constexpr Q19Branch kQ19Branches[3] = {
    // Brand#12, SM CASE/BOX/PACK/PKG, qty in [1, 11], size in [1, 5]
    {3, Bit(0) | Bit(1) | Bit(5) | Bit(4), 1, 11, 5},
    // Brand#23, MED BAG/BOX/PKG/PACK, qty in [10, 20], size in [1, 10]
    {8, Bit(10) | Bit(9) | Bit(12) | Bit(13), 10, 20, 10},
    // Brand#34, LG CASE/BOX/PACK/PKG, qty in [20, 30], size in [1, 15]
    {14, Bit(16) | Bit(17) | Bit(21) | Bit(20), 20, 30, 15},
};

// Q1's shipdate cutoff: date '1998-12-01' - interval '90' day.
inline constexpr uint32_t kQ1Cutoff =
    static_cast<uint32_t>(DaysFromCivil(1998, 9, 2));

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_QUERY_CONSTANTS_H_
