#include "tpch/tpch_gen.h"

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace sgxb::tpch {

size_t CustomerRows(double sf) {
  return std::max<size_t>(1, static_cast<size_t>(sf * 150000));
}
size_t OrdersRows(double sf) {
  return std::max<size_t>(1, static_cast<size_t>(sf * 1500000));
}
size_t PartRows(double sf) {
  return std::max<size_t>(1, static_cast<size_t>(sf * 200000));
}

namespace {

struct ColumnSource {
  mem::MemoryResource* resource;  // wins when non-null
  MemoryRegion region;
};

template <typename T>
Status Alloc(Column<T>* col, size_t n, const ColumnSource& src) {
  auto c = src.resource != nullptr
               ? Column<T>::AllocateFrom(src.resource, n)
               : Column<T>::Allocate(n, src.region);
  if (!c.ok()) return c.status();
  *col = std::move(c).value();
  return Status::OK();
}

}  // namespace

Result<TpchDb> Generate(const GenConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  TpchDb db;
  db.scale_factor = config.scale_factor;
  const ColumnSource src{config.resource, config.region};
  Xoshiro256 rng(config.seed);

  // --- customer ---------------------------------------------------------
  {
    const size_t n = CustomerRows(config.scale_factor);
    db.customer.num_rows = n;
    SGXB_RETURN_NOT_OK(Alloc(&db.customer.c_custkey, n, src));
    SGXB_RETURN_NOT_OK(Alloc(&db.customer.c_mktsegment, n, src));
    for (size_t i = 0; i < n; ++i) {
      db.customer.c_custkey[i] = static_cast<uint32_t>(i);
      db.customer.c_mktsegment[i] =
          static_cast<uint8_t>(rng.NextBounded(kNumSegments));
    }
  }

  // --- orders -----------------------------------------------------------
  const size_t num_orders = OrdersRows(config.scale_factor);
  {
    db.orders.num_rows = num_orders;
    SGXB_RETURN_NOT_OK(Alloc(&db.orders.o_orderkey, num_orders, src));
    SGXB_RETURN_NOT_OK(Alloc(&db.orders.o_custkey, num_orders, src));
    SGXB_RETURN_NOT_OK(Alloc(&db.orders.o_orderdate, num_orders, src));
    SGXB_RETURN_NOT_OK(
        Alloc(&db.orders.o_orderpriority, num_orders, src));
    // dbgen draws order dates uniformly from [STARTDATE, ENDDATE - 151
    // days]; ENDDATE is 1998-12-31 and the last order date is 1998-08-02.
    const uint32_t max_date = kDate19980802;
    const size_t num_cust = db.customer.num_rows;
    for (size_t i = 0; i < num_orders; ++i) {
      db.orders.o_orderkey[i] = static_cast<uint32_t>(i);
      db.orders.o_custkey[i] =
          static_cast<uint32_t>(rng.NextBounded(num_cust));
      db.orders.o_orderdate[i] =
          static_cast<uint32_t>(rng.NextBounded(max_date + 1));
      db.orders.o_orderpriority[i] =
          static_cast<uint8_t>(rng.NextBounded(kNumOrderPriorities));
    }
  }

  // --- lineitem ---------------------------------------------------------
  {
    // dbgen: each order has 1..7 lineitems, uniform. Sizing pass first so
    // the columns can be allocated exactly.
    std::vector<uint8_t> lines_per_order(num_orders);
    size_t total = 0;
    for (size_t i = 0; i < num_orders; ++i) {
      lines_per_order[i] = static_cast<uint8_t>(1 + rng.NextBounded(7));
      total += lines_per_order[i];
    }
    db.lineitem.num_rows = total;
    LineitemTable& l = db.lineitem;
    SGXB_RETURN_NOT_OK(Alloc(&l.l_orderkey, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_partkey, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_quantity, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_extendedprice, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_discount, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_shipdate, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_commitdate, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_receiptdate, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_shipmode, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_shipinstruct, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_returnflag, total, src));
    SGXB_RETURN_NOT_OK(Alloc(&l.l_linestatus, total, src));

    const size_t num_parts = PartRows(config.scale_factor);
    size_t row = 0;
    for (size_t o = 0; o < num_orders; ++o) {
      const uint32_t odate = db.orders.o_orderdate[o];
      for (uint8_t k = 0; k < lines_per_order[o]; ++k) {
        l.l_orderkey[row] = static_cast<uint32_t>(o);
        l.l_partkey[row] =
            static_cast<uint32_t>(rng.NextBounded(num_parts));
        l.l_quantity[row] = static_cast<uint32_t>(1 + rng.NextBounded(50));
        // dbgen: extendedprice = quantity * part retail price; the shape
        // that matters here is a positive value with spread (in cents).
        l.l_extendedprice[row] = static_cast<uint32_t>(
            l.l_quantity[row] * (90000 + rng.NextBounded(110001)) / 100);
        l.l_discount[row] = static_cast<uint32_t>(rng.NextBounded(11));
        // dbgen: shipdate = orderdate + [1, 121]; commitdate =
        // orderdate + [30, 90]; receiptdate = shipdate + [1, 30].
        const uint32_t ship =
            odate + 1 + static_cast<uint32_t>(rng.NextBounded(121));
        const uint32_t commit =
            odate + 30 + static_cast<uint32_t>(rng.NextBounded(61));
        const uint32_t receipt =
            ship + 1 + static_cast<uint32_t>(rng.NextBounded(30));
        l.l_shipdate[row] = ship;
        l.l_commitdate[row] = commit;
        l.l_receiptdate[row] = receipt;
        l.l_shipmode[row] =
            static_cast<uint8_t>(rng.NextBounded(kNumShipModes));
        l.l_shipinstruct[row] =
            static_cast<uint8_t>(rng.NextBounded(kNumShipInstructs));
        // dbgen: returnflag is R or A when the receipt date has passed
        // CURRENTDATE (1995-06-17), N otherwise.
        if (receipt <= kDate19950617) {
          l.l_returnflag[row] =
              rng.NextBounded(2) == 0 ? kFlagA : kFlagR;
        } else {
          l.l_returnflag[row] = kFlagN;
        }
        // dbgen: linestatus is F if shipped by CURRENTDATE, else O.
        l.l_linestatus[row] =
            ship <= kDate19950617 ? kStatusF : kStatusO;
        ++row;
      }
    }
  }

  // --- part -------------------------------------------------------------
  {
    const size_t n = PartRows(config.scale_factor);
    db.part.num_rows = n;
    SGXB_RETURN_NOT_OK(Alloc(&db.part.p_partkey, n, src));
    SGXB_RETURN_NOT_OK(Alloc(&db.part.p_size, n, src));
    SGXB_RETURN_NOT_OK(Alloc(&db.part.p_brand, n, src));
    SGXB_RETURN_NOT_OK(Alloc(&db.part.p_container, n, src));
    for (size_t i = 0; i < n; ++i) {
      db.part.p_partkey[i] = static_cast<uint32_t>(i);
      db.part.p_size[i] = static_cast<uint32_t>(1 + rng.NextBounded(50));
      db.part.p_brand[i] =
          static_cast<uint8_t>(rng.NextBounded(kNumBrands));
      db.part.p_container[i] =
          static_cast<uint8_t>(rng.NextBounded(kNumContainers));
    }
  }

  return db;
}

}  // namespace sgxb::tpch
