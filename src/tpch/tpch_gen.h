// TPC-H data generator (dbgen stand-in).
//
// Generates the four tables of tpch_schema.h with the cardinalities and
// value distributions of TPC-H dbgen, restricted to the columns the
// evaluated queries touch: customer = SF * 150k, orders = SF * 1.5M (order
// dates uniform over [1992-01-01, 1998-08-02]), lineitem = 1..7 lines per
// order (≈ SF * 6M) with ship/commit/receipt dates derived from the order
// date exactly as dbgen derives them, part = SF * 200k. Keys are dense
// (dbgen's sparse order keys are an artifact our queries do not depend
// on). Deterministic for a given seed.

#ifndef SGXB_TPCH_TPCH_GEN_H_
#define SGXB_TPCH_TPCH_GEN_H_

#include "common/status.h"
#include "mem/memory_resource.h"
#include "tpch/tpch_schema.h"

namespace sgxb::tpch {

struct GenConfig {
  double scale_factor = 0.01;
  MemoryRegion region = MemoryRegion::kUntrusted;
  uint64_t seed = 19920101;
  /// When set, base-table columns come from this resource (its placement
  /// tag supersedes `region`) — e.g. mem::ForEnclave(&enclave) to charge
  /// the database against the enclave heap accounting.
  mem::MemoryResource* resource = nullptr;
};

/// \brief Generates a database at the given scale factor.
Result<TpchDb> Generate(const GenConfig& config);

/// \brief Expected row counts for a scale factor (lineitem approximate).
size_t CustomerRows(double sf);
size_t OrdersRows(double sf);
size_t PartRows(double sf);

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_TPCH_GEN_H_
