#include "tpch/pipelines.h"

#include "plan/catalog.h"
#include "plan/planner.h"

namespace sgxb::tpch {

namespace {

// Forces the fused lowering of a catalog plan regardless of the
// planner's own mode choice; everything else (join flavour, probe
// scheduling) still resolves through DecideFor.
Result<QueryResult> Fused(int query_number, const TpchDbView& db,
                          const QueryConfig& config) {
  const plan::CatalogEntry* entry = plan::FindQuery(query_number);
  if (entry == nullptr) {
    return Status::InvalidArgument("query " +
                                   std::to_string(query_number) +
                                   " is not in the plan catalog");
  }
  QueryConfig fused_config = config;
  fused_config.pipeline = true;
  return plan::ExecutePlan(entry->plan, db, fused_config);
}

}  // namespace

Result<QueryResult> RunQ1Fused(const TpchDb& db,
                               const QueryConfig& config) {
  return Fused(1, ViewOf(db), config);
}
Result<QueryResult> RunQ1Fused(const TpchDbView& db,
                               const QueryConfig& config) {
  return Fused(1, db, config);
}

Result<QueryResult> RunQ3Fused(const TpchDb& db,
                               const QueryConfig& config) {
  return Fused(3, ViewOf(db), config);
}
Result<QueryResult> RunQ3Fused(const TpchDbView& db,
                               const QueryConfig& config) {
  return Fused(3, db, config);
}

Result<QueryResult> RunQ6Fused(const TpchDb& db,
                               const QueryConfig& config) {
  return Fused(6, ViewOf(db), config);
}
Result<QueryResult> RunQ6Fused(const TpchDbView& db,
                               const QueryConfig& config) {
  return Fused(6, db, config);
}

Result<QueryResult> RunQ10Fused(const TpchDb& db,
                                const QueryConfig& config) {
  return Fused(10, ViewOf(db), config);
}
Result<QueryResult> RunQ10Fused(const TpchDbView& db,
                                const QueryConfig& config) {
  return Fused(10, db, config);
}

Result<QueryResult> RunQ12Fused(const TpchDb& db,
                                const QueryConfig& config) {
  return Fused(12, ViewOf(db), config);
}
Result<QueryResult> RunQ12Fused(const TpchDbView& db,
                                const QueryConfig& config) {
  return Fused(12, db, config);
}

Result<QueryResult> RunQ19Fused(const TpchDb& db,
                                const QueryConfig& config) {
  return Fused(19, ViewOf(db), config);
}
Result<QueryResult> RunQ19Fused(const TpchDbView& db,
                                const QueryConfig& config) {
  return Fused(19, db, config);
}

Result<QueryResult> RunQ12GroupedFused(const TpchDb& db,
                                       const QueryConfig& config) {
  return Fused(plan::kQueryQ12Grouped, ViewOf(db), config);
}
Result<QueryResult> RunQ12GroupedFused(const TpchDbView& db,
                                       const QueryConfig& config) {
  return Fused(plan::kQueryQ12Grouped, db, config);
}

}  // namespace sgxb::tpch
