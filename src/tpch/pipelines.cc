#include "tpch/pipelines.h"

#include <atomic>
#include <string>
#include <vector>

#include "common/timer.h"
#include "exec/pipeline.h"
#include "exec/probe_pipeline.h"
#include "join/hash_table.h"
#include "join/join_common.h"
#include "scan/scan_kernels.h"
#include "storage/column_view.h"
#include "tpch/query_constants.h"

namespace sgxb::tpch {

namespace {

using join::BucketChainTable;
using storage::ColumnReader;
using storage::ColumnView;

// Probe scheduling resolves exactly like the joins' (env default /
// flavor-derived), so a fused plan honors the same knobs as the RHO probe
// it replaces.
exec::ProbeMode ResolveProbeMode(const QueryConfig& config) {
  join::JoinConfig jc;
  jc.flavor = config.flavor;
  jc.probe_mode = config.probe_mode;
  jc.probe_batch = config.probe_batch;
  return join::EffectiveProbeMode(jc);
}

int ResolveProbeWidth(const QueryConfig& config, exec::ProbeMode mode) {
  join::JoinConfig jc;
  jc.flavor = config.flavor;
  jc.probe_mode = config.probe_mode;
  jc.probe_batch = config.probe_batch;
  return join::EffectiveProbeWidth(jc, mode);
}

// A pipeline-breaker hash table plus the resource buffer backing it.
// Sized for the driving table's row count (the pre-filter upper bound,
// like the materializing operators' worst-case row-id lists) so build
// pipelines can insert without a counting pre-pass.
struct FusedTable {
  AlignedBuffer buf;
  BucketChainTable table;

  Status Init(size_t capacity, const QueryConfig& config) {
    auto mem = EffectiveResource(config)->Allocate(
        BucketChainTable::BytesFor(capacity));
    if (!mem.ok()) return mem.status();
    buf = std::move(mem).value();
    table.Bind(buf.data(), capacity);
    const int threads = config.num_threads;
    return ParallelRun(threads, [&](int tid) {
      Range r = SplitRange(table.num_buckets, threads, tid);
      table.InitBuckets(r.begin, r.end);
    });
  }
};

// --- Morsel stages -------------------------------------------------------
//
// Every stage works on a ColumnView: resident views run one kernel call
// over the whole morsel (the historical code path), paged views pin one
// partition run at a time via storage::ForEachRun, which prefetches the
// next partition so its decrypt hides behind the current run.

// sigma(lo <= col <= hi) over [r.begin, r.end), branchless like
// FilterU32Range; writes absolute row ids.
Result<size_t> FilterU32Morsel(const ColumnView<uint32_t>& col, Range r,
                               uint32_t lo, uint32_t hi, uint64_t* out) {
  size_t k = 0;
  SGXB_RETURN_NOT_OK(storage::ForEachRun(
      col, r.begin, r.end,
      [&](const uint32_t* run, size_t base, size_t n) {
        for (size_t j = 0; j < n; ++j) {
          out[k] = base + j;
          k += (run[j] >= lo && run[j] <= hi) ? 1 : 0;
        }
      }));
  return k;
}

// SIMD u8 range scan over a morsel. The row-id kernel takes an absolute
// base per run, so it applies to pinned partition runs natively; callers
// hoist the kernel pick out of the morsel loop.
Result<size_t> ScanU8Morsel(const ColumnView<uint8_t>& col, Range r,
                            uint8_t lo, uint8_t hi, uint64_t* out,
                            scan::RowIdKernel kernel) {
  size_t k = 0;
  SGXB_RETURN_NOT_OK(storage::ForEachRun(
      col, r.begin, r.end,
      [&](const uint8_t* run, size_t base, size_t n) {
        k += kernel(run, n, lo, hi, base, out + k);
      }));
  return k;
}

template <typename Pred>
size_t RefineMorsel(const uint64_t* in, size_t n, uint64_t* out,
                    Pred pred) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t id = in[i];
    out[k] = id;
    k += pred(id) ? 1 : 0;
  }
  return k;
}

// Gathers {keys[id], id} into the lane's staging buffer for probing. The
// ids are ascending within the morsel, so a paged reader stays on its
// cached pin; a pin failure latches keys.status() (checked by the body).
void StageTuples(ColumnReader<uint32_t>& keys, const uint64_t* ids,
                 size_t n, Tuple* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i].key = keys[ids[i]];
    out[i].payload = static_cast<uint32_t>(ids[i]);
  }
}

// Probes the staged tuples with the configured driver. on_match receives
// (build_tuple, probe_tuple) for every key match, exactly like the joins'
// match emitters; it is where the next fused stage runs.
template <typename OnMatch>
void ProbeStaged(const BucketChainTable& table, const Tuple* staged,
                 size_t n, exec::ProbeMode mode, int width,
                 OnMatch& on_match) {
  if (mode == exec::ProbeMode::kTupleAtATime) {
    for (size_t i = 0; i < n; ++i) {
      table.ProbeBucket(table.HashOf(staged[i].key), staged[i], on_match);
    }
    return;
  }
  join::BucketChainCursor<OnMatch> cursors[exec::kMaxProbeWidth];
  for (int i = 0; i < width; ++i) {
    cursors[i].table = &table;
    cursors[i].on_match = &on_match;
  }
  exec::BatchedProbe(mode, staged, n, width, cursors);
}

// --- Pipeline runner -----------------------------------------------------

Result<double> RunPipe(const char* span_name, size_t total,
                       const QueryConfig& config,
                       const exec::MorselBody& body) {
  exec::PipelineConfig pc;
  pc.name = span_name;
  pc.num_threads = config.num_threads;
  pc.enclave_lanes = config.setting != ExecutionSetting::kPlainCpu;
  pc.resource = EffectiveResource(config);
  pc.arena_pool = config.arena_pool;
  WallTimer timer;
  Status s = exec::RunMorselPipeline(total, pc, body);
  if (!s.ok()) return s;
  return static_cast<double>(timer.ElapsedNanos());
}

// One phase profile per pipeline: the whole fused pass is a single
// streaming loop whose only non-resident traffic is the scanned columns,
// the hash-table probes, and the breaker sink.
perf::AccessProfile PipeProfile(size_t seq_read_bytes, size_t rows,
                                uint64_t probes, size_t probe_ws,
                                bool batched, uint64_t sink_rows,
                                size_t sink_ws) {
  perf::AccessProfile p;
  p.seq_read_bytes = seq_read_bytes;
  p.loop_iterations = rows;
  p.ilp = perf::IlpClass::kUnrolledReordered;
  if (probes > 0) {
    p.rand_reads = probes;
    p.rand_read_working_set = probe_ws;
    if (batched) p.hidden_random_reads = probes;
    p.software_mlp = batched;
  }
  if (sink_rows > 0) {
    p.rand_writes = sink_rows;
    p.rand_write_working_set = sink_ws;
    p.seq_write_bytes = sink_rows * sizeof(Tuple);
  }
  return p;
}

// Padded per-lane aggregation state so lanes never false-share.
template <typename T>
struct alignas(kCacheLineSize) LaneSlot {
  T value{};
};

// --- Q3: customer |x| orders |x| lineitem --------------------------------

template <typename Db>
Result<QueryResult> Q3FusedImpl(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const exec::ProbeMode mode = ResolveProbeMode(config);
  const int width = ResolveProbeWidth(config, mode);
  const bool batched = mode != exec::ProbeMode::kTupleAtATime;
  const int threads = config.num_threads;
  const scan::RowIdKernel kernel =
      scan::PickRowIdKernel(SimdLevel::kAvx512);

  // Pipeline 1: filter customer on mktsegment, build table keyed by
  // c_custkey (breaker sink — the only global write of the pipeline).
  FusedTable cust;
  SGXB_RETURN_NOT_OK(cust.Init(db.customer.num_rows, config));
  std::atomic<uint64_t> cust_sel{0};
  {
    const ColumnView<uint8_t> seg = db.customer.c_mktsegment;
    const ColumnView<uint32_t> custkey = db.customer.c_custkey;
    auto ns = RunPipe(
        "q3.build_customer", db.customer.num_rows, config,
        [&](Range r, exec::PipelineLane& lane) -> Status {
          uint64_t* sel = lane.sel_out();
          auto n = ScanU8Morsel(seg, r, kSegBuilding, kSegBuilding, sel,
                                kernel);
          if (!n.ok()) return n.status();
          ColumnReader<uint32_t> key(custkey);
          for (size_t i = 0; i < n.value(); ++i) {
            const uint64_t id = sel[i];
            cust.table.Insert(Tuple{key[id], static_cast<uint32_t>(id)});
          }
          cust_sel.fetch_add(n.value(), std::memory_order_relaxed);
          return key.status();
        });
    if (!ns.ok()) return ns.status();
    rec.Record("q3.build_customer", ns.value(),
               PipeProfile(seg.size_bytes(), db.customer.num_rows, 0, 0,
                           batched, cust_sel.load(), cust.buf.size()),
               threads);
  }
  ChargeBytesMaterialized(cust_sel.load() * sizeof(Tuple));

  // Pipeline 2: filter orders on orderdate, probe customers, build the
  // order table keyed by o_orderkey for qualifying matched orders.
  FusedTable ord;
  SGXB_RETURN_NOT_OK(ord.Init(db.orders.num_rows, config));
  std::atomic<uint64_t> ord_sel{0};
  std::atomic<uint64_t> ord_matched{0};
  {
    const ColumnView<uint32_t> odate = db.orders.o_orderdate;
    const ColumnView<uint32_t> ocust = db.orders.o_custkey;
    const ColumnView<uint32_t> okey = db.orders.o_orderkey;
    auto ns = RunPipe(
        "q3.build_orders", db.orders.num_rows, config,
        [&](Range r, exec::PipelineLane& lane) -> Status {
          uint64_t* sel = lane.sel_out();
          auto n = FilterU32Morsel(odate, r, 0, kDate19950315 - 1, sel);
          if (!n.ok()) return n.status();
          ColumnReader<uint32_t> ocust_r(ocust);
          StageTuples(ocust_r, sel, n.value(), lane.stage());
          ColumnReader<uint32_t> okey_r(okey);
          uint64_t matched = 0;
          auto on_match = [&](const Tuple&, const Tuple& probe) {
            ord.table.Insert(Tuple{okey_r[probe.payload], probe.payload});
            ++matched;
          };
          ProbeStaged(cust.table, lane.stage(), n.value(), mode, width,
                      on_match);
          ord_sel.fetch_add(n.value(), std::memory_order_relaxed);
          ord_matched.fetch_add(matched, std::memory_order_relaxed);
          SGXB_RETURN_NOT_OK(ocust_r.status());
          return okey_r.status();
        });
    if (!ns.ok()) return ns.status();
    rec.Record("q3.build_orders", ns.value(),
               PipeProfile(odate.size_bytes() +
                               ord_sel.load() * 2 * sizeof(uint32_t),
                           db.orders.num_rows, ord_sel.load(),
                           cust.buf.size(), batched, ord_matched.load(),
                           ord.buf.size()),
               threads);
  }
  ChargeBytesMaterialized(ord_matched.load() * sizeof(Tuple));

  // Pipeline 3: filter lineitem on shipdate, probe orders, count.
  std::atomic<uint64_t> line_sel{0};
  std::atomic<uint64_t> matches{0};
  {
    const ColumnView<uint32_t> sdate = db.lineitem.l_shipdate;
    const ColumnView<uint32_t> lokey = db.lineitem.l_orderkey;
    auto ns = RunPipe(
        "q3.probe_lineitem", db.lineitem.num_rows, config,
        [&](Range r, exec::PipelineLane& lane) -> Status {
          uint64_t* sel = lane.sel_out();
          auto n = FilterU32Morsel(sdate, r, kDate19950315 + 1,
                                   0xffffffffu, sel);
          if (!n.ok()) return n.status();
          ColumnReader<uint32_t> lokey_r(lokey);
          StageTuples(lokey_r, sel, n.value(), lane.stage());
          uint64_t local = 0;
          auto on_match = [&](const Tuple&, const Tuple&) { ++local; };
          ProbeStaged(ord.table, lane.stage(), n.value(), mode, width,
                      on_match);
          line_sel.fetch_add(n.value(), std::memory_order_relaxed);
          matches.fetch_add(local, std::memory_order_relaxed);
          return lokey_r.status();
        });
    if (!ns.ok()) return ns.status();
    rec.Record("q3.probe_lineitem", ns.value(),
               PipeProfile(sdate.size_bytes() +
                               line_sel.load() * sizeof(uint32_t),
                           db.lineitem.num_rows, line_sel.load(),
                           ord.buf.size(), batched, 0, 0),
               threads);
  }

  QueryResult result;
  result.count = matches.load();
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

// --- Q10: customer |x| orders |x| lineitem -------------------------------

template <typename Db>
Result<QueryResult> Q10FusedImpl(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const exec::ProbeMode mode = ResolveProbeMode(config);
  const int width = ResolveProbeWidth(config, mode);
  const bool batched = mode != exec::ProbeMode::kTupleAtATime;
  const int threads = config.num_threads;
  const scan::RowIdKernel kernel =
      scan::PickRowIdKernel(SimdLevel::kAvx512);

  // Pipeline 1: build the (unfiltered) customer table.
  FusedTable cust;
  SGXB_RETURN_NOT_OK(cust.Init(db.customer.num_rows, config));
  {
    const ColumnView<uint32_t> custkey = db.customer.c_custkey;
    auto ns = RunPipe(
        "q10.build_customer", db.customer.num_rows, config,
        [&](Range r, exec::PipelineLane&) -> Status {
          return storage::ForEachRun(
              custkey, r.begin, r.end,
              [&](const uint32_t* run, size_t base, size_t n) {
                for (size_t j = 0; j < n; ++j) {
                  cust.table.Insert(
                      Tuple{run[j], static_cast<uint32_t>(base + j)});
                }
              });
        });
    if (!ns.ok()) return ns.status();
    rec.Record("q10.build_customer", ns.value(),
               PipeProfile(custkey.size_bytes(), db.customer.num_rows, 0,
                           0, batched, db.customer.num_rows,
                           cust.buf.size()),
               threads);
  }
  ChargeBytesMaterialized(db.customer.num_rows * sizeof(Tuple));

  // Pipeline 2: filter orders on orderdate, probe customers, build the
  // matched-order table.
  FusedTable ord;
  SGXB_RETURN_NOT_OK(ord.Init(db.orders.num_rows, config));
  std::atomic<uint64_t> ord_sel{0};
  std::atomic<uint64_t> ord_matched{0};
  {
    const ColumnView<uint32_t> odate = db.orders.o_orderdate;
    const ColumnView<uint32_t> ocust = db.orders.o_custkey;
    const ColumnView<uint32_t> okey = db.orders.o_orderkey;
    auto ns = RunPipe(
        "q10.build_orders", db.orders.num_rows, config,
        [&](Range r, exec::PipelineLane& lane) -> Status {
          uint64_t* sel = lane.sel_out();
          auto n = FilterU32Morsel(odate, r, kDate19931001,
                                   kDate19940101 - 1, sel);
          if (!n.ok()) return n.status();
          ColumnReader<uint32_t> ocust_r(ocust);
          StageTuples(ocust_r, sel, n.value(), lane.stage());
          ColumnReader<uint32_t> okey_r(okey);
          uint64_t matched = 0;
          auto on_match = [&](const Tuple&, const Tuple& probe) {
            ord.table.Insert(Tuple{okey_r[probe.payload], probe.payload});
            ++matched;
          };
          ProbeStaged(cust.table, lane.stage(), n.value(), mode, width,
                      on_match);
          ord_sel.fetch_add(n.value(), std::memory_order_relaxed);
          ord_matched.fetch_add(matched, std::memory_order_relaxed);
          SGXB_RETURN_NOT_OK(ocust_r.status());
          return okey_r.status();
        });
    if (!ns.ok()) return ns.status();
    rec.Record("q10.build_orders", ns.value(),
               PipeProfile(odate.size_bytes() +
                               ord_sel.load() * 2 * sizeof(uint32_t),
                           db.orders.num_rows, ord_sel.load(),
                           cust.buf.size(), batched, ord_matched.load(),
                           ord.buf.size()),
               threads);
  }
  ChargeBytesMaterialized(ord_matched.load() * sizeof(Tuple));

  // Pipeline 3: filter lineitem on returnflag, probe orders, count.
  std::atomic<uint64_t> line_sel{0};
  std::atomic<uint64_t> matches{0};
  {
    const ColumnView<uint8_t> flag = db.lineitem.l_returnflag;
    const ColumnView<uint32_t> lokey = db.lineitem.l_orderkey;
    auto ns = RunPipe(
        "q10.probe_lineitem", db.lineitem.num_rows, config,
        [&](Range r, exec::PipelineLane& lane) -> Status {
          uint64_t* sel = lane.sel_out();
          auto n = ScanU8Morsel(flag, r, kFlagR, kFlagR, sel, kernel);
          if (!n.ok()) return n.status();
          ColumnReader<uint32_t> lokey_r(lokey);
          StageTuples(lokey_r, sel, n.value(), lane.stage());
          uint64_t local = 0;
          auto on_match = [&](const Tuple&, const Tuple&) { ++local; };
          ProbeStaged(ord.table, lane.stage(), n.value(), mode, width,
                      on_match);
          line_sel.fetch_add(n.value(), std::memory_order_relaxed);
          matches.fetch_add(local, std::memory_order_relaxed);
          return lokey_r.status();
        });
    if (!ns.ok()) return ns.status();
    rec.Record("q10.probe_lineitem", ns.value(),
               PipeProfile(flag.size_bytes() +
                               line_sel.load() * sizeof(uint32_t),
                           db.lineitem.num_rows, line_sel.load(),
                           ord.buf.size(), batched, 0, 0),
               threads);
  }

  QueryResult result;
  result.count = matches.load();
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

// --- Q12: orders |x| lineitem --------------------------------------------

// Q12 and Q12Grouped share the order table and the lineitem selection
// chain; `per_match` runs per surviving lineitem row id after the probe
// (for plain Q12 it counts, for the grouped final it classifies by
// priority).
template <typename Db, typename PerMatch>
Status RunQ12Chain(const Db& db, const QueryConfig& config,
                   const FusedTable& ord, exec::ProbeMode mode, int width,
                   std::atomic<uint64_t>* line_sel, PerMatch per_match) {
  const ColumnView<uint32_t> rdate = db.lineitem.l_receiptdate;
  const ColumnView<uint32_t> cdate = db.lineitem.l_commitdate;
  const ColumnView<uint32_t> sdate = db.lineitem.l_shipdate;
  const ColumnView<uint8_t> smode = db.lineitem.l_shipmode;
  const ColumnView<uint32_t> lokey = db.lineitem.l_orderkey;
  auto ns = RunPipe(
      "q12.probe_lineitem", db.lineitem.num_rows, config,
      [&](Range r, exec::PipelineLane& lane) -> Status {
        auto filtered = FilterU32Morsel(rdate, r, kDate19940101,
                                        kDate19950101 - 1, lane.sel_out());
        if (!filtered.ok()) return filtered.status();
        size_t n = filtered.value();
        ColumnReader<uint8_t> smode_r(smode);
        ColumnReader<uint32_t> rdate_r(rdate);
        ColumnReader<uint32_t> cdate_r(cdate);
        ColumnReader<uint32_t> sdate_r(sdate);
        lane.FlipSel();
        n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                         [&](uint64_t id) {
                           return ((kQ12ModeMask >> smode_r[id]) & 1u) != 0;
                         });
        lane.FlipSel();
        n = RefineMorsel(
            lane.sel_in(), n, lane.sel_out(),
            [&](uint64_t id) { return cdate_r[id] < rdate_r[id]; });
        lane.FlipSel();
        n = RefineMorsel(
            lane.sel_in(), n, lane.sel_out(),
            [&](uint64_t id) { return sdate_r[id] < cdate_r[id]; });
        ColumnReader<uint32_t> lokey_r(lokey);
        StageTuples(lokey_r, lane.sel_out(), n, lane.stage());
        auto on_match = [&](const Tuple&, const Tuple& probe) {
          per_match(lane, probe.payload);
        };
        ProbeStaged(ord.table, lane.stage(), n, mode, width, on_match);
        line_sel->fetch_add(n, std::memory_order_relaxed);
        SGXB_RETURN_NOT_OK(smode_r.status());
        SGXB_RETURN_NOT_OK(rdate_r.status());
        SGXB_RETURN_NOT_OK(cdate_r.status());
        SGXB_RETURN_NOT_OK(sdate_r.status());
        return lokey_r.status();
      });
  return ns.ok() ? Status::OK() : ns.status();
}

// Builds the all-orders table (Q12's build side) and records its phase.
template <typename Db>
Status BuildOrderTable(const Db& db, const QueryConfig& config,
                       FusedTable* ord, OpRecorder* rec,
                       const std::string& name) {
  SGXB_RETURN_NOT_OK(ord->Init(db.orders.num_rows, config));
  const ColumnView<uint32_t> okey = db.orders.o_orderkey;
  auto ns = RunPipe(
      name.c_str(), db.orders.num_rows, config,
      [&](Range r, exec::PipelineLane&) -> Status {
        return storage::ForEachRun(
            okey, r.begin, r.end,
            [&](const uint32_t* run, size_t base, size_t n) {
              for (size_t j = 0; j < n; ++j) {
                ord->table.Insert(
                    Tuple{run[j], static_cast<uint32_t>(base + j)});
              }
            });
      });
  if (!ns.ok()) return ns.status();
  rec->Record(name, ns.value(),
              PipeProfile(okey.size_bytes(), db.orders.num_rows, 0, 0,
                          false, db.orders.num_rows, ord->buf.size()),
              config.num_threads);
  ChargeBytesMaterialized(db.orders.num_rows * sizeof(Tuple));
  return Status::OK();
}

template <typename Db>
Result<QueryResult> Q12FusedImpl(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const exec::ProbeMode mode = ResolveProbeMode(config);
  const int width = ResolveProbeWidth(config, mode);
  const bool batched = mode != exec::ProbeMode::kTupleAtATime;
  const int threads = config.num_threads;

  FusedTable ord;
  SGXB_RETURN_NOT_OK(
      BuildOrderTable(db, config, &ord, &rec, "q12.build_orders"));

  std::atomic<uint64_t> line_sel{0};
  std::vector<LaneSlot<uint64_t>> lane_matches(
      static_cast<size_t>(threads));
  WallTimer probe_timer;
  SGXB_RETURN_NOT_OK(RunQ12Chain(
      db, config, ord, mode, width, &line_sel,
      [&](exec::PipelineLane& lane, uint32_t) {
        ++lane_matches[static_cast<size_t>(lane.lane_id())].value;
      }));
  rec.Record("q12.probe_lineitem",
             static_cast<double>(probe_timer.ElapsedNanos()),
             PipeProfile(ColumnView<uint32_t>(db.lineitem.l_receiptdate)
                                 .size_bytes() +
                             line_sel.load() * sizeof(uint32_t),
                         db.lineitem.num_rows, line_sel.load(),
                         ord.buf.size(), batched, 0, 0),
             threads);

  QueryResult result;
  for (const auto& slot : lane_matches) result.count += slot.value;
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

template <typename Db>
Result<QueryResult> Q12GroupedFusedImpl(const Db& db,
                                        const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const int threads = config.num_threads;

  // Q12Grouped has no join — the group key is fetched through the
  // l_orderkey foreign key directly, like GroupCountU8ViaFk. The fused
  // form runs the whole selection chain and the grouped count in one
  // pass; no order table is built at all.
  const ColumnView<uint32_t> rdate = db.lineitem.l_receiptdate;
  const ColumnView<uint32_t> cdate = db.lineitem.l_commitdate;
  const ColumnView<uint32_t> sdate = db.lineitem.l_shipdate;
  const ColumnView<uint8_t> smode = db.lineitem.l_shipmode;
  const ColumnView<uint32_t> lokey = db.lineitem.l_orderkey;
  const ColumnView<uint8_t> prio = db.orders.o_orderpriority;

  struct PrioCounts {
    uint64_t counts[kNumOrderPriorities] = {};
  };
  std::vector<LaneSlot<PrioCounts>> lane_counts(
      static_cast<size_t>(threads));
  std::atomic<uint64_t> line_sel{0};
  std::atomic<bool> out_of_range{false};

  auto ns = RunPipe(
      "q12g.group_lineitem", db.lineitem.num_rows, config,
      [&](Range r, exec::PipelineLane& lane) -> Status {
        auto filtered = FilterU32Morsel(rdate, r, kDate19940101,
                                        kDate19950101 - 1, lane.sel_out());
        if (!filtered.ok()) return filtered.status();
        size_t n = filtered.value();
        ColumnReader<uint8_t> smode_r(smode);
        ColumnReader<uint32_t> rdate_r(rdate);
        ColumnReader<uint32_t> cdate_r(cdate);
        ColumnReader<uint32_t> sdate_r(sdate);
        lane.FlipSel();
        n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                         [&](uint64_t id) {
                           return ((kQ12ModeMask >> smode_r[id]) & 1u) != 0;
                         });
        lane.FlipSel();
        n = RefineMorsel(
            lane.sel_in(), n, lane.sel_out(),
            [&](uint64_t id) { return cdate_r[id] < rdate_r[id]; });
        lane.FlipSel();
        n = RefineMorsel(
            lane.sel_in(), n, lane.sel_out(),
            [&](uint64_t id) { return sdate_r[id] < cdate_r[id]; });
        ColumnReader<uint32_t> lokey_r(lokey);
        ColumnReader<uint8_t> prio_r(prio);
        uint64_t* counts =
            lane_counts[static_cast<size_t>(lane.lane_id())].value.counts;
        const uint64_t* sel = lane.sel_out();
        for (size_t i = 0; i < n; ++i) {
          const uint8_t g = prio_r[lokey_r[sel[i]]];
          if (g >= kNumOrderPriorities) {
            out_of_range.store(true, std::memory_order_relaxed);
            break;
          }
          ++counts[g];
        }
        line_sel.fetch_add(n, std::memory_order_relaxed);
        SGXB_RETURN_NOT_OK(smode_r.status());
        SGXB_RETURN_NOT_OK(rdate_r.status());
        SGXB_RETURN_NOT_OK(cdate_r.status());
        SGXB_RETURN_NOT_OK(sdate_r.status());
        SGXB_RETURN_NOT_OK(lokey_r.status());
        return prio_r.status();
      });
  if (!ns.ok()) return ns.status();
  if (out_of_range.load()) {
    return Status::Internal(
        "group code out of range in q12g.group_lineitem");
  }
  perf::AccessProfile p = PipeProfile(
      rdate.size_bytes() + line_sel.load() * sizeof(uint32_t),
      db.lineitem.num_rows, line_sel.load(), prio.size_bytes(),
      /*batched=*/false, 0, 0);
  rec.Record("q12g.group_lineitem", ns.value(), p, threads);

  uint64_t totals[kNumOrderPriorities] = {};
  for (const auto& slot : lane_counts) {
    for (int g = 0; g < kNumOrderPriorities; ++g) {
      totals[g] += slot.value.counts[g];
    }
  }
  QueryResult result;
  uint64_t high = totals[kPrioUrgent] + totals[kPrioHigh];
  uint64_t low = 0;
  for (int g = kPrioMedium; g < kNumOrderPriorities; ++g) {
    low += totals[g];
  }
  result.group_counts = {high, low};
  result.count = high + low;
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

// --- Q19: part |x| lineitem, three brand-disjoint branches --------------

template <typename Db>
Result<QueryResult> Q19FusedImpl(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const exec::ProbeMode mode = ResolveProbeMode(config);
  const int width = ResolveProbeWidth(config, mode);
  const bool batched = mode != exec::ProbeMode::kTupleAtATime;
  const int threads = config.num_threads;
  const scan::RowIdKernel kernel =
      scan::PickRowIdKernel(SimdLevel::kAvx512);

  const ColumnView<uint8_t> brand = db.part.p_brand;
  const ColumnView<uint8_t> container = db.part.p_container;
  const ColumnView<uint32_t> psize = db.part.p_size;
  const ColumnView<uint32_t> partkey = db.part.p_partkey;
  const ColumnView<uint32_t> qty = db.lineitem.l_quantity;
  const ColumnView<uint8_t> smode = db.lineitem.l_shipmode;
  const ColumnView<uint8_t> sinstr = db.lineitem.l_shipinstruct;
  const ColumnView<uint32_t> lpart = db.lineitem.l_partkey;

  QueryResult result;
  int branch_no = 0;
  for (const Q19Branch& br : kQ19Branches) {
    const std::string suffix = "_b" + std::to_string(++branch_no);

    // Build pipeline: brand filter (SIMD) -> container -> size -> insert.
    FusedTable part;
    SGXB_RETURN_NOT_OK(part.Init(db.part.num_rows, config));
    std::atomic<uint64_t> part_sel{0};
    {
      auto ns = RunPipe(
          "q19.build_part", db.part.num_rows, config,
          [&](Range r, exec::PipelineLane& lane) -> Status {
            auto scanned = ScanU8Morsel(brand, r, br.brand, br.brand,
                                        lane.sel_out(), kernel);
            if (!scanned.ok()) return scanned.status();
            size_t n = scanned.value();
            ColumnReader<uint8_t> container_r(container);
            ColumnReader<uint32_t> psize_r(psize);
            lane.FlipSel();
            n = RefineMorsel(
                lane.sel_in(), n, lane.sel_out(), [&](uint64_t id) {
                  return ((br.container_mask >> container_r[id]) & 1u) != 0;
                });
            lane.FlipSel();
            n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                             [&](uint64_t id) {
                               return psize_r[id] >= 1 &&
                                      psize_r[id] <= br.size_hi;
                             });
            ColumnReader<uint32_t> partkey_r(partkey);
            const uint64_t* sel = lane.sel_out();
            for (size_t i = 0; i < n; ++i) {
              part.table.Insert(Tuple{partkey_r[sel[i]],
                                      static_cast<uint32_t>(sel[i])});
            }
            part_sel.fetch_add(n, std::memory_order_relaxed);
            SGXB_RETURN_NOT_OK(container_r.status());
            SGXB_RETURN_NOT_OK(psize_r.status());
            return partkey_r.status();
          });
      if (!ns.ok()) return ns.status();
      rec.Record("q19.build_part" + suffix, ns.value(),
                 PipeProfile(brand.size_bytes() + container.size_bytes() +
                                 psize.size_bytes(),
                             db.part.num_rows, 0, 0, batched,
                             part_sel.load(), part.buf.size()),
                 threads);
    }
    ChargeBytesMaterialized(part_sel.load() * sizeof(Tuple));

    // Probe pipeline: quantity -> shipmode -> shipinstruct -> probe.
    std::atomic<uint64_t> line_sel{0};
    std::atomic<uint64_t> matches{0};
    {
      auto ns = RunPipe(
          "q19.probe_lineitem", db.lineitem.num_rows, config,
          [&](Range r, exec::PipelineLane& lane) -> Status {
            auto filtered = FilterU32Morsel(qty, r, br.qty_lo, br.qty_hi,
                                            lane.sel_out());
            if (!filtered.ok()) return filtered.status();
            size_t n = filtered.value();
            ColumnReader<uint8_t> smode_r(smode);
            ColumnReader<uint8_t> sinstr_r(sinstr);
            lane.FlipSel();
            n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                             [&](uint64_t id) {
                               return ((kQ19ModeMask >> smode_r[id]) &
                                       1u) != 0;
                             });
            lane.FlipSel();
            n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                             [&](uint64_t id) {
                               return ((Bit(kInstrDeliverInPerson) >>
                                        sinstr_r[id]) &
                                       1u) != 0;
                             });
            ColumnReader<uint32_t> lpart_r(lpart);
            StageTuples(lpart_r, lane.sel_out(), n, lane.stage());
            uint64_t local = 0;
            auto on_match = [&](const Tuple&, const Tuple&) { ++local; };
            ProbeStaged(part.table, lane.stage(), n, mode, width,
                        on_match);
            line_sel.fetch_add(n, std::memory_order_relaxed);
            matches.fetch_add(local, std::memory_order_relaxed);
            SGXB_RETURN_NOT_OK(smode_r.status());
            SGXB_RETURN_NOT_OK(sinstr_r.status());
            return lpart_r.status();
          });
      if (!ns.ok()) return ns.status();
      rec.Record("q19.probe_lineitem" + suffix, ns.value(),
                 PipeProfile(qty.size_bytes() +
                                 line_sel.load() * (2 + sizeof(uint32_t)),
                             db.lineitem.num_rows, line_sel.load(),
                             part.buf.size(), batched, 0, 0),
                 threads);
    }
    result.count += matches.load();
  }

  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

// --- Q1: pure scan + GROUP BY (returnflag, linestatus) -------------------

template <typename Db>
Result<QueryResult> Q1FusedImpl(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const int threads = config.num_threads;

  const ColumnView<uint32_t> sdate = db.lineitem.l_shipdate;
  const ColumnView<uint32_t> qty = db.lineitem.l_quantity;
  const ColumnView<uint8_t> flag = db.lineitem.l_returnflag;
  const ColumnView<uint8_t> status = db.lineitem.l_linestatus;
  constexpr int kGroups = kNumReturnFlags * kNumLineStatuses;

  struct Q1Aggs {
    GroupAgg groups[kGroups] = {};
  };
  std::vector<LaneSlot<Q1Aggs>> lane_aggs(static_cast<size_t>(threads));
  std::atomic<uint64_t> selected{0};
  std::atomic<bool> out_of_range{false};

  auto ns = RunPipe(
      "q1.group_lineitem", db.lineitem.num_rows, config,
      [&](Range r, exec::PipelineLane& lane) -> Status {
        uint64_t* sel = lane.sel_out();
        auto filtered = FilterU32Morsel(sdate, r, 0, kQ1Cutoff, sel);
        if (!filtered.ok()) return filtered.status();
        const size_t n = filtered.value();
        ColumnReader<uint8_t> flag_r(flag);
        ColumnReader<uint8_t> status_r(status);
        ColumnReader<uint32_t> qty_r(qty);
        GroupAgg* groups =
            lane_aggs[static_cast<size_t>(lane.lane_id())].value.groups;
        for (size_t i = 0; i < n; ++i) {
          const uint64_t id = sel[i];
          const uint8_t f = flag_r[id];
          const uint8_t s = status_r[id];
          if (f >= kNumReturnFlags || s >= kNumLineStatuses) {
            out_of_range.store(true, std::memory_order_relaxed);
            break;
          }
          GroupAgg& g = groups[f * kNumLineStatuses + s];
          ++g.count;
          g.sum += qty_r[id];
        }
        selected.fetch_add(n, std::memory_order_relaxed);
        SGXB_RETURN_NOT_OK(flag_r.status());
        SGXB_RETURN_NOT_OK(status_r.status());
        return qty_r.status();
      });
  if (!ns.ok()) return ns.status();
  if (out_of_range.load()) {
    return Status::Internal("group code out of range in q1.group_lineitem");
  }
  perf::AccessProfile p;
  p.seq_read_bytes =
      sdate.size_bytes() + selected.load() * (sizeof(uint32_t) + 2);
  p.loop_iterations = db.lineitem.num_rows;
  p.rand_writes = selected.load();
  p.rand_write_working_set = kGroups * sizeof(GroupAgg);
  p.ilp = perf::IlpClass::kReferenceLoop;
  rec.Record("q1.group_lineitem", ns.value(), p, threads);

  QueryResult result;
  for (int g = 0; g < kGroups; ++g) {
    uint64_t count = 0;
    for (const auto& slot : lane_aggs) count += slot.value.groups[g].count;
    result.group_counts.push_back(count);
    result.count += count;
  }
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

// --- Q6: pure scan + sum(extendedprice * discount) -----------------------

template <typename Db>
Result<QueryResult> Q6FusedImpl(const Db& db, const QueryConfig& config) {
  OpRecorder rec;
  WallTimer timer;
  const int threads = config.num_threads;

  const ColumnView<uint32_t> sdate = db.lineitem.l_shipdate;
  const ColumnView<uint32_t> disc = db.lineitem.l_discount;
  const ColumnView<uint32_t> qty = db.lineitem.l_quantity;
  const ColumnView<uint32_t> price = db.lineitem.l_extendedprice;

  struct Q6Agg {
    uint64_t revenue = 0;
    uint64_t rows = 0;
  };
  std::vector<LaneSlot<Q6Agg>> lane_aggs(static_cast<size_t>(threads));

  auto ns = RunPipe(
      "q6.sum_lineitem", db.lineitem.num_rows, config,
      [&](Range r, exec::PipelineLane& lane) -> Status {
        auto filtered = FilterU32Morsel(sdate, r, kDate19940101,
                                        kDate19950101 - 1, lane.sel_out());
        if (!filtered.ok()) return filtered.status();
        size_t n = filtered.value();
        ColumnReader<uint32_t> disc_r(disc);
        ColumnReader<uint32_t> qty_r(qty);
        lane.FlipSel();
        n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                         [&](uint64_t id) {
                           return disc_r[id] >= 5 && disc_r[id] <= 7;
                         });
        lane.FlipSel();
        n = RefineMorsel(lane.sel_in(), n, lane.sel_out(),
                         [&](uint64_t id) {
                           return qty_r[id] >= 1 && qty_r[id] <= 23;
                         });
        ColumnReader<uint32_t> price_r(price);
        const uint64_t* sel = lane.sel_out();
        uint64_t local = 0;
        for (size_t i = 0; i < n; ++i) {
          const uint64_t id = sel[i];
          local += static_cast<uint64_t>(price_r[id]) * disc_r[id];
        }
        Q6Agg& agg = lane_aggs[static_cast<size_t>(lane.lane_id())].value;
        agg.revenue += local;
        agg.rows += n;
        SGXB_RETURN_NOT_OK(disc_r.status());
        SGXB_RETURN_NOT_OK(qty_r.status());
        return price_r.status();
      });
  if (!ns.ok()) return ns.status();

  QueryResult result;
  uint64_t revenue = 0;
  for (const auto& slot : lane_aggs) {
    revenue += slot.value.revenue;
    result.count += slot.value.rows;
  }
  perf::AccessProfile p;
  p.seq_read_bytes =
      sdate.size_bytes() + result.count * 3 * sizeof(uint32_t);
  p.loop_iterations = db.lineitem.num_rows;
  p.ilp = perf::IlpClass::kStreaming;
  rec.Record("q6.sum_lineitem", ns.value(), p, threads);

  result.group_counts = {revenue};
  result.host_ns = static_cast<double>(timer.ElapsedNanos());
  result.phases = rec.Take();
  return result;
}

}  // namespace

Result<QueryResult> RunQ3Fused(const TpchDb& db,
                               const QueryConfig& config) {
  return Q3FusedImpl(db, config);
}
Result<QueryResult> RunQ3Fused(const TpchDbView& db,
                               const QueryConfig& config) {
  return Q3FusedImpl(db, config);
}

Result<QueryResult> RunQ10Fused(const TpchDb& db,
                                const QueryConfig& config) {
  return Q10FusedImpl(db, config);
}
Result<QueryResult> RunQ10Fused(const TpchDbView& db,
                                const QueryConfig& config) {
  return Q10FusedImpl(db, config);
}

Result<QueryResult> RunQ12Fused(const TpchDb& db,
                                const QueryConfig& config) {
  return Q12FusedImpl(db, config);
}
Result<QueryResult> RunQ12Fused(const TpchDbView& db,
                                const QueryConfig& config) {
  return Q12FusedImpl(db, config);
}

Result<QueryResult> RunQ12GroupedFused(const TpchDb& db,
                                       const QueryConfig& config) {
  return Q12GroupedFusedImpl(db, config);
}
Result<QueryResult> RunQ12GroupedFused(const TpchDbView& db,
                                       const QueryConfig& config) {
  return Q12GroupedFusedImpl(db, config);
}

Result<QueryResult> RunQ19Fused(const TpchDb& db,
                                const QueryConfig& config) {
  return Q19FusedImpl(db, config);
}
Result<QueryResult> RunQ19Fused(const TpchDbView& db,
                                const QueryConfig& config) {
  return Q19FusedImpl(db, config);
}

Result<QueryResult> RunQ1Fused(const TpchDb& db,
                               const QueryConfig& config) {
  return Q1FusedImpl(db, config);
}
Result<QueryResult> RunQ1Fused(const TpchDbView& db,
                               const QueryConfig& config) {
  return Q1FusedImpl(db, config);
}

Result<QueryResult> RunQ6Fused(const TpchDb& db,
                               const QueryConfig& config) {
  return Q6FusedImpl(db, config);
}
Result<QueryResult> RunQ6Fused(const TpchDbView& db,
                               const QueryConfig& config) {
  return Q6FusedImpl(db, config);
}

}  // namespace sgxb::tpch
