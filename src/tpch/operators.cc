#include "tpch/operators.h"

#include <atomic>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/env.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "exec/probe_pipeline.h"
#include "join/cht_join.h"
#include "join/materializer.h"
#include "join/pht_join.h"
#include "join/rho_join.h"
#include "obs/metrics.h"
#include "perf/calibration.h"
#include "scan/column_scan.h"

namespace sgxb::tpch {

namespace {

Result<AlignedBuffer> AllocForSetting(size_t bytes,
                                      const QueryConfig& config) {
  return EffectiveResource(config)->Allocate(bytes);
}

join::JoinConfig ToJoinConfig(const QueryConfig& config, bool materialize) {
  join::JoinConfig jc;
  jc.num_threads = config.num_threads;
  jc.flavor = config.flavor;
  jc.setting = config.setting;
  jc.enclave = config.enclave;
  jc.materialize = materialize;
  jc.radix_bits = config.radix_bits;
  jc.radix_passes = 2;
  jc.probe_mode = config.probe_mode;
  jc.probe_batch = config.probe_batch;
  jc.resource = config.resource;
  jc.arena_pool = config.arena_pool;
  return jc;
}

// Per-thread predicate objects for the refinement operators. Each holds
// storage::ColumnReaders — which cache one pinned partition and must not
// be shared across threads — and reports pin failures through Done()
// (operator[] cannot, so a failed pin latches into the reader's status
// and the reads return 0 until Done() surfaces it).
struct U8InSetPred {
  storage::ColumnReader<uint8_t> col;
  uint64_t set_mask;
  bool operator()(uint64_t id) { return ((set_mask >> col[id]) & 1u) != 0; }
  Status Done() { return col.status(); }
};

struct U32RangePred {
  storage::ColumnReader<uint32_t> col;
  uint32_t lo, hi;
  bool operator()(uint64_t id) {
    const uint32_t v = col[id];
    return v >= lo && v <= hi;
  }
  Status Done() { return col.status(); }
};

struct LessPred {
  storage::ColumnReader<uint32_t> a, b;
  bool operator()(uint64_t id) { return a[id] < b[id]; }
  Status Done() {
    if (!a.status().ok()) return a.status();
    return b.status();
  }
};

// Generic parallel refinement: keeps ids of `in` that satisfy the
// predicate. `make_pred` runs once per thread and builds that thread's
// predicate object (so each thread gets its own ColumnReaders). Output
// order is preserved (per-thread slices are compacted in order).
template <typename PredFactory>
Result<RowIdList> RefineImpl(const RowIdList& in, PredFactory make_pred,
                             size_t gather_bytes,
                             const QueryConfig& config, OpRecorder* rec,
                             const std::string& name) {
  auto out = RowIdList::Allocate(in.count(), config);
  if (!out.ok()) return out.status();
  RowIdList result = std::move(out).value();

  const int threads = config.num_threads;
  std::vector<uint64_t> counts(threads, 0);
  std::vector<Range> ranges(threads);
  std::vector<Status> thread_status(threads);
  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(in.count(), threads, tid);
    ranges[tid] = r;
    auto pred = make_pred();
    uint64_t k = 0;
    const uint64_t* ids = in.ids();
    uint64_t* dst = result.ids() + r.begin;
    for (size_t i = r.begin; i < r.end; ++i) {
      uint64_t id = ids[i];
      dst[k] = id;
      k += pred(id) ? 1 : 0;
    }
    counts[tid] = k;
    thread_status[tid] = pred.Done();
  });
  SGXB_RETURN_NOT_OK(run_status);
  for (const Status& s : thread_status) SGXB_RETURN_NOT_OK(s);
  // Compact slices.
  uint64_t total = counts[0];
  for (int t = 1; t < threads; ++t) {
    if (counts[t] > 0 && ranges[t].begin != total) {
      std::move(result.ids() + ranges[t].begin,
                result.ids() + ranges[t].begin + counts[t],
                result.ids() + total);
    }
    total += counts[t];
  }
  result.set_count(total);
  ChargeBytesMaterialized(total * sizeof(uint64_t));

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = in.count() * sizeof(uint64_t);
    p.rand_reads = in.count();
    p.rand_read_working_set = gather_bytes;
    p.seq_write_bytes = total * sizeof(uint64_t);
    p.loop_iterations = in.count();
    p.ilp = perf::IlpClass::kUnrolledReordered;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

}  // namespace

mem::MemoryResource* EffectiveResource(const QueryConfig& config) {
  if (config.resource != nullptr) return config.resource;
  return mem::ResourceFor(config.setting, config.enclave);
}

bool PipelineEnabled(const QueryConfig& config) {
  return ResolveKnob(config.pipeline, EnvBoolOpt("SGXBENCH_PIPELINE"), false);
}

QueryConfig ResolvedQueryConfig(const QueryConfig& config) {
  QueryConfig r = config;
  // Pin the pipeline choice only when something actually chose: an
  // explicit config value or SGXBENCH_PIPELINE in the environment. An
  // unset value stays unset so the planner (plan/planner.h) remains free
  // to cost-choose the execution mode per plan; what matters for
  // admission-time stability is that getenv() is consulted here, once,
  // not deep inside operators while other queries run.
  if (!r.pipeline.has_value()) {
    // A malformed SGXBENCH_PIPELINE (EnvBoolOpt: warn-once, nullopt) now
    // leaves the knob unset, so the planner keeps its cost-based choice
    // instead of being forced to the parse fallback.
    if (std::optional<bool> env = EnvBoolOpt("SGXBENCH_PIPELINE")) {
      r.pipeline = *env;
    }
  }
  // Probe scheduling resolves through the joins' own resolvers — one
  // precedence chain (config > env > flavour/calibration defaults) for
  // every layer instead of a hand-kept mirror of it.
  join::JoinConfig jc;
  jc.flavor = r.flavor;
  jc.probe_mode = r.probe_mode;
  jc.probe_batch = r.probe_batch;
  if (!r.probe_mode.has_value()) {
    r.probe_mode = join::EffectiveProbeMode(jc);
  }
  if (r.probe_batch <= 0) {
    r.probe_batch = join::EffectiveProbeWidth(jc, *r.probe_mode);
  }
  return r;
}

void ChargeBytesMaterialized(uint64_t bytes) {
  if (bytes == 0) return;
  static obs::Counter* counter =
      obs::Registry::Global().GetCounter(obs::kCtrBytesMaterialized);
  counter->Add(bytes);
}

Result<RowIdList> RowIdList::Allocate(size_t capacity,
                                      const QueryConfig& config) {
  RowIdList list;
  if (capacity == 0) capacity = 1;
  // capacity * sizeof(uint64_t) must not wrap: a silently-short buffer
  // would turn the operators' "worst case fits" writes into corruption.
  if (capacity > std::numeric_limits<size_t>::max() / sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "RowIdList capacity overflows size_t: " +
        std::to_string(capacity));
  }
  auto buf = AllocForSetting(capacity * sizeof(uint64_t), config);
  if (!buf.ok()) return buf.status();
  list.buf_ = std::move(buf).value();
  return list;
}

void OpRecorder::Absorb(const std::string& prefix,
                        const perf::PhaseBreakdown& other) {
  for (const auto& phase : other.phases) {
    perf::PhaseStats s = phase;
    s.name = prefix + "." + phase.name;
    breakdown_.Add(std::move(s));
  }
}

Result<RowIdList> FilterU8Range(storage::ColumnView<uint8_t> col,
                                uint8_t lo, uint8_t hi,
                                const QueryConfig& config, OpRecorder* rec,
                                const std::string& name) {
  auto out = RowIdList::Allocate(col.num_values(), config);
  if (!out.ok()) return out.status();
  RowIdList result = std::move(out).value();

  if (!col.paged() && !col.versioned()) {
    scan::ScanConfig sc;
    sc.lo = lo;
    sc.hi = hi;
    sc.num_threads = config.num_threads;
    sc.setting = config.setting;
    uint64_t count = 0;
    auto scan_result = scan::RunRowIdScan(col.raw(), col.num_values(),
                                          result.ids(), &count, sc);
    if (!scan_result.ok()) return scan_result.status();
    result.set_count(count);
    ChargeBytesMaterialized(count * sizeof(uint64_t));
    if (rec != nullptr) {
      rec->Record(name, scan_result.value().host_ns,
                  scan_result.value().profile, config.num_threads);
    }
    return result;
  }

  // Paged: same SIMD row-id kernel, applied per pinned partition run.
  // Per-thread slices are compacted in order, exactly like the resident
  // driver, so the id list comes out identical.
  const scan::RowIdKernel kernel =
      scan::PickRowIdKernel(SimdLevel::kAvx512);
  const int threads = config.num_threads;
  std::vector<uint64_t> counts(threads, 0);
  std::vector<Range> ranges(threads);
  std::vector<Status> thread_status(threads);
  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(col.num_values(), threads, tid);
    ranges[tid] = r;
    uint64_t* dst = result.ids() + r.begin;
    uint64_t k = 0;
    thread_status[tid] = storage::ForEachRun(
        col, r.begin, r.end,
        [&](const uint8_t* run, size_t base, size_t n) {
          k += kernel(run, n, lo, hi, base, dst + k);
        });
    counts[tid] = k;
  });
  SGXB_RETURN_NOT_OK(run_status);
  for (const Status& s : thread_status) SGXB_RETURN_NOT_OK(s);
  uint64_t total = counts[0];
  for (int t = 1; t < threads; ++t) {
    if (counts[t] > 0 && ranges[t].begin != total) {
      std::move(result.ids() + ranges[t].begin,
                result.ids() + ranges[t].begin + counts[t],
                result.ids() + total);
    }
    total += counts[t];
  }
  result.set_count(total);
  ChargeBytesMaterialized(total * sizeof(uint64_t));
  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = col.size_bytes();
    p.seq_write_bytes = total * sizeof(uint64_t);
    p.loop_iterations = col.num_values();
    p.ilp = perf::IlpClass::kStreaming;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

Result<RowIdList> FilterU32Range(storage::ColumnView<uint32_t> col,
                                 uint32_t lo, uint32_t hi,
                                 const QueryConfig& config, OpRecorder* rec,
                                 const std::string& name) {
  auto out = RowIdList::Allocate(col.num_values(), config);
  if (!out.ok()) return out.status();
  RowIdList result = std::move(out).value();

  const int threads = config.num_threads;
  std::vector<uint64_t> counts(threads, 0);
  std::vector<Range> ranges(threads);
  std::vector<Status> thread_status(threads);
  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(col.num_values(), threads, tid);
    ranges[tid] = r;
    uint64_t* dst = result.ids() + r.begin;
    uint64_t k = 0;
    // One run for resident views, one per pinned partition for paged.
    thread_status[tid] = storage::ForEachRun(
        col, r.begin, r.end,
        [&](const uint32_t* run, size_t base, size_t n) {
          for (size_t j = 0; j < n; ++j) {
            // Branchless conditional append (autovectorizes well).
            dst[k] = base + j;
            k += (run[j] >= lo && run[j] <= hi) ? 1 : 0;
          }
        });
    counts[tid] = k;
  });
  SGXB_RETURN_NOT_OK(run_status);
  for (const Status& s : thread_status) SGXB_RETURN_NOT_OK(s);
  uint64_t total = counts[0];
  for (int t = 1; t < threads; ++t) {
    if (counts[t] > 0 && ranges[t].begin != total) {
      std::move(result.ids() + ranges[t].begin,
                result.ids() + ranges[t].begin + counts[t],
                result.ids() + total);
    }
    total += counts[t];
  }
  result.set_count(total);
  ChargeBytesMaterialized(total * sizeof(uint64_t));

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = col.size_bytes();
    p.seq_write_bytes = total * sizeof(uint64_t);
    p.loop_iterations = col.num_values();
    p.ilp = perf::IlpClass::kStreaming;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

Result<RowIdList> RefineU8InSet(const RowIdList& in,
                                storage::ColumnView<uint8_t> col,
                                uint64_t set_mask,
                                const QueryConfig& config, OpRecorder* rec,
                                const std::string& name) {
  return RefineImpl(
      in,
      [col, set_mask] {
        return U8InSetPred{storage::ColumnReader<uint8_t>(col), set_mask};
      },
      col.size_bytes(), config, rec, name);
}

Result<RowIdList> RefineU32Range(const RowIdList& in,
                                 storage::ColumnView<uint32_t> col,
                                 uint32_t lo, uint32_t hi,
                                 const QueryConfig& config, OpRecorder* rec,
                                 const std::string& name) {
  return RefineImpl(
      in,
      [col, lo, hi] {
        return U32RangePred{storage::ColumnReader<uint32_t>(col), lo, hi};
      },
      col.size_bytes(), config, rec, name);
}

Result<RowIdList> RefineLess(const RowIdList& in,
                             storage::ColumnView<uint32_t> a,
                             storage::ColumnView<uint32_t> b,
                             const QueryConfig& config, OpRecorder* rec,
                             const std::string& name) {
  return RefineImpl(
      in,
      [a, b] {
        return LessPred{storage::ColumnReader<uint32_t>(a),
                        storage::ColumnReader<uint32_t>(b)};
      },
      a.size_bytes() + b.size_bytes(), config, rec, name);
}

Result<Relation> GatherKeys(storage::ColumnView<uint32_t> keys,
                            const RowIdList* rows,
                            const QueryConfig& config, OpRecorder* rec,
                            const std::string& name) {
  const size_t n = rows != nullptr ? rows->count() : keys.num_values();
  // An empty selection yields a genuinely empty relation (never pad with
  // uninitialized tuples — downstream joins would "match" garbage). The
  // resource's placement tag replaces the old setting-derived region
  // guess, so the cost model sees where the gather output actually lives.
  auto rel = Relation::AllocateFrom(EffectiveResource(config), n);
  if (!rel.ok()) return rel.status();
  Relation result = std::move(rel).value();
  if (n == 0) {
    if (rec != nullptr) {
      rec->Record(name, 0.0, perf::AccessProfile{}, config.num_threads);
    }
    return result;
  }

  // Morsel-driven: every output row lands at its own index, so ranges can
  // be scheduled freely and the row-id gather (random reads into the key
  // column) re-balances across lanes when ids cluster on hot pages.
  WallTimer timer;
  const int threads = config.num_threads;
  ParallelForOptions opts;
  opts.num_threads = threads;
  // A reader per morsel invocation: free for resident views, and for
  // paged views the ascending ids make nearly every access hit the
  // reader's cached pin. Lanes run their morsels serially, so the
  // per-lane status slot has no race.
  std::vector<Status> lane_status(threads);
  Status run_status = ParallelFor(
      n, /*grain=*/64 * 1024,
      [&](Range r, int lane) {
        Tuple* out = result.tuples();
        storage::ColumnReader<uint32_t> key(keys);
        if (rows != nullptr) {
          const uint64_t* ids = rows->ids();
          for (size_t i = r.begin; i < r.end; ++i) {
            out[i].key = key[ids[i]];
            out[i].payload = static_cast<uint32_t>(ids[i]);
          }
        } else {
          for (size_t i = r.begin; i < r.end; ++i) {
            out[i].key = key[i];
            out[i].payload = static_cast<uint32_t>(i);
          }
        }
        if (!key.status().ok()) lane_status[lane] = key.status();
      },
      opts);
  SGXB_RETURN_NOT_OK(run_status);
  for (const Status& s : lane_status) SGXB_RETURN_NOT_OK(s);
  ChargeBytesMaterialized(n * sizeof(Tuple));

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = n * sizeof(uint64_t);
    p.rand_reads = rows != nullptr ? n : 0;
    p.rand_read_working_set = keys.size_bytes();
    p.seq_write_bytes = n * sizeof(Tuple);
    p.loop_iterations = n;
    p.ilp = perf::IlpClass::kUnrolledReordered;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

namespace {

// The planner's join-flavour dispatch: RHO unless the cost model (or
// SGXBENCH_JOIN_ALGO) picked the shared-table or concise alternative.
Result<join::JoinResult> DispatchJoin(join::JoinAlgorithm algo,
                                      const Relation& build,
                                      const Relation& probe,
                                      const join::JoinConfig& jc) {
  switch (algo) {
    case join::JoinAlgorithm::kPht:
      return join::PhtJoin(build, probe, jc);
    case join::JoinAlgorithm::kCht:
      return join::ChtJoin(build, probe, jc);
    default:
      return join::RhoJoin(build, probe, jc);
  }
}

}  // namespace

Result<JoinStepResult> MaterializingJoin(const Relation& build,
                                         const Relation& probe,
                                         const QueryConfig& config,
                                         OpRecorder* rec,
                                         const std::string& name,
                                         join::JoinAlgorithm algo) {
  // The join's own materializer produces JoinOutputTuples; the probe-side
  // payload is the probe row id, which is what the next operator needs.
  // Empty inputs short-circuit (a filter can legitimately select nothing).
  JoinStepResult step;
  if (build.empty() || probe.empty()) {
    auto empty = RowIdList::Allocate(1, config);
    if (!empty.ok()) return empty.status();
    step.probe_rows = std::move(empty).value();
    return step;
  }

  join::JoinConfig jc = ToJoinConfig(config, /*materialize=*/true);
  join::Materializer sink(config.num_threads, EffectiveResource(config),
                          join::Materializer::kDefaultChunkTuples,
                          config.arena_pool);
  jc.output = &sink;
  auto jr = DispatchJoin(algo, build, probe, jc);
  if (!jr.ok()) return jr.status();
  step.matches = jr.value().matches;
  if (rec != nullptr) rec->Absorb(name, jr.value().phases);

  // Project the probe-side row ids out of the materialized output; this
  // is the input selection vector of the next operator.
  auto rows = RowIdList::Allocate(step.matches, config);
  if (!rows.ok()) return rows.status();
  step.probe_rows = std::move(rows).value();
  uint64_t k = 0;
  uint64_t* ids = step.probe_rows.ids();
  sink.ForEachChunk([&](const JoinOutputTuple* chunk, size_t n) {
    for (size_t i = 0; i < n; ++i) ids[k++] = chunk[i].probe_payload;
  });
  step.probe_rows.set_count(k);
  // The materialized join output plus the row-id projection of it; both
  // are written here and re-read by the next operator.
  ChargeBytesMaterialized(step.matches * sizeof(JoinOutputTuple) +
                          k * sizeof(uint64_t));
  return step;
}

Result<uint64_t> CountingJoin(const Relation& build, const Relation& probe,
                              const QueryConfig& config, OpRecorder* rec,
                              const std::string& name,
                              join::JoinAlgorithm algo) {
  if (build.empty() || probe.empty()) return uint64_t{0};
  join::JoinConfig jc = ToJoinConfig(config, /*materialize=*/false);
  auto jr = DispatchJoin(algo, build, probe, jc);
  if (!jr.ok()) return jr.status();
  if (rec != nullptr) rec->Absorb(name, jr.value().phases);
  return jr.value().matches;
}

namespace {

// Per-thread partial rows are padded to a whole cache line so lanes
// never false-share, and the padded table is the unit the aggregation
// operators allocate from the query's resource.
constexpr size_t PartialStride(size_t groups, size_t elem_bytes) {
  const size_t per_line = kCacheLineSize / elem_bytes;
  return (groups + per_line - 1) / per_line * per_line;
}

// Per-thread group-of objects (same pattern as the refinement preds:
// readers are thread-local, Done() surfaces pin failures).
struct U8GroupOf {
  storage::ColumnReader<uint8_t> col;
  int operator()(size_t i) { return int{col[i]}; }
  Status Done() { return col.status(); }
};

struct U8AtIdsGroupOf {
  storage::ColumnReader<uint8_t> col;
  const uint64_t* ids;
  int operator()(size_t i) { return int{col[ids[i]]}; }
  Status Done() { return col.status(); }
};

struct U8ViaFkGroupOf {
  storage::ColumnReader<uint8_t> values;
  storage::ColumnReader<uint32_t> fk;
  const uint64_t* ids;
  int operator()(size_t i) { return int{values[fk[ids[i]]]}; }
  Status Done() {
    if (!values.status().ok()) return values.status();
    return fk.status();
  }
};

// Shared implementation: group id of row `id` comes from the per-thread
// object `make_group_of` builds.
template <typename GroupOfFactory>
Result<std::vector<uint64_t>> GroupCountImpl(size_t n,
                                             GroupOfFactory make_group_of,
                                             int num_groups,
                                             size_t gather_bytes,
                                             const QueryConfig& config,
                                             OpRecorder* rec,
                                             const std::string& name) {
  if (num_groups <= 0 || num_groups > 4096) {
    return Status::InvalidArgument("num_groups must be in [1, 4096]");
  }
  const int threads = config.num_threads;
  // The per-thread partial tables are the operator's only substantive
  // allocation, so they come from the query's resource (enclave-charged
  // under SGX settings) like every other operator intermediate; only the
  // num_groups-sized result copy-out below leaves through the host heap.
  const size_t stride = PartialStride(num_groups, sizeof(uint64_t));
  auto partial_buf = EffectiveResource(config)->AllocateZeroed(
      static_cast<size_t>(threads) * stride * sizeof(uint64_t));
  if (!partial_buf.ok()) return partial_buf.status();
  AlignedBuffer partials = std::move(partial_buf).value();
  uint64_t* const partial_rows = partials.As<uint64_t>();
  std::atomic<bool> out_of_range{false};
  std::vector<Status> thread_status(threads);

  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(n, threads, tid);
    auto group_of = make_group_of();
    uint64_t* local = partial_rows + static_cast<size_t>(tid) * stride;
    for (size_t i = r.begin; i < r.end; ++i) {
      int g = group_of(i);
      if (g < 0 || g >= num_groups) {
        out_of_range.store(true, std::memory_order_relaxed);
        break;
      }
      ++local[g];
    }
    thread_status[tid] = group_of.Done();
  });
  SGXB_RETURN_NOT_OK(run_status);
  // Pin failures first: a failed read yields 0, which is a valid group,
  // so out_of_range may be a symptom rather than the cause.
  for (const Status& s : thread_status) SGXB_RETURN_NOT_OK(s);
  if (out_of_range.load()) {
    return Status::Internal("group code out of range in " + name);
  }

  std::vector<uint64_t> counts(num_groups, 0);
  for (int t = 0; t < threads; ++t) {
    const uint64_t* local = partial_rows + static_cast<size_t>(t) * stride;
    for (int g = 0; g < num_groups; ++g) counts[g] += local[g];
  }
  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = n * sizeof(uint64_t);
    p.rand_reads = n;
    p.rand_read_working_set = gather_bytes;
    p.rand_writes = n;
    p.rand_write_working_set = num_groups * sizeof(uint64_t);
    p.loop_iterations = n;
    p.ilp = perf::IlpClass::kReferenceLoop;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return counts;
}

}  // namespace

Result<std::vector<uint64_t>> GroupCountU8(storage::ColumnView<uint8_t> col,
                                           const RowIdList* rows,
                                           int num_groups,
                                           const QueryConfig& config,
                                           OpRecorder* rec,
                                           const std::string& name) {
  if (rows == nullptr) {
    return GroupCountImpl(
        col.num_values(),
        [col] { return U8GroupOf{storage::ColumnReader<uint8_t>(col)}; },
        num_groups, col.size_bytes(), config, rec, name);
  }
  const uint64_t* ids = rows->ids();
  return GroupCountImpl(
      rows->count(),
      [col, ids] {
        return U8AtIdsGroupOf{storage::ColumnReader<uint8_t>(col), ids};
      },
      num_groups, col.size_bytes(), config, rec, name);
}

Result<std::vector<uint64_t>> GroupCountU8ViaFk(
    storage::ColumnView<uint8_t> values, storage::ColumnView<uint32_t> fk,
    const RowIdList& rows, int num_groups, const QueryConfig& config,
    OpRecorder* rec, const std::string& name) {
  const uint64_t* ids = rows.ids();
  return GroupCountImpl(
      rows.count(),
      [values, fk, ids] {
        return U8ViaFkGroupOf{storage::ColumnReader<uint8_t>(values),
                              storage::ColumnReader<uint32_t>(fk), ids};
      },
      num_groups, values.size_bytes() + fk.size_bytes(), config, rec,
      name);
}

Result<std::vector<GroupAgg>> GroupSumU32By2U8(
    storage::ColumnView<uint32_t> value, storage::ColumnView<uint8_t> g1,
    int num_g1, storage::ColumnView<uint8_t> g2, int num_g2,
    const RowIdList* rows, const QueryConfig& config, OpRecorder* rec,
    const std::string& name) {
  if (num_g1 <= 0 || num_g2 <= 0 || num_g1 * num_g2 > 4096) {
    return Status::InvalidArgument("bad group dimensions");
  }
  const int groups = num_g1 * num_g2;
  const size_t n = rows != nullptr ? rows->count() : value.num_values();
  const uint64_t* ids = rows != nullptr ? rows->ids() : nullptr;

  const int threads = config.num_threads;
  // Resource-routed like GroupCountImpl: padded per-thread rows from the
  // query's resource, with only the groups-sized result copied out.
  static_assert(std::is_trivially_destructible_v<GroupAgg>);
  const size_t stride = PartialStride(groups, sizeof(GroupAgg));
  auto partial_buf = EffectiveResource(config)->AllocateZeroed(
      static_cast<size_t>(threads) * stride * sizeof(GroupAgg));
  if (!partial_buf.ok()) return partial_buf.status();
  AlignedBuffer partials = std::move(partial_buf).value();
  GroupAgg* const partial_rows = partials.As<GroupAgg>();
  std::atomic<bool> out_of_range{false};
  std::vector<Status> thread_status(threads);

  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(n, threads, tid);
    storage::ColumnReader<uint32_t> vals(value);
    storage::ColumnReader<uint8_t> d1(g1);
    storage::ColumnReader<uint8_t> d2(g2);
    GroupAgg* local = partial_rows + static_cast<size_t>(tid) * stride;
    for (size_t i = r.begin; i < r.end; ++i) {
      const size_t id = ids != nullptr ? ids[i] : i;
      const int c1 = d1[id];
      const int c2 = d2[id];
      if (c1 >= num_g1 || c2 >= num_g2) {
        out_of_range.store(true, std::memory_order_relaxed);
        break;
      }
      const int g = c1 * num_g2 + c2;
      ++local[g].count;
      local[g].sum += vals[id];
    }
    if (!vals.status().ok()) {
      thread_status[tid] = vals.status();
    } else if (!d1.status().ok()) {
      thread_status[tid] = d1.status();
    } else {
      thread_status[tid] = d2.status();
    }
  });
  SGXB_RETURN_NOT_OK(run_status);
  for (const Status& s : thread_status) SGXB_RETURN_NOT_OK(s);
  if (out_of_range.load()) {
    return Status::Internal("group code out of range in " + name);
  }

  std::vector<GroupAgg> result(groups);
  for (int t = 0; t < threads; ++t) {
    const GroupAgg* local = partial_rows + static_cast<size_t>(t) * stride;
    for (int g = 0; g < groups; ++g) {
      result[g].count += local[g].count;
      result[g].sum += local[g].sum;
    }
  }
  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = n * (sizeof(uint64_t) + sizeof(uint32_t) + 2);
    p.rand_writes = n;
    p.rand_write_working_set = groups * sizeof(GroupAgg);
    p.loop_iterations = n;
    p.ilp = perf::IlpClass::kReferenceLoop;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

Result<uint64_t> SumProductU32(storage::ColumnView<uint32_t> a,
                               storage::ColumnView<uint32_t> b,
                               const RowIdList& rows,
                               const QueryConfig& config, OpRecorder* rec,
                               const std::string& name) {
  const uint64_t* ids = rows.ids();
  const int threads = config.num_threads;
  // Morsel-driven reduction: lanes accumulate into per-lane slots (a lane
  // runs many morsels, so slots are indexed by lane, not morsel) and the
  // slots are summed after the gang completes.
  std::vector<uint64_t> partials(threads, 0);
  std::vector<Status> lane_status(threads);
  ParallelForOptions opts;
  opts.num_threads = threads;

  WallTimer timer;
  Status run_status = ParallelFor(
      rows.count(), /*grain=*/64 * 1024,
      [&](Range r, int lane) {
        storage::ColumnReader<uint32_t> da(a);
        storage::ColumnReader<uint32_t> db(b);
        uint64_t local = 0;
        for (size_t i = r.begin; i < r.end; ++i) {
          const size_t id = ids[i];
          local += static_cast<uint64_t>(da[id]) * db[id];
        }
        partials[lane] += local;
        if (!da.status().ok()) {
          lane_status[lane] = da.status();
        } else if (!db.status().ok()) {
          lane_status[lane] = db.status();
        }
      },
      opts);
  SGXB_RETURN_NOT_OK(run_status);
  for (const Status& s : lane_status) SGXB_RETURN_NOT_OK(s);
  uint64_t total = 0;
  for (uint64_t v : partials) total += v;

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = rows.count() * sizeof(uint64_t);
    p.rand_reads = rows.count() * 2;
    p.rand_read_working_set = a.size_bytes() + b.size_bytes();
    p.loop_iterations = rows.count();
    p.ilp = perf::IlpClass::kStreaming;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return total;
}

}  // namespace sgxb::tpch
