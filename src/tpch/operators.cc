#include "tpch/operators.h"

#include <atomic>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/env.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "exec/probe_pipeline.h"
#include "join/materializer.h"
#include "join/rho_join.h"
#include "obs/metrics.h"
#include "perf/calibration.h"
#include "scan/column_scan.h"

namespace sgxb::tpch {

namespace {

Result<AlignedBuffer> AllocForSetting(size_t bytes,
                                      const QueryConfig& config) {
  return EffectiveResource(config)->Allocate(bytes);
}

join::JoinConfig ToJoinConfig(const QueryConfig& config, bool materialize) {
  join::JoinConfig jc;
  jc.num_threads = config.num_threads;
  jc.flavor = config.flavor;
  jc.setting = config.setting;
  jc.enclave = config.enclave;
  jc.materialize = materialize;
  jc.radix_bits = config.radix_bits;
  jc.radix_passes = 2;
  jc.probe_mode = config.probe_mode;
  jc.probe_batch = config.probe_batch;
  jc.resource = config.resource;
  jc.arena_pool = config.arena_pool;
  return jc;
}

// Generic parallel refinement: keeps ids of `in` that satisfy `pred`.
// Output order is preserved (per-thread slices are compacted in order).
template <typename Pred>
Result<RowIdList> RefineImpl(const RowIdList& in, Pred pred,
                             size_t gather_bytes,
                             const QueryConfig& config, OpRecorder* rec,
                             const std::string& name) {
  auto out = RowIdList::Allocate(in.count(), config);
  if (!out.ok()) return out.status();
  RowIdList result = std::move(out).value();

  const int threads = config.num_threads;
  std::vector<uint64_t> counts(threads, 0);
  std::vector<Range> ranges(threads);
  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(in.count(), threads, tid);
    ranges[tid] = r;
    uint64_t k = 0;
    const uint64_t* ids = in.ids();
    uint64_t* dst = result.ids() + r.begin;
    for (size_t i = r.begin; i < r.end; ++i) {
      uint64_t id = ids[i];
      dst[k] = id;
      k += pred(id) ? 1 : 0;
    }
    counts[tid] = k;
  });
  SGXB_RETURN_NOT_OK(run_status);
  // Compact slices.
  uint64_t total = counts[0];
  for (int t = 1; t < threads; ++t) {
    if (counts[t] > 0 && ranges[t].begin != total) {
      std::move(result.ids() + ranges[t].begin,
                result.ids() + ranges[t].begin + counts[t],
                result.ids() + total);
    }
    total += counts[t];
  }
  result.set_count(total);
  ChargeBytesMaterialized(total * sizeof(uint64_t));

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = in.count() * sizeof(uint64_t);
    p.rand_reads = in.count();
    p.rand_read_working_set = gather_bytes;
    p.seq_write_bytes = total * sizeof(uint64_t);
    p.loop_iterations = in.count();
    p.ilp = perf::IlpClass::kUnrolledReordered;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

}  // namespace

mem::MemoryResource* EffectiveResource(const QueryConfig& config) {
  if (config.resource != nullptr) return config.resource;
  return mem::ResourceFor(config.setting, config.enclave);
}

bool PipelineEnabled(const QueryConfig& config) {
  if (config.pipeline.has_value()) return *config.pipeline;
  return EnvBool("SGXBENCH_PIPELINE", false);
}

QueryConfig ResolvedQueryConfig(const QueryConfig& config) {
  QueryConfig r = config;
  r.pipeline = PipelineEnabled(r);
  if (!r.probe_mode.has_value()) {
    // Mirrors join::EffectiveProbeMode: the env override, else the
    // flavor-appropriate default.
    r.probe_mode = exec::ProbeModeFromEnv(
        r.flavor == KernelFlavor::kReference
            ? exec::ProbeMode::kTupleAtATime
            : exec::ProbeMode::kGroupPrefetch);
  }
  if (r.probe_batch <= 0) {
    // Mirrors join::EffectiveProbeWidth with the mode now pinned.
    const perf::CalibrationParams& cal = perf::CalibrationParams::Default();
    r.probe_batch = exec::ClampProbeWidth(
        *r.probe_mode == exec::ProbeMode::kAmac ? cal.probe_prefetch_distance
                                                : cal.probe_batch_size);
  }
  return r;
}

void ChargeBytesMaterialized(uint64_t bytes) {
  if (bytes == 0) return;
  static obs::Counter* counter =
      obs::Registry::Global().GetCounter(obs::kCtrBytesMaterialized);
  counter->Add(bytes);
}

Result<RowIdList> RowIdList::Allocate(size_t capacity,
                                      const QueryConfig& config) {
  RowIdList list;
  if (capacity == 0) capacity = 1;
  // capacity * sizeof(uint64_t) must not wrap: a silently-short buffer
  // would turn the operators' "worst case fits" writes into corruption.
  if (capacity > std::numeric_limits<size_t>::max() / sizeof(uint64_t)) {
    return Status::InvalidArgument(
        "RowIdList capacity overflows size_t: " +
        std::to_string(capacity));
  }
  auto buf = AllocForSetting(capacity * sizeof(uint64_t), config);
  if (!buf.ok()) return buf.status();
  list.buf_ = std::move(buf).value();
  return list;
}

void OpRecorder::Absorb(const std::string& prefix,
                        const perf::PhaseBreakdown& other) {
  for (const auto& phase : other.phases) {
    perf::PhaseStats s = phase;
    s.name = prefix + "." + phase.name;
    breakdown_.Add(std::move(s));
  }
}

Result<RowIdList> FilterU8Range(const Column<uint8_t>& col, uint8_t lo,
                                uint8_t hi, const QueryConfig& config,
                                OpRecorder* rec, const std::string& name) {
  auto out = RowIdList::Allocate(col.num_values(), config);
  if (!out.ok()) return out.status();
  RowIdList result = std::move(out).value();

  scan::ScanConfig sc;
  sc.lo = lo;
  sc.hi = hi;
  sc.num_threads = config.num_threads;
  sc.setting = config.setting;
  uint64_t count = 0;
  auto scan_result = scan::RunRowIdScan(col, result.ids(), &count, sc);
  if (!scan_result.ok()) return scan_result.status();
  result.set_count(count);
  ChargeBytesMaterialized(count * sizeof(uint64_t));
  if (rec != nullptr) {
    rec->Record(name, scan_result.value().host_ns,
                scan_result.value().profile, config.num_threads);
  }
  return result;
}

Result<RowIdList> FilterU32Range(const Column<uint32_t>& col, uint32_t lo,
                                 uint32_t hi, const QueryConfig& config,
                                 OpRecorder* rec, const std::string& name) {
  auto out = RowIdList::Allocate(col.num_values(), config);
  if (!out.ok()) return out.status();
  RowIdList result = std::move(out).value();

  const int threads = config.num_threads;
  std::vector<uint64_t> counts(threads, 0);
  std::vector<Range> ranges(threads);
  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(col.num_values(), threads, tid);
    ranges[tid] = r;
    const uint32_t* data = col.data();
    uint64_t* dst = result.ids() + r.begin;
    uint64_t k = 0;
    for (size_t i = r.begin; i < r.end; ++i) {
      // Branchless conditional append (autovectorizes well).
      dst[k] = i;
      k += (data[i] >= lo && data[i] <= hi) ? 1 : 0;
    }
    counts[tid] = k;
  });
  SGXB_RETURN_NOT_OK(run_status);
  uint64_t total = counts[0];
  for (int t = 1; t < threads; ++t) {
    if (counts[t] > 0 && ranges[t].begin != total) {
      std::move(result.ids() + ranges[t].begin,
                result.ids() + ranges[t].begin + counts[t],
                result.ids() + total);
    }
    total += counts[t];
  }
  result.set_count(total);
  ChargeBytesMaterialized(total * sizeof(uint64_t));

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = col.size_bytes();
    p.seq_write_bytes = total * sizeof(uint64_t);
    p.loop_iterations = col.num_values();
    p.ilp = perf::IlpClass::kStreaming;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

Result<RowIdList> RefineU8InSet(const RowIdList& in,
                                const Column<uint8_t>& col,
                                uint64_t set_mask,
                                const QueryConfig& config, OpRecorder* rec,
                                const std::string& name) {
  const uint8_t* data = col.data();
  return RefineImpl(
      in,
      [data, set_mask](uint64_t id) {
        return (set_mask >> data[id]) & 1u;
      },
      col.size_bytes(), config, rec, name);
}

Result<RowIdList> RefineU32Range(const RowIdList& in,
                                 const Column<uint32_t>& col, uint32_t lo,
                                 uint32_t hi, const QueryConfig& config,
                                 OpRecorder* rec, const std::string& name) {
  const uint32_t* data = col.data();
  return RefineImpl(
      in,
      [data, lo, hi](uint64_t id) {
        return data[id] >= lo && data[id] <= hi;
      },
      col.size_bytes(), config, rec, name);
}

Result<RowIdList> RefineLess(const RowIdList& in,
                             const Column<uint32_t>& a,
                             const Column<uint32_t>& b,
                             const QueryConfig& config, OpRecorder* rec,
                             const std::string& name) {
  const uint32_t* da = a.data();
  const uint32_t* db = b.data();
  return RefineImpl(
      in, [da, db](uint64_t id) { return da[id] < db[id]; },
      a.size_bytes() + b.size_bytes(), config, rec, name);
}

Result<Relation> GatherKeys(const Column<uint32_t>& keys,
                            const RowIdList* rows,
                            const QueryConfig& config, OpRecorder* rec,
                            const std::string& name) {
  const size_t n = rows != nullptr ? rows->count() : keys.num_values();
  // An empty selection yields a genuinely empty relation (never pad with
  // uninitialized tuples — downstream joins would "match" garbage). The
  // resource's placement tag replaces the old setting-derived region
  // guess, so the cost model sees where the gather output actually lives.
  auto rel = Relation::AllocateFrom(EffectiveResource(config), n);
  if (!rel.ok()) return rel.status();
  Relation result = std::move(rel).value();
  if (n == 0) {
    if (rec != nullptr) {
      rec->Record(name, 0.0, perf::AccessProfile{}, config.num_threads);
    }
    return result;
  }

  // Morsel-driven: every output row lands at its own index, so ranges can
  // be scheduled freely and the row-id gather (random reads into the key
  // column) re-balances across lanes when ids cluster on hot pages.
  WallTimer timer;
  const int threads = config.num_threads;
  ParallelForOptions opts;
  opts.num_threads = threads;
  Status run_status = ParallelFor(
      n, /*grain=*/64 * 1024,
      [&](Range r, int) {
        Tuple* out = result.tuples();
        const uint32_t* key_data = keys.data();
        if (rows != nullptr) {
          const uint64_t* ids = rows->ids();
          for (size_t i = r.begin; i < r.end; ++i) {
            out[i].key = key_data[ids[i]];
            out[i].payload = static_cast<uint32_t>(ids[i]);
          }
        } else {
          for (size_t i = r.begin; i < r.end; ++i) {
            out[i].key = key_data[i];
            out[i].payload = static_cast<uint32_t>(i);
          }
        }
      },
      opts);
  SGXB_RETURN_NOT_OK(run_status);
  ChargeBytesMaterialized(n * sizeof(Tuple));

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = n * sizeof(uint64_t);
    p.rand_reads = rows != nullptr ? n : 0;
    p.rand_read_working_set = keys.size_bytes();
    p.seq_write_bytes = n * sizeof(Tuple);
    p.loop_iterations = n;
    p.ilp = perf::IlpClass::kUnrolledReordered;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

Result<JoinStepResult> MaterializingJoin(const Relation& build,
                                         const Relation& probe,
                                         const QueryConfig& config,
                                         OpRecorder* rec,
                                         const std::string& name) {
  // The join's own materializer produces JoinOutputTuples; the probe-side
  // payload is the probe row id, which is what the next operator needs.
  // Empty inputs short-circuit (a filter can legitimately select nothing).
  JoinStepResult step;
  if (build.empty() || probe.empty()) {
    auto empty = RowIdList::Allocate(1, config);
    if (!empty.ok()) return empty.status();
    step.probe_rows = std::move(empty).value();
    return step;
  }

  join::JoinConfig jc = ToJoinConfig(config, /*materialize=*/true);
  join::Materializer sink(config.num_threads, EffectiveResource(config),
                          join::Materializer::kDefaultChunkTuples,
                          config.arena_pool);
  jc.output = &sink;
  auto jr = join::RhoJoin(build, probe, jc);
  if (!jr.ok()) return jr.status();
  step.matches = jr.value().matches;
  if (rec != nullptr) rec->Absorb(name, jr.value().phases);

  // Project the probe-side row ids out of the materialized output; this
  // is the input selection vector of the next operator.
  auto rows = RowIdList::Allocate(step.matches, config);
  if (!rows.ok()) return rows.status();
  step.probe_rows = std::move(rows).value();
  uint64_t k = 0;
  uint64_t* ids = step.probe_rows.ids();
  sink.ForEachChunk([&](const JoinOutputTuple* chunk, size_t n) {
    for (size_t i = 0; i < n; ++i) ids[k++] = chunk[i].probe_payload;
  });
  step.probe_rows.set_count(k);
  // The materialized join output plus the row-id projection of it; both
  // are written here and re-read by the next operator.
  ChargeBytesMaterialized(step.matches * sizeof(JoinOutputTuple) +
                          k * sizeof(uint64_t));
  return step;
}

Result<uint64_t> CountingJoin(const Relation& build, const Relation& probe,
                              const QueryConfig& config, OpRecorder* rec,
                              const std::string& name) {
  if (build.empty() || probe.empty()) return uint64_t{0};
  join::JoinConfig jc = ToJoinConfig(config, /*materialize=*/false);
  auto jr = join::RhoJoin(build, probe, jc);
  if (!jr.ok()) return jr.status();
  if (rec != nullptr) rec->Absorb(name, jr.value().phases);
  return jr.value().matches;
}

namespace {

// Per-thread partial rows are padded to a whole cache line so lanes
// never false-share, and the padded table is the unit the aggregation
// operators allocate from the query's resource.
constexpr size_t PartialStride(size_t groups, size_t elem_bytes) {
  const size_t per_line = kCacheLineSize / elem_bytes;
  return (groups + per_line - 1) / per_line * per_line;
}

// Shared implementation: group id of row `id` comes from `group_of`.
template <typename GroupOf>
Result<std::vector<uint64_t>> GroupCountImpl(size_t n, GroupOf group_of,
                                             int num_groups,
                                             size_t gather_bytes,
                                             const QueryConfig& config,
                                             OpRecorder* rec,
                                             const std::string& name) {
  if (num_groups <= 0 || num_groups > 4096) {
    return Status::InvalidArgument("num_groups must be in [1, 4096]");
  }
  const int threads = config.num_threads;
  // The per-thread partial tables are the operator's only substantive
  // allocation, so they come from the query's resource (enclave-charged
  // under SGX settings) like every other operator intermediate; only the
  // num_groups-sized result copy-out below leaves through the host heap.
  const size_t stride = PartialStride(num_groups, sizeof(uint64_t));
  auto partial_buf = EffectiveResource(config)->AllocateZeroed(
      static_cast<size_t>(threads) * stride * sizeof(uint64_t));
  if (!partial_buf.ok()) return partial_buf.status();
  AlignedBuffer partials = std::move(partial_buf).value();
  uint64_t* const partial_rows = partials.As<uint64_t>();
  std::atomic<bool> out_of_range{false};

  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(n, threads, tid);
    uint64_t* local = partial_rows + static_cast<size_t>(tid) * stride;
    for (size_t i = r.begin; i < r.end; ++i) {
      int g = group_of(i);
      if (g < 0 || g >= num_groups) {
        out_of_range.store(true, std::memory_order_relaxed);
        return;
      }
      ++local[g];
    }
  });
  SGXB_RETURN_NOT_OK(run_status);
  if (out_of_range.load()) {
    return Status::Internal("group code out of range in " + name);
  }

  std::vector<uint64_t> counts(num_groups, 0);
  for (int t = 0; t < threads; ++t) {
    const uint64_t* local = partial_rows + static_cast<size_t>(t) * stride;
    for (int g = 0; g < num_groups; ++g) counts[g] += local[g];
  }
  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = n * sizeof(uint64_t);
    p.rand_reads = n;
    p.rand_read_working_set = gather_bytes;
    p.rand_writes = n;
    p.rand_write_working_set = num_groups * sizeof(uint64_t);
    p.loop_iterations = n;
    p.ilp = perf::IlpClass::kReferenceLoop;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return counts;
}

}  // namespace

Result<std::vector<uint64_t>> GroupCountU8(const Column<uint8_t>& col,
                                           const RowIdList* rows,
                                           int num_groups,
                                           const QueryConfig& config,
                                           OpRecorder* rec,
                                           const std::string& name) {
  const uint8_t* data = col.data();
  if (rows == nullptr) {
    return GroupCountImpl(
        col.num_values(), [data](size_t i) { return int{data[i]}; },
        num_groups, col.size_bytes(), config, rec, name);
  }
  const uint64_t* ids = rows->ids();
  return GroupCountImpl(
      rows->count(),
      [data, ids](size_t i) { return int{data[ids[i]]}; }, num_groups,
      col.size_bytes(), config, rec, name);
}

Result<std::vector<uint64_t>> GroupCountU8ViaFk(
    const Column<uint8_t>& values, const Column<uint32_t>& fk,
    const RowIdList& rows, int num_groups, const QueryConfig& config,
    OpRecorder* rec, const std::string& name) {
  const uint8_t* vals = values.data();
  const uint32_t* keys = fk.data();
  const uint64_t* ids = rows.ids();
  return GroupCountImpl(
      rows.count(),
      [vals, keys, ids](size_t i) { return int{vals[keys[ids[i]]]}; },
      num_groups, values.size_bytes() + fk.size_bytes(), config, rec,
      name);
}

Result<std::vector<GroupAgg>> GroupSumU32By2U8(
    const Column<uint32_t>& value, const Column<uint8_t>& g1, int num_g1,
    const Column<uint8_t>& g2, int num_g2, const RowIdList* rows,
    const QueryConfig& config, OpRecorder* rec,
    const std::string& name) {
  if (num_g1 <= 0 || num_g2 <= 0 || num_g1 * num_g2 > 4096) {
    return Status::InvalidArgument("bad group dimensions");
  }
  const int groups = num_g1 * num_g2;
  const size_t n = rows != nullptr ? rows->count() : value.num_values();
  const uint64_t* ids = rows != nullptr ? rows->ids() : nullptr;
  const uint32_t* vals = value.data();
  const uint8_t* d1 = g1.data();
  const uint8_t* d2 = g2.data();

  const int threads = config.num_threads;
  // Resource-routed like GroupCountImpl: padded per-thread rows from the
  // query's resource, with only the groups-sized result copied out.
  static_assert(std::is_trivially_destructible_v<GroupAgg>);
  const size_t stride = PartialStride(groups, sizeof(GroupAgg));
  auto partial_buf = EffectiveResource(config)->AllocateZeroed(
      static_cast<size_t>(threads) * stride * sizeof(GroupAgg));
  if (!partial_buf.ok()) return partial_buf.status();
  AlignedBuffer partials = std::move(partial_buf).value();
  GroupAgg* const partial_rows = partials.As<GroupAgg>();
  std::atomic<bool> out_of_range{false};

  WallTimer timer;
  Status run_status = ParallelRun(threads, [&](int tid) {
    Range r = SplitRange(n, threads, tid);
    GroupAgg* local = partial_rows + static_cast<size_t>(tid) * stride;
    for (size_t i = r.begin; i < r.end; ++i) {
      const size_t id = ids != nullptr ? ids[i] : i;
      const int g = d1[id] * num_g2 + d2[id];
      if (d1[id] >= num_g1 || d2[id] >= num_g2) {
        out_of_range.store(true, std::memory_order_relaxed);
        return;
      }
      ++local[g].count;
      local[g].sum += vals[id];
    }
  });
  SGXB_RETURN_NOT_OK(run_status);
  if (out_of_range.load()) {
    return Status::Internal("group code out of range in " + name);
  }

  std::vector<GroupAgg> result(groups);
  for (int t = 0; t < threads; ++t) {
    const GroupAgg* local = partial_rows + static_cast<size_t>(t) * stride;
    for (int g = 0; g < groups; ++g) {
      result[g].count += local[g].count;
      result[g].sum += local[g].sum;
    }
  }
  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = n * (sizeof(uint64_t) + sizeof(uint32_t) + 2);
    p.rand_writes = n;
    p.rand_write_working_set = groups * sizeof(GroupAgg);
    p.loop_iterations = n;
    p.ilp = perf::IlpClass::kReferenceLoop;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return result;
}

Result<uint64_t> SumProductU32(const Column<uint32_t>& a,
                               const Column<uint32_t>& b,
                               const RowIdList& rows,
                               const QueryConfig& config, OpRecorder* rec,
                               const std::string& name) {
  const uint32_t* da = a.data();
  const uint32_t* db = b.data();
  const uint64_t* ids = rows.ids();
  const int threads = config.num_threads;
  // Morsel-driven reduction: lanes accumulate into per-lane slots (a lane
  // runs many morsels, so slots are indexed by lane, not morsel) and the
  // slots are summed after the gang completes.
  std::vector<uint64_t> partials(threads, 0);
  ParallelForOptions opts;
  opts.num_threads = threads;

  WallTimer timer;
  Status run_status = ParallelFor(
      rows.count(), /*grain=*/64 * 1024,
      [&](Range r, int lane) {
        uint64_t local = 0;
        for (size_t i = r.begin; i < r.end; ++i) {
          const size_t id = ids[i];
          local += static_cast<uint64_t>(da[id]) * db[id];
        }
        partials[lane] += local;
      },
      opts);
  SGXB_RETURN_NOT_OK(run_status);
  uint64_t total = 0;
  for (uint64_t v : partials) total += v;

  if (rec != nullptr) {
    perf::AccessProfile p;
    p.seq_read_bytes = rows.count() * sizeof(uint64_t);
    p.rand_reads = rows.count() * 2;
    p.rand_read_working_set = a.size_bytes() + b.size_bytes();
    p.loop_iterations = rows.count();
    p.ilp = perf::IlpClass::kStreaming;
    rec->Record(name, static_cast<double>(timer.ElapsedNanos()), p,
                threads);
  }
  return total;
}

}  // namespace sgxb::tpch
