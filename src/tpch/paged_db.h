// TPC-H database registered with the out-of-EPC buffer manager.
//
// Build() pushes every column of a generated TpchDb into a
// storage::BufferManager — each column is partitioned, compressed, and
// encrypted into untrusted spill images at registration — and View()
// produces the TpchDbView the (templated) query bodies run over. The
// source TpchDb can be dropped after Build(): queries touch only the
// manager's partitions from then on, so the trusted working set is the
// manager's pool, not the dataset (the headline bench_ext_oepc setup —
// SF 10 data through an enclave pool sized for SF 1).

#ifndef SGXB_TPCH_PAGED_DB_H_
#define SGXB_TPCH_PAGED_DB_H_

#include "storage/buffer_manager.h"
#include "tpch/db_view.h"

namespace sgxb::tpch {

class PagedTpchDb {
 public:
  /// \brief Registers all columns of `db` with `bm` (which must outlive
  /// the returned object). Spill images are built eagerly; nothing is
  /// resident until the first pin.
  static Result<PagedTpchDb> Build(const TpchDb& db,
                                   storage::BufferManager* bm);

  /// \brief View over the paged columns; pass to the query entry points.
  TpchDbView View() const;

 private:
  double scale_factor_ = 0;
  size_t customer_rows_ = 0;
  size_t orders_rows_ = 0;
  size_t lineitem_rows_ = 0;
  size_t part_rows_ = 0;

  storage::PagedColumn<uint32_t>* c_custkey_ = nullptr;
  storage::PagedColumn<uint8_t>* c_mktsegment_ = nullptr;
  storage::PagedColumn<uint32_t>* o_orderkey_ = nullptr;
  storage::PagedColumn<uint32_t>* o_custkey_ = nullptr;
  storage::PagedColumn<uint32_t>* o_orderdate_ = nullptr;
  storage::PagedColumn<uint8_t>* o_orderpriority_ = nullptr;
  storage::PagedColumn<uint32_t>* l_orderkey_ = nullptr;
  storage::PagedColumn<uint32_t>* l_partkey_ = nullptr;
  storage::PagedColumn<uint32_t>* l_quantity_ = nullptr;
  storage::PagedColumn<uint32_t>* l_extendedprice_ = nullptr;
  storage::PagedColumn<uint32_t>* l_discount_ = nullptr;
  storage::PagedColumn<uint32_t>* l_shipdate_ = nullptr;
  storage::PagedColumn<uint32_t>* l_commitdate_ = nullptr;
  storage::PagedColumn<uint32_t>* l_receiptdate_ = nullptr;
  storage::PagedColumn<uint8_t>* l_shipmode_ = nullptr;
  storage::PagedColumn<uint8_t>* l_shipinstruct_ = nullptr;
  storage::PagedColumn<uint8_t>* l_returnflag_ = nullptr;
  storage::PagedColumn<uint8_t>* l_linestatus_ = nullptr;
  storage::PagedColumn<uint32_t>* p_partkey_ = nullptr;
  storage::PagedColumn<uint32_t>* p_size_ = nullptr;
  storage::PagedColumn<uint8_t>* p_brand_ = nullptr;
  storage::PagedColumn<uint8_t>* p_container_ = nullptr;
};

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_PAGED_DB_H_
