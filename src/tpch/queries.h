// Simplified TPC-H queries 3, 10, 12, and 19 (paper Section 6).
//
// Following the paper's setup: only scans and joins remain, the final
// aggregation is count(*), dates and categorical strings are integers, and
// every operator fully materializes its output (no pipelining). All joins
// use the (optionally SGXv2-optimized) RHO join.

#ifndef SGXB_TPCH_QUERIES_H_
#define SGXB_TPCH_QUERIES_H_

#include "obs/query_report.h"
#include "perf/access_profile.h"
#include "tpch/db_view.h"
#include "tpch/operators.h"
#include "tpch/tpch_schema.h"

namespace sgxb::plan {
class Plan;
}

namespace sgxb::tpch {

struct QueryResult {
  uint64_t count = 0;
  double host_ns = 0;
  perf::PhaseBreakdown phases;
  /// Extension: per-group counts when the query ends in a GROUP BY
  /// (empty for the paper's count(*) finals).
  std::vector<uint64_t> group_counts;
  /// Registry-counter deltas over this execution (transitions, EDMM page
  /// churn, arena/pool and executor activity). Filled by RunQuery; the
  /// RunQ* entry points leave it default (their callers own the window).
  obs::QueryReport report;
  /// The planner's annotated plan dump (node tree, chosen join flavour /
  /// probe mode / estimated costs). Filled only when SGXBENCH_EXPLAIN is
  /// set; empty otherwise.
  std::string explain;
  /// The adaptive controller's picks for this execution (filled by
  /// ExecutePlan only when SGXBENCH_ADAPTIVE is on; `active` stays false
  /// otherwise and the report renders without it). RunQuery copies it
  /// into `report.tuning`.
  obs::TuningReport tuning;
};

// Every entry point has a TpchDbView overload: the view's columns may be
// resident or paged through the out-of-EPC buffer manager
// (tpch/paged_db.h, docs/storage.md); both overloads run the same
// (templated) body and produce byte-identical results.

/// \brief Q3: shipping priority. customer (mktsegment = BUILDING) JOIN
/// orders (orderdate < 1995-03-15) JOIN lineitem (shipdate > 1995-03-15).
Result<QueryResult> RunQ3(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ3(const TpchDbView& db, const QueryConfig& config);

/// \brief Q10: returned items. customer JOIN orders (orderdate in
/// [1993-10-01, 1994-01-01)) JOIN lineitem (returnflag = 'R').
Result<QueryResult> RunQ10(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ10(const TpchDbView& db, const QueryConfig& config);

/// \brief Q12: shipping modes. orders JOIN lineitem (shipmode in {MAIL,
/// SHIP}, commitdate < receiptdate, shipdate < commitdate, receiptdate in
/// [1994-01-01, 1995-01-01)).
Result<QueryResult> RunQ12(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ12(const TpchDbView& db, const QueryConfig& config);

/// \brief Q19: discounted revenue. part JOIN lineitem with the disjunction
/// of three brand/container/quantity/size branches; executed as three
/// disjoint joins (branches select distinct brands) whose counts sum.
Result<QueryResult> RunQ19(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ19(const TpchDbView& db, const QueryConfig& config);

/// \brief Any catalog query by number (plan/catalog.h): the paper's
/// 1/3/6/10/12/19 plus the plan-only queries (105/106/112). Dispatch is
/// table-driven off the catalog; unknown numbers return
/// Status::InvalidArgument listing what exists.
Result<QueryResult> RunQuery(int query_number, const TpchDb& db,
                             const QueryConfig& config);
Result<QueryResult> RunQuery(int query_number, const TpchDbView& db,
                             const QueryConfig& config);

/// \brief Runs an arbitrary validated plan through the planner (mode +
/// join-flavour choice, then lowering), with the same report/metric
/// attribution as RunQuery. This is how the serving layer submits plans
/// directly (serve::QueryRequest::plan) and how plan-only queries run.
Result<QueryResult> RunPlan(const plan::Plan& plan, const TpchDb& db,
                            const QueryConfig& config);
Result<QueryResult> RunPlan(const plan::Plan& plan, const TpchDbView& db,
                            const QueryConfig& config);

/// \brief Extension: Q12 with its real GROUP BY final — line counts per
/// priority class (group 0 = high: URGENT/HIGH orders; group 1 = low).
/// The paper replaces this aggregation with count(*); this restores it.
Result<QueryResult> RunQ12Grouped(const TpchDb& db,
                                  const QueryConfig& config);
Result<QueryResult> RunQ12Grouped(const TpchDbView& db,
                                  const QueryConfig& config);

/// \brief Oracle for RunQ12Grouped: (high_count, low_count).
std::pair<uint64_t, uint64_t> ReferenceQ12Grouped(const TpchDb& db);

/// \brief Extension Q1: pricing summary. Pure scan + GROUP BY
/// (returnflag, linestatus) with count(*) and sum(quantity) per group
/// over lineitem rows with shipdate <= 1998-09-02. group_counts holds
/// the per-group counts (flag * kNumLineStatuses + status); `count` is
/// their total.
Result<QueryResult> RunQ1(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ1(const TpchDbView& db, const QueryConfig& config);

/// \brief Extension Q6: forecasting revenue. Pure scan:
/// sum(extendedprice * discount) over shipdate in 1994, discount in
/// [5, 7], quantity < 24. `count` holds the qualifying row count and
/// group_counts[0] the revenue sum.
Result<QueryResult> RunQ6(const TpchDb& db, const QueryConfig& config);
Result<QueryResult> RunQ6(const TpchDbView& db, const QueryConfig& config);

/// \brief Oracles for the extension queries.
std::vector<uint64_t> ReferenceQ1Counts(const TpchDb& db);
std::vector<uint64_t> ReferenceQ1Sums(const TpchDb& db);
uint64_t ReferenceQ6(const TpchDb& db);

/// \brief Reference (single-threaded, obviously-correct) evaluation of the
/// same queries; the test oracle.
uint64_t ReferenceQ3(const TpchDb& db);
uint64_t ReferenceQ10(const TpchDb& db);
uint64_t ReferenceQ12(const TpchDb& db);
uint64_t ReferenceQ19(const TpchDb& db);

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_QUERIES_H_
