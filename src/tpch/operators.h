// Materializing query operators (paper Section 6).
//
// The paper's query framework has no pipelining: "each operator fully
// materializes its output", MonetDB-style. Selections produce row-id
// lists (using the SIMD scan kernels from src/scan), refinements thin an
// existing row-id list with further predicates, gathers turn row-id lists
// into join input relations (key + row id), and joins run the optimized
// RHO join with materialized outputs feeding the next operator.

#ifndef SGXB_TPCH_OPERATORS_H_
#define SGXB_TPCH_OPERATORS_H_

#include <optional>
#include <string>

#include "common/aligned_buffer.h"
#include "common/relation.h"
#include "common/status.h"
#include "join/join_common.h"
#include "mem/arena_pool.h"
#include "mem/enclave_resource.h"
#include "obs/trace.h"
#include "perf/access_profile.h"
#include "sgx/enclave.h"
#include "storage/column_view.h"

namespace sgxb::tpch {

struct QueryConfig {
  int num_threads = 1;
  /// kUnrolledReordered is the paper's optimized configuration.
  KernelFlavor flavor = KernelFlavor::kUnrolledReordered;
  ExecutionSetting setting = ExecutionSetting::kPlainCpu;
  sgx::Enclave* enclave = nullptr;
  int radix_bits = 12;
  /// Probe-loop scheduling for the hash-probe operators, forwarded to the
  /// join layer (exec/probe_pipeline.h); unset = the join's own default.
  std::optional<exec::ProbeMode> probe_mode;
  /// Group size / ring width; 0 = calibrated default.
  int probe_batch = 0;
  /// Memory resource every operator output (row-id lists, gathered
  /// relations, join intermediates) comes from; null = derived from
  /// `setting`/`enclave` (mem::ResourceFor).
  mem::MemoryResource* resource = nullptr;
  /// Chunk pool recycling operator memory across queries (docs/memory.md
  /// — the Figure 11 warm-reuse mechanism); forwarded to the join layer.
  mem::ArenaPool* arena_pool = nullptr;
  /// Fused, morsel-driven execution (docs/pipelines.md): run each query
  /// as a short DAG of pipelines with per-morsel selection vectors
  /// instead of the paper's operator-at-a-time materialization. Unset =
  /// SGXBENCH_PIPELINE (default off, preserving the paper's semantics).
  std::optional<bool> pipeline;
  /// Metrics attribution domain for this query's report (see
  /// Registry::AcquireDomain in obs/metrics.h); -1 = unattributed, the
  /// report diffs the process-global registry. Set by the serving layer so
  /// concurrent queries get disjoint QueryReports.
  int obs_domain = -1;
};

/// \brief Resolves QueryConfig::pipeline against SGXBENCH_PIPELINE.
bool PipelineEnabled(const QueryConfig& config);

/// \brief Returns `config` with every env-defaulted knob pinned to its
/// current resolved value: pipeline (SGXBENCH_PIPELINE), probe_mode
/// (SGXBENCH_PROBE_MODE / flavor default) and probe_batch (calibrated).
/// The serving layer calls this once at admission so a query's plan does
/// not depend on getenv() calls racing deep inside operators while other
/// queries run — and so two queries admitted under different settings
/// keep the settings they were admitted with.
QueryConfig ResolvedQueryConfig(const QueryConfig& config);

/// \brief Adds `bytes` to the tpch.bytes_materialized counter (surfaced
/// per query as QueryReport::bytes_materialized). Operators call this for
/// every intermediate they write that a downstream operator re-reads —
/// row-id lists, gathered relations, join outputs, pipeline-breaker
/// sinks — so fused and materializing runs of the same query can be
/// compared on avoided traffic, not just wall time.
void ChargeBytesMaterialized(uint64_t bytes);

/// \brief The resource the query's operators allocate from (see
/// QueryConfig::resource).
mem::MemoryResource* EffectiveResource(const QueryConfig& config);

/// \brief A materialized list of row ids (selection vector).
class RowIdList {
 public:
  RowIdList() = default;
  static Result<RowIdList> Allocate(size_t capacity,
                                    const QueryConfig& config);

  uint64_t* ids() { return buf_.As<uint64_t>(); }
  const uint64_t* ids() const { return buf_.As<uint64_t>(); }
  uint64_t count() const { return count_; }
  void set_count(uint64_t c) { count_ = c; }
  size_t capacity() const { return buf_.size() / sizeof(uint64_t); }

 private:
  AlignedBuffer buf_;
  uint64_t count_ = 0;
};

/// \brief Accumulates per-operator phases for a query execution.
class OpRecorder {
 public:
  void Record(const std::string& name, double host_ns,
              const perf::AccessProfile& profile, int threads) {
    perf::PhaseStats s;
    s.name = name;
    s.host_ns = host_ns;
    s.profile = profile;
    s.threads = threads;
    if (obs::TracingEnabled()) {
      obs::TraceCompleteEndingNow(obs::InternName(name), "op", host_ns);
    }
    breakdown_.Add(std::move(s));
  }

  /// \brief Appends another breakdown, prefixing phase names.
  void Absorb(const std::string& prefix,
              const perf::PhaseBreakdown& other);

  perf::PhaseBreakdown Take() { return std::move(breakdown_); }

 private:
  perf::PhaseBreakdown breakdown_;
};

// --- Selections ---------------------------------------------------------
// Operators take storage::ColumnView (implicitly convertible from
// Column<T>): resident views keep the historical raw-pointer fast paths;
// paged views pin one partition at a time through the out-of-EPC buffer
// manager (docs/storage.md).

/// \brief sigma(lo <= col <= hi) over a uint8 column via the SIMD scan.
Result<RowIdList> FilterU8Range(storage::ColumnView<uint8_t> col,
                                uint8_t lo, uint8_t hi,
                                const QueryConfig& config, OpRecorder* rec,
                                const std::string& name);

/// \brief sigma(lo <= col <= hi) over a uint32 column.
Result<RowIdList> FilterU32Range(storage::ColumnView<uint32_t> col,
                                 uint32_t lo, uint32_t hi,
                                 const QueryConfig& config, OpRecorder* rec,
                                 const std::string& name);

// --- Refinements (thin an existing row-id list) -----------------------------

/// \brief Keeps ids where col[id]'s code bit is set in `set_mask`
/// (codes must be < 64).
Result<RowIdList> RefineU8InSet(const RowIdList& in,
                                storage::ColumnView<uint8_t> col,
                                uint64_t set_mask,
                                const QueryConfig& config, OpRecorder* rec,
                                const std::string& name);

/// \brief Keeps ids where lo <= col[id] <= hi.
Result<RowIdList> RefineU32Range(const RowIdList& in,
                                 storage::ColumnView<uint32_t> col,
                                 uint32_t lo, uint32_t hi,
                                 const QueryConfig& config, OpRecorder* rec,
                                 const std::string& name);

/// \brief Keeps ids where a[id] < b[id] (e.g. commitdate < receiptdate).
Result<RowIdList> RefineLess(const RowIdList& in,
                             storage::ColumnView<uint32_t> a,
                             storage::ColumnView<uint32_t> b,
                             const QueryConfig& config, OpRecorder* rec,
                             const std::string& name);

// --- Gather / join ------------------------------------------------------------

/// \brief Builds a join input relation from `keys[id]` for each id in
/// `rows` (payload = row id). Pass nullptr to gather every row.
Result<Relation> GatherKeys(storage::ColumnView<uint32_t> keys,
                            const RowIdList* rows,
                            const QueryConfig& config, OpRecorder* rec,
                            const std::string& name);

/// \brief Result of an intermediate (materializing) join step.
struct JoinStepResult {
  uint64_t matches = 0;
  /// Probe-side row ids of all matches (for the next operator).
  RowIdList probe_rows;
};

/// \brief Materializing hash-join step; extracts probe-side row ids.
/// `algo` picks the flavour (RHO default; PHT and CHT are the planner's
/// cost-model alternatives — all three honor the materializer sink).
Result<JoinStepResult> MaterializingJoin(
    const Relation& build, const Relation& probe, const QueryConfig& config,
    OpRecorder* rec, const std::string& name,
    join::JoinAlgorithm algo = join::JoinAlgorithm::kRho);

/// \brief Final count(*) join: no materialization, returns match count.
Result<uint64_t> CountingJoin(
    const Relation& build, const Relation& probe, const QueryConfig& config,
    OpRecorder* rec, const std::string& name,
    join::JoinAlgorithm algo = join::JoinAlgorithm::kRho);

// --- Aggregation (extension) ---------------------------------------------
// The paper replaces final aggregations with count(*); these operators
// restore the real queries' GROUP BY finals (e.g. Q12 groups line counts
// into high/low order priority).

/// \brief GROUP BY count over `col[id]` for each id in `rows` (all rows
/// if null). Returns `num_groups` counts; codes >= num_groups are
/// rejected as kInternal.
Result<std::vector<uint64_t>> GroupCountU8(storage::ColumnView<uint8_t> col,
                                           const RowIdList* rows,
                                           int num_groups,
                                           const QueryConfig& config,
                                           OpRecorder* rec,
                                           const std::string& name);

/// \brief GROUP BY count via a foreign key: for each id in `rows`, the
/// group is `values[fk[id]]` (e.g. order priority of a lineitem's order).
Result<std::vector<uint64_t>> GroupCountU8ViaFk(
    storage::ColumnView<uint8_t> values, storage::ColumnView<uint32_t> fk,
    const RowIdList& rows, int num_groups, const QueryConfig& config,
    OpRecorder* rec, const std::string& name);

/// \brief Per-group count and sum (Q1-style aggregate).
struct GroupAgg {
  uint64_t count = 0;
  uint64_t sum = 0;
};

/// \brief GROUP BY (g1, g2) computing count(*) and sum(value) per group;
/// the group index is g1[id] * num_g2 + g2[id]. `rows` may be null for
/// all rows. Returns num_g1 * num_g2 aggregates.
Result<std::vector<GroupAgg>> GroupSumU32By2U8(
    storage::ColumnView<uint32_t> value, storage::ColumnView<uint8_t> g1,
    int num_g1, storage::ColumnView<uint8_t> g2, int num_g2,
    const RowIdList* rows, const QueryConfig& config, OpRecorder* rec,
    const std::string& name);

/// \brief sum(a[id] * b[id]) over the row-id list (Q6's revenue
/// aggregate: sum(l_extendedprice * l_discount)).
Result<uint64_t> SumProductU32(storage::ColumnView<uint32_t> a,
                               storage::ColumnView<uint32_t> b,
                               const RowIdList& rows,
                               const QueryConfig& config, OpRecorder* rec,
                               const std::string& name);

}  // namespace sgxb::tpch

#endif  // SGXB_TPCH_OPERATORS_H_
