// MemoryResource backed by a simulated SGX enclave's heap.
//
// Every allocation charges Enclave::ChargeAlloc (page-granular, paying
// EDMM growth costs for dynamic enclaves) and every release credits it via
// the buffer's release hook — so enclave heap stats reflect each trusted
// allocation an operator makes, and EPC exhaustion surfaces as a Status
// instead of an abort.

#ifndef SGXB_MEM_ENCLAVE_RESOURCE_H_
#define SGXB_MEM_ENCLAVE_RESOURCE_H_

#include "mem/memory_resource.h"
#include "sgx/enclave.h"

namespace sgxb::mem {

class EnclaveResource final : public MemoryResource {
 public:
  /// \brief Stateless wrapper: buffers it hands out stay valid for the
  /// enclave's lifetime, independent of this object.
  explicit EnclaveResource(sgx::Enclave* enclave) : enclave_(enclave) {}

  Placement placement() const override {
    return Placement{MemoryRegion::kEnclave,
                     enclave_->config().numa_node};
  }
  const char* name() const override { return "enclave"; }

  sgx::Enclave* enclave() const { return enclave_; }

 protected:
  Result<AlignedBuffer> DoAllocate(size_t bytes,
                                   size_t alignment) override {
    return enclave_->Allocate(bytes, alignment);
  }

 private:
  sgx::Enclave* enclave_;
};

/// \brief Interned EnclaveResource for `enclave` (one per enclave
/// pointer, process lifetime). The resource must not be used after its
/// enclave is destroyed.
MemoryResource* ForEnclave(sgx::Enclave* enclave);

/// \brief The resource the execution setting implies: the enclave's heap
/// when data lives inside a live enclave, the kEnclave-tagged simulation
/// when no enclave instance exists, untrusted memory otherwise. This is
/// the one place the "region from setting" rule survives — everything
/// downstream reads the resource's placement tag.
MemoryResource* ResourceFor(ExecutionSetting setting,
                            sgx::Enclave* enclave, int numa_node = 0);

}  // namespace sgxb::mem

#endif  // SGXB_MEM_ENCLAVE_RESOURCE_H_
