#include "mem/enclave_resource.h"

#include <memory>
#include <mutex>
#include <unordered_map>

namespace sgxb::mem {

namespace {
std::mutex g_intern_mu;
std::unordered_map<sgx::Enclave*, std::unique_ptr<EnclaveResource>>*
    g_interned = nullptr;
}  // namespace

MemoryResource* ForEnclave(sgx::Enclave* enclave) {
  std::lock_guard<std::mutex> lock(g_intern_mu);
  if (g_interned == nullptr) {
    // Leaked intentionally: resources are process-lifetime singletons and
    // destruction order against static enclaves is otherwise fraught.
    g_interned = new std::unordered_map<sgx::Enclave*,
                                        std::unique_ptr<EnclaveResource>>();
  }
  auto it = g_interned->find(enclave);
  if (it == g_interned->end()) {
    it = g_interned
             ->emplace(enclave, std::make_unique<EnclaveResource>(enclave))
             .first;
  }
  return it->second.get();
}

MemoryResource* ResourceFor(ExecutionSetting setting,
                            sgx::Enclave* enclave, int numa_node) {
  if (setting != ExecutionSetting::kSgxDataInEnclave) {
    return Untrusted(numa_node);
  }
  if (enclave != nullptr) return ForEnclave(enclave);
  return SimulatedEnclave(numa_node);
}

}  // namespace sgxb::mem
