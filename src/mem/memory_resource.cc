#include "mem/memory_resource.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <string>

namespace sgxb::mem {

namespace {

// Failure-injection state. A single scope arms it; counters are atomic so
// concurrent allocators contend correctly for the "next N fail" budget.
std::atomic<bool> g_inject_armed{false};
std::atomic<uint64_t> g_inject_skip{0};
std::atomic<uint64_t> g_inject_fail{0};
std::atomic<uint64_t> g_inject_hits{0};

bool ShouldInjectFailure() {
  if (!g_inject_armed.load(std::memory_order_acquire)) return false;
  // Burn through the skip budget first.
  uint64_t skip = g_inject_skip.load(std::memory_order_relaxed);
  while (skip > 0) {
    if (g_inject_skip.compare_exchange_weak(skip, skip - 1,
                                            std::memory_order_relaxed)) {
      return false;
    }
  }
  uint64_t fail = g_inject_fail.load(std::memory_order_relaxed);
  while (fail > 0) {
    if (g_inject_fail.compare_exchange_weak(fail, fail - 1,
                                            std::memory_order_relaxed)) {
      g_inject_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

class HostResource final : public MemoryResource {
 public:
  HostResource(MemoryRegion region, int numa_node)
      : placement_{region, numa_node} {}

  Placement placement() const override { return placement_; }
  const char* name() const override {
    return placement_.region == MemoryRegion::kEnclave
               ? "simulated-enclave"
               : "untrusted";
  }

 protected:
  Result<AlignedBuffer> DoAllocate(size_t bytes,
                                   size_t alignment) override {
    // Region-tagged host memory is the sanctioned path for kEnclave tags
    // without a live enclave; mark it so the bypass guard stays quiet.
    ScopedTrustedAllocSanction sanction;
    return AlignedBuffer::Allocate(bytes, placement_.region,
                                   placement_.numa_node, alignment);
  }

 private:
  Placement placement_;
};

constexpr int kMaxNumaNodes = 8;

}  // namespace

Result<AlignedBuffer> MemoryResource::Allocate(size_t bytes,
                                               size_t alignment) {
  if (ShouldInjectFailure()) {
    return Status::OutOfMemory("injected allocation failure (" +
                               std::string(name()) + ")");
  }
  return DoAllocate(bytes, alignment);
}

Result<AlignedBuffer> MemoryResource::AllocateZeroed(size_t bytes,
                                                     size_t alignment) {
  auto buf = Allocate(bytes, alignment);
  if (buf.ok() && buf.value().data() != nullptr) {
    std::memset(buf.value().data(), 0, bytes);
  }
  return buf;
}

MemoryResource* Untrusted(int numa_node) {
  static HostResource nodes[kMaxNumaNodes] = {
      {MemoryRegion::kUntrusted, 0}, {MemoryRegion::kUntrusted, 1},
      {MemoryRegion::kUntrusted, 2}, {MemoryRegion::kUntrusted, 3},
      {MemoryRegion::kUntrusted, 4}, {MemoryRegion::kUntrusted, 5},
      {MemoryRegion::kUntrusted, 6}, {MemoryRegion::kUntrusted, 7}};
  if (numa_node < 0 || numa_node >= kMaxNumaNodes) numa_node = 0;
  return &nodes[numa_node];
}

MemoryResource* SimulatedEnclave(int numa_node) {
  static HostResource nodes[kMaxNumaNodes] = {
      {MemoryRegion::kEnclave, 0}, {MemoryRegion::kEnclave, 1},
      {MemoryRegion::kEnclave, 2}, {MemoryRegion::kEnclave, 3},
      {MemoryRegion::kEnclave, 4}, {MemoryRegion::kEnclave, 5},
      {MemoryRegion::kEnclave, 6}, {MemoryRegion::kEnclave, 7}};
  if (numa_node < 0 || numa_node >= kMaxNumaNodes) numa_node = 0;
  return &nodes[numa_node];
}

perf::ExecutionEnv EnvFor(const MemoryResource& resource,
                          ExecutionSetting setting, int threads,
                          bool data_remote) {
  perf::ExecutionEnv env;
  env.setting = setting;
  env.threads = threads;
  env.data_remote = data_remote;
  env.data_region = resource.placement().region;
  return env;
}

ScopedAllocFailure::ScopedAllocFailure(uint64_t fail_after,
                                       uint64_t count) {
  assert(!g_inject_armed.load(std::memory_order_relaxed) &&
         "only one ScopedAllocFailure may be active");
  g_inject_skip.store(fail_after, std::memory_order_relaxed);
  g_inject_fail.store(count, std::memory_order_relaxed);
  g_inject_hits.store(0, std::memory_order_relaxed);
  g_inject_armed.store(true, std::memory_order_release);
}

ScopedAllocFailure::~ScopedAllocFailure() {
  g_inject_armed.store(false, std::memory_order_release);
  g_inject_skip.store(0, std::memory_order_relaxed);
  g_inject_fail.store(0, std::memory_order_relaxed);
}

uint64_t ScopedAllocFailure::injected() const {
  return g_inject_hits.load(std::memory_order_relaxed);
}

}  // namespace sgxb::mem
