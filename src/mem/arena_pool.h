// Warm chunk reuse across queries (docs/memory.md).
//
// An ArenaPool caches arena chunks instead of returning them to the
// resource, so repeated queries against a long-lived enclave commit EDMM
// pages once (first query) and then run allocation-free — the Fig 11
// "static sizing" behaviour reproduced at the allocator level. Without a
// pool, a dynamic (edmm_trim) enclave trims freed pages after every query
// and re-pays the per-page commit cost on the next one.
//
// SGXBENCH_ARENA_REUSE=0 disables caching (Release frees immediately),
// which turns a pooled configuration back into per-query growth without
// touching code — the ablation knob bench_ablation_arena sweeps.
//
// Thread-safe; multiple Arenas (one per worker/query) may share a pool.
//
// Lifetime: cached chunks credit their resource when dropped, so a pool
// over mem::ForEnclave(e) must be Trim()ed or destroyed before
// DestroyEnclave(e).

#ifndef SGXB_MEM_ARENA_POOL_H_
#define SGXB_MEM_ARENA_POOL_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "mem/memory_resource.h"

namespace sgxb::mem {

/// \brief True unless SGXBENCH_ARENA_REUSE is "0"/"off"/"false".
bool ArenaReuseEnabled();

class ArenaPool {
 public:
  struct Stats {
    uint64_t reuse_hits = 0;     ///< Acquires served from the cache.
    uint64_t fresh_allocs = 0;   ///< Acquires that hit the resource.
    uint64_t released = 0;       ///< Chunks returned to the pool.
    /// Chunks acquired and not yet Release()d — chunks a live Arena (or a
    /// leak) is still holding. Balances to zero once every query drains;
    /// the serving layer's accounting test asserts exactly that.
    int64_t outstanding_chunks = 0;
    size_t cached_chunks = 0;
    size_t cached_bytes = 0;
  };

  /// \brief `chunk_bytes` 0 = DefaultArenaChunkBytes() (arena.h).
  explicit ArenaPool(MemoryResource* resource, size_t chunk_bytes = 0);
  ~ArenaPool() = default;

  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// \brief A chunk of at least `min_bytes` (rounded up to a chunk-size
  /// multiple): cached if one fits, else freshly allocated.
  Result<AlignedBuffer> Acquire(size_t min_bytes);

  /// \brief Returns a chunk for reuse. With reuse disabled the chunk is
  /// dropped (freed / credited through its own release path) instead.
  void Release(AlignedBuffer chunk);

  /// \brief Drops all cached chunks (e.g. to shed enclave heap).
  void Trim();

  Stats stats() const;
  size_t chunk_bytes() const { return chunk_bytes_; }
  MemoryResource* resource() const { return resource_; }

 private:
  MemoryResource* resource_;
  size_t chunk_bytes_;
  bool reuse_;
  mutable std::mutex mu_;
  std::multimap<size_t, AlignedBuffer> cache_;
  uint64_t reuse_hits_ = 0;
  uint64_t fresh_allocs_ = 0;
  uint64_t released_ = 0;
  int64_t outstanding_chunks_ = 0;
  size_t cached_bytes_ = 0;
};

}  // namespace sgxb::mem

#endif  // SGXB_MEM_ARENA_POOL_H_
