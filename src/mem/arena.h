// Bump-pointer arena over a MemoryResource (docs/memory.md).
//
// Operators allocate per-phase scratch (partitions, histograms, hash
// tables, temp buffers) from an Arena instead of making one resource
// allocation per structure. The arena grabs chunks (default 2 MiB,
// SGXBENCH_ARENA_CHUNK) from its resource — or from an ArenaPool for warm
// reuse across queries — and serves 64-byte-aligned carve-outs by bumping
// an offset. ArenaCheckpoint captures the high-water mark so a finished
// phase's memory can be rolled back: whole chunks past the checkpoint go
// back to the pool (or resource) immediately.
//
// Not thread-safe: one Arena per owner (a join invocation, a query, a
// worker). Concurrent operators share chunks through a (thread-safe)
// ArenaPool instead.

#ifndef SGXB_MEM_ARENA_H_
#define SGXB_MEM_ARENA_H_

#include <cstddef>
#include <vector>

#include "mem/memory_resource.h"

namespace sgxb::mem {

class ArenaPool;

/// \brief 2 MiB unless overridden by SGXBENCH_ARENA_CHUNK (bytes).
size_t DefaultArenaChunkBytes();

/// \brief Position marker for scoped rollback (see Arena::Save).
struct ArenaCheckpoint {
  size_t chunk_index = 0;
  size_t offset = 0;
};

class Arena {
 public:
  /// \brief `chunk_bytes` 0 = the pool's chunk size if `pool` is given,
  /// else DefaultArenaChunkBytes(). With a pool, chunks are acquired from
  /// and released to it (warm reuse); the pool's resource must match.
  explicit Arena(MemoryResource* resource, size_t chunk_bytes = 0,
                 ArenaPool* pool = nullptr);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// \brief Carves `bytes` aligned to `alignment` (power of two, <= the
  /// chunk alignment of 64 or any larger power of two). Oversized
  /// requests get a dedicated chunk. Returns Status on resource
  /// exhaustion / injected failure.
  Result<void*> Allocate(size_t bytes, size_t alignment = kCacheLineSize);

  /// \brief Typed array carve-out (uninitialized; T must be trivially
  /// destructible — the arena never runs destructors).
  template <typename T>
  Result<T*> AllocateArray(size_t n) {
    auto p = Allocate(n * sizeof(T),
                      alignof(T) > kCacheLineSize ? alignof(T)
                                                  : kCacheLineSize);
    if (!p.ok()) return p.status();
    return static_cast<T*>(p.value());
  }

  /// \brief Captures the current allocation position.
  ArenaCheckpoint Save() const;

  /// \brief Rolls back to `cp`: everything allocated after it is dead,
  /// and whole chunks past the checkpoint are released to the pool (or
  /// freed). Checkpoints must be rolled back newest-first.
  void Rollback(const ArenaCheckpoint& cp);

  /// \brief Forgets all allocations but RETAINS the chunks for reuse —
  /// the cheap per-query reset when the arena itself is long-lived.
  void Reset();

  /// \brief Bytes handed out since construction/Reset (including
  /// alignment padding).
  size_t used() const;
  /// \brief Bytes held in chunks (>= used).
  size_t reserved() const;
  size_t num_chunks() const { return chunks_.size(); }
  size_t chunk_bytes() const { return chunk_bytes_; }
  MemoryResource* resource() const { return resource_; }
  ArenaPool* pool() const { return pool_; }

 private:
  struct Chunk {
    AlignedBuffer buf;
    size_t used = 0;
  };

  Status AcquireChunk(size_t min_bytes);
  void ReleaseChunksAfter(size_t keep_count);

  MemoryResource* resource_;
  ArenaPool* pool_;
  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  // Chunk currently being bumped; chunks before it are frozen, chunks
  // after it are empties retained by Reset().
  size_t cur_ = 0;
};

}  // namespace sgxb::mem

#endif  // SGXB_MEM_ARENA_H_
