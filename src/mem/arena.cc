#include "mem/arena.h"

#include <cassert>
#include <cstdint>

#include "common/env.h"
#include "mem/arena_pool.h"
#include "obs/metrics.h"

namespace sgxb::mem {

namespace {
size_t RoundUp(size_t v, size_t to) { return (v + to - 1) & ~(to - 1); }

// Chunk acquisitions mirrored into the obs registry: per-query reports use
// the byte/chunk deltas to show how much arena memory a query pulled in.
obs::Counter& CtrArenaBytes() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrArenaBytes);
  return *c;
}
obs::Counter& CtrArenaChunks() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrArenaChunks);
  return *c;
}
}  // namespace

size_t DefaultArenaChunkBytes() {
  static const size_t bytes = static_cast<size_t>(
      EnvUint("SGXBENCH_ARENA_CHUNK", size_t{2} * 1024 * 1024,
              /*lo=*/4096, /*hi=*/uint64_t{1} << 40));
  return bytes;
}

Arena::Arena(MemoryResource* resource, size_t chunk_bytes, ArenaPool* pool)
    : resource_(resource), pool_(pool) {
  assert(resource_ != nullptr);
  assert(pool_ == nullptr || pool_->resource() == resource_);
  chunk_bytes_ = chunk_bytes != 0 ? chunk_bytes
                 : pool_ != nullptr ? pool_->chunk_bytes()
                                    : DefaultArenaChunkBytes();
}

Arena::~Arena() { ReleaseChunksAfter(0); }

Status Arena::AcquireChunk(size_t min_bytes) {
  const size_t want = RoundUp(min_bytes < chunk_bytes_ ? chunk_bytes_
                                                       : min_bytes,
                              chunk_bytes_);
  Result<AlignedBuffer> buf =
      pool_ != nullptr ? pool_->Acquire(want) : resource_->Allocate(want);
  if (!buf.ok()) return buf.status();
  Chunk c;
  c.buf = std::move(buf).value();
  CtrArenaBytes().Add(c.buf.size());
  CtrArenaChunks().Increment();
  chunks_.push_back(std::move(c));
  return Status::OK();
}

void Arena::ReleaseChunksAfter(size_t keep_count) {
  while (chunks_.size() > keep_count) {
    if (pool_ != nullptr) {
      pool_->Release(std::move(chunks_.back().buf));
    }
    chunks_.pop_back();  // non-pooled chunks free via AlignedBuffer dtor
  }
}

Result<void*> Arena::Allocate(size_t bytes, size_t alignment) {
  if (alignment < kCacheLineSize || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two >= 64");
  }
  if (bytes == 0) bytes = 1;  // distinct non-null results for empty asks
  while (true) {
    if (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(c.buf.data());
      const uintptr_t at = RoundUp(base + c.used, alignment);
      if (at + bytes <= base + c.buf.size()) {
        c.used = (at - base) + bytes;
        return reinterpret_cast<void*>(at);
      }
      // Try the next retained chunk (after Reset) before growing.
      if (cur_ + 1 < chunks_.size()) {
        ++cur_;
        chunks_[cur_].used = 0;
        continue;
      }
    }
    // Alignment slack: the chunk base is 64-aligned but not necessarily
    // `alignment`-aligned.
    SGXB_RETURN_NOT_OK(
        AcquireChunk(bytes + (alignment > kCacheLineSize ? alignment : 0)));
    cur_ = chunks_.size() - 1;
    chunks_[cur_].used = 0;
  }
}

ArenaCheckpoint Arena::Save() const {
  if (chunks_.empty()) return ArenaCheckpoint{0, 0};
  return ArenaCheckpoint{cur_, chunks_[cur_].used};
}

void Arena::Rollback(const ArenaCheckpoint& cp) {
  if (chunks_.empty()) return;
  assert(cp.chunk_index <= cur_ && "rollback to a future checkpoint");
  if (cp.chunk_index == 0 && cp.offset == 0) {
    ReleaseChunksAfter(0);
    cur_ = 0;
    return;
  }
  ReleaseChunksAfter(cp.chunk_index + 1);
  cur_ = cp.chunk_index;
  assert(cp.offset <= chunks_[cur_].used);
  chunks_[cur_].used = cp.offset;
}

void Arena::Reset() {
  for (Chunk& c : chunks_) c.used = 0;
  cur_ = 0;
}

size_t Arena::used() const {
  size_t total = 0;
  for (size_t i = 0; i <= cur_ && i < chunks_.size(); ++i) {
    total += chunks_[i].used;
  }
  return total;
}

size_t Arena::reserved() const {
  size_t total = 0;
  for (const Chunk& c : chunks_) total += c.buf.size();
  return total;
}

}  // namespace sgxb::mem
