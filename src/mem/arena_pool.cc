#include "mem/arena_pool.h"

#include <cassert>

#include "common/env.h"
#include "mem/arena.h"
#include "obs/metrics.h"

namespace sgxb::mem {

namespace {
// Pool effectiveness mirrored into the obs registry; the per-query pool
// hit rate in obs::QueryReport is derived from these two.
obs::Counter& CtrPoolHits() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrPoolHits);
  return *c;
}
obs::Counter& CtrPoolMisses() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrPoolMisses);
  return *c;
}
}  // namespace

bool ArenaReuseEnabled() { return EnvBool("SGXBENCH_ARENA_REUSE", true); }

ArenaPool::ArenaPool(MemoryResource* resource, size_t chunk_bytes)
    : resource_(resource),
      chunk_bytes_(chunk_bytes != 0 ? chunk_bytes
                                    : DefaultArenaChunkBytes()),
      reuse_(ArenaReuseEnabled()) {
  assert(resource_ != nullptr);
}

Result<AlignedBuffer> ArenaPool::Acquire(size_t min_bytes) {
  const size_t want =
      (min_bytes + chunk_bytes_ - 1) / chunk_bytes_ * chunk_bytes_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.lower_bound(want);
    if (it != cache_.end()) {
      AlignedBuffer chunk = std::move(it->second);
      cached_bytes_ -= it->first;
      cache_.erase(it);
      ++reuse_hits_;
      ++outstanding_chunks_;
      CtrPoolHits().Increment();
      return chunk;
    }
    ++fresh_allocs_;
    CtrPoolMisses().Increment();
  }
  // Allocate outside the lock: an EDMM-growing enclave allocation injects
  // real page-commit delays, which must not serialize unrelated arenas.
  Result<AlignedBuffer> chunk = resource_->Allocate(want);
  if (chunk.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_chunks_;
  }
  return chunk;
}

void ArenaPool::Release(AlignedBuffer chunk) {
  if (chunk.data() == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  --outstanding_chunks_;
  ++released_;
  if (!reuse_) return;  // dropped: chunk's own release path frees/credits
  cached_bytes_ += chunk.size();
  cache_.emplace(chunk.size(), std::move(chunk));
}

void ArenaPool::Trim() {
  std::multimap<size_t, AlignedBuffer> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.swap(cache_);
    cached_bytes_ = 0;
  }
  // Chunks free as `doomed` dies, outside the lock.
}

ArenaPool::Stats ArenaPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.reuse_hits = reuse_hits_;
  s.fresh_allocs = fresh_allocs_;
  s.released = released_;
  s.outstanding_chunks = outstanding_chunks_;
  s.cached_chunks = cache_.size();
  s.cached_bytes = cached_bytes_;
  return s;
}

}  // namespace sgxb::mem
