// Enclave-aware memory resources: the single allocation path from
// operators down to EPC/EDMM accounting (docs/memory.md).
//
// A MemoryResource hands out AlignedBuffers and carries a Placement tag
// (region + NUMA node) describing where the bytes physically live. The
// concrete resources are:
//  - Untrusted(numa): plain host memory, tagged kUntrusted.
//  - SimulatedEnclave(numa): host memory tagged kEnclave for runs that
//    model enclave placement without an sgx::Enclave instance (the cost
//    model charges the MEE, no heap cap applies).
//  - EnclaveResource (enclave_resource.h): charges an sgx::Enclave's heap,
//    pays EDMM page costs, and returns Status on EPC exhaustion.
//
// Every allocation funnels through MemoryResource::Allocate, which also
// checks the global failure-injection hook (ScopedAllocFailure) so tests
// can drive OOM through arbitrarily deep operator stacks.

#ifndef SGXB_MEM_MEMORY_RESOURCE_H_
#define SGXB_MEM_MEMORY_RESOURCE_H_

#include <cstddef>
#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "perf/cost_model.h"

namespace sgxb::mem {

/// \brief Where a resource's bytes live; the cost model consumes this tag
/// instead of a caller-supplied MemoryRegion guess (see EnvFor).
struct Placement {
  MemoryRegion region = MemoryRegion::kUntrusted;
  int numa_node = 0;
};

class MemoryResource {
 public:
  virtual ~MemoryResource() = default;

  /// \brief Allocates `bytes` aligned to `alignment` (power of two,
  /// >= 64). Returns Status on exhaustion or injected failure; never
  /// throws or aborts. The buffer releases through the resource's own
  /// path when destroyed.
  Result<AlignedBuffer> Allocate(size_t bytes,
                                 size_t alignment = kCacheLineSize);

  /// \brief Allocates and zero-fills.
  Result<AlignedBuffer> AllocateZeroed(size_t bytes,
                                       size_t alignment = kCacheLineSize);

  virtual Placement placement() const = 0;
  virtual const char* name() const = 0;

 protected:
  virtual Result<AlignedBuffer> DoAllocate(size_t bytes,
                                           size_t alignment) = 0;
};

/// \brief Interned untrusted-memory resource for `numa_node` (process
/// lifetime; never delete).
MemoryResource* Untrusted(int numa_node = 0);

/// \brief Interned kEnclave-tagged host resource for settings that model
/// enclave placement without a live sgx::Enclave (no heap cap, no EDMM;
/// the cost model still charges encrypted-memory access).
MemoryResource* SimulatedEnclave(int numa_node = 0);

/// \brief Execution environment for the cost model with the data-placement
/// tag read from the resource that actually allocated the data —
/// replacing the historical "derive the region from the setting" guess.
/// Benches that model one measured profile under several hypothetical
/// settings should keep constructing ExecutionEnv by hand instead.
perf::ExecutionEnv EnvFor(const MemoryResource& resource,
                          ExecutionSetting setting, int threads,
                          bool data_remote = false);

// --- Allocation-failure injection ----------------------------------------

/// \brief While alive, makes MemoryResource::Allocate fail with
/// kOutOfMemory: the next `fail_after` allocations (process-wide, any
/// resource) succeed, then `count` allocations fail. One active scope at
/// a time; scopes are for single-threaded test orchestration, though the
/// counters themselves are atomic so injected failures may land on any
/// thread.
class ScopedAllocFailure {
 public:
  explicit ScopedAllocFailure(uint64_t fail_after = 0,
                              uint64_t count = UINT64_MAX);
  ~ScopedAllocFailure();
  ScopedAllocFailure(const ScopedAllocFailure&) = delete;
  ScopedAllocFailure& operator=(const ScopedAllocFailure&) = delete;

  /// \brief Failures injected by this scope so far.
  uint64_t injected() const;
};

}  // namespace sgxb::mem

#endif  // SGXB_MEM_MEMORY_RESOURCE_H_
