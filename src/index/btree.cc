#include "index/btree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <new>

namespace sgxb::index {

// Descent rule: in an inner node, child[i] holds keys k with
// keys[i-1] < k <= keys[i] (separators are the maximum key of the left
// subtree). Lookups descend with lower_bound, which lands on the leftmost
// leaf that can contain a key; duplicate runs continue through the leaf
// chain.

struct BTree::Node {
  bool is_leaf;
  int count;
};

struct BTree::LeafNode : BTree::Node {
  Key keys[kLeafCapacity];
  Value values[kLeafCapacity];
  LeafNode* next;
};

struct BTree::InnerNode : BTree::Node {
  Key keys[kInnerCapacity];
  Node* children[kInnerCapacity + 1];
};

namespace {
constexpr double kBulkLoadFill = 0.9;
}  // namespace

BTree::BTree(mem::MemoryResource* resource)
    : resource_(resource != nullptr ? resource : mem::Untrusted()) {}

// Nodes are trivially destructible: dropping the arena releases every
// chunk (and credits enclave accounting for trusted resources).
BTree::~BTree() = default;

BTree::BTree(BTree&& other) noexcept
    : resource_(other.resource_),
      arena_(std::move(other.arena_)),
      root_(other.root_),
      first_leaf_(other.first_leaf_),
      size_(other.size_),
      height_(other.height_),
      num_leaves_(other.num_leaves_),
      num_inner_(other.num_inner_) {
  other.root_ = nullptr;
  other.first_leaf_ = nullptr;
  other.size_ = 0;
  other.height_ = 0;
  other.num_leaves_ = 0;
  other.num_inner_ = 0;
}

BTree& BTree::operator=(BTree&& other) noexcept {
  if (this != &other) {
    resource_ = other.resource_;
    arena_ = std::move(other.arena_);
    root_ = other.root_;
    first_leaf_ = other.first_leaf_;
    size_ = other.size_;
    height_ = other.height_;
    num_leaves_ = other.num_leaves_;
    num_inner_ = other.num_inner_;
    other.root_ = nullptr;
    other.first_leaf_ = nullptr;
    other.size_ = 0;
    other.height_ = 0;
    other.num_leaves_ = 0;
    other.num_inner_ = 0;
  }
  return *this;
}

mem::Arena& BTree::NodeArena() {
  if (arena_ == nullptr) {
    if (resource_ == nullptr) resource_ = mem::Untrusted();
    arena_ = std::make_unique<mem::Arena>(resource_);
  }
  return *arena_;
}

Result<BTree::LeafNode*> BTree::NewLeaf() {
  auto p = NodeArena().Allocate(sizeof(LeafNode), alignof(LeafNode) > 64
                                                      ? alignof(LeafNode)
                                                      : 64);
  if (!p.ok()) return p.status();
  return new (p.value()) LeafNode;
}

Result<BTree::InnerNode*> BTree::NewInner() {
  auto p = NodeArena().Allocate(sizeof(InnerNode), alignof(InnerNode) > 64
                                                       ? alignof(InnerNode)
                                                       : 64);
  if (!p.ok()) return p.status();
  return new (p.value()) InnerNode;
}

Result<BTree> BTree::BulkLoad(
    const std::vector<std::pair<Key, Value>>& sorted_entries,
    mem::MemoryResource* resource) {
  for (size_t i = 1; i < sorted_entries.size(); ++i) {
    if (sorted_entries[i - 1].first > sorted_entries[i].first) {
      return Status::InvalidArgument("bulk-load input is not sorted");
    }
  }

  BTree tree(resource);
  if (sorted_entries.empty()) return tree;

  const int per_leaf = std::max(
      1, static_cast<int>(kLeafCapacity * kBulkLoadFill));

  // Level 0: build the leaf chain.
  std::vector<Node*> level;
  std::vector<Key> level_max;  // max key of each node's subtree
  LeafNode* prev = nullptr;
  size_t pos = 0;
  while (pos < sorted_entries.size()) {
    LeafNode* leaf = nullptr;
    SGXB_ASSIGN_OR_RETURN(leaf, tree.NewLeaf());
    leaf->is_leaf = true;
    leaf->next = nullptr;
    int n = static_cast<int>(
        std::min<size_t>(per_leaf, sorted_entries.size() - pos));
    // Avoid a dangling undersized final leaf: rebalance the last two.
    if (sorted_entries.size() - pos - n > 0 &&
        sorted_entries.size() - pos - n < static_cast<size_t>(per_leaf) / 2) {
      n = static_cast<int>((sorted_entries.size() - pos + 1) / 2);
    }
    leaf->count = n;
    for (int i = 0; i < n; ++i) {
      leaf->keys[i] = sorted_entries[pos + i].first;
      leaf->values[i] = sorted_entries[pos + i].second;
    }
    pos += n;
    if (prev != nullptr) {
      prev->next = leaf;
    } else {
      tree.first_leaf_ = leaf;
    }
    prev = leaf;
    level.push_back(leaf);
    level_max.push_back(leaf->keys[n - 1]);
    ++tree.num_leaves_;
  }
  tree.size_ = sorted_entries.size();
  tree.height_ = 1;

  // Upper levels: group children under inner nodes.
  const int per_inner = std::max(
      2, static_cast<int>((kInnerCapacity + 1) * kBulkLoadFill));
  while (level.size() > 1) {
    std::vector<Node*> next_level;
    std::vector<Key> next_max;
    size_t i = 0;
    while (i < level.size()) {
      size_t n = std::min<size_t>(per_inner, level.size() - i);
      if (level.size() - i - n == 1) {
        // Never leave a single orphan child for the next node.
        n -= 1;
      }
      InnerNode* inner = nullptr;
      SGXB_ASSIGN_OR_RETURN(inner, tree.NewInner());
      inner->is_leaf = false;
      inner->count = static_cast<int>(n) - 1;
      for (size_t c = 0; c < n; ++c) {
        inner->children[c] = level[i + c];
        if (c + 1 < n) inner->keys[c] = level_max[i + c];
      }
      next_level.push_back(inner);
      next_max.push_back(level_max[i + n - 1]);
      ++tree.num_inner_;
      i += n;
    }
    level = std::move(next_level);
    level_max = std::move(next_max);
    ++tree.height_;
  }

  tree.root_ = level[0];
  return tree;
}

BTree::LeafNode* BTree::FindLeaf(Key key) const {
  Node* node = root_;
  if (node == nullptr) return nullptr;
  while (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    int idx = static_cast<int>(
        std::lower_bound(inner->keys, inner->keys + inner->count, key) -
        inner->keys);
    node = inner->children[idx];
  }
  return static_cast<LeafNode*>(node);
}

Result<BTree::Value> BTree::Lookup(Key key) const {
  const LeafNode* leaf = FindLeaf(key);
  if (leaf == nullptr) return Status::NotFound("empty tree");
  const Key* it =
      std::lower_bound(leaf->keys, leaf->keys + leaf->count, key);
  int idx = static_cast<int>(it - leaf->keys);
  if (idx < leaf->count && leaf->keys[idx] == key) {
    return leaf->values[idx];
  }
  // Duplicates of a separator key may begin in the next leaf.
  if (idx == leaf->count && leaf->next != nullptr &&
      leaf->next->count > 0 && leaf->next->keys[0] == key) {
    return leaf->next->values[0];
  }
  return Status::NotFound("key not present");
}

size_t BTree::ForEachMatch(Key key,
                           const std::function<void(Value)>& fn) const {
  const LeafNode* leaf = FindLeaf(key);
  if (leaf == nullptr) return 0;
  size_t matches = 0;
  const Key* it =
      std::lower_bound(leaf->keys, leaf->keys + leaf->count, key);
  int idx = static_cast<int>(it - leaf->keys);
  while (leaf != nullptr) {
    for (; idx < leaf->count; ++idx) {
      if (leaf->keys[idx] != key) return matches;
      fn(leaf->values[idx]);
      ++matches;
    }
    leaf = leaf->next;
    idx = 0;
  }
  return matches;
}

// One descent as a probe state machine: each Advance() consumes one tree
// level (or one leaf of a duplicate run) and targets the next node, so the
// batched drivers overlap `width` descents' node fetches. Four prefetched
// lines cover a node's header plus the slice of the key array lower_bound
// touches first.
struct BTree::ProbeCursor {
  static constexpr int kPrefetchLines = 4;
  const BTree* tree = nullptr;
  const std::function<void(const Tuple&, Value)>* fn = nullptr;
  size_t matches = 0;

  Tuple probe_;
  const Node* node_ = nullptr;
  bool scanning_ = false;  // inside a leaf-chain duplicate run

  void Reset(const Tuple& t) {
    probe_ = t;
    scanning_ = false;
    node_ = tree->root_;
  }
  const void* Target() const { return node_; }
  void Advance() {
    if (!node_->is_leaf) {
      const auto* inner = static_cast<const InnerNode*>(node_);
      int idx = static_cast<int>(
          std::lower_bound(inner->keys, inner->keys + inner->count,
                           probe_.key) -
          inner->keys);
      node_ = inner->children[idx];
      return;
    }
    const auto* leaf = static_cast<const LeafNode*>(node_);
    int idx = scanning_
                  ? 0
                  : static_cast<int>(std::lower_bound(
                                         leaf->keys,
                                         leaf->keys + leaf->count,
                                         probe_.key) -
                                     leaf->keys);
    scanning_ = true;
    for (; idx < leaf->count; ++idx) {
      if (leaf->keys[idx] != probe_.key) {
        node_ = nullptr;
        return;
      }
      (*fn)(probe_, leaf->values[idx]);
      ++matches;
    }
    // Duplicate run may continue in the next leaf (nullptr ends the probe).
    node_ = leaf->next;
  }
};

size_t BTree::BatchForEachMatch(
    const Tuple* probes, size_t n, exec::ProbeMode mode, int width,
    const std::function<void(const Tuple&, Value)>& fn) const {
  if (n == 0 || root_ == nullptr) return 0;
  size_t matches = 0;
  if (mode == exec::ProbeMode::kTupleAtATime) {
    for (size_t i = 0; i < n; ++i) {
      matches += ForEachMatch(probes[i].key,
                              [&](Value v) { fn(probes[i], v); });
    }
    return matches;
  }
  const int w = exec::ClampProbeWidth(width);
  std::vector<ProbeCursor> cursors(static_cast<size_t>(w));
  for (auto& c : cursors) {
    c.tree = this;
    c.fn = &fn;
  }
  exec::BatchedProbe(mode, probes, n, w, cursors.data());
  for (const auto& c : cursors) matches += c.matches;
  return matches;
}

size_t BTree::ScanRange(Key lo, Key hi,
                        const std::function<void(Key, Value)>& fn) const {
  if (lo >= hi) return 0;
  const LeafNode* leaf = FindLeaf(lo);
  if (leaf == nullptr) return 0;
  size_t visited = 0;
  const Key* it = std::lower_bound(leaf->keys, leaf->keys + leaf->count, lo);
  int idx = static_cast<int>(it - leaf->keys);
  while (leaf != nullptr) {
    for (; idx < leaf->count; ++idx) {
      if (leaf->keys[idx] >= hi) return visited;
      fn(leaf->keys[idx], leaf->values[idx]);
      ++visited;
    }
    leaf = leaf->next;
    idx = 0;
  }
  return visited;
}

Status BTree::Insert(Key key, Value value) {
  if (root_ == nullptr) {
    LeafNode* leaf = nullptr;
    SGXB_ASSIGN_OR_RETURN(leaf, NewLeaf());
    leaf->is_leaf = true;
    leaf->count = 1;
    leaf->keys[0] = key;
    leaf->values[0] = value;
    leaf->next = nullptr;
    root_ = leaf;
    first_leaf_ = leaf;
    size_ = 1;
    height_ = 1;
    num_leaves_ = 1;
    return Status::OK();
  }

  // Descend, remembering the path of inner nodes.
  std::vector<InnerNode*> path;
  Node* node = root_;
  while (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    path.push_back(inner);
    int idx = static_cast<int>(
        std::lower_bound(inner->keys, inner->keys + inner->count, key) -
        inner->keys);
    node = inner->children[idx];
  }
  auto* leaf = static_cast<LeafNode*>(node);

  // Insert position: after existing duplicates.
  int pos = static_cast<int>(
      std::upper_bound(leaf->keys, leaf->keys + leaf->count, key) -
      leaf->keys);

  if (leaf->count < kLeafCapacity) {
    std::move_backward(leaf->keys + pos, leaf->keys + leaf->count,
                       leaf->keys + leaf->count + 1);
    std::move_backward(leaf->values + pos, leaf->values + leaf->count,
                       leaf->values + leaf->count + 1);
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    ++leaf->count;
    ++size_;
    return Status::OK();
  }

  // Split the leaf: left keeps the lower half; separator = max(left).
  LeafNode* right = nullptr;
  SGXB_ASSIGN_OR_RETURN(right, NewLeaf());
  right->is_leaf = true;
  ++num_leaves_;
  int split = leaf->count / 2;
  right->count = leaf->count - split;
  std::copy(leaf->keys + split, leaf->keys + leaf->count, right->keys);
  std::copy(leaf->values + split, leaf->values + leaf->count,
            right->values);
  leaf->count = split;
  right->next = leaf->next;
  leaf->next = right;

  // Insert into the proper half.
  LeafNode* target = pos <= split ? leaf : right;
  int tpos = pos <= split ? pos : pos - split;
  std::move_backward(target->keys + tpos, target->keys + target->count,
                     target->keys + target->count + 1);
  std::move_backward(target->values + tpos,
                     target->values + target->count,
                     target->values + target->count + 1);
  target->keys[tpos] = key;
  target->values[tpos] = value;
  ++target->count;
  ++size_;

  return InsertUpward(path, leaf, leaf->keys[leaf->count - 1], right);
}

Status BTree::InsertUpward(std::vector<InnerNode*>& path, Node* left,
                           Key sep, Node* right) {
  while (true) {
    if (path.empty()) {
      // Split reached the root: grow the tree by one level.
      InnerNode* new_root = nullptr;
      SGXB_ASSIGN_OR_RETURN(new_root, NewInner());
      new_root->is_leaf = false;
      new_root->count = 1;
      new_root->keys[0] = sep;
      new_root->children[0] = left;
      new_root->children[1] = right;
      root_ = new_root;
      ++height_;
      ++num_inner_;
      return Status::OK();
    }
    InnerNode* parent = path.back();
    path.pop_back();

    // Position of `left` among the children (via separator search).
    int idx = static_cast<int>(
        std::lower_bound(parent->keys, parent->keys + parent->count, sep) -
        parent->keys);

    if (parent->count < kInnerCapacity) {
      std::move_backward(parent->keys + idx,
                         parent->keys + parent->count,
                         parent->keys + parent->count + 1);
      std::move_backward(parent->children + idx + 1,
                         parent->children + parent->count + 1,
                         parent->children + parent->count + 2);
      parent->keys[idx] = sep;
      parent->children[idx + 1] = right;
      ++parent->count;
      return Status::OK();
    }

    // Split the inner node. Middle key moves up.
    InnerNode* new_inner = nullptr;
    SGXB_ASSIGN_OR_RETURN(new_inner, NewInner());
    new_inner->is_leaf = false;
    ++num_inner_;
    int split = parent->count / 2;
    Key up_key = parent->keys[split];
    new_inner->count = parent->count - split - 1;
    std::copy(parent->keys + split + 1, parent->keys + parent->count,
              new_inner->keys);
    std::copy(parent->children + split + 1,
              parent->children + parent->count + 1, new_inner->children);
    parent->count = split;

    // Now place (sep, right) into the correct half.
    if (sep <= up_key) {
      int p = static_cast<int>(
          std::lower_bound(parent->keys, parent->keys + parent->count,
                           sep) -
          parent->keys);
      std::move_backward(parent->keys + p, parent->keys + parent->count,
                         parent->keys + parent->count + 1);
      std::move_backward(parent->children + p + 1,
                         parent->children + parent->count + 1,
                         parent->children + parent->count + 2);
      parent->keys[p] = sep;
      parent->children[p + 1] = right;
      ++parent->count;
    } else {
      int p = static_cast<int>(
          std::lower_bound(new_inner->keys,
                           new_inner->keys + new_inner->count, sep) -
          new_inner->keys);
      std::move_backward(new_inner->keys + p,
                         new_inner->keys + new_inner->count,
                         new_inner->keys + new_inner->count + 1);
      std::move_backward(new_inner->children + p + 1,
                         new_inner->children + new_inner->count + 1,
                         new_inner->children + new_inner->count + 2);
      new_inner->keys[p] = sep;
      new_inner->children[p + 1] = right;
      ++new_inner->count;
    }

    left = parent;
    right = new_inner;
    sep = up_key;
  }
}

namespace {

struct CheckResult {
  sgxb::Status status;
  BTree::Key min_key;
  BTree::Key max_key;
  int depth;
};

}  // namespace

Status BTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Internal("empty tree with nonzero size");
  }

  // Recursive structural check via an explicit lambda.
  std::function<CheckResult(const Node*)> check =
      [&](const Node* node) -> CheckResult {
    if (node->is_leaf) {
      const auto* leaf = static_cast<const LeafNode*>(node);
      if (leaf->count < 1 || leaf->count > kLeafCapacity) {
        return {Status::Internal("leaf count out of bounds"), 0, 0, 1};
      }
      for (int i = 1; i < leaf->count; ++i) {
        if (leaf->keys[i - 1] > leaf->keys[i]) {
          return {Status::Internal("leaf keys unsorted"), 0, 0, 1};
        }
      }
      return {Status::OK(), leaf->keys[0], leaf->keys[leaf->count - 1], 1};
    }
    const auto* inner = static_cast<const InnerNode*>(node);
    if (inner->count < 1 || inner->count > kInnerCapacity) {
      return {Status::Internal("inner count out of bounds"), 0, 0, 1};
    }
    for (int i = 1; i < inner->count; ++i) {
      if (inner->keys[i - 1] > inner->keys[i]) {
        return {Status::Internal("inner keys unsorted"), 0, 0, 1};
      }
    }
    Key min_key = std::numeric_limits<Key>::max();
    Key max_key = 0;
    int depth = -1;
    for (int i = 0; i <= inner->count; ++i) {
      CheckResult r = check(inner->children[i]);
      if (!r.status.ok()) return r;
      if (depth == -1) {
        depth = r.depth;
      } else if (depth != r.depth) {
        return {Status::Internal("leaves at different depths"), 0, 0, 1};
      }
      // Child i's keys must lie in (keys[i-1], keys[i]] — except that a
      // run of duplicates may span the separator, so a child minimum
      // *equal* to the left separator is legal.
      if (i > 0 && r.min_key < inner->keys[i - 1]) {
        return {Status::Internal("child keys below separator"), 0, 0, 1};
      }
      if (i < inner->count && r.max_key > inner->keys[i]) {
        return {Status::Internal("child keys above separator"), 0, 0, 1};
      }
      min_key = std::min(min_key, r.min_key);
      max_key = std::max(max_key, r.max_key);
    }
    return {Status::OK(), min_key, max_key, depth + 1};
  };

  CheckResult r = check(root_);
  if (!r.status.ok()) return r.status;
  if (r.depth != height_) return Status::Internal("height mismatch");

  // Leaf chain must be globally sorted and cover all entries.
  size_t chained = 0;
  Key prev = 0;
  bool first = true;
  for (const LeafNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    for (int i = 0; i < leaf->count; ++i) {
      if (!first && leaf->keys[i] < prev) {
        return Status::Internal("leaf chain unsorted");
      }
      prev = leaf->keys[i];
      first = false;
      ++chained;
    }
  }
  if (chained != size_) {
    return Status::Internal("leaf chain size mismatch");
  }
  return Status::OK();
}

size_t BTree::MemoryFootprint() const {
  return num_leaves_ * sizeof(LeafNode) + num_inner_ * sizeof(InnerNode);
}

}  // namespace sgxb::index
