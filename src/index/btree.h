// Cache-conscious B+-tree over 32-bit keys.
//
// Substrate for the Index Nested Loop join (paper Section 4, join #4): INL
// probes an existing B-tree index on the inner table instead of scanning
// it. The tree supports bulk loading from sorted data (how the benchmark
// builds its index), single inserts, point lookups, and an iterator over
// duplicate keys. Nodes are sized to a small number of cache lines; inner
// nodes hold only keys and child pointers, leaves hold key/value pairs and
// are chained for range scans.

#ifndef SGXB_INDEX_BTREE_H_
#define SGXB_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/probe_pipeline.h"
#include "mem/arena.h"
#include "mem/memory_resource.h"

namespace sgxb::index {

class BTree {
 public:
  using Key = uint32_t;
  using Value = uint32_t;

  // 16 cache lines per leaf: 120 slots of (key, value) plus header.
  static constexpr int kLeafCapacity = 120;
  static constexpr int kInnerCapacity = 120;

  /// \brief Nodes are carved from an arena over `resource` (null =
  /// untrusted host memory), created lazily on the first insert/load, so
  /// a tree built for an in-enclave INL join charges the enclave's heap
  /// accounting and pays EDMM growth like every other operator structure.
  explicit BTree(mem::MemoryResource* resource = nullptr);
  ~BTree();
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;

  /// \brief Builds a tree from entries sorted by key (duplicates allowed).
  /// Existing contents are discarded. Leaves are filled to ~90% so that
  /// subsequent inserts do not immediately split.
  static Result<BTree> BulkLoad(
      const std::vector<std::pair<Key, Value>>& sorted_entries,
      mem::MemoryResource* resource = nullptr);

  /// \brief Inserts one entry (duplicates allowed).
  Status Insert(Key key, Value value);

  /// \brief Returns the value of the first entry with `key`, if any.
  Result<Value> Lookup(Key key) const;

  /// \brief Invokes `fn` for every entry with exactly `key`; returns the
  /// number of matches. This is the INL probe primitive.
  size_t ForEachMatch(Key key,
                      const std::function<void(Value)>& fn) const;

  /// \brief Batched INL probe primitive: descends all `n` probe tuples
  /// (matching on Tuple::key) with the latency-hiding driver selected by
  /// `mode` (exec/probe_pipeline.h) — `width` concurrent descents, one
  /// tree level per hop, software prefetch ahead of each node visit.
  /// Invokes `fn(probe, value)` per match and returns the total match
  /// count; kTupleAtATime falls back to sequential ForEachMatch descents.
  size_t BatchForEachMatch(
      const Tuple* probes, size_t n, exec::ProbeMode mode, int width,
      const std::function<void(const Tuple&, Value)>& fn) const;

  /// \brief Invokes `fn(key, value)` for all entries with lo <= key < hi,
  /// in key order; returns the number of entries visited.
  size_t ScanRange(Key lo, Key hi,
                   const std::function<void(Key, Value)>& fn) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

  /// \brief Validates all structural invariants (key order within nodes,
  /// separator correctness, leaf chain order, fill bounds). Used by tests.
  Status CheckInvariants() const;

  /// \brief Total bytes occupied by tree nodes (index working-set size,
  /// reported to the cost model by the INL join).
  size_t MemoryFootprint() const;

 private:
  struct Node;
  struct LeafNode;
  struct InnerNode;
  struct ProbeCursor;

  LeafNode* FindLeaf(Key key) const;
  Status InsertUpward(std::vector<InnerNode*>& path, Node* left, Key sep,
                      Node* right);
  Result<LeafNode*> NewLeaf();
  Result<InnerNode*> NewInner();
  mem::Arena& NodeArena();

  mem::MemoryResource* resource_ = nullptr;
  // Nodes live until the tree dies: no per-node frees, the arena's
  // chunks are released wholesale by the destructor.
  std::unique_ptr<mem::Arena> arena_;
  Node* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  size_t size_ = 0;
  int height_ = 0;
  size_t num_leaves_ = 0;
  size_t num_inner_ = 0;
};

}  // namespace sgxb::index

#endif  // SGXB_INDEX_BTREE_H_
