#include "sgx/queue_factory.h"

#include "sgx/sgx_mutex.h"
#include "sync/lockfree_queue.h"
#include "sync/locked_queue.h"

namespace sgxb::sgx {

std::unique_ptr<TaskQueue> MakeTaskQueue(TaskQueueKind kind,
                                         size_t capacity,
                                         ExecutionSetting setting) {
  switch (kind) {
    case TaskQueueKind::kLockFree:
      return std::make_unique<LockFreeTaskQueue>(capacity);
    case TaskQueueKind::kSpinLock:
      return std::make_unique<SpinLockTaskQueue>();
    case TaskQueueKind::kMutex:
      if (setting != ExecutionSetting::kPlainCpu) {
        return std::make_unique<LockedTaskQueue<SgxSdkMutex>>();
      }
      return std::make_unique<MutexTaskQueue>();
  }
  return std::make_unique<LockFreeTaskQueue>(capacity);
}

}  // namespace sgxb::sgx
