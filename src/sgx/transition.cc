#include "sgx/transition.h"

#include <atomic>

#include "common/env.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/calibration.h"

namespace sgxb::sgx {

namespace {

// Transition activity is published through the obs registry so per-query
// reports (obs/query_report.h) can diff it over a query window; the
// GetTransitionStats/ResetTransitionStats API below stays as the
// benchmark-facing view of the same counters.
obs::Counter& Ecalls() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrEcalls);
  return *c;
}
obs::Counter& Ocalls() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrOcalls);
  return *c;
}
obs::Counter& InjectedCycles() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrTransitionCycles);
  return *c;
}

thread_local int t_enclave_depth = 0;
// RDTSCP stamp of the outermost EnclaveEnter, so the matching exit can
// record the whole enclave residency as one "ecall" trace span.
thread_local uint64_t t_ecall_begin_tsc = 0;

void InjectTransition() {
  if (!CostInjectionEnabled()) return;
  const uint64_t cycles =
      perf::CalibrationParams::Default().transition_cycles;
  SpinForCycles(cycles);
  InjectedCycles().Add(cycles);
}

}  // namespace

bool CostInjectionEnabled() {
  static const bool kEnabled = !EnvBool("SGXBENCH_NO_INJECT", false);
  return kEnabled;
}

TransitionStats GetTransitionStats() {
  return TransitionStats{Ecalls().Value(), Ocalls().Value(),
                         InjectedCycles().Value()};
}

void ResetTransitionStats() {
  Ecalls().Reset();
  Ocalls().Reset();
  InjectedCycles().Reset();
}

bool InEnclaveMode() { return t_enclave_depth > 0; }

void EnclaveEnter() {
  InjectTransition();
  if (t_enclave_depth++ == 0 && obs::TracingEnabled()) {
    t_ecall_begin_tsc = ReadTsc();
  }
  Ecalls().Increment();
}

void EnclaveExit() {
  SGXB_CHECK(t_enclave_depth > 0) << "EnclaveExit without EnclaveEnter";
  if (--t_enclave_depth == 0 && t_ecall_begin_tsc != 0) {
    obs::TraceComplete("ecall", "sgx", t_ecall_begin_tsc, ReadTsc());
    t_ecall_begin_tsc = 0;
  }
  InjectTransition();
}

void OcallRoundTrip() {
  if (t_enclave_depth == 0) return;
  obs::ObsSpan span("ocall", "sgx");
  Ocalls().Increment();
  // Exit + re-enter: two transitions.
  InjectTransition();
  InjectTransition();
}

}  // namespace sgxb::sgx
