#include "sgx/transition.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/timer.h"
#include "perf/calibration.h"

namespace sgxb::sgx {

namespace {

std::atomic<uint64_t> g_ecalls{0};
std::atomic<uint64_t> g_ocalls{0};
std::atomic<uint64_t> g_injected_cycles{0};

thread_local int t_enclave_depth = 0;

bool InitInjection() {
  const char* v = std::getenv("SGXBENCH_NO_INJECT");
  return v == nullptr || v[0] == '0';
}

void InjectTransition() {
  if (!CostInjectionEnabled()) return;
  const uint64_t cycles =
      perf::CalibrationParams::Default().transition_cycles;
  SpinForCycles(cycles);
  g_injected_cycles.fetch_add(cycles, std::memory_order_relaxed);
}

}  // namespace

bool CostInjectionEnabled() {
  static const bool kEnabled = InitInjection();
  return kEnabled;
}

TransitionStats GetTransitionStats() {
  return TransitionStats{g_ecalls.load(std::memory_order_relaxed),
                         g_ocalls.load(std::memory_order_relaxed),
                         g_injected_cycles.load(std::memory_order_relaxed)};
}

void ResetTransitionStats() {
  g_ecalls.store(0, std::memory_order_relaxed);
  g_ocalls.store(0, std::memory_order_relaxed);
  g_injected_cycles.store(0, std::memory_order_relaxed);
}

bool InEnclaveMode() { return t_enclave_depth > 0; }

void EnclaveEnter() {
  InjectTransition();
  ++t_enclave_depth;
  g_ecalls.fetch_add(1, std::memory_order_relaxed);
}

void EnclaveExit() {
  SGXB_CHECK(t_enclave_depth > 0) << "EnclaveExit without EnclaveEnter";
  --t_enclave_depth;
  InjectTransition();
}

void OcallRoundTrip() {
  if (t_enclave_depth == 0) return;
  g_ocalls.fetch_add(1, std::memory_order_relaxed);
  // Exit + re-enter: two transitions.
  InjectTransition();
  InjectTransition();
}

}  // namespace sgxb::sgx
