#include "sgx/sealing.h"

#include <cstring>

#include "common/random.h"
#include "sgx/mee.h"

namespace sgxb::sgx {

namespace {

// Blob layout: magic (8) | nonce (8) | payload_size (8) | aad_size (8)
// | ciphertext | tag (8).
constexpr uint64_t kMagic = 0x53475853454c4421ull;  // "SGXSEAL!"
constexpr size_t kHeaderBytes = 32;
constexpr size_t kTagBytes = 8;

struct Header {
  uint64_t magic;
  uint64_t nonce;
  uint64_t payload_size;
  uint64_t aad_size;
};
static_assert(sizeof(Header) == kHeaderBytes);

// Keyed tag over header + aad + ciphertext. A simple multiply-xor
// compression (simulation-grade, NOT a cryptographic MAC).
uint64_t ComputeTag(uint64_t key, const Header& header,
                    const std::vector<uint8_t>& aad,
                    const uint8_t* ciphertext, size_t size) {
  uint64_t acc = key ^ 0x746167206b657921ull;
  auto mix = [&acc](uint64_t v) {
    acc ^= v;
    acc *= 0xff51afd7ed558ccdull;
    acc ^= acc >> 33;
  };
  mix(header.magic);
  mix(header.nonce);
  mix(header.payload_size);
  mix(header.aad_size);
  for (uint8_t b : aad) mix(b + 0x9e);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t word;
    std::memcpy(&word, ciphertext + i, 8);
    mix(word);
  }
  for (; i < size; ++i) mix(ciphertext[i]);
  return acc;
}

uint64_t FreshNonce() {
  static Xoshiro256 rng(0x5eed5eed5eed5eedull);
  return rng.Next();
}

}  // namespace

size_t SealedBlob::payload_size() const {
  if (bytes.size() < kHeaderBytes + kTagBytes) return 0;
  Header header;
  std::memcpy(&header, bytes.data(), kHeaderBytes);
  return header.payload_size;
}

Result<SealedBlob> Seal(const void* data, size_t size,
                        uint64_t enclave_key,
                        const std::vector<uint8_t>& aad) {
  if (data == nullptr && size > 0) {
    return Status::InvalidArgument("null data with nonzero size");
  }
  Header header;
  header.magic = kMagic;
  header.nonce = FreshNonce();
  header.payload_size = size;
  header.aad_size = aad.size();

  SealedBlob blob;
  blob.bytes.resize(kHeaderBytes + size + kTagBytes);
  std::memcpy(blob.bytes.data(), &header, kHeaderBytes);

  uint8_t* ciphertext = blob.bytes.data() + kHeaderBytes;
  if (size > 0) std::memcpy(ciphertext, data, size);
  MemoryEncryptionEngine mee(enclave_key ^ header.nonce);
  mee.Encrypt(ciphertext, size);

  uint64_t tag = ComputeTag(enclave_key, header, aad, ciphertext, size);
  std::memcpy(blob.bytes.data() + kHeaderBytes + size, &tag, kTagBytes);
  return blob;
}

Result<std::vector<uint8_t>> Unseal(const SealedBlob& blob,
                                    uint64_t enclave_key,
                                    const std::vector<uint8_t>& aad) {
  if (blob.bytes.size() < kHeaderBytes + kTagBytes) {
    return Status::InvalidArgument("sealed blob too small");
  }
  Header header;
  std::memcpy(&header, blob.bytes.data(), kHeaderBytes);
  if (header.magic != kMagic) {
    return Status::InvalidArgument("not a sealed blob (bad magic)");
  }
  if (blob.bytes.size() !=
      kHeaderBytes + header.payload_size + kTagBytes) {
    return Status::InvalidArgument("sealed blob size mismatch");
  }
  if (header.aad_size != aad.size()) {
    return Status::Internal("sealed blob authentication failed");
  }

  const uint8_t* ciphertext = blob.bytes.data() + kHeaderBytes;
  uint64_t expected_tag = ComputeTag(enclave_key, header, aad, ciphertext,
                                     header.payload_size);
  uint64_t stored_tag;
  std::memcpy(&stored_tag,
              blob.bytes.data() + kHeaderBytes + header.payload_size,
              kTagBytes);
  if (stored_tag != expected_tag) {
    return Status::Internal("sealed blob authentication failed");
  }

  std::vector<uint8_t> plaintext(ciphertext,
                                 ciphertext + header.payload_size);
  MemoryEncryptionEngine mee(enclave_key ^ header.nonce);
  mee.Decrypt(plaintext.data(), plaintext.size());
  return plaintext;
}

}  // namespace sgxb::sgx
