// Simulated SGXv2 enclave: lifecycle, EPC accounting, and EDMM growth.
//
// Reproduces the SGX SDK's memory-management behaviour that the paper
// measures in Section 4.4 / Figure 11: an enclave is created with a
// statically committed heap size; allocations beyond that size are only
// possible if the enclave is "dynamic" (EDMM), and then every added 4 KiB
// page pays an EAUG/EACCEPT-style cost, which is injected as a real delay.
// Allocations are also capped by the per-socket EPC capacity, mirroring the
// paper's rule of never exceeding the EPC to avoid paging.

#ifndef SGXB_SGX_ENCLAVE_H_
#define SGXB_SGX_ENCLAVE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "common/types.h"
#include "sgx/transition.h"

namespace sgxb::sgx {

inline constexpr size_t kEpcPageSize = 4096;

/// \brief Creation-time enclave parameters (the SGX SDK reads these from
/// the enclave's XML config; we take them programmatically).
struct EnclaveConfig {
  /// Heap committed at enclave build time (EADD'ed pages); allocations up
  /// to this size are cheap.
  size_t initial_heap_bytes = 256_MiB;
  /// Upper bound for dynamic growth. Ignored unless `dynamic` is true.
  size_t max_heap_bytes = 4_GiB;
  /// Enables EDMM-style dynamic page addition beyond the initial heap.
  bool dynamic = false;
  /// For dynamic enclaves: return ("ETRACK/EMODT-trim") committed pages
  /// back to the OS when frees bring the heap below the committed size,
  /// like an SDK allocator configured to release unused regions. A later
  /// regrowth then re-pays the per-page EDMM cost — the behaviour the
  /// arena pool (src/mem/arena_pool.h) exists to avoid.
  bool edmm_trim = false;
  /// Simulated NUMA node whose EPC backs this enclave.
  int numa_node = 0;
  std::string name = "enclave";
};

/// \brief Snapshot of an enclave's memory accounting.
struct EnclaveMemoryStats {
  size_t heap_used_bytes;
  size_t heap_committed_bytes;
  uint64_t edmm_pages_added;
  uint64_t edmm_pages_trimmed;
  double edmm_injected_ns;
};

class Enclave {
 public:
  /// \brief Builds ("EINIT"s) an enclave. Fails if the initial heap does
  /// not fit the simulated per-socket EPC.
  static Result<Enclave*> Create(const EnclaveConfig& config);

  ~Enclave();
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  const EnclaveConfig& config() const { return config_; }

  /// \brief Allocates trusted (EPC) memory. Growth beyond the committed
  /// heap requires `dynamic` and pays the per-page EDMM cost as a real
  /// injected delay; otherwise returns OutOfMemory like the SDK allocator.
  /// The returned buffer credits the heap accounting (NotifyFree) when it
  /// is destroyed — no manual release calls.
  Result<AlignedBuffer> Allocate(size_t bytes,
                                 size_t alignment = kCacheLineSize);

  /// \brief Charges `bytes` (page-rounded) against the enclave heap
  /// without handing out memory: the accounting half of Allocate, for
  /// callers that place data themselves (mem::EnclaveResource, tests).
  /// Pays EDMM growth / returns OutOfMemory exactly like Allocate; every
  /// successful charge must be balanced by one NotifyFree of the same
  /// size.
  Status ChargeAlloc(size_t bytes);

  /// \brief Returns `bytes` to the enclave heap accounting. Buffers from
  /// Allocate() credit themselves on destruction; call this only to
  /// balance a manual ChargeAlloc, once per charge, with that charge's
  /// size (accounting is page-granular, so summing several charges into
  /// one call under-releases). Releasing more than is held clamps to zero
  /// (and asserts in debug builds) instead of wrapping the counter.
  void NotifyFree(size_t bytes);

  /// \brief Runs `fn` as an ECALL: enters enclave mode on the calling
  /// thread (paying the transition), executes, exits (paying again).
  template <typename Fn>
  auto Ecall(Fn&& fn) -> decltype(fn());

  EnclaveMemoryStats memory_stats() const;

 private:
  explicit Enclave(const EnclaveConfig& config);

  Status CommitPages(size_t new_reserved);
  Status CommitPagesLocked(size_t new_reserved);
  void TrimPages();
  static void ReleaseTrustedBuffer(void* ctx, void* data, size_t bytes);

  EnclaveConfig config_;
  // Serializes EDMM growth: on hardware, EAUG/EACCEPT page commits go
  // through the kernel one region at a time as well. Mutable so that
  // memory_stats() can take it on trim-enabled enclaves, where committed
  // is not monotone and a lock-free snapshot could tear.
  mutable std::mutex commit_mu_;
  // Admission counter for in-flight charges. ChargeAlloc reserves here
  // first, commits pages to cover the reservation, and only then publishes
  // into heap_used_ — so heap_used_ <= heap_committed_ holds at every
  // instant and memory_stats() never observes a torn intermediate state.
  std::atomic<size_t> heap_reserved_{0};
  std::atomic<size_t> heap_used_{0};
  std::atomic<size_t> heap_committed_{0};
  std::atomic<uint64_t> edmm_pages_added_{0};
  std::atomic<uint64_t> edmm_pages_trimmed_{0};
  std::atomic<uint64_t> edmm_injected_ns_{0};
};

/// \brief Destroys an enclave created with Enclave::Create.
void DestroyEnclave(Enclave* enclave);

// --- implementation ------------------------------------------------------

template <typename Fn>
auto Enclave::Ecall(Fn&& fn) -> decltype(fn()) {
  ScopedEcall scope;
  return fn();
}

}  // namespace sgxb::sgx

#endif  // SGXB_SGX_ENCLAVE_H_
