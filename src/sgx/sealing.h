// Sealed storage: the simulator's analogue of the SGX SDK's
// sgx_seal_data / sgx_unseal_data.
//
// An enclave DBMS that spills intermediate results (or persists tables)
// must seal them: encrypt with an enclave-bound key and authenticate, so
// untrusted storage can hold them. This module provides that envelope on
// top of the software MEE: [header | ciphertext | tag]. The cipher and
// MAC are simulation-grade (see DESIGN.md, Non-goals) but the API,
// failure modes (tampering -> error, wrong enclave key -> error), and
// data flow match the SDK's.

#ifndef SGXB_SGX_SEALING_H_
#define SGXB_SGX_SEALING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace sgxb::sgx {

/// \brief A sealed blob: safe to hand to untrusted storage.
struct SealedBlob {
  std::vector<uint8_t> bytes;

  size_t payload_size() const;
};

/// \brief Seals `data` under the enclave measurement key `enclave_key`
/// (the SDK derives this from MRENCLAVE/MRSIGNER; callers pass it
/// directly here). `aad` is authenticated but not encrypted.
Result<SealedBlob> Seal(const void* data, size_t size,
                        uint64_t enclave_key,
                        const std::vector<uint8_t>& aad = {});

/// \brief Unseals a blob. Fails with kInvalidArgument on malformed input
/// and kInternal on authentication failure (tampered ciphertext, wrong
/// key, or wrong AAD).
Result<std::vector<uint8_t>> Unseal(const SealedBlob& blob,
                                    uint64_t enclave_key,
                                    const std::vector<uint8_t>& aad = {});

}  // namespace sgxb::sgx

#endif  // SGXB_SGX_SEALING_H_
