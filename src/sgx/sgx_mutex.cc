#include "sgx/sgx_mutex.h"

#include "common/timer.h"
#include "perf/calibration.h"
#include "sync/spinlock.h"

namespace sgxb::sgx {

void SgxSdkMutex::lock() {
  // Optimistic in-enclave spin, as the SDK does.
  for (int i = 0; i < kSpinBudget; ++i) {
    if (try_lock()) return;
    CpuRelax();
  }

  // Contended path: the thread leaves the enclave to sleep. Charge the
  // OCALL round-trip plus the futex syscall before blocking for real.
  const auto& cal = perf::CalibrationParams::Default();
  std::unique_lock<std::mutex> guard(mu_);
  while (locked_) {
    if (InEnclaveMode()) {
      guard.unlock();
      OcallRoundTrip();
      if (CostInjectionEnabled()) {
        SpinForCycles(cal.futex_syscall_cycles);
      }
      guard.lock();
      if (!locked_) break;
    }
    ++waiters_;
    cv_.wait(guard, [this] { return !locked_; });
    --waiters_;
  }
  locked_ = true;
}

bool SgxSdkMutex::try_lock() {
  std::lock_guard<std::mutex> guard(mu_);
  if (locked_) return false;
  locked_ = true;
  return true;
}

void SgxSdkMutex::unlock() {
  bool must_wake;
  {
    std::lock_guard<std::mutex> guard(mu_);
    locked_ = false;
    must_wake = waiters_ > 0;
  }
  if (must_wake) {
    // Waking a sleeping thread is another OCALL (futex wake) issued by the
    // *owner*, which is what stretches the effective critical section and
    // triggers the avalanche the paper observes.
    OcallRoundTrip();
    cv_.notify_one();
  }
}

}  // namespace sgxb::sgx
