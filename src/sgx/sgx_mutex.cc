#include "sgx/sgx_mutex.h"

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf/calibration.h"
#include "sync/spinlock.h"

namespace sgxb::sgx {

namespace {

// Figure 10's claim — contended SDK mutexes park threads outside the
// enclave and the wake OCALLs stretch the critical section — used to be a
// derived estimate in EXPERIMENTS.md. These counters make it a measured
// fact: one park event per thread that exhausts its spin budget, one wake
// event per owner-issued futex-wake OCALL, and a latency histogram of how
// long parked threads actually waited.
obs::Counter& Parks() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrMutexParks);
  return *c;
}
obs::Counter& WakeOcalls() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrMutexWakeOcalls);
  return *c;
}
obs::Histogram& ParkNs() {
  static obs::Histogram* h =
      obs::Registry::Global().GetHistogram(obs::kHistMutexParkNs);
  return *h;
}
// Histograms are process-global; this counter carries the same park time
// domain-mirrored so QueryReport attributes it per query class.
obs::Counter& ParkNsTotal() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter(obs::kCtrMutexParkNsTotal);
  return *c;
}

}  // namespace

void SgxSdkMutex::lock() {
  // Optimistic in-enclave spin, as the SDK does.
  for (int i = 0; i < kSpinBudget; ++i) {
    if (try_lock()) return;
    CpuRelax();
  }

  // Contended path: the thread leaves the enclave to sleep. Charge the
  // OCALL round-trip plus the futex syscall before blocking for real.
  Parks().Increment();
  obs::ObsSpan span("mutex_park", "sgx");
  const uint64_t park_begin = ReadTsc();
  const auto& cal = perf::CalibrationParams::Default();
  std::unique_lock<std::mutex> guard(mu_);
  while (locked_) {
    if (InEnclaveMode()) {
      guard.unlock();
      OcallRoundTrip();
      if (CostInjectionEnabled()) {
        SpinForCycles(cal.futex_syscall_cycles);
      }
      guard.lock();
      if (!locked_) break;
    }
    ++waiters_;
    cv_.wait(guard, [this] { return !locked_; });
    --waiters_;
  }
  locked_ = true;
  const uint64_t parked_ns =
      static_cast<uint64_t>(CyclesToNanos(ReadTsc() - park_begin));
  ParkNs().Record(parked_ns);
  ParkNsTotal().Add(parked_ns);
}

bool SgxSdkMutex::try_lock() {
  std::lock_guard<std::mutex> guard(mu_);
  if (locked_) return false;
  locked_ = true;
  return true;
}

void SgxSdkMutex::unlock() {
  bool must_wake;
  {
    std::lock_guard<std::mutex> guard(mu_);
    locked_ = false;
    must_wake = waiters_ > 0;
  }
  if (must_wake) {
    // Waking a sleeping thread is another OCALL (futex wake) issued by the
    // *owner*, which is what stretches the effective critical section and
    // triggers the avalanche the paper observes.
    WakeOcalls().Increment();
    OcallRoundTrip();
    cv_.notify_one();
  }
}

}  // namespace sgxb::sgx
